// Table 5: production-style evaluation. Replays synthetic topic mixes
// through the full service (ingest -> online match -> periodic training)
// and reports ingest volume, model size and training time next to the
// paper's production numbers.
#include "bench/bench_common.h"
#include "bench/paper_reference.h"
#include "service/log_service.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace bytebrain;

namespace {

struct Scenario {
  const char* label;
  const char* dataset;       // token-shape source
  size_t num_logs;
  size_t num_templates;
};

}  // namespace

int main() {
  PrintBenchHeader("Table 5 — production-style topics on the full service",
                   "paper Table 5 (synthetic production mixes)");

  const Scenario scenarios[] = {
      {"Text stream processing", "Spark", 60000, 120},
      {"Webserver access log (large)", "Apache", 60000, 400},
      {"Webserver access log (small)", "Apache", 40000, 60},
      {"Go HTTP API server", "Hadoop", 30000, 250},
      {"Go search server", "Zookeeper", 30000, 220},
  };

  TablePrinter table({"Scenario", "Ingest MB/s", "Model Size", "Train s",
                      "#Templates", "Paper MB/s", "Paper Model", "Paper s"},
                     {30, 13, 12, 9, 12, 12, 13, 9});
  table.PrintHeader();

  const auto& paper = PaperTable5();
  for (size_t s = 0; s < std::size(scenarios); ++s) {
    const Scenario& scenario = scenarios[s];
    DatasetGenerator generator(*FindDatasetSpec(scenario.dataset));
    GenOptions opts;
    opts.num_logs = scenario.num_logs;
    opts.num_templates = scenario.num_templates;
    opts.include_preamble = true;  // production streams carry headers
    opts.seed_salt = 5 + s;
    Dataset ds = generator.Generate(opts);

    TopicConfig config;
    config.initial_train_records = 2000;
    config.train_interval_records = 25000;
    config.num_threads = 2;
    // Production topics configure domain rules on top of the defaults
    // (§4.1.2): bracketed daemon pids here.
    config.variable_rules.push_back({"pid", "\\[\\d+\\]"});
    ManagedTopic topic(scenario.label, config);

    Timer timer;
    for (auto& log : ds.logs) {
      if (!topic.Ingest(std::move(log.text)).ok()) return 1;
    }
    const double seconds = timer.ElapsedSeconds();
    const TopicStats stats = topic.stats();
    const double mb_per_s =
        static_cast<double>(stats.ingested_bytes) / (1024.0 * 1024.0) /
        seconds;

    table.PrintRow(
        {scenario.label, TablePrinter::Fmt(mb_per_s, 1),
         FormatBytes(stats.model_bytes),
         TablePrinter::Fmt(stats.last_training_seconds, 2),
         std::to_string(stats.num_templates),
         TablePrinter::Fmt(paper[s].volume_mb_per_s, 1),
         TablePrinter::Fmt(paper[s].model_mb, 0) + " MB",
         TablePrinter::Fmt(paper[s].training_seconds, 2)});
  }
  std::printf(
      "\nShape check (paper Table 5): training completes in seconds and\n"
      "the model stays a few MB — orders of magnitude below the raw log\n"
      "volume — end-to-end on the full ingest->match->train->query path.\n");
  return 0;
}
