// Concurrency tests for asynchronous background retraining: ingest must
// never block for the duration of a training run, triggers firing during
// an in-flight cycle must coalesce into one follow-up, the end state must
// equal a synchronous training at the same trigger point, and shutdown
// with a training pending must drain cleanly. The on_async_training_start
// hook holds a training in flight deterministically (no sleeps on the
// assertion paths).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "service/log_service.h"
#include "threading/thread_pool.h"

namespace bytebrain {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::string SshLog(int i) {
  return "Accepted password for user" + std::to_string(i % 5) +
         " from 10.0.0." + std::to_string(i % 9 + 1) + " port " +
         std::to_string(40000 + i) + " ssh2";
}

std::string DiskLog(int i) {
  return "Disk quota exceeded for volume vol" + std::to_string(i % 3);
}

TopicConfig AsyncConfig() {
  TopicConfig config;
  config.initial_train_records = 50;  // first training: synchronous
  config.train_interval_records = 100;
  config.train_volume_bytes = 1ull << 40;
  config.num_threads = 2;
  config.async_training = true;
  return config;
}

/// One-shot gate the training hook blocks on; Release() is sticky, so
/// coalesced follow-up runs pass straight through.
class TrainingGate {
 public:
  std::function<void()> Hook() {
    return [this] {
      started_.fetch_add(1);
      gate_.wait();
    };
  }
  /// True once a training run has reached the hook.
  bool Started() const { return started_.load() > 0; }
  int StartCount() const { return started_.load(); }
  void Release() { release_.set_value(); }
  /// Spin until a training run is holding at the gate.
  void AwaitStarted() {
    while (!Started()) std::this_thread::sleep_for(milliseconds(1));
  }

 private:
  std::promise<void> release_;
  std::shared_future<void> gate_{release_.get_future()};
  std::atomic<int> started_{0};
};

// The acceptance scenario: a training is held in flight while ingest
// continues; every ingest call must complete in a bounded time that is
// far below the (artificially long) training duration, and the final
// state must equal that of a topic trained synchronously at the same
// trigger point.
TEST(AsyncTrainingTest, IngestIsNotBlockedByInFlightTraining) {
  TrainingGate gate;
  TopicConfig config = AsyncConfig();
  config.on_async_training_start = gate.Hook();
  ManagedTopic async_topic("async", config);

  // Records 0..149: record 50 trips the (synchronous) initial training,
  // record 150 trips the first retrain, which parks at the gate.
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(async_topic.Ingest(SshLog(i)).ok());
  }
  gate.AwaitStarted();
  EXPECT_EQ(async_topic.stats().pending_trainings, 1u);

  // 80 more records (below the next trigger) while the training is held
  // in flight. Each call is a lock + match + append — time it.
  double max_ingest_seconds = 0.0;
  for (int i = 150; i < 230; ++i) {
    const auto t0 = steady_clock::now();
    ASSERT_TRUE(async_topic.Ingest(i % 4 == 0 ? DiskLog(i) : SshLog(i)).ok());
    const double elapsed =
        std::chrono::duration<double>(steady_clock::now() - t0).count();
    max_ingest_seconds = std::max(max_ingest_seconds, elapsed);
  }
  // The training is still in flight: none of those 80 calls waited on it.
  EXPECT_EQ(async_topic.stats().pending_trainings, 1u);

  // Stretch the training run past 250ms, then let it finish.
  std::this_thread::sleep_for(milliseconds(250));
  gate.Release();
  async_topic.WaitForPendingTraining();

  const TopicStats stats = async_topic.stats();
  EXPECT_EQ(stats.pending_trainings, 0u);
  EXPECT_GE(stats.trainings, 2u);
  EXPECT_GE(stats.async_trainings, 1u);
  // The latency claim: per-call ingest time stayed well below the
  // training duration (the gate held it >= 250ms; ingest is ~µs, the
  // 100ms bound leaves room for CI noise).
  EXPECT_GE(stats.last_training_seconds, 0.25);
  EXPECT_LT(max_ingest_seconds, 0.1);
  EXPECT_LT(max_ingest_seconds, stats.last_training_seconds);

  // End-state equivalence: a topic configured for synchronous training
  // sees the identical log sequence; triggers fire at the same records
  // (150 trains on [0,150), and 80 further records stay below the next
  // trigger in both). Every record must carry the same assignment.
  TopicConfig sync_config = AsyncConfig();
  sync_config.async_training = false;
  ManagedTopic sync_topic("sync", sync_config);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(sync_topic.Ingest(SshLog(i)).ok());
  }
  for (int i = 150; i < 230; ++i) {
    ASSERT_TRUE(sync_topic.Ingest(i % 4 == 0 ? DiskLog(i) : SshLog(i)).ok());
  }
  EXPECT_EQ(sync_topic.stats().trainings, async_topic.stats().trainings);
  EXPECT_EQ(sync_topic.stats().num_templates,
            async_topic.stats().num_templates);
  ASSERT_EQ(sync_topic.size(), async_topic.size());
  for (uint64_t seq = 0; seq < sync_topic.size(); ++seq) {
    const auto a = sync_topic.ReadRecord(seq);
    const auto b = async_topic.ReadRecord(seq);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a.value().template_id, b.value().template_id)
        << "seq " << seq << ": " << a.value().text;
    EXPECT_NE(b.value().template_id, kInvalidTemplateId) << "seq " << seq;
  }
}

// Concurrent ingest from multiple threads while a training is in flight:
// no lost records, no duplicate template ids for the same shape, and
// every record ends up assigned after the commit.
TEST(AsyncTrainingTest, ParallelIngestDuringTrainingLosesNothing) {
  TrainingGate gate;
  TopicConfig config = AsyncConfig();
  config.on_async_training_start = gate.Hook();
  ManagedTopic topic("t", config);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  gate.AwaitStarted();

  constexpr int kThreads = 4;
  constexpr int kPerThread = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&topic, &failures, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int n = t * kPerThread + i;
        const bool single = n % 2 == 0;
        if (single) {
          if (!topic.Ingest(DiskLog(n)).ok()) failures.fetch_add(1);
        } else {
          // Batch path: its shared-lock match phase and exclusive adopt
          // section must interleave safely with the in-flight training.
          if (!topic.IngestBatch(
                  std::vector<std::string>{SshLog(n), DiskLog(n)}).ok()) {
            failures.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  gate.Release();
  topic.WaitForPendingTraining();

  EXPECT_EQ(failures.load(), 0);
  // 150 warmup + per thread: 30 singles + 30 batches of 2.
  const uint64_t expected = 150 + kThreads * (kPerThread / 2) * 3;
  EXPECT_EQ(topic.size(), expected);
  EXPECT_EQ(topic.stats().ingested_records, expected);
  // No lost assignments across the swap, and records with identical text
  // must agree on their template id (a duplicate-adoption or a dangling
  // old-model id would split them).
  std::unordered_map<std::string, TemplateId> by_text;
  for (uint64_t seq = 0; seq < topic.size(); ++seq) {
    const auto rec = topic.ReadRecord(seq);
    ASSERT_TRUE(rec.ok());
    ASSERT_NE(rec.value().template_id, kInvalidTemplateId)
        << "record " << seq << " lost its assignment across the swap";
    const auto [it, inserted] =
        by_text.emplace(rec.value().text, rec.value().template_id);
    EXPECT_EQ(it->second, rec.value().template_id)
        << "same text, different templates: " << rec.value().text;
  }
}

// Triggers that fire while a cycle is in flight must not queue a run
// each; the commit handles the whole backlog with one follow-up.
TEST(AsyncTrainingTest, OverlappingTriggersCoalesce) {
  TrainingGate gate;
  TopicConfig config = AsyncConfig();
  config.on_async_training_start = gate.Hook();
  ManagedTopic topic("t", config);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  gate.AwaitStarted();
  // 350 records = 3.5 trigger intervals, all while the run is held.
  for (int i = 0; i < 350; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(1000 + i)).ok());
  }
  EXPECT_EQ(topic.stats().pending_trainings, 1u);
  EXPECT_GT(topic.stats().coalesced_triggers, 0u);
  gate.Release();
  topic.WaitForPendingTraining();

  const TopicStats stats = topic.stats();
  // Initial (sync) + held run + exactly ONE coalesced follow-up — not
  // one per absorbed trigger.
  EXPECT_EQ(stats.trainings, 3u);
  EXPECT_EQ(stats.async_trainings, 2u);
  EXPECT_EQ(stats.pending_trainings, 0u);
  EXPECT_EQ(gate.StartCount(), 2);
}

// TrainNow's contract: wait for the in-flight cycle, then train
// synchronously; counters reset identically to a triggered run.
TEST(AsyncTrainingTest, TrainNowWaitsForInFlightCycle) {
  TrainingGate gate;
  TopicConfig config = AsyncConfig();
  config.on_async_training_start = gate.Hook();
  ManagedTopic topic("t", config);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  gate.AwaitStarted();

  // Drive TrainNow from the pool's future-returning API so the main
  // thread can release the gate while TrainNow blocks.
  ThreadPool pool(1);
  std::atomic<bool> train_now_done{false};
  std::future<void> done = pool.Schedule([&topic, &train_now_done] {
    ASSERT_TRUE(topic.TrainNow().ok());
    train_now_done.store(true);
  });
  // TrainNow must be parked behind the held training, not done already.
  std::this_thread::sleep_for(milliseconds(50));
  EXPECT_FALSE(train_now_done.load());
  gate.Release();
  done.get();
  EXPECT_TRUE(train_now_done.load());
  const TopicStats stats = topic.stats();
  EXPECT_EQ(stats.pending_trainings, 0u);
  // Initial + held async run + the manual run.
  EXPECT_GE(stats.trainings, 3u);
}

// The satellite fix: triggered and manual trainings share ONE counter
// reset (at snapshot time). After TrainNow, the next automatic retrain
// must require a full interval of NEW records — no more, no less.
TEST(AsyncTrainingTest, TrainNowResetsTriggerCountersLikeTriggeredTraining) {
  TopicConfig config = AsyncConfig();
  config.async_training = false;  // exact cadence assertions
  ManagedTopic topic("t", config);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());  // initial training at 50
  }
  ASSERT_EQ(topic.stats().trainings, 1u);

  // 60 records into the interval, a manual training resets the count...
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(100 + i)).ok());
  }
  ASSERT_TRUE(topic.TrainNow().ok());
  ASSERT_EQ(topic.stats().trainings, 2u);

  // ...so 99 further records must NOT retrain, and the 100th must.
  for (int i = 0; i < 99; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(200 + i)).ok());
    ASSERT_EQ(topic.stats().trainings, 2u) << "early retrain after " << i;
  }
  ASSERT_TRUE(topic.Ingest(SshLog(299)).ok());
  EXPECT_EQ(topic.stats().trainings, 3u);
}

// Same contract on the volume-bytes trigger, via the async path.
TEST(AsyncTrainingTest, TrainNowResetsVolumeCounter) {
  TopicConfig config = AsyncConfig();
  config.train_interval_records = 1u << 30;
  config.train_volume_bytes = 4096;
  ManagedTopic topic("t", config);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  topic.WaitForPendingTraining();
  ASSERT_TRUE(topic.TrainNow().ok());
  const uint64_t trainings_after_manual = topic.stats().trainings;

  // Stay just under the byte budget: no trigger may fire.
  uint64_t bytes = 0;
  int i = 0;
  while (true) {
    std::string log = SshLog(500 + i++);
    if (bytes + log.size() >= config.train_volume_bytes) break;
    bytes += log.size();
    ASSERT_TRUE(topic.Ingest(std::move(log)).ok());
  }
  topic.WaitForPendingTraining();
  EXPECT_EQ(topic.stats().trainings, trainings_after_manual);
  // Crossing the budget schedules the retrain.
  ASSERT_TRUE(topic.Ingest(std::string(200, 'x')).ok());
  topic.WaitForPendingTraining();
  EXPECT_EQ(topic.stats().trainings, trainings_after_manual + 1);
}

// Destroying a topic with a training pending must drain: the destructor
// waits for the in-flight run to commit and schedules no follow-up.
TEST(AsyncTrainingTest, ShutdownWithTrainingPendingDrains) {
  TrainingGate gate;
  std::atomic<bool> released{false};
  {
    TopicConfig config = AsyncConfig();
    config.on_async_training_start = gate.Hook();
    ManagedTopic topic("t", config);
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
    }
    // Trip enough backlog that a follow-up WOULD be due at commit; the
    // shutdown path must suppress it or the drain would train again.
    for (int i = 0; i < 150; ++i) {
      ASSERT_TRUE(topic.Ingest(SshLog(500 + i)).ok());
    }
    gate.AwaitStarted();
    std::thread releaser([&gate, &released] {
      std::this_thread::sleep_for(milliseconds(100));
      released.store(true);
      gate.Release();
    });
    releaser.detach();
    // Topic destructor runs here, while the training is held at the gate.
  }
  // The destructor must have waited for the release (drain), and the
  // suppressed follow-up means the gate was reached exactly once.
  EXPECT_TRUE(released.load());
  EXPECT_EQ(gate.StartCount(), 1);
}

// First training pushed to the background (sync_initial_training off):
// records ingested before the first model exists are assigned at commit.
TEST(AsyncTrainingTest, AsyncInitialTrainingAssignsBacklog) {
  TopicConfig config = AsyncConfig();
  config.sync_initial_training = false;
  ManagedTopic topic("t", config);
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  topic.WaitForPendingTraining();
  EXPECT_TRUE(topic.trained());
  EXPECT_GE(topic.stats().async_trainings, 1u);
  for (uint64_t seq = 0; seq < topic.size(); ++seq) {
    EXPECT_NE(topic.ReadRecord(seq)->template_id, kInvalidTemplateId)
        << "seq " << seq;
  }
}

// Queries must run (shared lock) while a training is in flight, and see
// a consistent pre-swap view.
TEST(AsyncTrainingTest, QueriesRunDuringInFlightTraining) {
  TrainingGate gate;
  TopicConfig config = AsyncConfig();
  config.on_async_training_start = gate.Hook();
  ManagedTopic topic("t", config);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  gate.AwaitStarted();
  auto groups = topic.Query(0.5);
  ASSERT_TRUE(groups.ok());
  uint64_t total = 0;
  for (const auto& g : groups.value()) total += g.count;
  EXPECT_EQ(total, 150u);
  gate.Release();
  topic.WaitForPendingTraining();
}

}  // namespace
}  // namespace bytebrain
