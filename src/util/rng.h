// Deterministic pseudo-random number generator.
//
// ByteBrain uses randomness in two places: K-Means++-style centroid
// seeding (§4.4) and balanced tie-breaking (§4.6). A small, fast,
// explicitly-seeded generator keeps runs reproducible, which the tests
// and ablation benches rely on.
#pragma once

#include <cstdint>

#include "util/hashing.h"

namespace bytebrain {

/// xoshiro256**-style generator (here: splitmix-seeded xorshift128+).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    s0_ = Mix64(seed);
    s1_ = Mix64(s0_ ^ 0x9e3779b97f4a7c15ULL);
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, bound); bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace bytebrain
