// Append-only log topic storage.
//
// A log topic is the unit of the log service: records are appended in
// arrival order, indexed by sequence number, and never mutated (paper §3).
// Record bytes live in a pluggable StorageBackend — in-memory segments
// by default, or checksummed on-disk segment files with mmap'd sealed
// scans and crash recovery (StorageConfig::Kind::kSegmentedDisk); either
// way a topic can additionally be persisted to / recovered from a
// single-file snapshot (PersistTo/RecoverFrom).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "logstore/log_record.h"
#include "logstore/storage_backend.h"
#include "util/status.h"

namespace bytebrain {

/// Thread-safe append-only record log with sequence-number addressing.
class LogTopic {
 public:
  /// `segment_capacity` records per in-memory segment; tuned for scan
  /// locality. Equivalent to a kMemory StorageConfig.
  explicit LogTopic(std::string name, size_t segment_capacity = 65536);

  /// Backend-selecting constructor. A disk-backed topic recovers its
  /// persisted records here (manifest replay, sealed verification,
  /// torn-tail truncation); if recovery fails the topic falls back to
  /// an EMPTY in-memory store and the failure is preserved in
  /// storage_status() for the caller to surface — constructors cannot
  /// return a Status, and a half-broken disk store must never crash.
  LogTopic(std::string name, const StorageConfig& storage);

  const std::string& name() const { return name_; }

  /// OK, or why the configured backend could not be opened (in which
  /// case the topic is running on a fallback in-memory store) / the
  /// first append-path IO error (records past it live only in memory).
  Status storage_status() const;

  /// True when the active backend persists records across restarts.
  bool persistent_storage() const;

  /// Appends a record and returns its sequence number (0-based).
  uint64_t Append(LogRecord record);

  /// Appends a batch under ONE lock acquisition; the records receive
  /// consecutive sequence numbers starting at the returned value. The
  /// high-throughput sibling of Append for the batched ingest path.
  uint64_t AppendBatch(std::vector<LogRecord> records);

  /// Blocks until every record appended before this call is durable
  /// (StorageConfig::durability == kWalGroupCommit; immediate OK for
  /// every other configuration). Deliberately NOT under the topic
  /// mutex — the backend's WAL is internally synchronized, and holding
  /// mu_ through a group-commit fsync wait would serialize the very
  /// batches the commit thread coalesces. A failure (fsync error) goes
  /// sticky into storage_status(), same as an append-path IO error:
  /// callers keep acknowledging from memory and surface the
  /// degradation, they do not fail the request.
  Status WaitDurable();

  /// Number of records appended so far.
  uint64_t size() const;

  /// Total bytes of record text appended (the "log volume").
  uint64_t text_bytes() const;

  /// Reads the record at `seq`. Fails with NotFound past the end.
  Result<LogRecord> Read(uint64_t seq) const;

  /// Invokes fn(seq, record) for each record in [begin_seq, end_seq).
  /// The callback must not re-enter the topic.
  Status Scan(uint64_t begin_seq, uint64_t end_seq,
              const std::function<void(uint64_t, const LogRecord&)>& fn) const;

  /// Rewrites the template id of an already-appended record. The text is
  /// immutable but template assignments may be refined by retraining.
  Status AssignTemplate(uint64_t seq, TemplateId template_id);

  /// Bulk rewrite of [begin_seq, begin_seq + ids.size()) under ONE lock
  /// acquisition — the training-commit path; backends skip unchanged
  /// ids, so re-assigning a mostly-stable window is nearly free.
  Status AssignTemplateRange(uint64_t begin_seq,
                             const std::vector<TemplateId>& ids);

  /// Per-template record counts over [begin_seq, end_seq) — the count
  /// side of Query. Index-aware backends answer fully-covered sealed
  /// segments from their postings without touching record bytes.
  Status TemplateCounts(
      uint64_t begin_seq, uint64_t end_seq,
      std::unordered_map<TemplateId, uint64_t>* counts) const;

  /// Invokes fn(seq, template_id) for records in [begin_seq, end_seq)
  /// whose template id is in `ids` — the sequence-collection side of
  /// Query. Index-aware backends skip sealed segments holding none of
  /// the wanted templates without mapping them.
  Status ScanTemplates(
      uint64_t begin_seq, uint64_t end_seq,
      const std::unordered_set<TemplateId>& ids,
      const std::function<void(uint64_t, TemplateId)>& fn) const;

  /// Time-filtered variants of the two Query primitives above: only
  /// records with timestamp_us in [min_ts_us, max_ts_us] contribute.
  /// Index-aware backends prune whole sealed segments via their
  /// persisted min/max timestamps before touching record bytes.
  Status TemplateCountsInRange(
      uint64_t begin_seq, uint64_t end_seq, uint64_t min_ts_us,
      uint64_t max_ts_us,
      std::unordered_map<TemplateId, uint64_t>* counts) const;
  Status ScanTemplatesInRange(
      uint64_t begin_seq, uint64_t end_seq, uint64_t min_ts_us,
      uint64_t max_ts_us, const std::unordered_set<TemplateId>& ids,
      const std::function<void(uint64_t, TemplateId)>& fn) const;

  /// Replication source: copies whole frames starting at
  /// {segment_index, offset} into `out` (see ReplicationChunk).
  /// NotSupported for backends without a frame representation.
  Status ReplicationRead(uint64_t segment_index, uint64_t offset,
                         uint64_t max_bytes, ReplicationChunk* out) const;

  /// Replication resume point of THIS topic's local store: the first
  /// {segment_index, offset} not yet present locally.
  Status ReplicationPosition(uint64_t* segment_index, uint64_t* offset) const;

  /// Checks a locally sealed segment against the primary's manifest
  /// entry; Corruption on mismatch (divergence), NotFound if the
  /// segment is not sealed here yet.
  Status VerifySealedSegment(uint64_t segment_index, uint64_t expect_records,
                             uint64_t expect_checksum) const;

  /// Force-seals the active segment regardless of its size (promotion
  /// seals the replicated tail before accepting writes). No-op when the
  /// active segment is empty.
  Status SealActive();

  /// Snapshot of the records currently SEALED on disk, scannable with
  /// no topic lock held (see SealedRecordView); nullptr when the
  /// backend has no off-lock-stable representation (memory store).
  std::shared_ptr<const SealedRecordView> SnapshotSealed() const;

  /// Durability point: flushes buffered appends and durably records
  /// `metadata` (an opaque blob — the service checkpoints the topic's
  /// serialized model here) in the backend's manifest. No-op metadata
  /// store for the in-memory backend.
  Status Checkpoint(std::string_view metadata);

  /// The metadata blob recovered by the backend at open (empty if none
  /// was ever checkpointed or the backend is volatile).
  std::string recovered_metadata() const;

  /// Storage observability (TopicStats::storage). mapped_bytes is the
  /// backend's RESIDENT segment-cache bytes — what this topic actually
  /// holds mapped right now, not the sum of its sealed files.
  uint64_t sealed_segment_count() const;
  uint64_t mapped_bytes() const;
  uint64_t cache_hits() const;
  uint64_t cache_misses() const;
  uint64_t cache_evictions() const;
  uint64_t index_rebuilds() const;
  uint64_t scan_record_visits() const;

  /// WAL observability (TopicStats::wal_*); zeros without a WAL.
  uint64_t wal_bytes() const;
  uint64_t wal_group_commits() const;
  uint64_t wal_fsyncs() const;
  uint64_t wal_replayed_records() const;

  /// Serializes all records to `path` (binary, checksummed) — a
  /// single-file snapshot independent of the backend.
  Status PersistTo(const std::string& path) const;

  /// Loads records from `path`, replacing current contents (and, for a
  /// persistent backend, its on-disk state).
  Status RecoverFrom(const std::string& path);

 private:
  std::string name_;
  std::unique_ptr<StorageBackend> store_;
  /// Sticky: backend-open failure or first append IO error.
  Status storage_status_;
  mutable std::mutex mu_;
};

/// Append-only store for clustering-tree node metadata ("internal topic",
/// paper §3). Supports id lookup and parent traversal for queries.
class InternalTopic {
 public:
  /// Appends (or overwrites, for retraining merges) a node's metadata.
  void Put(TemplateMeta meta);

  /// Looks up a node by template id.
  Result<TemplateMeta> Get(TemplateId id) const;

  /// Walks ancestors from `id` toward the root: the returned chain starts
  /// at `id` itself and ends at the root node.
  Result<std::vector<TemplateMeta>> AncestorChain(TemplateId id) const;

  /// All stored nodes (snapshot), in insertion order.
  std::vector<TemplateMeta> All() const;

  size_t size() const;

  Status PersistTo(const std::string& path) const;
  Status RecoverFrom(const std::string& path);

 private:
  std::vector<TemplateMeta> entries_;
  std::unordered_map<TemplateId, size_t> index_;
  mutable std::mutex mu_;
};

}  // namespace bytebrain
