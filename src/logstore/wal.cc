#include "logstore/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>

#include "logstore/fault_injection.h"
#include "logstore/frame_format.h"
#include "util/serde.h"

namespace bytebrain {

namespace {

// WAL file header: magic u64 | version u32 | base_seq u64. base_seq is
// the global sequence number of the file's first frame (== the owning
// backend's sealed_records_ when the file was created).
constexpr uint64_t kWalMagic = 0x42425741'4c4f4731ULL;  // "BBWALOG1"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderBytes = 8 + 4 + 8;

/// Reads `path` fully into `*out`; a missing file is reported through
/// `*exists`, not as an error. A mid-file read error IS an error —
/// treating it as EOF would silently shorten the recovered prefix.
Status ReadWhole(const std::string& path, std::string* out, bool* exists) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  *exists = f != nullptr;
  if (f == nullptr) return Status::OK();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read error: " + path);
  return Status::OK();
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string directory, DurabilityMode mode,
                             FileOps* ops)
    : directory_(std::move(directory)),
      mode_(mode),
      ops_(ops),
      committer_([this] { CommitLoop(); }) {}

WriteAheadLog::~WriteAheadLog() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_appended_.notify_all();
  committer_.join();
  if (fd_ >= 0) ::close(fd_);
}

std::string WriteAheadLog::PathFor(uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(index));
  return directory_ + "/" + name;
}

Status WriteAheadLog::OpenAndReplay(uint64_t index, uint64_t base_seq,
                                    std::vector<LogRecord>* replayed) {
  std::lock_guard<std::mutex> lock(mu_);
  file_index_ = index;
  const std::string path = PathFor(index);
  const std::string current = std::filesystem::path(path).filename().string();

  // Delete stale files from other segment generations. A crash between
  // a seal's manifest write and its Rotate() leaves the previous
  // segment's file behind — every frame in it is already in the sealed
  // (fsynced, manifest-listed) segment, so it must not replay.
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 4 && name.compare(0, 4, "wal-") == 0 &&
        name != current) {
      std::remove(entry.path().c_str());
    }
  }

  std::string data;
  bool exists = false;
  BB_RETURN_IF_ERROR(ReadWhole(path, &data, &exists));
  if (!exists || data.size() < kWalHeaderBytes) {
    // Missing, or creation torn mid-header: no frame can follow a
    // header whose write never completed, so start fresh.
    return CreateFileLocked(base_seq);
  }
  ByteReader reader(data.data(), data.size());
  uint64_t magic = 0;
  uint32_t version = 0;
  uint64_t stored_base = 0;
  (void)reader.GetU64(&magic);
  (void)reader.GetU32(&version);
  (void)reader.GetU64(&stored_base);
  if (magic != kWalMagic || version != kWalVersion ||
      stored_base != base_seq) {
    // A full header that does not match is not a crash artifact — it is
    // a file in the wrong place, and replaying it would splice foreign
    // records into the topic.
    return Status::Corruption("bad wal header: " + path);
  }

  // Frame-by-frame replay; the first torn or corrupt frame ends the
  // trusted prefix and everything after it is truncated away.
  size_t frame_bytes = 0;
  while (!reader.AtEnd()) {
    logframe::Frame frame;
    if (!logframe::ParseFrame(&reader, data.data(), &frame)) break;
    LogRecord rec;
    rec.timestamp_us = frame.ts;
    rec.template_id = frame.tid;
    rec.text.assign(frame.text);
    replayed->push_back(std::move(rec));
    frame_bytes = reader.position() - kWalHeaderBytes;
  }
  const size_t valid_bytes = kWalHeaderBytes + frame_bytes;
  if (valid_bytes < data.size()) {
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return Status::IOError("cannot truncate torn wal tail: " + path);
    }
  }
  fd_ = ::open(path.c_str(), O_RDWR, 0644);
  if (fd_ < 0) return Status::IOError("cannot open wal file: " + path);
  if (::lseek(fd_, 0, SEEK_END) < 0) {
    return Status::IOError("cannot seek wal file: " + path);
  }
  file_bytes_ = frame_bytes;
  // The replayed prefix is on disk by definition; new appends start
  // their durability race from here.
  appended_ = frame_bytes;
  synced_ = frame_bytes;
  return Status::OK();
}

Status WriteAheadLog::CreateFileLocked(uint64_t base_seq) {
  const std::string path = PathFor(file_index_);
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0) {
    error_ = Status::IOError("cannot create wal file: " + path);
    cv_synced_.notify_all();
    return error_;
  }
  std::string header;
  ByteWriter writer(&header);
  writer.PutU64(kWalMagic);
  writer.PutU32(kWalVersion);
  writer.PutU64(base_seq);
  return WriteFullyLocked(header);
}

Status WriteAheadLog::WriteFullyLocked(std::string_view bytes) {
  size_t done = 0;
  while (done < bytes.size()) {
    const ssize_t n =
        ops_->Write(fd_, bytes.data() + done, bytes.size() - done);
    if (n <= 0) {
      // The file now ends mid-frame (replay truncates it); sticky — and
      // waiters must not sleep for an fsync that will never cover them.
      error_ = Status::IOError("wal write failed: " + PathFor(file_index_));
      cv_synced_.notify_all();
      return error_;
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status WriteAheadLog::Append(std::string_view frames) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!error_.ok()) return error_;
  if (fd_ < 0) {
    error_ = Status::IOError("wal has no open file: " + PathFor(file_index_));
    return error_;
  }
  BB_RETURN_IF_ERROR(WriteFullyLocked(frames));
  appended_ += frames.size();
  file_bytes_ += frames.size();
  cv_appended_.notify_one();
  return Status::OK();
}

Status WriteAheadLog::WaitDurable() {
  if (mode_ != DurabilityMode::kWalGroupCommit) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  if (!error_.ok()) return error_;
  const uint64_t target = appended_;
  cv_synced_.wait(lock, [&] { return synced_ >= target || !error_.ok(); });
  if (synced_ >= target) {
    ++group_commits_;
    return Status::OK();
  }
  return error_;
}

Status WriteAheadLog::Rotate(uint64_t new_index, uint64_t new_base_seq) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_idle_.wait(lock, [&] { return !syncing_; });
  // Everything appended so far is durable through the sealed segment's
  // own fsync (or discarded by Clear): release every waiter, then swap
  // files. The monotone counters are NOT reset — a waiter parked on a
  // pre-rotation target must see synced_ pass it, never restart below.
  synced_ = appended_;
  cv_synced_.notify_all();
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  std::remove(PathFor(file_index_).c_str());
  file_index_ = new_index;
  file_bytes_ = 0;
  // Rotation is only reached from a healthy seal or a full Clear();
  // both start a fresh file, so the old sticky failure (if any —
  // Clear's case) no longer applies.
  error_ = Status::OK();
  return CreateFileLocked(new_base_seq);
}

void WriteAheadLog::CommitLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_appended_.wait(lock, [&] {
      return stop_ || (error_.ok() && fd_ >= 0 && appended_ > synced_);
    });
    if (stop_) return;
    // One fsync covers every byte appended up to now — batches that
    // arrived while the previous fsync ran are all committed together.
    const uint64_t target = appended_;
    const int fd = fd_;
    syncing_ = true;
    lock.unlock();
    const int rc = ops_->Fsync(fd);
    lock.lock();
    syncing_ = false;
    ++fsyncs_;
    if (rc == 0) {
      if (target > synced_) synced_ = target;
    } else if (error_.ok()) {
      error_ = Status::IOError("wal fsync failed: " + PathFor(file_index_));
    }
    cv_synced_.notify_all();
    cv_idle_.notify_all();
  }
}

uint64_t WriteAheadLog::wal_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_bytes_;
}

uint64_t WriteAheadLog::group_commits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return group_commits_;
}

uint64_t WriteAheadLog::fsyncs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fsyncs_;
}

}  // namespace bytebrain
