// End-to-end tests for Trainer + TemplateMatcher + ByteBrainParser:
// training produces sound trees, matching agrees with training
// assignments (the §5.4.1 claim), thresholds adjust precision, and
// unmatched logs are adopted.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/parser.h"
#include "datagen/generator.h"

namespace bytebrain {
namespace {

std::vector<std::string> SshLikeLogs() {
  std::vector<std::string> logs;
  for (int i = 0; i < 40; ++i) {
    logs.push_back("Accepted password for user" + std::to_string(i % 7) +
                   " from 10.0.0." + std::to_string(i % 13 + 1) + " port " +
                   std::to_string(40000 + i) + " ssh2");
    logs.push_back("Failed password for user" + std::to_string(i % 5) +
                   " from 10.0.1." + std::to_string(i % 11 + 1) + " port " +
                   std::to_string(50000 + i) + " ssh2");
    if (i % 4 == 0) {
      logs.push_back("session opened for user root");
    }
  }
  return logs;
}

ByteBrainOptions DefaultOptions() {
  ByteBrainOptions opts;
  opts.trainer.num_threads = 2;
  opts.trainer.preprocess.num_threads = 2;
  return opts;
}

TEST(TrainerTest, EmptyInputYieldsEmptyModel) {
  Trainer trainer(TrainerOptions{});
  auto out =
      trainer.Train(std::vector<std::string>{}, VariableReplacer::Default());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->model.empty());
  EXPECT_TRUE(out->assignments.empty());
}

TEST(TrainerTest, EveryLogGetsALeafAssignment) {
  Trainer trainer(TrainerOptions{});
  auto logs = SshLikeLogs();
  auto out = trainer.Train(logs, VariableReplacer::Default());
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->assignments.size(), logs.size());
  for (TemplateId id : out->assignments) {
    ASSERT_NE(id, kInvalidTemplateId);
    EXPECT_NE(out->model.node(id), nullptr);
  }
}

TEST(TrainerTest, SaturationStrictlyIncreasesDownTheTree) {
  Trainer trainer(TrainerOptions{});
  auto out = trainer.Train(SshLikeLogs(), VariableReplacer::Default());
  ASSERT_TRUE(out.ok());
  for (const TreeNode& n : out->model.nodes()) {
    if (n.parent == kInvalidTemplateId) continue;
    const TreeNode* parent = out->model.node(n.parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_GE(n.saturation, parent->saturation)
        << "node " << n.id << " under " << parent->id;
  }
}

TEST(TrainerTest, SupportSumsToInputCount) {
  Trainer trainer(TrainerOptions{});
  auto logs = SshLikeLogs();
  auto out = trainer.Train(logs, VariableReplacer::Default());
  ASSERT_TRUE(out.ok());
  uint64_t root_support = 0;
  for (TemplateId r : out->model.roots()) {
    root_support += out->model.node(r)->support;
  }
  EXPECT_EQ(root_support, logs.size());
}

TEST(TrainerTest, ChildrenSupportNeverExceedsParent) {
  Trainer trainer(TrainerOptions{});
  auto out = trainer.Train(SshLikeLogs(), VariableReplacer::Default());
  ASSERT_TRUE(out.ok());
  for (const TreeNode& n : out->model.nodes()) {
    if (n.children.empty()) continue;
    uint64_t child_sum = 0;
    for (TemplateId c : n.children) {
      child_sum += out->model.node(c)->support;
    }
    EXPECT_LE(child_sum, n.support);
  }
}

TEST(TrainerTest, TemplatesSeparateAcceptedFromFailed) {
  Trainer trainer(TrainerOptions{});
  auto logs = SshLikeLogs();
  auto out = trainer.Train(logs, VariableReplacer::Default());
  ASSERT_TRUE(out.ok());
  // Accepted and Failed logs must never share a leaf template (their
  // first token differs).
  std::set<TemplateId> accepted_ids;
  std::set<TemplateId> failed_ids;
  for (size_t i = 0; i < logs.size(); ++i) {
    if (logs[i].rfind("Accepted", 0) == 0) {
      accepted_ids.insert(out->assignments[i]);
    } else if (logs[i].rfind("Failed", 0) == 0) {
      failed_ids.insert(out->assignments[i]);
    }
  }
  for (TemplateId id : accepted_ids) EXPECT_EQ(failed_ids.count(id), 0u);
}

TEST(TrainerTest, SamplingCapBoundsTraining) {
  TrainerOptions opts;
  opts.max_train_logs = 20;
  Trainer trainer(opts);
  auto logs = SshLikeLogs();
  auto out = trainer.Train(logs, VariableReplacer::Default());
  ASSERT_TRUE(out.ok());
  EXPECT_LE(out->total_logs, 20u);
  // Non-sampled logs keep invalid assignments; sampled ones are assigned.
  size_t assigned = 0;
  for (TemplateId id : out->assignments) {
    if (id != kInvalidTemplateId) ++assigned;
  }
  EXPECT_EQ(assigned, 20u);
}

TEST(TrainerTest, DedupPreservesAssignments) {
  // With and without dedup, logs of the same shape get one leaf.
  auto logs = SshLikeLogs();
  TrainerOptions no_dedup;
  no_dedup.preprocess.deduplicate = false;
  Trainer t1(TrainerOptions{});
  Trainer t2(no_dedup);
  auto a = t1.Train(logs, VariableReplacer::Default());
  auto b = t2.Train(logs, VariableReplacer::Default());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Identical raw logs must map to identical templates in each run.
  std::map<std::string, std::set<TemplateId>> by_text_a;
  std::map<std::string, std::set<TemplateId>> by_text_b;
  for (size_t i = 0; i < logs.size(); ++i) {
    by_text_a[logs[i]].insert(a->assignments[i]);
    by_text_b[logs[i]].insert(b->assignments[i]);
  }
  for (const auto& [text, ids] : by_text_a) EXPECT_EQ(ids.size(), 1u) << text;
  for (const auto& [text, ids] : by_text_b) EXPECT_EQ(ids.size(), 1u) << text;
}

TEST(MatcherTest, MatchAgreesWithTrainingAssignments) {
  // §5.4.1: text-based matching reproduces clustering assignments almost
  // exactly. On this clean corpus we require full agreement of the
  // induced partitions (same group <=> same template).
  ByteBrainParser parser(DefaultOptions());
  auto logs = SshLikeLogs();
  ASSERT_TRUE(parser.Train(logs).ok());
  auto matched = parser.MatchAll(logs, 2);
  const auto& assigned = parser.training_assignments();
  std::map<TemplateId, TemplateId> bijection;
  for (size_t i = 0; i < logs.size(); ++i) {
    ASSERT_NE(matched[i], kInvalidTemplateId) << logs[i];
    auto [it, inserted] = bijection.emplace(assigned[i], matched[i]);
    EXPECT_EQ(it->second, matched[i]) << logs[i];
  }
}

TEST(MatcherTest, MatchesPreferHigherSaturation) {
  ByteBrainParser parser(DefaultOptions());
  auto logs = SshLikeLogs();
  ASSERT_TRUE(parser.Train(logs).ok());
  const TemplateId id = parser.Match(
      "Accepted password for user1 from 10.0.0.2 port 40001 ssh2");
  ASSERT_NE(id, kInvalidTemplateId);
  const TreeNode* n = parser.model().node(id);
  ASSERT_NE(n, nullptr);
  // The matched node must be maximally precise (a leaf).
  EXPECT_TRUE(n->is_leaf());
}

TEST(MatcherTest, NoMatchForUnseenShape) {
  ByteBrainParser parser(DefaultOptions());
  ASSERT_TRUE(parser.Train(SshLikeLogs()).ok());
  EXPECT_EQ(parser.Match("completely different structure with nine tokens"),
            kInvalidTemplateId);
}

TEST(MatcherTest, UntrainedParserMatchesNothing) {
  ByteBrainParser parser(DefaultOptions());
  EXPECT_EQ(parser.Match("anything"), kInvalidTemplateId);
  auto all = parser.MatchAll(std::vector<std::string>{"a", "b"}, 1);
  EXPECT_EQ(all[0], kInvalidTemplateId);
}

TEST(ParserTest, MatchOrAdoptInsertsTemporary) {
  ByteBrainParser parser(DefaultOptions());
  ASSERT_TRUE(parser.Train(SshLikeLogs()).ok());
  const size_t before = parser.model().size();
  const TemplateId adopted =
      parser.MatchOrAdopt("brand new shape never seen at training");
  ASSERT_NE(adopted, kInvalidTemplateId);
  EXPECT_EQ(parser.model().size(), before + 1);
  EXPECT_TRUE(parser.model().node(adopted)->temporary);
  // The same shape now matches without creating another template.
  const TemplateId again =
      parser.MatchOrAdopt("brand new shape never seen at training");
  EXPECT_EQ(again, adopted);
  EXPECT_EQ(parser.model().size(), before + 1);
  // Same shape, different variables: the temporary template is literal,
  // so an exact-token match is required.
  EXPECT_EQ(parser.Match("brand new shape never seen at training"), adopted);
}

TEST(ParserTest, AdoptionDoesNotDisturbExistingMatching) {
  // The incremental matcher insert must leave every previously-matching
  // log matching the same template.
  ByteBrainParser parser(DefaultOptions());
  auto logs = SshLikeLogs();
  ASSERT_TRUE(parser.Train(logs).ok());
  auto before = parser.MatchAll(logs, 1);
  for (int i = 0; i < 10; ++i) {
    parser.MatchOrAdopt("adopted shape number " + std::to_string(i) +
                        " with unique words");
  }
  auto after = parser.MatchAll(logs, 1);
  EXPECT_EQ(before, after);
  // And the adopted shapes keep matching their own templates.
  const TemplateId a =
      parser.MatchOrAdopt("adopted shape number 3 with unique words");
  EXPECT_TRUE(parser.model().node(a)->temporary);
}

TEST(ParserTest, ThresholdControlsPrecision) {
  ByteBrainParser parser(DefaultOptions());
  auto logs = SshLikeLogs();
  ASSERT_TRUE(parser.Train(logs).ok());
  const TemplateId leaf = parser.Match(
      "Failed password for user2 from 10.0.1.3 port 50002 ssh2");
  ASSERT_NE(leaf, kInvalidTemplateId);
  auto coarse = parser.ResolveAtThreshold(leaf, 0.05);
  auto fine = parser.ResolveAtThreshold(leaf, 0.99);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  const TreeNode* c = parser.model().node(coarse.value());
  const TreeNode* f = parser.model().node(fine.value());
  EXPECT_LE(c->saturation, f->saturation);
  // The coarse template must be an ancestor-or-self of the fine one.
  TemplateId walk = fine.value();
  bool found = walk == coarse.value();
  while (!found && walk != kInvalidTemplateId) {
    walk = parser.model().node(walk)->parent;
    found = walk == coarse.value();
  }
  EXPECT_TRUE(found);
}

TEST(ParserTest, RetrainMergesNewPatterns) {
  ByteBrainParser parser(DefaultOptions());
  ASSERT_TRUE(parser.Train(SshLikeLogs()).ok());
  EXPECT_EQ(parser.Match("kernel panic on cpu 3"), kInvalidTemplateId);
  std::vector<std::string> new_logs;
  for (int i = 0; i < 20; ++i) {
    new_logs.push_back("kernel panic on cpu " + std::to_string(i));
  }
  ASSERT_TRUE(parser.Retrain(new_logs).ok());
  // Old and new patterns both match after the merge.
  EXPECT_NE(parser.Match("kernel panic on cpu 9"), kInvalidTemplateId);
  EXPECT_NE(parser.Match(
                "Accepted password for user3 from 10.0.0.4 port 40009 ssh2"),
            kInvalidTemplateId);
}

TEST(ParserTest, RetrainDropsTemporaries) {
  ByteBrainParser parser(DefaultOptions());
  ASSERT_TRUE(parser.Train(SshLikeLogs()).ok());
  parser.MatchOrAdopt("kernel panic on cpu 1");
  std::vector<std::string> new_logs;
  for (int i = 0; i < 20; ++i) {
    new_logs.push_back("kernel panic on cpu " + std::to_string(i));
  }
  ASSERT_TRUE(parser.Retrain(new_logs).ok());
  for (const TreeNode& n : parser.model().nodes()) {
    EXPECT_FALSE(n.temporary);
  }
  // The adopted shape is now covered by a learned template.
  EXPECT_NE(parser.Match("kernel panic on cpu 77"), kInvalidTemplateId);
}

TEST(ParserTest, UserVariableRuleImprovesGeneralization) {
  ByteBrainOptions opts = DefaultOptions();
  ByteBrainParser parser(opts);
  ASSERT_TRUE(parser.AddVariableRule("blk", "blk_\\d+").ok());
  std::vector<std::string> logs;
  for (int i = 0; i < 30; ++i) {
    logs.push_back("Received block blk_" + std::to_string(1000000 + i) +
                   " of size " + std::to_string(512 + i));
  }
  ASSERT_TRUE(parser.Train(logs).ok());
  // An unseen block id must still match thanks to the rule.
  const TemplateId id =
      parser.Match("Received block blk_99999999 of size 4096");
  EXPECT_NE(id, kInvalidTemplateId);
}

TEST(ParserTest, TrainingAssignmentsMatchNaiveMatchSemantics) {
  // The naive_match option exposes training assignments; both paths must
  // induce the same grouping on the training set for this clean corpus.
  ByteBrainOptions opts = DefaultOptions();
  opts.naive_match = true;
  ByteBrainParser parser(opts);
  auto logs = SshLikeLogs();
  ASSERT_TRUE(parser.Train(logs).ok());
  EXPECT_EQ(parser.training_assignments().size(), logs.size());
}

TEST(ParserTest, DeterministicModelAcrossRuns) {
  auto logs = SshLikeLogs();
  ByteBrainParser p1(DefaultOptions());
  ByteBrainParser p2(DefaultOptions());
  ASSERT_TRUE(p1.Train(logs).ok());
  ASSERT_TRUE(p2.Train(logs).ok());
  EXPECT_EQ(p1.model().size(), p2.model().size());
  EXPECT_EQ(p1.model().Serialize(), p2.model().Serialize());
}

TEST(ParserTest, WorksOnGeneratedDatasets) {
  // Smoke: train + match across several generated datasets; every
  // training log must match SOME template online.
  for (const char* name : {"HDFS", "Apache", "Zookeeper"}) {
    DatasetGenerator gen(*FindDatasetSpec(name));
    Dataset ds = gen.GenerateLogHub();
    std::vector<std::string> logs;
    logs.reserve(ds.logs.size());
    for (auto& l : ds.logs) logs.push_back(l.text);
    ByteBrainParser parser(DefaultOptions());
    ASSERT_TRUE(parser.Train(logs).ok()) << name;
    auto matched = parser.MatchAll(logs, 2);
    size_t misses = 0;
    for (TemplateId id : matched) {
      if (id == kInvalidTemplateId) ++misses;
    }
    EXPECT_EQ(misses, 0u) << name;
  }
}

}  // namespace
}  // namespace bytebrain
