// Query-engine bench: the index-backed read path (ROADMAP "Query
// engine: indexed reads + bounded page cache").
//
// Three series over one disk-backed topic whose sealed segments start
// fully COLD (sealing registers a segment with the cache without
// mapping it):
//   1. indexed vs scan — a count-only query answered wholesale from the
//      per-segment postings (touches no record bytes, maps no segments)
//      against the legacy full grouping scan over the same window;
//   2. cold vs warm — the first template-filtered page faults in only
//      the segments whose postings hold the page's templates, the
//      repeat run hits the cache; then the budget is capped below the
//      sealed footprint and a full scan shows LRU evictions keeping
//      residency under budget;
//   3. per-page latency across 100 pages — resume-key pagination keeps
//      page N at page-1 cost instead of regrouping the whole window.
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "logstore/segment_cache.h"
#include "service/log_service.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace bytebrain;

namespace {

constexpr uint64_t kShapes = 400;
constexpr uint64_t kRecordsPerShape = 150;
constexpr uint64_t kPages = 100;

// Shape names are alphabetic so the variable replacer leaves them
// alone (numeric tokens would all merge into one "<*>" template).
std::string ShapeName(uint64_t shape) {
  std::string name;
  do {
    name.push_back(static_cast<char>('a' + shape % 26));
    shape /= 26;
  } while (shape != 0);
  return name;
}

std::string TextFor(uint64_t shape, uint64_t i) {
  std::string text = "job" + ShapeName(shape) + " unit " + ShapeName(shape) +
                     " finished step " + std::to_string(i) + " of " +
                     std::to_string(kRecordsPerShape);
  // Vary the token count so the trainer cannot merge shapes into one
  // wildcard template — the bench needs a stable many-group window.
  for (uint64_t h = 0; h < shape % 7; ++h) text += " hop" + ShapeName(shape);
  return text;
}

struct VisitsAndMisses {
  uint64_t visits = 0;
  uint64_t misses = 0;
  uint64_t hits = 0;
  uint64_t evictions = 0;
};

VisitsAndMisses Counters(const ManagedTopic& topic) {
  const TopicStats s = topic.stats();
  return {s.storage_scan_record_visits, s.storage_cache_misses,
          s.storage_cache_hits, s.storage_cache_evictions};
}

}  // namespace

int main() {
  PrintBenchHeader("Query engine — postings, page cache, cursor pages",
                   "ROADMAP: indexed reads + bounded page cache");

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("bb_bench_query_" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);

  // Private cache so another bench's traffic can't pollute the
  // counters. Declared before the topic: it must outlive the backend.
  SegmentCache cache(/*budget_bytes=*/64ull << 20);

  TopicConfig cfg;
  cfg.storage.kind = StorageConfig::Kind::kSegmentedDisk;
  cfg.storage.directory = dir;
  cfg.storage.segment_data_bytes = 64 * 1024;  // many small segments
  cfg.storage.segment_cache = &cache;
  // A few interleaved warm-up rounds show the initial training every
  // shape (with enough support per shape), so it mints one template per
  // shape; the clustered bulk ingest afterwards matches those instead
  // of adopting temporaries.
  constexpr uint64_t kWarmRounds = 4;
  cfg.initial_train_records = kShapes * kWarmRounds;
  cfg.train_interval_records = 1ull << 40;
  cfg.train_volume_bytes = 1ull << 50;
  cfg.async_training = false;
  {
    ManagedTopic topic("bench_query", cfg);

    uint64_t ts = 0;
    for (uint64_t i = 0; i < kWarmRounds; ++i) {
      for (uint64_t shape = 0; shape < kShapes; ++shape) {
        if (!topic.Ingest(TextFor(shape, i), ts++).ok()) {
          std::fprintf(stderr, "ingest failed\n");
          return 1;
        }
      }
    }
    // Bulk shape-by-shape so each template's records cluster into few
    // segments — the layout postings-based segment skipping rewards.
    for (uint64_t shape = 0; shape < kShapes; ++shape) {
      std::vector<std::string> batch;
      batch.reserve(kRecordsPerShape - kWarmRounds);
      std::vector<uint64_t> stamps;
      stamps.reserve(kRecordsPerShape - kWarmRounds);
      for (uint64_t i = kWarmRounds; i < kRecordsPerShape; ++i) {
        batch.push_back(TextFor(shape, i));
        stamps.push_back(ts++);
      }
      if (!topic.IngestBatch(std::move(batch), stamps).ok()) {
        std::fprintf(stderr, "ingest failed\n");
        return 1;
      }
    }
    const uint64_t window = kShapes * kRecordsPerShape;
    const uint64_t sealed_bytes = [&dir] {
      uint64_t total = 0;
      for (const auto& e : std::filesystem::directory_iterator(dir)) {
        if (e.is_regular_file() && e.path().extension() == ".log") {
          total += e.file_size();
        }
      }
      return total;
    }();
    std::printf("topic: %llu records, %llu shapes, %s sealed\n\n",
                static_cast<unsigned long long>(window),
                static_cast<unsigned long long>(kShapes),
                FormatBytes(sealed_bytes).c_str());

    TablePrinter table({"Query", "ms", "RecVisits", "CacheMiss", "CacheHit"},
                       {34, 9, 10, 10, 9});
    table.PrintHeader();
    uint64_t total_groups = 0;
    const auto run = [&](const char* label, bool collect_sequences,
                         uint64_t max_groups, uint64_t offset = 0) {
      const VisitsAndMisses before = Counters(topic);
      QueryPageRequest req;
      req.saturation_threshold = 1.0;
      req.collect_sequences = collect_sequences;
      req.max_groups = max_groups;
      req.offset = offset;
      Timer t;
      auto page = topic.QueryGroups(req);
      const double ms = t.ElapsedSeconds() * 1e3;
      if (!page.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     page.status().ToString().c_str());
        std::exit(1);
      }
      total_groups = page.value().total_groups;
      const VisitsAndMisses after = Counters(topic);
      table.PrintRow({label, TablePrinter::Fmt(ms),
                      std::to_string(after.visits - before.visits),
                      std::to_string(after.misses - before.misses),
                      std::to_string(after.hits - before.hits)});
    };

    // 1. Indexed vs scan, on a fully cold cache: the count-only query is
    // answered from postings (zero record visits, zero segment maps);
    // the legacy whole-window grouping pays the full scan.
    run("count-only (postings)", /*collect_sequences=*/false,
        /*max_groups=*/0);
    // 2. Cold vs warm template-filtered page deep in the group order
    // (small groups, each clustered into a couple of segments): only
    // segments whose postings hold the page's templates get mapped.
    const uint64_t page_size = kShapes / kPages;
    const uint64_t tail_page =
        total_groups > page_size ? total_groups - page_size : 0;
    run("filtered tail page, cold", /*collect_sequences=*/true,
        /*max_groups=*/page_size, /*offset=*/tail_page);
    run("filtered tail page, warm", /*collect_sequences=*/true,
        /*max_groups=*/page_size, /*offset=*/tail_page);
    run("full scan, cold-ish", /*collect_sequences=*/true, /*max_groups=*/0);
    run("full scan, warm", /*collect_sequences=*/true, /*max_groups=*/0);

    // Budget capped below the sealed footprint: a full rescan must evict
    // as it goes and still land under budget.
    cache.set_budget_bytes(sealed_bytes / 2);
    const VisitsAndMisses before_cap = Counters(topic);
    run("full scan, budget=sealed/2", /*collect_sequences=*/true,
        /*max_groups=*/0);
    const VisitsAndMisses after_cap = Counters(topic);
    const TopicStats capped = topic.stats();
    std::printf(
        "\nbudget cap: %s budget, %s resident after scan, %llu evictions\n",
        FormatBytes(sealed_bytes / 2).c_str(),
        FormatBytes(capped.storage_mapped_bytes).c_str(),
        static_cast<unsigned long long>(after_cap.evictions -
                                        before_cap.evictions));
    cache.set_budget_bytes(64ull << 20);

    // 3. Per-page latency across the whole window: page N+1 resumes
    // from page N's (count, template_id) key, so late pages cost the
    // same as early ones instead of regrouping pages 1..N.
    std::vector<double> page_us;
    page_us.reserve(kPages);
    QueryPageRequest req;
    req.saturation_threshold = 1.0;
    req.max_groups = kShapes / kPages;
    uint64_t groups_seen = 0;
    for (;;) {
      Timer t;
      auto page = topic.QueryGroups(req);
      const double us = t.ElapsedSeconds() * 1e6;
      if (!page.ok()) {
        std::fprintf(stderr, "page failed\n");
        return 1;
      }
      page_us.push_back(us);
      groups_seen += page.value().groups.size();
      if (!page.value().has_more) break;
      req.has_resume_key = true;
      req.resume_count = page.value().last_count;
      req.resume_template_id = page.value().last_template_id;
    }
    std::vector<double> sorted = page_us;
    std::sort(sorted.begin(), sorted.end());
    const double p50 = sorted[sorted.size() / 2];
    const double p90 = sorted[sorted.size() * 9 / 10];
    std::printf(
        "\npagination: %zu pages, %llu groups; per-page us: first=%.0f "
        "p50=%.0f p90=%.0f max=%.0f last/first=%.2fx\n",
        page_us.size(), static_cast<unsigned long long>(groups_seen),
        page_us.front(), p50, p90, sorted.back(),
        page_us.back() / page_us.front());
    std::printf(
        "shape check: late pages stay within noise of page 1 (the old\n"
        "cursor re-grouped the whole window per page, so page N cost\n"
        "N x page 1).\n");
  }
  std::filesystem::remove_all(dir);
  return 0;
}
