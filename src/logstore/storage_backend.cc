#include "logstore/storage_backend.h"

#include <algorithm>

#include "logstore/disk_backend.h"

namespace bytebrain {

MemoryBackend::MemoryBackend(size_t segment_capacity)
    : segment_capacity_(segment_capacity == 0 ? 1 : segment_capacity) {}

Status MemoryBackend::Append(LogRecord record) {
  if (segments_.empty() ||
      segments_.back()->records.size() >= segment_capacity_) {
    segments_.push_back(std::make_unique<Segment>());
    segments_.back()->records.reserve(segment_capacity_);
  }
  text_bytes_ += record.text.size();
  segments_.back()->records.push_back(std::move(record));
  ++count_;
  return Status::OK();
}

Status MemoryBackend::AppendBatch(std::vector<LogRecord> records) {
  for (LogRecord& record : records) {
    (void)Append(std::move(record));  // cannot fail
  }
  return Status::OK();
}

const LogRecord* MemoryBackend::Locate(uint64_t seq) const {
  if (seq >= count_) return nullptr;
  const size_t seg = seq / segment_capacity_;
  const size_t off = seq % segment_capacity_;
  return &segments_[seg]->records[off];
}

Status MemoryBackend::Read(uint64_t seq, LogRecord* out) const {
  const LogRecord* rec = Locate(seq);
  if (rec == nullptr) {
    return Status::NotFound("sequence " + std::to_string(seq) +
                            " beyond end of store");
  }
  *out = *rec;
  return Status::OK();
}

Status MemoryBackend::Scan(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, const LogRecord&)>& fn) const {
  end = std::min(end, count_);
  for (uint64_t seq = begin; seq < end; ++seq) {
    fn(seq, *Locate(seq));
  }
  return Status::OK();
}

Status MemoryBackend::AssignTemplate(uint64_t seq, TemplateId template_id) {
  if (seq >= count_) {
    return Status::NotFound("sequence beyond end of store");
  }
  const size_t seg = seq / segment_capacity_;
  const size_t off = seq % segment_capacity_;
  segments_[seg]->records[off].template_id = template_id;
  return Status::OK();
}

Status MemoryBackend::AssignTemplates(uint64_t begin_seq,
                                      const std::vector<TemplateId>& ids) {
  if (begin_seq + ids.size() > count_) {
    return Status::NotFound("range beyond end of store");
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    const uint64_t seq = begin_seq + i;
    segments_[seq / segment_capacity_]
        ->records[seq % segment_capacity_]
        .template_id = ids[i];
  }
  return Status::OK();
}

Status MemoryBackend::Clear() {
  segments_.clear();
  count_ = 0;
  text_bytes_ = 0;
  metadata_.clear();
  return Status::OK();
}

Status MemoryBackend::Checkpoint(std::string_view metadata) {
  metadata_.assign(metadata);
  return Status::OK();
}

std::unique_ptr<StorageBackend> CreateStorageBackend(
    const StorageConfig& config) {
  switch (config.kind) {
    case StorageConfig::Kind::kSegmentedDisk:
      return std::make_unique<SegmentedDiskBackend>(config);
    case StorageConfig::Kind::kMemory:
      break;
  }
  return std::make_unique<MemoryBackend>(config.memory_segment_capacity);
}

}  // namespace bytebrain
