// Adaptive precision: reproduces the paper's Table-4 experience — one
// Android-style corpus, templates rendered at several saturation
// thresholds, from a single generalized pattern down to per-process
// variants. No reprocessing happens between thresholds; the query just
// walks the clustering tree.
//
//   ./examples/adaptive_precision
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/parser.h"
#include "datagen/generator.h"

using namespace bytebrain;

int main() {
  DatasetGenerator generator(*FindDatasetSpec("Android"));
  Dataset dataset = generator.GenerateLogHub();
  std::vector<std::string> logs;
  logs.reserve(dataset.logs.size());
  for (const auto& l : dataset.logs) logs.push_back(l.text);

  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  options.trainer.preprocess.num_threads = 2;
  ByteBrainParser parser(options);
  if (!parser.Train(logs).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  // Focus on the wake-lock logs (the Table 4 workload).
  std::vector<TemplateId> lock_leaves;
  for (size_t i = 0; i < logs.size(); ++i) {
    if (logs[i].rfind("acquire lock=", 0) == 0 ||
        logs[i].rfind("release lock=", 0) == 0) {
      const TemplateId id = parser.Match(logs[i]);
      if (id != kInvalidTemplateId) lock_leaves.push_back(id);
    }
  }
  if (lock_leaves.empty()) {
    std::fprintf(stderr, "no lock logs in the corpus?\n");
    return 1;
  }

  std::printf("Templates for wake-lock logs at increasing saturation "
              "thresholds\n");
  std::printf("(cf. paper Table 4 — more templates, more specific, as the "
              "threshold rises)\n\n");
  for (double threshold : {0.05, 0.5, 0.78, 0.9, 0.95}) {
    std::set<std::string> templates;
    for (TemplateId leaf : lock_leaves) {
      auto resolved = parser.ResolveAtThreshold(leaf, threshold);
      if (resolved.ok()) {
        templates.insert(parser.TemplateText(resolved.value()));
      }
    }
    std::printf("saturation >= %.2f  (%zu templates)\n", threshold,
                templates.size());
    size_t shown = 0;
    for (const auto& t : templates) {
      std::printf("    %s\n", t.c_str());
      if (++shown == 8) {
        std::printf("    ... (%zu more)\n", templates.size() - shown);
        break;
      }
    }
    std::printf("\n");
  }
  return 0;
}
