// 64-bit token hashing (paper §4.1.4).
//
// Tokens are encoded as 64-bit integers with a deterministic hash so the
// same function serves offline clustering and online matching without a
// stored token->id dictionary. The collision probability follows the
// birthday bound in the paper's Eq. 1 (~2.7e-6 for 10M distinct tokens).
#pragma once

#include <cstdint>
#include <string_view>

namespace bytebrain {

/// Finalizer from splitmix64; full-avalanche 64-bit mixer.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the bytes, then avalanche-mixed. Deterministic across runs
/// and processes (no per-process seed), as required for offline/online
/// consistency.
constexpr uint64_t HashToken(std::string_view token) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : token) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// Combines two hashes (order-sensitive), boost::hash_combine style.
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Hash of a full token sequence; used as the deduplication key.
template <typename It>
uint64_t HashTokenSequence(It begin, It end) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (It it = begin; it != end; ++it) {
    h = HashCombine(h, *it);
  }
  return h;
}

}  // namespace bytebrain
