// Table 3: grouping accuracy on the 14 (scaled) LogHub-2.0 datasets.
// Super-linear baselines are skipped where their projected cost explodes,
// mirroring the paper's "failed to finish" blanks.
#include <map>

#include "baselines/registry.h"
#include "bench/bench_common.h"
#include "bench/paper_reference.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Table 3 — Group Accuracy on LogHub-2.0 (scaled)",
                   "paper Table 3");

  const auto specs = LogHub2Specs();
  std::map<std::string, std::map<std::string, std::string>> cells;
  std::map<std::string, double> sums;
  std::map<std::string, int> counts;
  std::vector<std::string> method_order;

  for (const DatasetSpec& spec : specs) {
    Dataset ds = ScaledLogHub2(spec);
    BaselineHints hints;
    hints.expected_templates = ds.num_templates;
    hints.gt_labels = LabelsOf(ds);
    // Semantic stand-ins run on a bounded prefix (constant per-log cost;
    // see bench_common.h).
    Dataset prefix = DatasetPrefix(ds);
    BaselineHints prefix_hints;
    prefix_hints.expected_templates = prefix.num_templates;
    prefix_hints.gt_labels = LabelsOf(prefix);

    auto parsers = MakeSyntaxBaselines(hints);
    auto semantic = MakeSemanticBaselines(prefix_hints);
    if (method_order.empty()) {
      for (auto& parser : parsers) method_order.push_back(parser->name());
      for (auto& parser : semantic) method_order.push_back(parser->name());
      method_order.push_back("ByteBrain");
    }
    for (auto& parser : parsers) {
      if (!Affordable(parser->name(), ds.logs.size(), ds.num_templates)) {
        cells[parser->name()][spec.name] = "-";  // failed-to-finish analogue
        continue;
      }
      RunResult r = RunOn(parser.get(), ds);
      cells[parser->name()][spec.name] =
          TablePrinter::Fmt(r.grouping_accuracy);
      sums[parser->name()] += r.grouping_accuracy;
      counts[parser->name()]++;
    }
    for (auto& parser : semantic) {
      RunResult r = RunOn(parser.get(), prefix);
      cells[parser->name()][spec.name] =
          TablePrinter::Fmt(r.grouping_accuracy);
      sums[parser->name()] += r.grouping_accuracy;
      counts[parser->name()]++;
    }
    ByteBrainAdapter bytebrain(ByteBrainDefaultConfig());
    RunResult r = RunOn(&bytebrain, ds);
    cells["ByteBrain"][spec.name] = TablePrinter::Fmt(r.grouping_accuracy);
    sums["ByteBrain"] += r.grouping_accuracy;
    counts["ByteBrain"]++;
    std::printf("  [done] %-12s (%zu logs)\n", spec.name.c_str(),
                ds.logs.size());
  }
  std::printf("\n");

  std::vector<std::string> headers = {"Method"};
  std::vector<int> widths = {12};
  for (const DatasetSpec& spec : specs) {
    headers.push_back(spec.name.substr(0, 6));
    widths.push_back(8);
  }
  headers.push_back("Avg");
  widths.push_back(7);
  headers.push_back("Paper");
  widths.push_back(7);
  TablePrinter table(headers, widths);
  table.PrintHeader();

  for (const std::string& method : method_order) {
    std::vector<std::string> row = {method.substr(0, 11)};
    for (const DatasetSpec& spec : specs) {
      auto it = cells[method].find(spec.name);
      row.push_back(it == cells[method].end() ? "-" : it->second);
    }
    row.push_back(counts[method] > 0
                      ? TablePrinter::Fmt(sums[method] / counts[method])
                      : "-");
    const auto it = PaperTable3Averages().find(method);
    row.push_back(it != PaperTable3Averages().end()
                      ? TablePrinter::Fmt(it->second)
                      : "-");
    table.PrintRow(row);
  }

  std::printf("\nByteBrain per-dataset, paper vs measured:\n");
  for (const DatasetSpec& spec : specs) {
    std::printf("  %-12s paper %.2f  measured %s\n", spec.name.c_str(),
                PaperTable3ByteBrain().at(spec.name),
                cells["ByteBrain"][spec.name].c_str());
  }
  return 0;
}
