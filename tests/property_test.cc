// Property-based tests: randomized differential and invariant checks
// across the regex engine, tokenizer, saturation, clustering, model
// round-trips and grouping accuracy.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <regex>
#include <set>
#include <unordered_map>

#include "core/cluster.h"
#include "core/model.h"
#include "core/parser.h"
#include "core/tokenizer.h"
#include "eval/metrics.h"
#include "logstore/disk_backend.h"
#include "logstore/fault_injection.h"
#include "regex/regex.h"
#include "util/rng.h"

namespace bytebrain {
namespace {

// ---------------------------------------------------------------------
// Regex engine vs std::regex (ECMAScript) differential.
//
// Whole-string acceptance is preference-order independent, so
// Regex::FullMatch and std::regex_match must agree for any pattern both
// engines support.
// ---------------------------------------------------------------------

std::string RandomPattern(Rng* rng) {
  static const char* atoms[] = {"a",    "b",     "c",    "\\d", "\\w",
                                "[ab]", "[a-c]", "[^c]", "."};
  static const char* quants[] = {"", "", "*", "+", "?", "{2}", "{1,3}"};
  std::string p;
  const int pieces = 1 + static_cast<int>(rng->NextBelow(5));
  for (int i = 0; i < pieces; ++i) {
    p += atoms[rng->NextBelow(std::size(atoms))];
    p += quants[rng->NextBelow(std::size(quants))];
  }
  return p;
}

std::string RandomText(Rng* rng) {
  static const char alphabet[] = "abc1 ";
  std::string t;
  const int len = static_cast<int>(rng->NextBelow(9));
  for (int i = 0; i < len; ++i) {
    t += alphabet[rng->NextBelow(5)];
  }
  return t;
}

class RegexDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RegexDifferentialTest, FullMatchAgreesWithStdRegex) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const std::string pattern = RandomPattern(&rng);
    auto mine = Regex::Compile(pattern);
    ASSERT_TRUE(mine.ok()) << pattern;
    std::regex theirs(pattern, std::regex::ECMAScript);
    for (int t = 0; t < 20; ++t) {
      const std::string text = RandomText(&rng);
      const bool my_answer = mine->FullMatch(text);
      const bool their_answer = std::regex_match(text, theirs);
      ASSERT_EQ(my_answer, their_answer)
          << "pattern='" << pattern << "' text='" << text << "'";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegexDifferentialTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// ---------------------------------------------------------------------
// Tokenizer invariants on random byte strings.
// ---------------------------------------------------------------------

class TokenizerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerFuzzTest, TokensAreNonEmptyOrderedSubstrings) {
  Rng rng(GetParam());
  static const char alphabet[] =
      "ab:=/\\'\" .,;(){}[]<>?@&\t\n0129-_*xyzXYZ";
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const int len = static_cast<int>(rng.NextBelow(60));
    for (int i = 0; i < len; ++i) {
      text += alphabet[rng.NextBelow(sizeof(alphabet) - 1)];
    }
    auto tokens = TokenizeDefault(text);
    size_t cursor = 0;
    for (std::string_view tok : tokens) {
      ASSERT_FALSE(tok.empty()) << '"' << text << '"';
      // Each token must be a substring of the input at or after the
      // previous token's end (order preserved, no overlap).
      const size_t pos = text.find(std::string(tok), cursor);
      ASSERT_NE(pos, std::string::npos) << '"' << text << '"';
      cursor = pos + tok.size();
      // Tokens never contain hard delimiter characters.
      for (char c : tok) {
        ASSERT_EQ(std::string_view("\t\n ;=,(){}[]<>?@&'\"").find(c),
                  std::string_view::npos)
            << '"' << text << "\" token \"" << tok << '"';
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFuzzTest,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------
// Saturation invariants on random groups.
// ---------------------------------------------------------------------

std::vector<EncodedLog> RandomLogs(Rng* rng, size_t n, size_t m,
                                   uint32_t vocab) {
  std::vector<EncodedLog> logs(n);
  for (auto& log : logs) {
    log.count = 1;
    for (size_t p = 0; p < m; ++p) {
      const std::string tok =
          "t" + std::to_string(p) + "_" + std::to_string(rng->NextBelow(vocab));
      log.tokens.push_back(HashToken(tok));
      log.token_texts.push_back(tok);
    }
  }
  return logs;
}

class SaturationPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SaturationPropertyTest, BoundedAndOneIffResolvedOrConfirmedVariable) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + rng.NextBelow(12);
    const size_t m = 1 + rng.NextBelow(8);
    const uint32_t vocab = 1 + static_cast<uint32_t>(rng.NextBelow(6));
    auto logs = RandomLogs(&rng, n, m, vocab);
    std::vector<uint32_t> members(n);
    for (uint32_t i = 0; i < n; ++i) members[i] = i;
    const double s = ComputeSaturation(logs, members, {});
    ASSERT_GE(s, 0.0);
    ASSERT_LE(s, 1.0);
    const PositionStats stats = ComputePositionStats(logs, members);
    uint32_t unresolved_full = 0;
    uint32_t unresolved = 0;
    for (uint32_t nu : stats.distinct) {
      if (nu <= 1) continue;
      ++unresolved;
      if (nu == stats.num_logs) ++unresolved_full;
    }
    if (stats.fully_resolved() ||
        (unresolved == 1 && unresolved_full == 1)) {
      ASSERT_DOUBLE_EQ(s, 1.0);
    } else {
      ASSERT_LT(s, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SaturationPropertyTest,
                         ::testing::Values(101, 202, 303));

// ---------------------------------------------------------------------
// Clustering partition invariant on random groups.
// ---------------------------------------------------------------------

class ClusterPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClusterPropertyTest, OutcomeIsAlwaysAPartition) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 60; ++trial) {
    const size_t n = 2 + rng.NextBelow(30);
    const size_t m = 2 + rng.NextBelow(6);
    auto logs = RandomLogs(&rng, n, m, 4);
    // Dedup identical token rows (the clusterer's contract).
    std::vector<uint32_t> members;
    std::set<std::vector<uint64_t>> seen;
    for (uint32_t i = 0; i < n; ++i) {
      if (seen.insert(logs[i].tokens).second) members.push_back(i);
    }
    if (members.size() < 2) continue;
    const double parent = ComputeSaturation(logs, members, {});
    Rng crng(trial * 7919 + GetParam());
    auto outcome =
        SingleClusteringProcess(logs, members, parent, {}, &crng);
    if (!outcome.split) continue;
    std::vector<uint32_t> all;
    for (const auto& c : outcome.clusters) {
      ASSERT_FALSE(c.empty());
      all.insert(all.end(), c.begin(), c.end());
    }
    std::sort(all.begin(), all.end());
    std::vector<uint32_t> expected = members;
    std::sort(expected.begin(), expected.end());
    ASSERT_EQ(all, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterPropertyTest,
                         ::testing::Values(7, 77, 777));

// ---------------------------------------------------------------------
// Model serialization round-trip on random trees.
// ---------------------------------------------------------------------

class ModelRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ModelRoundTripTest, SerializeDeserializeIsIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    TemplateModel model;
    const size_t n = 1 + rng.NextBelow(40);
    std::vector<TemplateId> ids;
    for (size_t i = 0; i < n; ++i) {
      const TemplateId parent =
          ids.empty() || rng.NextBelow(4) == 0
              ? kInvalidTemplateId
              : ids[rng.NextBelow(ids.size())];
      std::vector<std::string> tokens;
      const size_t len = 1 + rng.NextBelow(6);
      for (size_t t = 0; t < len; ++t) {
        tokens.push_back(rng.NextBelow(3) == 0
                             ? "*"
                             : "w" + std::to_string(rng.NextBelow(12)));
      }
      ids.push_back(model.AddNode(parent, rng.NextDouble(), tokens,
                                  rng.NextBelow(1000),
                                  rng.NextBelow(8) == 0));
    }
    auto restored = TemplateModel::Deserialize(model.Serialize());
    ASSERT_TRUE(restored.ok());
    ASSERT_EQ(restored->size(), model.size());
    ASSERT_EQ(restored->Serialize(), model.Serialize());
    for (TemplateId id : ids) {
      const TreeNode* a = model.node(id);
      const TreeNode* b = restored->node(id);
      ASSERT_EQ(a->parent, b->parent);
      ASSERT_EQ(a->tokens, b->tokens);
      ASSERT_EQ(a->children, b->children);
      ASSERT_DOUBLE_EQ(a->saturation, b->saturation);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelRoundTripTest,
                         ::testing::Values(13, 131, 1313));

// ---------------------------------------------------------------------
// Grouping accuracy metric properties.
// ---------------------------------------------------------------------

class MetricsPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricsPropertyTest, RelabelingInvarianceAndSelfIdentity) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 1 + rng.NextBelow(200);
    std::vector<uint32_t> gt(n);
    for (auto& g : gt) g = static_cast<uint32_t>(rng.NextBelow(10));
    // Identity: predicting gt itself scores 1.
    std::vector<uint64_t> same(gt.begin(), gt.end());
    ASSERT_DOUBLE_EQ(GroupingAccuracy(same, gt), 1.0);
    // Invariance under bijective relabeling.
    std::vector<uint64_t> relabeled(n);
    for (size_t i = 0; i < n; ++i) relabeled[i] = Mix64(gt[i] + 7);
    ASSERT_DOUBLE_EQ(GroupingAccuracy(relabeled, gt), 1.0);
    // Any prediction scores within [0, 1].
    std::vector<uint64_t> random(n);
    for (auto& r : random) r = rng.NextBelow(5);
    const double ga = GroupingAccuracy(random, gt);
    ASSERT_GE(ga, 0.0);
    ASSERT_LE(ga, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricsPropertyTest,
                         ::testing::Values(3, 33, 333));

// ---------------------------------------------------------------------
// Segmented disk backend round-trip: arbitrary record batches written
// through the disk backend, reopened, must read back byte-identical
// with identical sequence numbers — across 100 seeded corpora (4 seed
// params x 25 trials) covering empty texts, delimiter-heavy bytes,
// random segment sizes (many seals), template reassignments, and
// mid-stream checkpoints.
// ---------------------------------------------------------------------

class DiskRoundTripTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DiskRoundTripTest, ReopenIsByteIdentical) {
  Rng rng(GetParam());
  static const char alphabet[] =
      "ab:=/\\'\" .,;(){}[]<>?@&\t\n0129-_*xyzXYZ\x01\x7f\xff";
  for (int trial = 0; trial < 25; ++trial) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("bb_prop_" + std::to_string(::getpid()) + "_" +
          std::to_string(GetParam()) + "_" + std::to_string(trial)))
            .string();
    std::filesystem::remove_all(dir);

    StorageConfig cfg;
    cfg.kind = StorageConfig::Kind::kSegmentedDisk;
    cfg.directory = dir;
    cfg.segment_data_bytes = 64 + rng.NextBelow(512);  // force many seals
    std::vector<LogRecord> written;
    {
      SegmentedDiskBackend backend(cfg);
      ASSERT_TRUE(backend.Open().ok());
      const int batches = 1 + static_cast<int>(rng.NextBelow(5));
      for (int b = 0; b < batches; ++b) {
        const int count = static_cast<int>(rng.NextBelow(40));
        for (int i = 0; i < count; ++i) {
          LogRecord rec;
          rec.timestamp_us = rng.Next();
          rec.template_id = rng.NextBelow(1000);
          const int len = static_cast<int>(rng.NextBelow(80));
          for (int c = 0; c < len; ++c) {
            rec.text += alphabet[rng.NextBelow(sizeof(alphabet) - 1)];
          }
          written.push_back(rec);
          ASSERT_TRUE(backend.Append(std::move(rec)).ok());
        }
        if (rng.NextBelow(3) == 0) {
          ASSERT_TRUE(
              backend.Checkpoint("meta" + std::to_string(b)).ok());
        }
      }
      // Random template reassignments (sealed and active alike).
      for (size_t i = 0; i < written.size(); i += 1 + rng.NextBelow(7)) {
        const TemplateId id = rng.NextBelow(5000);
        written[i].template_id = id;
        ASSERT_TRUE(backend.AssignTemplate(i, id).ok());
      }
      ASSERT_TRUE(backend.Flush().ok());
    }

    SegmentedDiskBackend reopened(cfg);
    ASSERT_TRUE(reopened.Open().ok());
    ASSERT_EQ(reopened.size(), written.size()) << dir;
    uint64_t expect_bytes = 0;
    for (uint64_t seq = 0; seq < written.size(); ++seq) {
      LogRecord rec;
      ASSERT_TRUE(reopened.Read(seq, &rec).ok());
      EXPECT_EQ(rec.text, written[seq].text) << "seq " << seq;
      EXPECT_EQ(rec.timestamp_us, written[seq].timestamp_us) << "seq " << seq;
      EXPECT_EQ(rec.template_id, written[seq].template_id) << "seq " << seq;
      expect_bytes += rec.text.size();
    }
    EXPECT_EQ(reopened.text_bytes(), expect_bytes);
    // Scan agrees with Read, with consecutive sequence numbers.
    uint64_t next_seq = 0;
    ASSERT_TRUE(reopened
                    .Scan(0, reopened.size(),
                          [&](uint64_t seq, const LogRecord& rec) {
                            EXPECT_EQ(seq, next_seq++);
                            EXPECT_EQ(rec.text, written[seq].text);
                          })
                    .ok());
    EXPECT_EQ(next_seq, written.size());
    std::filesystem::remove_all(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiskRoundTripTest,
                         ::testing::Values(17, 171, 1717, 17171));

// ---------------------------------------------------------------------
// Index durability: the per-segment .idx sidecars are pure derived
// state. Whatever happens to them — deletion, truncation to any
// prefix, byte corruption — reopening must succeed, rebuild them from
// the verified segment bytes, and serve results identical to a clean
// reopen. A further reopen then finds the rewritten sidecars fresh.
// ---------------------------------------------------------------------

struct IndexBaseline {
  std::vector<LogRecord> records;
  std::unordered_map<TemplateId, uint64_t> counts;
  uint64_t text_bytes = 0;
};

IndexBaseline CollectBaseline(SegmentedDiskBackend* backend) {
  IndexBaseline base;
  for (uint64_t seq = 0; seq < backend->size(); ++seq) {
    LogRecord rec;
    EXPECT_TRUE(backend->Read(seq, &rec).ok());
    base.records.push_back(std::move(rec));
  }
  EXPECT_TRUE(
      backend->TemplateCounts(0, backend->size(), &base.counts).ok());
  base.text_bytes = backend->text_bytes();
  return base;
}

class IndexDurabilityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IndexDurabilityTest, DamagedSidecarsRebuildWithIdenticalResults) {
  Rng rng(GetParam());
  static const char alphabet[] = "abcdef 0123:=/.\\-_*";
  for (int trial = 0; trial < 10; ++trial) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("bb_idxdur_" + std::to_string(::getpid()) + "_" +
          std::to_string(GetParam()) + "_" + std::to_string(trial)))
            .string();
    std::filesystem::remove_all(dir);

    StorageConfig cfg;
    cfg.kind = StorageConfig::Kind::kSegmentedDisk;
    cfg.directory = dir;
    cfg.segment_data_bytes = 96 + rng.NextBelow(400);
    {
      SegmentedDiskBackend backend(cfg);
      ASSERT_TRUE(backend.Open().ok());
      const int count = 60 + static_cast<int>(rng.NextBelow(150));
      for (int i = 0; i < count; ++i) {
        LogRecord rec;
        rec.timestamp_us = rng.Next();
        rec.template_id = 1 + rng.NextBelow(9);
        const int len = static_cast<int>(rng.NextBelow(60));
        for (int c = 0; c < len; ++c) {
          rec.text += alphabet[rng.NextBelow(sizeof(alphabet) - 1)];
        }
        ASSERT_TRUE(backend.Append(std::move(rec)).ok());
      }
      // Reassignments dirty sealed postings; Flush rewrites the
      // sidecars so a clean reopen sees them fresh.
      for (uint64_t seq = 0; seq < backend.size();
           seq += 1 + rng.NextBelow(9)) {
        ASSERT_TRUE(backend.AssignTemplate(seq, 1 + rng.NextBelow(9)).ok());
      }
      ASSERT_TRUE(backend.Flush().ok());
      ASSERT_GE(backend.sealed_segment_count(), 2u);
    }

    IndexBaseline baseline;
    {
      SegmentedDiskBackend clean(cfg);
      ASSERT_TRUE(clean.Open().ok());
      EXPECT_EQ(clean.index_rebuilds(), 0u) << dir;
      baseline = CollectBaseline(&clean);
    }

    // Damage a random nonempty subset of the .idx sidecars.
    std::vector<std::string> idx_files;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.path().extension() == ".idx") {
        idx_files.push_back(entry.path().string());
      }
    }
    ASSERT_FALSE(idx_files.empty());
    uint64_t damaged = 0;
    for (const auto& path : idx_files) {
      if (damaged > 0 && rng.NextBelow(2) == 0) continue;
      ++damaged;
      switch (rng.NextBelow(3)) {
        case 0:
          ASSERT_TRUE(std::filesystem::remove(path));
          break;
        case 1: {
          const uint64_t len = std::filesystem::file_size(path);
          std::filesystem::resize_file(path, rng.NextBelow(len));
          break;
        }
        default: {
          const uint64_t len = std::filesystem::file_size(path);
          const long pos = static_cast<long>(rng.NextBelow(len));
          FILE* f = ::fopen(path.c_str(), "r+b");
          ASSERT_NE(f, nullptr);
          ASSERT_EQ(::fseek(f, pos, SEEK_SET), 0);
          unsigned char byte = 0;
          ASSERT_EQ(::fread(&byte, 1, 1, f), 1u);
          byte ^= 0x5a;  // xor guarantees the byte actually changes
          ASSERT_EQ(::fseek(f, pos, SEEK_SET), 0);
          ASSERT_EQ(::fwrite(&byte, 1, 1, f), 1u);
          ASSERT_EQ(::fclose(f), 0);
          break;
        }
      }
    }

    {
      SegmentedDiskBackend reopened(cfg);
      ASSERT_TRUE(reopened.Open().ok()) << dir;
      EXPECT_GE(reopened.index_rebuilds(), 1u) << dir;
      const IndexBaseline after = CollectBaseline(&reopened);
      ASSERT_EQ(after.records.size(), baseline.records.size());
      for (size_t i = 0; i < after.records.size(); ++i) {
        EXPECT_EQ(after.records[i].text, baseline.records[i].text) << i;
        EXPECT_EQ(after.records[i].timestamp_us,
                  baseline.records[i].timestamp_us)
            << i;
        EXPECT_EQ(after.records[i].template_id,
                  baseline.records[i].template_id)
            << i;
      }
      EXPECT_EQ(after.counts, baseline.counts);
      EXPECT_EQ(after.text_bytes, baseline.text_bytes);
    }

    // The rebuild persisted: a further reopen finds every sidecar
    // fresh again.
    {
      SegmentedDiskBackend again(cfg);
      ASSERT_TRUE(again.Open().ok());
      EXPECT_EQ(again.index_rebuilds(), 0u) << dir;
    }
    std::filesystem::remove_all(dir);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IndexDurabilityTest,
                         ::testing::Values(29, 292, 2929, 29292));

// ---------------------------------------------------------------------
// End-to-end: training-set matching is closed (every trained log
// matches) across random corpora.
// ---------------------------------------------------------------------

class ParserClosureTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserClosureTest, EveryTrainingLogMatchesOnline) {
  Rng rng(GetParam());
  std::vector<std::string> logs;
  const int templates = 3 + static_cast<int>(rng.NextBelow(10));
  for (int i = 0; i < 400; ++i) {
    const int t = static_cast<int>(rng.NextBelow(templates));
    std::string log = "svc" + std::to_string(t) + " event";
    const int vars = t % 3 + 1;
    for (int v = 0; v < vars; ++v) {
      log += " k" + std::to_string(v) + "=" +
             std::to_string(rng.NextBelow(50));
    }
    logs.push_back(std::move(log));
  }
  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  ByteBrainParser parser(options);
  ASSERT_TRUE(parser.Train(logs).ok());
  for (const std::string& log : logs) {
    ASSERT_NE(parser.Match(log), kInvalidTemplateId) << log;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserClosureTest,
                         ::testing::Values(5, 55, 555, 5555));

// ---------------------------------------------------------------------
// WAL crash-replay property: for ANY random corpus and ANY random crash
// point, reopening with clean IO recovers a byte-identical prefix of
// what was offered, covering at least the acknowledged records — and
// never crashes (ISSUE 6 satellite).
// ---------------------------------------------------------------------

class WalTempDir {
 public:
  WalTempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("bb_walprop_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~WalTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StorageConfig WalPropConfig(const std::string& dir, FileOps* ops) {
  StorageConfig cfg;
  cfg.kind = StorageConfig::Kind::kSegmentedDisk;
  cfg.directory = dir;
  cfg.segment_data_bytes = 512;  // force seals (and WAL rotations)
  cfg.durability = DurabilityMode::kWalGroupCommit;
  cfg.file_ops = ops;
  return cfg;
}

class WalCrashReplayTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WalCrashReplayTest, RecoversExactlyAnAckedCoveringPrefix) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 12; ++trial) {
    WalTempDir dir;
    FaultSchedule schedule;
    schedule.crash_at_op = 1 + rng.NextBelow(120);
    FaultInjectingFileOps ops(schedule);

    std::vector<LogRecord> written;
    uint64_t acked = 0;
    {
      SegmentedDiskBackend backend(WalPropConfig(dir.path(), &ops));
      if (!backend.Open().ok()) {
        // Crashed during open: nothing offered, reopen below must still
        // come up clean (and empty).
      } else {
        const int batches = 2 + static_cast<int>(rng.NextBelow(8));
        uint64_t ts = 0;
        for (int b = 0; b < batches && !ops.crashed(); ++b) {
          std::vector<LogRecord> batch;
          const size_t n = 1 + rng.NextBelow(5);
          for (size_t i = 0; i < n; ++i) {
            LogRecord record;
            record.timestamp_us = ++ts;
            record.text = "p" + std::to_string(b) + "." + std::to_string(i);
            record.text.append(rng.NextBelow(60), 'y');
            batch.push_back(record);
          }
          written.insert(written.end(), batch.begin(), batch.end());
          const bool appended = backend.AppendBatch(batch).ok();
          const bool durable = backend.WaitDurable().ok();
          if (appended && durable) acked = written.size();
        }
      }
    }

    SegmentedDiskBackend reopened(WalPropConfig(dir.path(), nullptr));
    const Status opened = reopened.Open();
    ASSERT_TRUE(opened.ok()) << opened.ToString();
    ASSERT_GE(reopened.size(), acked);
    ASSERT_LE(reopened.size(), written.size());
    for (uint64_t i = 0; i < reopened.size(); ++i) {
      LogRecord out;
      ASSERT_TRUE(reopened.Read(i, &out).ok());
      ASSERT_EQ(out.text, written[i].text);
      ASSERT_EQ(out.timestamp_us, written[i].timestamp_us);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalCrashReplayTest,
                         ::testing::Values(11, 111, 1111, 11111));

// ---------------------------------------------------------------------
// Backend fault-schedule property: a random Status-fault schedule over
// a random Append/AppendBatch/Read/Flush/Checkpoint sequence never
// crashes, never loses an appended record (the fail-soft contract), and
// never corrupts what a mirror model expects.
// ---------------------------------------------------------------------

class BackendFaultScheduleTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BackendFaultScheduleTest, FailSoftContractHoldsUnderAnySchedule) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    BackendFaultSchedule schedule;
    schedule.fail_append_at = rng.NextBelow(10);
    schedule.fail_read_at = rng.NextBelow(10);
    schedule.fail_flush_at = rng.NextBelow(6);
    schedule.fail_checkpoint_at = rng.NextBelow(6);
    FaultInjectingBackend backend(std::make_unique<MemoryBackend>(8),
                                  schedule);
    ASSERT_TRUE(backend.Open().ok());

    std::vector<std::string> mirror;
    std::string checkpointed;
    for (int op = 0; op < 40; ++op) {
      switch (rng.NextBelow(5)) {
        case 0: {
          LogRecord record;
          record.text = "r" + std::to_string(op);
          record.timestamp_us = op;
          mirror.push_back(record.text);
          // Error or not, the record must land (sequence numbering).
          (void)backend.Append(std::move(record));
          break;
        }
        case 1: {
          std::vector<LogRecord> batch;
          const size_t n = 1 + rng.NextBelow(4);
          for (size_t i = 0; i < n; ++i) {
            LogRecord record;
            record.text = "b" + std::to_string(op) + "." + std::to_string(i);
            record.timestamp_us = op;
            mirror.push_back(record.text);
            batch.push_back(std::move(record));
          }
          (void)backend.AppendBatch(std::move(batch));
          break;
        }
        case 2: {
          if (mirror.empty()) break;
          const uint64_t seq = rng.NextBelow(mirror.size());
          LogRecord out;
          if (backend.Read(seq, &out).ok()) {
            ASSERT_EQ(out.text, mirror[seq]);
          }
          break;
        }
        case 3:
          (void)backend.Flush();
          break;
        case 4: {
          const std::string blob = "meta" + std::to_string(op);
          if (backend.Checkpoint(blob).ok()) checkpointed = blob;
          break;
        }
      }
      ASSERT_EQ(backend.size(), mirror.size());
    }
    // A clean re-read at the end sees every appended record.
    for (size_t i = 0; i < mirror.size(); ++i) {
      LogRecord out;
      const Status read = backend.Read(i, &out);
      if (read.ok()) ASSERT_EQ(out.text, mirror[i]);
    }
    // The metadata is whatever the last SUCCESSFUL checkpoint stored —
    // a faulted checkpoint must not have forwarded.
    if (!checkpointed.empty()) {
      ASSERT_EQ(backend.metadata(), checkpointed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendFaultScheduleTest,
                         ::testing::Values(21, 212, 2121, 21212));

}  // namespace
}  // namespace bytebrain
