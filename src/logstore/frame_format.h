// The record frame format shared by the segment files and the
// write-ahead log (logstore/disk_backend.cc, logstore/wal.cc):
//
//   text_len u32 | timestamp u64 | template_id u64 | checksum u64 | text
//
// util/hashing.h RecordChecksum covers ts + text, NOT the template id,
// which retraining rewrites in place (segment files) or leaves stale
// (WAL frames — replay re-matches). The template id sits at a fixed
// offset so AssignTemplate can rewrite it with one 8-byte pwrite.
//
// These helpers used to live in disk_backend.cc's anonymous namespace;
// the WAL appends and replays the SAME frame bytes, so the one parser
// both use lives here — a frame-format change lands in this header and
// nowhere else.
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

#include "logstore/log_record.h"
#include "util/hashing.h"
#include "util/serde.h"

namespace bytebrain {
namespace logframe {

constexpr size_t kFrameHeaderBytes = 4 + 8 + 8 + 8;
constexpr size_t kFrameTidOffset = 4 + 8;

// Serializes the fixed-width frame header in place (no intermediate
// string on the append path).
inline void FillFrameHeader(char* header, const LogRecord& rec, uint64_t crc) {
  const uint32_t len = static_cast<uint32_t>(rec.text.size());
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &rec.timestamp_us, 8);
  std::memcpy(header + kFrameTidOffset, &rec.template_id, 8);
  std::memcpy(header + kFrameTidOffset + 8, &crc, 8);
}

/// One decoded frame, as parsed by ParseFrame.
struct Frame {
  size_t start = 0;  // frame offset within the segment
  uint32_t text_len = 0;
  uint64_t ts = 0;
  uint64_t tid = 0;
  uint64_t crc = 0;
  std::string_view text;  // aliases the segment bytes
};

// Decodes one frame at the reader's position (over the segment bytes
// starting at `base`), bounds-checking the text and verifying the
// stored checksum. Returns false on a torn or corrupt frame. The ONE
// parser recovery, sealed verification, and WAL replay all use.
inline bool ParseFrame(ByteReader* reader, const char* base, Frame* out) {
  out->start = reader->position();
  if (!reader->GetU32(&out->text_len) || !reader->GetU64(&out->ts) ||
      !reader->GetU64(&out->tid) || !reader->GetU64(&out->crc) ||
      reader->remaining() < out->text_len) {
    return false;
  }
  out->text =
      std::string_view(base + out->start + kFrameHeaderBytes, out->text_len);
  (void)reader->Skip(out->text_len);
  return out->crc == RecordChecksum(out->ts, out->text);
}

// Copies the frame at `frame` (sealed mmap or active buffer) into a
// LogRecord; `out->text`'s capacity is recycled across calls.
inline void MaterializeFrame(const char* frame, LogRecord* out) {
  uint32_t len;
  std::memcpy(&len, frame, 4);
  std::memcpy(&out->timestamp_us, frame + 4, 8);
  std::memcpy(&out->template_id, frame + kFrameTidOffset, 8);
  out->text.assign(frame + kFrameHeaderBytes, len);
}

}  // namespace logframe
}  // namespace bytebrain
