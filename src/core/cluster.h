// Single clustering process (paper §4.4) with positional similarity
// distance (Eq. 2), K-Means++-style seeding, balanced grouping (§4.6) and
// early stop (§4.7).
//
// Given the members of one tree node, the process partitions them into
// clusters such that every cluster's saturation improves on the parent's.
// Clusters are added adaptively: whenever a cluster stops improving, a new
// cluster is seeded with the log farthest from all existing clusters. The
// expansion is bounded by the number of token positions / member logs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/preprocess.h"
#include "core/saturation.h"
#include "util/rng.h"

namespace bytebrain {

/// Knobs for one clustering step; the bool switches correspond one-to-one
/// to the paper's Fig. 8 / Fig. 9 ablation variants.
struct ClusterOptions {
  /// Position weight w_i = 1/(n_i - 1); false -> w_i = 1
  /// ("w/o position importance").
  bool use_position_importance = true;
  /// Random tie-breaking across equidistant clusters; false -> first
  /// cluster wins ("w/o balanced group").
  bool balanced_grouping = true;
  /// K-Means++-style seeding; false -> both seeds uniformly random
  /// ("random centroid selection").
  bool kmeanspp_seeding = true;
  /// Require every kept cluster to improve saturation; false -> always
  /// accept the 2-way split ("w/o ensure saturation increase").
  bool ensure_saturation_increase = true;
  /// §4.7 shortcuts; false -> full clustering even on trivial nodes
  /// ("w/o early stopping").
  bool early_stop = true;
  /// Reassignment rounds per cluster-count level.
  int max_iterations = 8;
  SaturationOptions saturation;
};

/// Result of one clustering step.
struct ClusterOutcome {
  /// Partition of the input members (indices into the EncodedLog vector).
  /// Meaningful only when split == true; clusters are non-empty.
  std::vector<std::vector<uint32_t>> clusters;
  /// false -> the node should become a leaf (no useful split exists).
  bool split = false;
};

/// Positional similarity of `log` to a cluster described by per-position
/// token frequencies. Exposed for unit tests.
/// Returns a value in [0, 1]; 1 means every position matches the cluster's
/// dominant structure.
class ClusterProfile {
 public:
  /// `active_positions`: positions unresolved in the parent (constant
  /// positions carry no signal and are skipped).
  ClusterProfile(const std::vector<uint32_t>& active_positions,
                 const std::vector<EncodedLog>& logs);

  void Add(uint32_t member);
  void Clear();

  /// Eq. 2: sum(w_i * f_i) / sum(w_i), f_i = relative frequency of the
  /// log's token at position i, w_i = 1/(n_i - 1) (capped at 2 for
  /// constant positions) or 1 without position importance.
  double Similarity(const EncodedLog& log, bool use_position_importance) const;

  uint32_t size() const { return size_; }

 private:
  const std::vector<uint32_t>& active_;
  const std::vector<EncodedLog>& logs_;
  // freq_[k] maps token -> count at active position k.
  std::vector<std::unordered_map<uint64_t, uint32_t>> freq_;
  uint32_t size_ = 0;
};

/// Runs the single clustering process for one node.
/// `parent_saturation` is the node's own score; kept clusters must beat it
/// (unless ensure_saturation_increase is off).
ClusterOutcome SingleClusteringProcess(const std::vector<EncodedLog>& logs,
                                       const std::vector<uint32_t>& members,
                                       double parent_saturation,
                                       const ClusterOptions& options,
                                       Rng* rng);

}  // namespace bytebrain
