// Table 4: templates obtained at varying saturation thresholds on
// Android wake-lock logs — the qualitative precision-slider result.
#include <set>

#include "bench/bench_common.h"
#include "core/parser.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Table 4 — templates at varying saturation thresholds",
                   "paper Table 4");

  DatasetGenerator generator(*FindDatasetSpec("Android"));
  GenOptions opts;
  opts.num_logs = 20000;
  opts.num_templates = 166;
  Dataset ds = generator.Generate(opts);
  std::vector<std::string> logs;
  logs.reserve(ds.logs.size());
  for (auto& l : ds.logs) logs.push_back(l.text);

  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  options.trainer.preprocess.num_threads = 2;
  ByteBrainParser parser(options);
  if (!parser.Train(logs).ok()) {
    std::fprintf(stderr, "training failed\n");
    return 1;
  }

  std::vector<TemplateId> lock_leaves;
  for (const std::string& log : logs) {
    if (log.rfind("acquire lock=", 0) == 0 ||
        log.rfind("release lock=", 0) == 0) {
      const TemplateId id = parser.Match(log);
      if (id != kInvalidTemplateId) lock_leaves.push_back(id);
    }
  }
  std::printf("wake-lock logs matched: %zu\n\n", lock_leaves.size());

  size_t prev_count = 0;
  for (double threshold : {0.05, 0.78, 0.90, 0.95}) {
    std::set<std::string> templates;
    for (TemplateId leaf : lock_leaves) {
      auto resolved = parser.ResolveAtThreshold(leaf, threshold);
      if (resolved.ok()) {
        templates.insert(parser.TemplateText(resolved.value()));
      }
    }
    std::printf("Saturation %.2f — %zu templates\n", threshold,
                templates.size());
    size_t shown = 0;
    for (const auto& t : templates) {
      std::printf("  %s\n", t.c_str());
      if (++shown == 10) {
        std::printf("  ... (%zu more)\n", templates.size() - shown);
        break;
      }
    }
    if (templates.size() < prev_count) {
      std::printf("  !! SHAPE VIOLATION: template count decreased with a "
                  "higher threshold\n");
    }
    prev_count = templates.size();
    std::printf("\n");
  }
  std::printf(
      "Shape check (paper Table 4): the template count grows with the\n"
      "threshold — one generalized pattern at 0.05, acquire/release split\n"
      "around 0.78, per-process/ws variants at 0.9+.\n");
  return 0;
}
