// Tests for the saturation score (Eq. 3) and its stated properties:
// bounded in [0,1], 1.0 iff fully resolved (or singleton), monotone under
// refinement, and the ablation forms.
#include <gtest/gtest.h>

#include <cmath>

#include "core/preprocess.h"
#include "core/saturation.h"

namespace bytebrain {
namespace {

// Builds EncodedLogs from token-text rows.
std::vector<EncodedLog> MakeLogs(
    std::initializer_list<std::vector<std::string>> rows) {
  std::vector<EncodedLog> logs;
  for (const auto& row : rows) {
    EncodedLog el;
    el.count = 1;
    for (const auto& tok : row) {
      el.tokens.push_back(HashToken(tok));
      el.token_texts.push_back(tok);
    }
    logs.push_back(std::move(el));
  }
  return logs;
}

std::vector<uint32_t> AllOf(const std::vector<EncodedLog>& logs) {
  std::vector<uint32_t> v(logs.size());
  for (uint32_t i = 0; i < v.size(); ++i) v[i] = i;
  return v;
}

const SaturationOptions kDefault;

TEST(PositionStatsTest, CountsDistinctAndConstant) {
  auto logs = MakeLogs({{"a", "x", "c"}, {"a", "y", "c"}, {"a", "z", "c"}});
  auto stats = ComputePositionStats(logs, AllOf(logs));
  EXPECT_EQ(stats.num_logs, 3u);
  EXPECT_EQ(stats.num_positions, 3u);
  EXPECT_EQ(stats.num_constant, 2u);
  EXPECT_EQ(stats.distinct[0], 1u);
  EXPECT_EQ(stats.distinct[1], 3u);
  EXPECT_EQ(stats.distinct[2], 1u);
  EXPECT_FALSE(stats.fully_resolved());
}

TEST(SaturationTest, SingletonIsOne) {
  auto logs = MakeLogs({{"a", "b"}});
  EXPECT_DOUBLE_EQ(ComputeSaturation(logs, {0}, kDefault), 1.0);
}

TEST(SaturationTest, IdenticalLogsAreOne) {
  auto logs = MakeLogs({{"a", "b"}, {"a", "b"}, {"a", "b"}});
  EXPECT_DOUBLE_EQ(ComputeSaturation(logs, AllOf(logs), kDefault), 1.0);
}

TEST(SaturationTest, PaperFigure5Set1LabelIsOne) {
  // Fig. 5 Set 1, node {1,2,3} labeled 1.0: only the token value varies
  // and it differs in every log — a confirmed variable, fully resolved.
  auto logs = MakeLogs({{"UserService", "createUser", "token", "abc123", "success"},
                        {"UserService", "createUser", "token", "xyz789", "success"},
                        {"UserService", "createUser", "token", "def456", "success"}});
  EXPECT_DOUBLE_EQ(ComputeSaturation(logs, AllOf(logs), kDefault), 1.0);
}

TEST(SaturationTest, PaperFigure5Set2Labels) {
  // Fig. 5 Set 2: labels {4,5,6}: 0.4, {4,6}: 0.6, {5}/{4}/{6}: 1.0.
  auto set2 = MakeLogs(
      {{"UserService", "createUser", "token", "abc123", "success"},
       {"UserService", "deleteUser", "token", "xyz789", "failed"},
       {"UserService", "queryUser", "token", "def456", "success"}});
  // Root {4,5,6}: f_c = 0.4, f_v = log2/log3, p_c = 1/7 -> 0.379 (the
  // figure label rounds to 0.4).
  const double root = ComputeSaturation(set2, AllOf(set2), kDefault);
  EXPECT_NEAR(root, 0.4, 0.05);
  // {4,6}: f_c = 0.6 and both unresolved positions are fully distinct
  // (f_v = 1), so Eq. 3 collapses to exactly f_c = 0.6.
  const double sub = ComputeSaturation(set2, {0, 2}, kDefault);
  EXPECT_DOUBLE_EQ(sub, 0.6);
  EXPECT_GT(sub, root);
  // Leaf singletons are 1.0.
  EXPECT_DOUBLE_EQ(ComputeSaturation(set2, {1}, kDefault), 1.0);
}

TEST(SaturationTest, BoundedInUnitInterval) {
  auto logs = MakeLogs({{"a", "1", "x"},
                        {"b", "2", "x"},
                        {"c", "3", "y"},
                        {"d", "4", "y"}});
  for (auto& members : std::vector<std::vector<uint32_t>>{
           {0, 1, 2, 3}, {0, 1}, {2, 3}, {0, 2}, {1, 3}, {0}}) {
    const double s = ComputeSaturation(logs, members, kDefault);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 1.0);
  }
}

TEST(SaturationTest, NoConstantsScoresZero) {
  // f_c = 0 forces s = 0 regardless of the variability term.
  auto logs = MakeLogs({{"a", "1"}, {"b", "2"}, {"c", "3"}});
  EXPECT_DOUBLE_EQ(ComputeSaturation(logs, AllOf(logs), kDefault), 0.0);
}

TEST(SaturationTest, MoreConstantsScoreHigher) {
  auto one_const = MakeLogs({{"k", "1", "x"}, {"k", "2", "y"}});
  auto two_const = MakeLogs({{"k", "1", "x"}, {"k", "2", "x"}});
  EXPECT_LT(ComputeSaturation(one_const, {0, 1}, kDefault),
            ComputeSaturation(two_const, {0, 1}, kDefault));
}

TEST(SaturationTest, HighVariabilityBeatsLowVariabilityStructure) {
  // All-distinct unresolved position (true variable) vs a two-valued
  // unresolved position (structural split pending): the former is closer
  // to "resolved".
  auto variable = MakeLogs({{"k", "v1"}, {"k", "v2"}, {"k", "v3"}, {"k", "v4"}});
  auto structural = MakeLogs({{"k", "a"}, {"k", "a"}, {"k", "b"}, {"k", "b"}});
  EXPECT_GT(ComputeSaturation(variable, AllOf(variable), kDefault),
            ComputeSaturation(structural, AllOf(structural), kDefault));
}

TEST(SaturationTest, AblationWithoutVariableTermIsConstantFraction) {
  auto logs = MakeLogs({{"a", "x", "1"}, {"a", "y", "2"}, {"a", "z", "3"}});
  SaturationOptions opts;
  opts.use_variable_term = false;
  EXPECT_DOUBLE_EQ(ComputeSaturation(logs, AllOf(logs), opts), 1.0 / 3.0);
}

TEST(SaturationTest, AblationWithoutConfidenceIsProduct) {
  // Two unresolved positions (so the Set-1 rule cannot fire): action has
  // 2 of 3 distinct, status has 2 of 3 distinct.
  auto logs = MakeLogs(
      {{"a", "x", "p"}, {"a", "x", "q"}, {"a", "y", "q"}});
  SaturationOptions opts;
  opts.use_confidence_factor = false;
  // f_v = log(2)/log(3), f_c = 1/3.
  const double expected = (std::log(2.0) / std::log(3.0)) / 3.0;
  EXPECT_NEAR(ComputeSaturation(logs, AllOf(logs), opts), expected, 1e-12);
}

TEST(SaturationTest, RefinementNeverDecreasesScore) {
  // Property: for any subset obtained by grouping identical tokens at one
  // position, saturation does not decrease (it strictly increases when
  // the position was structurally meaningful).
  auto logs = MakeLogs({{"svc", "open", "ok", "1"},
                        {"svc", "open", "ok", "2"},
                        {"svc", "close", "err", "3"},
                        {"svc", "close", "err", "4"}});
  const double parent = ComputeSaturation(logs, AllOf(logs), kDefault);
  const double open_side = ComputeSaturation(logs, {0, 1}, kDefault);
  const double close_side = ComputeSaturation(logs, {2, 3}, kDefault);
  EXPECT_GT(open_side, parent);
  EXPECT_GT(close_side, parent);
}

TEST(SaturationTest, ManyUnresolvedPositionsDriveConfidenceToZero) {
  // With >62 unresolved positions the confidence shift would overflow;
  // verify the guard by constructing 70 unresolved positions.
  std::vector<std::string> row_a;
  std::vector<std::string> row_b;
  row_a.push_back("const");
  row_b.push_back("const");
  for (int i = 0; i < 70; ++i) {
    row_a.push_back("a" + std::to_string(i));
    row_b.push_back("b" + std::to_string(i));
  }
  auto logs = MakeLogs({row_a, row_b});
  const double s = ComputeSaturation(logs, {0, 1}, kDefault);
  EXPECT_GE(s, 0.0);
  EXPECT_LE(s, 1.0);
  // p_c ~ 0 -> s ~ f_c = 1/71.
  EXPECT_NEAR(s, 1.0 / 71.0, 1e-6);
}

}  // namespace
}  // namespace bytebrain
