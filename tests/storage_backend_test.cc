// Storage-backend battery: backend equivalence (every LogTopic behavior
// against both MemoryBackend and SegmentedDiskBackend with identical
// end states), disk persistence across reopen, crash recovery (torn
// tails truncated, corrupted manifests/segments surfaced as checksum
// Statuses, never crashes), and the service-level storage integration
// (model checkpoint + recovery, large-window training snapshots that
// read sealed segments via mmap instead of copying the window).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "logstore/disk_backend.h"
#include "logstore/log_topic.h"
#include "service/log_service.h"

#if defined(__SANITIZE_THREAD__)
#define BYTEBRAIN_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BYTEBRAIN_UNDER_TSAN 1
#endif
#endif
#ifndef BYTEBRAIN_UNDER_TSAN
#define BYTEBRAIN_UNDER_TSAN 0
#endif

namespace bytebrain {
namespace {

/// Fresh unique directory per call; removed by the TempDir destructor.
class TempDir {
 public:
  TempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("bb_storage_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StorageConfig DiskConfig(const std::string& dir,
                         uint64_t segment_bytes = 256) {
  StorageConfig cfg;
  cfg.kind = StorageConfig::Kind::kSegmentedDisk;
  cfg.directory = dir;
  // Tiny segments by default so every test crosses seal boundaries.
  cfg.segment_data_bytes = segment_bytes;
  return cfg;
}

/// Flips one byte of a file in place.
void FlipByte(const std::string& path, long offset) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  const int c = std::fgetc(f);
  ASSERT_NE(c, EOF);
  ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
  std::fputc(c ^ 0xFF, f);
  std::fclose(f);
}

long FileSize(const std::string& path) {
  return static_cast<long>(std::filesystem::file_size(path));
}

// ---------------------------------------------------------------------
// Backend equivalence: the full LogTopic behavior surface, one run per
// backend kind. The disk runs use tiny segments so reads/scans/assigns
// cross sealed (mmap) and active (in-memory) records.
// ---------------------------------------------------------------------

class BackendEquivalenceTest
    : public ::testing::TestWithParam<StorageConfig::Kind> {
 protected:
  std::unique_ptr<LogTopic> MakeTopic(const std::string& name) {
    StorageConfig cfg;
    if (GetParam() == StorageConfig::Kind::kSegmentedDisk) {
      cfg = DiskConfig(dir_.path() + "/" + name);
    } else {
      cfg.memory_segment_capacity = 4;  // mirror tiny disk segments
    }
    auto topic = std::make_unique<LogTopic>(name, cfg);
    EXPECT_TRUE(topic->storage_status().ok())
        << topic->storage_status().ToString();
    return topic;
  }

  TempDir dir_;
};

TEST_P(BackendEquivalenceTest, AppendAndRead) {
  auto topic = MakeTopic("t");
  EXPECT_EQ(topic->Append({100, "hello", 0}), 0u);
  EXPECT_EQ(topic->Append({200, "world", 0}), 1u);
  EXPECT_EQ(topic->size(), 2u);
  auto rec = topic->Read(1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->text, "world");
  EXPECT_EQ(rec->timestamp_us, 200u);
}

TEST_P(BackendEquivalenceTest, ReadPastEndFails) {
  auto topic = MakeTopic("t");
  topic->Append({1, "x", 0});
  EXPECT_TRUE(topic->Read(1).status().IsNotFound());
  EXPECT_TRUE(topic->Read(999).status().IsNotFound());
}

TEST_P(BackendEquivalenceTest, CrossesSegmentBoundaries) {
  auto topic = MakeTopic("t");
  for (int i = 0; i < 19; ++i) {
    topic->Append({static_cast<uint64_t>(i), "log " + std::to_string(i), 0});
  }
  EXPECT_EQ(topic->size(), 19u);
  for (int i = 0; i < 19; ++i) {
    auto rec = topic->Read(i);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->text, "log " + std::to_string(i));
    EXPECT_EQ(rec->timestamp_us, static_cast<uint64_t>(i));
  }
}

TEST_P(BackendEquivalenceTest, ScanRange) {
  auto topic = MakeTopic("t");
  for (int i = 0; i < 10; ++i) {
    topic->Append({static_cast<uint64_t>(i), std::to_string(i), 0});
  }
  std::vector<uint64_t> seen;
  ASSERT_TRUE(topic
                  ->Scan(2, 7,
                         [&seen](uint64_t seq, const LogRecord& rec) {
                           EXPECT_EQ(rec.text, std::to_string(seq));
                           seen.push_back(seq);
                         })
                  .ok());
  EXPECT_EQ(seen, (std::vector<uint64_t>{2, 3, 4, 5, 6}));
}

TEST_P(BackendEquivalenceTest, ScanClampsEndAndRejectsInvertedRange) {
  auto topic = MakeTopic("t");
  topic->Append({0, "a", 0});
  int n = 0;
  ASSERT_TRUE(
      topic->Scan(0, 100, [&n](uint64_t, const LogRecord&) { ++n; }).ok());
  EXPECT_EQ(n, 1);
  EXPECT_TRUE(topic->Scan(5, 2, [](uint64_t, const LogRecord&) {})
                  .IsInvalidArgument());
}

TEST_P(BackendEquivalenceTest, AssignTemplateUpdatesSealedAndActive) {
  auto topic = MakeTopic("t");
  for (int i = 0; i < 20; ++i) {
    topic->Append({0, "record number " + std::to_string(i), 0});
  }
  // Record 0 is long past the first seal on the disk run; the last
  // record is in the active segment on both.
  ASSERT_TRUE(topic->AssignTemplate(0, 42).ok());
  ASSERT_TRUE(topic->AssignTemplate(19, 43).ok());
  EXPECT_EQ(topic->Read(0)->template_id, 42u);
  EXPECT_EQ(topic->Read(19)->template_id, 43u);
  EXPECT_TRUE(topic->AssignTemplate(20, 42).IsNotFound());
}

TEST_P(BackendEquivalenceTest, TextBytesAccumulates) {
  auto topic = MakeTopic("t");
  topic->Append({0, "abcd", 0});
  topic->Append({0, "ef", 0});
  EXPECT_EQ(topic->text_bytes(), 6u);
}

TEST_P(BackendEquivalenceTest, PersistRecoverSnapshotRoundTrip) {
  const std::string path = dir_.path() + "_snapshot.bin";
  auto topic = MakeTopic("t");
  for (int i = 0; i < 11; ++i) {
    topic->Append({static_cast<uint64_t>(i * 10),
                   "record " + std::to_string(i),
                   static_cast<TemplateId>(i % 3)});
  }
  ASSERT_TRUE(topic->PersistTo(path).ok());

  auto restored = MakeTopic("t2");
  ASSERT_TRUE(restored->RecoverFrom(path).ok());
  ASSERT_EQ(restored->size(), 11u);
  for (int i = 0; i < 11; ++i) {
    auto rec = restored->Read(i);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->text, "record " + std::to_string(i));
    EXPECT_EQ(rec->timestamp_us, static_cast<uint64_t>(i * 10));
    EXPECT_EQ(rec->template_id, static_cast<TemplateId>(i % 3));
  }
  std::remove(path.c_str());
}

TEST_P(BackendEquivalenceTest, ConcurrentAppendsAllLand) {
  auto topic = MakeTopic("t");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&topic, t] {
      for (int i = 0; i < kPerThread; ++i) {
        topic->Append({0, "t" + std::to_string(t), 0});
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(topic->size(), static_cast<uint64_t>(kThreads * kPerThread));
}

INSTANTIATE_TEST_SUITE_P(Backends, BackendEquivalenceTest,
                         ::testing::Values(StorageConfig::Kind::kMemory,
                                           StorageConfig::Kind::kSegmentedDisk),
                         [](const auto& info) {
                           return info.param == StorageConfig::Kind::kMemory
                                      ? "Memory"
                                      : "SegmentedDisk";
                         });

// End-state equivalence across backends: the same record stream plus
// template reassignments must leave byte-identical records either way.
TEST(StorageBackendTest, BackendsReachIdenticalEndState) {
  TempDir dir;
  LogTopic memory("m");
  LogTopic disk("d", DiskConfig(dir.path()));
  ASSERT_TRUE(disk.storage_status().ok());

  for (int i = 0; i < 200; ++i) {
    LogRecord rec{static_cast<uint64_t>(i * 3),
                  "event " + std::to_string(i % 17) + " detail " +
                      std::to_string(i),
                  static_cast<TemplateId>(i % 5)};
    memory.Append(rec);
    disk.Append(std::move(rec));
  }
  for (int i = 0; i < 200; i += 7) {
    ASSERT_TRUE(memory.AssignTemplate(i, 1000 + i).ok());
    ASSERT_TRUE(disk.AssignTemplate(i, 1000 + i).ok());
  }

  ASSERT_EQ(memory.size(), disk.size());
  ASSERT_EQ(memory.text_bytes(), disk.text_bytes());
  for (uint64_t seq = 0; seq < memory.size(); ++seq) {
    auto a = memory.Read(seq);
    auto b = disk.Read(seq);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->text, b->text);
    EXPECT_EQ(a->timestamp_us, b->timestamp_us);
    EXPECT_EQ(a->template_id, b->template_id);
  }
  EXPECT_GT(disk.sealed_segment_count(), 0u);
  EXPECT_GT(disk.mapped_bytes(), 0u);
}

// ---------------------------------------------------------------------
// Disk persistence across reopen.
// ---------------------------------------------------------------------

TEST(StorageBackendTest, ReopenRecoversRecordsSealsAndMetadata) {
  TempDir dir;
  uint64_t sealed = 0;
  {
    LogTopic topic("t", DiskConfig(dir.path()));
    ASSERT_TRUE(topic.storage_status().ok());
    for (int i = 0; i < 50; ++i) {
      topic.Append({static_cast<uint64_t>(i), "persisted " + std::to_string(i),
                    static_cast<TemplateId>(i)});
    }
    ASSERT_TRUE(topic.Checkpoint("model-snapshot-bytes").ok());
    sealed = topic.sealed_segment_count();
    ASSERT_GT(sealed, 0u);
  }
  LogTopic topic("t", DiskConfig(dir.path()));
  ASSERT_TRUE(topic.storage_status().ok()) << topic.storage_status().ToString();
  ASSERT_EQ(topic.size(), 50u);
  EXPECT_EQ(topic.sealed_segment_count(), sealed);
  EXPECT_EQ(topic.recovered_metadata(), "model-snapshot-bytes");
  for (int i = 0; i < 50; ++i) {
    auto rec = topic.Read(i);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->text, "persisted " + std::to_string(i));
    EXPECT_EQ(rec->template_id, static_cast<TemplateId>(i));
  }
}

TEST(StorageBackendTest, SealedAssignTemplateSurvivesReopen) {
  TempDir dir;
  {
    LogTopic topic("t", DiskConfig(dir.path()));
    for (int i = 0; i < 30; ++i) {
      topic.Append({0, "rewrite target " + std::to_string(i), 1});
    }
    ASSERT_GT(topic.sealed_segment_count(), 0u);
    // Record 0 is sealed by now: the rewrite pwrites into the sealed
    // file (checksums exclude the template id by design).
    ASSERT_TRUE(topic.AssignTemplate(0, 777).ok());
    ASSERT_TRUE(topic.AssignTemplate(29, 888).ok());  // active
    ASSERT_TRUE(topic.Checkpoint("").ok());
  }
  LogTopic topic("t", DiskConfig(dir.path()));
  ASSERT_TRUE(topic.storage_status().ok());
  EXPECT_EQ(topic.Read(0)->template_id, 777u);
  EXPECT_EQ(topic.Read(29)->template_id, 888u);
}

// ---------------------------------------------------------------------
// Crash recovery: torn tails truncate, corruption surfaces a checksum
// Status — and never crashes.
// ---------------------------------------------------------------------

/// Appends `n` records and flushes WITHOUT sealing the tail, leaving a
/// realistic mid-stream crash image on disk. Returns the active
/// segment's path (the one after the last sealed index).
std::string WriteCrashImage(const std::string& dir, int n,
                            uint64_t* sealed_count) {
  SegmentedDiskBackend backend(DiskConfig(dir));
  EXPECT_TRUE(backend.Open().ok());
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(backend
                    .Append({static_cast<uint64_t>(i),
                             "crash stream record " + std::to_string(i), 0})
                    .ok());
  }
  EXPECT_TRUE(backend.Flush().ok());
  *sealed_count = backend.sealed_segment_count();
  EXPECT_GT(*sealed_count, 0u);
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.log",
                static_cast<unsigned long long>(*sealed_count));
  return dir + "/" + name;
  // backend destructor = clean close; the tail stays unsealed.
}

TEST(StorageBackendTest, TruncatedTailDropsOnlyTornRecords) {
  TempDir dir;
  uint64_t sealed_count = 0;
  const std::string tail = WriteCrashImage(dir.path(), 40, &sealed_count);

  // Tear the tail mid-frame: chop the last 5 bytes.
  const long tail_size = FileSize(tail);
  ASSERT_GT(tail_size, 5);
  ASSERT_EQ(::truncate(tail.c_str(), tail_size - 5), 0);

  SegmentedDiskBackend backend(DiskConfig(dir.path()));
  ASSERT_TRUE(backend.Open().ok());
  // All sealed data kept; the active tail lost exactly its torn last
  // record, and what remains reads back intact and in order.
  EXPECT_EQ(backend.sealed_segment_count(), sealed_count);
  ASSERT_LT(backend.size(), 40u);
  ASSERT_GT(backend.size(), 0u);
  for (uint64_t seq = 0; seq < backend.size(); ++seq) {
    LogRecord rec;
    ASSERT_TRUE(backend.Read(seq, &rec).ok());
    EXPECT_EQ(rec.text, "crash stream record " + std::to_string(seq));
  }
  // The torn bytes were truncated away; appends continue cleanly.
  const uint64_t before = backend.size();
  ASSERT_TRUE(backend.Append({0, "post-recovery append", 0}).ok());
  LogRecord rec;
  ASSERT_TRUE(backend.Read(before, &rec).ok());
  EXPECT_EQ(rec.text, "post-recovery append");
}

TEST(StorageBackendTest, FlippedTailByteDropsSuffixKeepsSealed) {
  TempDir dir;
  uint64_t sealed_count = 0;
  const std::string tail = WriteCrashImage(dir.path(), 40, &sealed_count);

  // Corrupt a byte in the MIDDLE of the tail: everything from the
  // corrupted frame on is untrusted and dropped; sealed data survives.
  FlipByte(tail, FileSize(tail) / 2);

  SegmentedDiskBackend backend(DiskConfig(dir.path()));
  ASSERT_TRUE(backend.Open().ok());
  EXPECT_EQ(backend.sealed_segment_count(), sealed_count);
  ASSERT_GT(backend.size(), 0u);
  ASSERT_LT(backend.size(), 40u);
  for (uint64_t seq = 0; seq < backend.size(); ++seq) {
    LogRecord rec;
    ASSERT_TRUE(backend.Read(seq, &rec).ok());
    EXPECT_EQ(rec.text, "crash stream record " + std::to_string(seq));
  }
}

TEST(StorageBackendTest, FlippedManifestByteSurfacesCorruption) {
  TempDir dir;
  uint64_t sealed_count = 0;
  (void)WriteCrashImage(dir.path(), 40, &sealed_count);

  const std::string manifest = dir.path() + "/MANIFEST";
  FlipByte(manifest, FileSize(manifest) / 2);

  SegmentedDiskBackend backend(DiskConfig(dir.path()));
  const Status opened = backend.Open();
  EXPECT_TRUE(opened.IsCorruption()) << opened.ToString();

  // LogTopic fail-softs onto an empty in-memory store and preserves the
  // Status for the caller; LogService turns it into a failed creation.
  LogTopic topic("t", DiskConfig(dir.path()));
  EXPECT_TRUE(topic.storage_status().IsCorruption());
  EXPECT_EQ(topic.size(), 0u);
  LogService service;
  TopicConfig config;
  config.storage = DiskConfig(dir.path());
  auto created = service.CreateTopic("t", config);
  ASSERT_FALSE(created.ok());
  EXPECT_TRUE(created.status().IsCorruption());
}

TEST(StorageBackendTest, FlippedSealedSegmentByteSurfacesCorruption) {
  TempDir dir;
  uint64_t sealed_count = 0;
  (void)WriteCrashImage(dir.path(), 40, &sealed_count);

  const std::string sealed0 = dir.path() + "/seg-000000.log";
  FlipByte(sealed0, FileSize(sealed0) / 2);

  SegmentedDiskBackend backend(DiskConfig(dir.path()));
  const Status opened = backend.Open();
  EXPECT_TRUE(opened.IsCorruption()) << opened.ToString();
}

TEST(StorageBackendTest, MissingDirectoryIsCreatedNestedPathWorks) {
  TempDir dir;
  LogTopic topic("t", DiskConfig(dir.path() + "/a/b/c"));
  ASSERT_TRUE(topic.storage_status().ok());
  topic.Append({1, "nested", 0});
  EXPECT_EQ(topic.size(), 1u);
}

// ---------------------------------------------------------------------
// Service-level storage integration.
// ---------------------------------------------------------------------

std::string ServiceLog(int i) {
  return "Accepted password for user" + std::to_string(i % 5) +
         " from 10.0.0." + std::to_string(i % 9 + 1) + " port " +
         std::to_string(40000 + i) + " ssh2";
}

TopicConfig DiskTopicConfig(const std::string& dir) {
  TopicConfig config;
  config.storage = DiskConfig(dir, /*segment_bytes=*/4096);
  config.initial_train_records = 200;
  config.train_interval_records = 1u << 30;
  config.train_volume_bytes = 1ull << 40;
  config.async_training = false;
  config.num_threads = 2;
  return config;
}

TEST(ServiceStorageTest, DiskTopicRecoversRecordsModelAndQueries) {
  TempDir dir;
  std::vector<std::string> pre_restart_groups;
  uint64_t pre_size = 0;
  {
    ManagedTopic topic("t", DiskTopicConfig(dir.path()));
    ASSERT_TRUE(topic.StorageStatus().ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(topic.Ingest(ServiceLog(i)).ok());
    }
    ASSERT_TRUE(topic.trained());
    // TrainNow checkpoints the model into the manifest at commit.
    ASSERT_TRUE(topic.TrainNow().ok());
    pre_size = topic.size();
    auto q = topic.Query(1.0);
    ASSERT_TRUE(q.ok());
    for (const TemplateGroup& g : q.value()) {
      pre_restart_groups.push_back(g.template_text + "/" +
                                   std::to_string(g.count));
    }
  }

  ManagedTopic topic("t", DiskTopicConfig(dir.path()));
  ASSERT_TRUE(topic.StorageStatus().ok());
  EXPECT_TRUE(topic.trained());
  const TopicStats stats = topic.stats();
  EXPECT_EQ(stats.recovered_records, pre_size);
  EXPECT_EQ(stats.ingested_records, pre_size);
  EXPECT_TRUE(stats.storage_persistent);
  EXPECT_GT(stats.num_templates, 0u);

  // Queries group exactly as before the restart: records, assignments
  // and the model all survived.
  auto q = topic.Query(1.0);
  ASSERT_TRUE(q.ok());
  std::vector<std::string> post;
  for (const TemplateGroup& g : q.value()) {
    post.push_back(g.template_text + "/" + std::to_string(g.count));
  }
  EXPECT_EQ(post, pre_restart_groups);

  // And the topic keeps working: new ingest matches the restored model.
  const uint64_t matched_before = topic.stats().matched_online;
  ASSERT_TRUE(topic.Ingest(ServiceLog(1)).ok());
  EXPECT_EQ(topic.stats().matched_online, matched_before + 1);
}

TEST(ServiceStorageTest, PostCheckpointAdoptionsRematchedOnRecovery) {
  TempDir dir;
  {
    ManagedTopic topic("t", DiskTopicConfig(dir.path()));
    for (int i = 0; i < 250; ++i) {
      ASSERT_TRUE(topic.Ingest(ServiceLog(i)).ok());
    }
    ASSERT_TRUE(topic.trained());
    // Novel shapes adopted AFTER the last training commit: their
    // temporaries are not in the checkpointed model, so the restart
    // must re-match (and re-adopt) them rather than serve dangling ids.
    for (int shape = 0; shape < 6; ++shape) {
      for (int dup = 0; dup < 3; ++dup) {
        ASSERT_TRUE(topic.Ingest("novel subsystem" + std::to_string(shape) +
                                 " fault " + std::to_string(dup))
                        .ok());
      }
    }
  }

  ManagedTopic topic("t", DiskTopicConfig(dir.path()));
  ASSERT_TRUE(topic.StorageStatus().ok());
  ASSERT_TRUE(topic.trained());
  // Every record resolves to a renderable template — no dangling ids.
  std::set<TemplateId> ids;
  ASSERT_TRUE(topic
                  .ScanRecords(0, topic.size(),
                               [&ids](uint64_t, const LogRecord& rec) {
                                 ids.insert(rec.template_id);
                               })
                  .ok());
  for (TemplateId id : ids) {
    ASSERT_NE(id, kInvalidTemplateId);
    EXPECT_TRUE(topic.HasTemplate(id)) << id;
  }
  auto q = topic.Query(1.0);
  ASSERT_TRUE(q.ok());
  for (const TemplateGroup& g : q.value()) {
    EXPECT_NE(g.template_text, "<unparsed>");
    EXPECT_FALSE(g.template_text.empty());
  }
}

// Memory-backed and disk-backed topics fed the identical stream end in
// the identical observable state (the service-level equivalence half of
// the backend-equivalence suite).
TEST(ServiceStorageTest, DiskTopicEndStateMatchesMemoryTopic) {
  TempDir dir;
  TopicConfig mem_config = DiskTopicConfig(dir.path());
  mem_config.storage = StorageConfig{};  // default: memory
  ManagedTopic memory("m", mem_config);
  ManagedTopic disk("d", DiskTopicConfig(dir.path()));
  ASSERT_TRUE(disk.StorageStatus().ok());

  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(memory.Ingest(ServiceLog(i)).ok());
    ASSERT_TRUE(disk.Ingest(ServiceLog(i)).ok());
  }
  ASSERT_TRUE(memory.TrainNow().ok());
  ASSERT_TRUE(disk.TrainNow().ok());

  auto qm = memory.Query(1.0);
  auto qd = disk.Query(1.0);
  ASSERT_TRUE(qm.ok());
  ASSERT_TRUE(qd.ok());
  ASSERT_EQ(qm.value().size(), qd.value().size());
  for (size_t i = 0; i < qm.value().size(); ++i) {
    EXPECT_EQ(qm.value()[i].template_text, qd.value()[i].template_text);
    EXPECT_EQ(qm.value()[i].count, qd.value()[i].count);
    EXPECT_EQ(qm.value()[i].sequence_numbers,
              qd.value()[i].sequence_numbers);
  }
  EXPECT_EQ(memory.stats().ingested_records, disk.stats().ingested_records);
  EXPECT_EQ(memory.stats().num_templates, disk.stats().num_templates);
}

// The acceptance scenario: a training snapshot over a large disk-backed
// window must NOT copy the window into RAM under the lock — the sealed
// part is read off-lock via mmap; only the unsealed tail (bounded by
// the active segment, not the window) is copied.
TEST(ServiceStorageTest, LargeWindowSnapshotReadsSealedViaMmap) {
#if BYTEBRAIN_UNDER_TSAN
  // TSAN multiplies both runtime and shadow memory; exercise the same
  // path at reduced scale.
  constexpr uint64_t kRecords = 120000;
#else
  constexpr uint64_t kRecords = 1050000;
#endif
  TempDir dir;
  TopicConfig config;
  config.storage = DiskConfig(dir.path(), /*segment_bytes=*/1u << 20);
  config.initial_train_records = 1000;
  config.train_interval_records = 1u << 30;
  config.train_volume_bytes = 1ull << 40;
  config.max_train_records = kRecords + 200000;  // window = whole topic
  config.async_training = false;
  config.num_threads = 2;
  ManagedTopic topic("big", config);
  ASSERT_TRUE(topic.StorageStatus().ok());

  std::vector<std::string> batch;
  batch.reserve(4096);
  for (uint64_t next = 0; next < kRecords;) {
    batch.clear();
    for (int i = 0; i < 4096 && next < kRecords; ++i, ++next) {
      batch.push_back(ServiceLog(static_cast<int>(next % 1000)));
    }
    auto seqs = topic.IngestBatch(batch);
    ASSERT_TRUE(seqs.ok()) << seqs.status().ToString();
  }
  ASSERT_EQ(topic.size(), kRecords);
  ASSERT_GT(topic.stats().storage_sealed_segments, 1u);

  ASSERT_TRUE(topic.TrainNow().ok());
  const TopicStats stats = topic.stats();
  // The window covered (almost) the whole topic...
  EXPECT_EQ(stats.last_snapshot_mapped_records +
                stats.last_snapshot_copied_records,
            kRecords);
  // ...but the snapshot copied only the unsealed tail: the mapped
  // (zero-copy) share dominates and the copied share is bounded by one
  // segment's worth of records, independent of the window size.
  EXPECT_GT(stats.last_snapshot_mapped_records, kRecords * 8 / 10);
  EXPECT_LT(stats.last_snapshot_copied_records, kRecords / 10);
  EXPECT_GT(stats.storage_mapped_bytes, 0u);
  // The training itself succeeded over the mapped window.
  EXPECT_GE(stats.trainings, 2u);
  EXPECT_GT(stats.num_templates, 0u);
}

// Disk-backed concurrency: batches, queries, and an async retrain all
// run against the disk store (TSAN coverage for the storage paths; the
// off-lock mmap scan runs concurrently with ingest into the active
// segment).
TEST(ServiceStorageTest, DiskTopicConcurrentIngestQueryRetrain) {
  TempDir dir;
  TopicConfig config = DiskTopicConfig(dir.path());
  config.async_training = true;
  config.train_interval_records = 400;
  ManagedTopic topic("t", config);
  ASSERT_TRUE(topic.StorageStatus().ok());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> query_errors{0};
  std::thread reader([&] {
    while (!done.load()) {
      auto q = topic.Query(0.5);
      if (!q.ok()) query_errors.fetch_add(1);
      (void)topic.stats();
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&topic, w] {
      for (int round = 0; round < 20; ++round) {
        std::vector<std::string> batch;
        for (int i = 0; i < 64; ++i) {
          batch.push_back(ServiceLog(w * 10000 + round * 64 + i));
        }
        ASSERT_TRUE(topic.IngestBatch(std::move(batch)).ok());
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  reader.join();
  topic.WaitForPendingTraining();

  EXPECT_EQ(query_errors.load(), 0u);
  EXPECT_EQ(topic.size(), 2u * 20u * 64u);
  EXPECT_EQ(topic.stats().failed_trainings, 0u);
  for (uint64_t seq = 0; seq < topic.size(); ++seq) {
    ASSERT_TRUE(topic.ReadRecord(seq).ok());
  }
}

}  // namespace
}  // namespace bytebrain
