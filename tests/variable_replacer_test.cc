// Tests for common variable replacement (§4.1.2), including the
// fast-scanner vs regex-path differential.
#include <gtest/gtest.h>

#include "core/variable_replacer.h"
#include "datagen/generator.h"

namespace bytebrain {
namespace {

TEST(BuiltinRecognizerTest, IsoTimestamp) {
  EXPECT_EQ(MatchBuiltinVariable("2026-06-10 12:30:00,123 rest", 0), 23u);
  EXPECT_EQ(MatchBuiltinVariable("2026-06-10T12:30:00.123456", 0), 26u);
  EXPECT_EQ(MatchBuiltinVariable("2026-06-10 nodate", 0), 10u);
  EXPECT_EQ(MatchBuiltinVariable("2026/06/10", 0), 10u);
}

TEST(BuiltinRecognizerTest, ClockTime) {
  EXPECT_EQ(MatchBuiltinVariable("12:30:00", 0), 8u);
  EXPECT_EQ(MatchBuiltinVariable("12:30:00.555", 0), 12u);
  EXPECT_EQ(MatchBuiltinVariable("12:30", 0), 0u);
}

TEST(BuiltinRecognizerTest, Ipv4WithOptionalPort) {
  EXPECT_EQ(MatchBuiltinVariable("10.0.4.18", 0), 9u);
  EXPECT_EQ(MatchBuiltinVariable("10.0.4.18:50010", 0), 15u);
  // Version-like dotted strings with a 5th group are not IPs.
  EXPECT_EQ(MatchBuiltinVariable("1.2.3.4.5", 0), 0u);
  EXPECT_EQ(MatchBuiltinVariable("1.2.3", 0), 0u);
}

TEST(BuiltinRecognizerTest, Uuid) {
  EXPECT_EQ(
      MatchBuiltinVariable("123e4567-e89b-12d3-a456-426614174000", 0), 36u);
  EXPECT_EQ(MatchBuiltinVariable("123e4567-e89b-12d3-a456-42661417400", 0),
            0u);  // 11-hex tail
}

TEST(BuiltinRecognizerTest, Md5AndHexLiterals) {
  EXPECT_EQ(
      MatchBuiltinVariable("d41d8cd98f00b204e9800998ecf8427e", 0), 32u);
  EXPECT_EQ(MatchBuiltinVariable("0xdeadbeef", 0), 10u);
  EXPECT_EQ(MatchBuiltinVariable("0x", 0), 0u);
  // 31 hex chars is not an MD5.
  EXPECT_EQ(MatchBuiltinVariable("d41d8cd98f00b204e9800998ecf8427", 0), 0u);
}

TEST(BuiltinRecognizerTest, WordBoundaries) {
  // Embedded in a word: no match.
  EXPECT_EQ(MatchBuiltinVariable("x12:30:00", 1), 0u);
  EXPECT_EQ(MatchBuiltinVariable("12:30:00x", 0), 0u);
}

TEST(VariableReplacerTest, DefaultReplacesKnownKinds) {
  VariableReplacer r = VariableReplacer::Default();
  EXPECT_EQ(r.Replace("at 2026-06-10 12:30:00 from 10.0.4.18:50010"),
            "at * from *");
  EXPECT_EQ(r.Replace("id=123e4567-e89b-12d3-a456-426614174000 flags=0x1f"),
            "id=* flags=*");
}

TEST(VariableReplacerTest, NoneLeavesTextAlone) {
  VariableReplacer r = VariableReplacer::None();
  const std::string s = "at 2026-06-10 12:30:00 from 10.0.4.18";
  EXPECT_EQ(r.Replace(s), s);
}

TEST(VariableReplacerTest, UserRuleApplies) {
  VariableReplacer r = VariableReplacer::None();
  ASSERT_TRUE(r.AddRule("blk", "blk_\\d+").ok());
  EXPECT_EQ(r.Replace("Received blk_12345 ok"), "Received * ok");
  EXPECT_EQ(r.num_user_rules(), 1u);
}

TEST(VariableReplacerTest, UserRuleRejectsLookaround) {
  VariableReplacer r = VariableReplacer::None();
  EXPECT_TRUE(r.AddRule("bad", "(?=x)").IsNotSupported());
}

TEST(VariableReplacerTest, UserRulesComposeWithBuiltins) {
  VariableReplacer r = VariableReplacer::Default();
  ASSERT_TRUE(r.AddRule("blk", "blk_\\d+").ok());
  EXPECT_EQ(r.Replace("blk_9 from 10.0.0.1"), "* from *");
}

TEST(VariableReplacerTest, FastAndRegexPathsAgree) {
  VariableReplacer fast = VariableReplacer::Default();
  VariableReplacer slow = VariableReplacer::Default();
  slow.set_use_fast_builtins(false);
  DatasetGenerator gen(*FindDatasetSpec("Hadoop"));
  GenOptions opts;
  opts.num_logs = 150;
  opts.num_templates = 40;
  opts.include_preamble = true;
  Dataset ds = gen.Generate(opts);
  for (const auto& log : ds.logs) {
    EXPECT_EQ(fast.Replace(log.text), slow.Replace(log.text)) << log.text;
  }
}

TEST(VariableReplacerTest, ReplaceIntoReusesBuffer) {
  VariableReplacer r = VariableReplacer::Default();
  std::string buf = "junk from a previous call";
  r.ReplaceInto("port 10.1.2.3", &buf);
  EXPECT_EQ(buf, "port *");
}

TEST(VariableReplacerTest, EmptyInput) {
  VariableReplacer r = VariableReplacer::Default();
  EXPECT_EQ(r.Replace(""), "");
}

TEST(VariableReplacerTest, AdjacentVariables) {
  VariableReplacer r = VariableReplacer::Default();
  EXPECT_EQ(r.Replace("10.0.0.1 10.0.0.2"), "* *");
}

// Regression for the user-rules-with-builtins-disabled path: the result
// must be exactly the user rules' output (formerly a dead branch could
// suggest the input was passed through untouched).
TEST(VariableReplacerTest, UserRulesWithBuiltinsDisabled) {
  VariableReplacer r = VariableReplacer::None();
  ASSERT_TRUE(r.AddRule("req_id", "req-[0-9]+").ok());
  EXPECT_FALSE(r.has_builtins());
  ASSERT_EQ(r.num_user_rules(), 1u);

  std::string out = "stale buffer contents";
  r.ReplaceInto("request req-1234 accepted", &out);
  EXPECT_EQ(out, "request * accepted");

  // Builtin kinds must NOT be replaced on this path.
  r.ReplaceInto("peer 10.0.0.1 sent req-77", &out);
  EXPECT_EQ(out, "peer 10.0.0.1 sent *");

  // No rule matches: the text passes through unchanged.
  r.ReplaceInto("nothing to see here", &out);
  EXPECT_EQ(out, "nothing to see here");
}

}  // namespace
}  // namespace bytebrain
