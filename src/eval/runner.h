// Experiment runner + table output helpers shared by the benches.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "datagen/generator.h"
#include "eval/metrics.h"
#include "eval/parser_interface.h"

namespace bytebrain {

/// Runs `parser` over the dataset, timing the full pipeline and scoring
/// grouping accuracy against the generator's labels.
RunResult RunOn(LogParserInterface* parser, const Dataset& dataset);

/// Fixed-width table printer for bench output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers,
                        std::vector<int> widths);

  void PrintHeader() const;
  void PrintRow(const std::vector<std::string>& cells) const;
  static std::string Fmt(double v, int precision = 2);
  static std::string Sci(double v);

 private:
  std::vector<std::string> headers_;
  std::vector<int> widths_;
};

}  // namespace bytebrain
