#include "logstore/segment_cache.h"

#include <sys/mman.h>

namespace bytebrain {

SegmentCache::Entry::~Entry() {
  // Last reference: the owning segment and every view are gone, so no
  // Pin can exist and nobody else can reach this entry. Still take the
  // cache mutex — eviction on another thread may be walking the LRU.
  if (cache_ == nullptr) return;
  std::lock_guard<std::mutex> lock(cache_->mu_);
  if (!resident_) return;
  cache_->lru_.erase(lru_it_);
  cache_->resident_bytes_ -= len_;
  if (owner_) owner_->resident_bytes -= len_;
  if (map_ != nullptr) ::munmap(const_cast<char*>(map_), len_);
}

SegmentCache::Pin& SegmentCache::Pin::operator=(Pin&& other) noexcept {
  if (this != &other) {
    Release();
    entry_ = std::move(other.entry_);
    data_ = other.data_;
    size_ = other.size_;
    other.entry_.reset();
    other.data_ = nullptr;
    other.size_ = 0;
  }
  return *this;
}

void SegmentCache::Pin::Release() {
  if (entry_) {
    entry_->cache_->ReleasePin(entry_.get());
    entry_.reset();
  }
  data_ = nullptr;
  size_ = 0;
}

SegmentCache::SegmentCache(uint64_t budget_bytes) : budget_(budget_bytes) {}

SegmentCache::~SegmentCache() = default;

SegmentCache* SegmentCache::Global() {
  static SegmentCache* const cache = new SegmentCache();  // leaked on purpose
  return cache;
}

void SegmentCache::set_budget_bytes(uint64_t budget) {
  std::lock_guard<std::mutex> lock(mu_);
  budget_ = budget;
  EvictDownToBudgetLocked(nullptr);
}

uint64_t SegmentCache::budget_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return budget_;
}

SegmentCache::EntryPtr SegmentCache::Register(
    int fd, size_t len, std::shared_ptr<OwnerStats> owner) {
  EntryPtr entry(new Entry());
  entry->cache_ = this;
  entry->fd_ = fd;
  entry->len_ = len;
  entry->owner_ = std::move(owner);
  return entry;
}

Status SegmentCache::Acquire(const EntryPtr& e, Pin* pin) {
  pin->Release();
  Entry* entry = e.get();
  std::lock_guard<std::mutex> lock(mu_);
  if (!entry->resident_) {
    if (entry->len_ > 0) {
      void* map = ::mmap(nullptr, entry->len_, PROT_READ, MAP_SHARED,
                         entry->fd_, 0);
      if (map == MAP_FAILED) {
        return Status::IOError("cannot map sealed segment");
      }
      entry->map_ = static_cast<const char*>(map);
    }
    entry->resident_ = true;
    entry->lru_it_ = lru_.insert(lru_.end(), entry);
    resident_bytes_ += entry->len_;
    ++misses_;
    if (entry->owner_) {
      ++entry->owner_->misses;
      entry->owner_->resident_bytes += entry->len_;
    }
    EvictDownToBudgetLocked(entry);
  } else {
    lru_.splice(lru_.end(), lru_, entry->lru_it_);
    ++hits_;
    if (entry->owner_) ++entry->owner_->hits;
  }
  ++entry->pins_;
  pin->entry_ = e;
  pin->data_ = entry->map_;
  pin->size_ = entry->len_;
  return Status::OK();
}

void SegmentCache::EvictDownToBudgetLocked(const Entry* keep) {
  auto it = lru_.begin();
  while (resident_bytes_ > budget_ && it != lru_.end()) {
    Entry* victim = *it;
    if (victim->pins_ > 0 || victim == keep) {
      ++it;
      continue;
    }
    it = lru_.erase(it);
    victim->resident_ = false;
    resident_bytes_ -= victim->len_;
    ++evictions_;
    if (victim->owner_) {
      ++victim->owner_->evictions;
      victim->owner_->resident_bytes -= victim->len_;
    }
    if (victim->map_ != nullptr) {
      ::munmap(const_cast<char*>(victim->map_), victim->len_);
      victim->map_ = nullptr;
    }
  }
}

void SegmentCache::ReleasePin(Entry* entry) {
  std::lock_guard<std::mutex> lock(mu_);
  --entry->pins_;
  // Pins can push residency over budget; settle back under it as soon
  // as the pin that demanded the overage lets go.
  if (entry->pins_ == 0 && resident_bytes_ > budget_) {
    EvictDownToBudgetLocked(nullptr);
  }
}

SegmentCache::OwnerStats SegmentCache::owner_stats(
    const std::shared_ptr<OwnerStats>& owner) const {
  std::lock_guard<std::mutex> lock(mu_);
  return owner ? *owner : OwnerStats{};
}

SegmentCache::Totals SegmentCache::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  Totals t;
  t.hits = hits_;
  t.misses = misses_;
  t.evictions = evictions_;
  t.resident_bytes = resident_bytes_;
  return t;
}

}  // namespace bytebrain
