// Cloud log service layer (paper §3 system design, §6 product features).
//
// A ManagedTopic glues the substrates together the way TLS does in
// production: logs are ingested into an append-only topic; the online
// matcher assigns template ids at ingestion (unmatched logs are adopted
// as temporary templates); periodic training — triggered by a volume
// threshold or an ingestion-count interval — (re)builds the clustering
// tree and publishes node metadata to the internal topic; queries group
// records by template at any saturation threshold without reprocessing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/parser.h"
#include "logstore/log_topic.h"
#include "util/status.h"

namespace bytebrain {

/// Per-topic configuration.
struct TopicConfig {
  /// Retrain once this many bytes arrived since the last training.
  uint64_t train_volume_bytes = 8 * 1024 * 1024;
  /// ... or once this many records arrived since the last training.
  uint64_t train_interval_records = 100000;
  /// Records required before the FIRST training (the paper configures
  /// initial training to finish within minutes of topic creation).
  uint64_t initial_train_records = 1000;
  /// Cap on records fed into one training run (OOM guard, §3).
  uint64_t max_train_records = 200000;
  /// Threads for matching/training (paper: 1-5 cores per topic).
  int num_threads = 2;
  ByteBrainOptions parser_options;
  /// Tenant-defined variable-replacement rules (§4.1.2): name -> pattern,
  /// compiled on the linear-time engine at topic creation.
  std::vector<std::pair<std::string, std::string>> variable_rules;
};

/// One query-result row: a template and the records grouped under it.
struct TemplateGroup {
  TemplateId template_id = kInvalidTemplateId;
  std::string template_text;   // wildcard-merged for display (§7)
  double saturation = 0.0;
  uint64_t count = 0;
  std::vector<uint64_t> sequence_numbers;
};

/// Statistics the service exposes per topic (Table 5's columns).
struct TopicStats {
  uint64_t ingested_records = 0;
  uint64_t ingested_bytes = 0;
  uint64_t trainings = 0;
  uint64_t matched_online = 0;
  uint64_t adopted_templates = 0;
  uint64_t model_bytes = 0;
  double last_training_seconds = 0.0;
  size_t num_templates = 0;
};

/// Anomaly report comparing two ingestion windows (§1, §6: count-change
/// and new-template detection).
struct TemplateAnomaly {
  TemplateId template_id = kInvalidTemplateId;
  std::string template_text;
  uint64_t count_before = 0;
  uint64_t count_after = 0;
  bool is_new = false;     // template absent from the reference window
  double change_ratio = 0.0;
};

/// A managed log topic with automatic parsing.
class ManagedTopic {
 public:
  ManagedTopic(std::string name, TopicConfig config);

  /// Appends a record; assigns a template id online (adopting a temporary
  /// template on a miss) and may trigger a synchronous training cycle.
  /// Returns the record's sequence number.
  Result<uint64_t> Ingest(std::string text, uint64_t timestamp_us = 0);

  /// Batch ingestion, the high-throughput path: matching runs
  /// shard-parallel under a SHARED lock (concurrent with queries and
  /// other batches' match phases), then a single EXCLUSIVE section
  /// adopts misses, appends, updates stats, and checks the training
  /// triggers — one lock handoff per batch instead of one per record.
  /// If a training cycle or an adoption lands mid-batch, the remaining
  /// prematched ids are discarded and those records are re-matched under
  /// the lock, so results are identical to calling Ingest in a loop.
  /// `timestamps_us` is optional; when non-empty it must have one entry
  /// per text. Returns the records' sequence numbers in order.
  Result<std::vector<uint64_t>> IngestBatch(
      std::vector<std::string> texts,
      const std::vector<uint64_t>& timestamps_us = {});

  /// Forces a training cycle over the most recent records.
  Status TrainNow();

  /// Groups the records of [begin_seq, end_seq) by template, resolving
  /// template precision at `saturation_threshold` (§3 "Query"). Groups
  /// arrive ordered by descending count.
  Result<std::vector<TemplateGroup>> Query(double saturation_threshold,
                                           uint64_t begin_seq = 0,
                                           uint64_t end_seq = UINT64_MAX) const;

  /// Compares template counts between two sequence windows and reports
  /// new templates and count changes >= `min_change_ratio`.
  Result<std::vector<TemplateAnomaly>> DetectAnomalies(
      uint64_t window1_begin, uint64_t window1_end, uint64_t window2_begin,
      uint64_t window2_end, double min_change_ratio = 2.0) const;

  const std::string& name() const { return name_; }
  TopicStats stats() const;
  const LogTopic& topic() const { return topic_; }
  const InternalTopic& internal_topic() const { return internal_; }
  const ByteBrainParser& parser() const { return parser_; }
  bool trained() const;

 private:
  Status MaybeTrainLocked();
  Status TrainLocked();
  /// Matches (or accepts a prematched id), appends, updates stats, and
  /// checks training triggers for one record. Requires the exclusive
  /// lock. `prematched` of kInvalidTemplateId means "match under the
  /// lock".
  Result<uint64_t> IngestOneLocked(std::string text, uint64_t timestamp_us,
                                   TemplateId prematched);

  std::string name_;
  TopicConfig config_;
  LogTopic topic_;
  InternalTopic internal_;
  ByteBrainParser parser_;
  TopicStats stats_;
  uint64_t bytes_since_training_ = 0;
  uint64_t records_since_training_ = 0;
  bool trained_ = false;
  /// Bumped by every training cycle and every template adoption; lets
  /// IngestBatch detect that ids prematched under the shared lock went
  /// stale before (or during) the exclusive section.
  uint64_t model_generation_ = 0;
  /// Readers (Query, stats, the batch match phase) take shared; anything
  /// touching parser/model/topic state takes exclusive.
  mutable std::shared_mutex mu_;
};

/// The multi-tenant service: a catalog of managed topics.
class LogService {
 public:
  /// Creates a topic; fails with AlreadyExists on name collisions.
  Result<ManagedTopic*> CreateTopic(const std::string& name,
                                    TopicConfig config = {});

  /// Looks up an existing topic.
  Result<ManagedTopic*> GetTopic(const std::string& name) const;

  std::vector<std::string> TopicNames() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ManagedTopic>> topics_;
};

}  // namespace bytebrain
