#include "api/frontend.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iterator>
#include <utility>

#include "logstore/segment_cache.h"
#include "util/serde.h"

namespace bytebrain {
namespace api {

namespace {

constexpr size_t kMaxNameBytes = 200;

/// Shared rules for tenant and topic names. '/' is the namespace
/// separator in the underlying catalog, so neither half may contain it
/// — that is what makes `tenant/name` collision-free by construction.
/// "." and ".." are rejected because names become path COMPONENTS under
/// FrontendConfig::storage_root; with '/' already banned they are the
/// only traversal primitives, and a topic named ".." would resolve its
/// segment directory (which DeleteTopic purge remove_all()s) outside
/// its tenant's subtree.
Status ValidateNamePart(const char* kind, std::string_view s) {
  if (s.empty()) {
    return Status::InvalidArgument(std::string(kind) + " must be non-empty");
  }
  if (s == "." || s == "..") {
    return Status::InvalidArgument(std::string(kind) +
                                   " must not be '.' or '..'");
  }
  if (s.size() > kMaxNameBytes) {
    return Status::InvalidArgument(std::string(kind) + " exceeds " +
                                   std::to_string(kMaxNameBytes) + " bytes");
  }
  if (s.find('/') != std::string_view::npos) {
    return Status::InvalidArgument(std::string(kind) +
                                   " must not contain '/'");
  }
  if (s.find('\0') != std::string_view::npos) {
    return Status::InvalidArgument(std::string(kind) +
                                   " must not contain NUL bytes");
  }
  return Status::OK();
}

std::string FullTopicName(std::string_view tenant, std::string_view name) {
  std::string full;
  full.reserve(tenant.size() + 1 + name.size());
  full.append(tenant);
  full.push_back('/');
  full.append(name);
  return full;
}

/// The opaque Query continuation token: the resolved window, threshold,
/// and group offset of the NEXT page. Snapshotting the window end in
/// the cursor is what makes page N+1 read the same record range page 1
/// did, even while ingest keeps appending.
struct QueryCursor {
  uint64_t begin_seq = 0;
  uint64_t end_seq = 0;
  uint64_t offset = 0;
  double saturation = 0.0;
  bool include_sequence_numbers = true;
  /// Resume key of the last group already served (tags 6-8, appended in
  /// v8): page N+1 seeks past it in the global group order instead of
  /// regrouping pages 1..N. Cursors minted before v8 decode with
  /// has_resume_key = false and fall back to the positional offset —
  /// same results, legacy cost.
  bool has_resume_key = false;
  uint64_t resume_count = 0;
  TemplateId resume_template_id = kInvalidTemplateId;
  /// Time-range predicate (tags 9-10, appended with the wire fields):
  /// pinned in the cursor like the window, so every page filters the
  /// same range. Pre-range cursors decode to the select-all defaults.
  uint64_t min_timestamp_us = 0;
  uint64_t max_timestamp_us = UINT64_MAX;

  void EncodeTo(std::string* out) const {
    FieldWriter w(out);
    w.PutU64(1, begin_seq);
    w.PutU64(2, end_seq);
    w.PutU64(3, offset);
    w.PutDouble(4, saturation);
    w.PutBool(5, include_sequence_numbers);
    w.PutBool(6, has_resume_key);
    w.PutU64(7, resume_count);
    w.PutU64(8, resume_template_id);
    w.PutU64(9, min_timestamp_us);
    w.PutU64(10, max_timestamp_us);
  }

  Status DecodeFrom(std::string_view bytes) {
    FieldReader fields(bytes);
    uint32_t tag = 0;
    std::string_view p;
    bool ok = true;
    while (fields.Next(&tag, &p)) {
      switch (tag) {
        case 1:
          ok = ok && FieldReader::U64(p, &begin_seq);
          break;
        case 2:
          ok = ok && FieldReader::U64(p, &end_seq);
          break;
        case 3:
          ok = ok && FieldReader::U64(p, &offset);
          break;
        case 4:
          ok = ok && FieldReader::Double(p, &saturation);
          break;
        case 5:
          ok = ok && FieldReader::Bool(p, &include_sequence_numbers);
          break;
        case 6:
          ok = ok && FieldReader::Bool(p, &has_resume_key);
          break;
        case 7:
          ok = ok && FieldReader::U64(p, &resume_count);
          break;
        case 8:
          ok = ok && FieldReader::U64(p, &resume_template_id);
          break;
        case 9:
          ok = ok && FieldReader::U64(p, &min_timestamp_us);
          break;
        case 10:
          ok = ok && FieldReader::U64(p, &max_timestamp_us);
          break;
        default:
          break;
      }
    }
    if (!ok || fields.error()) {
      return Status::InvalidArgument("malformed query cursor");
    }
    return Status::OK();
  }
};

/// Dispatch glue: decode the method's request, run it, encode one
/// response envelope (payload encoded in place — see EncodeResponse)
/// echoing `request_id`, and report the outcome through `info`.
/// `call(req, resp, retry_after_us)` is the bound typed method.
template <typename Req, typename Resp, typename Call>
std::string RunDispatch(std::string_view payload, uint64_t request_id,
                        ServiceFrontend::DispatchInfo* info, Call&& call) {
  Req req;
  Resp resp;
  uint64_t retry = 0;
  Status s = req.DecodeFrom(payload);
  if (s.ok()) s = call(std::move(req), &resp, &retry);
  if (info != nullptr) {
    info->code = s.code();
    info->retry_after_us = retry;
    info->request_id = request_id;
  }
  return EncodeResponse(s, retry, &resp, request_id);
}

std::string EncodeErrorResponse(Status status, uint64_t request_id = 0,
                                ServiceFrontend::DispatchInfo* info = nullptr) {
  if (info != nullptr) {
    info->code = status.code();
    info->retry_after_us = 0;
    info->request_id = request_id;
  }
  return EncodeResponse<ListTopicsResponse>(status, 0, nullptr, request_id);
}

}  // namespace

Status StaticTokenAuthenticator::Authenticate(std::string_view tenant,
                                              std::string_view token) const {
  const auto it = tokens_.find(tenant);
  // Unknown tenant and wrong token are deliberately the same constant
  // error: the token table's contents must not be probeable.
  if (it == tokens_.end() || it->second != token) {
    return Status::PermissionDenied("invalid tenant or auth token");
  }
  return Status::OK();
}

ServiceFrontend::ServiceFrontend(FrontendConfig config)
    : config_(std::move(config)) {
  auth_ = config_.authenticator;
  if (auth_ == nullptr && !config_.tenant_tokens.empty()) {
    auth_ = std::make_shared<StaticTokenAuthenticator>(config_.tenant_tokens);
  }
  follower_.store(config_.start_as_follower, std::memory_order_relaxed);
  if (config_.segment_cache_budget_bytes > 0) {
    SegmentCache::Global()->set_budget_bytes(
        config_.segment_cache_budget_bytes);
  }
}

void ServiceFrontend::SetRoleChangeHook(std::function<void(bool)> hook) {
  std::lock_guard<std::mutex> lock(role_hook_mu_);
  role_hook_ = std::move(hook);
}

void ServiceFrontend::NotifyRoleChange(bool is_follower) {
  std::function<void(bool)> hook;
  {
    std::lock_guard<std::mutex> lock(role_hook_mu_);
    hook = role_hook_;
  }
  if (hook) hook(is_follower);
}

void ServiceFrontend::UpdateTenantTokens(
    std::map<std::string, std::string, std::less<>> tokens) {
  // Build the replacement table outside the lock; the swap itself is
  // O(1), so a rotation never stalls concurrent Dispatch auth reads.
  std::shared_ptr<const Authenticator> next;
  if (!tokens.empty()) {
    next = std::make_shared<StaticTokenAuthenticator>(std::move(tokens));
  }
  std::lock_guard<std::mutex> lock(auth_mu_);
  auth_ = std::move(next);
}

Status ServiceFrontend::CheckWritable() const {
  if (!follower_.load(std::memory_order_relaxed)) return Status::OK();
  std::string msg = "node is a replication follower (read-only)";
  if (!config_.primary_hint.empty()) {
    msg += "; retry at " + config_.primary_hint;
  }
  return Status::Unavailable(msg);
}

uint64_t ServiceFrontend::NowUs() const {
  if (config_.clock_us) return config_.clock_us();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

ServiceFrontend::TenantState* ServiceFrontend::Tenant(
    std::string_view tenant) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(std::string(tenant), std::make_unique<TenantState>())
             .first;
  }
  return it->second.get();
}

Status ServiceFrontend::AdmitIngest(TenantState* tenant, uint64_t records,
                                    uint64_t bytes,
                                    uint64_t* retry_after_us) {
  const uint64_t byte_rate = config_.max_ingest_bytes_per_sec;
  const uint64_t record_rate = config_.max_ingest_records_per_sec;
  if (byte_rate == 0 && record_rate == 0) {
    // Unlimited rates skip the buckets but NOT the meter — the meter is
    // the tenant's usage record either way.
    std::lock_guard<std::mutex> lock(tenant->mu);
    ++tenant->meter.admitted_requests;
    tenant->meter.admitted_bytes += bytes;
    tenant->meter.admitted_records += records;
    return Status::OK();
  }

  const uint64_t now = NowUs();
  std::lock_guard<std::mutex> lock(tenant->mu);
  const double burst = std::max(config_.burst_seconds, 1e-6);
  const double byte_cap = static_cast<double>(byte_rate) * burst;
  const double record_cap = static_cast<double>(record_rate) * burst;
  if (!tenant->buckets_primed) {
    tenant->byte_tokens = byte_cap;
    tenant->record_tokens = record_cap;
    tenant->last_refill_us = now;
    tenant->buckets_primed = true;
  }
  // Continuous refill up to capacity. A non-monotonic clock (only
  // possible with an injected one) refills nothing rather than
  // charging backwards.
  const double dt = now > tenant->last_refill_us
                        ? static_cast<double>(now - tenant->last_refill_us) *
                              1e-6
                        : 0.0;
  tenant->last_refill_us = std::max(now, tenant->last_refill_us);
  tenant->byte_tokens = std::min(
      byte_cap, tenant->byte_tokens + dt * static_cast<double>(byte_rate));
  tenant->record_tokens =
      std::min(record_cap,
               tenant->record_tokens + dt * static_cast<double>(record_rate));

  // A request larger than a bucket's whole capacity is admitted against
  // a FULL bucket (and overdraws it) — otherwise it could never run.
  double wait_seconds = 0.0;
  if (byte_rate > 0) {
    const double need = std::min(static_cast<double>(bytes), byte_cap);
    if (tenant->byte_tokens < need) {
      wait_seconds = std::max(wait_seconds, (need - tenant->byte_tokens) /
                                                static_cast<double>(byte_rate));
    }
  }
  if (record_rate > 0) {
    const double need = std::min(static_cast<double>(records), record_cap);
    if (tenant->record_tokens < need) {
      wait_seconds =
          std::max(wait_seconds, (need - tenant->record_tokens) /
                                     static_cast<double>(record_rate));
    }
  }
  if (wait_seconds > 0.0) {
    // Denied: consume NOTHING (a starved client must not dig the hole
    // deeper by retrying) and say when the buckets will cover it.
    ++tenant->meter.denied_requests;
    tenant->meter.denied_bytes += bytes;
    tenant->meter.denied_records += records;
    *retry_after_us = static_cast<uint64_t>(std::ceil(wait_seconds * 1e6));
    return Status::ResourceExhausted(
        "tenant ingest rate quota exceeded; retry after " +
        std::to_string(*retry_after_us) + "us");
  }
  if (byte_rate > 0) tenant->byte_tokens -= static_cast<double>(bytes);
  if (record_rate > 0) {
    tenant->record_tokens -= static_cast<double>(records);
  }
  ++tenant->meter.admitted_requests;
  tenant->meter.admitted_bytes += bytes;
  tenant->meter.admitted_records += records;
  return Status::OK();
}

Result<std::shared_ptr<ManagedTopic>> ServiceFrontend::ResolveTopic(
    std::string_view tenant, std::string_view name) {
  BB_RETURN_IF_ERROR(ValidateNamePart("tenant", tenant));
  BB_RETURN_IF_ERROR(ValidateNamePart("topic name", name));
  auto topic = service_.GetTopic(FullTopicName(tenant, name));
  if (!topic.ok()) {
    // Absence and cross-tenant access are deliberately the same error:
    // existence of another tenant's topic must not be probeable.
    return Status::NotFound("topic '" + std::string(name) +
                            "' does not exist");
  }
  return topic;
}

Status ServiceFrontend::CreateTopic(std::string_view tenant,
                                    const CreateTopicRequest& req,
                                    CreateTopicResponse* /*resp*/) {
  BB_RETURN_IF_ERROR(CheckWritable());
  BB_RETURN_IF_ERROR(ValidateNamePart("tenant", tenant));
  BB_RETURN_IF_ERROR(ValidateNamePart("topic name", req.name));
  // Re-creating an existing topic is AlreadyExists, not a quota denial
  // — it would not add a topic. (Racing creates are still settled by
  // the catalog's own AlreadyExists below.)
  if (service_.GetTopic(FullTopicName(tenant, req.name)).ok()) {
    return Status::AlreadyExists("topic '" + req.name + "' already exists");
  }
  TopicConfig config = req.config;
  if (config.storage.kind == StorageConfig::Kind::kSegmentedDisk &&
      !config_.storage_root.empty()) {
    // The frontend owns disk placement: a wire-supplied directory could
    // alias another tenant's segment files — and DeleteTopic's purge
    // remove_all()s the directory, so aliasing would be destructive.
    if (!config.storage.directory.empty()) {
      return Status::InvalidArgument(
          "storage.directory is assigned by the service; leave it empty");
    }
    config.storage.directory = config_.storage_root + "/" +
                               std::string(tenant) + "/" + req.name;
  }
  TenantState* state = Tenant(tenant);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    if (config_.max_topics_per_tenant > 0 &&
        state->topic_count >= config_.max_topics_per_tenant) {
      return Status::ResourceExhausted(
          "tenant topic quota (" +
          std::to_string(config_.max_topics_per_tenant) + ") reached");
    }
    ++state->topic_count;
  }
  auto created =
      service_.CreateTopic(FullTopicName(tenant, req.name), std::move(config));
  if (!created.ok()) {
    std::lock_guard<std::mutex> lock(state->mu);
    --state->topic_count;
    return created.status();
  }
  return Status::OK();
}

Status ServiceFrontend::UpdateTopicConfig(std::string_view tenant,
                                          const UpdateTopicConfigRequest& req,
                                          UpdateTopicConfigResponse* /*resp*/) {
  BB_RETURN_IF_ERROR(CheckWritable());
  auto topic = ResolveTopic(tenant, req.name);
  BB_RETURN_IF_ERROR(topic.status());
  return topic.value()->UpdateConfig(req.patch);
}

Status ServiceFrontend::DeleteTopic(std::string_view tenant,
                                    const DeleteTopicRequest& req,
                                    DeleteTopicResponse* /*resp*/) {
  BB_RETURN_IF_ERROR(CheckWritable());
  BB_RETURN_IF_ERROR(ValidateNamePart("tenant", tenant));
  BB_RETURN_IF_ERROR(ValidateNamePart("topic name", req.name));
  const Status deleted = service_.DeleteTopic(FullTopicName(tenant, req.name),
                                              req.purge_storage);
  if (deleted.IsNotFound()) {
    return Status::NotFound("topic '" + req.name + "' does not exist");
  }
  BB_RETURN_IF_ERROR(deleted);
  TenantState* state = Tenant(tenant);
  std::lock_guard<std::mutex> lock(state->mu);
  if (state->topic_count > 0) --state->topic_count;
  return Status::OK();
}

Status ServiceFrontend::ListTopics(std::string_view tenant,
                                   const ListTopicsRequest& /*req*/,
                                   ListTopicsResponse* resp) {
  BB_RETURN_IF_ERROR(ValidateNamePart("tenant", tenant));
  resp->names.clear();
  const std::string prefix = std::string(tenant) + "/";
  // TopicNames is sorted (map order), so the filtered view is too.
  for (const std::string& full : service_.TopicNames()) {
    if (full.size() > prefix.size() &&
        full.compare(0, prefix.size(), prefix) == 0) {
      resp->names.push_back(full.substr(prefix.size()));
    }
  }
  return Status::OK();
}

Status ServiceFrontend::Ingest(std::string_view tenant, IngestRequest req,
                               IngestResponse* resp,
                               uint64_t* retry_after_us) {
  BB_RETURN_IF_ERROR(CheckWritable());
  auto topic = ResolveTopic(tenant, req.topic);
  BB_RETURN_IF_ERROR(topic.status());
  uint64_t retry = 0;
  const Status admitted =
      AdmitIngest(Tenant(tenant), 1, req.text.size(), &retry);
  if (!admitted.ok()) {
    if (retry_after_us != nullptr) *retry_after_us = retry;
    return admitted;
  }
  auto seq = topic.value()->Ingest(std::move(req.text), req.timestamp_us);
  BB_RETURN_IF_ERROR(seq.status());
  resp->seq = seq.value();
  return Status::OK();
}

Status ServiceFrontend::IngestBatchGuarded(
    std::string_view tenant, uint64_t records, uint64_t bytes,
    const std::function<Result<std::vector<uint64_t>>()>& run,
    IngestBatchResponse* resp, uint64_t* retry_after_us) {
  TenantState* state = Tenant(tenant);

  // In-flight cap first: it bounds concurrently EXECUTING batches (the
  // memory/thread pressure), independent of the rate the buckets meter.
  if (config_.max_inflight_batches > 0) {
    std::lock_guard<std::mutex> lock(state->mu);
    if (state->inflight_batches >= config_.max_inflight_batches) {
      // An inflight-cap rejection is a denial like a rate-limit one:
      // the offered batch was shed before reaching the topic.
      ++state->meter.denied_requests;
      state->meter.denied_bytes += bytes;
      state->meter.denied_records += records;
      if (retry_after_us != nullptr) *retry_after_us = 1000;
      return Status::ResourceExhausted(
          "tenant in-flight batch cap (" +
          std::to_string(config_.max_inflight_batches) + ") reached");
    }
    ++state->inflight_batches;
  }
  struct InflightGuard {
    TenantState* state;
    bool active;
    ~InflightGuard() {
      if (!active) return;
      std::lock_guard<std::mutex> lock(state->mu);
      --state->inflight_batches;
    }
  } guard{state, config_.max_inflight_batches > 0};
  if (config_.on_ingest_batch_start) config_.on_ingest_batch_start(tenant);

  uint64_t retry = 0;
  const Status admitted = AdmitIngest(state, records, bytes, &retry);
  if (!admitted.ok()) {
    if (retry_after_us != nullptr) *retry_after_us = retry;
    return admitted;
  }
  auto seqs = run();
  BB_RETURN_IF_ERROR(seqs.status());
  resp->seqs = std::move(seqs).value();
  return Status::OK();
}

Status ServiceFrontend::IngestBatch(std::string_view tenant,
                                    IngestBatchRequest req,
                                    IngestBatchResponse* resp,
                                    uint64_t* retry_after_us) {
  BB_RETURN_IF_ERROR(CheckWritable());
  auto topic = ResolveTopic(tenant, req.topic);
  BB_RETURN_IF_ERROR(topic.status());
  uint64_t bytes = 0;
  for (const std::string& text : req.texts) bytes += text.size();
  return IngestBatchGuarded(
      tenant, req.texts.size(), bytes,
      [&topic, &req] {
        return topic.value()->IngestBatch(std::move(req.texts),
                                          req.timestamps_us);
      },
      resp, retry_after_us);
}

Status ServiceFrontend::IngestBatchViews(std::string_view tenant,
                                         const IngestBatchRequestView& req,
                                         IngestBatchResponse* resp,
                                         uint64_t* retry_after_us) {
  BB_RETURN_IF_ERROR(CheckWritable());
  auto topic = ResolveTopic(tenant, req.topic);
  BB_RETURN_IF_ERROR(topic.status());
  uint64_t bytes = 0;
  for (std::string_view text : req.texts) bytes += text.size();
  return IngestBatchGuarded(
      tenant, req.texts.size(), bytes,
      [&topic, &req] {
        // The view overload: record bytes are materialized once, at
        // append — the decoded request buffer backs the texts until
        // then.
        return topic.value()->IngestBatch(req.texts, req.timestamps_us);
      },
      resp, retry_after_us);
}

Status ServiceFrontend::Query(std::string_view tenant, const QueryRequest& req,
                              QueryResponse* resp) {
  auto topic = ResolveTopic(tenant, req.topic);
  BB_RETURN_IF_ERROR(topic.status());

  QueryCursor cursor;
  if (!req.cursor.empty()) {
    BB_RETURN_IF_ERROR(cursor.DecodeFrom(req.cursor));
  } else {
    cursor.begin_seq = req.begin_seq;
    // Resolve the open end NOW: later pages read the same window even
    // if ingest has moved on.
    cursor.end_seq = std::min(req.end_seq, topic.value()->size());
    cursor.offset = 0;
    cursor.saturation = req.saturation_threshold;
    cursor.include_sequence_numbers = req.include_sequence_numbers;
    cursor.min_timestamp_us = req.min_timestamp_us;
    cursor.max_timestamp_us = req.max_timestamp_us;
  }

  // Index-backed page: counts come from the storage postings, the page
  // start is seeked via the cursor's resume key, and only this page's
  // groups are materialized — page N+1 no longer regroups pages 1..N.
  QueryPageRequest page_req;
  page_req.saturation_threshold = cursor.saturation;
  page_req.begin_seq = cursor.begin_seq;
  page_req.end_seq = cursor.end_seq;
  page_req.collect_sequences = cursor.include_sequence_numbers;
  page_req.max_groups = req.max_groups;
  page_req.offset = cursor.offset;
  page_req.has_resume_key = cursor.has_resume_key;
  page_req.resume_count = cursor.resume_count;
  page_req.resume_template_id = cursor.resume_template_id;
  page_req.min_timestamp_us = cursor.min_timestamp_us;
  page_req.max_timestamp_us = cursor.max_timestamp_us;
  auto page = topic.value()->QueryGroups(page_req);
  BB_RETURN_IF_ERROR(page.status());
  resp->groups = std::move(page.value().groups);
  resp->next_cursor.clear();
  if (page.value().has_more) {
    QueryCursor next = cursor;
    next.offset = page.value().next_offset;
    next.has_resume_key = true;
    next.resume_count = page.value().last_count;
    next.resume_template_id = page.value().last_template_id;
    next.EncodeTo(&resp->next_cursor);
  }
  return Status::OK();
}

Status ServiceFrontend::GetStats(std::string_view tenant,
                                 const GetStatsRequest& req,
                                 GetStatsResponse* resp) {
  auto topic = ResolveTopic(tenant, req.topic);
  BB_RETURN_IF_ERROR(topic.status());
  resp->stats = topic.value()->stats();
  // Role is a frontend property (topics are role-agnostic); stamp it
  // into the snapshot here.
  resp->stats.replica_role = is_follower() ? 1 : 0;
  // The tenant meter is tenant-wide (admission control runs per tenant,
  // not per topic), so any of the tenant's topics reports the same one.
  TenantState* state = Tenant(tenant);
  {
    std::lock_guard<std::mutex> lock(state->mu);
    resp->tenant = state->meter;
  }
  return Status::OK();
}

Status ServiceFrontend::TrainNow(std::string_view tenant,
                                 const TrainNowRequest& req,
                                 TrainNowResponse* /*resp*/) {
  BB_RETURN_IF_ERROR(CheckWritable());
  auto topic = ResolveTopic(tenant, req.topic);
  BB_RETURN_IF_ERROR(topic.status());
  return topic.value()->TrainNow();
}

Status ServiceFrontend::DetectAnomalies(std::string_view tenant,
                                        const DetectAnomaliesRequest& req,
                                        DetectAnomaliesResponse* resp) {
  auto topic = ResolveTopic(tenant, req.topic);
  BB_RETURN_IF_ERROR(topic.status());
  auto anomalies = topic.value()->DetectAnomalies(
      req.window1_begin, req.window1_end, req.window2_begin, req.window2_end,
      req.min_change_ratio);
  BB_RETURN_IF_ERROR(anomalies.status());
  resp->anomalies = std::move(anomalies).value();
  return Status::OK();
}

Status ServiceFrontend::ReplPull(const ReplPullRequest& req,
                                 ReplPullResponse* resp) {
  // Catalog enumeration: an empty topic name asks for the full topic
  // list so the follower can create missing topics and drop stale ones.
  if (req.topic.empty()) {
    resp->topics = service_.TopicNames();
    return Status::OK();
  }
  auto topic = service_.GetTopic(req.topic);
  if (!topic.ok()) {
    return Status::NotFound("topic '" + req.topic + "' does not exist");
  }
  ManagedTopic* t = topic.value().get();
  if (req.want_config) {
    resp->has_config = true;
    resp->config = t->config();
    // The follower roots segments under its own storage tree; shipping
    // the primary's path would be meaningless (or dangerous) there.
    resp->config.storage.directory.clear();
  }
  const uint64_t gen = t->ModelGeneration();
  resp->model_generation = gen;
  if (req.model_generation != gen && t->trained()) {
    resp->has_model = true;
    resp->model_blob = t->SerializedModel();
  }
  ReplicationChunk chunk;
  Status read = t->ReplicationRead(req.segment_index, req.offset,
                                   req.max_bytes, &chunk);
  if (read.IsNotSupported()) {
    return Status::NotSupported(
        "topic has no replicable storage (memory backend)");
  }
  BB_RETURN_IF_ERROR(read);
  resp->segment_index = chunk.segment_index;
  resp->offset = chunk.offset;
  resp->data = std::move(chunk.data);
  resp->segment_sealed = chunk.segment_sealed;
  resp->segment_records = chunk.segment_records;
  resp->segment_checksum = chunk.segment_checksum;
  resp->segment_data_len = chunk.segment_data_len;
  resp->source_records = chunk.source_records;
  resp->source_segments = chunk.source_segments;
  resp->source_bytes = chunk.source_bytes;
  return Status::OK();
}

Status ServiceFrontend::Promote(PromoteResponse* resp) {
  const bool was_follower = follower_.exchange(false);
  if (!was_follower) return Status::OK();  // idempotent
  // Seal every topic's replicated tail so the promotion point is a
  // durable segment boundary, then zero the (now meaningless) lag.
  uint64_t sealed_topics = 0;
  for (const std::string& name : service_.TopicNames()) {
    auto topic = service_.GetTopic(name);
    if (!topic.ok()) continue;  // deleted concurrently
    bool sealed = false;
    Status s = topic.value()->SealTail(&sealed);
    if (!s.ok()) {
      follower_.store(true);  // promotion failed; stay a follower
      return s;
    }
    if (sealed) ++sealed_topics;
    topic.value()->SetReplicationLag(0, 0, 0);
  }
  if (resp != nullptr) resp->sealed_topics = sealed_topics;
  NotifyRoleChange(false);
  return Status::OK();
}

Status ServiceFrontend::Demote(DemoteResponse* /*resp*/) {
  if (!follower_.exchange(true)) NotifyRoleChange(true);
  return Status::OK();
}

std::string ServiceFrontend::Dispatch(std::string_view request_bytes,
                                      DispatchInfo* info) {
  // View-parse the envelope: tenant and payload stay in the caller's
  // buffer (alive for the whole call), so a batch is never copied at
  // the envelope layer.
  RequestEnvelopeView env;
  const Status decoded = env.DecodeFrom(request_bytes);
  if (!decoded.ok()) return EncodeErrorResponse(decoded, 0, info);
  const std::string_view tenant = env.tenant;
  const uint64_t rid = env.request_id;
  // Replication methods authenticate against the peer token, not the
  // tenant table: the envelope's auth_token must equal the configured
  // replication_token exactly (tenant is ignored). An empty configured
  // token keeps the surface off; the error is identical in every
  // failure case so the token is not probeable.
  const bool repl_method = env.method == ApiMethod::kReplPull ||
                           env.method == ApiMethod::kPromote ||
                           env.method == ApiMethod::kDemote;
  if (repl_method) {
    if (config_.replication_token.empty() ||
        env.auth_token != config_.replication_token) {
      return EncodeErrorResponse(
          Status::PermissionDenied("replication not authorized"), rid, info);
    }
  } else {
    // Authentication gates EVERYTHING below — including admission
    // accounting: a rejected request must not consume tokens, hold an
    // in-flight slot, or move the tenant meter. Copy the authenticator
    // under the lock so a concurrent UpdateTenantTokens swap is safe.
    std::shared_ptr<const Authenticator> auth;
    {
      std::lock_guard<std::mutex> lock(auth_mu_);
      auth = auth_;
    }
    if (auth != nullptr) {
      const Status authed = auth->Authenticate(tenant, env.auth_token);
      if (!authed.ok()) return EncodeErrorResponse(authed, rid, info);
    }
  }
  try {
    switch (env.method) {
      case ApiMethod::kCreateTopic:
        return RunDispatch<CreateTopicRequest, CreateTopicResponse>(
            env.payload, rid, info,
            [&](CreateTopicRequest req, CreateTopicResponse* resp, uint64_t*) {
              return CreateTopic(tenant, req, resp);
            });
      case ApiMethod::kUpdateTopicConfig:
        return RunDispatch<UpdateTopicConfigRequest, UpdateTopicConfigResponse>(
            env.payload, rid, info,
            [&](UpdateTopicConfigRequest req, UpdateTopicConfigResponse* resp,
                uint64_t*) { return UpdateTopicConfig(tenant, req, resp); });
      case ApiMethod::kDeleteTopic:
        return RunDispatch<DeleteTopicRequest, DeleteTopicResponse>(
            env.payload, rid, info,
            [&](DeleteTopicRequest req, DeleteTopicResponse* resp, uint64_t*) {
              return DeleteTopic(tenant, req, resp);
            });
      case ApiMethod::kListTopics:
        return RunDispatch<ListTopicsRequest, ListTopicsResponse>(
            env.payload, rid, info,
            [&](ListTopicsRequest req, ListTopicsResponse* resp, uint64_t*) {
              return ListTopics(tenant, req, resp);
            });
      case ApiMethod::kIngest:
        return RunDispatch<IngestRequest, IngestResponse>(
            env.payload, rid, info,
            [&](IngestRequest req, IngestResponse* resp, uint64_t* retry) {
              return Ingest(tenant, std::move(req), resp, retry);
            });
      case ApiMethod::kIngestBatch:
        // Zero-copy fast path: texts are decoded as views into
        // request_bytes and handed to the view IngestBatch — record
        // bytes are copied exactly once, at append.
        return RunDispatch<IngestBatchRequestView, IngestBatchResponse>(
            env.payload, rid, info,
            [&](IngestBatchRequestView req, IngestBatchResponse* resp,
                uint64_t* retry) {
              return IngestBatchViews(tenant, req, resp, retry);
            });
      case ApiMethod::kQuery:
        return RunDispatch<QueryRequest, QueryResponse>(
            env.payload, rid, info,
            [&](QueryRequest req, QueryResponse* resp, uint64_t*) {
              return Query(tenant, req, resp);
            });
      case ApiMethod::kGetStats:
        return RunDispatch<GetStatsRequest, GetStatsResponse>(
            env.payload, rid, info,
            [&](GetStatsRequest req, GetStatsResponse* resp, uint64_t*) {
              return GetStats(tenant, req, resp);
            });
      case ApiMethod::kTrainNow:
        return RunDispatch<TrainNowRequest, TrainNowResponse>(
            env.payload, rid, info,
            [&](TrainNowRequest req, TrainNowResponse* resp, uint64_t*) {
              return TrainNow(tenant, req, resp);
            });
      case ApiMethod::kDetectAnomalies:
        return RunDispatch<DetectAnomaliesRequest, DetectAnomaliesResponse>(
            env.payload, rid, info,
            [&](DetectAnomaliesRequest req, DetectAnomaliesResponse* resp,
                uint64_t*) { return DetectAnomalies(tenant, req, resp); });
      case ApiMethod::kReplPull:
        return RunDispatch<ReplPullRequest, ReplPullResponse>(
            env.payload, rid, info,
            [&](ReplPullRequest req, ReplPullResponse* resp, uint64_t*) {
              return ReplPull(req, resp);
            });
      case ApiMethod::kPromote:
        return RunDispatch<PromoteRequest, PromoteResponse>(
            env.payload, rid, info,
            [&](PromoteRequest, PromoteResponse* resp, uint64_t*) {
              return Promote(resp);
            });
      case ApiMethod::kDemote:
        return RunDispatch<DemoteRequest, DemoteResponse>(
            env.payload, rid, info,
            [&](DemoteRequest, DemoteResponse* resp, uint64_t*) {
              return Demote(resp);
            });
      case ApiMethod::kUnknown:
        break;
    }
    return EncodeErrorResponse(
        Status::NotSupported(
            "unknown api method " +
            std::to_string(static_cast<uint32_t>(env.method))),
        rid, info);
  } catch (const std::exception& e) {
    // The transport contract: bytes in, bytes out, never a crash or an
    // escaped exception (e.g. allocation failure mid-operation).
    return EncodeErrorResponse(
        Status::Aborted(std::string("dispatch failed: ") + e.what()), rid,
        info);
  } catch (...) {
    return EncodeErrorResponse(Status::Aborted("dispatch failed"), rid, info);
  }
}

}  // namespace api
}  // namespace bytebrain
