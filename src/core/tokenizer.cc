#include "core/tokenizer.h"

#include <array>

#include "core/token_table.h"
#include "core/variable_replacer.h"
#include "util/hashing.h"

namespace bytebrain {

namespace {

// Delimiter-character lookup table for the Listing-1 class
// [\s\'\";=()\[\]{}?@&<>:\n\t\r,].
constexpr std::array<bool, 256> BuildDelimTable() {
  std::array<bool, 256> t{};
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v', '\'', '"', ';', '=', '(',
                 ')', '[', ']', '{', '}', '?', '@', '&', '<', '>', ':', ','}) {
    t[static_cast<uint8_t>(c)] = true;
  }
  return t;
}

constexpr std::array<bool, 256> kIsDelim = BuildDelimTable();

constexpr bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

// Returns the length of the delimiter unit starting at `i`, or 0 if the
// character belongs to a token.
inline size_t DelimLenAt(std::string_view s, size_t i) {
  const char c = s[i];
  if (c == ':' && i + 2 < s.size() && s[i + 1] == '/' && s[i + 2] == '/') {
    return 3;  // URL protocol separator "://"
  }
  if (kIsDelim[static_cast<uint8_t>(c)]) return 1;
  if (c == '.') {
    // Sentence-ending period: consumed only before whitespace or EOL,
    // preserving periods inside numbers and identifiers.
    if (i + 1 == s.size() || IsSpaceChar(s[i + 1])) return 1;
    return 0;
  }
  if (c == '\\' && i + 1 < s.size() &&
      (s[i + 1] == '"' || s[i + 1] == '\'')) {
    return 2;  // escaped quote
  }
  return 0;
}

}  // namespace

void TokenizeDefaultInto(std::string_view log,
                         std::vector<std::string_view>* out) {
  const size_t n = log.size();
  size_t i = 0;
  size_t token_start = 0;
  bool in_token = false;
  while (i < n) {
    const size_t dl = DelimLenAt(log, i);
    if (dl > 0) {
      if (in_token) {
        out->push_back(log.substr(token_start, i - token_start));
        in_token = false;
      }
      i += dl;
    } else {
      if (!in_token) {
        token_start = i;
        in_token = true;
      }
      ++i;
    }
  }
  if (in_token) out->push_back(log.substr(token_start));
}

std::vector<std::string_view> TokenizeDefault(std::string_view log) {
  std::vector<std::string_view> out;
  TokenizeDefaultInto(log, &out);
  return out;
}

namespace {

constexpr std::array<bool, 256> BuildWordTable() {
  std::array<bool, 256> t{};
  for (int c = '0'; c <= '9'; ++c) t[c] = true;
  for (int c = 'a'; c <= 'z'; ++c) t[c] = true;
  for (int c = 'A'; c <= 'Z'; ++c) t[c] = true;
  t[static_cast<uint8_t>('_')] = true;
  return t;
}
constexpr std::array<bool, 256> kIsWord = BuildWordTable();

// Characters that can begin a builtin variable (digits for timestamps /
// IPs / hex literals, A-Z for syslog month names, a-f for uuid/md5 hex);
// everything else makes MatchBuiltinVariable return 0 immediately.
constexpr std::array<bool, 256> BuildVarStartTable() {
  std::array<bool, 256> t{};
  for (int c = '0'; c <= '9'; ++c) t[c] = true;
  for (int c = 'A'; c <= 'Z'; ++c) t[c] = true;
  for (int c = 'a'; c <= 'f'; ++c) t[c] = true;
  return t;
}
constexpr std::array<bool, 256> kVarStart = BuildVarStartTable();

}  // namespace

// The fused replace+tokenize scan, parameterized over what consumes each
// finished token: the online matcher wants interned ids, the sharded
// ingest router wants a sequence hash. One loop, two sinks — the token
// boundaries MUST stay bit-identical between them.
template <typename Sink>
void ScanReplacedTokens(std::string_view raw, std::string* mixed_buf,
                        Sink&& sink) {
  const size_t n = raw.size();
  size_t i = 0;
  size_t tok_begin = 0;
  bool in_token = false;
  // A "mixed" token contains at least one replaced variable; its text
  // lives in *mixed_buf instead of being a pure slice of `raw`.
  bool mixed = false;
  // Builtin variables can only start where the replacer's scan would see
  // a left word boundary: at offset 0 or right after a non-word char.
  bool at_boundary = true;

  const auto finish = [&](size_t end) {
    if (!in_token) return;
    const std::string_view text =
        mixed ? std::string_view(*mixed_buf)
              : raw.substr(tok_begin, end - tok_begin);
    sink(text);
    in_token = false;
    mixed = false;
    mixed_buf->clear();
  };

  while (i < n) {
    const char c = raw[i];
    // Variable replacement runs before tokenization, so a recognized
    // variable wins over any delimiter reading of its characters.
    if (at_boundary && kVarStart[static_cast<uint8_t>(c)]) {
      const size_t len = MatchBuiltinVariable(raw, i);
      if (len > 0) {
        if (!in_token) {
          in_token = true;
          mixed = true;
        } else if (!mixed) {
          mixed = true;
          mixed_buf->assign(raw.substr(tok_begin, i - tok_begin));
        }
        mixed_buf->push_back('*');
        i += len;
        // Every builtin variable ends with a word char.
        at_boundary = false;
        continue;
      }
    }
    if (kIsWord[static_cast<uint8_t>(c)]) {
      // Word run: no delimiters and (past the first char) no variable
      // starts can occur inside it — scan it with a tight loop.
      const size_t run_begin = i;
      do {
        ++i;
      } while (i < n && kIsWord[static_cast<uint8_t>(raw[i])]);
      if (!in_token) {
        in_token = true;
        tok_begin = run_begin;
      }
      if (mixed) mixed_buf->append(raw.substr(run_begin, i - run_begin));
      at_boundary = false;
      continue;
    }
    const size_t dl = DelimLenAt(raw, i);
    if (dl > 0) {
      finish(i);
      i += dl;
    } else {
      // Non-word, non-delimiter token char ('-', '.', '*', '/', ...).
      if (!in_token) {
        in_token = true;
        tok_begin = i;
      }
      if (mixed) mixed_buf->push_back(c);
      ++i;
    }
    at_boundary = true;
  }
  finish(n);
}

void TokenizeReplacedIdsInto(std::string_view raw, const TokenTable& table,
                             std::string* mixed_buf,
                             std::vector<uint32_t>* ids) {
  ScanReplacedTokens(raw, mixed_buf, [&](std::string_view text) {
    // A lone replaced variable is the most common token shape; its id is
    // pinned to kWildcardId, no table probe needed.
    if (text.size() == 1 && text[0] == '*') {
      ids->push_back(TokenTable::kWildcardId);
    } else {
      ids->push_back(table.Lookup(text));
    }
  });
}

uint64_t HashReplacedTokens(std::string_view raw, std::string* mixed_buf) {
  // Order-sensitive fold of the per-token fast hashes. These values
  // only ever meet other HashReplacedTokens values (routing/dedup
  // keys), so the cheap combine is fine.
  uint64_t h = kTokenSeqFastSeed;
  ScanReplacedTokens(raw, mixed_buf, [&h](std::string_view text) {
    h = CombineTokenHashFast(h, text);
  });
  return h;
}

Result<RegexTokenizer> RegexTokenizer::Create(
    std::string_view delimiter_pattern) {
  auto re = Regex::Compile(delimiter_pattern);
  if (!re.ok()) return re.status();
  return RegexTokenizer(std::move(re).value());
}

std::vector<std::string_view> RegexTokenizer::Tokenize(
    std::string_view log) const {
  std::vector<std::string_view> out;
  size_t last = 0;
  for (const RegexMatch& m : regex_.FindAll(log)) {
    if (m.begin > last) out.push_back(log.substr(last, m.begin - last));
    last = m.end;
  }
  if (last < log.size()) out.push_back(log.substr(last));
  return out;
}

}  // namespace bytebrain
