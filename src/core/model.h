// The clustering-tree template model (paper §3, §4.3).
//
// Each node is one template: deeper nodes are more precise, and the
// saturation score strictly increases from parent to child. The model
// stores, per node, only the template token texts, saturation, support
// and parent/child links — no per-node token statistics — which is what
// makes text-based online matching (§4.8) storage-cheap.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/token_table.h"
#include "logstore/log_record.h"
#include "logstore/log_topic.h"
#include "util/status.h"

namespace bytebrain {

/// One node of the clustering tree.
struct TreeNode {
  TemplateId id = kInvalidTemplateId;
  TemplateId parent = kInvalidTemplateId;  // 0 for roots
  std::vector<TemplateId> children;
  double saturation = 0.0;
  /// Template tokens; kWildcard ("*") marks variable positions.
  std::vector<std::string> tokens;
  /// The same tokens interned in the owning model's TokenTable
  /// (TokenTable::kWildcardId marks variable positions). Maintained by
  /// AddNode so the matcher can be built without re-interning.
  std::vector<uint32_t> token_ids;
  /// Training logs (raw count, duplicates included) under this node.
  uint64_t support = 0;
  /// True for templates adopted online from unmatched logs (§3); they are
  /// reconsidered — and replaced — at the next training cycle.
  bool temporary = false;

  bool is_leaf() const { return children.empty(); }
};

/// Similarity between two equal-length templates in [0, 1]: exact token
/// matches count 1, wildcard-vs-token 0.5, mismatches 0. Different
/// lengths score 0. Used by model merging (§3).
double TemplateSimilarity(const std::vector<std::string>& a,
                          const std::vector<std::string>& b);

/// The trained model: a forest of clustering trees.
class TemplateModel {
 public:
  TemplateModel() : token_table_(std::make_shared<TokenTable>()) {}

  /// Adds a node; parent = 0 creates a root. Returns the new id.
  TemplateId AddNode(TemplateId parent, double saturation,
                     std::vector<std::string> tokens, uint64_t support,
                     bool temporary = false);

  /// Node lookup; nullptr if the id is unknown.
  const TreeNode* node(TemplateId id) const;

  const std::vector<TemplateId>& roots() const { return roots_; }
  size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// All nodes in id order (ids are dense, starting at 1).
  const std::vector<TreeNode>& nodes() const { return nodes_; }

  /// Query-time precision adjustment (§3 "Query"): walks from `id` toward
  /// the root and returns the COARSEST ancestor whose saturation still
  /// meets `threshold`. Falls back to `id` itself when even it is below
  /// the threshold. Fails with NotFound for unknown ids.
  Result<TemplateId> ResolveAtThreshold(TemplateId id,
                                        double threshold) const;

  /// Rendered template text ("tok1 tok2 * tok4"). Empty for unknown ids.
  std::string TemplateText(TemplateId id) const;

  /// Template text with consecutive wildcards collapsed into one (the §7
  /// query-result optimization for dynamic-length lists).
  std::string MergedWildcardText(TemplateId id) const;

  /// Deep copy with a FRESH TokenTable: every node's token_ids are
  /// re-interned into the copy's own table, so mutating the clone (e.g.
  /// a background retrain merging into it) never touches the table the
  /// live matcher is concurrently reading. This — not the implicit copy
  /// constructor, which shares the table by shared_ptr — is the snapshot
  /// primitive for async retraining: snapshot under the service's lock,
  /// train/merge into the clone off-lock, then publish the finished
  /// model atomically. A published model is treated as immutable except
  /// for AdoptTemporary/MergeFrom under the owner's exclusive lock.
  TemplateModel Clone() const;

  /// Adopts an unmatched log as a temporary root template (§3).
  TemplateId AdoptTemporary(std::vector<std::string> tokens);

  /// Drops all temporary nodes (called when a fresh training lands).
  void DropTemporaries();

  /// Merges `incoming` (a freshly trained model) into this one: nodes are
  /// matched top-down by template similarity >= `similarity_threshold`;
  /// matched nodes merge support, unmatched subtrees attach as new
  /// children/roots (§3 "The newly trained model is merged...").
  void MergeFrom(const TemplateModel& incoming, double similarity_threshold);

  /// Bulk counterpart of AdoptTemporary for the sharded ingest path:
  /// adopts the nodes of `pending` (a shard-local model of temporary
  /// roots with its OWN TokenTable) starting at 0-based node index
  /// `first`, re-interning every token into THIS model's table. Returns
  /// the new ids in pending-node order, so the caller can remap
  /// shard-local assignments to published ids. `count` bounds how many
  /// nodes are taken (SIZE_MAX = all remaining). The folded nodes'
  /// token strings are MOVED out of `pending` (adoption is on the
  /// ingest hot path; the pending copy is never rendered again — its
  /// matcher works on interned ids). No similarity matching: pendings
  /// are adopted verbatim, exactly as online adoption at first miss
  /// would have — similarity reconciliation belongs to the next
  /// training cycle (MergeFrom), not the fold.
  std::vector<TemplateId> MergeTemporariesFrom(TemplateModel* pending,
                                               size_t first,
                                               size_t count = SIZE_MAX);

  /// Serialized byte size (the "Model Size" column of Table 5).
  std::string Serialize() const;
  static Result<TemplateModel> Deserialize(std::string_view bytes);
  uint64_t ApproxBytes() const;

  /// Publishes every node's metadata into an internal topic (§3).
  void ExportTo(InternalTopic* topic) const;

  /// The interner holding every template token of this model. Shared with
  /// matchers built from the model: AdoptTemporary interns new tokens into
  /// the same table so TemplateMatcher::Insert needs no re-interning.
  /// Mutations (AddNode/AdoptTemporary/MergeFrom) must be serialized with
  /// concurrent matcher lookups by the caller.
  const std::shared_ptr<TokenTable>& token_table() const {
    return token_table_;
  }

 private:
  TreeNode* mutable_node(TemplateId id);
  TemplateId CopySubtree(const TemplateModel& src, TemplateId src_id,
                         TemplateId new_parent);

  std::vector<TreeNode> nodes_;  // nodes_[i].id == i + 1
  std::vector<TemplateId> roots_;
  std::shared_ptr<TokenTable> token_table_;
};

}  // namespace bytebrain
