// Deterministic IO fault injection for the storage layer (ISSUE 6; see
// ARCHITECTURE.md §Durability "Testing the failure paths").
//
// Two layers, matching the two places a storage failure can surface:
//
//   * FileOps / FaultInjectingFileOps — a syscall shim for write/pwrite/
//     fsync. SegmentedDiskBackend and WriteAheadLog route every data-path
//     syscall through the StorageConfig::file_ops pointer, so a test can
//     inject short writes, EIO, fsync failures, and crash points (a torn
//     final write after which EVERY op fails, simulating process death)
//     at an exact global op index — deterministically, even across the
//     WAL commit thread.
//   * FaultInjectingBackend — a StorageBackend decorator injecting
//     Status-level faults (EIO on the Nth Append/Read/Flush/Checkpoint)
//     to exercise the fail-soft error plumbing above the syscall layer.
//
// All counters are atomics: the shim is shared between request threads
// and the WAL commit thread, and the fault-injection suites run under
// TSAN.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <memory>

#include "logstore/storage_backend.h"

namespace bytebrain {

/// Syscall indirection for the storage data path. The default
/// implementation (RealFileOps()) forwards to the real syscalls; tests
/// substitute FaultInjectingFileOps via StorageConfig::file_ops. Return
/// conventions match write(2)/pwrite(2)/fsync(2).
class FileOps {
 public:
  virtual ~FileOps() = default;
  virtual ssize_t Write(int fd, const void* buf, size_t count) = 0;
  virtual ssize_t PWrite(int fd, const void* buf, size_t count,
                         uint64_t offset) = 0;
  virtual int Fsync(int fd) = 0;
};

/// The pass-through singleton (real syscalls). Never freed.
FileOps* RealFileOps();

/// When each fault fires, by 1-based GLOBAL op index (each Write/PWrite/
/// Fsync call increments one shared counter). 0 disables a trigger.
struct FaultSchedule {
  /// One-shot: the op writes only half its bytes (the caller's retry
  /// loop — or a crash — decides what happens to the rest).
  uint64_t short_write_at = 0;
  /// One-shot EIO on a Write / PWrite / Fsync op respectively (the op
  /// must be of the matching kind to fire; a mismatch is a no-op).
  uint64_t fail_write_at = 0;
  uint64_t fail_pwrite_at = 0;
  uint64_t fail_fsync_at = 0;
  /// Crash point: this op performs a TORN half write (or fails outright
  /// when it cannot tear: fsync, 1-byte writes), and every subsequent
  /// op fails with EIO — the process is "dead" to the storage layer.
  /// Reopening with clean ops models the post-crash restart.
  uint64_t crash_at_op = 0;
};

/// Injects the schedule above over the real syscalls.
class FaultInjectingFileOps : public FileOps {
 public:
  explicit FaultInjectingFileOps(FaultSchedule schedule = {})
      : schedule_(schedule) {}

  ssize_t Write(int fd, const void* buf, size_t count) override;
  ssize_t PWrite(int fd, const void* buf, size_t count,
                 uint64_t offset) override;
  int Fsync(int fd) override;

  /// Trips the crash state immediately (no op-count guessing): every
  /// subsequent op fails with EIO. For tests that crash at a known
  /// LOGICAL point rather than a syscall index.
  void CrashNow() { crashed_.store(true, std::memory_order_relaxed); }
  bool crashed() const { return crashed_.load(std::memory_order_relaxed); }
  /// Total ops seen so far — the domain for crash_at_op sweeps.
  uint64_t ops_seen() const { return ops_.load(std::memory_order_relaxed); }

 private:
  uint64_t NextOp() { return ops_.fetch_add(1, std::memory_order_relaxed) + 1; }

  const FaultSchedule schedule_;
  std::atomic<uint64_t> ops_{0};
  std::atomic<bool> crashed_{false};
};

/// Status-level faults for the backend interface, by 1-based per-method
/// call index (Append and AppendBatch share one counter; Read and Scan
/// share one). 0 disables a trigger.
struct BackendFaultSchedule {
  uint64_t fail_append_at = 0;
  uint64_t fail_read_at = 0;
  uint64_t fail_flush_at = 0;
  uint64_t fail_checkpoint_at = 0;
};

/// Decorates any StorageBackend with injected Status faults. A faulted
/// Append/AppendBatch still FORWARDS to the inner backend before
/// returning the error — the fail-soft contract (the record must land,
/// only durability is lost) means callers rely on size() advancing even
/// on error, and the decorator must not break sequence numbering. Read,
/// Scan, Flush and Checkpoint faults do not forward.
class FaultInjectingBackend : public StorageBackend {
 public:
  FaultInjectingBackend(std::unique_ptr<StorageBackend> inner,
                        BackendFaultSchedule schedule)
      : inner_(std::move(inner)), schedule_(schedule) {}

  Status Open() override { return inner_->Open(); }
  Status Append(LogRecord record) override;
  Status AppendBatch(std::vector<LogRecord> records) override;
  uint64_t size() const override { return inner_->size(); }
  uint64_t text_bytes() const override { return inner_->text_bytes(); }
  Status Read(uint64_t seq, LogRecord* out) const override;
  Status Scan(uint64_t begin, uint64_t end,
              const std::function<void(uint64_t, const LogRecord&)>& fn)
      const override;
  Status AssignTemplate(uint64_t seq, TemplateId template_id) override {
    return inner_->AssignTemplate(seq, template_id);
  }
  Status AssignTemplates(uint64_t begin_seq,
                         const std::vector<TemplateId>& ids) override {
    return inner_->AssignTemplates(begin_seq, ids);
  }
  Status TemplateCounts(
      uint64_t begin, uint64_t end,
      std::unordered_map<TemplateId, uint64_t>* counts) const override {
    return inner_->TemplateCounts(begin, end, counts);
  }
  Status ScanTemplates(
      uint64_t begin, uint64_t end, const std::unordered_set<TemplateId>& ids,
      const std::function<void(uint64_t, TemplateId)>& fn) const override {
    return inner_->ScanTemplates(begin, end, ids, fn);
  }
  Status Clear() override { return inner_->Clear(); }
  Status Flush() override;
  Status Checkpoint(std::string_view metadata) override;
  const std::string& metadata() const override { return inner_->metadata(); }
  std::shared_ptr<const SealedRecordView> SnapshotSealed() const override {
    return inner_->SnapshotSealed();
  }
  bool persistent() const override { return inner_->persistent(); }
  uint64_t sealed_segment_count() const override {
    return inner_->sealed_segment_count();
  }
  uint64_t mapped_bytes() const override { return inner_->mapped_bytes(); }
  uint64_t cache_hits() const override { return inner_->cache_hits(); }
  uint64_t cache_misses() const override { return inner_->cache_misses(); }
  uint64_t cache_evictions() const override {
    return inner_->cache_evictions();
  }
  uint64_t index_rebuilds() const override { return inner_->index_rebuilds(); }
  uint64_t scan_record_visits() const override {
    return inner_->scan_record_visits();
  }
  Status WaitDurable() override { return inner_->WaitDurable(); }
  uint64_t wal_bytes() const override { return inner_->wal_bytes(); }
  uint64_t wal_group_commits() const override {
    return inner_->wal_group_commits();
  }
  uint64_t wal_fsyncs() const override { return inner_->wal_fsyncs(); }
  uint64_t wal_replayed_records() const override {
    return inner_->wal_replayed_records();
  }

 private:
  std::unique_ptr<StorageBackend> inner_;
  const BackendFaultSchedule schedule_;
  mutable std::atomic<uint64_t> append_calls_{0};
  mutable std::atomic<uint64_t> read_calls_{0};
  mutable std::atomic<uint64_t> flush_calls_{0};
  mutable std::atomic<uint64_t> checkpoint_calls_{0};
};

}  // namespace bytebrain
