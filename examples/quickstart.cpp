// Quickstart: train a ByteBrainParser on a handful of logs, match new
// arrivals, and adjust template precision at query time.
//
//   ./examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "core/parser.h"

using bytebrain::ByteBrainOptions;
using bytebrain::ByteBrainParser;
using bytebrain::TemplateId;

int main() {
  // The paper's Fig. 1 workload: wake-lock acquire/release lines.
  std::vector<std::string> training_logs = {
      "release:lock=2337, flg=0x0, tag=\"View Lock\", name=systemui, ws=null",
      "release:lock=187, flg=0x0, tag=\"*launch*\", name=android, ws=WS{10113}",
      "release:lock=62, flg=0x0, tag=\"WindowManager\", name=android, ws=WS{1013}",
      "acquire:lock=23, flg=0x1, tag=\"View Lock\", name=systemui, ws=null",
      "acquire:lock=1661, flg=0x1, tag=\"RILJ_ACK_WL\", name=phone, ws=null",
      "acquire:lock=95, flg=0x1, tag=\"View Lock\", name=systemui, ws=null",
      "release:lock=11, flg=0x0, tag=\"View Lock\", name=systemui, ws=null",
      "acquire:lock=404, flg=0x1, tag=\"*job*\", name=android, ws=WS{2001}",
  };

  ByteBrainParser parser((ByteBrainOptions()));
  bytebrain::Status status = parser.Train(training_logs);
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("Trained a model with %zu templates.\n\n", parser.model().size());

  // Match a new log online.
  const std::string arriving =
      "release:lock=777, flg=0x0, tag=\"View Lock\", name=systemui, ws=null";
  const TemplateId leaf = parser.Match(arriving);
  std::printf("New log : %s\n", arriving.c_str());
  std::printf("Template: %s\n\n", parser.TemplateText(leaf).c_str());

  // Query-time precision adjustment: the same log, coarser to finer.
  std::printf("Precision slider (saturation threshold -> template):\n");
  for (double threshold : {0.05, 0.5, 0.9, 1.0}) {
    auto resolved = parser.ResolveAtThreshold(leaf, threshold);
    if (!resolved.ok()) continue;
    std::printf("  %.2f -> %s\n", threshold,
                parser.TemplateText(resolved.value()).c_str());
  }
  return 0;
}
