// Uniform interface over all log parsers (ByteBrain + every baseline).
//
// Parse() consumes a whole batch and returns one group id per log; the
// throughput metric (paper §5.1.3) divides the batch size by the combined
// training + matching wall time, so each implementation performs its full
// pipeline inside Parse().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace bytebrain {

class LogParserInterface {
 public:
  virtual ~LogParserInterface() = default;

  /// Display name, e.g. "Drain" or "ByteBrain Sequential".
  virtual std::string name() const = 0;

  /// Parses the batch; returns one group id per input log. Ids are
  /// arbitrary but consistent within the call (same id <=> same group).
  virtual std::vector<uint64_t> Parse(const std::vector<std::string>& logs) = 0;
};

using ParserFactory = std::function<std::unique_ptr<LogParserInterface>()>;

}  // namespace bytebrain
