// 64-bit token hashing (paper §4.1.4).
//
// Tokens are encoded as 64-bit integers with a deterministic hash so the
// same function serves offline clustering and online matching without a
// stored token->id dictionary. The collision probability follows the
// birthday bound in the paper's Eq. 1 (~2.7e-6 for 10M distinct tokens).
#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace bytebrain {

/// Finalizer from splitmix64; full-avalanche 64-bit mixer.
constexpr uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// FNV-1a over the bytes, then avalanche-mixed. Deterministic across runs
/// and processes (no per-process seed), as required for offline/online
/// consistency.
constexpr uint64_t HashToken(std::string_view token) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : token) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return Mix64(h);
}

/// Combines two hashes (order-sensitive), boost::hash_combine style.
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return Mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Hash of a full token sequence; used as the deduplication key.
template <typename It>
uint64_t HashTokenSequence(It begin, It end) {
  uint64_t h = 0x2545f4914f6cdd1dULL;
  for (It it = begin; it != end; ++it) {
    h = HashCombine(h, *it);
  }
  return h;
}

/// Fast 64-bit hash over bytes: 8-byte chunks, one multiply+rotate per
/// chunk, avalanche finalizer. Several times faster than HashToken's
/// byte-at-a-time FNV on typical tokens; use it where the value never
/// has to agree with HashToken (e.g. the sharded ingest router's
/// content keys, which only ever meet other HashBytesFast values).
/// Deterministic across runs and processes, like everything here.
/// Seed and per-token step of the fast token-sequence fold, shared by
/// the fused scan (core/tokenizer.cc: HashReplacedTokens) and the
/// two-pass tenant-rule path (service ingest router) so the two stay
/// bit-identical by construction.
inline constexpr uint64_t kTokenSeqFastSeed = 0x2545f4914f6cdd1dULL;
inline uint64_t CombineTokenHashFast(uint64_t h, std::string_view token);

inline uint64_t HashBytesFast(std::string_view bytes) {
  uint64_t h = 0x9e3779b97f4a7c15ULL ^ bytes.size();
  size_t i = 0;
  for (; i + 8 <= bytes.size(); i += 8) {
    uint64_t chunk;
    std::memcpy(&chunk, bytes.data() + i, 8);
    h = (h ^ chunk) * 0x100000001b3ULL;
    h = (h << 29) | (h >> 35);
  }
  uint64_t tail = 0;
  for (size_t shift = 0; i < bytes.size(); ++i, shift += 8) {
    tail |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[i])) << shift;
  }
  h = (h ^ tail) * 0x100000001b3ULL;
  return Mix64(h);
}

inline uint64_t CombineTokenHashFast(uint64_t h, std::string_view token) {
  return (h ^ HashBytesFast(token)) * 0x100000001b3ULL;
}

/// Per-record frame checksum for the segmented on-disk topic format
/// (logstore/disk_backend.cc). Covers the timestamp and the text — the
/// length is bound through HashBytesFast's size-seeded state — but NOT
/// the template id, which retraining rewrites in place after the frame
/// is on disk. Deterministic across runs, like everything here.
inline uint64_t RecordChecksum(uint64_t timestamp_us, std::string_view text) {
  return HashCombine(Mix64(timestamp_us), HashBytesFast(text));
}

/// Seed for the fold of a segment's frame checksums (the per-segment
/// checksum stored in the manifest): fold = HashCombine(fold, frame_crc)
/// over frames in order, starting here.
inline constexpr uint64_t kSegmentChecksumSeed = 0x53454743'4b53554dULL;

}  // namespace bytebrain
