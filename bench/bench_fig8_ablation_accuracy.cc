// Fig. 8: accuracy ablations — naive match, w/o variable-in-saturation,
// w/o position importance, w/o confidence factor, random centroid
// selection — on LogHub and (scaled) LogHub-2.0.
#include <functional>

#include "bench/bench_common.h"

using namespace bytebrain;

namespace {

struct Variant {
  const char* name;
  std::function<ByteBrainAdapterConfig()> make;
};

std::vector<Variant> Variants() {
  return {
      {"ByteBrain", [] { return ByteBrainDefaultConfig(); }},
      {"w/ naive match",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.naive_match = true;
         return c;
       }},
      {"w/o variable in saturation",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.saturation.use_variable_term = false;
         return c;
       }},
      {"w/o position importance",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.use_position_importance = false;
         return c;
       }},
      {"w/o confidence factor",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.saturation.use_confidence_factor = false;
         return c;
       }},
      {"random centroid selection",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.kmeanspp_seeding = false;
         return c;
       }},
  };
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 8 — accuracy ablation", "paper Fig. 8");

  TablePrinter table(
      {"Variant", "LogHub avg GA", "LogHub-2.0 avg GA"}, {30, 16, 18});
  table.PrintHeader();

  for (const Variant& variant : Variants()) {
    double loghub_sum = 0.0;
    int loghub_n = 0;
    for (const DatasetSpec& spec : AllDatasetSpecs()) {
      DatasetGenerator generator(spec);
      Dataset ds = generator.GenerateLogHub();
      ByteBrainAdapter adapter(variant.make());
      loghub_sum += RunOn(&adapter, ds).grouping_accuracy;
      ++loghub_n;
    }
    double lh2_sum = 0.0;
    int lh2_n = 0;
    for (const DatasetSpec& spec : LogHub2Specs()) {
      Dataset ds = ScaledLogHub2(spec);
      ByteBrainAdapter adapter(variant.make());
      lh2_sum += RunOn(&adapter, ds).grouping_accuracy;
      ++lh2_n;
    }
    table.PrintRow({variant.name, TablePrinter::Fmt(loghub_sum / loghub_n),
                    TablePrinter::Fmt(lh2_sum / lh2_n)});
  }
  std::printf(
      "\nShape check (paper Fig. 8): 'w/ naive match' ~= ByteBrain (text\n"
      "matching does not compromise accuracy); removing variable\n"
      "saturation / position importance lowers accuracy; random centroid\n"
      "selection hurts the most; confidence factor matters least.\n");
  return 0;
}
