// Fig. 10: the token->id dictionary an ordinal encoder would have to
// persist, per dataset, as a function of log volume — the storage that
// hash encoding eliminates entirely.
#include "bench/bench_common.h"
#include "core/preprocess.h"
#include "util/string_util.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Fig. 10 — ordinal-encoding dictionary size vs log size",
                   "paper Fig. 10");

  TablePrinter table({"Dataset", "LogBytes", "DictBytes(ordinal)",
                      "DictBytes(hash)", "Dict/Log ratio"},
                     {13, 14, 20, 17, 15});
  table.PrintHeader();

  for (const DatasetSpec& spec : LogHub2Specs()) {
    Dataset ds = ScaledLogHub2(spec);
    std::vector<std::string> logs;
    logs.reserve(ds.logs.size());
    for (auto& l : ds.logs) logs.push_back(l.text);

    PreprocessOptions opts;
    opts.encoder = EncoderKind::kOrdinal;
    opts.num_threads = 2;
    auto replacer = VariableReplacer::Default();
    auto result = Preprocess(logs, replacer, opts);

    const uint64_t log_bytes = ds.TextBytes();
    table.PrintRow({spec.name, FormatBytes(log_bytes),
                    FormatBytes(result.dictionary_bytes), "0 B",
                    TablePrinter::Fmt(static_cast<double>(result.dictionary_bytes) /
                                          static_cast<double>(log_bytes),
                                      4)});
  }
  std::printf(
      "\nShape check (paper Fig. 10): dictionary size grows with log\n"
      "volume into the 10^5-10^8 byte range at full scale; hash encoding\n"
      "stores nothing. (At the bench's reduced scale the ratio column is\n"
      "the scale-free signal.)\n");
  return 0;
}
