// Service-API battery: wire round-trips for every message, decode
// robustness under truncation and seeded corruption (a decode NEVER
// crashes), forward-compatible unknown-field skipping, and the
// ServiceFrontend contract — lifecycle end-to-end, tenant isolation,
// admission control (topic quota, token buckets with a fake clock,
// in-flight batch cap), cursor pagination equivalence, live config
// updates, and TSAN-clean concurrent use.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "util/serde.h"
#include "service/log_service.h"

namespace bytebrain {
namespace api {
namespace {

class TempDir {
 public:
  TempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("bb_api_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string SshLog(int i) {
  return "Accepted password for user" + std::to_string(i % 5) +
         " from 10.0.0." + std::to_string(i % 9 + 1) + " port " +
         std::to_string(40000 + i) + " ssh2";
}

std::string DiskLog(int i) {
  return "Disk quota exceeded for volume vol" + std::to_string(i % 3);
}

TopicConfig SmallConfig() {
  TopicConfig config;
  config.initial_train_records = 50;
  config.train_interval_records = 1u << 30;
  config.train_volume_bytes = 1ull << 40;
  config.num_threads = 2;
  config.async_training = false;
  return config;
}

template <typename Msg>
std::string Encode(const Msg& msg) {
  std::string bytes;
  msg.EncodeTo(&bytes);
  return bytes;
}

// ---------------------------------------------------------------------
// Wire round-trips
// ---------------------------------------------------------------------

TEST(ApiMessagesTest, EnvelopeRoundTrip) {
  RequestEnvelope req;
  req.method = ApiMethod::kIngestBatch;
  req.tenant = "acme";
  req.payload = "opaque-bytes\0with-nul";
  RequestEnvelope req2;
  ASSERT_TRUE(req2.DecodeFrom(Encode(req)).ok());
  EXPECT_EQ(req2.api_version, kApiVersion);
  EXPECT_EQ(req2.method, ApiMethod::kIngestBatch);
  EXPECT_EQ(req2.tenant, "acme");
  EXPECT_EQ(req2.payload, req.payload);

  ResponseEnvelope resp;
  resp.status = Status::ResourceExhausted("slow down");
  resp.retry_after_us = 12345;
  resp.payload = "partial";
  ResponseEnvelope resp2;
  ASSERT_TRUE(resp2.DecodeFrom(Encode(resp)).ok());
  EXPECT_TRUE(resp2.status.IsResourceExhausted());
  EXPECT_EQ(resp2.status.message(), "slow down");
  EXPECT_EQ(resp2.retry_after_us, 12345u);
  EXPECT_EQ(resp2.payload, "partial");
}

TEST(ApiMessagesTest, AllStatusCodesCrossTheWire) {
  const Status statuses[] = {
      Status::OK(),
      Status::InvalidArgument("a"),
      Status::NotFound("b"),
      Status::Corruption("c"),
      Status::IOError("d"),
      Status::NotSupported("e"),
      Status::Aborted("f"),
      Status::AlreadyExists("g"),
      Status::ResourceExhausted("h"),
      Status::PermissionDenied("i"),
  };
  for (const Status& s : statuses) {
    ResponseEnvelope env;
    env.status = s;
    ResponseEnvelope decoded;
    ASSERT_TRUE(decoded.DecodeFrom(Encode(env)).ok());
    EXPECT_EQ(decoded.status.code(), s.code());
    EXPECT_EQ(decoded.status.message(), s.message());
  }
  // An unknown code is framing corruption, not a guess.
  EXPECT_TRUE(StatusFromWire(250, "x").IsCorruption());
}

TEST(ApiMessagesTest, CreateTopicRoundTripCarriesConfig) {
  CreateTopicRequest req;
  req.name = "events";
  req.config.train_volume_bytes = 111;
  req.config.train_interval_records = 222;
  req.config.initial_train_records = 333;
  req.config.max_train_records = 444;
  req.config.num_threads = 5;
  req.config.num_ingest_shards = 6;
  req.config.async_training = false;
  req.config.sync_initial_training = false;
  req.config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
  req.config.storage.directory = "/tmp/x";
  req.config.storage.segment_data_bytes = 777;
  req.config.storage.memory_segment_capacity = 888;
  req.config.durability = DurabilityMode::kWalGroupCommit;
  req.config.variable_rules = {{"hex", "0x[0-9a-f]+"}, {"num", "[0-9]+"}};

  CreateTopicRequest got;
  ASSERT_TRUE(got.DecodeFrom(Encode(req)).ok());
  EXPECT_EQ(got.name, "events");
  EXPECT_EQ(got.config.train_volume_bytes, 111u);
  EXPECT_EQ(got.config.train_interval_records, 222u);
  EXPECT_EQ(got.config.initial_train_records, 333u);
  EXPECT_EQ(got.config.max_train_records, 444u);
  EXPECT_EQ(got.config.num_threads, 5);
  EXPECT_EQ(got.config.num_ingest_shards, 6);
  EXPECT_FALSE(got.config.async_training);
  EXPECT_FALSE(got.config.sync_initial_training);
  EXPECT_EQ(got.config.storage.kind, StorageConfig::Kind::kSegmentedDisk);
  EXPECT_EQ(got.config.storage.directory, "/tmp/x");
  EXPECT_EQ(got.config.storage.segment_data_bytes, 777u);
  EXPECT_EQ(got.config.storage.memory_segment_capacity, 888u);
  EXPECT_EQ(got.config.durability, DurabilityMode::kWalGroupCommit);
  EXPECT_EQ(got.config.variable_rules, req.config.variable_rules);
}

TEST(ApiMessagesTest, UnknownDurabilityModeIsRejected) {
  TopicConfig config;
  config.durability = static_cast<DurabilityMode>(9);
  std::string bytes;
  EncodeTopicConfig(config, &bytes);
  TopicConfig got;
  const Status decoded = DecodeTopicConfig(bytes, &got);
  EXPECT_FALSE(decoded.ok());
  EXPECT_TRUE(decoded.IsInvalidArgument());
}

TEST(ApiMessagesTest, PatchRoundTripPreservesAbsence) {
  UpdateTopicConfigRequest req;
  req.name = "t";
  req.patch.train_interval_records = 1000;
  req.patch.num_ingest_shards = 4;
  UpdateTopicConfigRequest got;
  ASSERT_TRUE(got.DecodeFrom(Encode(req)).ok());
  EXPECT_EQ(got.name, "t");
  ASSERT_TRUE(got.patch.train_interval_records.has_value());
  EXPECT_EQ(*got.patch.train_interval_records, 1000u);
  ASSERT_TRUE(got.patch.num_ingest_shards.has_value());
  EXPECT_EQ(*got.patch.num_ingest_shards, 4);
  EXPECT_FALSE(got.patch.train_volume_bytes.has_value());
  EXPECT_FALSE(got.patch.num_threads.has_value());
  EXPECT_FALSE(got.patch.async_training.has_value());
}

TEST(ApiMessagesTest, IngestAndBatchRoundTrip) {
  IngestRequest one;
  one.topic = "t";
  one.text = "hello world 42";
  one.timestamp_us = 99;
  IngestRequest one2;
  ASSERT_TRUE(one2.DecodeFrom(Encode(one)).ok());
  EXPECT_EQ(one2.topic, "t");
  EXPECT_EQ(one2.text, one.text);
  EXPECT_EQ(one2.timestamp_us, 99u);

  IngestBatchRequest batch;
  batch.topic = "t";
  batch.texts = {"a", "", "long line with spaces", std::string(3000, 'x')};
  batch.timestamps_us = {1, 2, 3, 4};
  IngestBatchRequest batch2;
  ASSERT_TRUE(batch2.DecodeFrom(Encode(batch)).ok());
  EXPECT_EQ(batch2.topic, "t");
  EXPECT_EQ(batch2.texts, batch.texts);
  EXPECT_EQ(batch2.timestamps_us, batch.timestamps_us);

  IngestResponse r1;
  r1.seq = 7;
  IngestResponse r2;
  ASSERT_TRUE(r2.DecodeFrom(Encode(r1)).ok());
  EXPECT_EQ(r2.seq, 7u);

  IngestBatchResponse b1;
  b1.seqs = {5, 6, 7, 8};
  IngestBatchResponse b2;
  ASSERT_TRUE(b2.DecodeFrom(Encode(b1)).ok());
  EXPECT_EQ(b2.seqs, b1.seqs);
}

TEST(ApiMessagesTest, QueryAndStatsAndAnomalyRoundTrip) {
  QueryRequest q;
  q.topic = "t";
  q.saturation_threshold = 0.75;
  q.begin_seq = 10;
  q.end_seq = 90;
  q.max_groups = 3;
  q.cursor = "cursor-bytes";
  q.include_sequence_numbers = false;
  QueryRequest q2;
  ASSERT_TRUE(q2.DecodeFrom(Encode(q)).ok());
  EXPECT_EQ(q2.topic, "t");
  EXPECT_DOUBLE_EQ(q2.saturation_threshold, 0.75);
  EXPECT_EQ(q2.begin_seq, 10u);
  EXPECT_EQ(q2.end_seq, 90u);
  EXPECT_EQ(q2.max_groups, 3u);
  EXPECT_EQ(q2.cursor, "cursor-bytes");
  EXPECT_FALSE(q2.include_sequence_numbers);

  QueryResponse qr;
  TemplateGroup g;
  g.template_id = 12;
  g.template_text = "Accepted password for * from *";
  g.saturation = 0.9;
  g.count = 3;
  g.sequence_numbers = {1, 4, 9};
  qr.groups.push_back(g);
  g.template_id = 13;
  g.sequence_numbers.clear();
  qr.groups.push_back(g);
  qr.next_cursor = "more";
  QueryResponse qr2;
  ASSERT_TRUE(qr2.DecodeFrom(Encode(qr)).ok());
  ASSERT_EQ(qr2.groups.size(), 2u);
  EXPECT_EQ(qr2.groups[0].template_id, 12u);
  EXPECT_EQ(qr2.groups[0].template_text, g.template_text);
  EXPECT_DOUBLE_EQ(qr2.groups[0].saturation, 0.9);
  EXPECT_EQ(qr2.groups[0].count, 3u);
  EXPECT_EQ(qr2.groups[0].sequence_numbers, (std::vector<uint64_t>{1, 4, 9}));
  EXPECT_TRUE(qr2.groups[1].sequence_numbers.empty());
  EXPECT_EQ(qr2.next_cursor, "more");

  GetStatsResponse s;
  s.stats.ingested_records = 1;
  s.stats.ingested_bytes = 2;
  s.stats.trainings = 3;
  s.stats.num_templates = 4;
  s.stats.last_training_seconds = 0.5;
  s.stats.storage_persistent = true;
  s.stats.storage_ok = false;
  s.stats.shards.resize(2);
  s.stats.shards[1].records = 42;
  s.stats.shards[1].memo_hits = 7;
  s.stats.wal_bytes = 4096;
  s.stats.wal_group_commits = 10;
  s.stats.wal_fsyncs = 3;
  s.stats.wal_replayed_records = 5;
  s.tenant.admitted_requests = 100;
  s.tenant.denied_requests = 4;
  s.tenant.admitted_bytes = 5000;
  s.tenant.denied_bytes = 200;
  s.tenant.admitted_records = 120;
  s.tenant.denied_records = 6;
  s.stats.storage_cache_hits = 31;
  s.stats.storage_cache_misses = 32;
  s.stats.storage_cache_evictions = 33;
  s.stats.storage_index_rebuilds = 34;
  s.stats.storage_scan_record_visits = 35;
  GetStatsResponse s2;
  ASSERT_TRUE(s2.DecodeFrom(Encode(s)).ok());
  EXPECT_EQ(s2.stats.ingested_records, 1u);
  EXPECT_EQ(s2.stats.num_templates, 4u);
  EXPECT_DOUBLE_EQ(s2.stats.last_training_seconds, 0.5);
  EXPECT_TRUE(s2.stats.storage_persistent);
  EXPECT_FALSE(s2.stats.storage_ok);
  ASSERT_EQ(s2.stats.shards.size(), 2u);
  EXPECT_EQ(s2.stats.shards[1].records, 42u);
  EXPECT_EQ(s2.stats.shards[1].memo_hits, 7u);
  EXPECT_EQ(s2.stats.wal_bytes, 4096u);
  EXPECT_EQ(s2.stats.wal_group_commits, 10u);
  EXPECT_EQ(s2.stats.wal_fsyncs, 3u);
  EXPECT_EQ(s2.stats.wal_replayed_records, 5u);
  EXPECT_EQ(s2.tenant.admitted_requests, 100u);
  EXPECT_EQ(s2.tenant.denied_requests, 4u);
  EXPECT_EQ(s2.tenant.admitted_bytes, 5000u);
  EXPECT_EQ(s2.tenant.denied_bytes, 200u);
  EXPECT_EQ(s2.tenant.admitted_records, 120u);
  EXPECT_EQ(s2.tenant.denied_records, 6u);
  EXPECT_EQ(s2.stats.storage_cache_hits, 31u);
  EXPECT_EQ(s2.stats.storage_cache_misses, 32u);
  EXPECT_EQ(s2.stats.storage_cache_evictions, 33u);
  EXPECT_EQ(s2.stats.storage_index_rebuilds, 34u);
  EXPECT_EQ(s2.stats.storage_scan_record_visits, 35u);

  DetectAnomaliesRequest ar;
  ar.topic = "t";
  ar.window1_begin = 1;
  ar.window1_end = 2;
  ar.window2_begin = 3;
  ar.window2_end = 4;
  ar.min_change_ratio = 2.5;
  DetectAnomaliesRequest ar2;
  ASSERT_TRUE(ar2.DecodeFrom(Encode(ar)).ok());
  EXPECT_EQ(ar2.window2_end, 4u);
  EXPECT_DOUBLE_EQ(ar2.min_change_ratio, 2.5);

  DetectAnomaliesResponse an;
  TemplateAnomaly a;
  a.template_id = 9;
  a.template_text = "FATAL *";
  a.count_before = 0;
  a.count_after = 60;
  a.is_new = true;
  a.change_ratio = 60.0;
  an.anomalies.push_back(a);
  DetectAnomaliesResponse an2;
  ASSERT_TRUE(an2.DecodeFrom(Encode(an)).ok());
  ASSERT_EQ(an2.anomalies.size(), 1u);
  EXPECT_EQ(an2.anomalies[0].template_id, 9u);
  EXPECT_TRUE(an2.anomalies[0].is_new);
  EXPECT_DOUBLE_EQ(an2.anomalies[0].change_ratio, 60.0);
}

TEST(ApiMessagesTest, ListAndSimpleMessagesRoundTrip) {
  ListTopicsResponse l;
  l.names = {"a", "b", "c"};
  ListTopicsResponse l2;
  ASSERT_TRUE(l2.DecodeFrom(Encode(l)).ok());
  EXPECT_EQ(l2.names, l.names);

  DeleteTopicRequest d;
  d.name = "t";
  d.purge_storage = false;
  DeleteTopicRequest d2;
  ASSERT_TRUE(d2.DecodeFrom(Encode(d)).ok());
  EXPECT_EQ(d2.name, "t");
  EXPECT_FALSE(d2.purge_storage);

  GetStatsRequest g;
  g.topic = "t";
  GetStatsRequest g2;
  ASSERT_TRUE(g2.DecodeFrom(Encode(g)).ok());
  EXPECT_EQ(g2.topic, "t");

  TrainNowRequest t;
  t.topic = "t";
  TrainNowRequest t2;
  ASSERT_TRUE(t2.DecodeFrom(Encode(t)).ok());
  EXPECT_EQ(t2.topic, "t");

  // Empty messages decode from empty payloads.
  CreateTopicResponse cr;
  EXPECT_TRUE(cr.DecodeFrom("").ok());
  ListTopicsRequest lr;
  EXPECT_TRUE(lr.DecodeFrom("").ok());
  TrainNowResponse tr;
  EXPECT_TRUE(tr.DecodeFrom("").ok());
}

// ---------------------------------------------------------------------
// Versioning + decode robustness
// ---------------------------------------------------------------------

TEST(ApiMessagesTest, UnknownFieldsAreSkipped) {
  IngestRequest req;
  req.topic = "t";
  req.text = "body";
  std::string bytes = Encode(req);
  // A future encoder appends a field this decoder has never heard of.
  FieldWriter w(&bytes);
  w.PutBytes(999, "from-the-future");
  w.PutU64(1000, 42);
  IngestRequest got;
  ASSERT_TRUE(got.DecodeFrom(bytes).ok());
  EXPECT_EQ(got.topic, "t");
  EXPECT_EQ(got.text, "body");
}

TEST(ApiMessagesTest, HigherVersionEnvelopeStillDecodes) {
  RequestEnvelope req;
  req.api_version = kApiVersion + 5;
  req.method = ApiMethod::kListTopics;
  req.tenant = "acme";
  RequestEnvelope got;
  ASSERT_TRUE(got.DecodeFrom(Encode(req)).ok());
  EXPECT_EQ(got.api_version, kApiVersion + 5);
  EXPECT_EQ(got.method, ApiMethod::kListTopics);
}

TEST(ApiMessagesTest, VersionZeroIsRejected) {
  RequestEnvelope req;
  req.api_version = 0;
  RequestEnvelope got;
  EXPECT_TRUE(got.DecodeFrom(Encode(req)).IsInvalidArgument());
  ResponseEnvelope resp;
  resp.api_version = 0;
  ResponseEnvelope got2;
  EXPECT_TRUE(got2.DecodeFrom(Encode(resp)).IsInvalidArgument());
}

// Property-style robustness: every prefix truncation and a seeded fuzz
// of byte flips must return a Status — never crash, never read out of
// bounds. Success is allowed (some mutations are benign); the property
// is "decoding terminates with a verdict".
template <typename Msg>
void ExpectRobustDecoding(const std::string& bytes) {
  for (size_t len = 0; len < bytes.size(); ++len) {
    Msg victim;
    (void)victim.DecodeFrom(std::string_view(bytes.data(), len));
  }
  std::mt19937_64 rng(0xB0B5EED);
  for (int trial = 0; trial < 200; ++trial) {
    std::string mutated = bytes;
    const size_t pos = rng() % mutated.size();
    mutated[pos] = static_cast<char>(rng() & 0xFF);
    Msg victim;
    (void)victim.DecodeFrom(mutated);
  }
}

TEST(ApiMessagesTest, TruncatedAndCorruptedBytesNeverCrash) {
  CreateTopicRequest create;
  create.name = "events";
  create.config.variable_rules = {{"hex", "0x[0-9a-f]+"}};
  ExpectRobustDecoding<CreateTopicRequest>(Encode(create));

  IngestBatchRequest batch;
  batch.topic = "t";
  batch.texts = {"alpha", "beta", "gamma"};
  batch.timestamps_us = {1, 2, 3};
  ExpectRobustDecoding<IngestBatchRequest>(Encode(batch));

  QueryResponse qr;
  TemplateGroup g;
  g.template_id = 1;
  g.template_text = "tpl";
  g.count = 2;
  g.sequence_numbers = {0, 1};
  qr.groups.push_back(g);
  qr.next_cursor = "c";
  ExpectRobustDecoding<QueryResponse>(Encode(qr));

  GetStatsResponse stats;
  stats.stats.shards.resize(3);
  ExpectRobustDecoding<GetStatsResponse>(Encode(stats));

  RequestEnvelope env;
  env.method = ApiMethod::kQuery;
  env.tenant = "acme";
  env.payload = Encode(qr);
  ExpectRobustDecoding<RequestEnvelope>(Encode(env));

  ResponseEnvelope resp;
  resp.status = Status::NotFound("x");
  resp.payload = Encode(qr);
  ExpectRobustDecoding<ResponseEnvelope>(Encode(resp));

  // A truncation that cuts a field is an ERROR, not a silent success:
  // check one representative (the full-message cases above only assert
  // no-crash).
  const std::string bytes = Encode(batch);
  IngestBatchRequest got;
  EXPECT_FALSE(got.DecodeFrom(bytes.substr(0, bytes.size() - 1)).ok());
}

TEST(ApiFrontendTest, DispatchOnGarbageNeverCrashes) {
  ServiceFrontend frontend;
  std::mt19937_64 rng(0xFADEFEED);
  for (int trial = 0; trial < 300; ++trial) {
    std::string garbage(rng() % 64, '\0');
    for (char& c : garbage) c = static_cast<char>(rng() & 0xFF);
    const std::string response = frontend.Dispatch(garbage);
    // Whatever came in, a well-formed envelope goes out.
    ResponseEnvelope env;
    ASSERT_TRUE(env.DecodeFrom(response).ok()) << "trial " << trial;
  }
}

// ---------------------------------------------------------------------
// Frontend: lifecycle, isolation, pagination
// ---------------------------------------------------------------------

Status CreateSmallTopic(ServiceFrontend& frontend, const std::string& tenant,
                        const std::string& name) {
  CreateTopicRequest req;
  req.name = name;
  req.config = SmallConfig();
  CreateTopicResponse resp;
  return frontend.CreateTopic(tenant, req, &resp);
}

Status IngestTexts(ServiceFrontend& frontend, const std::string& tenant,
                   const std::string& topic, std::vector<std::string> texts,
                   uint64_t* retry_after_us = nullptr) {
  IngestBatchRequest req;
  req.topic = topic;
  req.texts = std::move(texts);
  IngestBatchResponse resp;
  return frontend.IngestBatch(tenant, std::move(req), &resp, retry_after_us);
}

TEST(ApiFrontendTest, EndToEndLifecycle) {
  ServiceFrontend frontend;
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "events").ok());
  EXPECT_TRUE(CreateSmallTopic(frontend, "acme", "events")
                  .IsAlreadyExists());

  std::vector<std::string> texts;
  for (int i = 0; i < 120; ++i) texts.push_back(SshLog(i));
  for (int i = 0; i < 40; ++i) texts.push_back(DiskLog(i));
  ASSERT_TRUE(IngestTexts(frontend, "acme", "events", texts).ok());

  TrainNowRequest train;
  train.topic = "events";
  TrainNowResponse trained;
  ASSERT_TRUE(frontend.TrainNow("acme", train, &trained).ok());

  GetStatsRequest stats_req;
  stats_req.topic = "events";
  GetStatsResponse stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.stats.ingested_records, 160u);
  EXPECT_GT(stats.stats.num_templates, 0u);

  QueryRequest query;
  query.topic = "events";
  query.saturation_threshold = 0.5;
  QueryResponse result;
  ASSERT_TRUE(frontend.Query("acme", query, &result).ok());
  ASSERT_GE(result.groups.size(), 2u);
  uint64_t total = 0;
  for (const TemplateGroup& g : result.groups) total += g.count;
  EXPECT_EQ(total, 160u);
  EXPECT_TRUE(result.next_cursor.empty());

  ListTopicsResponse listing;
  ASSERT_TRUE(frontend.ListTopics("acme", {}, &listing).ok());
  EXPECT_EQ(listing.names, (std::vector<std::string>{"events"}));

  DeleteTopicRequest drop;
  drop.name = "events";
  DeleteTopicResponse dropped;
  ASSERT_TRUE(frontend.DeleteTopic("acme", drop, &dropped).ok());
  EXPECT_TRUE(frontend.Query("acme", query, &result).IsNotFound());
  ASSERT_TRUE(frontend.ListTopics("acme", {}, &listing).ok());
  EXPECT_TRUE(listing.names.empty());
  EXPECT_TRUE(frontend.DeleteTopic("acme", drop, &dropped).IsNotFound());
}

TEST(ApiFrontendTest, WireLevelDispatchEndToEnd) {
  ServiceFrontend frontend;

  CreateTopicRequest create;
  create.name = "wire";
  create.config = SmallConfig();
  ResponseEnvelope env;
  CreateTopicResponse created;
  ASSERT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kCreateTopic, "acme", create)),
                             &created)
                  .ok());

  IngestBatchRequest batch;
  batch.topic = "wire";
  for (int i = 0; i < 80; ++i) batch.texts.push_back(SshLog(i));
  IngestBatchResponse seqs;
  ASSERT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kIngestBatch, "acme", batch)),
                             &seqs)
                  .ok());
  ASSERT_EQ(seqs.seqs.size(), 80u);
  EXPECT_EQ(seqs.seqs.front(), 0u);
  EXPECT_EQ(seqs.seqs.back(), 79u);

  QueryRequest query;
  query.topic = "wire";
  query.saturation_threshold = 0.5;
  QueryResponse result;
  ASSERT_TRUE(
      DecodeResponse(
          frontend.Dispatch(EncodeRequest(ApiMethod::kQuery, "acme", query)),
          &result)
          .ok());
  uint64_t total = 0;
  for (const TemplateGroup& g : result.groups) total += g.count;
  EXPECT_EQ(total, 80u);

  // Unknown method → NotSupported envelope, not a crash.
  RequestEnvelope unknown;
  unknown.method = static_cast<ApiMethod>(77);
  unknown.tenant = "acme";
  std::string unknown_bytes;
  unknown.EncodeTo(&unknown_bytes);
  ResponseEnvelope unknown_resp;
  ASSERT_TRUE(unknown_resp.DecodeFrom(frontend.Dispatch(unknown_bytes)).ok());
  EXPECT_TRUE(unknown_resp.status.IsNotSupported());

  // Missing tenant → InvalidArgument through the wire.
  DeleteTopicRequest drop;
  drop.name = "wire";
  DeleteTopicResponse dropped;
  uint64_t retry = 0;
  EXPECT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kDeleteTopic, "", drop)),
                             &dropped, &retry)
                  .IsInvalidArgument());
}

TEST(ApiFrontendTest, TenantIsolation) {
  ServiceFrontend frontend;
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "shared-name").ok());
  std::vector<std::string> texts;
  for (int i = 0; i < 60; ++i) texts.push_back(SshLog(i));
  ASSERT_TRUE(IngestTexts(frontend, "acme", "shared-name", texts).ok());

  // Tenant B sees nothing of A's topic: not in listings, not readable,
  // not deletable — and can claim the same visible name.
  ListTopicsResponse listing;
  ASSERT_TRUE(frontend.ListTopics("globex", {}, &listing).ok());
  EXPECT_TRUE(listing.names.empty());

  GetStatsRequest stats_req;
  stats_req.topic = "shared-name";
  GetStatsResponse stats;
  EXPECT_TRUE(
      frontend.GetStats("globex", stats_req, &stats).IsNotFound());

  DeleteTopicRequest drop;
  drop.name = "shared-name";
  DeleteTopicResponse dropped;
  EXPECT_TRUE(frontend.DeleteTopic("globex", drop, &dropped).IsNotFound());

  ASSERT_TRUE(CreateSmallTopic(frontend, "globex", "shared-name").ok());
  ASSERT_TRUE(
      IngestTexts(frontend, "globex", "shared-name", {DiskLog(1)}).ok());

  GetStatsResponse a_stats, b_stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &a_stats).ok());
  ASSERT_TRUE(frontend.GetStats("globex", stats_req, &b_stats).ok());
  EXPECT_EQ(a_stats.stats.ingested_records, 60u);
  EXPECT_EQ(b_stats.stats.ingested_records, 1u);

  // A's delete removes only A's topic.
  ASSERT_TRUE(frontend.DeleteTopic("acme", drop, &dropped).ok());
  EXPECT_TRUE(frontend.GetStats("acme", stats_req, &a_stats).IsNotFound());
  EXPECT_TRUE(frontend.GetStats("globex", stats_req, &b_stats).ok());

  // Names that could escape the namespace — or, under storage_root,
  // the directory sandbox — are rejected: separators and the two path
  // traversal components.
  EXPECT_TRUE(CreateSmallTopic(frontend, "a/b", "t").IsInvalidArgument());
  EXPECT_TRUE(CreateSmallTopic(frontend, "", "t").IsInvalidArgument());
  EXPECT_TRUE(CreateSmallTopic(frontend, "acme", "a/b").IsInvalidArgument());
  EXPECT_TRUE(CreateSmallTopic(frontend, "..", "t").IsInvalidArgument());
  EXPECT_TRUE(CreateSmallTopic(frontend, "acme", "..").IsInvalidArgument());
  EXPECT_TRUE(CreateSmallTopic(frontend, ".", "t").IsInvalidArgument());
  EXPECT_TRUE(CreateSmallTopic(frontend, "acme", ".").IsInvalidArgument());
}

TEST(ApiFrontendTest, PaginatedQueryEqualsUnpaginated) {
  ServiceFrontend frontend;
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "events").ok());
  std::vector<std::string> texts;
  for (int i = 0; i < 150; ++i) {
    texts.push_back(SshLog(i));
    texts.push_back(DiskLog(i));
    texts.push_back("FATAL replication lag on shard " + std::to_string(i % 4));
  }
  ASSERT_TRUE(IngestTexts(frontend, "acme", "events", texts).ok());
  TrainNowRequest train;
  train.topic = "events";
  TrainNowResponse trained;
  ASSERT_TRUE(frontend.TrainNow("acme", train, &trained).ok());

  QueryRequest query;
  query.topic = "events";
  query.saturation_threshold = 0.6;
  QueryResponse full;
  ASSERT_TRUE(frontend.Query("acme", query, &full).ok());
  ASSERT_GE(full.groups.size(), 3u);

  query.max_groups = 2;
  std::vector<TemplateGroup> paged;
  int pages = 0;
  for (;;) {
    QueryResponse page;
    ASSERT_TRUE(frontend.Query("acme", query, &page).ok());
    EXPECT_LE(page.groups.size(), 2u);
    for (TemplateGroup& g : page.groups) paged.push_back(std::move(g));
    ++pages;
    ASSERT_LT(pages, 200);
    if (page.next_cursor.empty()) break;
    query.cursor = page.next_cursor;
  }
  ASSERT_EQ(paged.size(), full.groups.size());
  for (size_t i = 0; i < paged.size(); ++i) {
    EXPECT_EQ(paged[i].template_id, full.groups[i].template_id) << i;
    EXPECT_EQ(paged[i].template_text, full.groups[i].template_text) << i;
    EXPECT_EQ(paged[i].count, full.groups[i].count) << i;
    EXPECT_EQ(paged[i].sequence_numbers, full.groups[i].sequence_numbers)
        << i;
  }

  // The cursor pins the window: records ingested between pages are
  // invisible to the remaining pages.
  query.cursor.clear();
  query.max_groups = 1;
  QueryResponse first_page;
  ASSERT_TRUE(frontend.Query("acme", query, &first_page).ok());
  ASSERT_FALSE(first_page.next_cursor.empty());
  ASSERT_TRUE(
      IngestTexts(frontend, "acme", "events", {SshLog(1), SshLog(2)}).ok());
  uint64_t paged_total = 0;
  for (const TemplateGroup& g : first_page.groups) paged_total += g.count;
  query.cursor = first_page.next_cursor;
  for (;;) {
    QueryResponse page;
    ASSERT_TRUE(frontend.Query("acme", query, &page).ok());
    for (const TemplateGroup& g : page.groups) paged_total += g.count;
    if (page.next_cursor.empty()) break;
    query.cursor = page.next_cursor;
  }
  EXPECT_EQ(paged_total, texts.size());

  // Sequence-number omission leaves grouping untouched.
  query.cursor.clear();
  query.max_groups = 0;
  query.include_sequence_numbers = false;
  QueryResponse lean;
  ASSERT_TRUE(frontend.Query("acme", query, &lean).ok());
  // The two extra records may have shifted counts; compare against a
  // fresh full query instead of the stale one.
  QueryResponse full_now;
  query.include_sequence_numbers = true;
  ASSERT_TRUE(frontend.Query("acme", query, &full_now).ok());
  ASSERT_EQ(lean.groups.size(), full_now.groups.size());
  for (size_t i = 0; i < lean.groups.size(); ++i) {
    EXPECT_EQ(lean.groups[i].template_id, full_now.groups[i].template_id);
    EXPECT_EQ(lean.groups[i].count, full_now.groups[i].count);
    EXPECT_TRUE(lean.groups[i].sequence_numbers.empty());
  }

  // A corrupted cursor is an InvalidArgument, not a crash.
  query.cursor = "not a cursor";
  QueryResponse broken;
  EXPECT_TRUE(frontend.Query("acme", query, &broken).IsInvalidArgument());
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

TEST(ApiFrontendTest, TopicQuotaEnforcedAndReleasedOnDelete) {
  FrontendConfig config;
  config.max_topics_per_tenant = 2;
  ServiceFrontend frontend(config);
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "a").ok());
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "b").ok());
  const Status third = CreateSmallTopic(frontend, "acme", "c");
  EXPECT_TRUE(third.IsResourceExhausted()) << third.ToString();
  // Another tenant has its own quota.
  EXPECT_TRUE(CreateSmallTopic(frontend, "globex", "a").ok());
  // Deleting frees the slot; a failed create never consumes one.
  DeleteTopicRequest drop;
  drop.name = "a";
  DeleteTopicResponse dropped;
  ASSERT_TRUE(frontend.DeleteTopic("acme", drop, &dropped).ok());
  EXPECT_TRUE(CreateSmallTopic(frontend, "acme", "c").ok());
  EXPECT_TRUE(CreateSmallTopic(frontend, "acme", "b").IsAlreadyExists());
  EXPECT_TRUE(CreateSmallTopic(frontend, "acme", "d").IsResourceExhausted());
}

TEST(ApiFrontendTest, RateQuotaDeniesWithRetryHintAndRecovers) {
  uint64_t fake_now_us = 1'000'000;
  FrontendConfig config;
  config.max_ingest_records_per_sec = 1000;
  config.burst_seconds = 1.0;  // capacity: 1000 records
  config.clock_us = [&fake_now_us] { return fake_now_us; };
  ServiceFrontend frontend(config);
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "t").ok());

  std::vector<std::string> batch;
  for (int i = 0; i < 800; ++i) batch.push_back(SshLog(i));

  // First 800 drain the bucket to 200; the next 800 must wait for 600
  // records to refill → 600ms hint.
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", batch).ok());
  uint64_t retry_after_us = 0;
  const Status denied =
      IngestTexts(frontend, "acme", "t", batch, &retry_after_us);
  ASSERT_TRUE(denied.IsResourceExhausted()) << denied.ToString();
  EXPECT_NEAR(static_cast<double>(retry_after_us), 600'000.0, 1'000.0);

  // A denial consumes nothing: the same request succeeds exactly when
  // the hint says.
  fake_now_us += retry_after_us;
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", batch, &retry_after_us).ok());

  // Single-record Ingest is metered by the same buckets.
  IngestRequest one;
  one.topic = "t";
  one.text = SshLog(0);
  IngestResponse one_resp;
  const Status one_denied =
      frontend.Ingest("acme", one, &one_resp, &retry_after_us);
  EXPECT_TRUE(one_denied.IsResourceExhausted());
  EXPECT_GT(retry_after_us, 0u);
  fake_now_us += retry_after_us;
  EXPECT_TRUE(frontend.Ingest("acme", one, &one_resp, &retry_after_us).ok());

  // Other tenants are unaffected throughout.
  ASSERT_TRUE(CreateSmallTopic(frontend, "globex", "t").ok());
  EXPECT_TRUE(IngestTexts(frontend, "globex", "t", {SshLog(1)}).ok());
}

TEST(ApiFrontendTest, TenantMeterCountsAdmittedAndDenied) {
  uint64_t fake_now_us = 1'000'000;
  FrontendConfig config;
  config.max_ingest_records_per_sec = 1000;
  config.burst_seconds = 1.0;  // capacity: 1000 records
  config.clock_us = [&fake_now_us] { return fake_now_us; };
  ServiceFrontend frontend(config);
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "t").ok());

  std::vector<std::string> batch;
  uint64_t batch_bytes = 0;
  for (int i = 0; i < 800; ++i) {
    batch.push_back(SshLog(i));
    batch_bytes += batch.back().size();
  }
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", batch).ok());
  uint64_t retry_after_us = 0;
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", batch, &retry_after_us)
                  .IsResourceExhausted());

  GetStatsRequest stats_req;
  stats_req.topic = "t";
  GetStatsResponse stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.tenant.admitted_requests, 1u);
  EXPECT_EQ(stats.tenant.admitted_records, 800u);
  EXPECT_EQ(stats.tenant.admitted_bytes, batch_bytes);
  // The denial was counted — and consumed nothing (denied, not lost).
  EXPECT_EQ(stats.tenant.denied_requests, 1u);
  EXPECT_EQ(stats.tenant.denied_records, 800u);
  EXPECT_EQ(stats.tenant.denied_bytes, batch_bytes);

  // The meter is tenant-wide: another tenant starts from zero.
  ASSERT_TRUE(CreateSmallTopic(frontend, "globex", "t").ok());
  GetStatsResponse other;
  ASSERT_TRUE(frontend.GetStats("globex", stats_req, &other).ok());
  EXPECT_EQ(other.tenant.admitted_requests, 0u);
  EXPECT_EQ(other.tenant.denied_requests, 0u);
}

TEST(ApiFrontendTest, TenantMeterCountsEvenWithoutRateLimits) {
  // Unlimited rates skip the token buckets entirely — the meter must
  // still record usage.
  ServiceFrontend frontend;
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "t").ok());
  ASSERT_TRUE(
      IngestTexts(frontend, "acme", "t", {SshLog(1), SshLog(2)}).ok());
  IngestRequest one;
  one.topic = "t";
  one.text = SshLog(3);
  IngestResponse one_resp;
  ASSERT_TRUE(frontend.Ingest("acme", one, &one_resp).ok());

  GetStatsRequest stats_req;
  stats_req.topic = "t";
  GetStatsResponse stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.tenant.admitted_requests, 2u);
  EXPECT_EQ(stats.tenant.admitted_records, 3u);
  EXPECT_EQ(stats.tenant.admitted_bytes,
            SshLog(1).size() + SshLog(2).size() + SshLog(3).size());
  EXPECT_EQ(stats.tenant.denied_requests, 0u);
}

TEST(ApiFrontendTest, OversizedBatchAdmittedOnlyAgainstFullBucket) {
  uint64_t fake_now_us = 1'000'000;
  FrontendConfig config;
  config.max_ingest_records_per_sec = 100;  // capacity: 100
  config.clock_us = [&fake_now_us] { return fake_now_us; };
  ServiceFrontend frontend(config);
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "t").ok());

  std::vector<std::string> huge;
  for (int i = 0; i < 500; ++i) huge.push_back(SshLog(i));
  // Admitted against the full bucket (otherwise it could never run) —
  // and the overdraft delays the next request by the full debt.
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", huge).ok());
  uint64_t retry_after_us = 0;
  const Status denied =
      IngestTexts(frontend, "acme", "t", {SshLog(0)}, &retry_after_us);
  ASSERT_TRUE(denied.IsResourceExhausted());
  // Debt: -400 tokens; one record needs 401 refilled → ~4.01s.
  EXPECT_GT(retry_after_us, 4'000'000u);
  fake_now_us += retry_after_us;
  EXPECT_TRUE(
      IngestTexts(frontend, "acme", "t", {SshLog(0)}, &retry_after_us).ok());
}

TEST(ApiFrontendTest, InflightBatchCapRefusesConcurrentBatch) {
  FrontendConfig config;
  config.max_inflight_batches = 1;
  ServiceFrontend* frontend_ptr = nullptr;
  std::atomic<int> denials{0};
  std::atomic<bool> reentered{false};
  config.on_ingest_batch_start = [&](std::string_view tenant) {
    // Runs with the first batch's in-flight slot held: a second batch
    // for the same tenant must be refused, fast, with a hint.
    if (reentered.exchange(true)) return;  // only probe from the outer call
    IngestBatchRequest inner;
    inner.topic = "t";
    inner.texts = {"probe line"};
    IngestBatchResponse resp;
    uint64_t retry_after_us = 0;
    const Status denied = frontend_ptr->IngestBatch(
        std::string(tenant), std::move(inner), &resp, &retry_after_us);
    if (denied.IsResourceExhausted() && retry_after_us > 0) ++denials;
  };
  ServiceFrontend frontend(config);
  frontend_ptr = &frontend;
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "t").ok());
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", {SshLog(0)}).ok());
  EXPECT_EQ(denials.load(), 1);
  // The slot was released: the next batch sails through (its own probe
  // is suppressed by the reentered flag).
  EXPECT_TRUE(IngestTexts(frontend, "acme", "t", {SshLog(1)}).ok());
  // The cap rejection was metered as a denial like a rate-limit one.
  GetStatsRequest stats_req;
  stats_req.topic = "t";
  GetStatsResponse stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.tenant.denied_requests, 1u);
  EXPECT_EQ(stats.tenant.denied_records, 1u);
  EXPECT_EQ(stats.tenant.admitted_requests, 2u);
}

// ---------------------------------------------------------------------
// Config validation + live updates
// ---------------------------------------------------------------------

TEST(ApiFrontendTest, CreateTopicValidatesConfigUpFront) {
  ServiceFrontend frontend;
  CreateTopicRequest req;
  req.name = "t";
  CreateTopicResponse resp;

  req.config = SmallConfig();
  req.config.num_ingest_shards = 0;
  Status s = frontend.CreateTopic("acme", req, &resp);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("num_ingest_shards"), std::string::npos);

  req.config = SmallConfig();
  req.config.train_interval_records = 0;
  s = frontend.CreateTopic("acme", req, &resp);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("train_interval_records"), std::string::npos);

  req.config = SmallConfig();
  req.config.variable_rules = {{"broken", "(unclosed"}};
  s = frontend.CreateTopic("acme", req, &resp);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("broken"), std::string::npos);

  req.config = SmallConfig();
  req.config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
  req.config.storage.directory = "";
  s = frontend.CreateTopic("acme", req, &resp);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("storage.directory"), std::string::npos);

  req.config = SmallConfig();  // kMemory storage
  req.config.durability = DurabilityMode::kWalGroupCommit;
  s = frontend.CreateTopic("acme", req, &resp);
  ASSERT_TRUE(s.IsInvalidArgument());
  EXPECT_NE(s.message().find("durability"), std::string::npos);

  // None of the rejected creates consumed the name or a quota slot.
  req.config = SmallConfig();
  EXPECT_TRUE(frontend.CreateTopic("acme", req, &resp).ok());
}

TEST(ApiFrontendTest, UpdateTopicConfigAppliesLive) {
  ServiceFrontend frontend;
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "t").ok());
  std::vector<std::string> texts;
  for (int i = 0; i < 60; ++i) texts.push_back(SshLog(i));
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", texts).ok());

  GetStatsRequest stats_req;
  stats_req.topic = "t";
  GetStatsResponse stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  ASSERT_EQ(stats.stats.trainings, 1u);  // initial training at 50

  // Tighten the retrain cadence live: the next 200 records must now
  // trigger retrains (the original interval was effectively infinite).
  UpdateTopicConfigRequest update;
  update.name = "t";
  update.patch.train_interval_records = 100;
  UpdateTopicConfigResponse updated;
  ASSERT_TRUE(frontend.UpdateTopicConfig("acme", update, &updated).ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(IngestTexts(frontend, "acme", "t", {SshLog(i)}).ok());
  }
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_GE(stats.stats.trainings, 2u);

  // Live reshard: stats reflect the new shard set and ingest keeps
  // grouping correctly through it.
  update.patch = TopicConfigPatch();
  update.patch.num_ingest_shards = 4;
  ASSERT_TRUE(frontend.UpdateTopicConfig("acme", update, &updated).ok());
  std::vector<std::string> more;
  for (int i = 0; i < 128; ++i) more.push_back(DiskLog(i));
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", more).ok());
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.stats.shards.size(), 4u);

  QueryRequest query;
  query.topic = "t";
  query.saturation_threshold = 0.5;
  QueryResponse result;
  ASSERT_TRUE(frontend.Query("acme", query, &result).ok());
  uint64_t total = 0;
  for (const TemplateGroup& g : result.groups) total += g.count;
  EXPECT_EQ(total, 60u + 200u + 128u);

  // Invalid patch: rejected atomically, nothing applied.
  update.patch = TopicConfigPatch();
  update.patch.num_threads = 0;
  const Status bad = frontend.UpdateTopicConfig("acme", update, &updated);
  ASSERT_TRUE(bad.IsInvalidArgument());
  EXPECT_NE(bad.message().find("num_threads"), std::string::npos);
}

// ---------------------------------------------------------------------
// Lifecycle vs storage and background training
// ---------------------------------------------------------------------

TEST(ApiFrontendTest, DeleteTopicPurgesOrKeepsDiskStorage) {
  TempDir root;
  FrontendConfig fconfig;
  fconfig.storage_root = root.path();
  ServiceFrontend frontend(fconfig);
  CreateTopicRequest create;
  create.name = "t";
  create.config = SmallConfig();
  create.config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
  create.config.storage.segment_data_bytes = 4096;
  CreateTopicResponse created;

  // With a storage root, clients must not pick their own directory —
  // a wire-supplied path could alias (and purge-delete) another
  // tenant's bytes.
  create.config.storage.directory = root.path() + "/globex/t";
  const Status hijack = frontend.CreateTopic("acme", create, &created);
  ASSERT_TRUE(hijack.IsInvalidArgument()) << hijack.ToString();
  EXPECT_NE(hijack.message().find("storage.directory"), std::string::npos);

  // The frontend assigns <root>/<tenant>/<topic>.
  create.config.storage.directory.clear();
  ASSERT_TRUE(frontend.CreateTopic("acme", create, &created).ok());
  const std::string assigned = root.path() + "/acme/t";
  std::vector<std::string> texts;
  for (int i = 0; i < 200; ++i) texts.push_back(SshLog(i));
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", texts).ok());
  ASSERT_TRUE(std::filesystem::exists(assigned));

  // Keep the bytes: the directory survives and a re-create RECOVERS
  // the records.
  DeleteTopicRequest drop;
  drop.name = "t";
  drop.purge_storage = false;
  DeleteTopicResponse dropped;
  ASSERT_TRUE(frontend.DeleteTopic("acme", drop, &dropped).ok());
  ASSERT_TRUE(std::filesystem::exists(assigned));
  ASSERT_TRUE(frontend.CreateTopic("acme", create, &created).ok());
  GetStatsRequest stats_req;
  stats_req.topic = "t";
  GetStatsResponse stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.stats.recovered_records, 200u);

  // Purge: the directory goes with the topic.
  drop.purge_storage = true;
  ASSERT_TRUE(frontend.DeleteTopic("acme", drop, &dropped).ok());
  EXPECT_FALSE(std::filesystem::exists(assigned));
}

TEST(ApiFrontendTest, DeleteTopicDrainsInFlightTraining) {
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> training_started{false};

  FrontendConfig fconfig;
  ServiceFrontend frontend(fconfig);
  CreateTopicRequest create;
  create.name = "t";
  create.config = SmallConfig();
  create.config.async_training = true;
  create.config.sync_initial_training = false;
  create.config.on_async_training_start = [&] {
    training_started.store(true);
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return gate_open; });
  };
  CreateTopicResponse created;
  ASSERT_TRUE(frontend.CreateTopic("acme", create, &created).ok());

  std::vector<std::string> texts;
  for (int i = 0; i < 60; ++i) texts.push_back(SshLog(i));
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", texts).ok());
  while (!training_started.load()) std::this_thread::yield();

  // Delete while the training is gated in flight; the destructor must
  // drain it (not deadlock, not crash). Open the gate from a helper
  // thread once the delete is underway.
  std::thread opener([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    {
      std::lock_guard<std::mutex> lock(gate_mu);
      gate_open = true;
    }
    gate_cv.notify_all();
  });
  DeleteTopicRequest drop;
  drop.name = "t";
  DeleteTopicResponse dropped;
  EXPECT_TRUE(frontend.DeleteTopic("acme", drop, &dropped).ok());
  opener.join();
  ListTopicsResponse listing;
  ASSERT_TRUE(frontend.ListTopics("acme", {}, &listing).ok());
  EXPECT_TRUE(listing.names.empty());
}

// ---------------------------------------------------------------------
// Concurrency (run under TSAN via the ci tsan job)
// ---------------------------------------------------------------------

TEST(ApiFrontendTest, ConcurrentFrontendUseIsClean) {
  FrontendConfig config;
  config.max_inflight_batches = 8;
  ServiceFrontend frontend(config);
  TopicConfig topic_config = SmallConfig();
  topic_config.async_training = true;
  topic_config.train_interval_records = 500;
  CreateTopicRequest create;
  create.name = "t";
  create.config = topic_config;
  CreateTopicResponse created;
  ASSERT_TRUE(frontend.CreateTopic("acme", create, &created).ok());
  ASSERT_TRUE(frontend.CreateTopic("globex", create, &created).ok());

  constexpr int kBatches = 20;
  constexpr int kBatchSize = 64;
  std::atomic<uint64_t> acme_ok{0};

  auto ingester = [&](const std::string& tenant, int salt,
                      std::atomic<uint64_t>* ok_records) {
    for (int b = 0; b < kBatches; ++b) {
      IngestBatchRequest req;
      req.topic = "t";
      for (int i = 0; i < kBatchSize; ++i) {
        req.texts.push_back(SshLog(salt * 10000 + b * kBatchSize + i));
      }
      IngestBatchResponse resp;
      const Status s =
          frontend.IngestBatch(tenant, std::move(req), &resp, nullptr);
      if (s.ok() && ok_records != nullptr) {
        ok_records->fetch_add(resp.seqs.size());
      }
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(ingester, "acme", 1, &acme_ok);
  threads.emplace_back(ingester, "acme", 2, &acme_ok);
  threads.emplace_back(ingester, "globex", 3, nullptr);
  threads.emplace_back([&] {
    for (int i = 0; i < 50; ++i) {
      QueryRequest query;
      query.topic = "t";
      query.saturation_threshold = 0.6;
      query.max_groups = 4;
      query.include_sequence_numbers = false;
      QueryResponse result;
      (void)frontend.Query("acme", query, &result);
      GetStatsRequest stats_req;
      stats_req.topic = "t";
      GetStatsResponse stats;
      (void)frontend.GetStats("acme", stats_req, &stats);
      ListTopicsResponse listing;
      (void)frontend.ListTopics("acme", {}, &listing);
      std::this_thread::yield();
    }
  });
  threads.emplace_back([&] {
    // Churn a third tenant's lifecycle while the others run.
    for (int i = 0; i < 10; ++i) {
      CreateTopicRequest c;
      c.name = "scratch";
      c.config = SmallConfig();
      CreateTopicResponse cr;
      (void)frontend.CreateTopic("initech", c, &cr);
      IngestBatchRequest req;
      req.topic = "scratch";
      req.texts = {DiskLog(i)};
      IngestBatchResponse resp;
      (void)frontend.IngestBatch("initech", std::move(req), &resp, nullptr);
      DeleteTopicRequest d;
      d.name = "scratch";
      DeleteTopicResponse dr;
      (void)frontend.DeleteTopic("initech", d, &dr);
    }
  });
  for (std::thread& t : threads) t.join();

  GetStatsRequest stats_req;
  stats_req.topic = "t";
  GetStatsResponse stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.stats.ingested_records, acme_ok.load());
  EXPECT_EQ(acme_ok.load(),
            static_cast<uint64_t>(2 * kBatches * kBatchSize));
}

TEST(ApiFrontendTest, ConcurrentLiveReshardIsClean) {
  ServiceFrontend frontend;
  TopicConfig topic_config = SmallConfig();
  topic_config.num_ingest_shards = 4;
  CreateTopicRequest create;
  create.name = "t";
  create.config = topic_config;
  CreateTopicResponse created;
  ASSERT_TRUE(frontend.CreateTopic("acme", create, &created).ok());
  // Train first so batches take the sharded path from the start.
  std::vector<std::string> seed;
  for (int i = 0; i < 60; ++i) seed.push_back(SshLog(i));
  ASSERT_TRUE(IngestTexts(frontend, "acme", "t", seed).ok());

  constexpr int kBatches = 30;
  constexpr int kBatchSize = 64;
  std::atomic<uint64_t> ok_records{0};
  auto ingester = [&](int salt) {
    for (int b = 0; b < kBatches; ++b) {
      IngestBatchRequest req;
      req.topic = "t";
      for (int i = 0; i < kBatchSize; ++i) {
        req.texts.push_back(SshLog(salt * 100000 + b * kBatchSize + i));
      }
      IngestBatchResponse resp;
      if (frontend.IngestBatch("acme", std::move(req), &resp, nullptr).ok()) {
        ok_records.fetch_add(resp.seqs.size());
      }
    }
  };
  std::vector<std::thread> threads;
  threads.emplace_back(ingester, 1);
  threads.emplace_back(ingester, 2);
  threads.emplace_back([&] {
    // Flip the shard count under live traffic: batches racing the
    // reshard must fall back safely (generation bump), never touch a
    // stale shard set, and lose no records.
    const int shard_counts[] = {1, 4, 2, 8, 1, 4};
    for (int n : shard_counts) {
      UpdateTopicConfigRequest update;
      update.name = "t";
      update.patch.num_ingest_shards = n;
      UpdateTopicConfigResponse updated;
      ASSERT_TRUE(frontend.UpdateTopicConfig("acme", update, &updated).ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (std::thread& t : threads) t.join();

  GetStatsRequest stats_req;
  stats_req.topic = "t";
  GetStatsResponse stats;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.stats.ingested_records, 60u + ok_records.load());
  EXPECT_EQ(ok_records.load(),
            static_cast<uint64_t>(2 * kBatches * kBatchSize));

  // Every record still groups and resolves.
  QueryRequest query;
  query.topic = "t";
  query.saturation_threshold = 0.5;
  query.include_sequence_numbers = false;
  QueryResponse result;
  ASSERT_TRUE(frontend.Query("acme", query, &result).ok());
  uint64_t total = 0;
  for (const TemplateGroup& g : result.groups) total += g.count;
  EXPECT_EQ(total, 60u + ok_records.load());
}

// ---------------------------------------------------------------------
// Envelope v2: request ids + auth tokens
// ---------------------------------------------------------------------

TEST(ApiMessagesTest, EnvelopeV2FieldsRoundTrip) {
  RequestEnvelope req;
  req.method = ApiMethod::kIngest;
  req.tenant = "acme";
  req.payload = "p";
  req.request_id = 0xDEADBEEFCAFEull;
  req.auth_token = "s3cret\0bytes";

  RequestEnvelope got;
  ASSERT_TRUE(got.DecodeFrom(Encode(req)).ok());
  EXPECT_EQ(got.request_id, req.request_id);
  EXPECT_EQ(got.auth_token, req.auth_token);

  // The view aliases the encoded buffer — keep it alive while reading.
  const std::string encoded = Encode(req);
  RequestEnvelopeView view;
  ASSERT_TRUE(view.DecodeFrom(encoded).ok());
  EXPECT_EQ(view.request_id, req.request_id);
  EXPECT_EQ(view.auth_token, req.auth_token);

  ResponseEnvelope resp;
  resp.status = Status::OK();
  resp.request_id = 77;
  ResponseEnvelope resp2;
  ASSERT_TRUE(resp2.DecodeFrom(Encode(resp)).ok());
  EXPECT_EQ(resp2.request_id, 77u);
}

TEST(ApiMessagesTest, V2FieldsAreOptionalOnTheWire) {
  // Zero request_id / empty token encode NOTHING — byte-identical to
  // what a v1 encoder produced, so v1 peers round-trip unchanged.
  RequestEnvelope v1_shape;
  v1_shape.method = ApiMethod::kQuery;
  v1_shape.tenant = "t";
  v1_shape.payload = "x";
  RequestEnvelope with_fields = v1_shape;
  with_fields.request_id = 0;
  with_fields.auth_token = "";
  EXPECT_EQ(Encode(v1_shape), Encode(with_fields));

  // And a v1-version envelope (api_version = 1, no v2 tags) decodes
  // with the v2 defaults.
  RequestEnvelope old_peer = v1_shape;
  old_peer.api_version = 1;
  RequestEnvelope got;
  ASSERT_TRUE(got.DecodeFrom(Encode(old_peer)).ok());
  EXPECT_EQ(got.api_version, 1u);
  EXPECT_EQ(got.request_id, 0u);
  EXPECT_TRUE(got.auth_token.empty());
}

TEST(ApiMessagesTest, V2EnvelopeTruncationAndFuzzNeverCrash) {
  RequestEnvelope req;
  req.method = ApiMethod::kIngestBatch;
  req.tenant = "acme";
  req.payload = "payload-bytes";
  req.request_id = 123456789;
  req.auth_token = "token-token-token";
  ExpectRobustDecoding<RequestEnvelope>(Encode(req));

  ResponseEnvelope resp;
  resp.status = Status::PermissionDenied("no");
  resp.request_id = 987654321;
  resp.payload = "x";
  ExpectRobustDecoding<ResponseEnvelope>(Encode(resp));
}

TEST(ApiFrontendTest, DispatchEchoesRequestId) {
  ServiceFrontend frontend;
  CreateTopicRequest create;
  create.name = "t";
  create.config = SmallConfig();
  ServiceFrontend::DispatchInfo info;
  const std::string response = frontend.Dispatch(
      EncodeRequest(ApiMethod::kCreateTopic, "acme", create, /*request_id=*/42),
      &info);
  CreateTopicResponse created;
  uint64_t echoed = 0;
  ASSERT_TRUE(DecodeResponse(response, &created, nullptr, &echoed).ok());
  EXPECT_EQ(echoed, 42u);
  EXPECT_EQ(info.request_id, 42u);
  EXPECT_EQ(info.code, Status::Code::kOk);

  // Errors echo the id too — correlation matters MOST for failures.
  const std::string err_response = frontend.Dispatch(
      EncodeRequest(ApiMethod::kCreateTopic, "acme", create, /*request_id=*/43),
      &info);
  CreateTopicResponse dup;
  echoed = 0;
  EXPECT_TRUE(DecodeResponse(err_response, &dup, nullptr, &echoed)
                  .IsAlreadyExists());
  EXPECT_EQ(echoed, 43u);
  EXPECT_EQ(info.code, Status::Code::kAlreadyExists);
}

TEST(ApiFrontendTest, AuthRejectsBeforeAdmissionAccounting) {
  FrontendConfig config;
  config.tenant_tokens = {{"acme", "acme-token"}, {"globex", "globex-token"}};
  ServiceFrontend frontend(config);

  CreateTopicRequest create;
  create.name = "t";
  create.config = SmallConfig();

  // No token, wrong token, right-token-wrong-tenant, unknown tenant:
  // all PermissionDenied, all indistinguishable.
  auto denied_msg = [&](std::string_view tenant, std::string_view token) {
    ServiceFrontend::DispatchInfo info;
    const std::string response = frontend.Dispatch(
        EncodeRequest(ApiMethod::kCreateTopic, tenant, create, 1, token),
        &info);
    CreateTopicResponse resp;
    const Status s = DecodeResponse(response, &resp);
    EXPECT_TRUE(s.IsPermissionDenied()) << s.ToString();
    EXPECT_EQ(info.code, Status::Code::kPermissionDenied);
    return std::string(s.message());
  };
  const std::string a = denied_msg("acme", "");
  const std::string b = denied_msg("acme", "globex-token");
  const std::string c = denied_msg("nobody", "acme-token");
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);

  // The right token works...
  ServiceFrontend::DispatchInfo info;
  std::string response = frontend.Dispatch(
      EncodeRequest(ApiMethod::kCreateTopic, "acme", create, 2, "acme-token"),
      &info);
  CreateTopicResponse created;
  ASSERT_TRUE(DecodeResponse(response, &created).ok());

  // ...and auth-rejected ingests never reached admission: the tenant
  // meter records no denials (rejection happens BEFORE accounting).
  IngestBatchRequest batch;
  batch.topic = "t";
  batch.texts = {"a", "b"};
  for (int i = 0; i < 5; ++i) {
    frontend.Dispatch(
        EncodeRequest(ApiMethod::kIngestBatch, "acme", batch, 3, "wrong"));
  }
  GetStatsRequest stats_req;
  stats_req.topic = "t";
  response = frontend.Dispatch(EncodeRequest(ApiMethod::kGetStats, "acme",
                                             stats_req, 4, "acme-token"));
  GetStatsResponse stats;
  ASSERT_TRUE(DecodeResponse(response, &stats).ok());
  EXPECT_EQ(stats.tenant.denied_requests, 0u);
  EXPECT_EQ(stats.tenant.admitted_requests, 0u);
}

TEST(ApiFrontendTest, AuthDisabledAcceptsV1Envelopes) {
  // The pre-v2 client shape: api_version 1, no request_id, no token.
  // Against an auth-disabled frontend it must round-trip unchanged.
  ServiceFrontend frontend;
  CreateTopicRequest create;
  create.name = "t";
  create.config = SmallConfig();
  RequestEnvelope env;
  env.api_version = 1;
  env.method = ApiMethod::kCreateTopic;
  env.tenant = "acme";
  env.payload = Encode(create);
  CreateTopicResponse created;
  uint64_t echoed = 99;
  ASSERT_TRUE(
      DecodeResponse(frontend.Dispatch(Encode(env)), &created, nullptr,
                     &echoed)
          .ok());
  EXPECT_EQ(echoed, 0u);  // nothing to echo, nothing echoed
}

TEST(ApiFrontendTest, CustomAuthenticatorIsConsulted) {
  class EvenTenantsOnly : public Authenticator {
   public:
    Status Authenticate(std::string_view tenant,
                        std::string_view token) const override {
      if (!token.empty() && tenant.size() % 2 == 0) return Status::OK();
      return Status::PermissionDenied("odd tenant");
    }
  };
  FrontendConfig config;
  config.authenticator = std::make_shared<EvenTenantsOnly>();
  ServiceFrontend frontend(config);

  ListTopicsRequest list;
  ListTopicsResponse topics;
  EXPECT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kListTopics, "ab", list, 1, "x")),
                             &topics)
                  .ok());
  EXPECT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kListTopics, "abc", list, 2, "x")),
                             &topics)
                  .IsPermissionDenied());
}

// ---------------------------------------------------------------------
// Auth token rotation
// ---------------------------------------------------------------------

TEST(ApiFrontendTest, TokenRotationSwapsTableWithoutDroppingService) {
  FrontendConfig config;
  config.tenant_tokens = {{"acme", "token-v1"}};
  ServiceFrontend frontend(config);
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "events").ok());

  ListTopicsRequest list;
  ListTopicsResponse topics;
  ASSERT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kListTopics, "acme", list, 1,
                                 "token-v1")),
                             &topics)
                  .ok());

  // Rotate: the very next request sees the new table — the old token is
  // denied, the new one admitted, no connection or topic state lost.
  frontend.UpdateTenantTokens({{"acme", "token-v2"}, {"globex", "g-tok"}});
  EXPECT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kListTopics, "acme", list, 2,
                                 "token-v1")),
                             &topics)
                  .IsPermissionDenied());
  ASSERT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kListTopics, "acme", list, 3,
                                 "token-v2")),
                             &topics)
                  .ok());
  EXPECT_EQ(topics.names, (std::vector<std::string>{"events"}));
  // A tenant added by the rotation authenticates immediately.
  ASSERT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kListTopics, "globex", list, 4,
                                 "g-tok")),
                             &topics)
                  .ok());

  // Rotating to an empty table disables auth (mirrors construction).
  frontend.UpdateTenantTokens({});
  ASSERT_TRUE(DecodeResponse(frontend.Dispatch(EncodeRequest(
                                 ApiMethod::kListTopics, "acme", list, 5)),
                             &topics)
                  .ok());
}

TEST(ApiFrontendTest, TokenRotationUnderConcurrentDispatchIsClean) {
  FrontendConfig config;
  config.tenant_tokens = {{"acme", "tok-0"}};
  ServiceFrontend frontend(config);
  ASSERT_TRUE(CreateSmallTopic(frontend, "acme", "events").ok());

  std::atomic<bool> stop{false};
  std::thread rotator([&] {
    int gen = 0;
    while (!stop.load()) {
      frontend.UpdateTenantTokens({{"acme", "tok-" + std::to_string(++gen)}});
    }
  });
  // Requests race the rotation: every outcome must be ok or a clean
  // PermissionDenied — never a crash or a torn authenticator.
  for (int i = 0; i < 2000; ++i) {
    ListTopicsRequest list;
    ListTopicsResponse topics;
    const Status s = DecodeResponse(
        frontend.Dispatch(EncodeRequest(ApiMethod::kListTopics, "acme", list,
                                        static_cast<uint64_t>(i + 1),
                                        "tok-" + std::to_string(i))),
        &topics);
    ASSERT_TRUE(s.ok() || s.IsPermissionDenied()) << s.ToString();
  }
  stop.store(true);
  rotator.join();
}

// ---------------------------------------------------------------------
// Time-range query predicates
// ---------------------------------------------------------------------

TEST(ApiMessagesTest, QueryTimeRangeFieldsAreOptionalOnTheWire) {
  // Defaults encode as absent tags: an unfiltered v2 request is
  // byte-identical to a v1 request.
  QueryRequest plain;
  plain.topic = "t";
  QueryRequest bounded = plain;
  bounded.min_timestamp_us = 10;
  bounded.max_timestamp_us = 20;
  EXPECT_LT(Encode(plain).size(), Encode(bounded).size());

  QueryRequest decoded;
  ASSERT_TRUE(decoded.DecodeFrom(Encode(bounded)).ok());
  EXPECT_EQ(decoded.min_timestamp_us, 10u);
  EXPECT_EQ(decoded.max_timestamp_us, 20u);
  QueryRequest unfiltered;
  ASSERT_TRUE(unfiltered.DecodeFrom(Encode(plain)).ok());
  EXPECT_EQ(unfiltered.min_timestamp_us, 0u);
  EXPECT_EQ(unfiltered.max_timestamp_us, UINT64_MAX);
}

/// Ingests `n` records with timestamps 1..n into a topic.
Status IngestTimestamped(ServiceFrontend& frontend, const std::string& tenant,
                         const std::string& topic, int n) {
  IngestBatchRequest req;
  req.topic = topic;
  for (int i = 0; i < n; ++i) {
    req.texts.push_back(SshLog(i));
    req.timestamps_us.push_back(static_cast<uint64_t>(i + 1));
  }
  IngestBatchResponse resp;
  return frontend.IngestBatch(tenant, std::move(req), &resp, nullptr);
}

uint64_t CountInWindow(ServiceFrontend& frontend, const std::string& topic,
                       uint64_t min_ts, uint64_t max_ts,
                       uint32_t page_size = 0) {
  QueryRequest req;
  req.topic = topic;
  req.include_sequence_numbers = false;
  req.min_timestamp_us = min_ts;
  req.max_timestamp_us = max_ts;
  req.max_groups = page_size;
  uint64_t total = 0;
  while (true) {
    QueryResponse resp;
    if (!frontend.Query("acme", req, &resp).ok()) return UINT64_MAX;
    for (const TemplateGroup& g : resp.groups) total += g.count;
    if (resp.next_cursor.empty()) return total;
    req.cursor = resp.next_cursor;
  }
}

TEST(ApiFrontendTest, TimeRangeQueryFiltersMemoryAndDiskTopics) {
  // Disk-backed topic: sealed segments carry persisted min/max
  // timestamps, so out-of-window segments are pruned without a read.
  TempDir root;
  FrontendConfig config;
  config.storage_root = root.path();
  ServiceFrontend frontend(config);

  CreateTopicRequest create;
  create.name = "disk";
  create.config = SmallConfig();
  create.config.initial_train_records = 1u << 30;  // deterministic counts
  create.config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
  create.config.storage.segment_data_bytes = 2048;
  CreateTopicResponse created;
  ASSERT_TRUE(frontend.CreateTopic("acme", create, &created).ok());
  ASSERT_TRUE(IngestTimestamped(frontend, "acme", "disk", 200).ok());

  EXPECT_EQ(CountInWindow(frontend, "disk", 0, UINT64_MAX), 200u);
  EXPECT_EQ(CountInWindow(frontend, "disk", 51, 150), 100u);
  EXPECT_EQ(CountInWindow(frontend, "disk", 1, 1), 1u);
  EXPECT_EQ(CountInWindow(frontend, "disk", 201, UINT64_MAX), 0u);
  // Pagination pins the window in the cursor: paged == unpaged.
  EXPECT_EQ(CountInWindow(frontend, "disk", 51, 150, /*page_size=*/3), 100u);

  // Memory-backed topic: same semantics through the scan filter.
  CreateTopicRequest mem;
  mem.name = "mem";
  mem.config = SmallConfig();
  mem.config.initial_train_records = 1u << 30;
  CreateTopicResponse mem_created;
  ASSERT_TRUE(frontend.CreateTopic("acme", mem, &mem_created).ok());
  ASSERT_TRUE(IngestTimestamped(frontend, "acme", "mem", 120).ok());
  EXPECT_EQ(CountInWindow(frontend, "mem", 0, UINT64_MAX), 120u);
  EXPECT_EQ(CountInWindow(frontend, "mem", 30, 59), 30u);
  EXPECT_EQ(CountInWindow(frontend, "mem", 121, UINT64_MAX), 0u);
}

TEST(ApiFrontendTest, TimeRangePrunesSealedSegmentsWithoutScanning) {
  TempDir root;
  FrontendConfig config;
  config.storage_root = root.path();
  ServiceFrontend frontend(config);

  CreateTopicRequest create;
  create.name = "pruned";
  create.config = SmallConfig();
  create.config.initial_train_records = 1u << 30;
  create.config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
  create.config.storage.segment_data_bytes = 2048;
  CreateTopicResponse created;
  ASSERT_TRUE(frontend.CreateTopic("acme", create, &created).ok());
  ASSERT_TRUE(IngestTimestamped(frontend, "acme", "pruned", 400).ok());

  GetStatsRequest stats_req;
  stats_req.topic = "pruned";
  GetStatsResponse before;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &before).ok());

  // A window entirely inside the FIRST records: every later sealed
  // segment's [min_ts, max_ts] misses it and is skipped without a
  // record visit (the postings fast path handles covered segments, so
  // visits only grow for the partially-covered boundary segment).
  EXPECT_EQ(CountInWindow(frontend, "pruned", 1, 10), 10u);
  GetStatsResponse after;
  ASSERT_TRUE(frontend.GetStats("acme", stats_req, &after).ok());
  const uint64_t visits = after.stats.storage_scan_record_visits -
                          before.stats.storage_scan_record_visits;
  // Far fewer visits than records: pruning worked. The one boundary
  // segment may be header-hopped (~17 records per 2 KiB segment).
  EXPECT_LT(visits, 60u);
}

}  // namespace
}  // namespace api
}  // namespace bytebrain
