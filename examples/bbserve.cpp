// bbserve — the bytebrain service as a process: serve a TCP port
// (optionally as a replication follower), load-generate against one,
// promote a follower, or read wire stats.
//
//   ./bbserve serve [port] [--auth tenant=token,...] [--root DIR]
//                   [--repl-token TOK] [--follower host:port]
//                   [--primary-hint host:port]
//       Mounts a ServiceFrontend behind the epoll TCP server and
//       prints "LISTENING <port>" once accepting (port 0 = ephemeral,
//       the default). Runs until SIGINT/SIGTERM. --root enables
//       disk-backed topics under DIR. --repl-token arms the
//       replication surface (ReplPull/Promote/Demote). --follower
//       starts the node as a read-only replica pulling from the given
//       primary (requires --root and --repl-token); --primary-hint is
//       echoed in write rejections.
//
//   ./bbserve loadgen <port> [tenants] [connections] [batches]
//                     [batch_size] [--auth token] [--durable]
//       N tenants × M connections of pipelined IngestBatch traffic,
//       then a wire GetStats per tenant. Prints per-tenant admitted
//       counts and aggregate logs/s; exits nonzero unless every tenant
//       shows admitted records — the CI e2e gate. --durable creates
//       disk + wal_group_commit topics (server needs --root):
//       acknowledged means durable, the failover e2e's precondition.
//
//   ./bbserve promote <port> --repl-token TOK
//       Explicit failover: the follower seals its replicated tails,
//       zeroes its lag, and starts accepting writes. Prints
//       "PROMOTED sealed <n>".
//
//   ./bbserve stats <port> <tenant> <topic> [--auth token]
//       One wire GetStats; prints
//       "INGESTED <records> ROLE <0|1> LAG <bytes> <records> <segments>"
//       (role 1 = follower). The CI failover e2e polls this.
//
// Example failover session (three shells):
//   $ ./bbserve serve 7070 --root /tmp/p --repl-token s3
//   LISTENING 7070
//   $ ./bbserve serve 7071 --root /tmp/f --repl-token s3 \
//       --follower 127.0.0.1:7070 --primary-hint 127.0.0.1:7070
//   LISTENING 7071
//   $ ./bbserve loadgen 7070 4 16 8 1024 --durable
//   $ ./bbserve stats 7071 tenant0 t
//   INGESTED 8192 ROLE 1 LAG 0 0 0
//   $ ./bbserve promote 7071 --repl-token s3
//   PROMOTED sealed 4
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "replication/replicator.h"

using namespace bytebrain;

namespace {

std::atomic<bool> g_stop{false};

std::atomic<int> g_sig{0};
void OnSignal(int sig) {
  g_sig.store(sig);
  g_stop.store(true);
}

std::string LoadgenLog(int i) {
  return "Accepted password for user" + std::to_string(i % 50) +
         " from 10.0." + std::to_string(i % 17) + "." +
         std::to_string(i % 9 + 1) + " port " + std::to_string(40000 + i) +
         " ssh2";
}

/// "--auth a=x,b=y" -> {{a,x},{b,y}}; empty on parse failure.
std::map<std::string, std::string, std::less<>> ParseTokens(
    const std::string& spec) {
  std::map<std::string, std::string, std::less<>> tokens;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(start, comma - start);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) return {};
    tokens[pair.substr(0, eq)] = pair.substr(eq + 1);
    start = comma + 1;
  }
  return tokens;
}

int Serve(int argc, char** argv) {
  net::TcpServerConfig server_config;
  api::FrontendConfig frontend_config;
  std::string follower_of;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--auth") == 0 && i + 1 < argc) {
      frontend_config.tenant_tokens = ParseTokens(argv[++i]);
      if (frontend_config.tenant_tokens.empty()) {
        std::fprintf(stderr, "bad --auth spec (want tenant=token,...)\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      frontend_config.storage_root = argv[++i];
    } else if (std::strcmp(argv[i], "--repl-token") == 0 && i + 1 < argc) {
      frontend_config.replication_token = argv[++i];
    } else if (std::strcmp(argv[i], "--follower") == 0 && i + 1 < argc) {
      follower_of = argv[++i];
    } else if (std::strcmp(argv[i], "--primary-hint") == 0 && i + 1 < argc) {
      frontend_config.primary_hint = argv[++i];
    } else {
      server_config.port = static_cast<uint16_t>(std::atoi(argv[i]));
    }
  }
  if (!follower_of.empty() && (frontend_config.storage_root.empty() ||
                               frontend_config.replication_token.empty())) {
    std::fprintf(stderr, "--follower needs --root and --repl-token\n");
    return 2;
  }
  frontend_config.start_as_follower = !follower_of.empty();

  api::ServiceFrontend frontend(frontend_config);
  frontend.SetRoleChangeHook([](bool is_follower) {
    std::fprintf(stderr, "ROLE %s\n", is_follower ? "follower" : "primary");
  });

  // Follower mode: pull the replication stream from the primary in the
  // background. A wire Promote stops the mirroring (RunOnce no-ops once
  // the node is no longer a follower) and opens writes.
  std::unique_ptr<replication::Replicator> replicator;
  if (!follower_of.empty()) {
    const size_t colon = follower_of.rfind(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "bad --follower (want host:port)\n");
      return 2;
    }
    replication::ReplicatorConfig repl_config;
    repl_config.primary_host = follower_of.substr(0, colon);
    repl_config.primary_port =
        static_cast<uint16_t>(std::atoi(follower_of.c_str() + colon + 1));
    repl_config.replication_token = frontend_config.replication_token;
    repl_config.storage_root = frontend_config.storage_root;
    replicator =
        std::make_unique<replication::Replicator>(&frontend, repl_config);
    replicator->Start();
  }

  net::TcpServer server(&frontend, server_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // Foreground semantics: run until SIGINT/SIGTERM (the CI harness
  // starts us with `&` and kills us when the loadgen is done).
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (replicator != nullptr) replicator->Stop();
  server.Shutdown();
  const net::TcpServerStats stats = server.stats();
  std::fprintf(stderr, "stopping on signal %d\n", g_sig.load());
  std::fprintf(stderr, "served %llu frames over %llu connections\n",
               static_cast<unsigned long long>(stats.frames_dispatched),
               static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}

int Loadgen(int argc, char** argv) {
  if (argc < 3) return 2;
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[2]));
  int tenants = argc > 3 ? std::atoi(argv[3]) : 4;
  int connections = argc > 4 ? std::atoi(argv[4]) : 16;
  int batches = argc > 5 ? std::atoi(argv[5]) : 8;
  int batch_size = argc > 6 ? std::atoi(argv[6]) : 1024;
  std::string auth_token;
  bool durable = false;
  for (int i = 3; i < argc; ++i) {
    if (std::strcmp(argv[i], "--auth") == 0 && i + 1 < argc) {
      auth_token = argv[i + 1];
    }
    if (std::strcmp(argv[i], "--durable") == 0) durable = true;
  }
  if (tenants < 1 || connections < tenants || batches < 1 || batch_size < 1) {
    std::fprintf(stderr, "bad loadgen shape\n");
    return 2;
  }

  // Topic per tenant (idempotent: AlreadyExists is fine on reruns).
  for (int t = 0; t < tenants; ++t) {
    net::NetClient client;
    if (!client.Connect("127.0.0.1", port).ok()) {
      std::fprintf(stderr, "connect failed\n");
      return 1;
    }
    client.set_auth_token(auth_token);
    api::CreateTopicRequest req;
    req.name = "t";
    req.config.initial_train_records = 2000;
    req.config.train_interval_records = 1u << 30;
    req.config.num_threads = 1;
    req.config.async_training = false;
    if (durable) {
      // Disk + group-commit WAL: every acked batch is durable (and
      // replicable) — the failover e2e's zero-acked-loss precondition.
      req.config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
      req.config.durability = DurabilityMode::kWalGroupCommit;
    }
    api::CreateTopicResponse resp;
    const Status s = client.Call(api::ApiMethod::kCreateTopic,
                                 "tenant" + std::to_string(t), req, &resp);
    if (!s.ok() && !s.IsAlreadyExists()) {
      std::fprintf(stderr, "create topic: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::atomic<uint64_t> sent_records{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      net::NetClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(1);
        return;
      }
      client.set_auth_token(auth_token);
      const std::string tenant = "tenant" + std::to_string(c % tenants);
      api::IngestBatchRequest batch;
      batch.topic = "t";
      for (int i = 0; i < batch_size; ++i) {
        batch.texts.push_back(LoadgenLog(c * 7919 + i));
      }
      constexpr int kWindow = 4;
      int sent = 0;
      int received = 0;
      while (received < batches) {
        while (sent < batches && sent - received < kWindow) {
          if (!client
                   .SendRequest(api::ApiMethod::kIngestBatch, tenant, batch)
                   .ok()) {
            failures.fetch_add(1);
            return;
          }
          ++sent;
        }
        api::IngestBatchResponse resp;
        const Status s = client.ReadResponse(&resp);
        if (s.IsIOError()) {
          failures.fetch_add(1);
          return;
        }
        if (s.ok()) sent_records.fetch_add(resp.seqs.size());
        ++received;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  // The gate: every tenant must SHOW admitted records via wire
  // GetStats — the server-side meter, not the client's own counting.
  bool all_admitted = true;
  uint64_t total_admitted = 0;
  for (int t = 0; t < tenants; ++t) {
    net::NetClient client;
    if (!client.Connect("127.0.0.1", port).ok()) return 1;
    client.set_auth_token(auth_token);
    api::GetStatsRequest req;
    req.topic = "t";
    api::GetStatsResponse resp;
    const Status s = client.Call(api::ApiMethod::kGetStats,
                                 "tenant" + std::to_string(t), req, &resp);
    if (!s.ok()) {
      std::fprintf(stderr, "GetStats: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("tenant%d: admitted %llu records (%llu requests)\n", t,
                static_cast<unsigned long long>(resp.tenant.admitted_records),
                static_cast<unsigned long long>(
                    resp.tenant.admitted_requests));
    total_admitted += resp.tenant.admitted_records;
    if (resp.tenant.admitted_records == 0) all_admitted = false;
  }
  std::printf("TOTAL %llu records in %.2fs (%.0fk logs/s), %d failures\n",
              static_cast<unsigned long long>(total_admitted), secs,
              static_cast<double>(sent_records.load()) / secs / 1000.0,
              failures.load());
  return (all_admitted && failures.load() == 0) ? 0 : 1;
}

int Promote(int argc, char** argv) {
  if (argc < 3) return 2;
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[2]));
  std::string token;
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--repl-token") == 0) token = argv[i + 1];
  }
  if (token.empty()) {
    std::fprintf(stderr, "promote needs --repl-token\n");
    return 2;
  }
  net::NetClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  client.set_auth_token(token);
  api::PromoteRequest req;
  api::PromoteResponse resp;
  const Status s = client.Call(api::ApiMethod::kPromote, "", req, &resp);
  if (!s.ok()) {
    std::fprintf(stderr, "promote: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("PROMOTED sealed %llu\n",
              static_cast<unsigned long long>(resp.sealed_topics));
  return 0;
}

int Stats(int argc, char** argv) {
  if (argc < 5) return 2;
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[2]));
  const std::string tenant = argv[3];
  const std::string topic = argv[4];
  std::string auth_token;
  for (int i = 5; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--auth") == 0) auth_token = argv[i + 1];
  }
  net::NetClient client;
  if (!client.Connect("127.0.0.1", port).ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  client.set_auth_token(auth_token);
  api::GetStatsRequest req;
  req.topic = topic;
  api::GetStatsResponse resp;
  const Status s = client.Call(api::ApiMethod::kGetStats, tenant, req, &resp);
  if (!s.ok()) {
    std::fprintf(stderr, "stats: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("INGESTED %llu ROLE %u LAG %llu %llu %llu\n",
              static_cast<unsigned long long>(resp.stats.ingested_records),
              static_cast<unsigned>(resp.stats.replica_role),
              static_cast<unsigned long long>(resp.stats.replication_lag_bytes),
              static_cast<unsigned long long>(
                  resp.stats.replication_lag_records),
              static_cast<unsigned long long>(
                  resp.stats.replication_lag_segments));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return Serve(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "loadgen") == 0) {
    return Loadgen(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "promote") == 0) {
    return Promote(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "stats") == 0) {
    return Stats(argc, argv);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s serve [port] [--auth tenant=token,...] [--root DIR] "
               "[--repl-token TOK] [--follower host:port] "
               "[--primary-hint host:port]\n"
               "  %s loadgen <port> [tenants] [connections] [batches] "
               "[batch_size] [--auth token] [--durable]\n"
               "  %s promote <port> --repl-token TOK\n"
               "  %s stats <port> <tenant> <topic> [--auth token]\n",
               argv[0], argv[0], argv[0], argv[0]);
  return 2;
}
