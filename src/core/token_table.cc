#include "core/token_table.h"

#include "core/variable_replacer.h"

namespace bytebrain {

namespace {
// Initial slot count; must be a power of two. Grown at 50% load so linear
// probes stay short.
constexpr size_t kInitialSlots = 64;
}  // namespace

TokenTable::TokenTable() : slots_(kInitialSlots), mask_(kInitialSlots - 1) {
  // The wildcard must get id 0 so matchers can test "wildcard or equal"
  // with a single comparison against the log token's id.
  Intern(kWildcard);
}

uint32_t TokenTable::Intern(std::string_view token) {
  const uint64_t hash = HashOf(token);
  size_t slot = static_cast<size_t>(hash) & mask_;
  while (slots_[slot].id != kUnknownId) {
    const Slot& s = slots_[slot];
    if (s.hash == hash && s.text == token) return s.id;
    slot = (slot + 1) & mask_;
  }
  const uint32_t id = static_cast<uint32_t>(texts_.size());
  texts_.emplace_back(token);
  slots_[slot] = {hash, std::string_view(texts_.back()), id};
  bytes_ += token.size() + sizeof(Slot);
  if (texts_.size() * 2 > slots_.size()) Grow();
  return id;
}

void TokenTable::Grow() {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(old.size() * 2, Slot{});
  mask_ = slots_.size() - 1;
  for (const Slot& s : old) {
    if (s.id == kUnknownId) continue;
    size_t slot = static_cast<size_t>(s.hash) & mask_;
    while (slots_[slot].id != kUnknownId) slot = (slot + 1) & mask_;
    slots_[slot] = s;
  }
}

}  // namespace bytebrain
