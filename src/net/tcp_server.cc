#include "net/tcp_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace bytebrain {
namespace net {

namespace {

/// Worker epoll_wait granularity: bounds how late an idle close or a
/// throttle resume can fire. Short enough for test timeouts, long
/// enough to stay invisible in CPU profiles.
constexpr int kTickMs = 20;
constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void AppendFrame(std::string* out, std::string_view payload) {
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char hdr[4];
  std::memcpy(hdr, &len, 4);
  out->append(hdr, 4);
  out->append(payload);
}

}  // namespace

TcpServer::TcpServer(api::ServiceFrontend* frontend, TcpServerConfig config)
    : frontend_(frontend), config_(std::move(config)) {
  config_.num_workers = std::max(1, config_.num_workers);
}

TcpServer::~TcpServer() { Shutdown(); }

uint64_t TcpServer::NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Status TcpServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address '" +
                                   config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status s = Errno("bind");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  if (::listen(listen_fd_, config_.backlog) != 0) {
    const Status s = Errno("listen");
    ::close(listen_fd_);
    listen_fd_ = -1;
    return s;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  for (int i = 0; i < config_.num_workers; ++i) {
    auto w = std::make_unique<Worker>();
    w->epoll_fd = ::epoll_create1(0);
    w->event_fd = ::eventfd(0, EFD_NONBLOCK);
    if (w->epoll_fd < 0 || w->event_fd < 0) {
      if (w->epoll_fd >= 0) ::close(w->epoll_fd);
      if (w->event_fd >= 0) ::close(w->event_fd);
      ::close(listen_fd_);
      listen_fd_ = -1;
      for (auto& prev : workers_) {
        ::close(prev->epoll_fd);
        ::close(prev->event_fd);
      }
      workers_.clear();
      return Errno("epoll_create1/eventfd");
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = w->event_fd;
    ::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, w->event_fd, &ev);
    workers_.push_back(std::move(w));
  }

  running_.store(true);
  started_ = true;
  for (auto& w : workers_) {
    Worker* raw = w.get();
    w->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpServer::Shutdown() {
  if (!started_) return;
  running_.store(false);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& w : workers_) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(w->event_fd, &one, sizeof(one));
    if (w->thread.joinable()) w->thread.join();
    ::close(w->event_fd);
    ::close(w->epoll_fd);
  }
  workers_.clear();
  started_ = false;
}

TcpServerStats TcpServer::stats() const {
  TcpServerStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_active = connections_active_.load();
  s.frames_dispatched = frames_dispatched_.load();
  s.bytes_read = bytes_read_.load();
  s.bytes_written = bytes_written_.load();
  s.oversized_frame_closes = oversized_frame_closes_.load();
  s.idle_closes = idle_closes_.load();
  s.watermark_pauses = watermark_pauses_.load();
  s.throttle_pauses = throttle_pauses_.load();
  return s;
}

void TcpServer::AcceptLoop() {
  while (running_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kTickMs);
    if (ready <= 0) continue;
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK);
      if (fd < 0) break;  // EAGAIN or a transient error: back to poll
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      connections_accepted_.fetch_add(1);
      connections_active_.fetch_add(1);
      // Round-robin handoff; the worker registers the fd on its own
      // thread (epoll_fd is never touched cross-thread after Start).
      Worker* w = workers_[next_worker_++ % workers_.size()].get();
      {
        std::lock_guard<std::mutex> lock(w->mu);
        w->incoming.push_back(fd);
      }
      const uint64_t wake = 1;
      [[maybe_unused]] ssize_t n = ::write(w->event_fd, &wake, sizeof(wake));
    }
  }
}

void TcpServer::AdoptIncoming(Worker* w) {
  std::vector<int> fds;
  {
    std::lock_guard<std::mutex> lock(w->mu);
    fds.swap(w->incoming);
  }
  const uint64_t now = NowUs();
  for (int fd : fds) {
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->last_activity_us = now;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(w->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      connections_active_.fetch_sub(1);
      continue;
    }
    w->conns.emplace(fd, std::move(conn));
  }
}

void TcpServer::UpdateInterest(Worker* w, Conn* c, bool want_read,
                               bool want_write) {
  if (c->want_read == want_read && c->want_write == want_write) return;
  epoll_event ev{};
  ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  ev.data.fd = c->fd;
  ::epoll_ctl(w->epoll_fd, EPOLL_CTL_MOD, c->fd, &ev);
  c->want_read = want_read;
  c->want_write = want_write;
}

void TcpServer::ReevaluateInterest(Worker* w, Conn* c) {
  const size_t backlog = c->wbuf.size() - c->wpos;
  const bool over_watermark = backlog > config_.write_high_watermark;
  if (over_watermark && !c->paused_watermark) {
    watermark_pauses_.fetch_add(1);
  }
  c->paused_watermark = over_watermark;
  const bool throttled = c->paused_until_us > NowUs();
  UpdateInterest(w, c, /*want_read=*/!over_watermark && !throttled,
                 /*want_write=*/backlog > 0);
}

bool TcpServer::FlushWrites(Conn* c) {
  while (c->wpos < c->wbuf.size()) {
    // MSG_NOSIGNAL: writing to a client that already hung up must fail
    // with EPIPE (we close the conn), not raise SIGPIPE.
    const ssize_t n = ::send(c->fd, c->wbuf.data() + c->wpos,
                             c->wbuf.size() - c->wpos, MSG_NOSIGNAL);
    if (n > 0) {
      c->wpos += static_cast<size_t>(n);
      bytes_written_.fetch_add(static_cast<uint64_t>(n));
      c->last_activity_us = NowUs();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;  // peer went away
  }
  c->wbuf.clear();
  c->wpos = 0;
  return true;
}

bool TcpServer::HandleReadable(Worker* w, Conn* c) {
  bool peer_closed = false;
  while (true) {
    const size_t old_size = c->rbuf.size();
    c->rbuf.resize(old_size + kReadChunk);
    const ssize_t n = ::read(c->fd, c->rbuf.data() + old_size, kReadChunk);
    if (n > 0) {
      c->rbuf.resize(old_size + static_cast<size_t>(n));
      bytes_read_.fetch_add(static_cast<uint64_t>(n));
      c->last_activity_us = NowUs();
      if (static_cast<size_t>(n) < kReadChunk) break;
      continue;
    }
    c->rbuf.resize(old_size);
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    peer_closed = true;  // EOF or hard error
    break;
  }

  // Dispatch every complete frame already in the buffer. Frames that
  // arrived before a pause took effect are served (they were offered
  // load; admission control will answer them) — pausing only stops
  // NEW bytes from being read off the socket.
  while (c->rbuf.size() - c->rpos >= 4) {
    uint32_t len = 0;
    std::memcpy(&len, c->rbuf.data() + c->rpos, 4);
    if (len > config_.max_frame_bytes) {
      oversized_frame_closes_.fetch_add(1);
      CloseConn(w, c);
      return false;
    }
    if (c->rbuf.size() - c->rpos - 4 < len) break;  // partial frame
    const std::string_view frame(c->rbuf.data() + c->rpos + 4, len);
    api::ServiceFrontend::DispatchInfo info;
    const std::string response = frontend_->Dispatch(frame, &info);
    frames_dispatched_.fetch_add(1);
    AppendFrame(&c->wbuf, response);
    c->rpos += 4 + static_cast<size_t>(len);
    if (info.code == Status::Code::kResourceExhausted &&
        info.retry_after_us > 0) {
      // Admission said back off: stop reading this connection for the
      // hinted duration (bounded — a huge hint must not look like a
      // dead connection to the idle guard).
      const uint64_t pause =
          std::min<uint64_t>(info.retry_after_us, config_.max_read_pause_us);
      c->paused_until_us = std::max(c->paused_until_us, NowUs() + pause);
      throttle_pauses_.fetch_add(1);
    }
  }
  // Compact once consumption passes half the buffer — amortized O(1).
  if (c->rpos > 0 && c->rpos * 2 >= c->rbuf.size()) {
    c->rbuf.erase(0, c->rpos);
    c->rpos = 0;
  }

  if (!FlushWrites(c)) {
    CloseConn(w, c);
    return false;
  }
  if (peer_closed) {
    // Responses to already-received frames were flushed above (best
    // effort); a half-closed peer gets no write retries.
    CloseConn(w, c);
    return false;
  }
  ReevaluateInterest(w, c);
  return true;
}

void TcpServer::CloseConn(Worker* w, Conn* c) {
  const int fd = c->fd;
  ::epoll_ctl(w->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  w->conns.erase(fd);
  connections_active_.fetch_sub(1);
}

void TcpServer::SweepConns(Worker* w, uint64_t now_us) {
  std::vector<Conn*> to_close;
  for (auto& [fd, conn] : w->conns) {
    Conn* c = conn.get();
    if (c->paused_until_us != 0 && c->paused_until_us <= now_us) {
      c->paused_until_us = 0;
      // The pause is activity of OUR making: don't let it count toward
      // idleness the client had no way to avoid.
      c->last_activity_us = now_us;
      ReevaluateInterest(w, c);
    }
    if (config_.idle_timeout_ms > 0 &&
        now_us - c->last_activity_us > config_.idle_timeout_ms * 1000) {
      to_close.push_back(c);
    }
  }
  for (Conn* c : to_close) {
    idle_closes_.fetch_add(1);
    CloseConn(w, c);
  }
}

void TcpServer::DrainAndCloseAll(Worker* w) {
  // Graceful drain: responses already computed get `drain_timeout_ms`
  // of blocking flush effort; unread request bytes are dropped.
  const uint64_t deadline = NowUs() + config_.drain_timeout_ms * 1000;
  for (auto& [fd, conn] : w->conns) {
    Conn* c = conn.get();
    while (c->wpos < c->wbuf.size() && NowUs() < deadline) {
      pollfd pfd{c->fd, POLLOUT, 0};
      if (::poll(&pfd, 1, kTickMs) <= 0) continue;
      if (!FlushWrites(c)) break;
    }
    ::close(c->fd);
    connections_active_.fetch_sub(1);
  }
  w->conns.clear();
}

void TcpServer::WorkerLoop(Worker* w) {
  std::vector<epoll_event> events(64);
  while (running_.load()) {
    const int n =
        ::epoll_wait(w->epoll_fd, events.data(),
                     static_cast<int>(events.size()), kTickMs);
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == w->event_fd) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(w->event_fd, &drained, sizeof(drained));
        AdoptIncoming(w);
        continue;
      }
      auto it = w->conns.find(ev.data.fd);
      if (it == w->conns.end()) continue;  // closed earlier this batch
      Conn* c = it->second.get();
      if (ev.events & (EPOLLERR | EPOLLHUP)) {
        CloseConn(w, c);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0) {
        if (!FlushWrites(c)) {
          CloseConn(w, c);
          continue;
        }
        ReevaluateInterest(w, c);
      }
      if ((ev.events & EPOLLIN) != 0) {
        if (!HandleReadable(w, c)) continue;
      }
    }
    AdoptIncoming(w);  // wakeups can coalesce; don't strand a handoff
    SweepConns(w, NowUs());
  }
  DrainAndCloseAll(w);
  // epoll_fd/event_fd are closed by Shutdown() after the join: Shutdown
  // writes the eventfd to wake us, so the exiting thread must not race
  // that write with a close.
}

}  // namespace net
}  // namespace bytebrain
