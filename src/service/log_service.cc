#include "service/log_service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <filesystem>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "core/tokenizer.h"
#include "regex/regex.h"
#include "util/hashing.h"
#include "util/timer.h"

namespace bytebrain {

namespace {
// The scalar-knob subset of ValidateTopicConfig — cheap enough to run
// under the topic's exclusive lock. UpdateConfig uses exactly this
// (a patch cannot change rules or storage), CreateTopic gets it via
// ValidateTopicConfig: one rule set, two entry points.
Status ValidateTopicKnobs(const TopicConfig& config) {
  if (config.train_volume_bytes == 0) {
    return Status::InvalidArgument("train_volume_bytes must be > 0");
  }
  if (config.train_interval_records == 0) {
    return Status::InvalidArgument("train_interval_records must be > 0");
  }
  if (config.initial_train_records == 0) {
    return Status::InvalidArgument("initial_train_records must be > 0");
  }
  if (config.max_train_records == 0) {
    return Status::InvalidArgument("max_train_records must be > 0");
  }
  if (config.num_threads < 1 || config.num_threads > 256) {
    return Status::InvalidArgument("num_threads must be in [1, 256]");
  }
  if (config.num_ingest_shards < 1 || config.num_ingest_shards > 64) {
    return Status::InvalidArgument("num_ingest_shards must be in [1, 64]");
  }
  return Status::OK();
}

// TopicConfig::durability is the single wire-visible durability knob;
// fold it into the StorageConfig the LogTopic actually receives
// (StorageConfig::durability is ignored at this layer otherwise).
StorageConfig EffectiveStorage(const TopicConfig& config) {
  StorageConfig storage = config.storage;
  storage.durability = config.durability;
  return storage;
}
}  // namespace

Status ValidateTopicConfig(const TopicConfig& config) {
  BB_RETURN_IF_ERROR(ValidateTopicKnobs(config));
  if (config.storage.kind == StorageConfig::Kind::kSegmentedDisk &&
      config.storage.directory.empty()) {
    return Status::InvalidArgument(
        "storage.directory is required for kSegmentedDisk storage");
  }
  if (config.storage.kind == StorageConfig::Kind::kSegmentedDisk &&
      config.storage.segment_data_bytes == 0) {
    return Status::InvalidArgument("storage.segment_data_bytes must be > 0");
  }
  if (config.durability != DurabilityMode::kNone &&
      config.storage.kind != StorageConfig::Kind::kSegmentedDisk) {
    return Status::InvalidArgument(
        "durability requires kSegmentedDisk storage");
  }
  for (const auto& [rule_name, pattern] : config.variable_rules) {
    if (rule_name.empty()) {
      return Status::InvalidArgument("variable_rules: rule name is empty");
    }
    auto compiled = Regex::Compile(pattern);
    if (!compiled.ok()) {
      return Status::InvalidArgument("variable_rules['" + rule_name +
                                     "']: " + compiled.status().ToString());
    }
  }
  return Status::OK();
}

ManagedTopic::ManagedTopic(std::string name, TopicConfig config)
    : name_(std::move(name)),
      config_(std::move(config)),
      topic_(name_, EffectiveStorage(config_)),
      parser_(config_.parser_options) {
  const int num_shards = std::clamp(config_.num_ingest_shards, 1, 64);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<IngestShard>());
  }
  shard_count_.store(shards_.size(), std::memory_order_relaxed);
  for (const auto& [rule_name, pattern] : config_.variable_rules) {
    // Invalid tenant rules are skipped rather than poisoning the topic;
    // the compile error is surfaced through the parser's API when added
    // explicitly.
    (void)parser_.AddVariableRule(rule_name, pattern);
  }
  if (topic_.size() > 0) RecoverFromStorage();
}

void ManagedTopic::RecoverFromStorage() {
  // Volume stats are derivable from the recovered store; cycle counters
  // (trainings, adoption counts, ...) restart at zero — they describe
  // this process's lifetime.
  stats_.ingested_records = topic_.size();
  stats_.ingested_bytes = topic_.text_bytes();
  stats_.recovered_records = topic_.size();

  const std::string blob = topic_.recovered_metadata();
  bool restored = false;
  if (!blob.empty()) {
    auto model = TemplateModel::Deserialize(blob);
    // An unreadable model snapshot is not fatal: the records survived,
    // and the initial-training trigger below re-learns from them.
    if (model.ok()) {
      PreparedRetrain prepared;
      prepared.model = std::move(model).value();
      prepared.matcher = std::make_unique<TemplateMatcher>(
          prepared.model, &parser_.replacer());
      parser_.CommitRetrain(std::move(prepared));
      trained_ = true;
      restored = true;
      stats_.num_templates = parser_.model().size();
      stats_.model_bytes = parser_.ModelBytes();
      parser_.model().ExportTo(&internal_);
    }
  }
  if (!restored) {
    // No model: count the whole recovered window toward the initial
    // training so the next ingest trips it.
    records_since_training_ = topic_.size();
    bytes_since_training_ = topic_.text_bytes();
    return;
  }
  // Records appended after the last checkpoint may carry template ids
  // the restored model does not know (temporaries adopted and lost in
  // the crash). Re-match them in arrival order so every stored id
  // resolves — the same reconciliation a training commit applies to
  // mid-training arrivals. Collected first: AssignTemplate must not
  // re-enter the topic from inside its own Scan.
  std::vector<std::pair<uint64_t, std::string>> unknown;
  (void)topic_.Scan(0, topic_.size(),
                    [this, &unknown](uint64_t seq, const LogRecord& rec) {
                      if (rec.template_id == kInvalidTemplateId ||
                          parser_.model().node(rec.template_id) == nullptr) {
                        unknown.emplace_back(seq, rec.text);
                      }
                    });
  for (auto& [seq, text] : unknown) {
    bool adopted = false;
    const TemplateId id = parser_.MatchOrAdopt(text, &adopted);
    if (adopted) {
      ++model_generation_;
      PublishAdoptedLocked(id);
    }
    (void)topic_.AssignTemplate(seq, id);
  }
}

ManagedTopic::~ManagedTopic() {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // An in-flight training still commits (its assignments are not
    // lost), but its commit schedules no follow-up.
    shutting_down_ = true;
  }
  // ThreadPool destruction drains queued tasks and joins the worker; it
  // runs here — not in member destruction — so every other member is
  // still alive while the last training commits.
  train_pool_.reset();
  if (purge_storage_.load()) {
    // DeleteTopic: the records are going away with the topic — remove
    // the segment directory instead of checkpointing into it. Best
    // effort; an undeletable directory must not throw from a destructor.
    if (topic_.persistent_storage() && !config_.storage.directory.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(config_.storage.directory, ec);
    }
    return;
  }
  // A drained final commit may have staged a model checkpoint; flush
  // it so a clean shutdown is recoverable to its last training.
  MaybeFlushStorageCheckpoint();
}

Result<uint64_t> ManagedTopic::Ingest(std::string text,
                                      uint64_t timestamp_us) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto result =
      IngestOneLocked(std::move(text), timestamp_us, kInvalidTemplateId);
  lock.unlock();
  // Group-commit durability wait, deliberately off-lock (the WAL commit
  // thread coalesces concurrent waiters into one fsync; holding mu_
  // here would serialize them). A failure went sticky into
  // storage_status() inside WaitDurable — the ack still stands
  // (fail-soft, same as an append IO error), so the result is ignored.
  (void)topic_.WaitDurable();
  MaybeFlushStorageCheckpoint();
  return result;
}

Result<uint64_t> ManagedTopic::IngestOneLocked(std::string text,
                                               uint64_t timestamp_us,
                                               TemplateId prematched) {
  LogRecord record;
  record.timestamp_us = timestamp_us;
  record.text = std::move(text);

  // Online matching happens before the record lands so the template id
  // is indexed together with the text (§3 "Online Matching"). A single
  // MatchOrAdopt reports adoption directly — the old probe-then-adopt
  // dance matched every record up to three times.
  if (trained_) {
    bool adopted = false;
    if (prematched != kInvalidTemplateId) {
      record.template_id = prematched;
    } else {
      record.template_id = parser_.MatchOrAdopt(record.text, &adopted);
    }
    ++stats_.matched_online;
    if (adopted) {
      // An adopted template (saturation 1.0) can shadow lower-saturation
      // matches for later logs; ids prematched before it existed are no
      // longer authoritative.
      ++model_generation_;
      PublishAdoptedLocked(record.template_id);
    }
  }

  bytes_since_training_ += record.text.size();
  ++records_since_training_;
  stats_.ingested_bytes += record.text.size();
  ++stats_.ingested_records;
  const uint64_t seq = topic_.Append(std::move(record));

  BB_RETURN_IF_ERROR(MaybeTrainLocked());
  return seq;
}

namespace {
// Materializes one batch text into an owned record string: owned
// strings MOVE (the pre-view behaviour, no extra copy), borrowed views
// copy exactly once — the only materialization the view ingest path
// pays.
std::string TakeText(std::string& text) { return std::move(text); }
std::string TakeText(std::string_view text) { return std::string(text); }
}  // namespace

Result<std::vector<uint64_t>> ManagedTopic::IngestBatch(
    std::vector<std::string> texts,
    const std::vector<uint64_t>& timestamps_us) {
  if (!timestamps_us.empty() && timestamps_us.size() != texts.size()) {
    return Status::InvalidArgument(
        "timestamps_us must be empty or match texts in size");
  }
  if (texts.empty()) return std::vector<uint64_t>();
  // Path choice off the atomic mirror: shards_ itself may be resized
  // by a concurrent UpdateConfig and is only readable under mu_.
  if (shard_count_.load(std::memory_order_relaxed) > 1) {
    return IngestBatchSharded(std::move(texts), timestamps_us);
  }
  return IngestBatchUnsharded(std::move(texts), timestamps_us);
}

Result<std::vector<uint64_t>> ManagedTopic::IngestBatch(
    const std::vector<std::string_view>& texts,
    const std::vector<uint64_t>& timestamps_us) {
  if (!timestamps_us.empty() && timestamps_us.size() != texts.size()) {
    return Status::InvalidArgument(
        "timestamps_us must be empty or match texts in size");
  }
  if (texts.empty()) return std::vector<uint64_t>();
  if (shard_count_.load(std::memory_order_relaxed) > 1) {
    return IngestBatchSharded(texts, timestamps_us);
  }
  return IngestBatchUnsharded(texts, timestamps_us);
}

template <typename TextVec>
Result<std::vector<uint64_t>> ManagedTopic::IngestBatchUnsharded(
    TextVec texts, const std::vector<uint64_t>& timestamps_us) {
  std::vector<uint64_t> seqs;
  seqs.reserve(texts.size());

  // Phase 1 (shared lock): shard-parallel matching against the current
  // model. Queries and other batches' match phases proceed concurrently;
  // only the adoption/append section below excludes them.
  std::vector<TemplateId> prematched;
  uint64_t generation = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    generation = model_generation_;
    if (trained_) {
      prematched = parser_.MatchAll(texts, config_.num_threads);
    }
  }

  // Phase 2 (exclusive lock): adopt misses, append, count, train.
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Prematched ids are only valid while the model that produced them is
  // current: any training cycle or adoption — by this batch, a
  // concurrent Ingest, or a concurrent batch — bumps model_generation_
  // and can shadow lower-saturation matches. Affected records fall back
  // to matching under the lock, keeping results identical to a
  // sequential Ingest loop.
  for (size_t i = 0; i < texts.size(); ++i) {
    const bool prematch_valid =
        !prematched.empty() && generation == model_generation_;
    const TemplateId hint =
        prematch_valid ? prematched[i] : kInvalidTemplateId;
    auto seq = IngestOneLocked(TakeText(texts[i]),
                               timestamps_us.empty() ? 0 : timestamps_us[i],
                               hint);
    BB_RETURN_IF_ERROR(seq.status());
    seqs.push_back(seq.value());
  }
  lock.unlock();
  // Off-lock group-commit wait: one amortized fsync covers this batch
  // (and any concurrent ones). Failure degrades sticky, never fails the
  // batch — see Ingest.
  (void)topic_.WaitDurable();
  MaybeFlushStorageCheckpoint();
  return seqs;
}

template <typename TextVec>
Result<std::vector<uint64_t>> ManagedTopic::IngestBatchSharded(
    TextVec texts, const std::vector<uint64_t>& timestamps_us) {
  // Resolved under the shared lock below: a live reshard (UpdateConfig)
  // holds the exclusive lock to swap shards_, so the size read here and
  // every shards_[i] touched by this batch's shard phase are from ONE
  // consistent shard set. The later exclusive section revalidates via
  // the generation (a reshard bumps it) before touching shard state.
  size_t num_shards = 0;

  // Batch-local dedup groups, one per distinct replaced token sequence.
  // Grouping is what the content-hash routing buys: duplicates colocate,
  // so every distinct shape is matched once per batch, not once per
  // record — and a shard adopts each novel shape exactly once.
  struct Group {
    uint32_t rep = 0;       // index of the representative record
    uint32_t members = 0;   // records sharing this shape
    uint64_t bytes = 0;     // raw bytes routed (shard counter)
    uint32_t shard = 0;
    uint64_t hash = 0;      // content hash (dedup + routing + memo key)
    TemplateId resolved = kInvalidTemplateId;  // shared-model id
    TemplateId local = kInvalidTemplateId;     // shard-pending id
  };
  std::vector<Group> groups;
  std::vector<uint32_t> record_group(texts.size(), 0);
  uint64_t gen0 = 0;

  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (!trained_) {
      // No model to route against yet; the bootstrap window takes the
      // plain path (which also runs the initial training at its exact
      // sequential trigger point).
      lock.unlock();
      return IngestBatchUnsharded(std::move(texts), timestamps_us);
    }
    gen0 = model_generation_;
    num_shards = shards_.size();

    // -- Dedup level 1: collapse byte-identical records on a raw-bytes
    // fast hash (an order of magnitude cheaper than any scan; exact
    // duplicate lines are the dominant redundancy in real streams —
    // the paper's Fig. 4). Records with equal 64-bit hashes are treated
    // as identical — the same trust the training path places in hashes
    // when it deduplicates the window (paper Eq. 1; util/hashing.h).
    struct RawGroup {
      uint32_t rep = 0;       // first record with this raw text
      uint32_t members = 0;
      uint64_t bytes = 0;
      uint32_t group = 0;     // content-group index, filled below
    };
    std::vector<RawGroup> raw_groups;
    std::vector<uint32_t> record_raw(texts.size(), 0);
    {
      std::unordered_map<uint64_t, uint32_t> by_raw;
      by_raw.reserve(texts.size());
      for (uint32_t i = 0; i < texts.size(); ++i) {
        const uint64_t h = HashBytesFast(texts[i]);
        auto [it, inserted] =
            by_raw.emplace(h, static_cast<uint32_t>(raw_groups.size()));
        if (inserted) {
          RawGroup rg;
          rg.rep = i;
          raw_groups.push_back(rg);
        }
        RawGroup& rg = raw_groups[it->second];
        ++rg.members;
        rg.bytes += texts[i].size();
        record_raw[i] = it->second;
      }
    }

    // -- Dedup level 2: content hash of the replaced token sequence,
    // computed once per raw-distinct text. This is what both groups
    // variable-value duplicates ("port 80" vs "port 443" → one shape)
    // and routes the shape to its shard.
    const VariableReplacer& replacer = parser_.replacer();
    const bool fused = replacer.fused_fast_path();
    std::vector<uint64_t> content(raw_groups.size());
    ParallelForShards(
        raw_groups.size(), config_.num_threads, [&](size_t begin, size_t end) {
          std::string scratch;
          std::vector<std::string_view> tokens;
          for (size_t i = begin; i < end; ++i) {
            const auto& text = texts[raw_groups[i].rep];
            if (fused) {
              content[i] = HashReplacedTokens(text, &scratch);
              continue;
            }
            // Tenant-rule topics: same hash, two passes.
            replacer.ReplaceInto(text, &scratch);
            tokens.clear();
            TokenizeDefaultInto(scratch, &tokens);
            uint64_t h = kTokenSeqFastSeed;
            for (std::string_view t : tokens) {
              h = CombineTokenHashFast(h, t);
            }
            content[i] = h;
          }
        });

    // -- Content groups: one per distinct shape.
    std::unordered_map<uint64_t, uint32_t> by_hash;
    by_hash.reserve(raw_groups.size());
    for (uint32_t r = 0; r < raw_groups.size(); ++r) {
      RawGroup& rg = raw_groups[r];
      auto [it, inserted] =
          by_hash.emplace(content[r], static_cast<uint32_t>(groups.size()));
      if (inserted) {
        Group g;
        g.rep = rg.rep;
        g.shard = static_cast<uint32_t>(content[r] % num_shards);
        g.hash = content[r];
        groups.push_back(g);
      }
      rg.group = it->second;
      Group& g = groups[it->second];
      g.members += rg.members;
      g.bytes += rg.bytes;
    }
    for (uint32_t i = 0; i < texts.size(); ++i) {
      record_group[i] = raw_groups[record_raw[i]].group;
    }

    // -- Shard phase: each distinct shape is resolved by its shard, in
    // parallel, still only SHARED on mu_: the shard's cross-batch memo
    // first (a hit stamped with the current generation skips the shared
    // matcher entirely — repeat shapes are the steady state), then the
    // shared-model prematch, then the shard's pending matcher, and a
    // genuine miss adopts into the shard-local pending model. Reading
    // model_generation_ here is safe: writes happen only under the
    // exclusive lock.
    std::vector<std::vector<uint32_t>> shard_worklist(num_shards);
    for (uint32_t g = 0; g < groups.size(); ++g) {
      shard_worklist[groups[g].shard].push_back(g);
    }
    ParallelForShards(
        num_shards, config_.num_threads, [&](size_t begin, size_t end) {
          std::string replaced_scratch;
          std::vector<std::string_view> view_scratch;
          for (size_t s = begin; s < end; ++s) {
            if (shard_worklist[s].empty()) continue;
            IngestShard& shard = *shards_[s];
            std::unique_lock<std::shared_mutex> shard_lock(shard.mu);
            for (uint32_t g : shard_worklist[s]) {
              Group& group = groups[g];
              shard.counters.records += group.members;
              shard.counters.bytes += group.bytes;
              const auto memo_it = shard.memo.find(group.hash);
              if (memo_it != shard.memo.end() &&
                  memo_it->second.gen == gen0) {
                // The shape was resolved under THIS generation before:
                // its verdict cannot have changed (any adoption or swap
                // bumps the generation and stales the entry).
                group.resolved = memo_it->second.id;
                ++shard.counters.memo_hits;
                continue;
              }
              const auto& rep = texts[group.rep];
              group.resolved = parser_.Match(rep);
              if (group.resolved != kInvalidTemplateId) {
                shard.memo[group.hash] = {group.resolved, gen0};
                ++shard.counters.matched_shared;
                continue;
              }
              if (!shard.pending.empty()) {
                if (shard.pending_matcher == nullptr) {
                  shard.pending_matcher = std::make_unique<TemplateMatcher>(
                      shard.pending, &parser_.replacer());
                }
                group.local = shard.pending_matcher->Match(rep);
                if (group.local != kInvalidTemplateId) {
                  ++shard.counters.matched_pending;
                  continue;
                }
              }
              // Novel shape: adopt into the shard's pending model with
              // the exact replaced token sequence online adoption would
              // have used (one replace+tokenize per DISTINCT shape).
              replacer.ReplaceInto(rep, &replaced_scratch);
              view_scratch.clear();
              TokenizeDefaultInto(replaced_scratch, &view_scratch);
              std::vector<std::string> tokens(view_scratch.begin(),
                                              view_scratch.end());
              group.local = shard.pending.AdoptTemporary(std::move(tokens));
              if (shard.pending_matcher != nullptr) {
                shard.pending_matcher->Insert(
                    *shard.pending.node(group.local));
              }
              shard.reps.emplace_back(rep);
              shard.gens.push_back(gen0);
              shard.hashes.push_back(group.hash);
              ++shard.counters.adopted;
            }
          }
        });
  }

  // Exclusive section: fold pendings into the shared model, then append
  // every record in input order with its resolved id.
  std::vector<uint64_t> seqs;
  seqs.reserve(texts.size());
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Anything that changed the model since the shared phase — a training
  // swap, a single-record adoption, another batch's fold — invalidates
  // the prematch verdicts AND can have dropped the pending ids (a
  // training reset). Fold first (stale pendings re-match inside), then
  // fall back to per-record matching under the lock, exactly like the
  // unsharded path does on generation mismatch.
  const bool stale = model_generation_ != gen0;
  FoldShardPendingsLocked();
  if (stale) {
    for (size_t i = 0; i < texts.size(); ++i) {
      auto seq = IngestOneLocked(TakeText(texts[i]),
                                 timestamps_us.empty() ? 0 : timestamps_us[i],
                                 kInvalidTemplateId);
      BB_RETURN_IF_ERROR(seq.status());
      seqs.push_back(seq.value());
    }
    lock.unlock();
    (void)topic_.WaitDurable();
    MaybeFlushStorageCheckpoint();
    return seqs;
  }
  // Lean append: every record already has a resolved id, so stats are
  // bulked and the store is appended under ONE lock. The training
  // triggers are evaluated once, after the batch — on the sharded path
  // the batch is the unit of ingest, so the snapshot window simply lands
  // on a batch boundary instead of mid-batch.
  std::vector<LogRecord> records;
  records.reserve(texts.size());
  uint64_t batch_bytes = 0;
  for (size_t i = 0; i < texts.size(); ++i) {
    const Group& g = groups[record_group[i]];
    LogRecord record;
    record.timestamp_us = timestamps_us.empty() ? 0 : timestamps_us[i];
    record.text = TakeText(texts[i]);
    record.template_id = g.resolved != kInvalidTemplateId
                             ? g.resolved
                             : shards_[g.shard]->remap[g.local - 1];
    batch_bytes += record.text.size();
    records.push_back(std::move(record));
  }
  const uint64_t first_seq = topic_.AppendBatch(std::move(records));
  for (size_t i = 0; i < texts.size(); ++i) seqs.push_back(first_seq + i);
  stats_.matched_online += texts.size();
  stats_.ingested_records += texts.size();
  stats_.ingested_bytes += batch_bytes;
  bytes_since_training_ += batch_bytes;
  records_since_training_ += texts.size();
  BB_RETURN_IF_ERROR(MaybeTrainLocked());
  lock.unlock();
  // Off-lock group-commit wait (see Ingest): sharded batches from
  // concurrent callers coalesce into one WAL fsync here.
  (void)topic_.WaitDurable();
  MaybeFlushStorageCheckpoint();
  return seqs;
}

void ManagedTopic::FoldShardPendingsLocked() {
  // One generation snapshot for the whole fold: adoptions below do not
  // re-stale the remaining pendings, because shapes within and across
  // shards are pairwise distinct by construction (hash routing within a
  // batch, pending_matcher dedup across batches). The bump lands once,
  // at the end — staleness checks test equality, not counts.
  const uint64_t fold_gen = model_generation_;
  bool adopted_any = false;
  // Fold cursor per shard before this fold; entries the fold resolves
  // below are memoized afterwards with the POST-fold generation.
  std::vector<size_t> fold_starts(shards_.size(), 0);
  for (size_t si = 0; si < shards_.size(); ++si) {
    IngestShard& shard = *shards_[si];
    std::unique_lock<std::shared_mutex> shard_lock(shard.mu);
    const size_t total = shard.pending.size();
    size_t next = shard.remap.size();
    fold_starts[si] = next;
    if (next >= total) continue;
    ++shard.counters.merges;
    ++stats_.shard_merges;
    while (next < total) {
      if (shard.gens[next] == fold_gen) {
        // The shared model is unchanged since these shapes missed it:
        // adopt the whole same-generation run verbatim.
        size_t run = next;
        while (run < total && shard.gens[run] == fold_gen) ++run;
        std::vector<TemplateId> ids =
            parser_.FoldTemporaries(&shard.pending, next, run - next);
        for (TemplateId id : ids) {
          shard.remap.push_back(id);
          PublishAdoptedLocked(id);
        }
        adopted_any = true;
        next = run;
        continue;
      }
      // Adopted against an older model: its shape may exist by now
      // (another batch's fold, a single-record adoption) — re-match the
      // raw representative, adopting only on a genuine miss.
      bool adopted = false;
      const TemplateId id = parser_.MatchOrAdopt(shard.reps[next], &adopted);
      shard.remap.push_back(id);
      if (adopted) {
        adopted_any = true;
        PublishAdoptedLocked(id);
      }
      ++next;
    }
    // Folded entries' raw representative copies are dead (only the
    // stale-fold path above reads them, never below the cursor) —
    // release the text without disturbing the id-aligned indexing.
    for (size_t i = 0; i < shard.remap.size(); ++i) {
      if (!shard.reps[i].empty()) {
        std::string().swap(shard.reps[i]);
      }
    }
  }
  if (adopted_any) ++model_generation_;
  // Memoize the fold results under the final generation: the next
  // batch that routes one of these shapes here resolves it from the
  // memo without touching the shared matcher. (A fold that adopted
  // nothing left the generation unchanged — the stamps are current
  // either way.)
  for (size_t si = 0; si < shards_.size(); ++si) {
    IngestShard& shard = *shards_[si];
    if (fold_starts[si] >= shard.remap.size()) continue;
    std::unique_lock<std::shared_mutex> shard_lock(shard.mu);
    for (size_t i = fold_starts[si]; i < shard.remap.size(); ++i) {
      shard.memo[shard.hashes[i]] = {shard.remap[i], model_generation_};
    }
  }
}

void ManagedTopic::PublishAdoptedLocked(TemplateId id) {
  ++stats_.adopted_templates;
  // Publish the adopted template's metadata immediately so queries can
  // display it before the next training cycle.
  const TreeNode* node = parser_.model().node(id);
  if (node != nullptr) {
    internal_.Put({node->id, node->parent, node->saturation,
                   parser_.TemplateText(node->id), node->support});
  }
}

void ManagedTopic::ResetShardsLocked() {
  for (std::unique_ptr<IngestShard>& shard_ptr : shards_) {
    IngestShard& shard = *shard_ptr;
    std::unique_lock<std::shared_mutex> shard_lock(shard.mu);
    shard.pending = TemplateModel();
    shard.pending_matcher.reset();
    shard.reps.clear();
    shard.gens.clear();
    shard.hashes.clear();
    shard.remap.clear();
    // Memo entries reference superseded ids AND a superseded
    // generation; dropping them beats letting every lookup miss on the
    // stamp.
    shard.memo.clear();
  }
}

Status ManagedTopic::MaybeTrainLocked() {
  const bool first_training_due =
      !trained_ && records_since_training_ >= config_.initial_train_records;
  const bool retrain_due =
      trained_ && (bytes_since_training_ >= config_.train_volume_bytes ||
                   records_since_training_ >= config_.train_interval_records);
  if (!first_training_due && !retrain_due) return Status::OK();
  if (training_in_flight_) {
    // Coalesce: the running cycle's commit re-checks the (still
    // accumulating) counters and schedules one follow-up for the whole
    // backlog instead of queueing a run per trigger.
    ++stats_.coalesced_triggers;
    return Status::OK();
  }
  const bool synchronous =
      !config_.async_training ||
      (first_training_due && config_.sync_initial_training);
  if (synchronous) return TrainSyncLocked();
  return ScheduleAsyncTrainingLocked();
}

Status ManagedTopic::TrainNow() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Manual training is synchronous by contract: let an in-flight
  // background cycle commit first (its counters/window would otherwise
  // race ours), then train inline.
  train_done_cv_.wait(lock, [this] { return !training_in_flight_; });
  const Status trained = TrainSyncLocked();
  lock.unlock();
  MaybeFlushStorageCheckpoint();
  return trained;
}

void ManagedTopic::WaitForPendingTraining() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  train_done_cv_.wait(lock, [this] { return !training_in_flight_; });
}

Status ManagedTopic::SnapshotTrainingLocked(TrainingRun* run) {
  const uint64_t total = topic_.size();
  run->snapshot_size = 0;
  if (total == 0) return Status::OK();
  const uint64_t window =
      std::min<uint64_t>(total, config_.max_train_records);
  run->window_begin = total - window;
  // The sealed part of the window needs no copy: sealed segments are
  // immutable and the snapshot keeps them mapped, so the TRAINING
  // thread reads them off-lock. Only the unsealed tail (bounded by the
  // active segment, not by max_train_records) is copied here.
  run->tail_begin = run->window_begin;
  run->sealed = topic_.SnapshotSealed();
  if (run->sealed != nullptr) {
    const uint64_t sealed_end = std::min(run->sealed->end_seq(), total);
    if (sealed_end > run->tail_begin) {
      run->tail_begin = sealed_end;
    } else {
      run->sealed.reset();  // window is entirely unsealed
    }
  }
  run->tail.reserve(total - run->tail_begin);
  BB_RETURN_IF_ERROR(topic_.Scan(
      run->tail_begin, total, [run](uint64_t, const LogRecord& rec) {
        run->tail.push_back(rec.text);
      }));
  stats_.last_snapshot_copied_records = total - run->tail_begin;
  stats_.last_snapshot_mapped_records = run->tail_begin - run->window_begin;
  run->base = parser_.SnapshotModel();
  run->num_threads = config_.num_threads;
  run->start_hook = config_.on_async_training_start;
  run->snapshot_size = total;
  // The trigger counters measure "volume since the last training
  // SNAPSHOT" — records arriving while this snapshot trains count toward
  // the NEXT cycle. Triggered and manual (TrainNow) trainings both reset
  // here and nowhere else.
  bytes_since_training_ = 0;
  records_since_training_ = 0;
  training_in_flight_ = true;
  return Status::OK();
}

Result<PreparedRetrain> ManagedTopic::PrepareTrainingGuarded(
    TrainingRun* run, std::vector<TemplateId>* assignments,
    bool invoke_hook) const {
  try {
    // Read ONLY the run's snapshot (hook, thread count): this executes
    // off-lock and config_ may be reassigned by UpdateConfig meanwhile.
    if (invoke_hook && run->start_hook) {
      run->start_hook();
    }
    // Materialize the window as VIEWS: the sealed part points straight
    // into the mmap'd segments (held alive by run->sealed), the tail
    // part into the snapshot's copies — the window itself is never
    // duplicated into RAM, no matter how large max_train_records is.
    std::vector<std::string_view> window;
    window.reserve(run->window_size());
    if (run->sealed != nullptr) {
      const Status scanned = run->sealed->ScanTexts(
          run->window_begin, run->tail_begin,
          [&window](uint64_t, std::string_view text) {
            window.push_back(text);
          });
      if (!scanned.ok()) return scanned;
    }
    for (const std::string& text : run->tail) window.emplace_back(text);
    auto built = parser_.PrepareRetrain(std::move(run->base), window);
    if (built.ok()) {
      *assignments =
          built.value().matcher->MatchAll(window, run->num_threads);
    }
    return built;
  } catch (const std::exception& e) {
    return Status::Aborted(std::string("training threw: ") + e.what());
  } catch (...) {
    return Status::Aborted("training threw");
  }
}

Status ManagedTopic::TrainSyncLocked() {
  TrainingRun run;
  BB_RETURN_IF_ERROR(SnapshotTrainingLocked(&run));
  if (run.snapshot_size == 0) return Status::OK();
  Timer timer;
  std::vector<TemplateId> assignments;
  auto prepared =
      PrepareTrainingGuarded(&run, &assignments, /*invoke_hook=*/false);
  if (!prepared.ok()) {
    training_in_flight_ = false;
    ++stats_.failed_trainings;
    train_done_cv_.notify_all();
    return prepared.status();
  }
  return CommitTrainingLocked(run, std::move(prepared).value(), assignments,
                              timer.ElapsedSeconds());
}

Status ManagedTopic::ScheduleAsyncTrainingLocked() {
  TrainingRun run;
  BB_RETURN_IF_ERROR(SnapshotTrainingLocked(&run));
  if (run.snapshot_size == 0) return Status::OK();
  try {
    if (train_pool_ == nullptr) train_pool_ = std::make_unique<ThreadPool>(1);
    // shared_ptr because std::function requires a copyable callable; the
    // run itself is never actually copied. Schedule (not Submit) as a
    // last-resort backstop: RunAsyncTraining converts every foreseeable
    // throw into failed-training stats itself, and anything that still
    // escapes is captured by the task's future instead of terminating
    // the worker.
    auto shared_run = std::make_shared<TrainingRun>(std::move(run));
    (void)train_pool_->Schedule(
        [this, shared_run] { RunAsyncTraining(std::move(*shared_run)); });
  } catch (const std::exception& e) {
    // Thread creation (pid/rlimit exhaustion) or allocation failed; the
    // snapshot set training_in_flight_, which MUST not leak out set or
    // no training would ever run again and waiters would sleep forever.
    training_in_flight_ = false;
    ++stats_.failed_trainings;
    train_done_cv_.notify_all();
    return Status::ResourceExhausted(
        std::string("cannot schedule background training: ") + e.what());
  }
  return Status::OK();
}

void ManagedTopic::RunAsyncTraining(TrainingRun run) {
  // The timer covers the whole background run — including the
  // instrumentation hook, which tests use to stretch the window — so
  // last_training_seconds is the duration ingest would have stalled for
  // under the synchronous design.
  Timer timer;

  // The expensive part runs with NO topic lock held: ingest keeps
  // matching against the current model, queries keep scanning. The
  // snapshot owns every input (window copies, cloned model); the only
  // shared state touched is the replacer, which is const after setup.
  // A throw from the user hook (or an allocation failure in training)
  // must not escape a detached thread: it becomes a failed training.
  std::vector<TemplateId> assignments;
  auto prepared =
      PrepareTrainingGuarded(&run, &assignments, /*invoke_hook=*/true);
  const double train_seconds = timer.ElapsedSeconds();

  std::unique_lock<std::shared_mutex> lock(mu_);
  try {
    if (!prepared.ok()) {
      // Model untouched; clear the in-flight state the commit would have.
      training_in_flight_ = false;
      ++stats_.failed_trainings;
    } else {
      Timer swap_timer;
      // Once CommitTrainingLocked runs, the swap has happened: the cycle
      // counts as an (async) training regardless of the cannot-really-fail
      // re-assignment statuses inside.
      (void)CommitTrainingLocked(run, std::move(prepared).value(), assignments,
                                 train_seconds);
      stats_.last_swap_seconds = swap_timer.ElapsedSeconds();
      ++stats_.async_trainings;
    }
    // Triggers that fired while we trained were coalesced; if their volume
    // is still due, run ONE follow-up cycle for the whole backlog. The
    // destructor suppresses this so shutdown drains.
    if (!shutting_down_) (void)MaybeTrainLocked();
  } catch (...) {
    // Allocation failure mid-commit or mid-reschedule. Leave the topic
    // schedulable and visibly account the breakage rather than letting
    // the exception vanish into the discarded task future.
    training_in_flight_ = false;
    ++stats_.failed_trainings;
  }
  // Waiters re-check under the lock: if a follow-up was scheduled,
  // training_in_flight_ is set again and they keep sleeping.
  train_done_cv_.notify_all();
  lock.unlock();
  // The commit staged a model checkpoint; its fsyncs belong on this
  // thread, not under the exclusive lock.
  MaybeFlushStorageCheckpoint();
}

Status ManagedTopic::CommitTrainingLocked(
    const TrainingRun& run, PreparedRetrain prepared,
    const std::vector<TemplateId>& assignments, double train_seconds) {
  // Clear the in-flight state first so every return path (including the
  // cannot-really-fail AssignTemplate errors below) leaves the topic
  // able to schedule its next cycle.
  training_in_flight_ = false;
  train_done_cv_.notify_all();

  // (a) O(1) atomic swap: the new model/matcher become THE model.
  parser_.CommitRetrain(std::move(prepared));
  // (b) Generation bump: ids prematched (IngestBatch) or assigned online
  // against the superseded model are no longer authoritative.
  ++model_generation_;
  // Shard pendings are temporaries, and the swap just superseded every
  // temporary: drop them. In-flight sharded batches detect the bump and
  // fall back to matching under the lock, so no pending id dangles.
  ResetShardsLocked();
  trained_ = true;
  ++stats_.trainings;
  stats_.last_training_seconds = train_seconds;
  stats_.model_bytes = parser_.ModelBytes();
  stats_.num_templates = parser_.model().size();

  // From here on the swap is live, so assignment-path IO errors (a
  // disk backend's sealed-segment pwrite can fail) must NOT abort the
  // remaining steps — skipping (d)'s reconciliation or (e)'s metadata
  // export would leave records pointing at the dropped model. Carry
  // the first error to the end instead; affected records keep stale
  // ids until the next training or restart recovery re-matches them.
  Status first_error;
  auto keep_first = [&first_error](Status status) {
    if (!status.ok() && first_error.ok()) first_error = std::move(status);
  };

  // (c) Re-assign the training window (retraining refines earlier
  // assignments) with the match results computed off-lock — one bulk
  // call, one store lock; the backend skips unchanged ids, so the
  // exclusive section does not pay per-record syscalls for a window
  // whose assignments mostly survived the merge.
  keep_first(topic_.AssignTemplateRange(run.window_begin, assignments));

  // (d) Records that arrived while the snapshot trained carry ids from
  // the superseded model (including temporaries the swap just dropped).
  // Re-match them against the new model in arrival order — adopting
  // misses exactly as online matching would have — so no assignment is
  // lost and the end state equals a synchronous training at the trigger
  // point. Matching is ~ns-scale per record, so this section stays far
  // below training cost.
  const uint64_t now = topic_.size();
  if (now > run.snapshot_size) {
    std::vector<std::string> tail;
    tail.reserve(now - run.snapshot_size);
    keep_first(topic_.Scan(
        run.snapshot_size, now,
        [&tail](uint64_t, const LogRecord& rec) { tail.push_back(rec.text); }));
    for (uint64_t i = 0; i < tail.size(); ++i) {
      bool adopted = false;
      const TemplateId id = parser_.MatchOrAdopt(tail[i], &adopted);
      if (adopted) ++stats_.adopted_templates;
      keep_first(topic_.AssignTemplate(run.snapshot_size + i, id));
    }
  }

  // (e) Publish node metadata (§3); overwrites per id, so entries for
  // dropped temporaries are refreshed by their successors.
  parser_.model().ExportTo(&internal_);

  // (f) Durability: STAGE the committed model for a manifest
  // checkpoint. The serialize is an O(model) copy; the expensive part
  // (drain + fsyncs + manifest rename) runs in
  // MaybeFlushStorageCheckpoint once the caller releases the exclusive
  // lock, keeping this commit section O(1)-ish as designed.
  if (topic_.persistent_storage()) {
    pending_model_checkpoint_ = parser_.model().Serialize();
    checkpoint_pending_.store(true, std::memory_order_release);
  }
  return first_error;
}

void ManagedTopic::MaybeFlushStorageCheckpoint() {
  if (!checkpoint_pending_.load(std::memory_order_acquire)) return;
  // checkpoint_mu_ serializes flushers (blobs reach the manifest in
  // staging order) and is always taken BEFORE mu_.
  std::lock_guard<std::mutex> checkpoint_lock(checkpoint_mu_);
  std::string blob;
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    blob.swap(pending_model_checkpoint_);
    checkpoint_pending_.store(false, std::memory_order_release);
  }
  // Best effort — a full disk must not fail the already-committed
  // swap; the sticky storage status reports it.
  if (!blob.empty()) (void)topic_.Checkpoint(blob);
}

Result<std::vector<TemplateGroup>> ManagedTopic::Query(
    double saturation_threshold, uint64_t begin_seq, uint64_t end_seq,
    bool collect_sequences) const {
  QueryPageRequest req;
  req.saturation_threshold = saturation_threshold;
  req.begin_seq = begin_seq;
  req.end_seq = end_seq;
  req.collect_sequences = collect_sequences;
  auto page = QueryGroups(req);
  BB_RETURN_IF_ERROR(page.status());
  return std::move(page.value().groups);
}

Result<QueryPage> ManagedTopic::QueryGroups(const QueryPageRequest& req) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  const uint64_t end = std::min(req.end_seq, topic_.size());
  const uint64_t begin = std::min(req.begin_seq, end);

  // Counts per RAW stored template id, from the storage postings —
  // fully-sealed windows are answered without touching record bytes.
  // A time-range predicate routes through the range variant, which
  // prunes sealed segments via their persisted min/max timestamps and
  // keeps the postings fast path for segments fully inside the window;
  // the defaults delegate to the unfiltered path unchanged.
  std::unordered_map<TemplateId, uint64_t> raw_counts;
  BB_RETURN_IF_ERROR(topic_.TemplateCountsInRange(
      begin, end, req.min_timestamp_us, req.max_timestamp_us, &raw_counts));

  // Resolution at the threshold depends only on the template id, so it
  // runs once per DISTINCT raw id — not once per record as the old
  // scan-grouping path did.
  std::unordered_map<TemplateId, TemplateId> resolved_of;
  std::unordered_map<TemplateId, uint64_t> group_counts;
  resolved_of.reserve(raw_counts.size());
  for (const auto& [raw, n] : raw_counts) {
    TemplateId resolved = raw;
    if (raw != kInvalidTemplateId) {
      auto r = parser_.ResolveAtThreshold(raw, req.saturation_threshold);
      if (r.ok()) resolved = r.value();
    }
    resolved_of.emplace(raw, resolved);
    group_counts[resolved] += n;
  }

  // Global page order: count desc, id asc — over (count, id) pairs
  // only; nothing per page is materialized yet.
  struct Key {
    uint64_t count;
    TemplateId tid;
  };
  const auto before = [](const Key& a, const Key& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.tid < b.tid;
  };
  std::vector<Key> order;
  order.reserve(group_counts.size());
  for (const auto& [tid, n] : group_counts) order.push_back({n, tid});
  std::sort(order.begin(), order.end(), before);

  QueryPage page;
  page.total_groups = order.size();

  // Page start: the resume key seeks directly to the first group after
  // the previous page's last — O(log groups), and exact for a pinned
  // window. The positional offset is the fallback for legacy cursors.
  size_t start;
  if (req.has_resume_key) {
    const Key key{req.resume_count, req.resume_template_id};
    start = static_cast<size_t>(
        std::upper_bound(order.begin(), order.end(), key, before) -
        order.begin());
  } else {
    start = std::min<size_t>(req.offset, order.size());
  }
  size_t stop = order.size();
  if (req.max_groups > 0) {
    stop = std::min(stop, start + static_cast<size_t>(req.max_groups));
  }

  // Materialize ONLY this page's groups (template text + saturation).
  std::unordered_map<TemplateId, size_t> page_index;
  page.groups.reserve(stop - start);
  for (size_t i = start; i < stop; ++i) {
    TemplateGroup g;
    g.template_id = order[i].tid;
    g.count = order[i].count;
    if (g.template_id != kInvalidTemplateId) {
      g.template_text = parser_.MergedWildcardText(g.template_id);
      const TreeNode* node = parser_.model().node(g.template_id);
      if (node != nullptr) g.saturation = node->saturation;
    } else {
      g.template_text = "<unparsed>";
    }
    page_index.emplace(g.template_id, page.groups.size());
    page.groups.push_back(std::move(g));
  }

  // One template-filtered scan collects sequence numbers for JUST this
  // page's groups; sealed segments holding none of their raw ids are
  // skipped via the postings without being mapped.
  if (req.collect_sequences && !page.groups.empty()) {
    std::unordered_set<TemplateId> wanted;
    for (const auto& [raw, resolved] : resolved_of) {
      if (page_index.count(resolved) != 0) wanted.insert(raw);
    }
    BB_RETURN_IF_ERROR(topic_.ScanTemplatesInRange(
        begin, end, req.min_timestamp_us, req.max_timestamp_us, wanted,
        [&](uint64_t seq, TemplateId raw) {
          page.groups[page_index.at(resolved_of.at(raw))]
              .sequence_numbers.push_back(seq);
        }));
  }

  page.has_more = stop < order.size();
  page.next_offset = stop;
  if (!page.groups.empty()) {
    page.last_count = page.groups.back().count;
    page.last_template_id = page.groups.back().template_id;
  }
  return page;
}

Result<std::vector<TemplateAnomaly>> ManagedTopic::DetectAnomalies(
    uint64_t window1_begin, uint64_t window1_end, uint64_t window2_begin,
    uint64_t window2_end, double min_change_ratio) const {
  // Use maximally precise templates for comparison; counts only — the
  // comparison never looks at individual sequence numbers.
  auto before =
      Query(1.0, window1_begin, window1_end, /*collect_sequences=*/false);
  BB_RETURN_IF_ERROR(before.status());
  auto after =
      Query(1.0, window2_begin, window2_end, /*collect_sequences=*/false);
  BB_RETURN_IF_ERROR(after.status());

  std::unordered_map<TemplateId, uint64_t> before_counts;
  for (const auto& g : before.value()) before_counts[g.template_id] = g.count;

  std::vector<TemplateAnomaly> anomalies;
  for (const auto& g : after.value()) {
    const auto it = before_counts.find(g.template_id);
    TemplateAnomaly anomaly;
    anomaly.template_id = g.template_id;
    anomaly.template_text = g.template_text;
    anomaly.count_after = g.count;
    if (it == before_counts.end()) {
      anomaly.is_new = true;
      anomaly.change_ratio = static_cast<double>(g.count);
      anomalies.push_back(std::move(anomaly));
      continue;
    }
    anomaly.count_before = it->second;
    const double ratio = static_cast<double>(g.count) /
                         static_cast<double>(std::max<uint64_t>(1, it->second));
    anomaly.change_ratio = ratio;
    if (ratio >= min_change_ratio || ratio <= 1.0 / min_change_ratio) {
      anomalies.push_back(std::move(anomaly));
    }
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const TemplateAnomaly& a, const TemplateAnomaly& b) {
              if (a.is_new != b.is_new) return a.is_new;
              return a.change_ratio > b.change_ratio;
            });
  return anomalies;
}

TopicStats ManagedTopic::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  TopicStats snapshot = stats_;
  // Derived, not maintained: the in-flight flag is the single source of
  // truth for whether a snapshot is training right now.
  snapshot.pending_trainings = training_in_flight_ ? 1 : 0;
  snapshot.storage_persistent = topic_.persistent_storage();
  snapshot.storage_ok = topic_.storage_status().ok();
  snapshot.storage_sealed_segments = topic_.sealed_segment_count();
  snapshot.storage_mapped_bytes = topic_.mapped_bytes();
  snapshot.storage_cache_hits = topic_.cache_hits();
  snapshot.storage_cache_misses = topic_.cache_misses();
  snapshot.storage_cache_evictions = topic_.cache_evictions();
  snapshot.storage_index_rebuilds = topic_.index_rebuilds();
  snapshot.storage_scan_record_visits = topic_.scan_record_visits();
  snapshot.wal_bytes = topic_.wal_bytes();
  snapshot.wal_group_commits = topic_.wal_group_commits();
  snapshot.wal_fsyncs = topic_.wal_fsyncs();
  snapshot.wal_replayed_records = topic_.wal_replayed_records();
  snapshot.shards.reserve(shards_.size());
  for (const std::unique_ptr<IngestShard>& shard : shards_) {
    // Shard counters are written under the shard's exclusive lock while
    // mu_ is only shared; the shard's shared mode makes this read clean.
    std::shared_lock<std::shared_mutex> shard_lock(shard->mu);
    snapshot.shards.push_back(shard->counters);
  }
  return snapshot;
}

bool ManagedTopic::trained() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return trained_;
}

uint64_t ManagedTopic::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return topic_.size();
}

Result<LogRecord> ManagedTopic::ReadRecord(uint64_t seq) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return topic_.Read(seq);
}

Status ManagedTopic::ScanRecords(
    uint64_t begin_seq, uint64_t end_seq,
    const std::function<void(uint64_t, const LogRecord&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return topic_.Scan(begin_seq, std::min(end_seq, topic_.size()), fn);
}

Status ManagedTopic::StorageStatus() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return topic_.storage_status();
}

Status ManagedTopic::PersistTo(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return topic_.PersistTo(path);
}

bool ManagedTopic::HasTemplate(TemplateId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return parser_.model().node(id) != nullptr;
}

std::vector<std::string> ManagedTopic::TemplateTexts() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<std::string> texts;
  texts.reserve(parser_.model().size());
  for (const TreeNode& node : parser_.model().nodes()) {
    texts.push_back(parser_.TemplateText(node.id));
  }
  return texts;
}

TopicConfig ManagedTopic::config() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return config_;
}

Status ManagedTopic::ReplicationRead(uint64_t segment_index, uint64_t offset,
                                     uint64_t max_bytes,
                                     ReplicationChunk* out) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return topic_.ReplicationRead(segment_index, offset, max_bytes, out);
}

Status ManagedTopic::ReplicationPosition(uint64_t* segment_index,
                                         uint64_t* offset) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return topic_.ReplicationPosition(segment_index, offset);
}

Status ManagedTopic::VerifySealedSegment(uint64_t segment_index,
                                         uint64_t expect_records,
                                         uint64_t expect_checksum) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return topic_.VerifySealedSegment(segment_index, expect_records,
                                    expect_checksum);
}

Status ManagedTopic::ApplyReplicated(std::vector<LogRecord> records) {
  if (records.empty()) return Status::OK();
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (const LogRecord& rec : records) {
    stats_.ingested_bytes += rec.text.size();
  }
  stats_.ingested_records += records.size();
  // No matching, no adoption, no training triggers: the stream carries
  // the primary's template assignments, and applying them through the
  // ordinary append path reproduces the primary's frames byte for byte
  // (same config ⇒ same seal boundaries).
  topic_.AppendBatch(std::move(records));
  lock.unlock();
  (void)topic_.WaitDurable();
  // Surface a sticky storage failure to the replicator: records that
  // only live in this follower's memory are NOT replicated — the
  // follower must stop claiming it holds the primary's bytes.
  return topic_.storage_status();
}

Status ManagedTopic::ApplyReplicatedModel(const std::string& blob) {
  auto model = TemplateModel::Deserialize(blob);
  BB_RETURN_IF_ERROR(model.status());
  std::unique_lock<std::shared_mutex> lock(mu_);
  PreparedRetrain prepared;
  prepared.model = std::move(model).value();
  prepared.matcher = std::make_unique<TemplateMatcher>(prepared.model,
                                                       &parser_.replacer());
  parser_.CommitRetrain(std::move(prepared));
  trained_ = true;
  ++model_generation_;
  stats_.num_templates = parser_.model().size();
  stats_.model_bytes = parser_.ModelBytes();
  parser_.model().ExportTo(&internal_);
  return Status::OK();
}

Status ManagedTopic::SealTail(bool* sealed) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  const uint64_t before = topic_.sealed_segment_count();
  Status s = topic_.SealActive();
  if (s.IsNotSupported()) {
    // Memory-backed topic: no frame representation, nothing to seal.
    if (sealed != nullptr) *sealed = false;
    return Status::OK();
  }
  if (sealed != nullptr) *sealed = topic_.sealed_segment_count() > before;
  return s;
}

void ManagedTopic::SetReplicationLag(uint64_t lag_bytes, uint64_t lag_records,
                                     uint64_t lag_segments) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  stats_.replication_lag_bytes = lag_bytes;
  stats_.replication_lag_records = lag_records;
  stats_.replication_lag_segments = lag_segments;
}

uint64_t ManagedTopic::ModelGeneration() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return model_generation_;
}

std::string ManagedTopic::SerializedModel() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return parser_.model().Serialize();
}

namespace {
// Applies the present fields of `patch` onto `config` (shared by the
// validation dry run and the real apply — one rule set, no drift).
void ApplyPatch(const TopicConfigPatch& patch, TopicConfig* config) {
  if (patch.train_volume_bytes) {
    config->train_volume_bytes = *patch.train_volume_bytes;
  }
  if (patch.train_interval_records) {
    config->train_interval_records = *patch.train_interval_records;
  }
  if (patch.initial_train_records) {
    config->initial_train_records = *patch.initial_train_records;
  }
  if (patch.max_train_records) {
    config->max_train_records = *patch.max_train_records;
  }
  if (patch.num_threads) config->num_threads = *patch.num_threads;
  if (patch.async_training) config->async_training = *patch.async_training;
  if (patch.num_ingest_shards) {
    config->num_ingest_shards = *patch.num_ingest_shards;
  }
}
}  // namespace

Status ManagedTopic::UpdateConfig(const TopicConfigPatch& patch) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Dry-run the patch against the live config and validate the RESULT
  // with the same knob rules CreateTopic enforces — one rule set, and
  // a rejected patch applies nothing. Knobs only: a patch cannot touch
  // rules or storage, so no regex recompilation under the lock.
  TopicConfig patched = config_;
  ApplyPatch(patch, &patched);
  BB_RETURN_IF_ERROR(ValidateTopicKnobs(patched));
  const bool reshard =
      patch.num_ingest_shards &&
      static_cast<size_t>(*patch.num_ingest_shards) != shards_.size();
  config_ = std::move(patched);
  if (reshard) {
    // Live reshard. Fold the current pendings first so every remap an
    // in-flight batch may reference is complete, then rebuild the shard
    // set and bump the generation: any batch that routed against the
    // old shards detects the bump in its exclusive section and falls
    // back to per-record matching — no pending id ever dangles.
    FoldShardPendingsLocked();
    shards_.clear();
    for (int i = 0; i < *patch.num_ingest_shards; ++i) {
      shards_.push_back(std::make_unique<IngestShard>());
    }
    shard_count_.store(shards_.size(), std::memory_order_relaxed);
    ++model_generation_;
  }
  return Status::OK();
}

Result<std::shared_ptr<ManagedTopic>> LogService::CreateTopic(
    const std::string& name, TopicConfig config) {
  // A bad config fails HERE, named, instead of leaking to first use
  // (an uncompilable rule silently skipped, a zero window hanging the
  // first training trigger).
  BB_RETURN_IF_ERROR(ValidateTopicConfig(config));
  // Construction can be expensive for a disk-backed topic (manifest
  // replay, checksum verification of every sealed byte, re-matching) —
  // run it OUTSIDE the catalog lock so other topics' lookups never
  // stall on a recovery. The name is reserved with a null entry first;
  // lookups treat the placeholder as not-yet-existing.
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto [it, inserted] = topics_.emplace(name, nullptr);
    if (!inserted) {
      return Status::AlreadyExists("topic '" + name + "' already exists");
    }
  }
  std::shared_ptr<ManagedTopic> topic;
  try {
    topic = std::make_shared<ManagedTopic>(name, std::move(config));
  } catch (...) {
    // Construction threw (allocation, thread creation): release the
    // reservation or the name would be wedged — AlreadyExists on
    // create, NotFound on lookup — until restart.
    std::lock_guard<std::mutex> lock(mu_);
    topics_.erase(name);
    throw;
  }
  // A topic whose storage failed to open runs on an empty in-memory
  // fallback; for the service API that is a failed creation — the
  // caller asked for durability it would not get.
  const Status storage = topic->StorageStatus();
  std::lock_guard<std::mutex> lock(mu_);
  if (!storage.ok()) {
    topics_.erase(name);
    return storage;
  }
  auto it = topics_.find(name);
  it->second = std::move(topic);
  return it->second;
}

Result<std::shared_ptr<ManagedTopic>> LogService::GetTopic(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  // A null entry is a reservation: the topic is still constructing
  // (recovering) on the creator's thread.
  if (it == topics_.end() || it->second == nullptr) {
    return Status::NotFound("topic '" + name + "' does not exist");
  }
  return it->second;
}

Status LogService::DeleteTopic(const std::string& name, bool purge_storage) {
  std::shared_ptr<ManagedTopic> topic;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = topics_.find(name);
    if (it == topics_.end()) {
      return Status::NotFound("topic '" + name + "' does not exist");
    }
    if (it->second == nullptr) {
      // Creation (possibly a long disk recovery) is still running on
      // another thread; deleting the reservation out from under it
      // would wedge that CreateTopic. Callers retry.
      return Status::Aborted("topic '" + name +
                             "' is still being created; retry");
    }
    topic = std::move(it->second);
    topics_.erase(it);
  }
  // Destruction happens OUTSIDE the catalog lock (it drains the topic's
  // in-flight training). Wait for concurrent holders (in-flight
  // operations that resolved the topic before it left the catalog) so
  // the destructor runs HERE, on this thread, before we return: a
  // late-firing destructor could otherwise remove_all() a storage
  // directory that a subsequent CreateTopic at the same path has
  // already reopened. In-flight operations finish and release, so the
  // wait is short; it is BOUNDED anyway so a caller that retained its
  // own shared_ptr (don't — release handles before deleting) hangs
  // nothing: past the deadline, destruction and the purge defer to the
  // final release, reverting to last-holder semantics.
  if (purge_storage) topic->SetPurgeStorageOnDestroy(true);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (topic.use_count() > 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (topic.use_count() > 1) {
    // A holder outlived the drain window: destruction defers to its
    // final release — and the PURGE is cancelled, because by then a
    // CreateTopic may have reopened the same directory and a late
    // remove_all() would destroy the successor's live data. The
    // directory is left on disk (recoverable / manual cleanup) —
    // strictly safer than a delayed destructive purge.
    topic->SetPurgeStorageOnDestroy(false);
  }
  topic.reset();
  return Status::OK();
}

std::vector<std::string> LogService::TopicNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) {
    if (topic != nullptr) names.push_back(name);
  }
  return names;
}

}  // namespace bytebrain
