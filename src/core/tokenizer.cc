#include "core/tokenizer.h"

#include <array>

namespace bytebrain {

namespace {

// Delimiter-character lookup table for the Listing-1 class
// [\s\'\";=()\[\]{}?@&<>:\n\t\r,].
constexpr std::array<bool, 256> BuildDelimTable() {
  std::array<bool, 256> t{};
  for (char c : {' ', '\t', '\n', '\r', '\f', '\v', '\'', '"', ';', '=', '(',
                 ')', '[', ']', '{', '}', '?', '@', '&', '<', '>', ':', ','}) {
    t[static_cast<uint8_t>(c)] = true;
  }
  return t;
}

constexpr std::array<bool, 256> kIsDelim = BuildDelimTable();

constexpr bool IsSpaceChar(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

// Returns the length of the delimiter unit starting at `i`, or 0 if the
// character belongs to a token.
inline size_t DelimLenAt(std::string_view s, size_t i) {
  const char c = s[i];
  if (c == ':' && i + 2 < s.size() && s[i + 1] == '/' && s[i + 2] == '/') {
    return 3;  // URL protocol separator "://"
  }
  if (kIsDelim[static_cast<uint8_t>(c)]) return 1;
  if (c == '.') {
    // Sentence-ending period: consumed only before whitespace or EOL,
    // preserving periods inside numbers and identifiers.
    if (i + 1 == s.size() || IsSpaceChar(s[i + 1])) return 1;
    return 0;
  }
  if (c == '\\' && i + 1 < s.size() &&
      (s[i + 1] == '"' || s[i + 1] == '\'')) {
    return 2;  // escaped quote
  }
  return 0;
}

}  // namespace

void TokenizeDefaultInto(std::string_view log,
                         std::vector<std::string_view>* out) {
  const size_t n = log.size();
  size_t i = 0;
  size_t token_start = 0;
  bool in_token = false;
  while (i < n) {
    const size_t dl = DelimLenAt(log, i);
    if (dl > 0) {
      if (in_token) {
        out->push_back(log.substr(token_start, i - token_start));
        in_token = false;
      }
      i += dl;
    } else {
      if (!in_token) {
        token_start = i;
        in_token = true;
      }
      ++i;
    }
  }
  if (in_token) out->push_back(log.substr(token_start));
}

std::vector<std::string_view> TokenizeDefault(std::string_view log) {
  std::vector<std::string_view> out;
  TokenizeDefaultInto(log, &out);
  return out;
}

Result<RegexTokenizer> RegexTokenizer::Create(
    std::string_view delimiter_pattern) {
  auto re = Regex::Compile(delimiter_pattern);
  if (!re.ok()) return re.status();
  return RegexTokenizer(std::move(re).value());
}

std::vector<std::string_view> RegexTokenizer::Tokenize(
    std::string_view log) const {
  std::vector<std::string_view> out;
  size_t last = 0;
  for (const RegexMatch& m : regex_.FindAll(log)) {
    if (m.begin > last) out.push_back(log.substr(last, m.begin - last));
    last = m.end;
  }
  if (last < log.size()) out.push_back(log.substr(last));
  return out;
}

}  // namespace bytebrain
