// bbparse: command-line log parsing.
//
// Reads a plain log file (or a Logparser-format structured CSV), trains
// a ByteBrain model, and prints the discovered templates with counts at
// the requested precision — the simplest way to point the library at
// your own logs.
//
//   ./examples/bbparse_cli <file.log> [saturation-threshold] [max-templates]
//   ./examples/bbparse_cli access.log 0.6 40
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "core/parser.h"
#include "datagen/loghub_loader.h"
#include "util/string_util.h"

using namespace bytebrain;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.log|file_structured.csv> "
                 "[saturation-threshold=0.6] [max-templates=50]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const double threshold = argc > 2 ? std::atof(argv[2]) : 0.6;
  const size_t max_templates = argc > 3 ? std::atoll(argv[3]) : 50;

  auto dataset = EndsWith(path, ".csv") ? LoadStructuredCsv(path)
                                        : LoadPlainLog(path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> logs;
  logs.reserve(dataset->logs.size());
  for (auto& l : dataset->logs) logs.push_back(std::move(l.text));
  std::fprintf(stderr, "loaded %zu logs from %s\n", logs.size(),
               path.c_str());

  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  options.trainer.preprocess.num_threads = 2;
  ByteBrainParser parser(options);
  Status status = parser.Train(logs);
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::map<std::string, uint64_t> counts;
  for (const std::string& log : logs) {
    const TemplateId leaf = parser.Match(log);
    if (leaf == kInvalidTemplateId) continue;
    auto resolved = parser.ResolveAtThreshold(leaf, threshold);
    if (!resolved.ok()) continue;
    counts[parser.MergedWildcardText(resolved.value())]++;
  }

  std::vector<std::pair<uint64_t, std::string>> rows;
  rows.reserve(counts.size());
  for (auto& [text, count] : counts) rows.push_back({count, text});
  std::sort(rows.rbegin(), rows.rend());

  std::printf("# %zu templates at saturation >= %.2f (top %zu)\n",
              rows.size(), threshold, std::min(max_templates, rows.size()));
  size_t shown = 0;
  for (const auto& [count, text] : rows) {
    std::printf("%10llu  %s\n", static_cast<unsigned long long>(count),
                text.c_str());
    if (++shown >= max_templates) break;
  }
  return 0;
}
