// Common variable replacement (paper §4.1.2).
//
// Known variables (timestamps, IP addresses, MD5 hashes, UUIDs, ...) are
// replaced with the wildcard token "*" BEFORE tokenization. Early
// replacement shrinks the distinct-log population (amplifying the
// deduplication win, Fig. 4) and removes positions the clusterer would
// otherwise have to learn.
//
// Two execution paths:
//  * built-in recognizers: hand-rolled scanners for the default variable
//    kinds, one pass over the text (the production fast path);
//  * user rules: tenant-supplied patterns run on the linear-time regex
//    engine (the extensible path). The "Unoptimized" ablation variant
//    forces the default kinds through the regex path as well.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "regex/regex.h"
#include "util/status.h"

namespace bytebrain {

/// The wildcard token used in templates and replacements.
inline constexpr std::string_view kWildcard = "*";

/// Replaces default variable kinds and user rules with "*".
class VariableReplacer {
 public:
  /// Replacer with the built-in default rules enabled.
  static VariableReplacer Default();

  /// Replacer with no rules at all (ablation baseline).
  static VariableReplacer None();

  /// Adds a user-defined rule; the pattern must compile on the linear-
  /// time engine (lookaround is rejected with NotSupported).
  Status AddRule(std::string name, std::string_view pattern);

  /// When false, the built-in kinds are matched with equivalent regex
  /// rules instead of the hand-rolled scanner ("Unoptimized" variant).
  void set_use_fast_builtins(bool fast);

  /// Returns `text` with all recognized variables replaced by "*".
  std::string Replace(std::string_view text) const;

  /// Appends the replaced text to `*out` (cleared first); hot-path
  /// variant that reuses the output buffer.
  void ReplaceInto(std::string_view text, std::string* out) const;

  bool has_builtins() const { return builtins_enabled_; }
  size_t num_user_rules() const { return user_rules_.size(); }

  /// True when Replace reduces to the single-scan builtin fast path
  /// (builtins on, no user rules, fast scanners enabled). Only then may
  /// callers use the fused replace+tokenize scan
  /// (TokenizeReplacedIdsInto), which is equivalent to ReplaceInto
  /// followed by TokenizeDefaultInto but touches the text once.
  bool fused_fast_path() const {
    return builtins_enabled_ && fast_builtins_ && user_rules_.empty();
  }

 private:
  VariableReplacer() = default;

  struct UserRule {
    std::string name;
    Regex regex;
  };

  bool builtins_enabled_ = false;
  bool fast_builtins_ = true;
  std::vector<UserRule> user_rules_;
  // Regex forms of the built-in kinds, compiled lazily when the fast path
  // is disabled.
  std::vector<UserRule> builtin_regexes_;
};

/// Length of the built-in variable starting at text[pos], or 0.
/// Exposed for unit tests; recognizes ISO timestamps, clock times,
/// IPv4(:port), UUIDs, MD5 hex digests, and 0x-prefixed hex literals,
/// each with word-ish boundary checks.
size_t MatchBuiltinVariable(std::string_view text, size_t pos);

}  // namespace bytebrain
