// Cloud service end-to-end against the v1 service API: a
// ServiceFrontend serving two tenants with per-tenant admission
// control, topic lifecycle (create / update / delete), batched ingest,
// paginated queries with the precision slider, and one request driven
// over a real TCP socket (net::TcpServer in front of Dispatch) — the
// paper's §3 architecture behind the typed boundary, transport mounted.
//
//   ./examples/cloud_service
#include <cstdio>
#include <string>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "datagen/generator.h"
#include "net/client.h"
#include "net/tcp_server.h"
#include "util/string_util.h"

using namespace bytebrain;

namespace {

std::vector<std::string> Texts(const Dataset& dataset) {
  std::vector<std::string> texts;
  texts.reserve(dataset.logs.size());
  for (const auto& log : dataset.logs) texts.push_back(log.text);
  return texts;
}

bool IngestAll(api::ServiceFrontend& frontend, const std::string& tenant,
               const std::string& topic, std::vector<std::string> texts) {
  api::IngestBatchRequest req;
  req.topic = topic;
  req.texts = std::move(texts);
  api::IngestBatchResponse resp;
  uint64_t retry_after_us = 0;
  const Status status =
      frontend.IngestBatch(tenant, std::move(req), &resp, &retry_after_us);
  if (status.IsResourceExhausted()) {
    std::fprintf(stderr, "admission denied (retry in %lluus): %s\n",
                 static_cast<unsigned long long>(retry_after_us),
                 status.message().c_str());
    return false;
  }
  return status.ok();
}

void PrintTopic(api::ServiceFrontend& frontend, const std::string& tenant,
                const std::string& topic) {
  api::GetStatsRequest stats_req;
  stats_req.topic = topic;
  api::GetStatsResponse stats;
  if (!frontend.GetStats(tenant, stats_req, &stats).ok()) return;
  std::printf("=== %s/%s ===\n", tenant.c_str(), topic.c_str());
  std::printf("  ingested:   %s records / %s\n",
              FormatCount(stats.stats.ingested_records).c_str(),
              FormatBytes(stats.stats.ingested_bytes).c_str());
  std::printf("  trainings:  %llu (last %.3fs)\n",
              static_cast<unsigned long long>(stats.stats.trainings),
              stats.stats.last_training_seconds);
  std::printf("  model:      %zu templates, %s\n", stats.stats.num_templates,
              FormatBytes(stats.stats.model_bytes).c_str());
  std::printf("  adopted:    %llu temporary templates\n",
              static_cast<unsigned long long>(stats.stats.adopted_templates));

  // Cursor-paginated query: 3 groups per page, sequence numbers
  // omitted — the bounded-response shape a dashboard would use.
  api::QueryRequest query;
  query.topic = topic;
  query.saturation_threshold = 0.6;
  query.max_groups = 3;
  query.include_sequence_numbers = false;
  std::printf("  top templates @0.6 (3 per page):\n");
  size_t page = 0;
  while (page < 2) {  // show two pages
    api::QueryResponse result;
    if (!frontend.Query(tenant, query, &result).ok()) break;
    for (const auto& g : result.groups) {
      std::printf("    %8llu  %s\n", static_cast<unsigned long long>(g.count),
                  g.template_text.substr(0, 96).c_str());
    }
    if (result.next_cursor.empty()) break;
    query.cursor = result.next_cursor;
    ++page;
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Per-tenant quotas: plenty for the demo traffic, but real — a
  // runaway tenant is refused with a retry hint instead of queueing.
  api::FrontendConfig policy;
  policy.max_topics_per_tenant = 8;
  policy.max_ingest_records_per_sec = 2'000'000;
  policy.max_inflight_batches = 4;
  api::ServiceFrontend frontend(policy);

  // Two tenants; same topic name — isolated by the tenant namespace.
  TopicConfig config;
  config.initial_train_records = 800;
  config.train_interval_records = 4000;
  config.num_threads = 2;
  api::CreateTopicRequest create;
  create.name = "access-logs";
  create.config = config;
  api::CreateTopicResponse created;
  if (!frontend.CreateTopic("acme", create, &created).ok() ||
      !frontend.CreateTopic("globex", create, &created).ok()) {
    std::fprintf(stderr, "topic creation failed\n");
    return 1;
  }

  DatasetGenerator apache(*FindDatasetSpec("Apache"));
  DatasetGenerator hadoop(*FindDatasetSpec("Hadoop"));
  if (!IngestAll(frontend, "acme", "access-logs",
                 Texts(apache.GenerateLogHub2(0.05))) ||
      !IngestAll(frontend, "globex", "access-logs",
                 Texts(hadoop.GenerateLogHub2(0.02)))) {
    return 1;
  }

  // Live config update: tighten acme's retrain cadence.
  api::UpdateTopicConfigRequest update;
  update.name = "access-logs";
  update.patch.train_interval_records = 2000;
  api::UpdateTopicConfigResponse updated;
  if (!frontend.UpdateTopicConfig("acme", update, &updated).ok()) return 1;

  // A shape never seen in training, pushed through the WIRE path — a
  // real socket this time: mount the frontend behind the epoll TCP
  // server on an ephemeral loopback port, connect a NetClient, and
  // drive the envelope over TCP. The typed API above keeps working on
  // the same frontend while the server runs.
  net::TcpServer server(&frontend);
  if (!server.Start().ok()) {
    std::fprintf(stderr, "server start failed\n");
    return 1;
  }
  net::NetClient client;
  if (!client.Connect("127.0.0.1", server.port()).ok()) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }
  api::IngestRequest novel;
  novel.topic = "access-logs";
  novel.text = "EMERGENCY certificate rotation forced by operator";
  api::IngestResponse novel_resp;
  if (!client.Call(api::ApiMethod::kIngest, "acme", novel, &novel_resp)
           .ok()) {
    std::fprintf(stderr, "wire ingest failed\n");
    return 1;
  }
  std::printf("wire ingest over 127.0.0.1:%u ok (seq %llu)\n\n",
              static_cast<unsigned>(server.port()),
              static_cast<unsigned long long>(novel_resp.seq));
  client.Close();
  server.Shutdown();

  // Each tenant sees exactly its own catalog.
  for (const std::string& tenant :
       {std::string("acme"), std::string("globex")}) {
    api::ListTopicsResponse listing;
    if (!frontend.ListTopics(tenant, {}, &listing).ok()) return 1;
    for (const std::string& topic : listing.names) {
      PrintTopic(frontend, tenant, topic);
    }
  }

  // Lifecycle end: globex deletes its topic (drains training, frees
  // storage); its catalog is empty, acme's untouched.
  api::DeleteTopicRequest drop;
  drop.name = "access-logs";
  api::DeleteTopicResponse dropped;
  if (!frontend.DeleteTopic("globex", drop, &dropped).ok()) return 1;
  api::ListTopicsResponse after;
  if (!frontend.ListTopics("globex", {}, &after).ok()) return 1;
  std::printf("globex topics after delete: %zu; acme still serving\n",
              after.names.size());
  return 0;
}
