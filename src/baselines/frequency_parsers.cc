#include "baselines/frequency_parsers.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/hashing.h"

namespace bytebrain {

namespace {

uint64_t PosWordKey(size_t pos, std::string_view word) {
  return HashCombine(Mix64(pos), HashToken(word));
}

}  // namespace

// ---------------------------------------------------------------------------
// SLCT
// ---------------------------------------------------------------------------

std::vector<uint64_t> SlctParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);
  const uint64_t support = std::max<uint64_t>(
      2, static_cast<uint64_t>(support_fraction_ *
                               static_cast<double>(logs.size())));

  // Pass 1: (position, word) frequencies.
  std::unordered_map<uint64_t, uint32_t> pair_count;
  for (const auto& tokens : token_lists) {
    for (size_t p = 0; p < tokens.size(); ++p) {
      pair_count[PosWordKey(p, tokens[p])]++;
    }
  }

  // Pass 2: cluster candidate per log = its frequent pairs (plus length).
  std::unordered_map<std::string, std::vector<uint32_t>> candidates;
  for (uint32_t i = 0; i < token_lists.size(); ++i) {
    const auto& tokens = token_lists[i];
    std::string key = std::to_string(tokens.size()) + '|';
    for (size_t p = 0; p < tokens.size(); ++p) {
      if (pair_count[PosWordKey(p, tokens[p])] >= support) {
        key += std::to_string(p) + '=' + tokens[p] + '\x1f';
      }
    }
    candidates[key].push_back(i);
  }

  // Pass 3: candidates with enough support are clusters; the rest are
  // outliers, each its own group.
  uint64_t next_id = 1;
  uint64_t outlier_id = 1ULL << 32;
  for (const auto& [key, members] : candidates) {
    if (members.size() >= support) {
      const uint64_t id = next_id++;
      for (uint32_t m : members) out[m] = id;
    } else {
      for (uint32_t m : members) out[m] = outlier_id++;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// LogCluster
// ---------------------------------------------------------------------------

std::vector<uint64_t> LogClusterParser::Parse(
    const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);
  const uint64_t support = std::max<uint64_t>(
      2, static_cast<uint64_t>(support_fraction_ *
                               static_cast<double>(logs.size())));

  // Pass 1: position-independent word frequencies.
  std::unordered_map<std::string, uint32_t> word_count;
  for (const auto& tokens : token_lists) {
    for (const auto& w : tokens) word_count[w]++;
  }

  // Pass 2: key = subsequence of frequent words.
  std::unordered_map<std::string, uint64_t> cluster_ids;
  uint64_t next_id = 1;
  uint64_t outlier_id = 1ULL << 32;
  for (uint32_t i = 0; i < token_lists.size(); ++i) {
    std::string key;
    size_t frequent_words = 0;
    for (const auto& w : token_lists[i]) {
      if (word_count[w] >= support) {
        key += w;
        key += '\x1f';
        ++frequent_words;
      }
    }
    if (frequent_words == 0) {
      out[i] = outlier_id++;  // no frequent words: outlier
      continue;
    }
    auto [it, inserted] = cluster_ids.emplace(std::move(key), next_id);
    if (inserted) ++next_id;
    out[i] = it->second;
  }
  return out;
}

// ---------------------------------------------------------------------------
// LFA
// ---------------------------------------------------------------------------

std::vector<uint64_t> LfaParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);

  // Global word frequencies.
  std::unordered_map<std::string, uint32_t> word_count;
  for (const auto& tokens : token_lists) {
    for (const auto& w : tokens) word_count[w]++;
  }

  std::unordered_map<std::string, uint64_t> cluster_ids;
  uint64_t next_id = 1;
  for (uint32_t i = 0; i < token_lists.size(); ++i) {
    const auto& tokens = token_lists[i];
    // Largest-gap split over the log's token frequencies.
    std::vector<uint32_t> freqs;
    freqs.reserve(tokens.size());
    for (const auto& w : tokens) freqs.push_back(word_count[w]);
    std::vector<uint32_t> sorted = freqs;
    std::sort(sorted.begin(), sorted.end());
    uint32_t cut = 0;
    uint32_t best_gap = 0;
    for (size_t k = 1; k < sorted.size(); ++k) {
      const uint32_t gap = sorted[k] - sorted[k - 1];
      if (gap >= best_gap) {  // >= : prefer the highest split point
        best_gap = gap;
        cut = sorted[k];
      }
    }
    std::string key = std::to_string(tokens.size()) + '|';
    for (size_t p = 0; p < tokens.size(); ++p) {
      if (best_gap > 0 && freqs[p] >= cut) {
        key += tokens[p];
      } else if (best_gap == 0) {
        key += tokens[p];  // uniform frequencies: all constant
      } else {
        key += kBaselineWildcard;
      }
      key += '\x1f';
    }
    auto [it, inserted] = cluster_ids.emplace(std::move(key), next_id);
    if (inserted) ++next_id;
    out[i] = it->second;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Logram
// ---------------------------------------------------------------------------

std::vector<uint64_t> LogramParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);

  // n-gram dictionaries.
  std::unordered_map<uint64_t, uint32_t> grams2;
  std::unordered_map<uint64_t, uint32_t> grams3;
  for (const auto& tokens : token_lists) {
    for (size_t p = 0; p + 1 < tokens.size(); ++p) {
      grams2[HashCombine(HashToken(tokens[p]), HashToken(tokens[p + 1]))]++;
    }
    for (size_t p = 0; p + 2 < tokens.size(); ++p) {
      grams3[HashCombine(
          HashCombine(HashToken(tokens[p]), HashToken(tokens[p + 1])),
          HashToken(tokens[p + 2]))]++;
    }
  }

  std::unordered_map<std::string, uint64_t> cluster_ids;
  uint64_t next_id = 1;
  for (uint32_t i = 0; i < token_lists.size(); ++i) {
    const auto& tokens = token_lists[i];
    std::string key = std::to_string(tokens.size()) + '|';
    for (size_t p = 0; p < tokens.size(); ++p) {
      // A token is suspicious if any 3-gram containing it is rare; it is
      // confirmed variable if its 2-grams are rare too.
      bool rare3 = false;
      for (size_t s = (p >= 2 ? p - 2 : 0); s + 2 < tokens.size() && s <= p;
           ++s) {
        const uint64_t g = HashCombine(
            HashCombine(HashToken(tokens[s]), HashToken(tokens[s + 1])),
            HashToken(tokens[s + 2]));
        if (grams3[g] < t3_) {
          rare3 = true;
          break;
        }
      }
      bool is_variable = false;
      if (rare3 || tokens.size() < 3) {
        uint32_t best2 = 0;
        if (p + 1 < tokens.size()) {
          best2 = std::max(best2, grams2[HashCombine(HashToken(tokens[p]),
                                                     HashToken(tokens[p + 1]))]);
        }
        if (p > 0) {
          best2 = std::max(best2, grams2[HashCombine(HashToken(tokens[p - 1]),
                                                     HashToken(tokens[p]))]);
        }
        is_variable = best2 < t2_;
      }
      key += is_variable ? std::string(kBaselineWildcard) : tokens[p];
      key += '\x1f';
    }
    auto [it, inserted] = cluster_ids.emplace(std::move(key), next_id);
    if (inserted) ++next_id;
    out[i] = it->second;
  }
  return out;
}

}  // namespace bytebrain
