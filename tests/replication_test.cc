// Primary/replica replication battery: follower catch-up to
// byte-identical segment files, model shipping, read-only follower mode
// with redirect hints, explicit promote/demote, replication lag through
// the wire GetStats, resumable cursors across replicator restarts, and
// the fault matrix — follower killed at every storage op index and the
// link dropped mid-segment — all of which must reconverge with zero
// acked loss and no duplicates.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "logstore/fault_injection.h"
#include "replication/replicator.h"
#include "service/log_service.h"

namespace bytebrain {
namespace {

using api::ApiMethod;
using api::CreateTopicRequest;
using api::CreateTopicResponse;
using api::DecodeResponse;
using api::EncodeRequest;
using api::FrontendConfig;
using api::GetStatsRequest;
using api::GetStatsResponse;
using api::IngestBatchRequest;
using api::IngestBatchResponse;
using api::PromoteRequest;
using api::PromoteResponse;
using api::QueryRequest;
using api::QueryResponse;
using api::ServiceFrontend;
using replication::Replicator;
using replication::ReplicatorConfig;

constexpr char kPeerToken[] = "peer-secret";

class TempDir {
 public:
  TempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("bb_repl_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string SshLog(int i) {
  return "Accepted password for user" + std::to_string(i % 5) +
         " from 10.0.0." + std::to_string(i % 9 + 1) + " port " +
         std::to_string(40000 + i) + " ssh2";
}

/// A disk + WAL-group-commit topic config with small segments (so a few
/// dozen records cross several seal boundaries). Training is disabled
/// by default: byte-identity assertions need the primary to never
/// rewrite sealed template ids after frames have shipped.
TopicConfig ReplTopicConfig(uint64_t initial_train_records = 1u << 30) {
  TopicConfig config;
  config.initial_train_records = initial_train_records;
  config.train_interval_records = 1u << 30;
  config.train_volume_bytes = 1ull << 40;
  config.num_threads = 2;
  config.async_training = false;
  config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
  config.storage.segment_data_bytes = 2048;
  config.durability = DurabilityMode::kWalGroupCommit;
  return config;
}

Status CreateReplTopic(ServiceFrontend& frontend, const std::string& tenant,
                       const std::string& name,
                       uint64_t initial_train_records = 1u << 30) {
  CreateTopicRequest req;
  req.name = name;
  req.config = ReplTopicConfig(initial_train_records);
  CreateTopicResponse resp;
  return frontend.CreateTopic(tenant, req, &resp);
}

Status IngestN(ServiceFrontend& frontend, const std::string& tenant,
               const std::string& topic, int n, int base = 0) {
  IngestBatchRequest req;
  req.topic = topic;
  for (int i = 0; i < n; ++i) {
    req.texts.push_back(SshLog(base + i));
    req.timestamps_us.push_back(static_cast<uint64_t>(base + i + 1));
  }
  IngestBatchResponse resp;
  return frontend.IngestBatch(tenant, std::move(req), &resp, nullptr);
}

uint64_t QueryTotal(ServiceFrontend& frontend, const std::string& tenant,
                    const std::string& topic) {
  QueryRequest req;
  req.topic = topic;
  req.include_sequence_numbers = false;
  QueryResponse resp;
  if (!frontend.Query(tenant, req, &resp).ok()) return UINT64_MAX;
  uint64_t total = 0;
  for (const auto& g : resp.groups) total += g.count;
  return total;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Asserts every sealed segment file of the primary topic directory has
/// a byte-identical twin in the follower topic directory.
void ExpectSegmentsByteIdentical(const std::string& primary_dir,
                                 const std::string& follower_dir) {
  size_t compared = 0;
  for (const auto& entry : std::filesystem::directory_iterator(primary_dir)) {
    const std::string fname = entry.path().filename().string();
    if (fname.rfind("seg-", 0) != 0) continue;
    // Skip the primary's ACTIVE (unsealed) segment: the follower's tail
    // holds the same frames but is only compared once sealed.
    const std::string follower_file = follower_dir + "/" + fname;
    if (!std::filesystem::exists(follower_file)) continue;
    const std::string a = ReadFile(entry.path().string());
    const std::string b = ReadFile(follower_file);
    if (a.size() != b.size()) continue;  // active vs partial tail
    EXPECT_EQ(a, b) << "segment file diverged: " << fname;
    ++compared;
  }
  EXPECT_GT(compared, 0u) << "no segment files compared between "
                          << primary_dir << " and " << follower_dir;
}

/// One in-process primary/follower pair wired through a transport
/// function (no TCP): the follower's replicator dispatches straight
/// into the primary frontend.
struct Pair {
  TempDir primary_root;
  TempDir follower_root;
  std::unique_ptr<ServiceFrontend> primary;
  std::unique_ptr<ServiceFrontend> follower;

  Pair() {
    FrontendConfig pconfig;
    pconfig.storage_root = primary_root.path();
    pconfig.replication_token = kPeerToken;
    primary = std::make_unique<ServiceFrontend>(pconfig);

    FrontendConfig fconfig;
    fconfig.start_as_follower = true;
    fconfig.primary_hint = "primary.example:4070";
    fconfig.replication_token = kPeerToken;
    follower = std::make_unique<ServiceFrontend>(fconfig);
  }

  ReplicatorConfig MakeReplicatorConfig() {
    ReplicatorConfig config;
    config.replication_token = kPeerToken;
    config.storage_root = follower_root.path();
    config.transport = [this](std::string_view bytes) {
      return Result<std::string>(primary->Dispatch(bytes));
    };
    return config;
  }

  std::string PrimaryTopicDir(const std::string& tenant,
                              const std::string& topic) const {
    return primary_root.path() + "/" + tenant + "/" + topic;
  }
  std::string FollowerTopicDir(const std::string& tenant,
                               const std::string& topic) const {
    return follower_root.path() + "/" + tenant + "_" + topic;
  }
};

// ---------------------------------------------------------------------
// Catch-up and byte identity
// ---------------------------------------------------------------------

TEST(ReplicationTest, FollowerCatchesUpByteIdentical) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 120).ok());

  Replicator repl(pair.follower.get(), pair.MakeReplicatorConfig());
  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());

  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "events"), 120u);
  EXPECT_EQ(QueryTotal(*pair.primary, "acme", "events"), 120u);
  ExpectSegmentsByteIdentical(pair.PrimaryTopicDir("acme", "events"),
                              pair.FollowerTopicDir("acme", "events"));

  const auto stats = repl.stats();
  EXPECT_EQ(stats.applied_records, 120u);
  EXPECT_GT(stats.segments_sealed, 0u);
  EXPECT_EQ(stats.divergences, 0u);

  // Incremental: new primary records flow on the next pass, applied
  // exactly once (no re-ship of what the cursor already covers).
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 30, 120).ok());
  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "events"), 150u);
  EXPECT_EQ(repl.stats().applied_records, 150u);
}

TEST(ReplicationTest, ModelShipsAndFollowerServesGroupedQueries) {
  Pair pair;
  ASSERT_TRUE(
      CreateReplTopic(*pair.primary, "acme", "events", /*train=*/50).ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 160).ok());

  Replicator repl(pair.follower.get(), pair.MakeReplicatorConfig());
  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());

  // The trained model shipped: the follower groups records by the same
  // templates the primary does, without ever training locally.
  QueryRequest query;
  query.topic = "events";
  query.include_sequence_numbers = false;
  QueryResponse on_primary, on_follower;
  ASSERT_TRUE(pair.primary->Query("acme", query, &on_primary).ok());
  ASSERT_TRUE(pair.follower->Query("acme", query, &on_follower).ok());
  ASSERT_EQ(on_follower.groups.size(), on_primary.groups.size());
  std::map<std::string, uint64_t> primary_counts, follower_counts;
  for (const auto& g : on_primary.groups) {
    primary_counts[g.template_text] += g.count;
  }
  for (const auto& g : on_follower.groups) {
    follower_counts[g.template_text] += g.count;
  }
  EXPECT_EQ(follower_counts, primary_counts);

  GetStatsRequest stats_req;
  stats_req.topic = "events";
  GetStatsResponse stats;
  ASSERT_TRUE(pair.follower->GetStats("acme", stats_req, &stats).ok());
  EXPECT_GT(stats.stats.num_templates, 0u);
}

TEST(ReplicationTest, CatalogReconcilesCreatesAndDeletes) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "alpha").ok());
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "beta").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "alpha", 20).ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "beta", 10).ok());

  Replicator repl(pair.follower.get(), pair.MakeReplicatorConfig());
  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "alpha"), 20u);
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "beta"), 10u);

  // A topic deleted on the primary disappears from the follower on the
  // next pass.
  api::DeleteTopicRequest drop;
  drop.name = "beta";
  api::DeleteTopicResponse dropped;
  ASSERT_TRUE(pair.primary->DeleteTopic("acme", drop, &dropped).ok());
  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "beta"), UINT64_MAX);
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "alpha"), 20u);
}

// ---------------------------------------------------------------------
// Follower mode: read-only with a redirect hint
// ---------------------------------------------------------------------

TEST(ReplicationTest, FollowerRejectsWritesWithRedirectHint) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 30).ok());
  Replicator repl(pair.follower.get(), pair.MakeReplicatorConfig());
  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());

  // Every write-shaped method is refused with kUnavailable + hint.
  const Status ingest = IngestN(*pair.follower, "acme", "events", 1);
  EXPECT_TRUE(ingest.IsUnavailable());
  EXPECT_NE(ingest.message().find("primary.example:4070"), std::string::npos);
  EXPECT_TRUE(CreateReplTopic(*pair.follower, "acme", "other")
                  .IsUnavailable());
  api::DeleteTopicRequest drop;
  drop.name = "events";
  api::DeleteTopicResponse dropped;
  EXPECT_TRUE(pair.follower->DeleteTopic("acme", drop, &dropped)
                  .IsUnavailable());
  api::TrainNowRequest train;
  train.topic = "events";
  api::TrainNowResponse trained;
  EXPECT_TRUE(pair.follower->TrainNow("acme", train, &trained)
                  .IsUnavailable());

  // Reads are served locally.
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "events"), 30u);
  GetStatsRequest stats_req;
  stats_req.topic = "events";
  GetStatsResponse stats;
  ASSERT_TRUE(pair.follower->GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.stats.replica_role, 1u);
}

TEST(ReplicationTest, ReplicationSurfaceRequiresPeerToken) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());

  api::ReplPullRequest pull;  // catalog enumeration
  api::ReplPullResponse pulled;
  // Correct token: served.
  EXPECT_TRUE(
      DecodeResponse(pair.primary->Dispatch(EncodeRequest(
                         ApiMethod::kReplPull, "", pull, 1, kPeerToken)),
                     &pulled)
          .ok());
  // Wrong/missing token: denied with one constant error.
  EXPECT_TRUE(DecodeResponse(pair.primary->Dispatch(EncodeRequest(
                                 ApiMethod::kReplPull, "", pull, 2, "nope")),
                             &pulled)
                  .IsPermissionDenied());
  // A node with no replication_token keeps the surface off entirely.
  ServiceFrontend plain;
  EXPECT_TRUE(
      DecodeResponse(plain.Dispatch(EncodeRequest(ApiMethod::kReplPull, "",
                                                  pull, 3, kPeerToken)),
                     &pulled)
          .IsPermissionDenied());
}

// ---------------------------------------------------------------------
// Promote / demote
// ---------------------------------------------------------------------

TEST(ReplicationTest, PromoteSealsTailAndAcceptsWritesWithZeroAckedLoss) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  // Every one of these 120 records was ACKED under wal_group_commit.
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 120).ok());

  auto repl = std::make_unique<Replicator>(pair.follower.get(),
                                           pair.MakeReplicatorConfig());
  ASSERT_TRUE(repl->WaitCaughtUp(10'000).ok());
  repl.reset();  // the primary "dies": no more pulls

  // Promote over the wire with the peer token.
  PromoteRequest promote;
  PromoteResponse promoted;
  ASSERT_TRUE(
      DecodeResponse(pair.follower->Dispatch(EncodeRequest(
                         ApiMethod::kPromote, "", promote, 1, kPeerToken)),
                     &promoted)
          .ok());
  EXPECT_GE(promoted.sealed_topics, 1u);
  EXPECT_FALSE(pair.follower->is_follower());

  // Zero acked loss: every primary-acked record survived the failover.
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "events"), 120u);

  // The promoted node accepts writes and reports primary role + zero lag.
  ASSERT_TRUE(IngestN(*pair.follower, "acme", "events", 5, 120).ok());
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "events"), 125u);
  GetStatsRequest stats_req;
  stats_req.topic = "events";
  GetStatsResponse stats;
  ASSERT_TRUE(pair.follower->GetStats("acme", stats_req, &stats).ok());
  EXPECT_EQ(stats.stats.replica_role, 0u);
  EXPECT_EQ(stats.stats.replication_lag_bytes, 0u);
  EXPECT_EQ(stats.stats.replication_lag_records, 0u);

  // A second promote is an idempotent no-op.
  PromoteResponse again;
  ASSERT_TRUE(
      DecodeResponse(pair.follower->Dispatch(EncodeRequest(
                         ApiMethod::kPromote, "", promote, 2, kPeerToken)),
                     &again)
          .ok());
  EXPECT_EQ(again.sealed_topics, 0u);

  // Demote flips it back to read-only.
  api::DemoteRequest demote;
  api::DemoteResponse demoted;
  ASSERT_TRUE(
      DecodeResponse(pair.follower->Dispatch(EncodeRequest(
                         ApiMethod::kDemote, "", demote, 3, kPeerToken)),
                     &demoted)
          .ok());
  EXPECT_TRUE(pair.follower->is_follower());
  EXPECT_TRUE(IngestN(*pair.follower, "acme", "events", 1).IsUnavailable());
}

TEST(ReplicationTest, RoleChangeHookFires) {
  FrontendConfig config;
  config.start_as_follower = true;
  config.replication_token = kPeerToken;
  ServiceFrontend node(config);
  std::vector<bool> transitions;
  node.SetRoleChangeHook([&](bool is_follower) {
    transitions.push_back(is_follower);
  });
  ASSERT_TRUE(node.Promote(nullptr).ok());
  ASSERT_TRUE(node.Promote(nullptr).ok());  // idempotent: no second event
  ASSERT_TRUE(node.Demote(nullptr).ok());
  EXPECT_EQ(transitions, (std::vector<bool>{false, true}));
}

// ---------------------------------------------------------------------
// Lag visibility
// ---------------------------------------------------------------------

TEST(ReplicationTest, LagVisibleThroughWireGetStatsBeforeAndAfterCatchUp) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 100).ok());

  // A transport budget cuts the link after a handful of pulls, so the
  // first pass makes partial progress and then fails.
  ReplicatorConfig config = pair.MakeReplicatorConfig();
  config.max_bytes_per_pull = 256;  // a few frames per pull
  std::atomic<int> budget{8};
  auto real_transport = config.transport;
  config.transport = [&, real_transport](std::string_view bytes) {
    if (budget.fetch_sub(1) <= 0) {
      return Result<std::string>(Status::IOError("link down"));
    }
    return real_transport(bytes);
  };
  Replicator repl(pair.follower.get(), config);
  EXPECT_FALSE(repl.RunOnce().ok());
  EXPECT_FALSE(repl.caught_up());

  // Mid-catch-up: the wire stats report a positive lag.
  GetStatsRequest stats_req;
  stats_req.topic = "events";
  GetStatsResponse mid;
  ASSERT_TRUE(DecodeResponse(pair.follower->Dispatch(EncodeRequest(
                                 ApiMethod::kGetStats, "acme", stats_req)),
                             &mid)
                  .ok());
  EXPECT_GT(mid.stats.replication_lag_records, 0u);
  EXPECT_GT(mid.stats.replication_lag_bytes, 0u);
  EXPECT_EQ(mid.stats.replica_role, 1u);

  // Link restored: catch up and the lag drains to zero.
  budget.store(1 << 30);
  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());
  GetStatsResponse after;
  ASSERT_TRUE(DecodeResponse(pair.follower->Dispatch(EncodeRequest(
                                 ApiMethod::kGetStats, "acme", stats_req)),
                             &after)
                  .ok());
  EXPECT_EQ(after.stats.replication_lag_records, 0u);
  EXPECT_EQ(after.stats.replication_lag_bytes, 0u);
  EXPECT_EQ(after.stats.replication_lag_segments, 0u);
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "events"), 100u);
}

// ---------------------------------------------------------------------
// Resumability
// ---------------------------------------------------------------------

TEST(ReplicationTest, ReplicatorRestartResumesFromLocalPosition) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 80).ok());

  {
    Replicator first(pair.follower.get(), pair.MakeReplicatorConfig());
    ASSERT_TRUE(first.WaitCaughtUp(10'000).ok());
    EXPECT_EQ(first.stats().applied_records, 80u);
  }

  // The follower NODE restarts: a fresh frontend over the same storage
  // root, and a fresh replicator with no in-memory cursor.
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 25, 80).ok());
  FrontendConfig fconfig;
  fconfig.start_as_follower = true;
  fconfig.replication_token = kPeerToken;
  auto rebooted = std::make_unique<ServiceFrontend>(fconfig);
  ReplicatorConfig config = pair.MakeReplicatorConfig();
  Replicator second(rebooted.get(), config);
  ASSERT_TRUE(second.WaitCaughtUp(10'000).ok());

  EXPECT_EQ(QueryTotal(*rebooted, "acme", "events"), 105u);
  // Only the delta shipped: the cursor resumed from what local storage
  // recovered, it did not re-pull the first 80 records.
  EXPECT_LE(second.stats().applied_records, 30u);
  ExpectSegmentsByteIdentical(pair.PrimaryTopicDir("acme", "events"),
                              pair.FollowerTopicDir("acme", "events"));
}

// ---------------------------------------------------------------------
// Fault matrix
// ---------------------------------------------------------------------

/// Runs one follower lifetime (one sync pass) against `pair`'s primary
/// with the given file-ops shim. Returns OK only when the pass caught
/// up cleanly; a crashed shim surfaces its storage error here without
/// any retry loop.
Status RunFollowerOnce(Pair& pair, FileOps* ops) {
  FrontendConfig fconfig;
  fconfig.start_as_follower = true;
  fconfig.replication_token = kPeerToken;
  ServiceFrontend follower(fconfig);
  ReplicatorConfig config = pair.MakeReplicatorConfig();
  config.storage_config_hook = [ops](StorageConfig* storage) {
    storage->file_ops = ops;
  };
  Replicator repl(&follower, config);
  Status s = repl.RunOnce();
  if (s.ok() && !repl.caught_up()) s = Status::Aborted("not caught up");
  return s;
}

TEST(ReplicationFaultTest, FollowerCrashAtEveryOpConvergesByteIdentical) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 36).ok());
  const uint64_t primary_total = QueryTotal(*pair.primary, "acme", "events");
  ASSERT_EQ(primary_total, 36u);

  // Calibration pass: a clean follower sync, counting its storage ops.
  uint64_t total_ops = 0;
  {
    FaultInjectingFileOps clean;
    ASSERT_TRUE(RunFollowerOnce(pair, &clean).ok());
    total_ops = clean.ops_seen();
  }
  ASSERT_GT(total_ops, 0u);

  // Kill the follower at EVERY op index; after each crash a rebooted
  // follower over the same directory must reconverge byte-identical
  // with no acked record lost and none duplicated.
  for (uint64_t k = 1; k <= total_ops; ++k) {
    std::filesystem::remove_all(pair.follower_root.path());
    std::filesystem::create_directories(pair.follower_root.path());
    {
      FaultSchedule schedule;
      schedule.crash_at_op = k;
      FaultInjectingFileOps dying(schedule);
      // The crashed lifetime may or may not surface an error (a crash
      // after the last op of the pass converges anyway).
      (void)RunFollowerOnce(pair, &dying);
    }
    {
      FaultInjectingFileOps healthy;
      FrontendConfig fconfig;
      fconfig.start_as_follower = true;
      fconfig.replication_token = kPeerToken;
      ServiceFrontend rebooted(fconfig);
      ReplicatorConfig config = pair.MakeReplicatorConfig();
      config.storage_config_hook = [&healthy](StorageConfig* storage) {
        storage->file_ops = &healthy;
      };
      Replicator repl(&rebooted, config);
      ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok()) << "crash at op " << k;
      ASSERT_EQ(QueryTotal(rebooted, "acme", "events"), primary_total)
          << "crash at op " << k;
      ExpectSegmentsByteIdentical(pair.PrimaryTopicDir("acme", "events"),
                                  pair.FollowerTopicDir("acme", "events"));
    }
  }
}

TEST(ReplicationFaultTest, LinkDropMidSegmentResumesWithoutDuplicates) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 60).ok());

  // Calibration: how many pulls does a clean catch-up take at this
  // chunk size?
  uint64_t total_calls = 0;
  {
    TempDir scratch;
    FrontendConfig fconfig;
    fconfig.start_as_follower = true;
    ServiceFrontend follower(fconfig);
    ReplicatorConfig config = pair.MakeReplicatorConfig();
    config.storage_root = scratch.path();
    config.max_bytes_per_pull = 256;
    std::atomic<uint64_t> calls{0};
    auto real = config.transport;
    config.transport = [&, real](std::string_view bytes) {
      calls.fetch_add(1);
      return real(bytes);
    };
    Replicator repl(&follower, config);
    ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());
    total_calls = calls.load();
  }
  ASSERT_GT(total_calls, 4u);

  // Drop the link at every call index — including mid-segment — and let
  // the same replicator retry: the {segment, offset} cursor must resume
  // exactly, with no record lost or applied twice.
  for (uint64_t k = 1; k <= total_calls; ++k) {
    std::filesystem::remove_all(pair.follower_root.path());
    std::filesystem::create_directories(pair.follower_root.path());
    FrontendConfig fconfig;
    fconfig.start_as_follower = true;
    fconfig.replication_token = kPeerToken;
    ServiceFrontend follower(fconfig);
    ReplicatorConfig config = pair.MakeReplicatorConfig();
    config.max_bytes_per_pull = 256;
    std::atomic<uint64_t> calls{0};
    std::atomic<bool> dropped{false};
    auto real = config.transport;
    config.transport = [&, real](std::string_view bytes) {
      if (calls.fetch_add(1) + 1 == k && !dropped.exchange(true)) {
        return Result<std::string>(Status::IOError("link reset"));
      }
      return real(bytes);
    };
    Replicator repl(&follower, config);
    const Status first = repl.RunOnce();
    if (!first.ok()) {
      ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok()) << "link drop at call " << k;
    } else {
      ASSERT_TRUE(repl.caught_up());
    }
    ASSERT_EQ(QueryTotal(follower, "acme", "events"), 60u)
        << "link drop at call " << k;
    ExpectSegmentsByteIdentical(pair.PrimaryTopicDir("acme", "events"),
                                pair.FollowerTopicDir("acme", "events"));
  }
}

TEST(ReplicationFaultTest, DivergentFollowerResyncsFromScratch) {
  Pair pair;
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 40).ok());

  Replicator repl(pair.follower.get(), pair.MakeReplicatorConfig());
  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());

  // The primary is rebuilt from scratch (shorter history): the
  // follower's cursor now points past the primary's tail — a
  // divergence. The follower must drop its copy and re-sync.
  api::DeleteTopicRequest drop;
  drop.name = "events";
  api::DeleteTopicResponse dropped;
  ASSERT_TRUE(pair.primary->DeleteTopic("acme", drop, &dropped).ok());
  ASSERT_TRUE(CreateReplTopic(*pair.primary, "acme", "events").ok());
  ASSERT_TRUE(IngestN(*pair.primary, "acme", "events", 12).ok());

  ASSERT_TRUE(repl.WaitCaughtUp(10'000).ok());
  EXPECT_EQ(QueryTotal(*pair.follower, "acme", "events"), 12u);
  EXPECT_GE(repl.stats().divergences, 1u);
}

}  // namespace
}  // namespace bytebrain
