// Fig. 11: grouping accuracy as a function of the saturation threshold.
// The paper's claim: accuracy is stable across a wide threshold range
// (robustness), while the threshold still controls precision.
#include "bench/bench_common.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Fig. 11 — GA vs saturation threshold", "paper Fig. 11");

  const double thresholds[] = {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9};
  const char* panel[] = {"Apache", "BGL",  "HDFS",      "HPC",
                         "Hadoop", "HealthApp", "OpenSSH", "Zookeeper"};

  std::vector<std::string> headers = {"Dataset", "Corpus"};
  std::vector<int> widths = {12, 12};
  for (double t : thresholds) {
    headers.push_back(TablePrinter::Fmt(t, 1));
    widths.push_back(7);
  }
  TablePrinter table(headers, widths);
  table.PrintHeader();

  for (const char* name : panel) {
    const DatasetSpec* spec = FindDatasetSpec(name);
    DatasetGenerator generator(*spec);
    for (const bool large : {false, true}) {
      if (large && spec->loghub2_logs == 0) continue;
      Dataset ds = large ? ScaledLogHub2(*spec) : generator.GenerateLogHub();
      std::vector<std::string> row = {name, large ? "LogHub-2.0" : "LogHub"};
      for (double t : thresholds) {
        ByteBrainAdapterConfig config = ByteBrainDefaultConfig();
        config.report_threshold = t;
        ByteBrainAdapter adapter(config);
        RunResult r = RunOn(&adapter, ds);
        row.push_back(TablePrinter::Fmt(r.grouping_accuracy));
      }
      table.PrintRow(row);
    }
  }
  std::printf(
      "\nShape check (paper Fig. 11): GA stays within a narrow band across\n"
      "most of the 0.1-0.9 range on the majority of datasets.\n");
  return 0;
}
