#include "baselines/spell.h"

#include <algorithm>

namespace bytebrain {

namespace {

// Length of the LCS between a (wildcards skipped) and b.
size_t LcsLength(const std::vector<std::string>& a,
                 const std::vector<std::string>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1, 0);
  std::vector<size_t> cur(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    const bool wild = a[i - 1] == kBaselineWildcard;
    for (size_t j = 1; j <= m; ++j) {
      if (!wild && a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
      } else {
        cur[j] = std::max(prev[j], cur[j - 1]);
      }
    }
    std::swap(prev, cur);
  }
  return prev[m];
}

// New template: tokens of `b` kept where they participate in the LCS with
// `a`, wildcard elsewhere (consecutive wildcards collapsed).
std::vector<std::string> LcsTemplate(const std::vector<std::string>& a,
                                     const std::vector<std::string>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<std::vector<uint32_t>> dp(n + 1,
                                        std::vector<uint32_t>(m + 1, 0));
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      if (a[i - 1] != kBaselineWildcard && a[i - 1] == b[j - 1]) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i - 1][j], dp[i][j - 1]);
      }
    }
  }
  // Backtrack, marking the b-positions on the LCS.
  std::vector<bool> keep(m, false);
  size_t i = n;
  size_t j = m;
  while (i > 0 && j > 0) {
    if (a[i - 1] != kBaselineWildcard && a[i - 1] == b[j - 1]) {
      keep[j - 1] = true;
      --i;
      --j;
    } else if (dp[i - 1][j] >= dp[i][j - 1]) {
      --i;
    } else {
      --j;
    }
  }
  std::vector<std::string> out;
  bool last_wild = false;
  for (size_t k = 0; k < m; ++k) {
    if (keep[k]) {
      out.push_back(b[k]);
      last_wild = false;
    } else if (!last_wild) {
      out.emplace_back(kBaselineWildcard);
      last_wild = true;
    }
  }
  return out;
}

}  // namespace

std::vector<uint64_t> SpellParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);
  std::vector<uint32_t> hits;
  for (size_t li = 0; li < token_lists.size(); ++li) {
    const auto& tokens = token_lists[li];
    const std::string key = JoinKey(tokens);
    auto cached = exact_cache_.find(key);
    if (cached != exact_cache_.end()) {
      out[li] = objects_[cached->second].id;
      continue;
    }

    // Candidate objects sharing enough tokens (prefilter).
    std::unordered_map<uint32_t, uint32_t> candidate_hits;
    for (const auto& tok : tokens) {
      auto it = inverted_.find(tok);
      if (it == inverted_.end()) continue;
      for (uint32_t obj : it->second) candidate_hits[obj]++;
    }
    const size_t need =
        static_cast<size_t>(tau_ * static_cast<double>(tokens.size()));
    uint32_t best_obj = UINT32_MAX;
    size_t best_lcs = 0;
    for (const auto& [obj, hit_count] : candidate_hits) {
      if (hit_count < need) continue;
      const size_t lcs = LcsLength(objects_[obj].template_tokens, tokens);
      if (lcs > best_lcs) {
        best_lcs = lcs;
        best_obj = obj;
      }
    }

    if (best_obj != UINT32_MAX &&
        static_cast<double>(best_lcs) >=
            tau_ * static_cast<double>(tokens.size())) {
      LcsObject& obj = objects_[best_obj];
      auto merged = LcsTemplate(obj.template_tokens, tokens);
      if (merged != obj.template_tokens) {
        obj.template_tokens = std::move(merged);
        // Template changed: refresh the inverted index for this object.
        for (const auto& tok : obj.template_tokens) {
          if (tok == kBaselineWildcard) continue;
          auto& list = inverted_[tok];
          if (list.empty() || list.back() != best_obj) {
            list.push_back(best_obj);
          }
        }
      }
      out[li] = obj.id;
      exact_cache_[key] = best_obj;
      continue;
    }

    // New object.
    const uint32_t idx = static_cast<uint32_t>(objects_.size());
    objects_.push_back({tokens, next_id_++});
    for (const auto& tok : tokens) {
      auto& list = inverted_[tok];
      if (list.empty() || list.back() != idx) list.push_back(idx);
    }
    exact_cache_[key] = idx;
    out[li] = objects_[idx].id;
  }
  return out;
}

}  // namespace bytebrain
