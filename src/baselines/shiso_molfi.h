// Incremental-tree and search-based baselines:
//
//  * SHISO (Mizutani, SCC 2013): incremental mining with a structured
//    tree. Each node holds a format; new logs descend toward the most
//    similar child (similarity over per-character class vectors), merging
//    into a node when close enough, else inserted as a new child subject
//    to a branching limit.
//  * MoLFI (Messaoudi et al., ICPC 2018): multi-objective search over
//    per-length template sets. Implemented as a bounded evolutionary
//    search (mutation over wildcard masks, frequency-coverage vs
//    specificity objectives) — a documented simplification of NSGA-II.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

class ShisoParser : public LogParserInterface {
 public:
  explicit ShisoParser(double merge_threshold = 0.1, int max_children = 6)
      : merge_threshold_(merge_threshold), max_children_(max_children) {}

  std::string name() const override { return "SHISO"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  struct Node {
    std::vector<std::string> format;
    uint64_t id;
    std::vector<std::unique_ptr<Node>> children;
  };

  double merge_threshold_;
  int max_children_;
  std::vector<std::unique_ptr<Node>> roots_;
  uint64_t next_id_ = 1;
};

class MolfiParser : public LogParserInterface {
 public:
  explicit MolfiParser(int generations = 12, int population = 8,
                       uint64_t seed = 23)
      : generations_(generations), population_(population), seed_(seed) {}

  std::string name() const override { return "MoLFI"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  int generations_;
  int population_;
  uint64_t seed_;
};

}  // namespace bytebrain
