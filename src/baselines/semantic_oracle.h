// SemanticOracle: the stand-in for the semantic / LLM baselines
// (UniParser, LogPPT, LILAC) which cannot run offline (no GPU, no
// pretrained weights). See DESIGN.md §3 "Substitutions".
//
// In the paper's evaluation these methods matter as HIGH-ACCURACY,
// LOW-THROUGHPUT anchors: accuracy 0.9-1.0 with throughput in the
// 10^2-10^4 logs/s band (LILAC's adaptive parsing cache makes it the
// fastest of the three). The oracle reproduces exactly that trade-off:
//
//  * accuracy: starts from the generator's ground-truth labels, then
//    corrupts a configurable fraction of template groups (splits them)
//    to land in the published accuracy band;
//  * cost: per-log "inference" busy-work calibrated in hash rounds, with
//    an optional LILAC-style template cache under which only the first
//    log of a template pays the full inference cost.
#pragma once

#include <string>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

struct SemanticOracleConfig {
  std::string display_name = "LILAC";
  /// Fraction of ground-truth templates split into two predicted groups.
  double corrupt_fraction = 0.05;
  /// Busy-work hash rounds per inference call (~the model forward pass).
  uint64_t inference_rounds = 200000;
  /// With a cache, repeat templates skip inference (LILAC). Without it,
  /// every log pays (UniParser / LogPPT).
  bool template_cache = true;
  /// Cheap per-log cost even on cache hits (tokenize + lookup).
  uint64_t hit_rounds = 300;
  uint64_t seed = 7;
};

class SemanticOracleParser : public LogParserInterface {
 public:
  /// `gt_labels` are the generator's ground-truth template ids for the
  /// batch that will be passed to Parse (same order).
  SemanticOracleParser(SemanticOracleConfig config,
                       std::vector<uint32_t> gt_labels)
      : config_(std::move(config)), gt_labels_(std::move(gt_labels)) {}

  std::string name() const override { return config_.display_name; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  SemanticOracleConfig config_;
  std::vector<uint32_t> gt_labels_;
};

/// Preset configs matching the paper's reported bands.
SemanticOracleConfig LilacConfig();      // cached LLM, acc ~0.93
SemanticOracleConfig UniParserConfig();  // per-log DL model, acc ~0.99 (small) / ~0.66 (large)
SemanticOracleConfig LogPptConfig();     // prompt-tuned PLM, slowest

}  // namespace bytebrain
