// Tests for the Listing-1 tokenizer: hand-rolled scanner semantics plus a
// differential check against the regex-engine tokenizer.
#include <gtest/gtest.h>

#include "core/tokenizer.h"
#include "datagen/generator.h"
#include "util/rng.h"

namespace bytebrain {
namespace {

std::vector<std::string> Tok(std::string_view s) {
  std::vector<std::string> out;
  for (auto v : TokenizeDefault(s)) out.emplace_back(v);
  return out;
}

TEST(TokenizerTest, SplitsOnWhitespace) {
  EXPECT_EQ(Tok("a b  c"), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(TokenizerTest, SplitsOnEqualsAndComma) {
  EXPECT_EQ(Tok("lock=2337, flg=0x0"),
            (std::vector<std::string>{"lock", "2337", "flg", "0x0"}));
}

TEST(TokenizerTest, SplitsOnBracketsBracesParens) {
  EXPECT_EQ(Tok("f(x) [y] {z}"),
            (std::vector<std::string>{"f", "x", "y", "z"}));
}

TEST(TokenizerTest, UrlProtocolSeparator) {
  // "://" is one delimiter; the path slash is kept inside the token.
  EXPECT_EQ(Tok("http://host/path"),
            (std::vector<std::string>{"http", "host/path"}));
}

TEST(TokenizerTest, ColonIsDelimiter) {
  EXPECT_EQ(Tok("key:value"), (std::vector<std::string>{"key", "value"}));
}

TEST(TokenizerTest, PeriodBeforeSpaceSplitsButNumericPeriodSurvives) {
  EXPECT_EQ(Tok("done. next"), (std::vector<std::string>{"done", "next"}));
  EXPECT_EQ(Tok("pi is 3.14"), (std::vector<std::string>{"pi", "is", "3.14"}));
  EXPECT_EQ(Tok("10.0.4.18"), (std::vector<std::string>{"10.0.4.18"}));
}

TEST(TokenizerTest, TrailingPeriodAtEndOfLine) {
  EXPECT_EQ(Tok("finished."), (std::vector<std::string>{"finished"}));
}

TEST(TokenizerTest, QuotesAreDelimiters) {
  EXPECT_EQ(Tok("tag=\"View Lock\""),
            (std::vector<std::string>{"tag", "View", "Lock"}));
  EXPECT_EQ(Tok("it's"), (std::vector<std::string>{"it", "s"}));
}

TEST(TokenizerTest, EscapedQuotes) {
  EXPECT_EQ(Tok(R"(say \"hi\" now)"),
            (std::vector<std::string>{"say", "hi", "now"}));
}

TEST(TokenizerTest, AngleAndAtAndAmp) {
  EXPECT_EQ(Tok("a<b>c@d&e?f"),
            (std::vector<std::string>{"a", "b", "c", "d", "e", "f"}));
}

TEST(TokenizerTest, EmptyAndAllDelims) {
  EXPECT_TRUE(Tok("").empty());
  EXPECT_TRUE(Tok("  ,;=  ").empty());
}

TEST(TokenizerTest, PreservesDashesSlashesUnderscores) {
  EXPECT_EQ(Tok("blk_-123 /var/log a-b"),
            (std::vector<std::string>{"blk_-123", "/var/log", "a-b"}));
}

TEST(TokenizerTest, PaperFigure1Example) {
  auto toks = Tok("release:lock=2337, flg=0x0, tag=\"View Lock\", "
                  "name=systemui, ws=null");
  EXPECT_EQ(toks,
            (std::vector<std::string>{"release", "lock", "2337", "flg", "0x0",
                                      "tag", "View", "Lock", "name",
                                      "systemui", "ws", "null"}));
}

TEST(TokenizerTest, IntoVariantMatchesAndAppendsAfterClear) {
  std::vector<std::string_view> buf;
  TokenizeDefaultInto("a b", &buf);
  ASSERT_EQ(buf.size(), 2u);
  buf.clear();
  TokenizeDefaultInto("c", &buf);
  ASSERT_EQ(buf.size(), 1u);
  EXPECT_EQ(buf[0], "c");
}

TEST(RegexTokenizerTest, CustomDelimiterRule) {
  auto tok = RegexTokenizer::Create("[|]+");
  ASSERT_TRUE(tok.ok());
  auto parts = tok->Tokenize("a|b||c");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(RegexTokenizerTest, RejectsLookaround) {
  EXPECT_TRUE(
      RegexTokenizer::Create("(?=x)").status().IsNotSupported());
}

TEST(RegexTokenizerTest, DifferentialAgainstScanner) {
  // The default scanner must agree with the engine running the paper's
  // Listing-1 pattern on generated corpora.
  auto tok = RegexTokenizer::Create(kDefaultTokenizerPattern);
  ASSERT_TRUE(tok.ok()) << tok.status().ToString();
  DatasetGenerator gen(*FindDatasetSpec("Linux"));
  GenOptions opts;
  opts.num_logs = 200;
  opts.num_templates = 30;
  Dataset ds = gen.Generate(opts);
  for (const auto& log : ds.logs) {
    auto fast = TokenizeDefault(log.text);
    auto slow = tok->Tokenize(log.text);
    ASSERT_EQ(fast.size(), slow.size()) << log.text;
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i], slow[i]) << log.text;
    }
  }
}

TEST(RegexTokenizerTest, DifferentialOnHandWrittenEdgeCases) {
  auto tok = RegexTokenizer::Create(kDefaultTokenizerPattern);
  ASSERT_TRUE(tok.ok());
  const char* cases[] = {
      "a=b,c;d:e",
      "http://x.y/z?q=1&r=2",
      "end. New sentence. 3.14 stays",
      "quoted \"x y\" and 'z'",
      "nested (a [b {c} d] e)",
      "trailing.",
      "a\tb\nc\rd",
      "<tag> @user &amp",
  };
  for (const char* c : cases) {
    auto fast = TokenizeDefault(c);
    auto slow = tok->Tokenize(c);
    ASSERT_EQ(fast.size(), slow.size()) << c;
    for (size_t i = 0; i < fast.size(); ++i) EXPECT_EQ(fast[i], slow[i]) << c;
  }
}

}  // namespace
}  // namespace bytebrain
