#include "service/log_service.h"

#include <algorithm>
#include <exception>
#include <unordered_map>

#include "util/timer.h"

namespace bytebrain {

ManagedTopic::ManagedTopic(std::string name, TopicConfig config)
    : name_(std::move(name)),
      config_(std::move(config)),
      topic_(name_),
      parser_(config_.parser_options) {
  for (const auto& [rule_name, pattern] : config_.variable_rules) {
    // Invalid tenant rules are skipped rather than poisoning the topic;
    // the compile error is surfaced through the parser's API when added
    // explicitly.
    (void)parser_.AddVariableRule(rule_name, pattern);
  }
}

ManagedTopic::~ManagedTopic() {
  {
    std::unique_lock<std::shared_mutex> lock(mu_);
    // An in-flight training still commits (its assignments are not
    // lost), but its commit schedules no follow-up.
    shutting_down_ = true;
  }
  // ThreadPool destruction drains queued tasks and joins the worker; it
  // runs here — not in member destruction — so every other member is
  // still alive while the last training commits.
  train_pool_.reset();
}

Result<uint64_t> ManagedTopic::Ingest(std::string text,
                                      uint64_t timestamp_us) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return IngestOneLocked(std::move(text), timestamp_us, kInvalidTemplateId);
}

Result<uint64_t> ManagedTopic::IngestOneLocked(std::string text,
                                               uint64_t timestamp_us,
                                               TemplateId prematched) {
  LogRecord record;
  record.timestamp_us = timestamp_us;
  record.text = std::move(text);

  // Online matching happens before the record lands so the template id
  // is indexed together with the text (§3 "Online Matching"). A single
  // MatchOrAdopt reports adoption directly — the old probe-then-adopt
  // dance matched every record up to three times.
  if (trained_) {
    bool adopted = false;
    if (prematched != kInvalidTemplateId) {
      record.template_id = prematched;
    } else {
      record.template_id = parser_.MatchOrAdopt(record.text, &adopted);
    }
    ++stats_.matched_online;
    if (adopted) {
      ++stats_.adopted_templates;
      // An adopted template (saturation 1.0) can shadow lower-saturation
      // matches for later logs; ids prematched before it existed are no
      // longer authoritative.
      ++model_generation_;
      // Publish the adopted template's metadata immediately so queries
      // can display it before the next training cycle.
      const TreeNode* node = parser_.model().node(record.template_id);
      if (node != nullptr) {
        internal_.Put({node->id, node->parent, node->saturation,
                       parser_.TemplateText(node->id), node->support});
      }
    }
  }

  bytes_since_training_ += record.text.size();
  ++records_since_training_;
  stats_.ingested_bytes += record.text.size();
  ++stats_.ingested_records;
  const uint64_t seq = topic_.Append(std::move(record));

  BB_RETURN_IF_ERROR(MaybeTrainLocked());
  return seq;
}

Result<std::vector<uint64_t>> ManagedTopic::IngestBatch(
    std::vector<std::string> texts, const std::vector<uint64_t>& timestamps_us) {
  if (!timestamps_us.empty() && timestamps_us.size() != texts.size()) {
    return Status::InvalidArgument(
        "timestamps_us must be empty or match texts in size");
  }
  std::vector<uint64_t> seqs;
  seqs.reserve(texts.size());
  if (texts.empty()) return seqs;

  // Phase 1 (shared lock): shard-parallel matching against the current
  // model. Queries and other batches' match phases proceed concurrently;
  // only the adoption/append section below excludes them.
  std::vector<TemplateId> prematched;
  uint64_t generation = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    generation = model_generation_;
    if (trained_) {
      prematched = parser_.MatchAll(texts, config_.num_threads);
    }
  }

  // Phase 2 (exclusive lock): adopt misses, append, count, train.
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Prematched ids are only valid while the model that produced them is
  // current: any training cycle or adoption — by this batch, a
  // concurrent Ingest, or a concurrent batch — bumps model_generation_
  // and can shadow lower-saturation matches. Affected records fall back
  // to matching under the lock, keeping results identical to a
  // sequential Ingest loop.
  for (size_t i = 0; i < texts.size(); ++i) {
    const bool prematch_valid =
        !prematched.empty() && generation == model_generation_;
    const TemplateId hint =
        prematch_valid ? prematched[i] : kInvalidTemplateId;
    auto seq = IngestOneLocked(std::move(texts[i]),
                               timestamps_us.empty() ? 0 : timestamps_us[i],
                               hint);
    BB_RETURN_IF_ERROR(seq.status());
    seqs.push_back(seq.value());
  }
  return seqs;
}

Status ManagedTopic::MaybeTrainLocked() {
  const bool first_training_due =
      !trained_ && records_since_training_ >= config_.initial_train_records;
  const bool retrain_due =
      trained_ && (bytes_since_training_ >= config_.train_volume_bytes ||
                   records_since_training_ >= config_.train_interval_records);
  if (!first_training_due && !retrain_due) return Status::OK();
  if (training_in_flight_) {
    // Coalesce: the running cycle's commit re-checks the (still
    // accumulating) counters and schedules one follow-up for the whole
    // backlog instead of queueing a run per trigger.
    ++stats_.coalesced_triggers;
    return Status::OK();
  }
  const bool synchronous =
      !config_.async_training ||
      (first_training_due && config_.sync_initial_training);
  if (synchronous) return TrainSyncLocked();
  return ScheduleAsyncTrainingLocked();
}

Status ManagedTopic::TrainNow() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Manual training is synchronous by contract: let an in-flight
  // background cycle commit first (its counters/window would otherwise
  // race ours), then train inline.
  train_done_cv_.wait(lock, [this] { return !training_in_flight_; });
  return TrainSyncLocked();
}

void ManagedTopic::WaitForPendingTraining() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  train_done_cv_.wait(lock, [this] { return !training_in_flight_; });
}

Status ManagedTopic::SnapshotTrainingLocked(TrainingRun* run) {
  const uint64_t total = topic_.size();
  run->snapshot_size = 0;
  if (total == 0) return Status::OK();
  const uint64_t window =
      std::min<uint64_t>(total, config_.max_train_records);
  run->window_begin = total - window;
  run->batch.reserve(window);
  BB_RETURN_IF_ERROR(topic_.Scan(
      run->window_begin, total, [run](uint64_t, const LogRecord& rec) {
        run->batch.push_back(rec.text);
      }));
  run->base = parser_.SnapshotModel();
  run->snapshot_size = total;
  // The trigger counters measure "volume since the last training
  // SNAPSHOT" — records arriving while this snapshot trains count toward
  // the NEXT cycle. Triggered and manual (TrainNow) trainings both reset
  // here and nowhere else.
  bytes_since_training_ = 0;
  records_since_training_ = 0;
  training_in_flight_ = true;
  return Status::OK();
}

Result<PreparedRetrain> ManagedTopic::PrepareTrainingGuarded(
    TrainingRun* run, std::vector<TemplateId>* assignments,
    bool invoke_hook) const {
  try {
    if (invoke_hook && config_.on_async_training_start) {
      config_.on_async_training_start();
    }
    auto built = parser_.PrepareRetrain(std::move(run->base), run->batch);
    if (built.ok()) {
      *assignments =
          built.value().matcher->MatchAll(run->batch, config_.num_threads);
    }
    return built;
  } catch (const std::exception& e) {
    return Status::Aborted(std::string("training threw: ") + e.what());
  } catch (...) {
    return Status::Aborted("training threw");
  }
}

Status ManagedTopic::TrainSyncLocked() {
  TrainingRun run;
  BB_RETURN_IF_ERROR(SnapshotTrainingLocked(&run));
  if (run.snapshot_size == 0) return Status::OK();
  Timer timer;
  std::vector<TemplateId> assignments;
  auto prepared =
      PrepareTrainingGuarded(&run, &assignments, /*invoke_hook=*/false);
  if (!prepared.ok()) {
    training_in_flight_ = false;
    ++stats_.failed_trainings;
    train_done_cv_.notify_all();
    return prepared.status();
  }
  return CommitTrainingLocked(run, std::move(prepared).value(), assignments,
                              timer.ElapsedSeconds());
}

Status ManagedTopic::ScheduleAsyncTrainingLocked() {
  TrainingRun run;
  BB_RETURN_IF_ERROR(SnapshotTrainingLocked(&run));
  if (run.snapshot_size == 0) return Status::OK();
  try {
    if (train_pool_ == nullptr) train_pool_ = std::make_unique<ThreadPool>(1);
    // shared_ptr because std::function requires a copyable callable; the
    // run itself is never actually copied. Schedule (not Submit) as a
    // last-resort backstop: RunAsyncTraining converts every foreseeable
    // throw into failed-training stats itself, and anything that still
    // escapes is captured by the task's future instead of terminating
    // the worker.
    auto shared_run = std::make_shared<TrainingRun>(std::move(run));
    (void)train_pool_->Schedule(
        [this, shared_run] { RunAsyncTraining(std::move(*shared_run)); });
  } catch (const std::exception& e) {
    // Thread creation (pid/rlimit exhaustion) or allocation failed; the
    // snapshot set training_in_flight_, which MUST not leak out set or
    // no training would ever run again and waiters would sleep forever.
    training_in_flight_ = false;
    ++stats_.failed_trainings;
    train_done_cv_.notify_all();
    return Status::ResourceExhausted(
        std::string("cannot schedule background training: ") + e.what());
  }
  return Status::OK();
}

void ManagedTopic::RunAsyncTraining(TrainingRun run) {
  // The timer covers the whole background run — including the
  // instrumentation hook, which tests use to stretch the window — so
  // last_training_seconds is the duration ingest would have stalled for
  // under the synchronous design.
  Timer timer;

  // The expensive part runs with NO topic lock held: ingest keeps
  // matching against the current model, queries keep scanning. The
  // snapshot owns every input (window copies, cloned model); the only
  // shared state touched is the replacer, which is const after setup.
  // A throw from the user hook (or an allocation failure in training)
  // must not escape a detached thread: it becomes a failed training.
  std::vector<TemplateId> assignments;
  auto prepared =
      PrepareTrainingGuarded(&run, &assignments, /*invoke_hook=*/true);
  const double train_seconds = timer.ElapsedSeconds();

  std::unique_lock<std::shared_mutex> lock(mu_);
  try {
    if (!prepared.ok()) {
      // Model untouched; clear the in-flight state the commit would have.
      training_in_flight_ = false;
      ++stats_.failed_trainings;
    } else {
      Timer swap_timer;
      // Once CommitTrainingLocked runs, the swap has happened: the cycle
      // counts as an (async) training regardless of the cannot-really-fail
      // re-assignment statuses inside.
      (void)CommitTrainingLocked(run, std::move(prepared).value(), assignments,
                                 train_seconds);
      stats_.last_swap_seconds = swap_timer.ElapsedSeconds();
      ++stats_.async_trainings;
    }
    // Triggers that fired while we trained were coalesced; if their volume
    // is still due, run ONE follow-up cycle for the whole backlog. The
    // destructor suppresses this so shutdown drains.
    if (!shutting_down_) (void)MaybeTrainLocked();
  } catch (...) {
    // Allocation failure mid-commit or mid-reschedule. Leave the topic
    // schedulable and visibly account the breakage rather than letting
    // the exception vanish into the discarded task future.
    training_in_flight_ = false;
    ++stats_.failed_trainings;
  }
  // Waiters re-check under the lock: if a follow-up was scheduled,
  // training_in_flight_ is set again and they keep sleeping.
  train_done_cv_.notify_all();
}

Status ManagedTopic::CommitTrainingLocked(
    const TrainingRun& run, PreparedRetrain prepared,
    const std::vector<TemplateId>& assignments, double train_seconds) {
  // Clear the in-flight state first so every return path (including the
  // cannot-really-fail AssignTemplate errors below) leaves the topic
  // able to schedule its next cycle.
  training_in_flight_ = false;
  train_done_cv_.notify_all();

  // (a) O(1) atomic swap: the new model/matcher become THE model.
  parser_.CommitRetrain(std::move(prepared));
  // (b) Generation bump: ids prematched (IngestBatch) or assigned online
  // against the superseded model are no longer authoritative.
  ++model_generation_;
  trained_ = true;
  ++stats_.trainings;
  stats_.last_training_seconds = train_seconds;
  stats_.model_bytes = parser_.ModelBytes();
  stats_.num_templates = parser_.model().size();

  // (c) Re-assign the training window (retraining refines earlier
  // assignments) with the match results computed off-lock.
  for (uint64_t i = 0; i < run.batch.size(); ++i) {
    BB_RETURN_IF_ERROR(
        topic_.AssignTemplate(run.window_begin + i, assignments[i]));
  }

  // (d) Records that arrived while the snapshot trained carry ids from
  // the superseded model (including temporaries the swap just dropped).
  // Re-match them against the new model in arrival order — adopting
  // misses exactly as online matching would have — so no assignment is
  // lost and the end state equals a synchronous training at the trigger
  // point. Matching is ~ns-scale per record, so this section stays far
  // below training cost.
  const uint64_t now = topic_.size();
  if (now > run.snapshot_size) {
    std::vector<std::string> tail;
    tail.reserve(now - run.snapshot_size);
    BB_RETURN_IF_ERROR(topic_.Scan(
        run.snapshot_size, now,
        [&tail](uint64_t, const LogRecord& rec) { tail.push_back(rec.text); }));
    for (uint64_t i = 0; i < tail.size(); ++i) {
      bool adopted = false;
      const TemplateId id = parser_.MatchOrAdopt(tail[i], &adopted);
      if (adopted) ++stats_.adopted_templates;
      BB_RETURN_IF_ERROR(topic_.AssignTemplate(run.snapshot_size + i, id));
    }
  }

  // (e) Publish node metadata (§3); overwrites per id, so entries for
  // dropped temporaries are refreshed by their successors.
  parser_.model().ExportTo(&internal_);
  return Status::OK();
}

Result<std::vector<TemplateGroup>> ManagedTopic::Query(
    double saturation_threshold, uint64_t begin_seq,
    uint64_t end_seq) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::unordered_map<TemplateId, TemplateGroup> groups;
  const Status scan_status = topic_.Scan(
      begin_seq, std::min(end_seq, topic_.size()),
      [&](uint64_t seq, const LogRecord& rec) {
        TemplateId resolved = rec.template_id;
        if (resolved != kInvalidTemplateId) {
          auto r = parser_.ResolveAtThreshold(resolved, saturation_threshold);
          if (r.ok()) resolved = r.value();
        }
        TemplateGroup& g = groups[resolved];
        if (g.count == 0) {
          g.template_id = resolved;
          if (resolved != kInvalidTemplateId) {
            g.template_text = parser_.MergedWildcardText(resolved);
            const TreeNode* node = parser_.model().node(resolved);
            if (node != nullptr) g.saturation = node->saturation;
          } else {
            g.template_text = "<unparsed>";
          }
        }
        ++g.count;
        g.sequence_numbers.push_back(seq);
      });
  BB_RETURN_IF_ERROR(scan_status);

  std::vector<TemplateGroup> out;
  out.reserve(groups.size());
  for (auto& [id, g] : groups) out.push_back(std::move(g));
  std::sort(out.begin(), out.end(),
            [](const TemplateGroup& a, const TemplateGroup& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.template_id < b.template_id;
            });
  return out;
}

Result<std::vector<TemplateAnomaly>> ManagedTopic::DetectAnomalies(
    uint64_t window1_begin, uint64_t window1_end, uint64_t window2_begin,
    uint64_t window2_end, double min_change_ratio) const {
  // Use maximally precise templates for comparison.
  auto before = Query(1.0, window1_begin, window1_end);
  BB_RETURN_IF_ERROR(before.status());
  auto after = Query(1.0, window2_begin, window2_end);
  BB_RETURN_IF_ERROR(after.status());

  std::unordered_map<TemplateId, uint64_t> before_counts;
  for (const auto& g : before.value()) before_counts[g.template_id] = g.count;

  std::vector<TemplateAnomaly> anomalies;
  for (const auto& g : after.value()) {
    const auto it = before_counts.find(g.template_id);
    TemplateAnomaly anomaly;
    anomaly.template_id = g.template_id;
    anomaly.template_text = g.template_text;
    anomaly.count_after = g.count;
    if (it == before_counts.end()) {
      anomaly.is_new = true;
      anomaly.change_ratio = static_cast<double>(g.count);
      anomalies.push_back(std::move(anomaly));
      continue;
    }
    anomaly.count_before = it->second;
    const double ratio = static_cast<double>(g.count) /
                         static_cast<double>(std::max<uint64_t>(1, it->second));
    anomaly.change_ratio = ratio;
    if (ratio >= min_change_ratio || ratio <= 1.0 / min_change_ratio) {
      anomalies.push_back(std::move(anomaly));
    }
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const TemplateAnomaly& a, const TemplateAnomaly& b) {
              if (a.is_new != b.is_new) return a.is_new;
              return a.change_ratio > b.change_ratio;
            });
  return anomalies;
}

TopicStats ManagedTopic::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  TopicStats snapshot = stats_;
  // Derived, not maintained: the in-flight flag is the single source of
  // truth for whether a snapshot is training right now.
  snapshot.pending_trainings = training_in_flight_ ? 1 : 0;
  return snapshot;
}

bool ManagedTopic::trained() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return trained_;
}

Result<ManagedTopic*> LogService::CreateTopic(const std::string& name,
                                              TopicConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = topics_.emplace(
      name, std::make_unique<ManagedTopic>(name, std::move(config)));
  if (!inserted) {
    return Status::AlreadyExists("topic '" + name + "' already exists");
  }
  return it->second.get();
}

Result<ManagedTopic*> LogService::GetTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    return Status::NotFound("topic '" + name + "' does not exist");
  }
  return it->second.get();
}

std::vector<std::string> LogService::TopicNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) names.push_back(name);
  return names;
}

}  // namespace bytebrain
