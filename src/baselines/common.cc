#include "baselines/common.h"

#include "core/tokenizer.h"
#include "core/variable_replacer.h"

namespace bytebrain {

std::vector<std::vector<std::string>> PreprocessTokens(
    const std::vector<std::string>& logs) {
  const VariableReplacer replacer = VariableReplacer::Default();
  std::vector<std::vector<std::string>> out;
  out.reserve(logs.size());
  std::string scratch;
  std::vector<std::string_view> views;
  for (const std::string& log : logs) {
    replacer.ReplaceInto(log, &scratch);
    views.clear();
    TokenizeDefaultInto(scratch, &views);
    out.emplace_back(views.begin(), views.end());
  }
  return out;
}

bool HasDigits(std::string_view token) {
  for (char c : token) {
    if (c >= '0' && c <= '9') return true;
  }
  return false;
}

std::string JoinKey(const std::vector<std::string>& tokens) {
  std::string key;
  size_t total = tokens.size();
  for (const auto& t : tokens) total += t.size();
  key.reserve(total);
  for (const auto& t : tokens) {
    key += t;
    key += '\x1f';
  }
  return key;
}

}  // namespace bytebrain
