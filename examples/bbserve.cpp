// bbserve — the bytebrain service as a process: serve a TCP port, or
// load-generate against one.
//
//   ./bbserve serve [port] [--auth tenant=token,...]
//       Mounts a ServiceFrontend behind the epoll TCP server and
//       prints "LISTENING <port>" once accepting (port 0 = ephemeral,
//       the default). Runs until SIGINT/SIGTERM.
//
//   ./bbserve loadgen <port> [tenants] [connections] [batches]
//                     [batch_size] [--auth token]
//       N tenants × M connections of pipelined IngestBatch traffic,
//       then a wire GetStats per tenant. Prints per-tenant admitted
//       counts and aggregate logs/s; exits nonzero unless every tenant
//       shows admitted records — the CI e2e gate.
//
// Example session (two shells):
//   $ ./bbserve serve 7070
//   LISTENING 7070
//   $ ./bbserve loadgen 7070 4 16 8 1024
//   tenant0: admitted 32768 records
//   ...
//   TOTAL 131072 records in 0.21s (620k logs/s)
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "net/client.h"
#include "net/tcp_server.h"

using namespace bytebrain;

namespace {

std::atomic<bool> g_stop{false};

std::atomic<int> g_sig{0};
void OnSignal(int sig) {
  g_sig.store(sig);
  g_stop.store(true);
}

std::string LoadgenLog(int i) {
  return "Accepted password for user" + std::to_string(i % 50) +
         " from 10.0." + std::to_string(i % 17) + "." +
         std::to_string(i % 9 + 1) + " port " + std::to_string(40000 + i) +
         " ssh2";
}

/// "--auth a=x,b=y" -> {{a,x},{b,y}}; empty on parse failure.
std::map<std::string, std::string, std::less<>> ParseTokens(
    const std::string& spec) {
  std::map<std::string, std::string, std::less<>> tokens;
  size_t start = 0;
  while (start < spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    const std::string pair = spec.substr(start, comma - start);
    const size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0) return {};
    tokens[pair.substr(0, eq)] = pair.substr(eq + 1);
    start = comma + 1;
  }
  return tokens;
}

int Serve(int argc, char** argv) {
  net::TcpServerConfig server_config;
  api::FrontendConfig frontend_config;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--auth") == 0 && i + 1 < argc) {
      frontend_config.tenant_tokens = ParseTokens(argv[++i]);
      if (frontend_config.tenant_tokens.empty()) {
        std::fprintf(stderr, "bad --auth spec (want tenant=token,...)\n");
        return 2;
      }
    } else {
      server_config.port = static_cast<uint16_t>(std::atoi(argv[i]));
    }
  }

  api::ServiceFrontend frontend(frontend_config);
  net::TcpServer server(&frontend, server_config);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("LISTENING %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  // Foreground semantics: run until SIGINT/SIGTERM (the CI harness
  // starts us with `&` and kills us when the loadgen is done).
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (!g_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Shutdown();
  const net::TcpServerStats stats = server.stats();
  std::fprintf(stderr, "stopping on signal %d\n", g_sig.load());
  std::fprintf(stderr, "served %llu frames over %llu connections\n",
               static_cast<unsigned long long>(stats.frames_dispatched),
               static_cast<unsigned long long>(stats.connections_accepted));
  return 0;
}

int Loadgen(int argc, char** argv) {
  if (argc < 3) return 2;
  const uint16_t port = static_cast<uint16_t>(std::atoi(argv[2]));
  int tenants = argc > 3 ? std::atoi(argv[3]) : 4;
  int connections = argc > 4 ? std::atoi(argv[4]) : 16;
  int batches = argc > 5 ? std::atoi(argv[5]) : 8;
  int batch_size = argc > 6 ? std::atoi(argv[6]) : 1024;
  std::string auth_token;
  for (int i = 3; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--auth") == 0) auth_token = argv[i + 1];
  }
  if (tenants < 1 || connections < tenants || batches < 1 || batch_size < 1) {
    std::fprintf(stderr, "bad loadgen shape\n");
    return 2;
  }

  // Topic per tenant (idempotent: AlreadyExists is fine on reruns).
  for (int t = 0; t < tenants; ++t) {
    net::NetClient client;
    if (!client.Connect("127.0.0.1", port).ok()) {
      std::fprintf(stderr, "connect failed\n");
      return 1;
    }
    client.set_auth_token(auth_token);
    api::CreateTopicRequest req;
    req.name = "t";
    req.config.initial_train_records = 2000;
    req.config.train_interval_records = 1u << 30;
    req.config.num_threads = 1;
    req.config.async_training = false;
    api::CreateTopicResponse resp;
    const Status s = client.Call(api::ApiMethod::kCreateTopic,
                                 "tenant" + std::to_string(t), req, &resp);
    if (!s.ok() && !s.IsAlreadyExists()) {
      std::fprintf(stderr, "create topic: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  const auto start = std::chrono::steady_clock::now();
  std::atomic<uint64_t> sent_records{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      net::NetClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        failures.fetch_add(1);
        return;
      }
      client.set_auth_token(auth_token);
      const std::string tenant = "tenant" + std::to_string(c % tenants);
      api::IngestBatchRequest batch;
      batch.topic = "t";
      for (int i = 0; i < batch_size; ++i) {
        batch.texts.push_back(LoadgenLog(c * 7919 + i));
      }
      constexpr int kWindow = 4;
      int sent = 0;
      int received = 0;
      while (received < batches) {
        while (sent < batches && sent - received < kWindow) {
          if (!client
                   .SendRequest(api::ApiMethod::kIngestBatch, tenant, batch)
                   .ok()) {
            failures.fetch_add(1);
            return;
          }
          ++sent;
        }
        api::IngestBatchResponse resp;
        const Status s = client.ReadResponse(&resp);
        if (s.IsIOError()) {
          failures.fetch_add(1);
          return;
        }
        if (s.ok()) sent_records.fetch_add(resp.seqs.size());
        ++received;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();

  // The gate: every tenant must SHOW admitted records via wire
  // GetStats — the server-side meter, not the client's own counting.
  bool all_admitted = true;
  uint64_t total_admitted = 0;
  for (int t = 0; t < tenants; ++t) {
    net::NetClient client;
    if (!client.Connect("127.0.0.1", port).ok()) return 1;
    client.set_auth_token(auth_token);
    api::GetStatsRequest req;
    req.topic = "t";
    api::GetStatsResponse resp;
    const Status s = client.Call(api::ApiMethod::kGetStats,
                                 "tenant" + std::to_string(t), req, &resp);
    if (!s.ok()) {
      std::fprintf(stderr, "GetStats: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("tenant%d: admitted %llu records (%llu requests)\n", t,
                static_cast<unsigned long long>(resp.tenant.admitted_records),
                static_cast<unsigned long long>(
                    resp.tenant.admitted_requests));
    total_admitted += resp.tenant.admitted_records;
    if (resp.tenant.admitted_records == 0) all_admitted = false;
  }
  std::printf("TOTAL %llu records in %.2fs (%.0fk logs/s), %d failures\n",
              static_cast<unsigned long long>(total_admitted), secs,
              static_cast<double>(sent_records.load()) / secs / 1000.0,
              failures.load());
  return (all_admitted && failures.load() == 0) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "serve") == 0) {
    return Serve(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "loadgen") == 0) {
    return Loadgen(argc, argv);
  }
  std::fprintf(stderr,
               "usage:\n"
               "  %s serve [port] [--auth tenant=token,...]\n"
               "  %s loadgen <port> [tenants] [connections] [batches] "
               "[batch_size] [--auth token]\n",
               argv[0], argv[0]);
  return 2;
}
