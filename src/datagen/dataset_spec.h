// Dataset specifications mirroring Table 1 of the paper.
//
// LogHub / LogHub-2.0 are not redistributable, so this module synthesizes
// stand-in corpora: for each of the 16 dataset names we generate labeled
// logs with the published template count, Zipfian template frequencies and
// dataset-flavored token vocabularies. LogHub-2.0 log counts are scaled
// down by default (full Table-1 counts reachable via scale=1.0) so the
// benches finish in minutes rather than hours.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace bytebrain {

/// Style of the per-record preamble (timestamp/host/level prefix), chosen
/// to mimic each source system's real format.
enum class PreambleStyle {
  kSyslog,       // "Jun 14 15:16:01 host sshd[1234]:"
  kBracketed,    // "[Mon Jun 14 15:16:01 2026] [error]"
  kIso,          // "2026-06-14 15:16:01,123 INFO Component:"
  kAndroid,      // "06-14 15:16:01.123  1234  5678 I Tag:"
  kPlain,        // no preamble
  kBgl,          // "- 1117838570 2026.06.14 R02-M1-N0-C:J12-U11 RAS KERNEL INFO"
};

/// One row of Table 1 plus generation knobs.
struct DatasetSpec {
  std::string name;
  // Table 1, LogHub columns.
  size_t loghub_logs = 2000;
  size_t loghub_templates = 0;
  // Table 1, LogHub-2.0 columns (0 = dataset absent from LogHub-2.0).
  size_t loghub2_logs = 0;
  size_t loghub2_templates = 0;
  PreambleStyle preamble = PreambleStyle::kIso;
  // Body shape: token-count range for generated templates.
  int min_body_tokens = 4;
  int max_body_tokens = 12;
  // Fraction of templates whose final variable expands to a dynamic-length
  // list (the §7 limitation; ground truth labels them as one template).
  double dynamic_list_fraction = 0.03;
  // Deterministic seed namespace for this dataset.
  uint64_t seed = 0;
};

/// All 16 Table-1 datasets, in the paper's row order.
const std::vector<DatasetSpec>& AllDatasetSpecs();

/// Lookup by name; returns nullptr if unknown.
const DatasetSpec* FindDatasetSpec(const std::string& name);

/// The 14 datasets present in LogHub-2.0 (Android and Windows excluded).
std::vector<DatasetSpec> LogHub2Specs();

}  // namespace bytebrain
