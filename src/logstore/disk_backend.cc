#include "logstore/disk_backend.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <mutex>

#include "logstore/fault_injection.h"
#include "logstore/frame_format.h"
#include "logstore/wal.h"
#include "util/hashing.h"
#include "util/serde.h"

namespace bytebrain {

// The record frame helpers live in logstore/frame_format.h now — the
// WAL appends and replays the same frame bytes.
using logframe::FillFrameHeader;
using logframe::Frame;
using logframe::kFrameHeaderBytes;
using logframe::kFrameTidOffset;
using logframe::MaterializeFrame;
using logframe::ParseFrame;

namespace {

// MANIFEST layout: magic u64 | version u32 | sealed_count u64 |
// { first_seq u64, records u64, checksum u64 } per sealed segment |
// metadata string | checksum-of-all-preceding u64. Rewritten atomically
// (tmp + rename) on every seal and checkpoint, so a reader always sees
// a complete manifest — old or new, never torn.
constexpr uint64_t kManifestMagic = 0x4242544d'414e4946ULL;  // "BBTMANIF"
constexpr uint32_t kManifestVersion = 1;

Status IOErrorFor(const std::string& what, const std::string& path) {
  return Status::IOError(what + ": " + path);
}

// Drain threshold: frame bytes accumulate in the write buffer until
// ~256 KiB are pending, then drain in one write(). Measured on the
// reference container the kernel copy costs ~35 ns per 100 B; the
// buffer memcpy adds ~10 ns — cheaper than stdio's per-call overhead
// and than writev()'s per-iovec cost at log-record frame sizes.
constexpr size_t kWriteBufferBytes = 1 << 18;

Status SyncFile(std::FILE* f, const std::string& path, FileOps* ops) {
  if (std::fflush(f) != 0 || ops->Fsync(fileno(f)) != 0) {
    return IOErrorFor("cannot sync", path);
  }
  return Status::OK();
}

void SyncDirectory(const std::string& dir) {
  // Durability of the rename itself; best effort (some filesystems
  // reject directory fsync — the rename is still atomic either way).
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

/// Reads `path` fully into `*out`; a missing file is reported through
/// `*exists`, not as an error (fresh stores have no manifest/tail yet).
/// A mid-file read error IS an error — treating it as EOF would make
/// recovery truncate (or misalign against) durably-written bytes.
Status ReadWholeFile(const std::string& path, std::string* out,
                     bool* exists) {
  out->clear();
  std::FILE* f = std::fopen(path.c_str(), "rb");
  *exists = f != nullptr;
  if (f == nullptr) return Status::OK();
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return IOErrorFor("read error", path);
  return Status::OK();
}

}  // namespace

SegmentedDiskBackend::SealedSegment::~SealedSegment() {
  // Dropping the cache entry (last reference: the backend retired the
  // segment and every view is gone) unmaps it; only then is the fd —
  // which Acquire would need for a remap — safe to close.
  entry.reset();
  if (fd >= 0) ::close(fd);
}

/// The off-lock sealed snapshot: shares ownership of the sealed set and
/// pins each segment it reads for its own lifetime, so the text
/// string_views it hands out stay valid regardless of what the backend
/// (Clear, further seals) or the cache (eviction pressure from other
/// topics) does after the snapshot.
class SegmentedDiskBackend::View : public SealedRecordView {
 public:
  View(std::shared_ptr<const SealedSet> segments, uint64_t end_seq,
       SegmentCache* cache)
      : segments_(std::move(segments)),
        end_seq_(end_seq),
        cache_(cache),
        pins_(segments_->size()) {}

  uint64_t end_seq() const override { return end_seq_; }

  Status ScanTexts(uint64_t begin, uint64_t end,
                   const std::function<void(uint64_t, std::string_view)>& fn)
      const override {
    if (begin > end) return Status::InvalidArgument("begin > end");
    end = std::min(end, end_seq_);
    for (size_t si = 0; si < segments_->size(); ++si) {
      const SealedSegment& seg = *(*segments_)[si];
      const uint64_t seg_end = seg.first_seq + seg.records;
      if (seg_end <= begin) continue;
      if (seg.first_seq >= end) break;
      const char* data = nullptr;
      BB_RETURN_IF_ERROR(PinIfNeeded(si, seg, &data));
      const uint64_t lo = std::max(begin, seg.first_seq);
      const uint64_t hi = std::min(end, seg_end);
      size_t off = SeekOffset(data, seg, lo - seg.first_seq);
      for (uint64_t seq = lo; seq < hi; ++seq) {
        uint32_t len;
        std::memcpy(&len, data + off, 4);
        fn(seq, std::string_view(data + off + kFrameHeaderBytes, len));
        off += kFrameHeaderBytes + len;
      }
    }
    return Status::OK();
  }

 private:
  /// Pins are taken lazily (first touch per segment) and HELD until
  /// the view is destroyed: the string_views handed to fn must stay
  /// valid for the view's lifetime (the SealedRecordView contract), so
  /// the segments a view has read must be immune to eviction. The
  /// mutex makes the lazy pin race-free if a view is shared across
  /// threads.
  Status PinIfNeeded(size_t si, const SealedSegment& seg,
                     const char** data) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (!pins_[si].valid()) {
      BB_RETURN_IF_ERROR(cache_->Acquire(seg.entry, &pins_[si]));
    }
    *data = pins_[si].data();
    return Status::OK();
  }

  std::shared_ptr<const SealedSet> segments_;
  uint64_t end_seq_;
  SegmentCache* cache_;
  mutable std::mutex mu_;
  mutable std::vector<SegmentCache::Pin> pins_;  // parallel to *segments_
};

SegmentedDiskBackend::SegmentedDiskBackend(StorageConfig config)
    : config_(std::move(config)) {
  if (config_.segment_data_bytes == 0) {
    config_.segment_data_bytes = 8ull * 1024 * 1024;
  }
  ops_ = config_.file_ops != nullptr ? config_.file_ops : RealFileOps();
  cache_ = config_.segment_cache != nullptr ? config_.segment_cache
                                            : SegmentCache::Global();
  cache_owner_ = std::make_shared<SegmentCache::OwnerStats>();
  active_checksum_fold_ = kSegmentChecksumSeed;
}

SegmentedDiskBackend::~SegmentedDiskBackend() {
  // Clean-shutdown durability: flush buffered frames and patch any
  // template ids rewritten since their frame was streamed. Crash paths
  // skip this, which is exactly what the torn-tail recovery covers.
  if (active_fd_ >= 0) (void)Flush();
  CloseActiveFile();
}

std::string SegmentedDiskBackend::SegmentPath(uint64_t index) const {
  char name[32];
  std::snprintf(name, sizeof(name), "seg-%06llu.log",
                static_cast<unsigned long long>(index));
  return config_.directory + "/" + name;
}

std::string SegmentedDiskBackend::ManifestPath() const {
  return config_.directory + "/MANIFEST";
}

uint64_t SegmentedDiskBackend::size() const {
  return sealed_records_ + active_count();
}

uint64_t SegmentedDiskBackend::sealed_segment_count() const {
  return sealed_->size();
}

uint64_t SegmentedDiskBackend::mapped_bytes() const {
  return cache_->owner_stats(cache_owner_).resident_bytes;
}

uint64_t SegmentedDiskBackend::cache_hits() const {
  return cache_->owner_stats(cache_owner_).hits;
}

uint64_t SegmentedDiskBackend::cache_misses() const {
  return cache_->owner_stats(cache_owner_).misses;
}

uint64_t SegmentedDiskBackend::cache_evictions() const {
  return cache_->owner_stats(cache_owner_).evictions;
}

size_t SegmentedDiskBackend::SeekOffset(const char* data,
                                        const SealedSegment& seg,
                                        uint64_t ridx) {
  const uint64_t fence = ridx / seg.fence_interval;
  size_t off = static_cast<size_t>(seg.fenceposts[fence]);
  for (uint64_t r = fence * seg.fence_interval; r < ridx; ++r) {
    uint32_t len;
    std::memcpy(&len, data + off, 4);
    off += kFrameHeaderBytes + len;
  }
  return off;
}

Status SegmentedDiskBackend::PinSegment(const SealedSegment& seg,
                                        SegmentCache::Pin* pin) const {
  return cache_->Acquire(seg.entry, pin);
}

Status SegmentedDiskBackend::Open() {
  if (opened_) return Status::OK();
  if (config_.directory.empty()) {
    return Status::InvalidArgument(
        "StorageConfig.directory required for the segmented disk backend");
  }
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  if (ec) return IOErrorFor("cannot create directory", config_.directory);

  uint64_t sealed_count = 0;
  std::vector<uint64_t> records_per_segment;
  std::vector<uint64_t> checksums;
  bool found = false;
  BB_RETURN_IF_ERROR(
      LoadManifest(&sealed_count, &records_per_segment, &checksums, &found));

  auto set = std::make_shared<SealedSet>();
  uint64_t next_seq = 0;
  for (uint64_t i = 0; i < sealed_count; ++i) {
    std::shared_ptr<const SealedSegment> seg;
    BB_RETURN_IF_ERROR(OpenSealedSegment(i, next_seq, records_per_segment[i],
                                         checksums[i], &seg));
    next_seq += seg->records;
    sealed_first_seqs_.push_back(seg->first_seq);
    set->push_back(std::move(seg));
  }
  sealed_ = std::move(set);
  sealed_records_ = next_seq;
  active_index_ = sealed_count;
  BB_RETURN_IF_ERROR(RecoverActiveSegment());

  if (config_.durability != DurabilityMode::kNone) {
    wal_ = std::make_unique<WriteAheadLog>(config_.directory,
                                           config_.durability, ops_);
    std::vector<LogRecord> walied;
    BB_RETURN_IF_ERROR(
        wal_->OpenAndReplay(active_index_, sealed_records_, &walied));
    if (walied.size() > active_count()) {
      // The WAL is written ahead of the segment drain, so after a crash
      // it usually holds MORE than the active file: stream the excess
      // back through the normal append path (it lands in the mirror and
      // the active file) without re-logging it — the frames are already
      // in the WAL. wal_replaying_ also defers sealing: a mid-replay
      // seal would rotate the WAL out from under the frames being
      // replayed.
      wal_replaying_ = true;
      Status error = io_error_;
      bool buffering = error.ok();
      for (size_t i = active_count(); i < walied.size(); ++i) {
        AppendRecordLocked(std::move(walied[i]), &buffering, &error);
        ++wal_replayed_;
      }
      wal_replaying_ = false;
      BB_RETURN_IF_ERROR(error);
      if (active_bytes_ >= config_.segment_data_bytes) {
        BB_RETURN_IF_ERROR(SealActiveLocked());
      }
    } else if (walied.size() < active_count()) {
      // The crash caught a drained batch before its WAL append: the
      // segment file is AHEAD of the WAL. Frame i of the WAL must stay
      // record i of the active segment — re-log the missing suffix so
      // new appends land at matching positions.
      std::string catchup;
      for (size_t i = walied.size(); i < active_.size(); ++i) {
        const LogRecord& rec = active_[i];
        const uint64_t crc = RecordChecksum(rec.timestamp_us, rec.text);
        char header[kFrameHeaderBytes];
        FillFrameHeader(header, rec, crc);
        catchup.append(header, kFrameHeaderBytes);
        catchup.append(rec.text);
      }
      BB_RETURN_IF_ERROR(wal_->Append(catchup));
    }
  }
  opened_ = true;
  return Status::OK();
}

Status SegmentedDiskBackend::LoadManifest(
    uint64_t* sealed_count, std::vector<uint64_t>* records_per_segment,
    std::vector<uint64_t>* checksums, bool* found) {
  *found = false;
  *sealed_count = 0;
  std::string data;
  bool exists = false;
  BB_RETURN_IF_ERROR(ReadWholeFile(ManifestPath(), &data, &exists));
  if (!exists) return Status::OK();  // fresh store

  const Status corrupt = Status::Corruption("bad manifest: " + ManifestPath());
  if (data.size() < 8) return corrupt;
  uint64_t stored = 0;
  std::memcpy(&stored, data.data() + data.size() - 8, 8);
  if (stored !=
      HashBytesFast(std::string_view(data.data(), data.size() - 8))) {
    return corrupt;
  }
  ByteReader reader(data.data(), data.size() - 8);
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!reader.GetU64(&magic) || magic != kManifestMagic ||
      !reader.GetU32(&version) || version != kManifestVersion ||
      !reader.GetU64(sealed_count)) {
    return corrupt;
  }
  uint64_t next_seq = 0;
  for (uint64_t i = 0; i < *sealed_count; ++i) {
    uint64_t first_seq = 0, records = 0, checksum = 0;
    if (!reader.GetU64(&first_seq) || !reader.GetU64(&records) ||
        !reader.GetU64(&checksum) || first_seq != next_seq) {
      return corrupt;
    }
    next_seq += records;
    records_per_segment->push_back(records);
    checksums->push_back(checksum);
  }
  if (!reader.GetString(&metadata_) || !reader.AtEnd()) return corrupt;
  *found = true;
  return Status::OK();
}

Status SegmentedDiskBackend::WriteManifest() const {
  std::string payload;
  ByteWriter writer(&payload);
  writer.PutU64(kManifestMagic);
  writer.PutU32(kManifestVersion);
  writer.PutU64(sealed_->size());
  for (const auto& seg : *sealed_) {
    writer.PutU64(seg->first_seq);
    writer.PutU64(seg->records);
    writer.PutU64(seg->checksum);
  }
  writer.PutString(metadata_);
  writer.PutU64(HashBytesFast(payload));

  const std::string tmp = ManifestPath() + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return IOErrorFor("cannot open for write", tmp);
  const size_t written = std::fwrite(payload.data(), 1, payload.size(), f);
  Status sync = written == payload.size() ? SyncFile(f, tmp, ops_)
                                          : IOErrorFor("short write", tmp);
  if (std::fclose(f) != 0 && sync.ok()) {
    sync = IOErrorFor("close failed", tmp);
  }
  if (!sync.ok()) return sync;
  if (std::rename(tmp.c_str(), ManifestPath().c_str()) != 0) {
    return IOErrorFor("cannot rename manifest", tmp);
  }
  SyncDirectory(config_.directory);
  return Status::OK();
}

Status SegmentedDiskBackend::OpenSealedSegment(
    uint64_t index, uint64_t first_seq, uint64_t expect_records,
    uint64_t expect_checksum, std::shared_ptr<const SealedSegment>* out) {
  const std::string path = SegmentPath(index);
  // O_RDWR: the mapping is read-only, but AssignTemplate patches
  // template ids through this fd.
  const int fd = ::open(path.c_str(), O_RDWR);
  if (fd < 0) return IOErrorFor("cannot open sealed segment", path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return IOErrorFor("cannot stat sealed segment", path);
  }
  const size_t len = static_cast<size_t>(st.st_size);
  auto seg = std::make_shared<SealedSegment>();
  seg->first_seq = first_seq;
  seg->fd = fd;
  seg->data_len = len;
  seg->entry = cache_->Register(fd, len, cache_owner_);

  // Full verification pass (under a transient pin): every frame's
  // stored checksum must match its bytes and the fold must match the
  // manifest. Sealed data is the durable contract — recovery refuses
  // to serve silently corrupted records (the caller surfaces the
  // Status instead of crashing). The same pass rebuilds the
  // authoritative sparse index at ~zero marginal cost; the persisted
  // .idx below is only a cross-check.
  SegmentCache::Pin pin;
  BB_RETURN_IF_ERROR(PinSegment(*seg, &pin));
  ByteReader reader(pin.data(), len);
  uint64_t fold = kSegmentChecksumSeed;
  SegmentIndex built;
  for (uint64_t r = 0; r < expect_records; ++r) {
    Frame frame;
    if (!ParseFrame(&reader, pin.data(), &frame)) {
      return Status::Corruption(
          "truncated or corrupt frame in sealed segment: " + path);
    }
    fold = HashCombine(fold, frame.crc);
    built.AddRecord(frame.start, frame.ts, frame.tid);
    text_bytes_ += frame.text_len;
  }
  if (fold != expect_checksum || !reader.AtEnd()) {
    return Status::Corruption("sealed segment does not match manifest: " +
                              path);
  }
  seg->records = expect_records;
  seg->checksum = expect_checksum;

  // A missing, unreadable, corrupt, or stale (template ids pwritten
  // after it was persisted — detected by tid_fold) .idx is rewritten
  // from the just-verified frames. NEVER an open failure: the index is
  // derived data and the segment is the source of truth.
  const std::string idx_path = SegmentIndexPath(config_.directory, index);
  SegmentIndex loaded;
  bool idx_exists = false;
  const Status read = SegmentIndex::ReadFrom(idx_path, &loaded, &idx_exists);
  const bool fresh = read.ok() && idx_exists &&
                     loaded.records == built.records &&
                     loaded.tid_fold == built.tid_fold &&
                     loaded.fencepost_interval == built.fencepost_interval &&
                     loaded.fenceposts == built.fenceposts &&
                     loaded.min_timestamp_us == built.min_timestamp_us &&
                     loaded.max_timestamp_us == built.max_timestamp_us &&
                     loaded.postings == built.postings;
  if (!fresh) {
    ++index_rebuilds_;
    (void)built.WriteTo(idx_path);  // best effort — rebuilt again next open
  }
  seg->fence_interval = built.fencepost_interval;
  seg->fenceposts = std::move(built.fenceposts);
  seg->min_timestamp_us = built.min_timestamp_us;
  seg->max_timestamp_us = built.max_timestamp_us;
  seg->postings = std::move(built.postings);
  *out = std::move(seg);
  return Status::OK();
}

Status SegmentedDiskBackend::RecoverActiveSegment() {
  const std::string path = SegmentPath(active_index_);
  active_.clear();
  write_buffer_.clear();
  active_offsets_.clear();
  active_bytes_ = 0;
  active_checksum_fold_ = kSegmentChecksumSeed;
  dirty_tids_.clear();

  std::string data;
  bool exists = false;
  BB_RETURN_IF_ERROR(ReadWholeFile(path, &data, &exists));
  // Replay the tail frame-by-frame; the first incomplete or
  // checksum-failing frame marks the torn point — everything after it
  // is untrusted and truncated away.
  ByteReader reader(data.data(), data.size());
  size_t valid_bytes = 0;
  while (!reader.AtEnd()) {
    Frame frame;
    if (!ParseFrame(&reader, data.data(), &frame)) break;
    LogRecord rec;
    rec.timestamp_us = frame.ts;
    rec.template_id = frame.tid;
    rec.text.assign(frame.text);
    active_offsets_.push_back(frame.start);
    active_checksum_fold_ = HashCombine(active_checksum_fold_, frame.crc);
    text_bytes_ += frame.text_len;
    active_.push_back(std::move(rec));
    valid_bytes = reader.position();
  }
  active_bytes_ = valid_bytes;
  if (valid_bytes < data.size()) {
    if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
      return IOErrorFor("cannot truncate torn tail", path);
    }
  }
  return OpenActiveFile();
}

Status SegmentedDiskBackend::OpenActiveFile() {
  const std::string path = SegmentPath(active_index_);
  // NOT O_APPEND: Linux pwrite() on an O_APPEND fd appends, and
  // AssignTemplate's in-place template-id patches must land at their
  // recorded offsets. Sequential appends use the fd position, seeked
  // to the (possibly recovered) end once here.
  active_fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (active_fd_ < 0) {
    return IOErrorFor("cannot open active segment", path);
  }
  if (::lseek(active_fd_, 0, SEEK_END) < 0) {
    return IOErrorFor("cannot seek active segment", path);
  }
  return Status::OK();
}

void SegmentedDiskBackend::CloseActiveFile() {
  if (active_fd_ >= 0) {
    (void)FlushWriteBuffer();  // best effort; crash recovery covers the rest
    ::close(active_fd_);
    active_fd_ = -1;
  }
}

Status SegmentedDiskBackend::FlushWriteBuffer() {
  if (!io_error_.ok()) return io_error_;
  size_t done = 0;
  while (done < write_buffer_.size()) {
    const ssize_t n = ops_->Write(active_fd_, write_buffer_.data() + done,
                                  write_buffer_.size() - done);
    if (n <= 0) {
      // The file now ends mid-frame (recovery truncates it); go sticky
      // — no further bytes are written, the buffer is dropped (its
      // records live on in the active_ mirror), and the segment never
      // seals: only durability is lost.
      std::string().swap(write_buffer_);
      io_error_ = IOErrorFor("short append", SegmentPath(active_index_));
      return io_error_;
    }
    done += static_cast<size_t>(n);
  }
  write_buffer_.clear();
  return Status::OK();
}

void SegmentedDiskBackend::AppendRecordLocked(LogRecord record,
                                              bool* buffering, Status* error) {
  const uint64_t crc = RecordChecksum(record.timestamp_us, record.text);
  // The record lands in the active_ mirror (the read path) and its
  // frame bytes in the write buffer — so the record is kept even when
  // a drain fails (sticky: the file is abandoned with a torn tail,
  // never sealed, and the segment lives on in memory; only durability
  // is lost).
  active_offsets_.push_back(active_bytes_);
  if (*buffering) {
    char header[kFrameHeaderBytes];
    FillFrameHeader(header, record, crc);
    write_buffer_.append(header, kFrameHeaderBytes);
    write_buffer_.append(record.text);
    if (wal_ != nullptr && !wal_replaying_) {
      // Same frame bytes, staged for one WAL write per batch. Replay
      // skips this: the frames being replayed came FROM the WAL.
      wal_scratch_.append(header, kFrameHeaderBytes);
      wal_scratch_.append(record.text);
    }
  }
  active_bytes_ += kFrameHeaderBytes + record.text.size();
  active_checksum_fold_ = HashCombine(active_checksum_fold_, crc);
  text_bytes_ += record.text.size();
  active_.push_back(std::move(record));
  if (*buffering) {
    Status io = Status::OK();
    if (write_buffer_.size() >= kWriteBufferBytes) {
      io = FlushWriteBuffer();
    }
    if (io.ok() && !wal_replaying_ &&
        active_bytes_ >= config_.segment_data_bytes) {
      io = SealActiveLocked();
    }
    if (!io.ok()) {
      if (error->ok()) *error = std::move(io);
      *buffering = false;
    }
  }
}

void SegmentedDiskBackend::FlushWalScratchLocked(Status* error) {
  if (wal_ == nullptr || wal_scratch_.empty()) return;
  if (!io_error_.ok()) {
    // Degraded: the WAL stopped with the rest of the write path; the
    // staged frames' records live on in the mirror only.
    wal_scratch_.clear();
    return;
  }
  const Status logged = wal_->Append(wal_scratch_);
  wal_scratch_.clear();
  if (!logged.ok()) {
    // Same sticky degradation as a segment write failure: with the WAL
    // gone, acknowledged ⇒ durable cannot be kept, so the backend stops
    // pretending (storage_ok flips false upstream).
    if (io_error_.ok()) io_error_ = logged;
    if (error->ok()) *error = logged;
  }
}

Status SegmentedDiskBackend::Append(LogRecord record) {
  // A missing fd (never opened, or a seal-path failure closed it) is
  // the same sticky fail-soft as a write error: the record must still
  // land in the mirror — dropping it would hand out wrong sequence
  // numbers.
  if (active_fd_ < 0 && io_error_.ok()) {
    io_error_ = Status::IOError("segmented disk backend has no active file");
  }
  Status error = io_error_;
  bool buffering = error.ok();
  AppendRecordLocked(std::move(record), &buffering, &error);
  FlushWalScratchLocked(&error);
  return error;
}

Status SegmentedDiskBackend::AppendBatch(std::vector<LogRecord> records) {
  if (active_fd_ < 0 && io_error_.ok()) {
    io_error_ = Status::IOError("segmented disk backend has no active file");
  }
  // Batch fast path: one Status/interface crossing per batch around
  // the same per-record core as Append(); a drain or seal failure
  // mid-batch stops touching the file but the remaining records still
  // land in the mirror.
  Status first_error = io_error_;
  bool buffering = first_error.ok();
  for (LogRecord& record : records) {
    AppendRecordLocked(std::move(record), &buffering, &first_error);
  }
  FlushWalScratchLocked(&first_error);
  return first_error;
}

Status SegmentedDiskBackend::Flush() {
  // Sticky-error check FIRST: a seal failure closes the fd with
  // io_error_ set, and Flush/Checkpoint must report that state — never
  // pretend a degraded store is durable.
  if (!io_error_.ok()) return io_error_;
  if (active_fd_ < 0) return Status::OK();
  const std::string path = SegmentPath(active_index_);
  BB_RETURN_IF_ERROR(FlushWriteBuffer());
  // Patch template ids rewritten after their frame was buffered; every
  // frame is on the file now, so the offsets are addressable.
  for (uint32_t idx : dirty_tids_) {
    const uint64_t tid = active_[idx].template_id;
    if (ops_->PWrite(active_fd_, &tid, 8,
                     active_offsets_[idx] + kFrameTidOffset) != 8) {
      return IOErrorFor("cannot patch template id", path);
    }
  }
  dirty_tids_.clear();
  if (ops_->Fsync(active_fd_) != 0) {
    return IOErrorFor("cannot sync active segment", path);
  }
  // Durability point: also refresh the .idx of sealed segments whose
  // postings drifted (template pwrites), so a clean restart loads them
  // without a rebuild.
  RewriteDirtyIndexes();
  return Status::OK();
}

void SegmentedDiskBackend::RewriteDirtyIndexes() {
  for (size_t si = 0; si < sealed_->size(); ++si) {
    const SealedSegment& seg = *(*sealed_)[si];
    if (!seg.index_dirty) continue;
    SegmentCache::Pin pin;
    if (!PinSegment(seg, &pin).ok()) continue;  // stays dirty; retried later
    // tid_fold is order-dependent, so it cannot be patched
    // incrementally like the postings — recompute it (and everything
    // else, for symmetry with the open-time rebuild) with a
    // header-only hop over the frames.
    SegmentIndex idx;
    idx.fencepost_interval = seg.fence_interval;
    size_t off = 0;
    for (uint64_t r = 0; r < seg.records; ++r) {
      uint32_t len;
      uint64_t ts;
      TemplateId tid;
      std::memcpy(&len, pin.data() + off, 4);
      std::memcpy(&ts, pin.data() + off + 4, 8);
      std::memcpy(&tid, pin.data() + off + kFrameTidOffset, 8);
      idx.AddRecord(off, ts, tid);
      off += kFrameHeaderBytes + len;
    }
    if (idx.WriteTo(SegmentIndexPath(config_.directory, si)).ok()) {
      seg.index_dirty = false;
    }
  }
}

Status SegmentedDiskBackend::SealActiveLocked() {
  const Status sealed = SealActiveImplLocked();
  if (!sealed.ok() && io_error_.ok()) io_error_ = sealed;
  return sealed;
}

Status SegmentedDiskBackend::SealActiveImplLocked() {
  BB_RETURN_IF_ERROR(Flush());
  // Every staged WAL frame is now fsynced in the segment file itself;
  // logging it would only replay it into the wrong (next) segment.
  wal_scratch_.clear();
  CloseActiveFile();

  std::shared_ptr<const SealedSegment> seg;
  const uint64_t first_seq = sealed_records_;
  {
    const std::string path = SegmentPath(active_index_);
    const int fd = ::open(path.c_str(), O_RDWR);
    if (fd < 0) return IOErrorFor("cannot reopen sealed segment", path);
    auto built = std::make_shared<SealedSegment>();
    built->first_seq = first_seq;
    built->records = active_count();
    built->checksum = active_checksum_fold_;
    built->data_len = static_cast<size_t>(active_bytes_);
    built->fd = fd;
    // Registered but NOT mapped: the first query that needs this
    // segment faults it into the cache. The sparse index is built from
    // the mirror (the Flush above already patched every dirty template
    // id onto the file, so mirror and file agree) and persisted beside
    // the segment — best effort, Open rebuilds it if it goes missing.
    built->entry = cache_->Register(fd, built->data_len, cache_owner_);
    SegmentIndex idx;
    for (size_t i = 0; i < active_.size(); ++i) {
      idx.AddRecord(active_offsets_[i], active_[i].timestamp_us,
                    active_[i].template_id);
    }
    (void)idx.WriteTo(SegmentIndexPath(config_.directory, active_index_));
    built->fence_interval = idx.fencepost_interval;
    built->fenceposts = std::move(idx.fenceposts);
    built->min_timestamp_us = idx.min_timestamp_us;
    built->max_timestamp_us = idx.max_timestamp_us;
    built->postings = std::move(idx.postings);
    seg = std::move(built);
  }

  // Publish copy-on-seal: outstanding SealedRecordViews keep the old
  // set; new snapshots see the new segment.
  auto next = std::make_shared<SealedSet>(*sealed_);
  next->push_back(seg);
  sealed_ = std::move(next);
  sealed_first_seqs_.push_back(first_seq);
  sealed_records_ += seg->records;

  // The segment is now served through the cache; release the mirror.
  std::vector<LogRecord>().swap(active_);
  std::string().swap(write_buffer_);
  active_offsets_.clear();
  active_bytes_ = 0;
  active_checksum_fold_ = kSegmentChecksumSeed;
  ++active_index_;
  BB_RETURN_IF_ERROR(WriteManifest());
  BB_RETURN_IF_ERROR(OpenActiveFile());
  if (wal_ != nullptr) {
    // Checkpoint-on-seal: the sealed segment's fsync covers every
    // logged frame, so the WAL starts over for the new active segment.
    return wal_->Rotate(active_index_, sealed_records_);
  }
  return Status::OK();
}

Status SegmentedDiskBackend::Read(uint64_t seq, LogRecord* out) const {
  if (seq >= size()) {
    return Status::NotFound("sequence " + std::to_string(seq) +
                            " beyond end of store");
  }
  if (seq >= sealed_records_) {
    *out = active_[seq - sealed_records_];
    return Status::OK();
  }
  const auto it = std::upper_bound(sealed_first_seqs_.begin(),
                                   sealed_first_seqs_.end(), seq);
  const SealedSegment& seg =
      *(*sealed_)[static_cast<size_t>(it - sealed_first_seqs_.begin()) - 1];
  SegmentCache::Pin pin;
  BB_RETURN_IF_ERROR(PinSegment(seg, &pin));
  MaterializeFrame(
      pin.data() + SeekOffset(pin.data(), seg, seq - seg.first_seq), out);
  return Status::OK();
}

Status SegmentedDiskBackend::Scan(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, const LogRecord&)>& fn) const {
  end = std::min(end, size());
  // Records materialize into one reused scratch (its string buffer is
  // recycled, so a steady-state scan allocates only on growth).
  LogRecord scratch;
  for (const auto& seg : *sealed_) {
    const uint64_t seg_end = seg->first_seq + seg->records;
    if (seg_end <= begin) continue;
    if (seg->first_seq >= end) break;
    const uint64_t lo = std::max(begin, seg->first_seq);
    const uint64_t hi = std::min(end, seg_end);
    SegmentCache::Pin pin;
    BB_RETURN_IF_ERROR(PinSegment(*seg, &pin));
    size_t off = SeekOffset(pin.data(), *seg, lo - seg->first_seq);
    for (uint64_t seq = lo; seq < hi; ++seq) {
      MaterializeFrame(pin.data() + off, &scratch);
      ++scan_visits_;
      fn(seq, scratch);
      off += kFrameHeaderBytes + scratch.text.size();
    }
  }
  for (uint64_t seq = std::max(begin, sealed_records_); seq < end; ++seq) {
    ++scan_visits_;
    fn(seq, active_[seq - sealed_records_]);
  }
  return Status::OK();
}

Status SegmentedDiskBackend::TemplateCounts(
    uint64_t begin, uint64_t end,
    std::unordered_map<TemplateId, uint64_t>* counts) const {
  end = std::min(end, size());
  for (const auto& seg : *sealed_) {
    const uint64_t seg_end = seg->first_seq + seg->records;
    if (seg_end <= begin) continue;
    if (seg->first_seq >= end) break;
    const uint64_t lo = std::max(begin, seg->first_seq);
    const uint64_t hi = std::min(end, seg_end);
    if (lo == seg->first_seq && hi == seg_end) {
      // Fully covered: answer from the postings — no pin, no mapping,
      // no record bytes touched.
      for (const auto& [tid, n] : seg->postings) (*counts)[tid] += n;
      continue;
    }
    // Partial coverage: header-only hop over the covered frames.
    SegmentCache::Pin pin;
    BB_RETURN_IF_ERROR(PinSegment(*seg, &pin));
    size_t off = SeekOffset(pin.data(), *seg, lo - seg->first_seq);
    for (uint64_t seq = lo; seq < hi; ++seq) {
      uint32_t len;
      TemplateId tid;
      std::memcpy(&len, pin.data() + off, 4);
      std::memcpy(&tid, pin.data() + off + kFrameTidOffset, 8);
      ++scan_visits_;
      ++(*counts)[tid];
      off += kFrameHeaderBytes + len;
    }
  }
  for (uint64_t seq = std::max(begin, sealed_records_); seq < end; ++seq) {
    ++scan_visits_;
    ++(*counts)[active_[seq - sealed_records_].template_id];
  }
  return Status::OK();
}

Status SegmentedDiskBackend::ScanTemplates(
    uint64_t begin, uint64_t end, const std::unordered_set<TemplateId>& ids,
    const std::function<void(uint64_t, TemplateId)>& fn) const {
  end = std::min(end, size());
  for (const auto& seg : *sealed_) {
    const uint64_t seg_end = seg->first_seq + seg->records;
    if (seg_end <= begin) continue;
    if (seg->first_seq >= end) break;
    // Postings check BEFORE any pin: a segment holding none of the
    // wanted templates is skipped without being mapped at all — this
    // is what keeps template-filtered queries over a mostly-cold topic
    // from faulting the whole topic into the cache.
    bool overlaps = false;
    for (TemplateId tid : ids) {
      if (seg->postings.count(tid) != 0) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) continue;
    const uint64_t lo = std::max(begin, seg->first_seq);
    const uint64_t hi = std::min(end, seg_end);
    SegmentCache::Pin pin;
    BB_RETURN_IF_ERROR(PinSegment(*seg, &pin));
    size_t off = SeekOffset(pin.data(), *seg, lo - seg->first_seq);
    for (uint64_t seq = lo; seq < hi; ++seq) {
      uint32_t len;
      TemplateId tid;
      std::memcpy(&len, pin.data() + off, 4);
      std::memcpy(&tid, pin.data() + off + kFrameTidOffset, 8);
      ++scan_visits_;
      if (ids.count(tid) != 0) fn(seq, tid);
      off += kFrameHeaderBytes + len;
    }
  }
  for (uint64_t seq = std::max(begin, sealed_records_); seq < end; ++seq) {
    ++scan_visits_;
    const TemplateId tid = active_[seq - sealed_records_].template_id;
    if (ids.count(tid) != 0) fn(seq, tid);
  }
  return Status::OK();
}

Status SegmentedDiskBackend::TemplateCountsInRange(
    uint64_t begin, uint64_t end, uint64_t min_ts_us, uint64_t max_ts_us,
    std::unordered_map<TemplateId, uint64_t>* counts) const {
  if (min_ts_us == 0 && max_ts_us == UINT64_MAX) {
    return TemplateCounts(begin, end, counts);
  }
  end = std::min(end, size());
  for (const auto& seg : *sealed_) {
    const uint64_t seg_end = seg->first_seq + seg->records;
    if (seg_end <= begin) continue;
    if (seg->first_seq >= end) break;
    // Time pruning via the persisted index range: a sealed segment
    // whose [min, max] timestamps miss the window contributes nothing —
    // skipped without a pin, exactly like a postings miss.
    if (seg->max_timestamp_us < min_ts_us || seg->min_timestamp_us > max_ts_us)
      continue;
    const uint64_t lo = std::max(begin, seg->first_seq);
    const uint64_t hi = std::min(end, seg_end);
    const bool ts_covered =
        seg->min_timestamp_us >= min_ts_us && seg->max_timestamp_us <= max_ts_us;
    if (lo == seg->first_seq && hi == seg_end && ts_covered) {
      // Fully covered in both dimensions: postings answer it.
      for (const auto& [tid, n] : seg->postings) (*counts)[tid] += n;
      continue;
    }
    SegmentCache::Pin pin;
    BB_RETURN_IF_ERROR(PinSegment(*seg, &pin));
    size_t off = SeekOffset(pin.data(), *seg, lo - seg->first_seq);
    for (uint64_t seq = lo; seq < hi; ++seq) {
      uint32_t len;
      uint64_t ts;
      TemplateId tid;
      std::memcpy(&len, pin.data() + off, 4);
      std::memcpy(&ts, pin.data() + off + 4, 8);
      std::memcpy(&tid, pin.data() + off + kFrameTidOffset, 8);
      ++scan_visits_;
      if (ts >= min_ts_us && ts <= max_ts_us) ++(*counts)[tid];
      off += kFrameHeaderBytes + len;
    }
  }
  for (uint64_t seq = std::max(begin, sealed_records_); seq < end; ++seq) {
    ++scan_visits_;
    const LogRecord& rec = active_[seq - sealed_records_];
    if (rec.timestamp_us >= min_ts_us && rec.timestamp_us <= max_ts_us) {
      ++(*counts)[rec.template_id];
    }
  }
  return Status::OK();
}

Status SegmentedDiskBackend::ScanTemplatesInRange(
    uint64_t begin, uint64_t end, uint64_t min_ts_us, uint64_t max_ts_us,
    const std::unordered_set<TemplateId>& ids,
    const std::function<void(uint64_t, TemplateId)>& fn) const {
  if (min_ts_us == 0 && max_ts_us == UINT64_MAX) {
    return ScanTemplates(begin, end, ids, fn);
  }
  end = std::min(end, size());
  for (const auto& seg : *sealed_) {
    const uint64_t seg_end = seg->first_seq + seg->records;
    if (seg_end <= begin) continue;
    if (seg->first_seq >= end) break;
    if (seg->max_timestamp_us < min_ts_us || seg->min_timestamp_us > max_ts_us)
      continue;
    bool overlaps = false;
    for (TemplateId tid : ids) {
      if (seg->postings.count(tid) != 0) {
        overlaps = true;
        break;
      }
    }
    if (!overlaps) continue;
    const uint64_t lo = std::max(begin, seg->first_seq);
    const uint64_t hi = std::min(end, seg_end);
    SegmentCache::Pin pin;
    BB_RETURN_IF_ERROR(PinSegment(*seg, &pin));
    size_t off = SeekOffset(pin.data(), *seg, lo - seg->first_seq);
    for (uint64_t seq = lo; seq < hi; ++seq) {
      uint32_t len;
      uint64_t ts;
      TemplateId tid;
      std::memcpy(&len, pin.data() + off, 4);
      std::memcpy(&ts, pin.data() + off + 4, 8);
      std::memcpy(&tid, pin.data() + off + kFrameTidOffset, 8);
      ++scan_visits_;
      if (ts >= min_ts_us && ts <= max_ts_us && ids.count(tid) != 0) {
        fn(seq, tid);
      }
      off += kFrameHeaderBytes + len;
    }
  }
  for (uint64_t seq = std::max(begin, sealed_records_); seq < end; ++seq) {
    ++scan_visits_;
    const LogRecord& rec = active_[seq - sealed_records_];
    if (rec.timestamp_us >= min_ts_us && rec.timestamp_us <= max_ts_us &&
        ids.count(rec.template_id) != 0) {
      fn(seq, rec.template_id);
    }
  }
  return Status::OK();
}

Status SegmentedDiskBackend::ReplicationRead(uint64_t segment_index,
                                             uint64_t offset,
                                             uint64_t max_bytes,
                                             ReplicationChunk* out) const {
  out->segment_index = segment_index;
  out->offset = offset;
  out->data.clear();
  out->segment_sealed = false;
  out->segment_records = 0;
  out->segment_checksum = 0;
  out->segment_data_len = 0;
  out->source_records = size();
  out->source_segments = sealed_->size();
  uint64_t sealed_bytes = 0;
  for (const auto& seg : *sealed_) sealed_bytes += seg->data_len;
  out->source_bytes = sealed_bytes + active_bytes_;
  if (max_bytes == 0) max_bytes = 1;

  if (segment_index < sealed_->size()) {
    const SealedSegment& seg = *(*sealed_)[segment_index];
    out->segment_sealed = true;
    out->segment_records = seg.records;
    out->segment_checksum = seg.checksum;
    out->segment_data_len = seg.data_len;
    if (offset > seg.data_len) {
      return Status::Corruption("replication offset beyond sealed segment");
    }
    if (offset == seg.data_len) return Status::OK();  // advance to next
    SegmentCache::Pin pin;
    BB_RETURN_IF_ERROR(PinSegment(seg, &pin));
    // Chunks carry whole frames only: walk (and checksum-verify) frames
    // from `offset` until the next one would overflow max_bytes. A
    // parse failure at the very first frame means the follower's resume
    // offset is not a frame boundary.
    ByteReader reader(pin.data() + offset, seg.data_len - offset);
    size_t take = 0;
    while (!reader.AtEnd()) {
      Frame frame;
      if (!ParseFrame(&reader, pin.data() + offset, &frame)) {
        return take == 0 ? Status::InvalidArgument(
                               "replication offset is not a frame boundary")
                         : Status::Corruption(
                               "corrupt frame in sealed segment during "
                               "replication read");
      }
      if (take != 0 && reader.position() > max_bytes) break;
      take = reader.position();
      if (take >= max_bytes) break;
    }
    out->data.assign(pin.data() + offset, take);
    return Status::OK();
  }

  if (segment_index == active_index_) {
    if (offset > active_bytes_) {
      return Status::Corruption("replication offset beyond active tail");
    }
    if (offset == active_bytes_) return Status::OK();  // caught up
    const auto it = std::lower_bound(active_offsets_.begin(),
                                     active_offsets_.end(), offset);
    if (it == active_offsets_.end() || *it != offset) {
      return Status::InvalidArgument(
          "replication offset is not a frame boundary");
    }
    // Re-frame from the in-memory mirror: FillFrameHeader is
    // deterministic, so these are byte-identical to the frames the WAL
    // and the segment file hold — with the freshest template ids (the
    // mirror is authoritative until the next flush patches the file).
    for (size_t ridx = static_cast<size_t>(it - active_offsets_.begin());
         ridx < active_.size(); ++ridx) {
      const LogRecord& rec = active_[ridx];
      if (!out->data.empty() &&
          out->data.size() + kFrameHeaderBytes + rec.text.size() > max_bytes) {
        break;
      }
      const uint64_t crc = RecordChecksum(rec.timestamp_us, rec.text);
      char header[kFrameHeaderBytes];
      FillFrameHeader(header, rec, crc);
      out->data.append(header, kFrameHeaderBytes);
      out->data.append(rec.text);
      if (out->data.size() >= max_bytes) break;
    }
    return Status::OK();
  }

  return Status::Corruption("replication segment index beyond active tail");
}

Status SegmentedDiskBackend::ReplicationPosition(uint64_t* segment_index,
                                                 uint64_t* offset) const {
  *segment_index = active_index_;
  *offset = active_bytes_;
  return Status::OK();
}

Status SegmentedDiskBackend::VerifySealedSegment(uint64_t segment_index,
                                                 uint64_t expect_records,
                                                 uint64_t expect_checksum) const {
  if (segment_index >= sealed_->size()) {
    return Status::NotFound("segment not sealed locally");
  }
  const SealedSegment& seg = *(*sealed_)[segment_index];
  if (seg.records != expect_records || seg.checksum != expect_checksum) {
    return Status::Corruption("sealed segment diverges from the primary");
  }
  return Status::OK();
}

Status SegmentedDiskBackend::SealActive() {
  if (!io_error_.ok()) return io_error_;
  if (active_count() == 0) return Status::OK();
  return SealActiveLocked();
}

Status SegmentedDiskBackend::AssignTemplate(uint64_t seq,
                                            TemplateId template_id) {
  if (seq >= size()) {
    return Status::NotFound("sequence beyond end of store");
  }
  if (seq >= sealed_records_) {
    const uint32_t idx = static_cast<uint32_t>(seq - sealed_records_);
    active_[idx].template_id = template_id;
    // The frame's buffered/file copy still holds the old id; the file
    // is patched at the next flush/seal, and the mirror is
    // authoritative for reads until then.
    dirty_tids_.push_back(idx);
    return Status::OK();
  }
  const auto it = std::upper_bound(sealed_first_seqs_.begin(),
                                   sealed_first_seqs_.end(), seq);
  const size_t seg_index =
      static_cast<size_t>(it - sealed_first_seqs_.begin()) - 1;
  const SealedSegment& seg = *(*sealed_)[seg_index];
  SegmentCache::Pin pin;
  BB_RETURN_IF_ERROR(PinSegment(seg, &pin));
  const size_t off =
      SeekOffset(pin.data(), seg, seq - seg.first_seq) + kFrameTidOffset;
  TemplateId current;
  std::memcpy(&current, pin.data() + off, 8);
  if (current == template_id) return Status::OK();
  // MAP_SHARED keeps the read-only mapping coherent with this write;
  // frame checksums exclude the template id by design.
  if (ops_->PWrite(seg.fd, &template_id, 8, off) != 8) {
    return IOErrorFor("cannot patch template id", SegmentPath(seg_index));
  }
  auto pit = seg.postings.find(current);
  if (pit != seg.postings.end() && --pit->second == 0) seg.postings.erase(pit);
  ++seg.postings[template_id];
  seg.index_dirty = true;
  return Status::OK();
}

Status SegmentedDiskBackend::AssignTemplates(
    uint64_t begin_seq, const std::vector<TemplateId>& ids) {
  const uint64_t end_seq = begin_seq + ids.size();
  if (end_seq > size()) {
    return Status::NotFound("sequence beyond end of store");
  }
  // Sealed part: walk the segments in order (the range is contiguous —
  // no per-record binary search) and pwrite only ids that actually
  // changed; after a model merge most established assignments are
  // unchanged, so the common case costs one mapped read per record.
  for (size_t si = 0; si < sealed_->size(); ++si) {
    const SealedSegment& seg = *(*sealed_)[si];
    const uint64_t seg_end = seg.first_seq + seg.records;
    if (seg_end <= begin_seq) continue;
    if (seg.first_seq >= end_seq) break;
    const uint64_t lo = std::max(begin_seq, seg.first_seq);
    const uint64_t hi = std::min(end_seq, seg_end);
    SegmentCache::Pin pin;
    BB_RETURN_IF_ERROR(PinSegment(seg, &pin));
    size_t off = SeekOffset(pin.data(), seg, lo - seg.first_seq);
    for (uint64_t seq = lo; seq < hi; ++seq) {
      uint32_t len;
      std::memcpy(&len, pin.data() + off, 4);
      const TemplateId id = ids[seq - begin_seq];
      TemplateId current;
      std::memcpy(&current, pin.data() + off + kFrameTidOffset, 8);
      if (current != id) {
        if (ops_->PWrite(seg.fd, &id, 8, off + kFrameTidOffset) != 8) {
          return IOErrorFor("cannot patch template id", SegmentPath(si));
        }
        auto pit = seg.postings.find(current);
        if (pit != seg.postings.end() && --pit->second == 0) {
          seg.postings.erase(pit);
        }
        ++seg.postings[id];
        seg.index_dirty = true;
      }
      off += kFrameHeaderBytes + len;
    }
  }
  for (uint64_t seq = std::max(begin_seq, sealed_records_); seq < end_seq;
       ++seq) {
    const uint32_t idx = static_cast<uint32_t>(seq - sealed_records_);
    const TemplateId id = ids[seq - begin_seq];
    if (active_[idx].template_id == id) continue;
    active_[idx].template_id = id;
    dirty_tids_.push_back(idx);
  }
  return Status::OK();
}

Status SegmentedDiskBackend::Clear() {
  CloseActiveFile();
  const uint64_t total_segments = active_index_ + 1;
  // Outstanding views keep their segments alive (open fds + pinned or
  // re-pinnable cache entries) via the shared set; the directory
  // entries can go away underneath them (POSIX keeps the bytes of an
  // open-or-mapped unlinked file reachable).
  sealed_ = std::make_shared<SealedSet>();
  sealed_first_seqs_.clear();
  sealed_records_ = 0;
  std::vector<LogRecord>().swap(active_);
  std::string().swap(write_buffer_);
  active_offsets_.clear();
  active_bytes_ = 0;
  active_checksum_fold_ = kSegmentChecksumSeed;
  dirty_tids_.clear();
  text_bytes_ = 0;
  metadata_.clear();
  io_error_ = Status::OK();  // new files: the old failure no longer applies
  for (uint64_t i = 0; i < total_segments; ++i) {
    std::remove(SegmentPath(i).c_str());
    std::remove(SegmentIndexPath(config_.directory, i).c_str());
  }
  active_index_ = 0;
  wal_scratch_.clear();
  wal_replayed_ = 0;
  if (wal_ != nullptr) {
    // Fresh store, fresh log: the rotation deletes the old file,
    // restarts at index 0 / sequence 0, and clears the WAL's sticky
    // error along with ours.
    BB_RETURN_IF_ERROR(wal_->Rotate(0, 0));
  }
  BB_RETURN_IF_ERROR(WriteManifest());
  return OpenActiveFile();
}

Status SegmentedDiskBackend::Checkpoint(std::string_view metadata) {
  metadata_.assign(metadata);
  BB_RETURN_IF_ERROR(Flush());
  return WriteManifest();
}

std::shared_ptr<const SealedRecordView> SegmentedDiskBackend::SnapshotSealed()
    const {
  return std::make_shared<View>(sealed_, sealed_records_, cache_);
}

Status SegmentedDiskBackend::WaitDurable() {
  // Called with NO topic lock held (see storage_backend.h); wal_ is set
  // once at Open and the WriteAheadLog is internally synchronized.
  if (wal_ == nullptr) return Status::OK();
  return wal_->WaitDurable();
}

uint64_t SegmentedDiskBackend::wal_bytes() const {
  return wal_ != nullptr ? wal_->wal_bytes() : 0;
}

uint64_t SegmentedDiskBackend::wal_group_commits() const {
  return wal_ != nullptr ? wal_->group_commits() : 0;
}

uint64_t SegmentedDiskBackend::wal_fsyncs() const {
  return wal_ != nullptr ? wal_->fsyncs() : 0;
}

}  // namespace bytebrain
