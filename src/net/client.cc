#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace bytebrain {
namespace net {

namespace {
Status Errno(const char* what) {
  return Status::IOError(std::string(what) + ": " + std::strerror(errno));
}
}  // namespace

NetClient::~NetClient() { Close(); }

Status NetClient::Connect(const std::string& host, uint16_t port,
                          uint64_t recv_timeout_ms) {
  if (fd_ >= 0) return Status::InvalidArgument("already connected");
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status s = Errno("connect");
    ::close(fd);
    return s;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (recv_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(recv_timeout_ms / 1000);
    tv.tv_usec = static_cast<suseconds_t>((recv_timeout_ms % 1000) * 1000);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  fd_ = fd;
  return Status::OK();
}

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status NetClient::WriteAll(const char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    // MSG_NOSIGNAL: a peer that died mid-exchange must surface as EPIPE
    // to the caller, not kill the process with SIGPIPE.
    const ssize_t n = ::send(fd_, data + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Errno("write");
  }
  return Status::OK();
}

Status NetClient::ReadExact(char* data, size_t len) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::read(fd_, data + off, len - off);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::IOError("connection closed by server");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::IOError("receive timeout");
    }
    return Errno("read");
  }
  return Status::OK();
}

Status NetClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  return WriteAll(bytes.data(), bytes.size());
}

Status NetClient::SendFrame(std::string_view payload) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  const uint32_t len = static_cast<uint32_t>(payload.size());
  char hdr[4];
  std::memcpy(hdr, &len, 4);
  Status s = WriteAll(hdr, 4);
  if (!s.ok()) return s;
  return WriteAll(payload.data(), payload.size());
}

Status NetClient::ReceiveFrame(std::string* payload) {
  if (fd_ < 0) return Status::InvalidArgument("not connected");
  char hdr[4];
  Status s = ReadExact(hdr, 4);
  if (!s.ok()) return s;
  uint32_t len = 0;
  std::memcpy(&len, hdr, 4);
  if (len > max_frame_bytes_) {
    return Status::IOError("frame announces " + std::to_string(len) +
                           " bytes, over the client limit");
  }
  payload->resize(len);
  return ReadExact(payload->data(), len);
}

Result<std::string> NetClient::Call(std::string_view request_bytes) {
  Status s = SendFrame(request_bytes);
  if (!s.ok()) return s;
  std::string response;
  s = ReceiveFrame(&response);
  if (!s.ok()) return s;
  return response;
}

}  // namespace net
}  // namespace bytebrain
