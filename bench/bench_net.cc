// bench_net — loopback throughput/latency of the epoll TCP front.
//
// Each benchmark stands up a TcpServer over a fresh ServiceFrontend,
// fans out T tenants × C connections (one client thread each), and
// drives pipelined IngestBatch frames through real sockets. Reported:
//
//   logs_per_sec  — aggregate records admitted per wall second
//   p50_us/p99_us — per-request latency percentiles (send → response
//                   decoded), sampled across every connection
//
// The ISSUE-8 acceptance bar is the 4 tenants × 16 connections ×
// batch-1024 point: >= 500k logs/s aggregate on the 1-core container.
// Pipelining (a window of in-flight batches per connection) is what
// hides the loopback round trip; depth 4 is plenty at batch 1024.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "benchmark/benchmark.h"
#include "net/client.h"
#include "net/tcp_server.h"

namespace bytebrain {
namespace {

std::string BenchLog(int i) {
  return "Accepted password for user" + std::to_string(i % 50) +
         " from 10.0." + std::to_string(i % 17) + "." +
         std::to_string(i % 9 + 1) + " port " + std::to_string(40000 + i) +
         " ssh2";
}

TopicConfig BenchTopicConfig() {
  TopicConfig config;
  config.initial_train_records = 2000;
  config.train_interval_records = 1u << 30;
  config.train_volume_bytes = 1ull << 40;
  config.num_threads = 1;
  config.async_training = false;
  return config;
}

struct RunResult {
  uint64_t records = 0;
  std::vector<uint64_t> latencies_us;
};

/// One client thread: pipelined IngestBatch over one connection.
RunResult DriveConnection(uint16_t port, const std::string& tenant,
                          int batches, int batch_size, int window) {
  RunResult result;
  net::NetClient client;
  if (!client.Connect("127.0.0.1", port).ok()) return result;

  // Pre-encode the batch frames (encode cost is the CLIENT's problem,
  // not the measured server path — but latency measurement still spans
  // the full round trip).
  api::IngestBatchRequest batch;
  batch.topic = "t";
  for (int i = 0; i < batch_size; ++i) batch.texts.push_back(BenchLog(i));

  int sent = 0;
  int received = 0;
  std::vector<std::chrono::steady_clock::time_point> send_times(
      static_cast<size_t>(batches));
  result.latencies_us.reserve(static_cast<size_t>(batches));
  while (received < batches) {
    while (sent < batches && sent - received < window) {
      send_times[static_cast<size_t>(sent)] = std::chrono::steady_clock::now();
      auto id = client.SendRequest(api::ApiMethod::kIngestBatch, tenant, batch);
      if (!id.ok()) return result;
      ++sent;
    }
    api::IngestBatchResponse resp;
    const Status s = client.ReadResponse(&resp);
    const auto now = std::chrono::steady_clock::now();
    if (s.IsIOError()) return result;
    if (s.ok()) result.records += resp.seqs.size();
    result.latencies_us.push_back(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            now - send_times[static_cast<size_t>(received)])
            .count()));
    ++received;
  }
  return result;
}

uint64_t Percentile(std::vector<uint64_t>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t idx = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size() - 1)));
  return sorted_us[idx];
}

/// args: {tenants, connections_total, batch_size}
void BM_NetIngest(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  const int connections = static_cast<int>(state.range(1));
  const int batch_size = static_cast<int>(state.range(2));
  constexpr int kWindow = 4;

  api::ServiceFrontend frontend;
  net::TcpServerConfig server_config;
  server_config.num_workers = 2;
  net::TcpServer server(&frontend, server_config);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  for (int t = 0; t < tenants; ++t) {
    api::CreateTopicRequest req;
    req.name = "t";
    req.config = BenchTopicConfig();
    api::CreateTopicResponse resp;
    frontend.CreateTopic("tenant" + std::to_string(t), req, &resp);
  }

  uint64_t total_records = 0;
  std::vector<uint64_t> all_latencies;
  for (auto _ : state) {
    // ~512k records per iteration regardless of shape, split evenly.
    const int batches_per_conn =
        std::max(1, (512 * 1024) / (batch_size * connections));
    std::vector<RunResult> results(static_cast<size_t>(connections));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(connections));
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        results[static_cast<size_t>(c)] = DriveConnection(
            server.port(), "tenant" + std::to_string(c % tenants),
            batches_per_conn, batch_size, kWindow);
      });
    }
    for (std::thread& t : threads) t.join();
    for (RunResult& r : results) {
      total_records += r.records;
      all_latencies.insert(all_latencies.end(), r.latencies_us.begin(),
                           r.latencies_us.end());
    }
  }

  std::sort(all_latencies.begin(), all_latencies.end());
  state.SetItemsProcessed(static_cast<int64_t>(total_records));
  state.counters["logs_per_sec"] = benchmark::Counter(
      static_cast<double>(total_records), benchmark::Counter::kIsRate);
  state.counters["p50_us"] =
      static_cast<double>(Percentile(all_latencies, 0.50));
  state.counters["p99_us"] =
      static_cast<double>(Percentile(all_latencies, 0.99));
  state.counters["connections"] = connections;
  state.counters["tenants"] = tenants;
  server.Shutdown();
}

// {tenants, connections, batch_size}. The 4x16x1024 row is the
// acceptance point; the others map the shape of the curve.
BENCHMARK(BM_NetIngest)
    ->Args({1, 1, 1024})
    ->Args({4, 4, 1024})
    ->Args({4, 16, 1024})
    ->Args({4, 16, 64})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->MeasureProcessCPUTime();

}  // namespace
}  // namespace bytebrain

BENCHMARK_MAIN();
