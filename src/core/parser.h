// ByteBrainParser — the library's main entry point.
//
// Wraps the full two-phase pipeline of the paper: offline training
// (preprocess -> initial grouping -> hierarchical clustering) and online
// matching against template texts, plus incremental retraining with model
// merge, adoption of unmatched logs as temporary templates, and
// query-time precision adjustment via the saturation threshold.
//
// Typical use:
//   ByteBrainParser parser(ByteBrainOptions{});
//   parser.Train(training_logs);
//   TemplateId leaf = parser.Match("Accepted password for root ...");
//   TemplateId coarse = parser.ResolveAtThreshold(leaf, 0.5).value();
//   std::string text = parser.TemplateText(coarse);
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/model.h"
#include "core/trainer.h"
#include "core/variable_replacer.h"
#include "util/status.h"

namespace bytebrain {

/// Full configuration for a parser instance.
struct ByteBrainOptions {
  TrainerOptions trainer;
  /// Template-similarity threshold for retrain merges (§3).
  double merge_similarity = 0.75;
  /// Use clustering assignments for training logs instead of text
  /// matching ("w/ naive match" Fig. 8 variant).
  bool naive_match = false;
  /// Disable the hand-rolled preprocessing fast paths (the paper's
  /// "w/o JIT" analogue: same algorithm, scalar reference implementation).
  bool unoptimized = false;
};

/// The fully-built successor state of a retraining cycle: an immutable
/// model plus the matcher constructed over it, produced off-lock by
/// PrepareRetrain and published in O(1) by CommitRetrain. Between those
/// two calls nothing reads it, so no synchronization is needed on it.
struct PreparedRetrain {
  TemplateModel model;
  std::unique_ptr<TemplateMatcher> matcher;
};

/// Facade over trainer + model + matcher. Train/Retrain/CommitRetrain
/// are exclusive with each other and with Match*/MatchOrAdopt; Match*
/// are safe to call concurrently between them. PrepareRetrain is const
/// and may run concurrently with everything except AddVariableRule —
/// that is the hook that lets the service train in the background.
class ByteBrainParser {
 public:
  explicit ByteBrainParser(ByteBrainOptions options);

  /// Adds a tenant-defined variable-replacement rule (before Train).
  Status AddVariableRule(std::string name, std::string_view pattern);

  /// Trains from scratch, replacing any existing model.
  Status Train(const std::vector<std::string>& logs);

  /// Trains on a new batch and merges into the existing model; temporary
  /// templates adopted online are dropped and re-learned (§3).
  Status Retrain(const std::vector<std::string>& logs);

  /// Snapshot half of the async retraining protocol: a deep copy of the
  /// current model with its own TokenTable (TemplateModel::Clone), safe
  /// to hand to a background thread. Call with the same exclusion as
  /// Match (no concurrent Train/Retrain/adoption); cost is O(model),
  /// which is orders of magnitude below a training run.
  TemplateModel SnapshotModel() const { return model_.Clone(); }

  /// Rebuild half: trains a fresh model on `logs` and merges it into
  /// `base` (a SnapshotModel clone; temporaries dropped first, exactly
  /// like Retrain), then builds the matcher over the result. Touches no
  /// live parser state — const, and safe to run concurrently with
  /// Match*/MatchOrAdopt/Train on other threads. The embedded replacer
  /// pointer means the parser must outlive the prepared state. The view
  /// overload is what the service's off-lock training uses: views into
  /// mmap'd sealed storage segments, valid for the call only.
  Result<PreparedRetrain> PrepareRetrain(
      TemplateModel base, const std::vector<std::string>& logs) const;
  Result<PreparedRetrain> PrepareRetrain(
      TemplateModel base, const std::vector<std::string_view>& logs) const;

  /// Publish half: swaps the prepared model/matcher in. O(1) pointer
  /// swaps — this is the only step the service's exclusive lock must
  /// cover, which is what keeps ingest latency independent of training
  /// cost. Requires the same exclusion as Train/Retrain.
  void CommitRetrain(PreparedRetrain prepared);

  /// Most precise matching template, or kInvalidTemplateId.
  TemplateId Match(std::string_view log) const;

  /// Matches a batch across N queues (paper's online parallelism). The
  /// view overload serves callers whose logs live in borrowed buffers
  /// (mmap'd training windows, wire-request payloads).
  std::vector<TemplateId> MatchAll(const std::vector<std::string>& logs,
                                   int num_threads) const;
  std::vector<TemplateId> MatchAll(const std::vector<std::string_view>& logs,
                                   int num_threads) const;

  /// Like Match, but a miss inserts the log itself as a temporary
  /// template and returns its new id (§3 "Online Matching"). When
  /// `adopted` is non-null it is set to true iff this call created a new
  /// temporary template — callers needing that signal must not re-Match
  /// (the old probe-then-adopt dance matched every log up to three
  /// times).
  TemplateId MatchOrAdopt(std::string_view log, bool* adopted = nullptr);

  /// Folds a shard-local pending model (temporary roots adopted during a
  /// sharded ingest batch) into the live model, starting at 0-based
  /// pending-node index `first`: each pending node is adopted as a
  /// temporary of THIS model (tokens re-interned from the pending
  /// model's private table) and inserted into the live matcher
  /// incrementally (token strings move out of `pending`, see
  /// TemplateModel::MergeTemporariesFrom). Returns the new ids in
  /// pending-node order. Requires
  /// the same exclusion as MatchOrAdopt's adopt path (the service calls
  /// it only from the exclusive batch section). Callers are responsible
  /// for only folding pendings whose miss verdict is still current —
  /// i.e. the model is unchanged since the shard matched them; stale
  /// pendings must go through MatchOrAdopt instead.
  std::vector<TemplateId> FoldTemporaries(TemplateModel* pending, size_t first,
                                          size_t count = SIZE_MAX);

  /// Query-time precision adjustment (§3 "Query").
  Result<TemplateId> ResolveAtThreshold(TemplateId id,
                                        double threshold) const;

  std::string TemplateText(TemplateId id) const;
  std::string MergedWildcardText(TemplateId id) const;

  const TemplateModel& model() const { return model_; }
  /// The replacer matching/training run on; immutable after setup (rules
  /// are added at topic creation), so shard-local matchers may share it.
  const VariableReplacer& replacer() const { return replacer_; }
  const std::vector<TemplateId>& training_assignments() const {
    return training_assignments_;
  }
  const ByteBrainOptions& options() const { return options_; }
  const TrainOutput& last_train_output() const { return last_output_; }

  /// Serialized model bytes (Table 5's "Model Size").
  uint64_t ModelBytes() const { return model_.ApproxBytes(); }

 private:
  void RebuildMatcher();

  ByteBrainOptions options_;
  VariableReplacer replacer_;
  TemplateModel model_;
  std::unique_ptr<TemplateMatcher> matcher_;
  std::vector<TemplateId> training_assignments_;
  TrainOutput last_output_;
  std::mutex adopt_mu_;
};

}  // namespace bytebrain
