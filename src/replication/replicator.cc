#include "replication/replicator.h"

#include <chrono>
#include <utility>
#include <vector>

#include "logstore/frame_format.h"
#include "logstore/log_record.h"
#include "service/log_service.h"
#include "util/serde.h"

namespace bytebrain {
namespace replication {

namespace {

void SleepUs(uint64_t us) {
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

}  // namespace

Replicator::Replicator(api::ServiceFrontend* follower, ReplicatorConfig config)
    : follower_(follower), config_(std::move(config)) {}

Replicator::~Replicator() { Stop(); }

void Replicator::Start() {
  if (running_.exchange(true)) return;
  thread_ = std::thread([this] { Loop(); });
}

void Replicator::Stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
}

bool Replicator::caught_up() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return caught_up_;
}

ReplicatorStats Replicator::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

Status Replicator::WaitCaughtUp(uint64_t timeout_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    if (!running_.load()) {
      (void)RunOnce();  // drive the sync inline when no loop is running
    }
    if (caught_up()) return Status::OK();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::Aborted("replicator did not catch up within " +
                             std::to_string(timeout_ms) + "ms");
    }
    SleepUs(2'000);
  }
}

void Replicator::Loop() {
  while (running_.load()) {
    const Status pass = RunOnce();
    if (!running_.load()) break;
    if (!pass.ok()) {
      SleepUs(config_.retry_backoff_us);
    } else {
      SleepUs(config_.poll_interval_us);
    }
  }
}

Result<std::string> Replicator::Roundtrip(std::string request_bytes) {
  if (config_.transport) return config_.transport(request_bytes);
  if (!client_.connected()) {
    const Status c = client_.Connect(config_.primary_host, config_.primary_port,
                                     config_.recv_timeout_ms);
    if (!c.ok()) return c;
  }
  auto resp = client_.Call(request_bytes);
  // A broken connection poisons the frame stream; drop it so the next
  // attempt reconnects cleanly.
  if (!resp.ok()) client_.Close();
  return resp;
}

template <typename Request, typename Response>
Status Replicator::Call(api::ApiMethod method, const Request& req,
                        Response* resp) {
  const uint64_t id = next_request_id_++;
  auto raw = Roundtrip(api::EncodeRequest(method, /*tenant=*/"", req, id,
                                          config_.replication_token));
  if (!raw.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.transport_errors;
    return raw.status();
  }
  return api::DecodeResponse(raw.value(), resp);
}

std::string Replicator::LocalDir(const std::string& name) const {
  // Flatten the catalog name ("tenant/topic") into one path component —
  // the storage layer creates a single directory level.
  std::string leaf = name;
  for (char& c : leaf) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.';
    if (!ok) c = '_';
  }
  return config_.storage_root + "/" + leaf;
}

void Replicator::Resync(const std::string& name) {
  (void)follower_->service()->DeleteTopic(name, /*purge_storage=*/true);
  cursors_.erase(name);
  std::lock_guard<std::mutex> lock(stats_mu_);
  ++stats_.divergences;
}

Status Replicator::RunOnce() {
  // A promoted node stops mirroring: the pass is a no-op (and reports
  // caught up so WaitCaughtUp callers do not hang on a promotion race).
  if (!follower_->is_follower()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    caught_up_ = true;
    return Status::OK();
  }

  // 1. Enumerate the primary's catalog.
  api::ReplPullRequest enumerate;
  api::ReplPullResponse catalog;
  Status s = Call(api::ApiMethod::kReplPull, enumerate, &catalog);
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    caught_up_ = false;
    return s;
  }

  // 2. Drop local topics the primary no longer has.
  LogService* service = follower_->service();
  for (const std::string& local : service->TopicNames()) {
    bool on_primary = false;
    for (const std::string& remote : catalog.topics) {
      if (remote == local) {
        on_primary = true;
        break;
      }
    }
    if (!on_primary) {
      (void)service->DeleteTopic(local, /*purge_storage=*/true);
      cursors_.erase(local);
    }
  }

  // 3. Pull every topic to the primary's current position.
  Status first_error = Status::OK();
  bool all_caught_up = true;
  for (const std::string& name : catalog.topics) {
    if (!running_.load() && thread_.joinable()) break;  // Stop() requested
    bool topic_caught_up = false;
    const Status ts = SyncTopic(name, &topic_caught_up);
    if (!ts.ok() && first_error.ok()) first_error = ts;
    if (!topic_caught_up) all_caught_up = false;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    caught_up_ = first_error.ok() && all_caught_up;
  }
  return first_error;
}

Status Replicator::SyncTopic(const std::string& name, bool* topic_caught_up) {
  *topic_caught_up = false;
  LogService* service = follower_->service();

  std::shared_ptr<ManagedTopic> topic;
  {
    auto existing = service->GetTopic(name);
    if (existing.ok()) topic = std::move(existing).value();
  }

  TopicCursor& cursor = cursors_[name];
  if (topic == nullptr) cursor = TopicCursor();

  bool need_position = false;
  if (topic == nullptr) {
    // First contact (or post-divergence resync): fetch the config with
    // the first pull and create the topic locally before applying.
    api::ReplPullRequest req;
    req.topic = name;
    req.want_config = true;
    req.max_bytes = 1;  // config + position only; data pulls follow
    api::ReplPullResponse resp;
    Status s = Call(api::ApiMethod::kReplPull, req, &resp);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.pulls;
    }
    if (s.IsNotFound()) {  // deleted on the primary mid-pass
      *topic_caught_up = true;
      return Status::OK();
    }
    if (s.IsNotSupported()) {  // memory-backed topic: nothing to ship
      *topic_caught_up = true;
      return Status::OK();
    }
    BB_RETURN_IF_ERROR(s);
    if (!resp.has_config) {
      return Status::Corruption("primary did not ship a config for topic '" +
                                name + "'");
    }
    TopicConfig config = resp.config;
    config.storage.directory = LocalDir(name);
    if (config_.storage_config_hook) {
      config_.storage_config_hook(&config.storage);
    }
    auto created = service->CreateTopic(name, std::move(config));
    BB_RETURN_IF_ERROR(created.status());
    topic = std::move(created).value();
    need_position = true;
  } else if (cursor.segment_index == 0 && cursor.offset == 0 &&
             cursor.model_generation == UINT64_MAX) {
    // Existing topic without a cursor: a replicator restart over
    // recovered storage. Resume from what the local topic persisted.
    need_position = true;
  }
  if (need_position) {
    Status pos =
        topic->ReplicationPosition(&cursor.segment_index, &cursor.offset);
    if (pos.IsNotSupported()) {
      *topic_caught_up = true;
      return Status::OK();
    }
    BB_RETURN_IF_ERROR(pos);
  }

  // Pull until caught up (empty data on the unsealed tail).
  while (true) {
    if (!follower_->is_follower()) return Status::OK();  // promoted mid-pull
    api::ReplPullRequest req;
    req.topic = name;
    req.segment_index = cursor.segment_index;
    req.offset = cursor.offset;
    req.max_bytes = config_.max_bytes_per_pull;
    req.model_generation = cursor.model_generation;
    api::ReplPullResponse resp;
    Status s = Call(api::ApiMethod::kReplPull, req, &resp);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.pulls;
    }
    if (s.IsNotFound()) {  // deleted on the primary mid-pass
      *topic_caught_up = true;
      return Status::OK();
    }
    if (s.IsInvalidArgument() || s.IsCorruption()) {
      // Our cursor does not address a frame boundary the primary knows:
      // the histories diverged (e.g. the primary was rebuilt). Drop and
      // re-sync from scratch.
      topic.reset();  // release before DeleteTopic (it waits on holders)
      Resync(name);
      return s;
    }
    BB_RETURN_IF_ERROR(s);

    // A model newer than ours ships alongside the frames; apply it
    // first so queries on the follower see templates for the records
    // being appended.
    if (resp.has_model) {
      BB_RETURN_IF_ERROR(topic->ApplyReplicatedModel(resp.model_blob));
    }
    cursor.model_generation = resp.model_generation;

    if (!resp.data.empty()) {
      // Parse whole frames (checksummed) and append them with their
      // shipped template ids — no matching, no training on this path.
      std::vector<LogRecord> records;
      ByteReader reader(resp.data.data(), resp.data.size());
      while (reader.remaining() > 0) {
        logframe::Frame frame;
        if (!logframe::ParseFrame(&reader, resp.data.data(), &frame)) {
          topic.reset();
          Resync(name);
          return Status::Corruption(
              "replication chunk failed frame verification for topic '" +
              name + "'");
        }
        LogRecord rec;
        rec.timestamp_us = frame.ts;
        rec.template_id = frame.tid;
        rec.text.assign(frame.text.data(), frame.text.size());
        records.push_back(std::move(rec));
      }
      const uint64_t applied_records = records.size();
      const uint64_t applied_bytes = resp.data.size();
      BB_RETURN_IF_ERROR(topic->ApplyReplicated(std::move(records)));
      cursor.offset += applied_bytes;
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.applied_records += applied_records;
      stats_.applied_bytes += applied_bytes;
    }

    if (resp.segment_sealed && cursor.offset >= resp.segment_data_len) {
      // Seal boundary: the primary sealed this segment at data_len. An
      // identical config seals the local tail at the same threshold
      // automatically; an explicit primary seal (promotion) is mirrored
      // by sealing here. Either way the local segment must now match
      // the primary's manifest entry byte-for-byte.
      BB_RETURN_IF_ERROR(topic->SealTail(nullptr));
      const Status verify = topic->VerifySealedSegment(
          cursor.segment_index, resp.segment_records, resp.segment_checksum);
      if (!verify.ok()) {
        topic.reset();
        Resync(name);
        return verify;
      }
      cursor.segment_index += 1;
      cursor.offset = 0;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.segments_sealed;
      continue;
    }

    // Publish lag: the primary's totals came with this response; our
    // own totals come from a local ReplicationRead at our position
    // (which fills the same source_* fields without moving anything).
    uint64_t lseg = 0, loff = 0;
    ReplicationChunk local;
    if (topic->ReplicationPosition(&lseg, &loff).ok() &&
        topic->ReplicationRead(lseg, loff, 1, &local).ok()) {
      const auto behind = [](uint64_t source, uint64_t local_v) {
        return source > local_v ? source - local_v : 0;
      };
      topic->SetReplicationLag(
          behind(resp.source_bytes, local.source_bytes),
          behind(resp.source_records, local.source_records),
          behind(resp.source_segments, local.source_segments));
    }

    if (resp.data.empty()) {  // unsealed tail, nothing new: caught up
      *topic_caught_up = true;
      return Status::OK();
    }
  }
}

}  // namespace replication
}  // namespace bytebrain
