#include "core/parser.h"

#include "core/tokenizer.h"

namespace bytebrain {

ByteBrainParser::ByteBrainParser(ByteBrainOptions options)
    : options_(std::move(options)), replacer_(VariableReplacer::Default()) {
  if (options_.unoptimized) {
    replacer_.set_use_fast_builtins(false);
  }
}

Status ByteBrainParser::AddVariableRule(std::string name,
                                        std::string_view pattern) {
  return replacer_.AddRule(std::move(name), pattern);
}

Status ByteBrainParser::Train(const std::vector<std::string>& logs) {
  Trainer trainer(options_.trainer);
  auto out = trainer.Train(logs, replacer_);
  if (!out.ok()) return out.status();
  last_output_ = std::move(out).value();
  model_ = std::move(last_output_.model);
  last_output_.model = TemplateModel();  // moved-from; keep stats only
  training_assignments_ = last_output_.assignments;
  RebuildMatcher();
  return Status::OK();
}

Status ByteBrainParser::Retrain(const std::vector<std::string>& logs) {
  if (model_.empty()) return Train(logs);
  Trainer trainer(options_.trainer);
  auto out = trainer.Train(logs, replacer_);
  if (!out.ok()) return out.status();
  // Unmatched-log temporaries are superseded by the fresh training run.
  model_.DropTemporaries();
  model_.MergeFrom(out.value().model, options_.merge_similarity);
  RebuildMatcher();
  return Status::OK();
}

Result<PreparedRetrain> ByteBrainParser::PrepareRetrain(
    TemplateModel base, const std::vector<std::string>& logs) const {
  return PrepareRetrain(
      std::move(base),
      std::vector<std::string_view>(logs.begin(), logs.end()));
}

Result<PreparedRetrain> ByteBrainParser::PrepareRetrain(
    TemplateModel base, const std::vector<std::string_view>& logs) const {
  Trainer trainer(options_.trainer);
  auto out = trainer.Train(logs, replacer_);
  if (!out.ok()) return out.status();
  PreparedRetrain prepared;
  if (base.empty()) {
    // First training: the fresh model IS the successor.
    prepared.model = std::move(out.value().model);
  } else {
    base.DropTemporaries();
    base.MergeFrom(out.value().model, options_.merge_similarity);
    prepared.model = std::move(base);
  }
  prepared.matcher =
      std::make_unique<TemplateMatcher>(prepared.model, &replacer_);
  return prepared;
}

void ByteBrainParser::CommitRetrain(PreparedRetrain prepared) {
  model_ = std::move(prepared.model);
  matcher_ = std::move(prepared.matcher);
}

void ByteBrainParser::RebuildMatcher() {
  matcher_ = std::make_unique<TemplateMatcher>(model_, &replacer_);
}

TemplateId ByteBrainParser::Match(std::string_view log) const {
  if (matcher_ == nullptr) return kInvalidTemplateId;
  return matcher_->Match(log);
}

std::vector<TemplateId> ByteBrainParser::MatchAll(
    const std::vector<std::string>& logs, int num_threads) const {
  if (matcher_ == nullptr) {
    return std::vector<TemplateId>(logs.size(), kInvalidTemplateId);
  }
  return matcher_->MatchAll(logs, num_threads);
}

std::vector<TemplateId> ByteBrainParser::MatchAll(
    const std::vector<std::string_view>& logs, int num_threads) const {
  if (matcher_ == nullptr) {
    return std::vector<TemplateId>(logs.size(), kInvalidTemplateId);
  }
  return matcher_->MatchAll(logs, num_threads);
}

TemplateId ByteBrainParser::MatchOrAdopt(std::string_view log,
                                         bool* adopted) {
  if (adopted != nullptr) *adopted = false;
  const TemplateId id = Match(log);
  if (id != kInvalidTemplateId) return id;
  std::lock_guard<std::mutex> lock(adopt_mu_);
  // Re-check under the lock: a concurrent adopter may have inserted the
  // same shape already (the rebuilt matcher would now accept it).
  const TemplateId again = Match(log);
  if (again != kInvalidTemplateId) return again;
  std::string replaced = replacer_.Replace(log);
  std::vector<std::string_view> views = TokenizeDefault(replaced);
  std::vector<std::string> tokens(views.begin(), views.end());
  const TemplateId adopted_id = model_.AdoptTemporary(std::move(tokens));
  // Incremental insert: adoption happens on the ingestion hot path, a
  // full matcher rebuild there would be O(model size) per miss.
  if (matcher_ != nullptr) {
    matcher_->Insert(*model_.node(adopted_id));
  } else {
    RebuildMatcher();
  }
  if (adopted != nullptr) *adopted = true;
  return adopted_id;
}

std::vector<TemplateId> ByteBrainParser::FoldTemporaries(
    TemplateModel* pending, size_t first, size_t count) {
  std::vector<TemplateId> ids =
      model_.MergeTemporariesFrom(pending, first, count);
  if (ids.empty()) return ids;
  if (matcher_ == nullptr) {
    RebuildMatcher();
  } else {
    for (TemplateId id : ids) matcher_->Insert(*model_.node(id));
  }
  return ids;
}

Result<TemplateId> ByteBrainParser::ResolveAtThreshold(
    TemplateId id, double threshold) const {
  return model_.ResolveAtThreshold(id, threshold);
}

std::string ByteBrainParser::TemplateText(TemplateId id) const {
  return model_.TemplateText(id);
}

std::string ByteBrainParser::MergedWildcardText(TemplateId id) const {
  return model_.MergedWildcardText(id);
}

}  // namespace bytebrain
