// Tokenization (paper §4.1.1).
//
// The default tokenizer implements the paper's Listing-1 regular
// expression as a hand-rolled scanner:
//
//   (?:://)|(?:(?:[\s\'\";=()\[\]{}?@&<>:\n\t\r,])|(?:[\.](\s+|$))|(?:\\[\"\']))+
//
// i.e. it splits on (a) the URL protocol separator "://", (b) common
// delimiter characters, (c) sentence-ending periods (a '.' followed by
// whitespace or end-of-line, so periods inside numbers survive), and
// (d) escaped quotes. Empty tokens are dropped.
//
// A regex-engine-backed tokenizer is also provided for user-defined
// per-topic rules; the scanner and the engine are differential-tested.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "regex/regex.h"
#include "util/status.h"

namespace bytebrain {

/// The paper's Listing-1 pattern, usable with the regex engine.
inline constexpr std::string_view kDefaultTokenizerPattern =
    "(?:://)|(?:(?:[\\s'\";=()\\[\\]{}?@&<>:\\n\\t\\r,])|"
    "(?:\\.(\\s+|$))|(?:\\\\[\"']))+";

/// Splits `log` with the default delimiter rules. Returned views alias
/// `log` and are invalidated when it is freed. Empty tokens are dropped.
std::vector<std::string_view> TokenizeDefault(std::string_view log);

/// Appends tokens to `*out` instead of allocating a fresh vector; the hot
/// path for preprocessing (clear + reuse the buffer between logs).
void TokenizeDefaultInto(std::string_view log,
                         std::vector<std::string_view>* out);

class TokenTable;

/// Fused online-matching fast path: equivalent to
/// VariableReplacer::ReplaceInto (builtin fast path) followed by
/// TokenizeDefaultInto and one TokenTable lookup per token, but performed
/// in a single pass over `raw` — no replaced-text copy is materialized
/// and each token is hashed and looked up once, at its end. Appends
/// one interned id (TokenTable::kUnknownId for never-seen tokens) per
/// token to `*ids`. `mixed_buf` is caller-owned scratch for the rare
/// tokens that mix literal characters with a replaced variable.
/// Only valid when the replacer reports fused_fast_path().
void TokenizeReplacedIdsInto(std::string_view raw, const TokenTable& table,
                             std::string* mixed_buf,
                             std::vector<uint32_t>* ids);

/// Same fused scan, reduced to a 64-bit hash of the replaced token
/// sequence (an order-sensitive fold of HashBytesFast per token): the
/// content key the sharded ingest path deduplicates and routes on.
/// Equals hashing the tokens of ReplaceInto + TokenizeDefaultInto, but
/// in one pass with no intermediate strings. Same precondition as
/// TokenizeReplacedIdsInto: the replacer must report fused_fast_path().
uint64_t HashReplacedTokens(std::string_view raw, std::string* mixed_buf);

/// Tokenizer driven by a user-supplied delimiter regex: every match of
/// `delimiter` is a separator. Used for tenant-specific tokenization
/// rules; slower than the scanner but fully customizable.
class RegexTokenizer {
 public:
  /// Compiles the delimiter pattern; rejects lookaround (NotSupported).
  static Result<RegexTokenizer> Create(std::string_view delimiter_pattern);

  std::vector<std::string_view> Tokenize(std::string_view log) const;

  const Regex& regex() const { return regex_; }

 private:
  explicit RegexTokenizer(Regex regex) : regex_(std::move(regex)) {}
  Regex regex_;
};

}  // namespace bytebrain
