// Online matching (paper §4.8).
//
// Incoming logs are matched directly against template token-id arrays —
// not by re-walking the clustering tree with distance computations — so
// the model needs no per-node token statistics. Template tokens are
// interned once (core/token_table.h); the per-position test is a single
// integer comparison ("wildcard or equal"). Templates are tried in
// descending saturation order; ties break toward earlier entries, which
// reproduces the stable order of a plain sorted list.
//
// Candidate pruning is two-level:
//  * bucket by token count (a log only matches equal-length templates);
//  * within a bucket, a keyed index over each template's FIRST
//    NON-WILDCARD position: key (position, token id) -> candidates. A
//    log probes one key per distinct first-constant position present in
//    the bucket (usually just position 0). Oversized candidate lists
//    fall back to a small trie over subsequent constant positions.
// Templates with no constant token at all are always candidates.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/model.h"
#include "core/token_table.h"
#include "core/variable_replacer.h"

namespace bytebrain {

/// Matcher snapshot built from a model. Rebuild after retrain / merge;
/// cheap relative to training. Thread-safe for concurrent Match.
///
/// Threading contract (load-bearing for the service's async retraining —
/// see ARCHITECTURE.md): the matcher owns no lock of its own; the owner
/// (ByteBrainParser under ManagedTopic's shared_mutex) serializes the
/// mutators. All Match* methods are const, take no lock, never block and
/// never train; any number may run concurrently with each other — and
/// with a BACKGROUND TemplateMatcher being constructed from a cloned
/// model, because construction touches only the model it is given.
/// Insert (and the shared TokenTable's Intern it relies on) mutates and
/// must be exclusive with all lookups.
class TemplateMatcher {
 public:
  /// Reusable per-thread scratch for the match hot path: with a
  /// caller-owned scratch the per-log path performs no heap allocation
  /// in steady state. Match() without a scratch uses a thread_local one.
  struct MatchScratch {
    std::string replaced;
    std::vector<std::string_view> tokens;
    std::vector<uint32_t> ids;
    std::vector<const std::vector<uint32_t>*> lists;
    std::vector<size_t> cursors;
  };

  /// `replacer` preprocesses incoming logs exactly as training did; it
  /// must outlive the matcher. The matcher shares the model's TokenTable.
  /// Locking: reads only `model` and the replacer's rule set — do not
  /// mutate either concurrently; safe to run off-lock on a Clone()d model
  /// while a different matcher serves lookups.
  TemplateMatcher(const TemplateModel& model,
                  const VariableReplacer* replacer);

  /// Most precise (highest-saturation) matching template id, or
  /// kInvalidTemplateId when nothing matches.
  /// Locking: none taken; requires no concurrent Insert/Intern (the
  /// service guarantees this by holding at least the shared topic lock).
  /// Never blocks, never trains.
  TemplateId Match(std::string_view raw_log) const;

  /// Match with caller-owned scratch buffers (allocation-free once the
  /// scratch is warm). Locking: as Match; the scratch must be owned by
  /// the calling thread.
  TemplateId Match(std::string_view raw_log, MatchScratch* scratch) const;

  /// Match a batch across `num_threads` processing queues (§3 "the system
  /// distributes matching tasks across multiple processing queues").
  /// Locking: as Match; spawns shard tasks on the shared process pool but
  /// itself blocks only until its own shards finish. Never trains. The
  /// view overload serves the off-lock training path, which reads its
  /// window as views into mmap'd storage segments.
  std::vector<TemplateId> MatchAll(const std::vector<std::string>& raw_logs,
                                   int num_threads) const;
  std::vector<TemplateId> MatchAll(
      const std::vector<std::string_view>& raw_logs, int num_threads) const;

  /// Adds one template (an adopted temporary, §3) without rebuilding. The
  /// node must come from the same model (its token_ids must be interned
  /// in the shared table). Locking: MUTATES — the caller must hold its
  /// exclusive lock (no concurrent Match/MatchAll/Insert); the service
  /// calls this only from the exclusive adopt section.
  void Insert(const TreeNode& node);

  /// Locking: safe under the same conditions as Match.
  size_t num_templates() const { return entries_.size(); }

 private:
  struct Entry {
    TemplateId id;
    double saturation;
    std::vector<uint32_t> token_ids;  // kWildcardId marks variables
  };

  /// Refinement trie node: either a leaf holding candidate entry indices
  /// in try order, or an interior node splitting on the token id at
  /// `key_pos` (entries with a wildcard there go to `wild`, which is a
  /// candidate for every log).
  struct TrieNode {
    static constexpr uint32_t kLeaf = 0xFFFFFFFFu;
    uint32_t key_pos = kLeaf;
    std::vector<uint32_t> entries;  // leaf payload, sorted by try order
    std::unordered_map<uint32_t, std::unique_ptr<TrieNode>> children;
    std::unique_ptr<TrieNode> wild;
  };

  struct Bucket {
    // (first non-wildcard position << 32 | token id) -> candidates.
    // Sorted flat vector: buckets hold few keys, so a binary search
    // beats a node-based hash map's pointer chase on the hot path.
    std::vector<std::pair<uint64_t, std::unique_ptr<TrieNode>>> keyed;
    // Distinct first-constant positions present in `keyed`, ascending:
    // the per-log probe set.
    std::vector<uint32_t> key_positions;
    // Templates whose every position is a wildcard: always candidates.
    std::vector<uint32_t> all_wildcard;
  };

  /// Global try order: descending saturation, ties toward the smaller
  /// entry index. Entries are stored pre-sorted by this order at
  /// construction, so index order encodes tie-breaks.
  bool TryBefore(uint32_t a, uint32_t b) const {
    if (entries_[a].saturation != entries_[b].saturation) {
      return entries_[a].saturation > entries_[b].saturation;
    }
    return a < b;
  }

  void IndexEntry(uint32_t idx);
  void InsertIntoTrie(TrieNode* node, uint32_t idx);
  void MaybeSplitLeaf(TrieNode* node);
  void CollectCandidates(const TrieNode& node,
                         const std::vector<uint32_t>& ids,
                         std::vector<const std::vector<uint32_t>*>* lists) const;
  bool Matches(const Entry& e, const std::vector<uint32_t>& ids) const;
  TemplateId MatchIds(const std::vector<uint32_t>& ids,
                      MatchScratch* scratch) const;

  std::vector<Entry> entries_;
  // Indexed by token count; null where no template has that length.
  std::vector<std::unique_ptr<Bucket>> buckets_;
  std::shared_ptr<const TokenTable> table_;
  const VariableReplacer* replacer_;
};

}  // namespace bytebrain
