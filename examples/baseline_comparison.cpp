// Baseline comparison: ByteBrain vs Drain vs Spell vs IPLoM on one
// generated dataset, printing grouping accuracy and throughput — a
// miniature of the paper's Table 2 / Fig. 6 on your own machine.
//
//   ./examples/baseline_comparison [dataset] [num_logs]
#include <cstdio>
#include <cstdlib>
#include <string>

#include "baselines/drain.h"
#include "baselines/iplom.h"
#include "baselines/spell.h"
#include "datagen/generator.h"
#include "eval/bytebrain_adapter.h"
#include "eval/runner.h"

using namespace bytebrain;

int main(int argc, char** argv) {
  const std::string dataset_name = argc > 1 ? argv[1] : "OpenSSH";
  const size_t num_logs =
      argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 20000;

  const DatasetSpec* spec = FindDatasetSpec(dataset_name);
  if (spec == nullptr) {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset_name.c_str());
    return 1;
  }
  DatasetGenerator generator(*spec);
  GenOptions gen_options;
  gen_options.num_logs = num_logs;
  gen_options.num_templates =
      spec->loghub2_templates > 0 ? spec->loghub2_templates
                                  : spec->loghub_templates;
  Dataset dataset = generator.Generate(gen_options);

  std::printf("dataset=%s logs=%zu templates=%zu\n\n", dataset.name.c_str(),
              dataset.logs.size(), dataset.num_templates);

  TablePrinter table({"Method", "GA", "Throughput (logs/s)", "Groups"},
                     {24, 8, 22, 10});
  table.PrintHeader();

  auto report = [&table](LogParserInterface* parser, const Dataset& ds) {
    const RunResult r = RunOn(parser, ds);
    table.PrintRow({parser->name(), TablePrinter::Fmt(r.grouping_accuracy),
                    TablePrinter::Fmt(r.Throughput(), 0),
                    std::to_string(r.num_groups)});
  };

  ByteBrainAdapter bytebrain(ByteBrainDefaultConfig());
  ByteBrainAdapter sequential(ByteBrainSequentialConfig());
  DrainParser drain;
  SpellParser spell;
  IplomParser iplom;

  report(&bytebrain, dataset);
  report(&sequential, dataset);
  report(&drain, dataset);
  report(&spell, dataset);
  report(&iplom, dataset);
  return 0;
}
