// Threading substrate (paper §3 "Parallel").
//
// ByteBrain parallelizes (1) preprocessing across log shards, (2)
// hierarchical clustering across initial groups, and (3) online matching
// across processing queues. This module provides the pool and the
// ParallelFor primitive those phases build on. In production the paper
// limits parallelism to 1-5 cores per topic; callers pass the budget.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace bytebrain {

/// Fixed-size pool executing submitted tasks FIFO. Destruction waits for
/// queued tasks to drain.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Safe from any thread, including pool threads.
  void Submit(std::function<void()> task);

  /// Like Submit, but returns a future that completes when the task
  /// finishes. An exception thrown by the task is captured and rethrown
  /// from future.get() instead of terminating the worker — background
  /// retraining submits through this so a throwing task can never take
  /// the process down. The future also lets callers track one submission
  /// without the pool-wide barrier of Wait().
  std::future<void> Schedule(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs fn(i) for i in [0, count) using up to `num_threads` threads with
/// contiguous static partitioning. `num_threads <= 1` runs inline, which
/// is the "ByteBrain Sequential" configuration from the paper's Fig. 6.
void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn);

/// Like ParallelFor but hands each worker a [begin, end) shard; use when
/// per-item dispatch overhead matters (e.g. per-log preprocessing).
/// Shards run on a shared process-wide pool (no thread spawn per call);
/// the calling thread executes the first shard itself. Nested calls from
/// inside a shard run inline. The effective parallelism is budgeted via
/// ShardParallelism, so over-asking (a topic configured for more threads
/// than the machine has) costs queueing overhead on nobody.
void ParallelForShards(size_t count, size_t num_threads,
                       const std::function<void(size_t, size_t)>& fn);

/// Worker threads in the shared shard pool (excludes the calling thread,
/// which always executes one shard itself).
size_t SharedShardPoolWidth();

/// Thread budget actually worth spending on `count` independent shard
/// tasks when the caller asks for `requested` threads: capped by the
/// task count and by SharedShardPoolWidth() + 1. Splitting work into
/// more fragments than the pool can run concurrently only adds dispatch
/// overhead — per-topic configs are written against "cores per topic"
/// (paper: 1-5), not against this machine, so the budget is clamped
/// here, in one place, rather than at every call site.
size_t ShardParallelism(size_t count, size_t requested);

}  // namespace bytebrain
