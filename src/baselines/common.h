// Shared helpers for the reimplemented baseline parsers (§5.1.2).
//
// Every baseline receives the same preprocessing as ByteBrain — default
// common-variable replacement followed by the default tokenizer — which
// mirrors the Logparser toolkit's practice of applying per-dataset
// variable regexes before parsing and keeps the comparison fair.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "eval/parser_interface.h"

namespace bytebrain {

/// The wildcard literal baselines put into their templates.
inline constexpr std::string_view kBaselineWildcard = "<*>";

/// Variable replacement + tokenization for a whole batch.
std::vector<std::vector<std::string>> PreprocessTokens(
    const std::vector<std::string>& logs);

/// True if the token contains any ASCII digit (Drain's variable heuristic).
bool HasDigits(std::string_view token);

/// Joins tokens with '\x1f' into a hashable group key.
std::string JoinKey(const std::vector<std::string>& tokens);

}  // namespace bytebrain
