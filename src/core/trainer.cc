#include "core/trainer.h"

#include <algorithm>

#include "core/grouping.h"
#include "threading/thread_pool.h"
#include "util/rng.h"

namespace bytebrain {

namespace {

// A node of a per-group local tree, produced by the parallel phase and
// stitched into the global model sequentially afterwards.
struct LocalNode {
  int parent = -1;  // index into the local vector, -1 for the group root
  double saturation = 0.0;
  std::vector<std::string> tokens;
  uint64_t support = 0;
  /// For leaves: the distinct-log indices resolved to this node.
  std::vector<uint32_t> leaf_members;
};

// Template tokens for a member set: constant positions keep their text,
// unresolved positions become the wildcard.
std::vector<std::string> TemplateTokensFor(
    const std::vector<EncodedLog>& logs, const std::vector<uint32_t>& members,
    const PositionStats& stats) {
  const EncodedLog& first = logs[members[0]];
  std::vector<std::string> tokens;
  tokens.reserve(stats.num_positions);
  for (uint32_t i = 0; i < stats.num_positions; ++i) {
    if (stats.distinct[i] == 1) {
      tokens.push_back(first.token_texts[i]);
    } else {
      tokens.emplace_back(kWildcard);
    }
  }
  return tokens;
}

uint64_t SupportOf(const std::vector<EncodedLog>& logs,
                   const std::vector<uint32_t>& members) {
  uint64_t s = 0;
  for (uint32_t m : members) s += logs[m].count;
  return s;
}

// Builds the clustering tree for one initial group.
std::vector<LocalNode> BuildGroupTree(const std::vector<EncodedLog>& logs,
                                      std::vector<uint32_t> root_members,
                                      const TrainerOptions& options,
                                      uint64_t group_seed) {
  Rng rng(group_seed);
  std::vector<LocalNode> nodes;

  struct Work {
    int node_index;
    std::vector<uint32_t> members;
    double saturation;
  };
  std::vector<Work> stack;

  auto add_node = [&](int parent, const std::vector<uint32_t>& members)
      -> std::pair<int, double> {
    const PositionStats stats = ComputePositionStats(logs, members);
    LocalNode node;
    node.parent = parent;
    node.saturation = SaturationFromStats(stats, options.cluster.saturation);
    node.tokens = TemplateTokensFor(logs, members, stats);
    node.support = SupportOf(logs, members);
    nodes.push_back(std::move(node));
    return {static_cast<int>(nodes.size()) - 1, nodes.back().saturation};
  };

  auto [root_index, root_sat] = add_node(-1, root_members);
  stack.push_back({root_index, std::move(root_members), root_sat});

  while (!stack.empty()) {
    Work work = std::move(stack.back());
    stack.pop_back();

    bool made_children = false;
    if (work.saturation < options.saturation_stop &&
        work.members.size() > 1) {
      ClusterOutcome outcome = SingleClusteringProcess(
          logs, work.members, work.saturation, options.cluster, &rng);
      if (outcome.split) {
        for (auto& cluster : outcome.clusters) {
          // Guard against degenerate "splits" that return the parent set;
          // they would recurse forever.
          if (cluster.size() == work.members.size()) continue;
          const double child_sat =
              ComputeSaturation(logs, cluster,
                                options.cluster.saturation);
          if (child_sat > work.saturation ||
              !options.cluster.ensure_saturation_increase) {
            // Real child: the tree edge strictly increases saturation.
            auto [child_index, sat] = add_node(work.node_index, cluster);
            stack.push_back({child_index, std::move(cluster), sat});
          } else {
            // Virtual partition (§4.4 cluster expansion, amortized): the
            // cluster did not resolve any new position yet — keep
            // partitioning its members but attach future improving
            // descendants to the CURRENT node, so every stored edge
            // still strictly increases saturation. Progress is
            // guaranteed because the cluster is a proper subset.
            stack.push_back(
                {work.node_index, std::move(cluster), work.saturation});
          }
          made_children = true;
        }
      }
    }
    if (!made_children) {
      if (nodes[work.node_index].leaf_members.empty()) {
        nodes[work.node_index].leaf_members = std::move(work.members);
      } else {
        // A virtual partition bottomed out on an already-leaf node:
        // merge the member lists.
        auto& lm = nodes[work.node_index].leaf_members;
        lm.insert(lm.end(), work.members.begin(), work.members.end());
      }
    }
  }
  return nodes;
}

}  // namespace

Result<TrainOutput> Trainer::Train(const std::vector<std::string>& raw_logs,
                                   const VariableReplacer& replacer) const {
  return Train(std::vector<std::string_view>(raw_logs.begin(), raw_logs.end()),
               replacer);
}

Result<TrainOutput> Trainer::Train(
    const std::vector<std::string_view>& raw_logs,
    const VariableReplacer& replacer) const {
  TrainOutput out;
  out.assignments.assign(raw_logs.size(), kInvalidTemplateId);
  if (raw_logs.empty()) return out;

  // Optional random sampling to bound memory (§3). Sampled-out logs keep
  // kInvalidTemplateId assignments; callers match them online instead.
  const std::vector<std::string_view>* input = &raw_logs;
  std::vector<std::string_view> sampled;
  std::vector<uint32_t> sample_map;
  if (options_.max_train_logs > 0 && raw_logs.size() > options_.max_train_logs) {
    Rng rng(options_.seed ^ 0x5A4D31ULL);
    sample_map.resize(raw_logs.size());
    for (uint32_t i = 0; i < raw_logs.size(); ++i) sample_map[i] = i;
    for (size_t i = raw_logs.size(); i > 1; --i) {
      std::swap(sample_map[i - 1], sample_map[rng.NextBelow(i)]);
    }
    sample_map.resize(options_.max_train_logs);
    sampled.reserve(sample_map.size());
    for (uint32_t idx : sample_map) sampled.push_back(raw_logs[idx]);
    input = &sampled;
  }

  PreprocessResult pre = Preprocess(*input, replacer, options_.preprocess);
  out.distinct_logs = pre.logs.size();
  out.total_logs = pre.total_logs;
  out.dictionary_bytes = pre.dictionary_bytes;

  std::vector<InitialGroup> groups = InitialGrouping(pre.logs, options_.prefix_k);

  // Parallel phase: independent tree construction per initial group.
  std::vector<std::vector<LocalNode>> local_trees(groups.size());
  ParallelFor(groups.size(), static_cast<size_t>(std::max(1, options_.num_threads)),
              [&](size_t g) {
                local_trees[g] = BuildGroupTree(
                    pre.logs, std::move(groups[g].members), options_,
                    HashCombine(options_.seed, g));
              });

  // Sequential stitch: assign global ids, collect leaf assignments.
  std::vector<TemplateId> distinct_assignment(pre.logs.size(),
                                              kInvalidTemplateId);
  for (auto& tree : local_trees) {
    std::vector<TemplateId> global_ids(tree.size(), kInvalidTemplateId);
    for (size_t i = 0; i < tree.size(); ++i) {
      LocalNode& n = tree[i];
      const TemplateId parent =
          n.parent < 0 ? kInvalidTemplateId : global_ids[n.parent];
      // Tokens are moved, not copied: the local trees are dead after the
      // stitch and AddNode interns from the strings it receives.
      global_ids[i] =
          out.model.AddNode(parent, n.saturation, std::move(n.tokens),
                            n.support);
      for (uint32_t member : n.leaf_members) {
        distinct_assignment[member] = global_ids[i];
      }
    }
  }

  // Expand distinct-log assignments back to raw inputs.
  for (size_t d = 0; d < pre.logs.size(); ++d) {
    const TemplateId id = distinct_assignment[d];
    for (uint32_t src : pre.logs[d].source_ids) {
      const uint32_t raw_index =
          sample_map.empty() ? src : sample_map[src];
      out.assignments[raw_index] = id;
    }
  }
  return out;
}

}  // namespace bytebrain
