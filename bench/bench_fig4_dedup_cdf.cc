// Fig. 4: duplicate-count distribution before and after common-variable
// replacement on Linux, Thunderbird, Spark and Apache. The paper's point:
// logs are highly duplicated, and replacement increases the redundancy —
// which is what makes deduplication such a large win.
#include <algorithm>
#include <map>

#include "bench/bench_common.h"
#include "core/preprocess.h"

using namespace bytebrain;

namespace {

struct CdfStats {
  size_t distinct = 0;
  size_t total = 0;
  // Fraction of distinct logs with duplicate count >= {1, 10, 100, 1000}.
  double ge1 = 0, ge10 = 0, ge100 = 0, ge1000 = 0;
  uint64_t max_count = 0;
};

CdfStats Collect(const std::vector<std::string>& logs, bool replace) {
  PreprocessOptions opts;
  opts.num_threads = 2;
  auto replacer =
      replace ? VariableReplacer::Default() : VariableReplacer::None();
  auto result = Preprocess(logs, replacer, opts);
  CdfStats stats;
  stats.total = result.total_logs;
  stats.distinct = result.logs.size();
  size_t ge10 = 0, ge100 = 0, ge1000 = 0;
  for (const auto& el : result.logs) {
    stats.max_count = std::max(stats.max_count, el.count);
    if (el.count >= 10) ++ge10;
    if (el.count >= 100) ++ge100;
    if (el.count >= 1000) ++ge1000;
  }
  stats.ge1 = 1.0;
  stats.ge10 = static_cast<double>(ge10) / stats.distinct;
  stats.ge100 = static_cast<double>(ge100) / stats.distinct;
  stats.ge1000 = static_cast<double>(ge1000) / stats.distinct;
  return stats;
}

}  // namespace

int main() {
  PrintBenchHeader(
      "Fig. 4 — duplicate counts w/o and w/ variable replacement",
      "paper Fig. 4");

  TablePrinter table({"Dataset", "Mode", "Distinct/Total", "P(cnt>=10)",
                      "P(cnt>=100)", "P(cnt>=1000)", "MaxCnt"},
                     {13, 14, 18, 12, 13, 14, 10});
  table.PrintHeader();

  for (const char* name : {"Linux", "Thunderbird", "Spark", "Apache"}) {
    const DatasetSpec* spec = FindDatasetSpec(name);
    Dataset ds = ScaledLogHub2(*spec);
    std::vector<std::string> logs;
    logs.reserve(ds.logs.size());
    for (auto& l : ds.logs) logs.push_back(l.text);

    const CdfStats without = Collect(logs, /*replace=*/false);
    const CdfStats with = Collect(logs, /*replace=*/true);
    for (const auto& [mode, stats] :
         {std::pair<const char*, const CdfStats&>{"raw", without},
          {"replaced", with}}) {
      table.PrintRow({name, mode,
                      std::to_string(stats.distinct) + "/" +
                          std::to_string(stats.total),
                      TablePrinter::Fmt(stats.ge10, 3),
                      TablePrinter::Fmt(stats.ge100, 3),
                      TablePrinter::Fmt(stats.ge1000, 3),
                      std::to_string(stats.max_count)});
    }
    // The paper's claimed shape: replacement must not decrease
    // duplication (distinct count must drop or stay).
    if (with.distinct > without.distinct) {
      std::printf("  !! SHAPE VIOLATION on %s: replacement increased the "
                  "distinct count\n",
                  name);
    }
  }
  std::printf(
      "\nShape check: 'replaced' rows must have fewer distinct logs and a\n"
      "heavier duplicate tail than 'raw' rows (the paper's Fig. 4 claim).\n");
  return 0;
}
