#include "logstore/fault_injection.h"

#include <unistd.h>

#include <cerrno>

namespace bytebrain {

namespace {

class PassThroughFileOps : public FileOps {
 public:
  ssize_t Write(int fd, const void* buf, size_t count) override {
    return ::write(fd, buf, count);
  }
  ssize_t PWrite(int fd, const void* buf, size_t count,
                 uint64_t offset) override {
    return ::pwrite(fd, buf, count, static_cast<off_t>(offset));
  }
  int Fsync(int fd) override { return ::fsync(fd); }
};

ssize_t FailEIO() {
  errno = EIO;
  return -1;
}

}  // namespace

FileOps* RealFileOps() {
  static PassThroughFileOps* ops = new PassThroughFileOps();
  return ops;
}

ssize_t FaultInjectingFileOps::Write(int fd, const void* buf, size_t count) {
  const uint64_t op = NextOp();
  if (crashed_.load(std::memory_order_relaxed)) return FailEIO();
  if (op == schedule_.crash_at_op) {
    crashed_.store(true, std::memory_order_relaxed);
    // Torn final write: half the bytes land, the process "dies". A
    // write too small to tear fails whole instead.
    if (count < 2) return FailEIO();
    return ::write(fd, buf, count / 2);
  }
  if (op == schedule_.fail_write_at) return FailEIO();
  if (op == schedule_.short_write_at && count >= 2) {
    return ::write(fd, buf, count / 2);
  }
  return ::write(fd, buf, count);
}

ssize_t FaultInjectingFileOps::PWrite(int fd, const void* buf, size_t count,
                                      uint64_t offset) {
  const uint64_t op = NextOp();
  if (crashed_.load(std::memory_order_relaxed)) return FailEIO();
  if (op == schedule_.crash_at_op) {
    crashed_.store(true, std::memory_order_relaxed);
    if (count < 2) return FailEIO();
    return ::pwrite(fd, buf, count / 2, static_cast<off_t>(offset));
  }
  if (op == schedule_.fail_pwrite_at) return FailEIO();
  if (op == schedule_.short_write_at && count >= 2) {
    return ::pwrite(fd, buf, count / 2, static_cast<off_t>(offset));
  }
  return ::pwrite(fd, buf, count, static_cast<off_t>(offset));
}

int FaultInjectingFileOps::Fsync(int fd) {
  const uint64_t op = NextOp();
  if (crashed_.load(std::memory_order_relaxed)) return (void)FailEIO(), -1;
  if (op == schedule_.crash_at_op) {
    // A crash "during" fsync: the sync never completes. Whether the
    // kernel had already pushed the bytes is exactly the ambiguity a
    // real crash leaves, so the data is left as the prior writes put it.
    crashed_.store(true, std::memory_order_relaxed);
    return (void)FailEIO(), -1;
  }
  if (op == schedule_.fail_fsync_at) return (void)FailEIO(), -1;
  return ::fsync(fd);
}

Status FaultInjectingBackend::Append(LogRecord record) {
  const uint64_t call =
      append_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  const Status inner = inner_->Append(std::move(record));
  if (call == schedule_.fail_append_at) {
    return Status::IOError("injected append fault");
  }
  return inner;
}

Status FaultInjectingBackend::AppendBatch(std::vector<LogRecord> records) {
  const uint64_t call =
      append_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  const Status inner = inner_->AppendBatch(std::move(records));
  if (call == schedule_.fail_append_at) {
    return Status::IOError("injected append fault");
  }
  return inner;
}

Status FaultInjectingBackend::Read(uint64_t seq, LogRecord* out) const {
  const uint64_t call = read_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (call == schedule_.fail_read_at) {
    return Status::IOError("injected read fault");
  }
  return inner_->Read(seq, out);
}

Status FaultInjectingBackend::Scan(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, const LogRecord&)>& fn) const {
  const uint64_t call = read_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (call == schedule_.fail_read_at) {
    return Status::IOError("injected read fault");
  }
  return inner_->Scan(begin, end, fn);
}

Status FaultInjectingBackend::Flush() {
  const uint64_t call =
      flush_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (call == schedule_.fail_flush_at) {
    return Status::IOError("injected flush fault");
  }
  return inner_->Flush();
}

Status FaultInjectingBackend::Checkpoint(std::string_view metadata) {
  const uint64_t call =
      checkpoint_calls_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (call == schedule_.fail_checkpoint_at) {
    return Status::IOError("injected checkpoint fault");
  }
  return inner_->Checkpoint(metadata);
}

}  // namespace bytebrain
