#include "service/log_service.h"

#include <algorithm>
#include <unordered_map>

#include "util/timer.h"

namespace bytebrain {

ManagedTopic::ManagedTopic(std::string name, TopicConfig config)
    : name_(std::move(name)),
      config_(std::move(config)),
      topic_(name_),
      parser_(config_.parser_options) {
  for (const auto& [rule_name, pattern] : config_.variable_rules) {
    // Invalid tenant rules are skipped rather than poisoning the topic;
    // the compile error is surfaced through the parser's API when added
    // explicitly.
    (void)parser_.AddVariableRule(rule_name, pattern);
  }
}

Result<uint64_t> ManagedTopic::Ingest(std::string text,
                                      uint64_t timestamp_us) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return IngestOneLocked(std::move(text), timestamp_us, kInvalidTemplateId);
}

Result<uint64_t> ManagedTopic::IngestOneLocked(std::string text,
                                               uint64_t timestamp_us,
                                               TemplateId prematched) {
  LogRecord record;
  record.timestamp_us = timestamp_us;
  record.text = std::move(text);

  // Online matching happens before the record lands so the template id
  // is indexed together with the text (§3 "Online Matching"). A single
  // MatchOrAdopt reports adoption directly — the old probe-then-adopt
  // dance matched every record up to three times.
  if (trained_) {
    bool adopted = false;
    if (prematched != kInvalidTemplateId) {
      record.template_id = prematched;
    } else {
      record.template_id = parser_.MatchOrAdopt(record.text, &adopted);
    }
    ++stats_.matched_online;
    if (adopted) {
      ++stats_.adopted_templates;
      // An adopted template (saturation 1.0) can shadow lower-saturation
      // matches for later logs; ids prematched before it existed are no
      // longer authoritative.
      ++model_generation_;
      // Publish the adopted template's metadata immediately so queries
      // can display it before the next training cycle.
      const TreeNode* node = parser_.model().node(record.template_id);
      if (node != nullptr) {
        internal_.Put({node->id, node->parent, node->saturation,
                       parser_.TemplateText(node->id), node->support});
      }
    }
  }

  bytes_since_training_ += record.text.size();
  ++records_since_training_;
  stats_.ingested_bytes += record.text.size();
  ++stats_.ingested_records;
  const uint64_t seq = topic_.Append(std::move(record));

  BB_RETURN_IF_ERROR(MaybeTrainLocked());
  return seq;
}

Result<std::vector<uint64_t>> ManagedTopic::IngestBatch(
    std::vector<std::string> texts, const std::vector<uint64_t>& timestamps_us) {
  if (!timestamps_us.empty() && timestamps_us.size() != texts.size()) {
    return Status::InvalidArgument(
        "timestamps_us must be empty or match texts in size");
  }
  std::vector<uint64_t> seqs;
  seqs.reserve(texts.size());
  if (texts.empty()) return seqs;

  // Phase 1 (shared lock): shard-parallel matching against the current
  // model. Queries and other batches' match phases proceed concurrently;
  // only the adoption/append section below excludes them.
  std::vector<TemplateId> prematched;
  uint64_t generation = 0;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    generation = model_generation_;
    if (trained_) {
      prematched = parser_.MatchAll(texts, config_.num_threads);
    }
  }

  // Phase 2 (exclusive lock): adopt misses, append, count, train.
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Prematched ids are only valid while the model that produced them is
  // current: any training cycle or adoption — by this batch, a
  // concurrent Ingest, or a concurrent batch — bumps model_generation_
  // and can shadow lower-saturation matches. Affected records fall back
  // to matching under the lock, keeping results identical to a
  // sequential Ingest loop.
  for (size_t i = 0; i < texts.size(); ++i) {
    const bool prematch_valid =
        !prematched.empty() && generation == model_generation_;
    const TemplateId hint =
        prematch_valid ? prematched[i] : kInvalidTemplateId;
    auto seq = IngestOneLocked(std::move(texts[i]),
                               timestamps_us.empty() ? 0 : timestamps_us[i],
                               hint);
    BB_RETURN_IF_ERROR(seq.status());
    seqs.push_back(seq.value());
  }
  return seqs;
}

Status ManagedTopic::MaybeTrainLocked() {
  const bool first_training_due =
      !trained_ && records_since_training_ >= config_.initial_train_records;
  const bool retrain_due =
      trained_ && (bytes_since_training_ >= config_.train_volume_bytes ||
                   records_since_training_ >= config_.train_interval_records);
  if (!first_training_due && !retrain_due) return Status::OK();
  return TrainLocked();
}

Status ManagedTopic::TrainNow() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  return TrainLocked();
}

Status ManagedTopic::TrainLocked() {
  const uint64_t total = topic_.size();
  if (total == 0) return Status::OK();
  const uint64_t window =
      std::min<uint64_t>(total, config_.max_train_records);
  const uint64_t begin = total - window;

  std::vector<std::string> batch;
  batch.reserve(window);
  BB_RETURN_IF_ERROR(topic_.Scan(
      begin, total,
      [&batch](uint64_t, const LogRecord& rec) { batch.push_back(rec.text); }));

  Timer timer;
  if (trained_) {
    BB_RETURN_IF_ERROR(parser_.Retrain(batch));
  } else {
    BB_RETURN_IF_ERROR(parser_.Train(batch));
  }
  stats_.last_training_seconds = timer.ElapsedSeconds();
  ++stats_.trainings;
  ++model_generation_;
  trained_ = true;
  bytes_since_training_ = 0;
  records_since_training_ = 0;
  stats_.model_bytes = parser_.ModelBytes();
  stats_.num_templates = parser_.model().size();

  // Re-assign templates for the training window (retraining can refine
  // earlier assignments) and publish node metadata (§3).
  auto assignments = parser_.MatchAll(batch, config_.num_threads);
  for (uint64_t i = 0; i < window; ++i) {
    BB_RETURN_IF_ERROR(topic_.AssignTemplate(begin + i, assignments[i]));
  }
  parser_.model().ExportTo(&internal_);
  return Status::OK();
}

Result<std::vector<TemplateGroup>> ManagedTopic::Query(
    double saturation_threshold, uint64_t begin_seq,
    uint64_t end_seq) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::unordered_map<TemplateId, TemplateGroup> groups;
  const Status scan_status = topic_.Scan(
      begin_seq, std::min(end_seq, topic_.size()),
      [&](uint64_t seq, const LogRecord& rec) {
        TemplateId resolved = rec.template_id;
        if (resolved != kInvalidTemplateId) {
          auto r = parser_.ResolveAtThreshold(resolved, saturation_threshold);
          if (r.ok()) resolved = r.value();
        }
        TemplateGroup& g = groups[resolved];
        if (g.count == 0) {
          g.template_id = resolved;
          if (resolved != kInvalidTemplateId) {
            g.template_text = parser_.MergedWildcardText(resolved);
            const TreeNode* node = parser_.model().node(resolved);
            if (node != nullptr) g.saturation = node->saturation;
          } else {
            g.template_text = "<unparsed>";
          }
        }
        ++g.count;
        g.sequence_numbers.push_back(seq);
      });
  BB_RETURN_IF_ERROR(scan_status);

  std::vector<TemplateGroup> out;
  out.reserve(groups.size());
  for (auto& [id, g] : groups) out.push_back(std::move(g));
  std::sort(out.begin(), out.end(),
            [](const TemplateGroup& a, const TemplateGroup& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.template_id < b.template_id;
            });
  return out;
}

Result<std::vector<TemplateAnomaly>> ManagedTopic::DetectAnomalies(
    uint64_t window1_begin, uint64_t window1_end, uint64_t window2_begin,
    uint64_t window2_end, double min_change_ratio) const {
  // Use maximally precise templates for comparison.
  auto before = Query(1.0, window1_begin, window1_end);
  BB_RETURN_IF_ERROR(before.status());
  auto after = Query(1.0, window2_begin, window2_end);
  BB_RETURN_IF_ERROR(after.status());

  std::unordered_map<TemplateId, uint64_t> before_counts;
  for (const auto& g : before.value()) before_counts[g.template_id] = g.count;

  std::vector<TemplateAnomaly> anomalies;
  for (const auto& g : after.value()) {
    const auto it = before_counts.find(g.template_id);
    TemplateAnomaly anomaly;
    anomaly.template_id = g.template_id;
    anomaly.template_text = g.template_text;
    anomaly.count_after = g.count;
    if (it == before_counts.end()) {
      anomaly.is_new = true;
      anomaly.change_ratio = static_cast<double>(g.count);
      anomalies.push_back(std::move(anomaly));
      continue;
    }
    anomaly.count_before = it->second;
    const double ratio = static_cast<double>(g.count) /
                         static_cast<double>(std::max<uint64_t>(1, it->second));
    anomaly.change_ratio = ratio;
    if (ratio >= min_change_ratio || ratio <= 1.0 / min_change_ratio) {
      anomalies.push_back(std::move(anomaly));
    }
  }
  std::sort(anomalies.begin(), anomalies.end(),
            [](const TemplateAnomaly& a, const TemplateAnomaly& b) {
              if (a.is_new != b.is_new) return a.is_new;
              return a.change_ratio > b.change_ratio;
            });
  return anomalies;
}

TopicStats ManagedTopic::stats() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return stats_;
}

bool ManagedTopic::trained() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return trained_;
}

Result<ManagedTopic*> LogService::CreateTopic(const std::string& name,
                                              TopicConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = topics_.emplace(
      name, std::make_unique<ManagedTopic>(name, std::move(config)));
  if (!inserted) {
    return Status::AlreadyExists("topic '" + name + "' already exists");
  }
  return it->second.get();
}

Result<ManagedTopic*> LogService::GetTopic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = topics_.find(name);
  if (it == topics_.end()) {
    return Status::NotFound("topic '" + name + "' does not exist");
  }
  return it->second.get();
}

std::vector<std::string> LogService::TopicNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(topics_.size());
  for (const auto& [name, topic] : topics_) names.push_back(name);
  return names;
}

}  // namespace bytebrain
