// Fig. 10: the token->id dictionary an ordinal encoder would have to
// persist, per dataset, as a function of log volume — the storage that
// hash encoding eliminates entirely. Plus the topic-storage series:
// LogTopic append/scan throughput and on-disk footprint, in-memory
// backend vs the segmented disk backend (mmap'd sealed scans).
#include <unistd.h>

#include <filesystem>

#include "bench/bench_common.h"
#include "core/preprocess.h"
#include "logstore/log_topic.h"
#include "util/string_util.h"
#include "util/timer.h"

using namespace bytebrain;

namespace {

struct StorageSeries {
  double append_mps = 0.0;  // million records/s
  double scan_mps = 0.0;
  uint64_t disk_bytes = 0;
  uint64_t segments = 0;
};

StorageSeries RunStorageSeries(const Dataset& ds, bool disk) {
  StorageConfig cfg;
  std::string dir;
  if (disk) {
    dir = (std::filesystem::temp_directory_path() /
           ("bb_fig10_" + std::to_string(::getpid()) + "_" + ds.name))
              .string();
    std::filesystem::remove_all(dir);
    cfg.kind = StorageConfig::Kind::kSegmentedDisk;
    cfg.directory = dir;
    cfg.segment_data_bytes = 1u << 20;
  }
  StorageSeries out;
  {
    LogTopic topic(ds.name, cfg);
    Timer append_timer;
    uint64_t ts = 0;
    for (const auto& l : ds.logs) {
      topic.Append({ts++, l.text, 0});
    }
    out.append_mps = static_cast<double>(ds.logs.size()) /
                     append_timer.ElapsedSeconds() / 1e6;
    Timer scan_timer;
    uint64_t bytes = 0;
    (void)topic.Scan(0, topic.size(),
                     [&bytes](uint64_t, const LogRecord& rec) {
                       bytes += rec.text.size();
                     });
    out.scan_mps = static_cast<double>(topic.size()) /
                   scan_timer.ElapsedSeconds() / 1e6;
    out.segments = topic.sealed_segment_count();
  }
  if (disk) {
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (entry.is_regular_file()) out.disk_bytes += entry.file_size();
    }
    std::filesystem::remove_all(dir);
  }
  return out;
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 10 — ordinal-encoding dictionary size vs log size",
                   "paper Fig. 10");

  TablePrinter table({"Dataset", "LogBytes", "DictBytes(ordinal)",
                      "DictBytes(hash)", "Dict/Log ratio"},
                     {13, 14, 20, 17, 15});
  table.PrintHeader();

  for (const DatasetSpec& spec : LogHub2Specs()) {
    Dataset ds = ScaledLogHub2(spec);
    std::vector<std::string> logs;
    logs.reserve(ds.logs.size());
    for (auto& l : ds.logs) logs.push_back(l.text);

    PreprocessOptions opts;
    opts.encoder = EncoderKind::kOrdinal;
    opts.num_threads = 2;
    auto replacer = VariableReplacer::Default();
    auto result = Preprocess(logs, replacer, opts);

    const uint64_t log_bytes = ds.TextBytes();
    table.PrintRow({spec.name, FormatBytes(log_bytes),
                    FormatBytes(result.dictionary_bytes), "0 B",
                    TablePrinter::Fmt(static_cast<double>(result.dictionary_bytes) /
                                          static_cast<double>(log_bytes),
                                      4)});
  }
  std::printf(
      "\nShape check (paper Fig. 10): dictionary size grows with log\n"
      "volume into the 10^5-10^8 byte range at full scale; hash encoding\n"
      "stores nothing. (At the bench's reduced scale the ratio column is\n"
      "the scale-free signal.)\n");

  std::printf(
      "\nTopic-storage series: LogTopic append/scan, in-memory backend\n"
      "vs segmented disk backend (1 MiB checksummed segments, sealed\n"
      "segments scanned via mmap).\n\n");
  TablePrinter storage_table(
      {"Dataset", "Mem app M/s", "Disk app M/s", "Mem scan M/s",
       "Disk scan M/s", "DiskBytes", "Segs"},
      {13, 12, 13, 13, 14, 11, 5});
  storage_table.PrintHeader();
  for (const DatasetSpec& spec : LogHub2Specs()) {
    Dataset ds = ScaledLogHub2(spec);
    const StorageSeries mem = RunStorageSeries(ds, /*disk=*/false);
    const StorageSeries disk = RunStorageSeries(ds, /*disk=*/true);
    storage_table.PrintRow(
        {spec.name, TablePrinter::Fmt(mem.append_mps),
         TablePrinter::Fmt(disk.append_mps), TablePrinter::Fmt(mem.scan_mps),
         TablePrinter::Fmt(disk.scan_mps), FormatBytes(disk.disk_bytes),
         std::to_string(disk.segments)});
  }
  return 0;
}
