// Tests for the reimplemented baseline parsers: every parser must return
// a complete grouping, behave deterministically, and achieve sane
// grouping accuracy on an easy synthetic corpus. Individual parsers get
// targeted checks for their core mechanism.
#include <gtest/gtest.h>

#include <set>

#include "baselines/drain.h"
#include "baselines/frequency_parsers.h"
#include "baselines/lenma.h"
#include "baselines/registry.h"
#include "baselines/semantic_oracle.h"
#include "baselines/spell.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "util/timer.h"

namespace bytebrain {
namespace {

// Easy corpus: 4 clearly distinct structures with numeric variables.
struct EasyCorpus {
  std::vector<std::string> logs;
  std::vector<uint32_t> gt;
};

EasyCorpus MakeEasyCorpus(int per_template = 50) {
  EasyCorpus c;
  for (int i = 0; i < per_template; ++i) {
    c.logs.push_back("Connection opened from 10.0.0." +
                     std::to_string(i % 20 + 1) + " port " +
                     std::to_string(30000 + i));
    c.gt.push_back(0);
    c.logs.push_back("Disk write failed on volume vol" +
                     std::to_string(i % 8) + " code " + std::to_string(i % 3));
    c.gt.push_back(1);
    c.logs.push_back("Heartbeat received from node-" + std::to_string(i % 9));
    c.gt.push_back(2);
    c.logs.push_back("Cache evicted " + std::to_string(i) + " entries in " +
                     std::to_string(i % 90) + "ms");
    c.gt.push_back(3);
  }
  return c;
}

class AllBaselinesTest : public ::testing::TestWithParam<int> {};

TEST(RegistryTest, ProvidesSixteenPaperBaselines) {
  BaselineHints hints;
  auto syntax = MakeSyntaxBaselines(hints);
  auto semantic = MakeSemanticBaselines(hints);
  EXPECT_EQ(syntax.size(), 13u);   // Table 2's syntax methods
  EXPECT_EQ(semantic.size(), 3u);  // UniParser, LogPPT, LILAC
  std::set<std::string> names;
  for (const auto& p : syntax) names.insert(p->name());
  for (const auto& p : semantic) names.insert(p->name());
  EXPECT_EQ(names.size(), 16u);
  EXPECT_TRUE(names.count("Drain"));
  EXPECT_TRUE(names.count("Spell"));
  EXPECT_TRUE(names.count("LILAC"));
}

TEST(AllBaselines, CompleteGroupingOnEasyCorpus) {
  EasyCorpus corpus = MakeEasyCorpus();
  BaselineHints hints;
  hints.expected_templates = 4;
  hints.gt_labels = corpus.gt;
  for (auto& parser : MakeAllBaselines(hints)) {
    auto groups = parser->Parse(corpus.logs);
    ASSERT_EQ(groups.size(), corpus.logs.size()) << parser->name();
  }
}

TEST(AllBaselines, DeterministicAcrossRuns) {
  EasyCorpus corpus = MakeEasyCorpus(20);
  BaselineHints hints;
  hints.expected_templates = 4;
  hints.gt_labels = corpus.gt;
  auto first = MakeAllBaselines(hints);
  auto second = MakeAllBaselines(hints);
  for (size_t p = 0; p < first.size(); ++p) {
    auto a = first[p]->Parse(corpus.logs);
    auto b = second[p]->Parse(corpus.logs);
    EXPECT_EQ(a, b) << first[p]->name();
  }
}

TEST(AllBaselines, ReasonableAccuracyOnEasyCorpus) {
  // The corpus is deliberately trivial: distinct first tokens, distinct
  // lengths. Pure word-frequency methods (LogCluster) legitimately
  // over-split bounded variable pools — the paper ranks them weakest —
  // so they get a lower floor; everyone else must clear 0.4, and the
  // strong parsers must be near-perfect.
  EasyCorpus corpus = MakeEasyCorpus();
  BaselineHints hints;
  hints.expected_templates = 4;
  hints.gt_labels = corpus.gt;
  for (auto& parser : MakeAllBaselines(hints)) {
    auto groups = parser->Parse(corpus.logs);
    const double ga = GroupingAccuracy(groups, corpus.gt);
    const double floor = parser->name() == "LogCluster" ? 0.15 : 0.4;
    EXPECT_GE(ga, floor) << parser->name() << " GA=" << ga;
    if (parser->name() == "Drain" || parser->name() == "Spell") {
      EXPECT_GE(ga, 0.9) << parser->name() << " GA=" << ga;
    }
  }
}

TEST(DrainTest, GroupsNumericVariants) {
  DrainParser drain;
  std::vector<std::string> logs = {
      "send packet 1 to host", "send packet 2 to host",
      "send packet 3 to host", "recv ack from peer"};
  auto groups = drain.Parse(logs);
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[1], groups[2]);
  EXPECT_NE(groups[0], groups[3]);
}

TEST(DrainTest, SeparatesByLength) {
  DrainParser drain;
  std::vector<std::string> logs = {"a b c", "a b c d"};
  auto groups = drain.Parse(logs);
  EXPECT_NE(groups[0], groups[1]);
}

TEST(DrainTest, SimilarityThresholdSplitsDistinctStructures) {
  DrainParser drain;
  std::vector<std::string> logs = {"alpha beta gamma delta",
                                   "one two three four"};
  auto groups = drain.Parse(logs);
  EXPECT_NE(groups[0], groups[1]);
}

TEST(SpellTest, LcsJoinsVariantsOfOneStatement) {
  SpellParser spell;
  std::vector<std::string> logs = {
      "Verification succeeded for blk_1", "Verification succeeded for blk_2",
      "Verification succeeded for blk_3"};
  auto groups = spell.Parse(logs);
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[1], groups[2]);
}

TEST(SpellTest, DistinctStatementsStaySeparate) {
  SpellParser spell;
  std::vector<std::string> logs = {"open file for writing data",
                                   "network interface link down"};
  auto groups = spell.Parse(logs);
  EXPECT_NE(groups[0], groups[1]);
}

TEST(LenmaTest, LengthVectorsGroupSameShape) {
  LenmaParser lenma;
  std::vector<std::string> logs = {"user alice logged in",
                                   "user carol logged in",
                                   "kernel oops at address deadbeef"};
  auto groups = lenma.Parse(logs);
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_NE(groups[0], groups[2]);
}

TEST(SlctTest, OutliersGetOwnGroups) {
  SlctParser slct(/*support_fraction=*/0.2);
  std::vector<std::string> logs;
  for (int i = 0; i < 30; ++i) {
    logs.push_back("common event number " + std::to_string(i));
  }
  logs.push_back("rare singleton alpha");
  logs.push_back("rare singleton beta");
  auto groups = slct.Parse(logs);
  // The two rare logs must not join the common cluster.
  EXPECT_NE(groups[30], groups[0]);
  EXPECT_NE(groups[31], groups[0]);
  // Each rare log in its own group: "rare singleton alpha/beta" share 2
  // frequent-ish words but are below support.
  EXPECT_NE(groups[30], groups[31]);
}

TEST(SemanticOracleTest, PerfectWithoutCorruption) {
  EasyCorpus corpus = MakeEasyCorpus(10);
  SemanticOracleConfig config;
  config.corrupt_fraction = 0.0;
  config.inference_rounds = 10;  // keep the test fast
  config.hit_rounds = 1;
  SemanticOracleParser oracle(config, corpus.gt);
  auto groups = oracle.Parse(corpus.logs);
  EXPECT_DOUBLE_EQ(GroupingAccuracy(groups, corpus.gt), 1.0);
}

TEST(SemanticOracleTest, CorruptionLowersAccuracy) {
  EasyCorpus corpus = MakeEasyCorpus(10);
  SemanticOracleConfig config;
  config.corrupt_fraction = 1.0;  // split every template
  config.inference_rounds = 10;
  config.hit_rounds = 1;
  SemanticOracleParser oracle(config, corpus.gt);
  auto groups = oracle.Parse(corpus.logs);
  EXPECT_LT(GroupingAccuracy(groups, corpus.gt), 0.1);
}

TEST(SemanticOracleTest, CacheMakesRepeatsCheaper) {
  // With a template cache, a corpus of repeated templates runs much
  // faster than without (LILAC's core claim).
  EasyCorpus corpus = MakeEasyCorpus(60);
  SemanticOracleConfig cached;
  cached.corrupt_fraction = 0.0;
  cached.inference_rounds = 400000;
  cached.hit_rounds = 100;
  cached.template_cache = true;
  SemanticOracleConfig uncached = cached;
  uncached.template_cache = false;

  Timer t1;
  SemanticOracleParser(cached, corpus.gt).Parse(corpus.logs);
  const double cached_s = t1.ElapsedSeconds();
  Timer t2;
  SemanticOracleParser(uncached, corpus.gt).Parse(corpus.logs);
  const double uncached_s = t2.ElapsedSeconds();
  EXPECT_LT(cached_s * 2, uncached_s);
}

TEST(SemanticOracleTest, MismatchedLabelsFailSafe) {
  SemanticOracleParser oracle(SemanticOracleConfig{}, {1, 2});
  auto groups = oracle.Parse({"a", "b", "c"});
  ASSERT_EQ(groups.size(), 3u);  // degenerate single group, no crash
}

TEST(MetricsTest, GroupingAccuracyStrictness) {
  // gt: {0,1} {2,3}; predicted merges everything -> 0 correct.
  std::vector<uint32_t> gt = {1, 1, 2, 2};
  std::vector<uint64_t> merged = {9, 9, 9, 9};
  EXPECT_DOUBLE_EQ(GroupingAccuracy(merged, gt), 0.0);
  // Predicted splits one group -> only the intact group counts.
  std::vector<uint64_t> split = {7, 8, 9, 9};
  EXPECT_DOUBLE_EQ(GroupingAccuracy(split, gt), 0.5);
  // Exact partition (different ids) -> 1.0.
  std::vector<uint64_t> exact = {5, 5, 6, 6};
  EXPECT_DOUBLE_EQ(GroupingAccuracy(exact, gt), 1.0);
}

TEST(MetricsTest, EmptyAndMismatchedInputs) {
  EXPECT_DOUBLE_EQ(
      GroupingAccuracy(std::vector<uint64_t>{}, std::vector<uint32_t>{}), 1.0);
  EXPECT_DOUBLE_EQ(GroupingAccuracy({1}, std::vector<uint32_t>{1, 2}), 0.0);
}

TEST(RunnerTest, RunOnProducesConsistentResult) {
  DatasetGenerator gen(*FindDatasetSpec("Apache"));
  Dataset ds = gen.GenerateLogHub();
  DrainParser drain;
  RunResult r = RunOn(&drain, ds);
  EXPECT_EQ(r.num_logs, 2000u);
  EXPECT_GT(r.seconds, 0.0);
  EXPECT_GT(r.Throughput(), 0.0);
  EXPECT_GE(r.grouping_accuracy, 0.0);
  EXPECT_LE(r.grouping_accuracy, 1.0);
  EXPECT_GT(r.num_groups, 0u);
}

}  // namespace
}  // namespace bytebrain
