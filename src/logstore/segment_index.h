// Per-sealed-segment sparse index (ROADMAP "Query engine: indexed
// reads + bounded page cache"; ARCHITECTURE.md §8).
//
// One SegmentIndex summarizes one sealed segment file:
//   * fenceposts — the byte offset of every K-th record frame, so a
//     seq-bounded read seeks to `fenceposts[i / K]` and hops at most
//     K-1 frame headers instead of scanning from byte 0;
//   * postings — per-template-id record counts, so count-only and
//     template-filtered queries answer from the index and skip (never
//     even map) segments with no matching records;
//   * min/max timestamps — segment-skipping for future time filters;
//   * tid_fold — an order-dependent fold of the template ids, used to
//     detect a persisted index that went stale because retraining
//     pwrote template ids into the segment after the .idx was written.
//
// The index is DERIVED data. It is written to `seg-NNNNNN.idx` beside
// the segment (atomic tmp+rename, no fsync) at seal time and rewritten
// when template reassignment dirties it, but the segment file stays
// the single source of truth: at open the backend rebuilds the index
// from the verified frames it is already parsing and uses the .idx
// only as a cross-check. A missing, truncated, corrupt, or stale .idx
// is rebuilt in place — never a crash, never an open failure.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "logstore/log_record.h"
#include "util/status.h"

namespace bytebrain {

struct SegmentIndex {
  /// Fencepost spacing: byte offsets are kept for records 0, K, 2K, …
  /// A point lookup therefore hops at most K-1 frame headers.
  static constexpr uint64_t kDefaultInterval = 64;
  /// Seed for tid_fold ("SEGIDX01"); any change invalidates old files.
  static constexpr uint64_t kTidFoldSeed = 0x5345474944583031ULL;

  uint64_t fencepost_interval = kDefaultInterval;
  uint64_t records = 0;
  /// Byte offset (within the segment file) of record i*interval.
  std::vector<uint64_t> fenceposts;
  /// template id -> number of records currently carrying it.
  std::unordered_map<TemplateId, uint64_t> postings;
  uint64_t min_timestamp_us = 0;
  uint64_t max_timestamp_us = 0;
  /// Order-dependent HashCombine fold over the template ids, in
  /// sequence order. Recomputed from the segment at open; a mismatch
  /// against the persisted value means the .idx predates a template
  /// rewrite and must be rebuilt.
  uint64_t tid_fold = kTidFoldSeed;

  /// Feeds record `records` (they must arrive in sequence order).
  void AddRecord(uint64_t byte_offset, uint64_t timestamp_us, TemplateId tid);

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(std::string_view bytes, SegmentIndex* out);

  /// Atomic tmp+rename write. Deliberately NOT fsynced and not routed
  /// through StorageConfig::file_ops: the index is rebuildable derived
  /// data, and keeping it off the fault-injection op stream keeps the
  /// crash matrix's op indices stable.
  Status WriteTo(const std::string& path) const;
  /// *exists=false (and OK) when the file is absent. Any read or
  /// decode problem returns Corruption — callers rebuild, never fail.
  static Status ReadFrom(const std::string& path, SegmentIndex* out,
                         bool* exists);
};

/// `<directory>/seg-NNNNNN.idx`, beside the segment's .log file.
std::string SegmentIndexPath(const std::string& directory,
                             uint64_t segment_index);

}  // namespace bytebrain
