#include "eval/bytebrain_adapter.h"

namespace bytebrain {

ByteBrainAdapterConfig ByteBrainDefaultConfig() {
  ByteBrainAdapterConfig config;
  config.display_name = "ByteBrain";
  config.num_threads = 4;
  return config;
}

ByteBrainAdapterConfig ByteBrainSequentialConfig() {
  ByteBrainAdapterConfig config;
  config.display_name = "ByteBrain Sequential";
  config.num_threads = 1;
  return config;
}

ByteBrainAdapterConfig ByteBrainUnoptimizedConfig() {
  // The paper's "w/o JIT" variant disables code acceleration while keeping
  // the algorithm; our analogue swaps the hand-rolled preprocessing fast
  // paths for the scalar/regex reference implementations and runs
  // single-threaded (multi-threading is also unavailable w/o JIT there).
  ByteBrainAdapterConfig config;
  config.display_name = "ByteBrain w/o JIT";
  config.num_threads = 1;
  config.options.unoptimized = true;
  return config;
}

}  // namespace bytebrain
