#include "util/string_util.h"

#include <cctype>
#include <cstdio>

namespace bytebrain {

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  size_t i = 0;
  const size_t n = s.size();
  while (i < n) {
    while (i < n && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < n && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

namespace {
template <typename T>
std::string JoinImpl(const std::vector<T>& parts, std::string_view sep) {
  std::string out;
  size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}
}  // namespace

std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string JoinStrings(const std::vector<std::string_view>& parts,
                        std::string_view sep) {
  return JoinImpl(parts, sep);
}

std::string_view TrimString(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsAllDigits(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
  }
  return true;
}

bool LooksNumeric(std::string_view s) {
  if (s.empty()) return false;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') i = 1;
  if (i >= s.size()) return false;
  // Hex literal.
  if (s.size() - i > 2 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    for (size_t j = i + 2; j < s.size(); ++j) {
      if (!std::isxdigit(static_cast<unsigned char>(s[j]))) return false;
    }
    return true;
  }
  bool saw_digit = false;
  bool saw_dot = false;
  for (size_t j = i; j < s.size(); ++j) {
    char c = s[j];
    if (c >= '0' && c <= '9') {
      saw_digit = true;
    } else if (c == '.' && !saw_dot) {
      saw_dot = true;
    } else {
      return false;
    }
  }
  return saw_digit;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  return buf;
}

std::string FormatCount(uint64_t count) {
  std::string digits = std::to_string(count);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c > 0 && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace bytebrain
