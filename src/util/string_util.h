// Small string helpers shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace bytebrain {

/// Splits on a single delimiter character; empty fields are kept.
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Splits on any whitespace; empty fields are dropped.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

/// Joins parts with `sep`.
std::string JoinStrings(const std::vector<std::string>& parts,
                        std::string_view sep);
std::string JoinStrings(const std::vector<std::string_view>& parts,
                        std::string_view sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view TrimString(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character is an ASCII digit (and s is non-empty).
bool IsAllDigits(std::string_view s);

/// True if s looks numeric: digits with optional sign / single dot / 0x hex.
bool LooksNumeric(std::string_view s);

/// Formats a byte count as "12.3 KB" / "4.5 MB" etc.
std::string FormatBytes(uint64_t bytes);

/// Formats a count with thousands separators: 1234567 -> "1,234,567".
std::string FormatCount(uint64_t count);

}  // namespace bytebrain
