// Synthetic labeled log generator.
//
// Produces LogHub-style corpora: each dataset has a fixed set of synthetic
// templates (mix of handcrafted, dataset-flavored ones and procedurally
// generated ones), Zipfian template frequencies, and per-variable bounded
// value pools so the duplicate-count profile matches the paper's Fig. 4.
// Every emitted log carries its ground-truth template id, which the
// evaluation harness uses for Grouping Accuracy.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "datagen/dataset_spec.h"
#include "util/rng.h"

namespace bytebrain {

/// One generated log with its ground-truth template label.
struct LabeledLog {
  std::string text;
  uint32_t gt_template = 0;
};

/// A generated corpus.
struct Dataset {
  std::string name;
  std::vector<LabeledLog> logs;
  size_t num_templates = 0;

  uint64_t TextBytes() const {
    uint64_t b = 0;
    for (const auto& l : logs) b += l.text.size();
    return b;
  }
};

/// Generation knobs.
struct GenOptions {
  size_t num_logs = 2000;
  size_t num_templates = 50;
  /// Prefix each record with a format-appropriate timestamp/host preamble.
  /// Parser evaluations run on content only (like the Logparser toolkit,
  /// which extracts the Content field); service benches include preambles.
  bool include_preamble = false;
  double zipf_exponent = 1.2;
  uint64_t seed_salt = 0;
};

/// Deterministic generator for one dataset spec. Thread-compatible: create
/// one instance per thread.
class DatasetGenerator {
 public:
  explicit DatasetGenerator(const DatasetSpec& spec) : spec_(spec) {}

  /// Generates with explicit options.
  Dataset Generate(const GenOptions& options) const;

  /// LogHub-sized corpus: 2000 logs, Table-1 template count.
  Dataset GenerateLogHub() const;

  /// LogHub-2.0-sized corpus scaled by `scale` (1.0 = full Table-1 log
  /// count; default benches use ~0.01-0.05). Template count is NOT scaled.
  Dataset GenerateLogHub2(double scale) const;

  const DatasetSpec& spec() const { return spec_; }

 private:
  DatasetSpec spec_;
};

/// Renders a preamble for the style (exposed for the service benches).
std::string RenderPreamble(PreambleStyle style, Rng* rng);

}  // namespace bytebrain
