// bbparse: command-line log parsing through the service API.
//
// Reads a plain log file (or a Logparser-format structured CSV), pushes
// it through a local ServiceFrontend — create topic, batch ingest with
// automatic training, force a final training — and prints the
// discovered templates with counts at the requested precision via the
// paginated Query API. The same calls, byte for byte, work against a
// remote frontend once a transport is mounted.
//
//   ./examples/bbparse_cli <file.log> [saturation-threshold] [max-templates]
//   ./examples/bbparse_cli access.log 0.6 40
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "datagen/loghub_loader.h"
#include "util/string_util.h"

using namespace bytebrain;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.log|file_structured.csv> "
                 "[saturation-threshold=0.6] [max-templates=50]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const double threshold = argc > 2 ? std::atof(argv[2]) : 0.6;
  const uint32_t max_templates =
      argc > 3 ? static_cast<uint32_t>(std::atoll(argv[3])) : 50;

  auto dataset = EndsWith(path, ".csv") ? LoadStructuredCsv(path)
                                        : LoadPlainLog(path);
  if (!dataset.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> logs;
  logs.reserve(dataset->logs.size());
  for (auto& l : dataset->logs) logs.push_back(std::move(l.text));
  std::fprintf(stderr, "loaded %zu logs from %s\n", logs.size(),
               path.c_str());

  api::ServiceFrontend frontend;
  const std::string tenant = "cli";

  api::CreateTopicRequest create;
  create.name = "input";
  create.config.num_threads = 2;
  create.config.async_training = false;  // deterministic one-shot run
  // One-shot CLI: train over the WHOLE file (the service default caps a
  // training window at 200k records — an OOM guard for unbounded
  // streams that doesn't apply to a file already held in memory).
  create.config.max_train_records = std::max<uint64_t>(1, logs.size());
  api::CreateTopicResponse created;
  Status status = frontend.CreateTopic(tenant, create, &created);
  if (!status.ok()) {
    std::fprintf(stderr, "create failed: %s\n", status.ToString().c_str());
    return 1;
  }

  api::IngestBatchRequest ingest;
  ingest.topic = "input";
  ingest.texts = std::move(logs);
  api::IngestBatchResponse ingested;
  status = frontend.IngestBatch(tenant, std::move(ingest), &ingested);
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Fold the full window — including post-training adoptions — into
  // one final model before querying.
  api::TrainNowRequest train;
  train.topic = "input";
  api::TrainNowResponse trained;
  status = frontend.TrainNow(tenant, train, &trained);
  if (!status.ok()) {
    std::fprintf(stderr, "training failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // Paginated query: one page of `max_templates` groups, counts only.
  api::QueryRequest query;
  query.topic = "input";
  query.saturation_threshold = threshold;
  query.max_groups = max_templates;
  query.include_sequence_numbers = false;
  api::QueryResponse result;
  status = frontend.Query(tenant, query, &result);
  if (!status.ok()) {
    std::fprintf(stderr, "query failed: %s\n", status.ToString().c_str());
    return 1;
  }

  std::printf("# top %zu templates at saturation >= %.2f%s\n",
              result.groups.size(), threshold,
              result.next_cursor.empty() ? "" : " (more pages available)");
  for (const auto& g : result.groups) {
    std::printf("%10llu  %s\n", static_cast<unsigned long long>(g.count),
                g.template_text.c_str());
  }
  return 0;
}
