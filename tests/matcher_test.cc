// Tests for the interned-token matching pipeline: TokenTable round
// trips, keyed-trie-index vs. linear-scan equivalence on randomized
// templates, the fused replace+tokenize scan vs. the two-pass pipeline,
// Insert-after-adopt try order, and IngestBatch vs. sequential Ingest.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/matcher.h"
#include "core/parser.h"
#include "core/token_table.h"
#include "core/tokenizer.h"
#include "datagen/generator.h"
#include "service/log_service.h"
#include "util/rng.h"

namespace bytebrain {
namespace {

// Reference matcher with the PRE-REFACTOR semantics: string-compare every
// equal-length template in descending-saturation order (stable on model
// order). The production matcher must agree bit-for-bit.
TemplateId ReferenceMatch(const TemplateModel& model,
                          const VariableReplacer& replacer,
                          std::string_view raw) {
  const std::string replaced = replacer.Replace(raw);
  const std::vector<std::string_view> tokens = TokenizeDefault(replaced);
  std::vector<const TreeNode*> order;
  order.reserve(model.size());
  for (const TreeNode& n : model.nodes()) order.push_back(&n);
  std::stable_sort(order.begin(), order.end(),
                   [](const TreeNode* a, const TreeNode* b) {
                     return a->saturation > b->saturation;
                   });
  for (const TreeNode* n : order) {
    if (n->tokens.size() != tokens.size()) continue;
    bool ok = true;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (n->tokens[i] != kWildcard && n->tokens[i] != tokens[i]) {
        ok = false;
        break;
      }
    }
    if (ok) return n->id;
  }
  return kInvalidTemplateId;
}

TEST(TokenTableTest, InternLookupRoundTrip) {
  TokenTable table;
  EXPECT_EQ(table.Lookup("*"), TokenTable::kWildcardId);
  EXPECT_EQ(table.text(TokenTable::kWildcardId), "*");

  const uint32_t a = table.Intern("alpha");
  const uint32_t b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("alpha"), a);  // idempotent
  EXPECT_EQ(table.Lookup("alpha"), a);
  EXPECT_EQ(table.text(a), "alpha");
  EXPECT_EQ(table.text(b), "beta");
  EXPECT_EQ(table.Lookup("never-seen"), TokenTable::kUnknownId);
  EXPECT_EQ(table.text(TokenTable::kUnknownId), "");
}

TEST(TokenTableTest, SurvivesGrowth) {
  TokenTable table;
  std::vector<uint32_t> ids;
  for (int i = 0; i < 500; ++i) {
    ids.push_back(table.Intern("token_" + std::to_string(i)));
  }
  EXPECT_EQ(table.size(), 501u);  // + wildcard
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(table.Lookup("token_" + std::to_string(i)), ids[i]);
    EXPECT_EQ(table.text(ids[i]), "token_" + std::to_string(i));
  }
  EXPECT_EQ(table.Lookup("token_500"), TokenTable::kUnknownId);
}

TEST(MatcherEquivalenceTest, KeyedIndexMatchesLinearScanOnRandomTemplates) {
  Rng rng(0xfeedULL);
  const std::vector<std::string> vocab = [] {
    std::vector<std::string> v;
    for (int i = 0; i < 12; ++i) v.push_back("tok" + std::to_string(i));
    return v;
  }();

  VariableReplacer replacer = VariableReplacer::None();
  TemplateModel model;
  // Dense template population per length so trie leaves overflow and
  // split; discrete saturations so try-order ties are common.
  const double kSats[] = {0.25, 0.5, 0.75, 1.0};
  for (int t = 0; t < 300; ++t) {
    const size_t len = 3 + rng.NextBelow(5);
    std::vector<std::string> tokens;
    for (size_t p = 0; p < len; ++p) {
      if (rng.NextDouble() < 0.35) {
        tokens.emplace_back(kWildcard);
      } else {
        tokens.push_back(vocab[rng.NextBelow(vocab.size())]);
      }
    }
    model.AddNode(0, kSats[rng.NextBelow(4)], std::move(tokens), 1);
  }
  TemplateMatcher matcher(model, &replacer);
  ASSERT_EQ(matcher.num_templates(), 300u);

  int hits = 0;
  for (int q = 0; q < 3000; ++q) {
    const size_t len = 3 + rng.NextBelow(5);
    std::string log;
    for (size_t p = 0; p < len; ++p) {
      if (!log.empty()) log += ' ';
      // Occasionally a token no template contains.
      log += rng.NextDouble() < 0.1 ? "unseen" + std::to_string(q)
                                    : vocab[rng.NextBelow(vocab.size())];
    }
    const TemplateId expected = ReferenceMatch(model, replacer, log);
    EXPECT_EQ(matcher.Match(log), expected) << log;
    if (expected != kInvalidTemplateId) ++hits;
  }
  EXPECT_GT(hits, 100);  // the corpus must actually exercise matching
}

TEST(MatcherEquivalenceTest, AgreesWithReferenceOnTrainedModel) {
  DatasetGenerator gen(*FindDatasetSpec("OpenSSH"));
  GenOptions opts;
  opts.num_logs = 600;
  opts.num_templates = 30;
  std::vector<std::string> logs;
  for (auto& l : gen.Generate(opts).logs) logs.push_back(l.text);

  ByteBrainOptions options;
  ByteBrainParser parser(options);
  ASSERT_TRUE(parser.Train(logs).ok());
  const VariableReplacer replacer = VariableReplacer::Default();
  for (const auto& log : logs) {
    EXPECT_EQ(parser.Match(log),
              ReferenceMatch(parser.model(), replacer, log))
        << log;
  }
}

TEST(MatcherEquivalenceTest, FusedScanMatchesTwoPassPipeline) {
  VariableReplacer replacer = VariableReplacer::Default();
  ASSERT_TRUE(replacer.fused_fast_path());

  std::vector<std::string> corpus = {
      "",
      "plain words only",
      "2026-01-02 10:11:12,123 done",
      "a-10.0.0.1-b linked",
      "end.2026/06/10",
      "x :// y ://z",
      "path.to. end.",
      "\\\"quoted\\\" text",
      "0xdeadbeef-50 0x1",
      "literal * star",
      "v-12:30:00-y mixed token",
      "Dec 10 07:07:38 host sshd[24206]: Failed password for root "
      "from 173.234.31.186 port 38926 ssh2",
      "md5 d41d8cd98f00b204e9800998ecf8427e trailing",
      "uuid 123e4567-e89b-12d3-a456-426614174000.",
      "123e4567-e89b-12d3-a456-42661417400",  // not a uuid (short group)
      "ports 1:2:3 10.0.0.1:50010 done.",
  };
  DatasetGenerator gen(*FindDatasetSpec("Hadoop"));
  GenOptions opts;
  opts.num_logs = 400;
  opts.num_templates = 40;
  opts.include_preamble = true;
  for (auto& l : gen.Generate(opts).logs) corpus.push_back(l.text);

  // Intern the tokens of half the corpus so lookups mix known/unknown.
  TokenTable table;
  std::string replaced;
  for (size_t i = 0; i < corpus.size(); i += 2) {
    replacer.ReplaceInto(corpus[i], &replaced);
    for (std::string_view tok : TokenizeDefault(replaced)) table.Intern(tok);
  }

  std::string mixed_buf;
  std::vector<uint32_t> fused_ids;
  std::vector<std::string_view> tokens;
  for (const auto& raw : corpus) {
    fused_ids.clear();
    TokenizeReplacedIdsInto(raw, table, &mixed_buf, &fused_ids);

    replacer.ReplaceInto(raw, &replaced);
    tokens.clear();
    TokenizeDefaultInto(replaced, &tokens);
    std::vector<uint32_t> expected;
    for (std::string_view tok : tokens) expected.push_back(table.Lookup(tok));

    EXPECT_EQ(fused_ids, expected) << raw;
  }
}

TEST(MatcherInsertTest, InsertAfterAdoptPreservesTryOrder) {
  VariableReplacer replacer = VariableReplacer::None();
  TemplateModel model;
  const TemplateId a = model.AddNode(0, 0.9, {"alpha", "*", "gamma"}, 1);
  const TemplateId b = model.AddNode(0, 0.8, {"alpha", "beta", "*"}, 1);
  const TemplateId d = model.AddNode(0, 0.9, {"alpha", "*", "*"}, 1);
  TemplateMatcher matcher(model, &replacer);

  // Tie at 0.9: the earlier template wins.
  EXPECT_EQ(matcher.Match("alpha beta gamma"), a);
  EXPECT_EQ(matcher.Match("alpha beta zeta"), d);  // a needs gamma

  // Adopted temporaries are fully precise (saturation 1.0) and must be
  // tried before everything else.
  const TemplateId c = model.AdoptTemporary({"alpha", "beta", "gamma"});
  matcher.Insert(*model.node(c));
  EXPECT_EQ(matcher.Match("alpha beta gamma"), c);
  EXPECT_EQ(matcher.Match("alpha other gamma"), a);

  // Inserting mid-saturation slots between existing entries.
  const TemplateId f = model.AddNode(0, 0.95, {"alpha", "*", "*"}, 1);
  matcher.Insert(*model.node(f));
  EXPECT_EQ(matcher.Match("alpha other gamma"), f);  // 0.95 > 0.9

  // An equal-saturation insert goes AFTER existing entries (stable
  // order): d (0.9, earlier) and f (0.95) both shadow the inserted e.
  const TemplateId e = model.AddNode(0, 0.9, {"alpha", "*", "delta"}, 1);
  matcher.Insert(*model.node(e));
  EXPECT_EQ(matcher.Match("alpha x delta"), f);
  EXPECT_EQ(matcher.Match("alpha x gamma"), f);

  // Everything above also agrees with the reference semantics.
  for (const char* log :
       {"alpha beta gamma", "alpha beta zeta", "alpha other gamma",
        "alpha x delta", "alpha x gamma", "nope nope nope"}) {
    EXPECT_EQ(matcher.Match(log), ReferenceMatch(model, replacer, log))
        << log;
  }
}

TEST(MatcherTest, MatchAllAgreesWithSequentialMatch) {
  DatasetGenerator gen(*FindDatasetSpec("OpenSSH"));
  GenOptions opts;
  opts.num_logs = 512;
  opts.num_templates = 25;
  std::vector<std::string> logs;
  for (auto& l : gen.Generate(opts).logs) logs.push_back(l.text);

  ByteBrainOptions options;
  ByteBrainParser parser(options);
  ASSERT_TRUE(parser.Train(logs).ok());

  std::vector<TemplateId> expected;
  for (const auto& log : logs) expected.push_back(parser.Match(log));
  for (int threads : {1, 2, 4}) {
    EXPECT_EQ(parser.MatchAll(logs, threads), expected) << threads;
  }
}

std::vector<std::string> ServiceWorkload() {
  std::vector<std::string> logs;
  for (int i = 0; i < 220; ++i) {
    logs.push_back("Accepted password for user" + std::to_string(i % 5) +
                   " from 10.0.0." + std::to_string(i % 9 + 1) + " port " +
                   std::to_string(30000 + i) + " ssh2");
    logs.push_back("Connection closed by 10.1.0." +
                   std::to_string(i % 7 + 1));
    if (i % 13 == 0) {
      // Novel shapes that force online adoption after training.
      logs.push_back("totally novel shape variant" + std::to_string(i) +
                     " appeared alone");
    }
  }
  return logs;
}

TopicConfig BatchTestConfig() {
  TopicConfig config;
  config.initial_train_records = 64;
  config.train_interval_records = 163;  // forces a retrain mid-stream
  config.train_volume_bytes = 1ull << 40;
  config.num_threads = 2;
  // Exact-equality comparison against a sequential Ingest loop needs the
  // retrain to complete inside the call that triggered it; background
  // completion timing would make the per-record stats nondeterministic.
  config.async_training = false;
  return config;
}

TEST(IngestBatchTest, MatchesSequentialIngestExactly) {
  const std::vector<std::string> logs = ServiceWorkload();

  ManagedTopic seq_topic("seq", BatchTestConfig());
  for (const auto& log : logs) {
    ASSERT_TRUE(seq_topic.Ingest(std::string(log)).ok());
  }

  ManagedTopic batch_topic("batch", BatchTestConfig());
  // Uneven chunks so training and adoption both land mid-batch.
  for (size_t begin = 0; begin < logs.size();) {
    const size_t len = std::min<size_t>(48, logs.size() - begin);
    std::vector<std::string> chunk(logs.begin() + begin,
                                   logs.begin() + begin + len);
    auto seqs = batch_topic.IngestBatch(std::move(chunk));
    ASSERT_TRUE(seqs.ok());
    ASSERT_EQ(seqs.value().size(), len);
    EXPECT_EQ(seqs.value().front(), begin);
    begin += len;
  }

  const TopicStats a = seq_topic.stats();
  const TopicStats b = batch_topic.stats();
  EXPECT_EQ(a.ingested_records, b.ingested_records);
  EXPECT_EQ(a.trainings, b.trainings);
  EXPECT_EQ(a.matched_online, b.matched_online);
  EXPECT_EQ(a.adopted_templates, b.adopted_templates);
  EXPECT_EQ(a.num_templates, b.num_templates);

  ASSERT_EQ(seq_topic.size(), batch_topic.size());
  for (uint64_t seq = 0; seq < seq_topic.size(); ++seq) {
    const auto ra = seq_topic.ReadRecord(seq);
    const auto rb = batch_topic.ReadRecord(seq);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(ra.value().template_id, rb.value().template_id)
        << "seq " << seq << ": " << ra.value().text;
  }
}

TEST(IngestBatchTest, RejectsMismatchedTimestamps) {
  ManagedTopic topic("ts", BatchTestConfig());
  auto result =
      topic.IngestBatch(std::vector<std::string>{"a", "b"}, {1});
  EXPECT_FALSE(result.ok());
}

TEST(IngestBatchTest, EmptyBatchIsNoop) {
  ManagedTopic topic("empty", BatchTestConfig());
  auto result = topic.IngestBatch(std::vector<std::string>{});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().empty());
}

}  // namespace
}  // namespace bytebrain
