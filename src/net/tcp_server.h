// TcpServer — the epoll network front for api::ServiceFrontend.
//
// This is the transport tier the paper's "as a cloud service" premise
// needs: a multi-connection TCP server that length-prefixes
// bytebrain::api envelopes onto ServiceFrontend::Dispatch. The wire
// format is deliberately minimal — one frame is
//
//     [u32 length, little-endian][length bytes of envelope]
//
// in both directions, because everything interesting (versioning,
// auth, request ids, status codes) already lives INSIDE the envelope
// (api/messages.h). The server never interprets payload bytes beyond
// the length prefix; Dispatch's "bytes in, decodable envelope out,
// never a crash" contract is what makes that safe.
//
// Architecture:
//  * One accept thread owns the nonblocking listen socket and deals
//    accepted connections round-robin to N worker event loops.
//  * Each worker owns an epoll instance and the FULL lifecycle of its
//    connections — read, dispatch (inline, on the worker thread),
//    write, close. A connection never migrates threads, so per-
//    connection state needs no locks; cross-thread traffic is limited
//    to the accept handoff (mutex + eventfd wakeup). ServiceFrontend
//    is thread-safe, so workers dispatch concurrently.
//  * Partial frames reassemble in a per-connection read buffer;
//    responses queue in a per-connection write buffer flushed as
//    EPOLLOUT allows. Pipelining is natural: a client may write many
//    frames back-to-back, responses come back in request order (use
//    envelope request_ids to correlate).
//
// Protection / backpressure (the transport half of admission control):
//  * A frame whose length prefix exceeds `max_frame_bytes` closes the
//    connection immediately — a length cannot be "partially" trusted,
//    and an attacker-controlled 4 GiB allocation must never happen.
//  * A connection idle longer than `idle_timeout_ms` (no bytes in
//    either direction) is closed — the slowloris guard.
//  * When a connection's write buffer exceeds `write_high_watermark`,
//    the server STOPS READING from it until the buffer drains below
//    the watermark: a client that does not read its responses cannot
//    make the server buffer unboundedly, it just stops being served.
//  * When Dispatch reports an admission denial with a retry_after_us
//    hint, the server pauses reading from that connection for the
//    hinted duration (capped at `max_read_pause_us`) — the token
//    bucket's backoff maps onto the transport instead of letting a
//    hot-looping client burn CPU on denials.
//
// Shutdown() is graceful: the listener closes, each worker finishes
// the dispatch it is in, responses already computed are flushed for up
// to `drain_timeout_ms`, then connections close. Start()/Shutdown()
// are not thread-safe against each other; call them from one thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/frontend.h"
#include "util/status.h"

namespace bytebrain {
namespace net {

struct TcpServerConfig {
  /// Address to bind. Loopback by default — exposing the service
  /// beyond the host is a deployment decision, not a default.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via TcpServer::port().
  uint16_t port = 0;
  /// Worker event-loop threads (connections are dealt round-robin).
  int num_workers = 2;
  /// Listen backlog.
  int backlog = 128;
  /// A frame announcing more than this many payload bytes closes the
  /// connection (the envelope layer never sees it).
  size_t max_frame_bytes = 16ull << 20;
  /// Close a connection after this long with no bytes in either
  /// direction. 0 disables the idle guard.
  uint64_t idle_timeout_ms = 60'000;
  /// Stop reading from a connection whose pending responses exceed
  /// this many buffered bytes; resume below it.
  size_t write_high_watermark = 4ull << 20;
  /// Cap on the read pause taken from a retry_after_us hint.
  uint64_t max_read_pause_us = 1'000'000;
  /// Shutdown: how long to keep flushing already-computed responses.
  uint64_t drain_timeout_ms = 1'000;
};

/// Counters for ops/tests; all monotone except connections_active.
struct TcpServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_active = 0;
  uint64_t frames_dispatched = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  /// Connections closed for announcing an oversized frame.
  uint64_t oversized_frame_closes = 0;
  /// Connections closed by the idle/slowloris guard.
  uint64_t idle_closes = 0;
  /// Times a connection crossed the write high-watermark (reads
  /// paused until its responses drained).
  uint64_t watermark_pauses = 0;
  /// Times an admission retry_after_us hint paused a connection's
  /// reads.
  uint64_t throttle_pauses = 0;
};

class TcpServer {
 public:
  /// `frontend` must outlive the server and is shared with any other
  /// surface (the typed API keeps working while the server runs).
  explicit TcpServer(api::ServiceFrontend* frontend,
                     TcpServerConfig config = {});
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// Binds, listens, and starts the accept + worker threads. IOError
  /// with errno detail on any socket failure; calling Start twice is
  /// InvalidArgument.
  Status Start();

  /// Graceful stop (see the header comment). Idempotent; also run by
  /// the destructor.
  void Shutdown();

  /// The bound port (resolves port 0); valid after a successful
  /// Start().
  uint16_t port() const { return port_; }

  TcpServerStats stats() const;

 private:
  struct Conn {
    int fd = -1;
    /// Reassembly buffer: unconsumed bytes live at [rpos, rbuf.size()).
    std::string rbuf;
    size_t rpos = 0;
    /// Pending response bytes at [wpos, wbuf.size()).
    std::string wbuf;
    size_t wpos = 0;
    uint64_t last_activity_us = 0;
    /// Nonzero while reads are paused by an admission retry hint.
    uint64_t paused_until_us = 0;
    bool paused_watermark = false;
    /// Interest currently registered with epoll.
    bool want_read = true;
    bool want_write = false;
  };

  struct Worker {
    int epoll_fd = -1;
    int event_fd = -1;
    std::thread thread;
    std::mutex mu;
    std::vector<int> incoming;  // accepted fds awaiting registration
    std::unordered_map<int, std::unique_ptr<Conn>> conns;
  };

  static uint64_t NowUs();
  void AcceptLoop();
  void WorkerLoop(Worker* w);
  void AdoptIncoming(Worker* w);
  void UpdateInterest(Worker* w, Conn* c, bool want_read, bool want_write);
  /// Reads until EAGAIN, dispatches every complete frame, queues
  /// responses, flushes, and re-evaluates pause state. Returns false
  /// if the connection was closed.
  bool HandleReadable(Worker* w, Conn* c);
  /// Flushes the write buffer until EAGAIN/empty. Returns false on a
  /// write error (connection closed).
  bool FlushWrites(Conn* c);
  /// Applies watermark/throttle pause state to the epoll interest set.
  void ReevaluateInterest(Worker* w, Conn* c);
  void CloseConn(Worker* w, Conn* c);
  /// Periodic sweep: resume throttled connections whose pause expired,
  /// close idle ones.
  void SweepConns(Worker* w, uint64_t now_us);
  void DrainAndCloseAll(Worker* w);

  api::ServiceFrontend* frontend_;
  TcpServerConfig config_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  bool started_ = false;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  size_t next_worker_ = 0;

  // Stats (atomics: touched by accept + worker threads concurrently).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_active_{0};
  std::atomic<uint64_t> frames_dispatched_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
  std::atomic<uint64_t> oversized_frame_closes_{0};
  std::atomic<uint64_t> idle_closes_{0};
  std::atomic<uint64_t> watermark_pauses_{0};
  std::atomic<uint64_t> throttle_pauses_{0};
};

}  // namespace net
}  // namespace bytebrain
