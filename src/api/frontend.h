// ServiceFrontend — the tenant-scoped service boundary over LogService.
//
// The frontend is what a transport (RPC server, HTTP handler, the
// planned io_uring/TCP front) mounts: every operation is a typed
// request/response pair (messages.h), plus a generic
// Dispatch(bytes) -> bytes entry point that decodes a RequestEnvelope,
// routes it, and encodes a ResponseEnvelope — so any byte-moving
// transport can serve the full API without knowing a single method.
//
// What the boundary guarantees (paper §3 "as a cloud service", §6):
//  * Tenant scoping. Every request names a tenant; topic `name` maps
//    to `tenant/name` in the underlying catalog. A tenant can only
//    ever see, mutate, or delete its own topics — cross-tenant access
//    comes back NotFound, indistinguishable from absence.
//  * No internal handles. Responses carry values only; a ManagedTopic*
//    never crosses the boundary (operations re-resolve by name, and
//    topic deletion is safe against in-flight calls via the catalog's
//    shared ownership).
//  * Admission control, not unbounded queueing. Per tenant: a topic
//    quota, bytes/sec and records/sec token buckets over ingest, and a
//    cap on concurrently executing batches. A denied request fails
//    fast with ResourceExhausted and a retry_after_us hint instead of
//    queueing work the box cannot absorb.
//  * Bounded responses. Query is cursor-paginated (`max_groups` +
//    opaque continuation cursor) and can omit per-record sequence
//    numbers, so one response never has to carry an unbounded group
//    list over the wire.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "api/messages.h"
#include "service/log_service.h"

namespace bytebrain {
namespace api {

/// Pluggable per-request authentication for the WIRE boundary
/// (Dispatch). Authenticate is called with the envelope's tenant and
/// auth_token BEFORE the request is routed — and therefore before any
/// admission accounting: a rejected request consumes no tokens, holds
/// no in-flight slot, and never touches the tenant meter. Must be
/// thread-safe (called concurrently from every transport thread).
class Authenticator {
 public:
  virtual ~Authenticator() = default;
  /// OK admits; any error rejects the request with that status (use
  /// Status::PermissionDenied). The tenant may be unknown — reject,
  /// don't crash.
  virtual Status Authenticate(std::string_view tenant,
                              std::string_view token) const = 0;
};

/// The default Authenticator: a static tenant -> token table fixed at
/// construction. A tenant absent from the table cannot authenticate;
/// token comparison is exact bytes.
class StaticTokenAuthenticator : public Authenticator {
 public:
  explicit StaticTokenAuthenticator(
      std::map<std::string, std::string, std::less<>> tokens)
      : tokens_(std::move(tokens)) {}
  Status Authenticate(std::string_view tenant,
                      std::string_view token) const override;

 private:
  const std::map<std::string, std::string, std::less<>> tokens_;
};

/// Frontend-wide policy. Quotas apply PER TENANT (every tenant gets
/// the same limits; 0 disables a limit).
struct FrontendConfig {
  /// Max topics a tenant may hold at once (CreateTopic beyond it is
  /// ResourceExhausted; 0 = unlimited).
  uint32_t max_topics_per_tenant = 64;
  /// Ingest token buckets: sustained rate per tenant across all its
  /// topics, refilled continuously, capacity = rate * burst_seconds.
  /// A denied Ingest/IngestBatch consumes nothing and reports how long
  /// until the bucket covers it (retry_after_us). 0 = unlimited.
  uint64_t max_ingest_bytes_per_sec = 0;
  uint64_t max_ingest_records_per_sec = 0;
  double burst_seconds = 1.0;
  /// Concurrently EXECUTING IngestBatch calls per tenant; one more is
  /// refused (ResourceExhausted) rather than queued. 0 = unlimited.
  uint32_t max_inflight_batches = 32;
  /// Root directory for disk-backed topics. When set, the frontend
  /// ASSIGNS every kSegmentedDisk topic's directory as
  /// `<storage_root>/<tenant>/<topic>` and rejects requests that try
  /// to supply their own (InvalidArgument) — a wire client must never
  /// be able to point its topic at another tenant's bytes (DeleteTopic
  /// purges the directory!). When empty (the default), the requested
  /// directory passes through verbatim — only appropriate for trusted
  /// single-operator embeddings, never for a multi-tenant deployment.
  std::string storage_root;
  /// Wire-boundary authentication (envelope v2 `auth_token`). When
  /// `authenticator` is set it is consulted on EVERY Dispatch before
  /// routing or admission; otherwise, a non-empty `tenant_tokens`
  /// installs a StaticTokenAuthenticator over it. With both unset
  /// (the default) auth is disabled and v1 clients (no token field)
  /// interoperate unchanged. The TYPED in-process methods are not
  /// authenticated — they are the trusted embedding surface; a
  /// transport must route through Dispatch.
  std::shared_ptr<const Authenticator> authenticator;
  std::map<std::string, std::string, std::less<>> tenant_tokens;
  /// Byte budget for the process-wide sealed-segment page cache shared
  /// by every disk-backed topic (SegmentCache::Global()): mappings are
  /// LRU-evicted past it, pinned readers excepted. 0 (the default)
  /// leaves the cache's own default (1 GiB) untouched. Applied at
  /// frontend construction; process-wide, so the LAST frontend built
  /// wins if several coexist.
  uint64_t segment_cache_budget_bytes = 0;
  /// Injectable time source for the token buckets (microseconds,
  /// monotonic). Defaults to steady_clock; tests inject a fake clock
  /// to make quota exhaustion/recovery deterministic.
  std::function<uint64_t()> clock_us;
  /// Test/ops instrumentation: invoked on the calling thread after an
  /// IngestBatch passed admission (its in-flight slot is held) and
  /// before the batch executes — the deterministic seam for exercising
  /// the in-flight cap, mirroring TopicConfig::on_async_training_start.
  std::function<void(std::string_view tenant)> on_ingest_batch_start;
  /// Replication peer credential. Non-empty ENABLES the replication
  /// methods (kReplPull/kPromote/kDemote) on this node: their envelopes
  /// authenticate by carrying exactly this token in `auth_token` (the
  /// envelope tenant is ignored — replication is a peer surface, not a
  /// tenant one) and never touch the tenant authenticator or admission
  /// accounting. Empty (the default) leaves the replication surface
  /// switched off: those methods return PermissionDenied.
  std::string replication_token;
  /// Start in follower mode: write-shaped methods (Create/Update/
  /// DeleteTopic, Ingest, IngestBatch, TrainNow) are rejected with
  /// Status::Unavailable until a Promote flips the role. Read methods
  /// (Query, GetStats, ListTopics, DetectAnomalies) serve normally.
  bool start_as_follower = false;
  /// Redirect hint appended to follower write rejections ("retry at
  /// <primary_hint>") — typically the primary's host:port.
  std::string primary_hint;
};

/// The service API v1 implementation. Thread-safe: every method may be
/// called concurrently from any thread.
class ServiceFrontend {
 public:
  explicit ServiceFrontend(FrontendConfig config = {});

  ServiceFrontend(const ServiceFrontend&) = delete;
  ServiceFrontend& operator=(const ServiceFrontend&) = delete;

  // Typed API. Each method is the in-process form of one wire method;
  // Dispatch routes encoded envelopes to exactly these. Ingest methods
  // take their request by value (record text moves through untouched)
  // and report admission backoff through `retry_after_us` when
  // non-null.
  Status CreateTopic(std::string_view tenant, const CreateTopicRequest& req,
                     CreateTopicResponse* resp);
  Status UpdateTopicConfig(std::string_view tenant,
                           const UpdateTopicConfigRequest& req,
                           UpdateTopicConfigResponse* resp);
  Status DeleteTopic(std::string_view tenant, const DeleteTopicRequest& req,
                     DeleteTopicResponse* resp);
  Status ListTopics(std::string_view tenant, const ListTopicsRequest& req,
                    ListTopicsResponse* resp);
  Status Ingest(std::string_view tenant, IngestRequest req,
                IngestResponse* resp, uint64_t* retry_after_us = nullptr);
  Status IngestBatch(std::string_view tenant, IngestBatchRequest req,
                     IngestBatchResponse* resp,
                     uint64_t* retry_after_us = nullptr);
  Status Query(std::string_view tenant, const QueryRequest& req,
               QueryResponse* resp);
  Status GetStats(std::string_view tenant, const GetStatsRequest& req,
                  GetStatsResponse* resp);
  Status TrainNow(std::string_view tenant, const TrainNowRequest& req,
                  TrainNowResponse* resp);
  Status DetectAnomalies(std::string_view tenant,
                         const DetectAnomaliesRequest& req,
                         DetectAnomaliesResponse* resp);

  // --- Replication surface -------------------------------------------
  // Peer-facing methods, enabled by FrontendConfig::replication_token
  // (Dispatch authenticates them against it; the typed forms here are
  // the trusted in-process surface like every other typed method).

  /// Primary side of one replication pull: topic catalog (empty
  /// req.topic) or a chunk of frames from the requested position, plus
  /// config/model when asked for. Serving pulls is role-independent —
  /// a follower can feed a downstream follower.
  Status ReplPull(const ReplPullRequest& req, ReplPullResponse* resp);

  /// Failover: flip to primary and force-seal every topic's replicated
  /// tail (post-promote writes start fresh segments; the sealed
  /// boundary is what a diverged old primary is compared against).
  /// Idempotent — promoting a primary is a no-op.
  Status Promote(PromoteResponse* resp);

  /// Flip to follower (write-shaped methods start rejecting). Does NOT
  /// attach the node to a primary — that is the embedding's move (start
  /// a Replicator); this only changes the role gate.
  Status Demote(DemoteResponse* resp);

  /// Current role. Followers serve reads and reject writes with
  /// Status::Unavailable carrying the primary hint.
  bool is_follower() const {
    return follower_.load(std::memory_order_relaxed);
  }

  /// Invoked (outside all frontend locks) whenever the role actually
  /// changes — Promote with `true → false`, Demote the reverse. The
  /// embedding uses it to stop/start its replication loop.
  void SetRoleChangeHook(std::function<void(bool is_follower)> hook);

  /// Swaps the wire authenticator's tenant→token table at runtime
  /// without disturbing established connections: requests already past
  /// authentication finish, the next request on any connection is
  /// checked against the NEW table (an old token is denied from then
  /// on). An empty map disables auth, mirroring construction.
  void UpdateTenantTokens(
      std::map<std::string, std::string, std::less<>> tokens);

  /// The underlying catalog — the trusted embedding surface the
  /// replication follower applies its stream through (no tenant
  /// scoping, no admission, no role gate). Never expose to a wire
  /// transport.
  LogService* service() { return &service_; }

  /// What a transport needs to know about a dispatch WITHOUT decoding
  /// the response it is about to forward: the outcome code and the
  /// admission backoff hint (so it can stop reading from a connection
  /// that is being rate-limited), plus the echoed request id.
  struct DispatchInfo {
    Status::Code code = Status::Code::kOk;
    uint64_t retry_after_us = 0;
    uint64_t request_id = 0;
  };

  /// Transport entry point: decodes one RequestEnvelope, authenticates
  /// (when configured), dispatches, and returns one encoded
  /// ResponseEnvelope with the request's `request_id` echoed. NEVER
  /// throws and never crashes on malformed bytes — every failure
  /// (framing, unknown method, unknown version, auth, admission
  /// denial, operation error) comes back as an encoded error response.
  std::string Dispatch(std::string_view request_bytes,
                       DispatchInfo* info = nullptr);

 private:
  /// Per-tenant admission state. Token levels may go negative when an
  /// oversized-but-admitted burst overdraws the bucket (a request
  /// larger than the bucket capacity is admitted only against a FULL
  /// bucket); the debt delays the next admission.
  struct TenantState {
    std::mutex mu;
    double byte_tokens = 0;
    double record_tokens = 0;
    uint64_t last_refill_us = 0;
    bool buckets_primed = false;
    uint32_t inflight_batches = 0;
    uint32_t topic_count = 0;
    /// Metering (satellite of the durability PR): every ingest-shaped
    /// request lands in exactly one side — admitted (reached the topic)
    /// or denied (rate limit / inflight cap). Monotone over the tenant's
    /// lifetime, read back through GetStats (wire TenantMeter).
    TenantMeter meter;
  };

  uint64_t NowUs() const;
  TenantState* Tenant(std::string_view tenant);
  /// Shared body of the two batch-ingest surfaces (typed owning call,
  /// zero-copy wire dispatch): in-flight slot, token-bucket admission,
  /// then `run` (which performs the actual topic call).
  Status IngestBatchGuarded(
      std::string_view tenant, uint64_t records, uint64_t bytes,
      const std::function<Result<std::vector<uint64_t>>()>& run,
      IngestBatchResponse* resp, uint64_t* retry_after_us);
  /// The Dispatch(kIngestBatch) fast path: batch texts stay views into
  /// the request buffer all the way to the append.
  Status IngestBatchViews(std::string_view tenant,
                          const IngestBatchRequestView& req,
                          IngestBatchResponse* resp,
                          uint64_t* retry_after_us);
  /// Refills and charges the tenant's token buckets for one ingest of
  /// `records`/`bytes`. On denial nothing is consumed and
  /// *retry_after_us says when the buckets will cover the request.
  Status AdmitIngest(TenantState* tenant, uint64_t records, uint64_t bytes,
                     uint64_t* retry_after_us);
  Result<std::shared_ptr<ManagedTopic>> ResolveTopic(std::string_view tenant,
                                                     std::string_view name);
  /// OK on a primary; Unavailable (with the primary hint) on a
  /// follower. Every write-shaped method checks it first.
  Status CheckWritable() const;
  /// Fires the role-change hook (if set) with the new role. Call with
  /// no frontend lock held.
  void NotifyRoleChange(bool is_follower);

  FrontendConfig config_;
  /// Effective wire authenticator: config_.authenticator, or a
  /// StaticTokenAuthenticator built from config_.tenant_tokens, or
  /// null (auth disabled). Guarded by auth_mu_ — UpdateTenantTokens
  /// swaps it at runtime; Dispatch copies the shared_ptr under the
  /// mutex and authenticates against the copy (in-flight requests keep
  /// the table they started with).
  std::shared_ptr<const Authenticator> auth_;
  mutable std::mutex auth_mu_;
  /// Current role; true = follower (write-shaped methods reject).
  std::atomic<bool> follower_{false};
  std::function<void(bool)> role_hook_;
  std::mutex role_hook_mu_;
  LogService service_;
  std::mutex tenants_mu_;
  std::map<std::string, std::unique_ptr<TenantState>, std::less<>> tenants_;
};

}  // namespace api
}  // namespace bytebrain
