// Evaluation metrics (paper §5.1.3).
//
// Grouping Accuracy (GA): the fraction of logs that are correctly
// grouped, where a log counts as correct only if the set of logs sharing
// its predicted group EXACTLY equals the set sharing its ground-truth
// template. This strict partition-equality definition prevents accuracy
// inflation from frequent easy patterns.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace bytebrain {

/// Strict grouping accuracy over two labelings of the same log sequence.
/// Labels are arbitrary ids; only the induced partitions matter.
/// Returns a value in [0, 1]; empty input scores 1.
double GroupingAccuracy(const std::vector<uint64_t>& predicted,
                        const std::vector<uint64_t>& ground_truth);

/// Convenience overload for 32-bit ground-truth labels.
double GroupingAccuracy(const std::vector<uint64_t>& predicted,
                        const std::vector<uint32_t>& ground_truth);

/// Summary of one (method, dataset) evaluation run.
struct RunResult {
  double grouping_accuracy = 0.0;
  double seconds = 0.0;
  size_t num_logs = 0;
  size_t num_groups = 0;  // distinct predicted groups

  double Throughput() const {
    return seconds > 0.0 ? static_cast<double>(num_logs) / seconds : 0.0;
  }
};

}  // namespace bytebrain
