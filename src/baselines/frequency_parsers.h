// Frequency-based baselines, one class per method:
//
//  * SLCT (Vaarandi, IPOM 2003): frequent (position, word) pairs above a
//    support threshold form cluster candidates; each log maps to the
//    candidate made of its frequent pairs, infrequent candidates are
//    outliers.
//  * LogCluster (Vaarandi & Podins, CNSM 2015 lineage; the toolkit
//    variant): a log's cluster key is its subsequence of frequent words
//    (position-independent support).
//  * LFA (Nagappan & Vouk, MSR 2010): per-log frequency analysis — split
//    the log's token-frequency distribution at the largest gap; tokens on
//    the high side are constants, the rest parameters.
//  * Logram (Dai et al., TSE 2020): tokens whose 3-grams (checked against
//    2-grams) are rare are variables; the constant skeleton is the key.
#pragma once

#include <string>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

class SlctParser : public LogParserInterface {
 public:
  explicit SlctParser(double support_fraction = 0.002)
      : support_fraction_(support_fraction) {}
  std::string name() const override { return "SLCT"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  double support_fraction_;
};

class LogClusterParser : public LogParserInterface {
 public:
  explicit LogClusterParser(double support_fraction = 0.002)
      : support_fraction_(support_fraction) {}
  std::string name() const override { return "LogCluster"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  double support_fraction_;
};

class LfaParser : public LogParserInterface {
 public:
  std::string name() const override { return "LFA"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;
};

class LogramParser : public LogParserInterface {
 public:
  explicit LogramParser(uint32_t three_gram_threshold = 2,
                        uint32_t two_gram_threshold = 2)
      : t3_(three_gram_threshold), t2_(two_gram_threshold) {}
  std::string name() const override { return "Logram"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  uint32_t t3_;
  uint32_t t2_;
};

}  // namespace bytebrain
