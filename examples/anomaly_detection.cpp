// Anomaly detection on parsed templates: the advanced analytics the
// paper's introduction motivates — detect count spikes and brand-new
// templates between two time windows, without any manual rules.
//
//   ./examples/anomaly_detection
#include <cstdio>
#include <string>

#include "service/log_service.h"

using namespace bytebrain;

namespace {

std::string NormalTraffic(int i) {
  switch (i % 3) {
    case 0:
      return "GET /api/v1/users/" + std::to_string(i % 50) + " status 200 in " +
             std::to_string(3 + i % 40) + "ms";
    case 1:
      return "POST /api/v1/orders status 201 in " + std::to_string(10 + i % 90) +
             "ms";
    default:
      return "health check ok from 10.1.0." + std::to_string(i % 8 + 1);
  }
}

}  // namespace

int main() {
  TopicConfig config;
  config.initial_train_records = 300;
  config.train_interval_records = 100000;
  ManagedTopic topic("api-gateway", config);

  // Window 1: healthy traffic.
  for (int i = 0; i < 600; ++i) {
    if (!topic.Ingest(NormalTraffic(i)).ok()) return 1;
  }
  const uint64_t incident_start = topic.size();

  // Window 2: an incident — 500s burst plus a brand-new timeout pattern.
  for (int i = 0; i < 600; ++i) {
    if (!topic.Ingest(NormalTraffic(i)).ok()) return 1;
    if (i % 2 == 0) {
      topic.Ingest("GET /api/v1/users/" + std::to_string(i % 50) +
                   " status 500 in " + std::to_string(900 + i) + "ms");
    }
    if (i % 5 == 0) {
      topic.Ingest("upstream timeout talking to billing-service after " +
                   std::to_string(5000 + i) + "ms");
    }
  }
  if (!topic.TrainNow().ok()) return 1;

  auto anomalies = topic.DetectAnomalies(
      0, incident_start, incident_start, topic.size(),
      /*min_change_ratio=*/2.0);
  if (!anomalies.ok()) {
    std::fprintf(stderr, "detection failed: %s\n",
                 anomalies.status().ToString().c_str());
    return 1;
  }

  std::printf("Detected %zu template anomalies between the two windows:\n\n",
              anomalies->size());
  for (const auto& a : anomalies.value()) {
    if (a.is_new) {
      std::printf("  [NEW TEMPLATE]  x%-6llu  %s\n",
                  static_cast<unsigned long long>(a.count_after),
                  a.template_text.c_str());
    } else {
      std::printf("  [COUNT %5.1fx]  %llu -> %llu  %s\n", a.change_ratio,
                  static_cast<unsigned long long>(a.count_before),
                  static_cast<unsigned long long>(a.count_after),
                  a.template_text.c_str());
    }
  }
  std::printf("\nNormal templates stayed quiet; the burst and the new "
              "pattern surfaced.\n");
  return 0;
}
