// Token encoding (paper §4.1.4).
//
// Tokens are mapped to 64-bit integers so clustering can compare tokens
// with integer equality instead of string comparison. ByteBrain uses a
// deterministic hash (no stored dictionary, offline/online consistent,
// embarrassingly parallel). The ordinal encoder — which assigns dense ids
// and must persist a token->id dictionary — is retained for the Fig. 9
// throughput ablation and the Fig. 10 storage-cost experiment.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/hashing.h"

namespace bytebrain {

enum class EncoderKind { kHash, kOrdinal };

/// Stateless hash encoder: Encode is pure and thread-safe.
class HashEncoder {
 public:
  uint64_t Encode(std::string_view token) const { return HashToken(token); }

  /// No dictionary is stored at all.
  uint64_t DictionaryBytes() const { return 0; }
};

/// Ordinal encoder: assigns consecutive ids in first-seen order and keeps
/// the full token dictionary. Requires serialized access (a mutex) which
/// also defeats parallel preprocessing — both costs the paper calls out.
class OrdinalEncoder {
 public:
  uint64_t Encode(std::string_view token) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dict_.find(token);
    if (it != dict_.end()) return it->second;
    const uint64_t id = dict_.size() + 1;
    bytes_ += token.size() + sizeof(uint64_t);
    dict_.emplace(std::string(token), id);
    return id;
  }

  /// Approximate serialized size of the token->id mapping: token bytes
  /// plus one 64-bit id per entry (what Fig. 10 plots).
  uint64_t DictionaryBytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return dict_.size();
  }

 private:
  // Transparent lookup so Encode(string_view) avoids a temporary string.
  struct SvHash {
    using is_transparent = void;
    size_t operator()(std::string_view s) const {
      return static_cast<size_t>(HashToken(s));
    }
  };
  struct SvEq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const {
      return a == b;
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, uint64_t, SvHash, SvEq> dict_;
  uint64_t bytes_ = 0;
};

}  // namespace bytebrain
