// Replicator — the follower half of primary/replica replication.
//
// A follower node runs a normal ServiceFrontend in follower mode
// (writes rejected with a redirect hint, reads served locally) plus one
// Replicator, which keeps the local topic catalog in lockstep with a
// primary by PULLING the replication stream over the existing envelope
// protocol (ApiMethod::kReplPull):
//
//   1. Enumerate: an empty-topic ReplPull returns the primary's topic
//      list. Missing topics are created locally with the primary's
//      shipped TopicConfig (re-rooted under `storage_root`); local
//      topics the primary no longer has are deleted.
//   2. Catch up: per topic, pull frame bytes addressed by
//      {segment_index, offset} — whole record frames in the ONE frame
//      format segments and the WAL share (logstore/frame_format.h) —
//      parse them with ParseFrame (per-frame checksum verified), and
//      append them locally with their shipped template ids (no
//      matching, no training: the model itself ships as a serialized
//      blob whenever the primary's model generation moves).
//   3. Seal in lockstep: when the primary reports a segment sealed and
//      the cursor reaches its data_len, the follower seals its own tail
//      at the same boundary and verifies record count + checksum
//      against the primary's manifest entry. Identical configs and
//      identical frame bytes make the segment files byte-identical; a
//      mismatch is a divergence — the local topic is dropped and
//      re-synced from {0, 0}.
//
// Resumability: the cursor is derived from the LOCAL topic's
// ReplicationPosition after every (re)open, so a follower crash or
// restart resumes from exactly what its own storage recovered — no
// replicator-side checkpoint to keep consistent.
//
// Lag: after each pull the follower computes bytes/records/segments
// behind from the primary's source totals minus its own position and
// publishes them into TopicStats (visible through GetStats on the
// follower, wire tags 33-35).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "api/frontend.h"
#include "api/messages.h"
#include "net/client.h"
#include "util/status.h"

namespace bytebrain {
namespace replication {

struct ReplicatorConfig {
  /// Primary endpoint (TCP path; ignored when `transport` is set).
  std::string primary_host = "127.0.0.1";
  uint16_t primary_port = 0;
  /// Peer token; must equal the primary's FrontendConfig
  /// replication_token or every pull is PermissionDenied.
  std::string replication_token;
  /// Local root for replicated topic storage; each topic lives in
  /// `<storage_root>/<sanitized topic name>`.
  std::string storage_root;
  /// Upper bound per pull (whole frames; at least one frame ships).
  uint64_t max_bytes_per_pull = 1ull << 20;
  /// Sleep between sync passes once caught up.
  uint64_t poll_interval_us = 20'000;
  /// Sleep after a transport / primary error before retrying.
  uint64_t retry_backoff_us = 50'000;
  /// Socket receive timeout for the TCP path.
  uint64_t recv_timeout_ms = 10'000;
  /// Test seam: when set, encoded request bytes go through this
  /// function instead of a TCP connection — wire two frontends together
  /// in process, or wrap a real transport to inject link faults. The
  /// returned string is the response frame payload.
  std::function<Result<std::string>(std::string_view)> transport;
  /// Test seam: mutate each replicated topic's StorageConfig before the
  /// local CreateTopic (FaultInjectingFileOps wiring).
  std::function<void(StorageConfig*)> storage_config_hook;
};

struct ReplicatorStats {
  uint64_t pulls = 0;            // kReplPull round trips issued
  uint64_t applied_records = 0;  // records appended locally
  uint64_t applied_bytes = 0;    // frame bytes appended locally
  uint64_t segments_sealed = 0;  // seal boundaries crossed + verified
  uint64_t transport_errors = 0;
  uint64_t divergences = 0;  // local topics dropped and re-synced
};

class Replicator {
 public:
  /// `follower` is the local node's frontend (not owned; must outlive
  /// the replicator). Topics are created/deleted through its trusted
  /// service() surface, bypassing the follower-mode write gate.
  Replicator(api::ServiceFrontend* follower, ReplicatorConfig config);
  ~Replicator();

  Replicator(const Replicator&) = delete;
  Replicator& operator=(const Replicator&) = delete;

  /// Starts the background sync loop. Idempotent.
  void Start();
  /// Stops the loop and joins the thread. Idempotent; also called by
  /// the destructor.
  void Stop();

  /// One full sync pass: enumerate, reconcile the catalog, pull every
  /// topic until caught up. Tests drive this directly for determinism;
  /// the background loop calls it repeatedly. Returns the first error
  /// encountered (the pass still visits the remaining topics).
  Status RunOnce();

  /// True when the most recent pass saw every topic caught up.
  bool caught_up() const;

  /// Polls until caught_up() (running RunOnce inline when the
  /// background loop is not started). DeadlineExceeded on timeout.
  Status WaitCaughtUp(uint64_t timeout_ms);

  ReplicatorStats stats() const;

 private:
  struct TopicCursor {
    uint64_t segment_index = 0;
    uint64_t offset = 0;
    /// Last model generation applied (UINT64_MAX = never; forces one
    /// model fetch on the first pull).
    uint64_t model_generation = UINT64_MAX;
  };

  /// Sends one typed request to the primary over the configured
  /// transport, with the replication token in the envelope.
  template <typename Request, typename Response>
  Status Call(api::ApiMethod method, const Request& req, Response* resp);
  Result<std::string> Roundtrip(std::string request_bytes);

  /// Syncs one topic to the primary's current position. `name` is the
  /// full catalog name ("tenant/topic").
  Status SyncTopic(const std::string& name, bool* topic_caught_up);
  /// Drops the local topic so the next pass re-syncs it from scratch.
  void Resync(const std::string& name);
  std::string LocalDir(const std::string& name) const;

  void Loop();

  api::ServiceFrontend* const follower_;
  const ReplicatorConfig config_;
  net::NetClient client_;
  uint64_t next_request_id_ = 1;
  std::map<std::string, TopicCursor> cursors_;

  mutable std::mutex stats_mu_;
  ReplicatorStats stats_;
  bool caught_up_ = false;

  std::thread thread_;
  std::atomic<bool> running_{false};
};

}  // namespace replication
}  // namespace bytebrain
