// Fig. 9: throughput ablations on the four largest datasets (BGL, HDFS,
// Spark, Thunderbird): w/o early stopping, w/o ensure-saturation-
// increase, w/o position importance, ordinal encoding, w/o balanced
// group, w/o variable saturation, w/o deduplication & related, plus the
// LILAC / UniParser reference points.
#include <functional>

#include "baselines/semantic_oracle.h"
#include "bench/bench_common.h"

using namespace bytebrain;

namespace {

struct Variant {
  const char* name;
  std::function<ByteBrainAdapterConfig()> make;
};

std::vector<Variant> Variants() {
  return {
      {"ByteBrain", [] { return ByteBrainDefaultConfig(); }},
      {"w/o early stopping",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.early_stop = false;
         return c;
       }},
      {"w/o ensure saturation increase",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.ensure_saturation_increase = false;
         return c;
       }},
      {"w/o position importance",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.use_position_importance = false;
         return c;
       }},
      {"ordinal encoding",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.preprocess.encoder = EncoderKind::kOrdinal;
         return c;
       }},
      {"w/o balanced group",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.balanced_grouping = false;
         return c;
       }},
      {"w/o variable in saturation",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.cluster.saturation.use_variable_term = false;
         return c;
       }},
      {"w/o dedup & related techs",
       [] {
         auto c = ByteBrainDefaultConfig();
         c.options.trainer.preprocess.deduplicate = false;
         c.options.trainer.cluster.balanced_grouping = false;
         c.options.trainer.cluster.early_stop = false;
         return c;
       }},
  };
}

}  // namespace

int main() {
  PrintBenchHeader("Fig. 9 — throughput ablation (large datasets)",
                   "paper Fig. 9");

  const char* panel[] = {"BGL", "HDFS", "Spark", "Thunderbird"};

  std::vector<std::string> headers = {"Variant"};
  std::vector<int> widths = {32};
  for (const char* name : panel) {
    headers.push_back(name);
    widths.push_back(12);
  }
  TablePrinter table(headers, widths);
  table.PrintHeader();

  for (const Variant& variant : Variants()) {
    std::vector<std::string> row = {variant.name};
    for (const char* name : panel) {
      Dataset ds = ScaledLogHub2(*FindDatasetSpec(name));
      ByteBrainAdapter adapter(variant.make());
      RunResult r = RunOn(&adapter, ds);
      row.push_back(TablePrinter::Sci(r.Throughput()));
    }
    table.PrintRow(row);
  }

  // Semantic reference points, as in the paper's figure (run on a
  // bounded prefix; their per-log cost is constant).
  for (auto config : {LilacConfig(), UniParserConfig()}) {
    std::vector<std::string> row = {config.display_name};
    for (const char* name : panel) {
      Dataset prefix = DatasetPrefix(ScaledLogHub2(*FindDatasetSpec(name)));
      SemanticOracleParser oracle(config, LabelsOf(prefix));
      RunResult r = RunOn(&oracle, prefix);
      row.push_back(TablePrinter::Sci(r.Throughput()));
    }
    table.PrintRow(row);
  }

  std::printf(
      "\nShape check (paper Fig. 9): 'w/o dedup & related techs' loses the\n"
      "most throughput (orders of magnitude on duplicate-heavy datasets);\n"
      "every variant still beats LILAC / UniParser.\n");
  return 0;
}
