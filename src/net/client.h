// NetClient — a blocking TCP client for the TcpServer wire format.
//
// One frame is [u32 length LE][payload] in both directions; the
// payload is a bytebrain::api envelope. The client offers three
// layers, lowest first:
//
//  * Raw frames: SendFrame / ReceiveFrame / Call(bytes) — for tests
//    that need to put hostile bytes on the wire.
//  * Pipelining: SendRequest(method, tenant, req) enqueues an encoded
//    request and returns its request_id; ReadResponse(resp, ...) reads
//    the next response in order. Keep several requests in flight on
//    one connection to hide round-trip latency (the server responds in
//    request order).
//  * Synchronous typed: Call(method, tenant, req, &resp) — one
//    request, one response, request_id echo verified.
//
// Request ids are assigned from a per-client counter (starting at 1,
// never 0 — 0 means "absent" on the wire). set_auth_token() attaches
// an envelope-v2 auth token to every subsequent typed request; leave
// it empty against an auth-disabled server.
//
// Not thread-safe: one NetClient per thread (open several connections
// for concurrency — that is the intended multiplexing model).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "api/messages.h"
#include "util/status.h"

namespace bytebrain {
namespace net {

class NetClient {
 public:
  NetClient() = default;
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;
  NetClient(NetClient&& other) noexcept { *this = std::move(other); }
  NetClient& operator=(NetClient&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
      auth_token_ = std::move(other.auth_token_);
      next_request_id_ = other.next_request_id_;
      max_frame_bytes_ = other.max_frame_bytes_;
    }
    return *this;
  }

  /// Connects (IPv4, blocking) with a receive timeout of
  /// `recv_timeout_ms` on the socket — a wedged server surfaces as
  /// IOError, not a hang.
  Status Connect(const std::string& host, uint16_t port,
                 uint64_t recv_timeout_ms = 30'000);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Token attached to every subsequent typed request (empty = none).
  void set_auth_token(std::string token) { auth_token_ = std::move(token); }

  // --- Raw frame layer -------------------------------------------------
  /// Writes bytes verbatim — NO length prefix. For tests that need to
  /// dribble partial frames or put hostile bytes on the wire.
  Status SendRaw(std::string_view bytes);
  Status SendFrame(std::string_view payload);
  /// Reads one length-prefixed frame. IOError on EOF/timeout; frames
  /// announcing more than `max_frame_bytes_` are refused (IOError)
  /// without allocating.
  Status ReceiveFrame(std::string* payload);
  /// SendFrame + ReceiveFrame.
  Result<std::string> Call(std::string_view request_bytes);

  // --- Pipelined typed layer -------------------------------------------
  /// Encodes and sends one request; returns the request_id assigned to
  /// it. Does not wait for the response.
  template <typename Request>
  Result<uint64_t> SendRequest(api::ApiMethod method, std::string_view tenant,
                               const Request& req) {
    const uint64_t id = next_request_id_++;
    const Status s =
        SendFrame(api::EncodeRequest(method, tenant, req, id, auth_token_));
    if (!s.ok()) return s;
    return id;
  }
  /// Reads the next response frame (responses arrive in request
  /// order), decodes it into `resp`, and reports the echoed
  /// request_id / retry hint when non-null. The returned Status is the
  /// SERVER's status for that request (transport failures are IOError).
  template <typename Response>
  Status ReadResponse(Response* resp, uint64_t* request_id = nullptr,
                      uint64_t* retry_after_us = nullptr) {
    std::string frame;
    const Status s = ReceiveFrame(&frame);
    if (!s.ok()) return s;
    return api::DecodeResponse(frame, resp, retry_after_us, request_id);
  }

  // --- Synchronous typed layer ------------------------------------------
  /// One round trip. Verifies the response echoes the request's id
  /// (a server echoing 0 — e.g. an error for undecodable framing — is
  /// tolerated; a DIFFERENT nonzero id is IOError, the stream is
  /// desynchronized).
  template <typename Request, typename Response>
  Status Call(api::ApiMethod method, std::string_view tenant,
              const Request& req, Response* resp,
              uint64_t* retry_after_us = nullptr) {
    auto sent = SendRequest(method, tenant, req);
    if (!sent.ok()) return sent.status();
    uint64_t echoed = 0;
    const Status s = ReadResponse(resp, &echoed, retry_after_us);
    if (s.IsIOError()) return s;
    if (echoed != 0 && echoed != sent.value()) {
      return Status::IOError("response stream desynchronized: sent id " +
                             std::to_string(sent.value()) + ", got " +
                             std::to_string(echoed));
    }
    return s;
  }

 private:
  Status WriteAll(const char* data, size_t len);
  Status ReadExact(char* data, size_t len);

  int fd_ = -1;
  std::string auth_token_;
  uint64_t next_request_id_ = 1;
  size_t max_frame_bytes_ = 64ull << 20;
};

}  // namespace net
}  // namespace bytebrain
