#include "baselines/shiso_molfi.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_map>

#include "util/rng.h"

namespace bytebrain {

// ---------------------------------------------------------------------------
// SHISO
// ---------------------------------------------------------------------------

namespace {

// Character-class vector of a token: counts of [lower, upper, digit, other].
std::array<double, 4> CharClassVector(std::string_view token) {
  std::array<double, 4> v{0, 0, 0, 0};
  for (char c : token) {
    if (c >= 'a' && c <= 'z') {
      v[0] += 1;
    } else if (c >= 'A' && c <= 'Z') {
      v[1] += 1;
    } else if (c >= '0' && c <= '9') {
      v[2] += 1;
    } else {
      v[3] += 1;
    }
  }
  double norm = 0.0;
  for (double x : v) norm += x * x;
  norm = std::sqrt(norm);
  if (norm > 0) {
    for (double& x : v) x /= norm;
  }
  return v;
}

// SHISO word distance: 0 for equal words, else half the Euclidean
// distance of the char-class vectors (in [0, 1]). Wildcard positions
// carry a small residual cost so heavily-generalized formats do not
// become universal attractors that swallow every log of their length.
double WordDistance(const std::string& a, const std::string& b) {
  if (a == b) return 0.0;
  if (a == kBaselineWildcard || b == kBaselineWildcard) return 0.25;
  const auto va = CharClassVector(a);
  const auto vb = CharClassVector(b);
  double d = 0.0;
  for (size_t i = 0; i < 4; ++i) d += (va[i] - vb[i]) * (va[i] - vb[i]);
  return std::sqrt(d) / 2.0;
}

double FormatDistance(const std::vector<std::string>& format,
                      const std::vector<std::string>& tokens) {
  if (format.size() != tokens.size()) return 1.0;
  if (format.empty()) return 0.0;
  double sum = 0.0;
  for (size_t i = 0; i < format.size(); ++i) {
    sum += WordDistance(format[i], tokens[i]);
  }
  return sum / static_cast<double>(format.size());
}

}  // namespace

std::vector<uint64_t> ShisoParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);
  for (size_t li = 0; li < token_lists.size(); ++li) {
    const auto& tokens = token_lists[li];
    std::vector<std::unique_ptr<Node>>* level = &roots_;
    Node* chosen = nullptr;
    // Descend: at each level pick the closest node; merge if close
    // enough, else insert here (when space) or continue into the closest
    // child's subtree.
    while (true) {
      Node* best = nullptr;
      double best_dist = 2.0;
      for (auto& node : *level) {
        const double d = FormatDistance(node->format, tokens);
        if (d < best_dist) {
          best_dist = d;
          best = node.get();
        }
      }
      if (best != nullptr && best_dist <= merge_threshold_) {
        // Merge: wildcard mismatching positions.
        for (size_t p = 0; p < tokens.size(); ++p) {
          if (best->format[p] != tokens[p]) {
            best->format[p] = std::string(kBaselineWildcard);
          }
        }
        chosen = best;
        break;
      }
      if (static_cast<int>(level->size()) < max_children_) {
        auto node = std::make_unique<Node>();
        node->format = tokens;
        node->id = next_id_++;
        chosen = node.get();
        level->push_back(std::move(node));
        break;
      }
      // No space: descend into the closest subtree.
      level = &best->children;
    }
    out[li] = chosen->id;
  }
  return out;
}

// ---------------------------------------------------------------------------
// MoLFI (simplified evolutionary search)
// ---------------------------------------------------------------------------

namespace {

struct Chromosome {
  // One wildcard mask per template; a mask bit set = position is "*".
  std::vector<uint64_t> masks;
};

}  // namespace

std::vector<uint64_t> MolfiParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  const size_t n = token_lists.size();
  std::vector<uint64_t> out(n, 0);
  Rng rng(seed_);

  // Group by token count; search templates independently per group.
  std::unordered_map<size_t, std::vector<uint32_t>> by_len;
  for (uint32_t i = 0; i < n; ++i) by_len[token_lists[i].size()].push_back(i);

  uint64_t base_id = 1;
  for (auto& [len, members] : by_len) {
    if (len == 0 || len > 63 || members.size() == 1) {
      for (uint32_t m : members) out[m] = base_id;
      ++base_id;
      continue;
    }

    // Fitness of a mask over the group: (coverage entropy proxy,
    // specificity). We score a mask by grouping members under it and
    // combining "few groups" (generality) with "many constant positions"
    // (specificity) — the two MoLFI objectives scalarized. Fitness is
    // estimated on a bounded sample so large groups stay tractable.
    const size_t sample_size = std::min<size_t>(members.size(), 2000);
    const std::vector<uint32_t> sample(members.begin(),
                                       members.begin() + sample_size);
    auto evaluate = [&](uint64_t mask) {
      std::unordered_map<std::string, uint32_t> groups;
      for (uint32_t m : sample) {
        std::string key;
        for (size_t p = 0; p < len; ++p) {
          if (mask & (1ULL << p)) {
            key += '*';
          } else {
            key += token_lists[m][p];
          }
          key += '\x1f';
        }
        groups[key]++;
      }
      const double generality =
          1.0 - static_cast<double>(groups.size()) /
                    static_cast<double>(sample.size());
      const double specificity =
          1.0 - static_cast<double>(__builtin_popcountll(mask)) /
                    static_cast<double>(len);
      return 0.5 * generality + 0.5 * specificity;
    };

    // Initial population: random masks plus the frequency-derived one.
    std::vector<uint64_t> population;
    for (int p = 0; p < population_; ++p) {
      uint64_t mask = 0;
      for (size_t b = 0; b < len; ++b) {
        if (rng.NextBelow(3) == 0) mask |= 1ULL << b;
      }
      population.push_back(mask);
    }

    // Evolve: mutate, keep the best.
    uint64_t best_mask = population[0];
    double best_fit = evaluate(best_mask);
    for (int gen = 0; gen < generations_; ++gen) {
      for (uint64_t& mask : population) {
        uint64_t mutated = mask ^ (1ULL << rng.NextBelow(len));
        const double fit = evaluate(mutated);
        if (fit >= evaluate(mask)) mask = mutated;
        if (fit > best_fit) {
          best_fit = fit;
          best_mask = mutated;
        }
      }
    }

    // Final grouping under the best mask.
    std::unordered_map<std::string, uint64_t> ids;
    for (uint32_t m : members) {
      std::string key;
      for (size_t p = 0; p < len; ++p) {
        if (best_mask & (1ULL << p)) {
          key += '*';
        } else {
          key += token_lists[m][p];
        }
        key += '\x1f';
      }
      auto [it, inserted] = ids.emplace(std::move(key), base_id);
      if (inserted) ++base_id;
      out[m] = it->second;
    }
  }
  return out;
}

}  // namespace bytebrain
