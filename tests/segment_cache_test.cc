// SegmentCache battery: LRU eviction keeps unpinned residency under the
// byte budget, pinned mappings survive eviction pressure (training
// snapshots and scans stay byte-correct while OTHER topics churn the
// cache), per-owner stats feed truthful TopicStats, and the whole
// pin/evict protocol is exercised under concurrent scans + eviction +
// a training snapshot (run under TSAN in CI).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "logstore/disk_backend.h"
#include "logstore/segment_cache.h"
#include "service/log_service.h"

namespace bytebrain {
namespace {

class TempDir {
 public:
  TempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("bb_segcache_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StorageConfig DiskConfig(const std::string& dir, uint64_t segment_bytes,
                         SegmentCache* cache) {
  StorageConfig cfg;
  cfg.kind = StorageConfig::Kind::kSegmentedDisk;
  cfg.directory = dir;
  cfg.segment_data_bytes = segment_bytes;
  cfg.segment_cache = cache;
  return cfg;
}

std::string TextFor(uint64_t seq) {
  return "record-" + std::to_string(seq) + std::string(seq % 13, 'y');
}

// Appends kRecords records; with the segment size below each backend
// ends up with several sealed segments (and registers them with the
// shared cache without mapping them).
constexpr uint64_t kRecords = 400;

std::unique_ptr<SegmentedDiskBackend> MakeBackend(const std::string& dir,
                                                  SegmentCache* cache) {
  auto backend =
      std::make_unique<SegmentedDiskBackend>(DiskConfig(dir, 2048, cache));
  EXPECT_TRUE(backend->Open().ok());
  for (uint64_t seq = 0; seq < kRecords; ++seq) {
    EXPECT_TRUE(backend->Append({seq, TextFor(seq), seq % 3}).ok());
  }
  EXPECT_GE(backend->sealed_segment_count(), 4u);
  return backend;
}

TEST(SegmentCacheTest, EvictsDownToBudgetAndCounts) {
  TempDir dir;
  SegmentCache cache(/*budget_bytes=*/4096);  // ~2 segments resident
  auto backend = MakeBackend(dir.path(), &cache);

  // Seals register without mapping: nothing resident yet.
  EXPECT_EQ(cache.totals().resident_bytes, 0u);
  EXPECT_EQ(backend->mapped_bytes(), 0u);

  // A full scan walks every segment; with only ~2 segments' budget the
  // LRU must evict along the way, and once the scan's transient pins
  // are gone residency settles at/below the budget.
  uint64_t seen = 0;
  ASSERT_TRUE(backend
                  ->Scan(0, kRecords,
                         [&](uint64_t seq, const LogRecord& rec) {
                           EXPECT_EQ(rec.text, TextFor(seq));
                           ++seen;
                         })
                  .ok());
  EXPECT_EQ(seen, kRecords);
  const SegmentCache::Totals totals = cache.totals();
  EXPECT_GT(totals.misses, 0u);
  EXPECT_GT(totals.evictions, 0u);
  EXPECT_LE(totals.resident_bytes, 4096u);
  EXPECT_EQ(backend->mapped_bytes(), totals.resident_bytes);

  // The first segment was evicted long ago (LRU): reading it again is
  // a miss that transparently re-maps.
  const uint64_t misses_before = cache.totals().misses;
  LogRecord rec;
  ASSERT_TRUE(backend->Read(0, &rec).ok());
  EXPECT_EQ(rec.text, TextFor(0));
  EXPECT_GT(cache.totals().misses, misses_before);
}

TEST(SegmentCacheTest, PinnedViewSurvivesEvictionPressureFromOtherOwner) {
  TempDir dir;
  SegmentCache cache(/*budget_bytes=*/4096);
  auto victim = MakeBackend(dir.path() + "/victim", &cache);
  auto churner = MakeBackend(dir.path() + "/churner", &cache);

  // The view pins victim's segments as it reads them; the string_views
  // collected here must stay valid for the view's lifetime even while
  // the churner blows through the budget.
  auto view = victim->SnapshotSealed();
  ASSERT_NE(view, nullptr);
  std::vector<std::pair<uint64_t, std::string_view>> texts;
  ASSERT_TRUE(view->ScanTexts(0, view->end_seq(),
                              [&](uint64_t seq, std::string_view text) {
                                texts.emplace_back(seq, text);
                              })
                  .ok());
  ASSERT_GT(texts.size(), 100u);

  for (int round = 0; round < 3; ++round) {
    uint64_t n = 0;
    ASSERT_TRUE(churner
                    ->Scan(0, kRecords,
                           [&n](uint64_t, const LogRecord&) { ++n; })
                    .ok());
    ASSERT_EQ(n, kRecords);
  }
  EXPECT_GT(cache.totals().evictions, 0u);

  // Pinned bytes are exempt from eviction: every collected string_view
  // still reads back byte-identical.
  for (const auto& [seq, text] : texts) {
    EXPECT_EQ(text, TextFor(seq)) << seq;
  }
  // Dropping the view releases its pins; the cache settles under
  // budget again once the next acquisition runs eviction.
  view.reset();
  uint64_t n = 0;
  ASSERT_TRUE(
      churner->Scan(0, 10, [&n](uint64_t, const LogRecord&) { ++n; }).ok());
  EXPECT_LE(cache.totals().resident_bytes, 4096u + 2048u);
}

TEST(SegmentCacheTest, ShrinkingBudgetEvictsResidentSegments) {
  TempDir dir;
  SegmentCache cache;  // default budget: everything fits
  auto backend = MakeBackend(dir.path(), &cache);
  uint64_t n = 0;
  ASSERT_TRUE(
      backend->Scan(0, kRecords, [&n](uint64_t, const LogRecord&) { ++n; })
          .ok());
  ASSERT_GT(cache.totals().resident_bytes, 4096u);
  cache.set_budget_bytes(4096);
  EXPECT_LE(cache.totals().resident_bytes, 4096u);
  EXPECT_GT(cache.totals().evictions, 0u);
  // Reads still work after the shrink (remap on demand).
  LogRecord rec;
  ASSERT_TRUE(backend->Read(1, &rec).ok());
  EXPECT_EQ(rec.text, TextFor(1));
}

// Multi-topic workload under a budget smaller than total sealed bytes,
// with concurrent queries and a training-style snapshot scan: the TSAN
// target for the pin/evict protocol.
TEST(SegmentCacheTest, ConcurrentScansAndSnapshotsUnderEviction) {
  TempDir dir;
  SegmentCache cache(/*budget_bytes=*/6144);
  auto a = MakeBackend(dir.path() + "/a", &cache);
  auto b = MakeBackend(dir.path() + "/b", &cache);

  std::atomic<bool> failed{false};
  auto scan_loop = [&](SegmentedDiskBackend* backend) {
    for (int round = 0; round < 8; ++round) {
      uint64_t expect = 0;
      const Status s =
          backend->Scan(0, kRecords, [&](uint64_t seq, const LogRecord& rec) {
            if (seq != expect || rec.text != TextFor(seq)) failed = true;
            ++expect;
          });
      if (!s.ok() || expect != kRecords) failed = true;
    }
  };
  // Snapshot like the training thread: take the view, then read sealed
  // texts with no topic involvement while scans churn the cache.
  auto snapshot_loop = [&](SegmentedDiskBackend* backend) {
    for (int round = 0; round < 8; ++round) {
      auto view = backend->SnapshotSealed();
      if (view == nullptr) {
        failed = true;
        return;
      }
      uint64_t n = 0;
      const Status s =
          view->ScanTexts(0, view->end_seq(),
                          [&](uint64_t seq, std::string_view text) {
                            if (text != TextFor(seq)) failed = true;
                            ++n;
                          });
      if (!s.ok() || n != view->end_seq()) failed = true;
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(scan_loop, a.get());
  threads.emplace_back(scan_loop, b.get());
  threads.emplace_back(snapshot_loop, a.get());
  threads.emplace_back(snapshot_loop, b.get());
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed);
  EXPECT_GT(cache.totals().evictions, 0u);
  // With all pins released, the steady state respects the budget.
  LogRecord rec;
  ASSERT_TRUE(a->Read(0, &rec).ok());
  EXPECT_LE(cache.totals().resident_bytes, 6144u + 2048u);
}

// Truthful stats end to end: TopicStats reports resident (not total)
// bytes plus the cache counters, and the wire GetStatsResponse carries
// them through encode/decode (append-only tags 28-32).
TEST(SegmentCacheTest, TopicStatsAndWireRoundTripCarryCacheCounters) {
  TopicStats stats;
  stats.storage_mapped_bytes = 111;
  stats.storage_cache_hits = 7;
  stats.storage_cache_misses = 5;
  stats.storage_cache_evictions = 3;
  stats.storage_index_rebuilds = 2;
  stats.storage_scan_record_visits = 999;

  api::GetStatsResponse resp;
  resp.stats = stats;
  std::string bytes;
  resp.EncodeTo(&bytes);
  api::GetStatsResponse decoded;
  ASSERT_TRUE(decoded.DecodeFrom(bytes).ok());
  EXPECT_EQ(decoded.stats.storage_mapped_bytes, 111u);
  EXPECT_EQ(decoded.stats.storage_cache_hits, 7u);
  EXPECT_EQ(decoded.stats.storage_cache_misses, 5u);
  EXPECT_EQ(decoded.stats.storage_cache_evictions, 3u);
  EXPECT_EQ(decoded.stats.storage_index_rebuilds, 2u);
  EXPECT_EQ(decoded.stats.storage_scan_record_visits, 999u);
}

TEST(SegmentCacheTest, TopicStatsReportResidentBytesNotFileBytes) {
  TempDir dir;
  SegmentCache cache(/*budget_bytes=*/4096);
  TopicConfig config;
  config.storage = DiskConfig(dir.path(), 2048, &cache);
  config.async_training = false;
  config.initial_train_records = 1000000;  // no training needed here
  config.train_interval_records = 1000000;
  config.train_volume_bytes = 1ull << 40;
  ManagedTopic topic("stats", config);
  for (uint64_t seq = 0; seq < kRecords; ++seq) {
    ASSERT_TRUE(topic.Ingest(TextFor(seq)).ok());
  }
  TopicStats before = topic.stats();
  ASSERT_GE(before.storage_sealed_segments, 4u);
  // Sealing maps nothing: resident bytes start at zero even though the
  // sealed files hold far more than the budget.
  EXPECT_EQ(before.storage_mapped_bytes, 0u);

  // A full-window query with sequence collection walks every segment
  // through the cache; stats must show the traffic and a residency at
  // or under the budget — not the sum of sealed file sizes.
  auto groups = topic.Query(0.6, 0, topic.size(), true);
  ASSERT_TRUE(groups.ok());
  TopicStats after = topic.stats();
  EXPECT_GT(after.storage_cache_misses, 0u);
  EXPECT_GT(after.storage_cache_evictions, 0u);
  EXPECT_LE(after.storage_mapped_bytes, 4096u + 2048u);
  EXPECT_GT(after.storage_mapped_bytes, 0u);
}

}  // namespace
}  // namespace bytebrain
