#include "core/preprocess.h"

#include <unordered_map>

#include "core/tokenizer.h"
#include "threading/thread_pool.h"
#include "util/hashing.h"

namespace bytebrain {

namespace {

// Per-shard dedup state: distinct logs found in one input shard. Shards
// dedup locally while tokenizing (so token TEXTS are materialized only
// once per distinct log — the dominant allocation cost), then the shards
// are merged sequentially.
struct ShardResult {
  std::vector<EncodedLog> logs;
  std::unordered_map<uint64_t, std::vector<uint32_t>> index;  // key -> slots
  std::vector<uint64_t> keys;  // dedup key per distinct slot
};

void ProcessShard(const std::vector<std::string_view>& raw_logs, size_t begin,
                  size_t end, const VariableReplacer& replacer,
                  OrdinalEncoder* ordinal, bool deduplicate,
                  ShardResult* shard) {
  std::string scratch;
  std::vector<std::string_view> views;
  std::vector<uint64_t> encoded;
  for (size_t i = begin; i < end; ++i) {
    replacer.ReplaceInto(raw_logs[i], &scratch);
    views.clear();
    TokenizeDefaultInto(scratch, &views);
    encoded.clear();
    encoded.reserve(views.size());
    for (std::string_view tok : views) {
      encoded.push_back(ordinal != nullptr ? ordinal->Encode(tok)
                                           : HashToken(tok));
    }
    const uint64_t key = HashTokenSequence(encoded.begin(), encoded.end());

    if (deduplicate) {
      auto& bucket = shard->index[key];
      bool merged = false;
      for (uint32_t slot : bucket) {
        if (shard->logs[slot].tokens == encoded) {
          shard->logs[slot].count++;
          shard->logs[slot].source_ids.push_back(static_cast<uint32_t>(i));
          merged = true;
          break;
        }
      }
      if (merged) continue;
      bucket.push_back(static_cast<uint32_t>(shard->logs.size()));
    }
    EncodedLog log;
    log.tokens = encoded;
    log.token_texts.reserve(views.size());
    for (std::string_view tok : views) log.token_texts.emplace_back(tok);
    log.count = 1;
    log.source_ids.push_back(static_cast<uint32_t>(i));
    shard->keys.push_back(key);
    shard->logs.push_back(std::move(log));
  }
}

}  // namespace

PreprocessResult Preprocess(const std::vector<std::string>& raw_logs,
                            const VariableReplacer& replacer,
                            const PreprocessOptions& options) {
  return Preprocess(
      std::vector<std::string_view>(raw_logs.begin(), raw_logs.end()),
      replacer, options);
}

PreprocessResult Preprocess(const std::vector<std::string_view>& raw_logs,
                            const VariableReplacer& replacer,
                            const PreprocessOptions& options) {
  PreprocessResult result;
  result.total_logs = raw_logs.size();
  if (raw_logs.empty()) return result;

  OrdinalEncoder ordinal;
  OrdinalEncoder* ordinal_ptr =
      options.encoder == EncoderKind::kOrdinal ? &ordinal : nullptr;

  // Phase 1: tokenize + encode + shard-local dedup, parallel across
  // shards. The ordinal encoder serializes internally (its documented
  // cost); the hash encoder is embarrassingly parallel.
  const size_t threads = std::min<size_t>(
      std::max<size_t>(1, static_cast<size_t>(options.num_threads)),
      std::max<size_t>(1, raw_logs.size()));
  std::vector<ShardResult> shards(threads);
  std::vector<std::pair<size_t, size_t>> ranges;
  const size_t base = raw_logs.size() / threads;
  const size_t extra = raw_logs.size() % threads;
  for (size_t t = 0, begin = 0; t < threads; ++t) {
    const size_t len = base + (t < extra ? 1 : 0);
    ranges.push_back({begin, begin + len});
    begin += len;
  }
  ParallelFor(ranges.size(), threads, [&](size_t t) {
    ProcessShard(raw_logs, ranges[t].first, ranges[t].second, replacer,
                 ordinal_ptr, options.deduplicate, &shards[t]);
  });

  // Phase 2: merge shards (cheap: only distinct logs cross this point).
  if (threads == 1) {
    result.logs = std::move(shards[0].logs);
  } else if (options.deduplicate) {
    std::unordered_map<uint64_t, std::vector<uint32_t>> index;
    for (ShardResult& shard : shards) {
      for (size_t s = 0; s < shard.logs.size(); ++s) {
        EncodedLog& log = shard.logs[s];
        auto& bucket = index[shard.keys[s]];
        bool merged = false;
        for (uint32_t slot : bucket) {
          if (result.logs[slot].tokens == log.tokens) {
            result.logs[slot].count += log.count;
            auto& ids = result.logs[slot].source_ids;
            ids.insert(ids.end(), log.source_ids.begin(),
                       log.source_ids.end());
            merged = true;
            break;
          }
        }
        if (!merged) {
          bucket.push_back(static_cast<uint32_t>(result.logs.size()));
          result.logs.push_back(std::move(log));
        }
      }
    }
  } else {
    for (ShardResult& shard : shards) {
      for (EncodedLog& log : shard.logs) {
        result.logs.push_back(std::move(log));
      }
    }
  }

  result.dictionary_bytes = ordinal.DictionaryBytes();
  return result;
}

}  // namespace bytebrain
