#include "baselines/iplom.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace bytebrain {

namespace {

struct Partition {
  std::vector<uint32_t> members;
  int stage = 1;  // next split stage to apply (2 or 3); 4 = done
};

// Distinct token count at `pos` over the members.
size_t DistinctAt(const std::vector<std::vector<std::string>>& tokens,
                  const std::vector<uint32_t>& members, size_t pos) {
  std::unordered_set<std::string_view> seen;
  for (uint32_t m : members) seen.insert(tokens[m][pos]);
  return seen.size();
}

double ConstantRatio(const std::vector<std::vector<std::string>>& tokens,
                     const std::vector<uint32_t>& members) {
  if (members.empty()) return 1.0;
  const size_t len = tokens[members[0]].size();
  if (len == 0) return 1.0;
  size_t constants = 0;
  for (size_t p = 0; p < len; ++p) {
    if (DistinctAt(tokens, members, p) == 1) ++constants;
  }
  return static_cast<double>(constants) / static_cast<double>(len);
}

}  // namespace

std::vector<uint64_t> IplomParser::Parse(const std::vector<std::string>& logs) {
  auto tokens = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);

  // Stage 1: partition by token count.
  std::unordered_map<size_t, Partition> by_len;
  for (uint32_t i = 0; i < tokens.size(); ++i) {
    auto& p = by_len[tokens[i].size()];
    p.members.push_back(i);
    p.stage = 2;
  }

  std::vector<Partition> work;
  work.reserve(by_len.size());
  for (auto& [len, p] : by_len) work.push_back(std::move(p));

  uint64_t next_id = 1;
  auto finalize = [&](const Partition& p) {
    const uint64_t id = next_id++;
    for (uint32_t m : p.members) out[m] = id;
  };

  while (!work.empty()) {
    Partition part = std::move(work.back());
    work.pop_back();
    if (part.members.empty()) continue;
    const size_t len = tokens[part.members[0]].size();
    if (len == 0 || part.stage >= 4 ||
        part.members.size() <=
            static_cast<size_t>(options_.partition_support) ||
        ConstantRatio(tokens, part.members) >= options_.cluster_goodness) {
      finalize(part);
      continue;
    }

    if (part.stage == 2) {
      // Split by the position with the fewest (>1) distinct tokens.
      size_t best_pos = len;
      size_t best_distinct = SIZE_MAX;
      for (size_t p = 0; p < len; ++p) {
        const size_t d = DistinctAt(tokens, part.members, p);
        if (d > 1 && d < best_distinct) {
          best_distinct = d;
          best_pos = p;
        }
      }
      if (best_pos == len ||
          best_distinct > part.members.size() / 2) {
        // No useful position (all constant or near-unique values).
        finalize(part);
        continue;
      }
      std::unordered_map<std::string_view, Partition> split;
      for (uint32_t m : part.members) {
        auto& child = split[tokens[m][best_pos]];
        child.members.push_back(m);
        child.stage = 3;
      }
      for (auto& [tok, child] : split) work.push_back(std::move(child));
      continue;
    }

    // Stage 3 (simplified bijection search): take the two unresolved
    // positions with the lowest cardinality; if their value pairs are a
    // near-bijection (pair count close to the max side), split on pairs.
    std::vector<std::pair<size_t, size_t>> cards;  // (distinct, pos)
    for (size_t p = 0; p < len; ++p) {
      const size_t d = DistinctAt(tokens, part.members, p);
      if (d > 1) cards.push_back({d, p});
    }
    std::sort(cards.begin(), cards.end());
    if (cards.size() < 2) {
      finalize(part);
      continue;
    }
    const size_t p1 = cards[0].second;
    const size_t p2 = cards[1].second;
    std::unordered_set<std::string> pairs;
    for (uint32_t m : part.members) {
      pairs.insert(std::string(tokens[m][p1]) + '\x1f' +
                   std::string(tokens[m][p2]));
    }
    const size_t max_side = std::max(cards[0].first, cards[1].first);
    if (pairs.size() <= max_side + max_side / 4 &&
        pairs.size() < part.members.size() / 2) {
      std::unordered_map<std::string, Partition> split;
      for (uint32_t m : part.members) {
        auto& child = split[std::string(tokens[m][p1]) + '\x1f' +
                            std::string(tokens[m][p2])];
        child.members.push_back(m);
        child.stage = 4;
      }
      for (auto& [k, child] : split) work.push_back(std::move(child));
    } else {
      finalize(part);
    }
  }
  return out;
}

}  // namespace bytebrain
