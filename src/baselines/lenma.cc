#include "baselines/lenma.h"

#include <cmath>

namespace bytebrain {

namespace {

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<size_t>& b) {
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * static_cast<double>(b[i]);
    na += a[i] * a[i];
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  const double denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0 ? dot / denom : 0.0;
}

}  // namespace

std::vector<uint64_t> LenmaParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);
  std::vector<size_t> lengths;
  for (size_t li = 0; li < token_lists.size(); ++li) {
    const auto& tokens = token_lists[li];
    lengths.clear();
    lengths.reserve(tokens.size());
    for (const auto& t : tokens) lengths.push_back(t.size());

    auto& bucket = buckets_[tokens.size()];
    Cluster* best = nullptr;
    double best_sim = 0.0;
    for (Cluster& c : bucket) {
      const double sim = CosineSimilarity(c.lengths, lengths);
      if (sim > best_sim) {
        best_sim = sim;
        best = &c;
      }
    }
    if (best != nullptr && best_sim >= threshold_) {
      // Join: update running mean lengths and wildcard mismatches.
      const double w = static_cast<double>(best->count);
      for (size_t i = 0; i < lengths.size(); ++i) {
        best->lengths[i] =
            (best->lengths[i] * w + static_cast<double>(lengths[i])) /
            (w + 1.0);
        if (best->tokens[i] != tokens[i]) {
          best->tokens[i] = std::string(kBaselineWildcard);
        }
      }
      ++best->count;
      out[li] = best->id;
    } else {
      Cluster c;
      c.lengths.assign(lengths.begin(), lengths.end());
      c.tokens = tokens;
      c.id = next_id_++;
      c.count = 1;
      bucket.push_back(std::move(c));
      out[li] = bucket.back().id;
    }
  }
  return out;
}

}  // namespace bytebrain
