#include "eval/runner.h"

#include <cstdio>
#include <unordered_set>

#include "util/timer.h"

namespace bytebrain {

RunResult RunOn(LogParserInterface* parser, const Dataset& dataset) {
  std::vector<std::string> logs;
  logs.reserve(dataset.logs.size());
  std::vector<uint32_t> gt;
  gt.reserve(dataset.logs.size());
  for (const auto& l : dataset.logs) {
    logs.push_back(l.text);
    gt.push_back(l.gt_template);
  }

  Timer timer;
  std::vector<uint64_t> predicted = parser->Parse(logs);
  RunResult result;
  result.seconds = timer.ElapsedSeconds();
  result.num_logs = logs.size();
  result.grouping_accuracy = GroupingAccuracy(predicted, gt);
  std::unordered_set<uint64_t> distinct(predicted.begin(), predicted.end());
  result.num_groups = distinct.size();
  return result;
}

TablePrinter::TablePrinter(std::vector<std::string> headers,
                           std::vector<int> widths)
    : headers_(std::move(headers)), widths_(std::move(widths)) {}

void TablePrinter::PrintHeader() const {
  for (size_t i = 0; i < headers_.size(); ++i) {
    std::printf("%-*s", widths_[i], headers_[i].c_str());
  }
  std::printf("\n");
  int total = 0;
  for (int w : widths_) total += w;
  for (int i = 0; i < total; ++i) std::printf("-");
  std::printf("\n");
}

void TablePrinter::PrintRow(const std::vector<std::string>& cells) const {
  for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
    std::printf("%-*s", widths_[i], cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::Sci(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2e", v);
  return buf;
}

}  // namespace bytebrain
