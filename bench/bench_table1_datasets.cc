// Table 1: dataset statistics. Generates the LogHub and (scaled)
// LogHub-2.0 stand-in corpora and prints their statistics next to the
// paper's published numbers.
#include "bench/bench_common.h"
#include "util/string_util.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Table 1 — LogHub / LogHub-2.0 dataset statistics",
                   "paper Table 1 (synthetic stand-ins; see DESIGN.md)");

  TablePrinter table({"Dataset", "LH #Logs", "LH Size", "LH #Tmpl",
                      "LH2 #Logs(gen)", "LH2 Size(gen)", "LH2 #Tmpl",
                      "LH2 #Logs(paper)"},
                     {13, 10, 12, 10, 16, 14, 11, 17});
  table.PrintHeader();

  for (const DatasetSpec& spec : AllDatasetSpecs()) {
    DatasetGenerator generator(spec);
    Dataset loghub = generator.GenerateLogHub();
    std::string lh2_logs = "-";
    std::string lh2_size = "-";
    std::string lh2_templates = "-";
    std::string lh2_paper = "-";
    if (spec.loghub2_logs > 0) {
      Dataset lh2 = ScaledLogHub2(spec);
      lh2_logs = FormatCount(lh2.logs.size());
      lh2_size = FormatBytes(lh2.TextBytes());
      lh2_templates = std::to_string(lh2.num_templates);
      lh2_paper = FormatCount(spec.loghub2_logs);
    }
    table.PrintRow({spec.name, FormatCount(loghub.logs.size()),
                    FormatBytes(loghub.TextBytes()),
                    std::to_string(loghub.num_templates), lh2_logs, lh2_size,
                    lh2_templates, lh2_paper});
  }
  std::printf(
      "\nLogHub corpora match the paper's 2000 logs/dataset and template\n"
      "counts exactly; LogHub-2.0 stand-ins keep the template counts and\n"
      "scale the log counts (full sizes via BB_BENCH_FULL=1).\n");
  return 0;
}
