// Tests for the evaluation harness: the ByteBrain adapter configurations
// and the thresholded grouping it reports.
#include <gtest/gtest.h>

#include "datagen/generator.h"
#include "eval/bytebrain_adapter.h"
#include "eval/runner.h"

namespace bytebrain {
namespace {

Dataset SmallDataset() {
  DatasetGenerator gen(*FindDatasetSpec("OpenSSH"));
  return gen.GenerateLogHub();
}

TEST(AdapterConfigTest, CanonicalConfigsDiffer) {
  const auto d = ByteBrainDefaultConfig();
  const auto s = ByteBrainSequentialConfig();
  const auto u = ByteBrainUnoptimizedConfig();
  EXPECT_EQ(d.display_name, "ByteBrain");
  EXPECT_EQ(s.display_name, "ByteBrain Sequential");
  EXPECT_EQ(u.display_name, "ByteBrain w/o JIT");
  EXPECT_GT(d.num_threads, 1);
  EXPECT_EQ(s.num_threads, 1);
  EXPECT_TRUE(u.options.unoptimized);
  EXPECT_FALSE(d.options.unoptimized);
}

TEST(AdapterTest, AllVariantsProduceEquallyAccurateGroupings) {
  // Sequential / unoptimized change the execution strategy, not the
  // algorithm: accuracy must be essentially identical.
  Dataset ds = SmallDataset();
  double reference = -1.0;
  for (const auto& config :
       {ByteBrainDefaultConfig(), ByteBrainSequentialConfig(),
        ByteBrainUnoptimizedConfig()}) {
    ByteBrainAdapter adapter(config);
    const RunResult r = RunOn(&adapter, ds);
    if (reference < 0) reference = r.grouping_accuracy;
    EXPECT_NEAR(r.grouping_accuracy, reference, 0.05) << config.display_name;
  }
}

TEST(AdapterTest, ReportThresholdControlsGranularity) {
  Dataset ds = SmallDataset();
  ByteBrainAdapterConfig coarse = ByteBrainDefaultConfig();
  coarse.report_threshold = 0.05;
  ByteBrainAdapterConfig fine = ByteBrainDefaultConfig();
  fine.report_threshold = 0.99;
  ByteBrainAdapter a(coarse);
  ByteBrainAdapter b(fine);
  const RunResult rc = RunOn(&a, ds);
  const RunResult rf = RunOn(&b, ds);
  EXPECT_LE(rc.num_groups, rf.num_groups);
}

TEST(AdapterTest, NaiveMatchVariantUsesTrainingAssignments) {
  Dataset ds = SmallDataset();
  ByteBrainAdapterConfig config = ByteBrainDefaultConfig();
  config.options.naive_match = true;
  ByteBrainAdapter adapter(config);
  const RunResult r = RunOn(&adapter, ds);
  // §5.4.1: near-identical accuracy to text matching.
  EXPECT_GE(r.grouping_accuracy, 0.9);
}

TEST(AdapterTest, ParserAccessibleAfterParse) {
  Dataset ds = SmallDataset();
  ByteBrainAdapter adapter(ByteBrainDefaultConfig());
  RunOn(&adapter, ds);
  ASSERT_NE(adapter.parser(), nullptr);
  EXPECT_GT(adapter.parser()->model().size(), 0u);
  EXPECT_GT(adapter.parser()->ModelBytes(), 0u);
}

TEST(AdapterTest, EmptyDataset) {
  Dataset empty;
  empty.name = "empty";
  ByteBrainAdapter adapter(ByteBrainDefaultConfig());
  const RunResult r = RunOn(&adapter, empty);
  EXPECT_EQ(r.num_logs, 0u);
  EXPECT_DOUBLE_EQ(r.grouping_accuracy, 1.0);
}

}  // namespace
}  // namespace bytebrain
