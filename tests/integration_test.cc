// Cross-module integration tests: the full pipeline on generated
// corpora, model persistence through the internal topic, and regressions
// for the many-templates-per-length clustering behavior.
#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "core/parser.h"
#include "datagen/generator.h"
#include "eval/bytebrain_adapter.h"
#include "eval/metrics.h"
#include "eval/runner.h"
#include "service/log_service.h"

namespace bytebrain {
namespace {

// Regression: a single length-group containing MANY templates must still
// be fully separated. Before the virtual-partition fix, clusters whose
// saturation did not improve were abandoned as giant mixed leaves
// (Thunderbird GA was 0.017).
TEST(ClusteringRegressionTest, ManyTemplatesSharingOneLength) {
  std::vector<std::string> logs;
  std::vector<uint32_t> gt;
  // 60 templates, all 4 tokens long: "svcNN verbNN code=<var>". Value
  // ranges are template-disjoint: positionally-aligned value collisions
  // across templates are the Fig.-5 Set-2 correlation case, which the
  // algorithm deliberately preserves as separate structure.
  for (int t = 0; t < 60; ++t) {
    for (int i = 0; i < 30; ++i) {
      logs.push_back("svc" + std::to_string(t) + " verb" + std::to_string(t) +
                     " code=" + std::to_string(t * 1000 + i));
      gt.push_back(t);
    }
  }
  ByteBrainAdapter adapter(ByteBrainDefaultConfig());
  Dataset ds;
  ds.name = "regression";
  ds.num_templates = 60;
  for (size_t i = 0; i < logs.size(); ++i) {
    ds.logs.push_back({logs[i], gt[i]});
  }
  RunResult r = RunOn(&adapter, ds);
  EXPECT_GE(r.grouping_accuracy, 0.95);
  // No giant mixed group: group count near the template count.
  EXPECT_GE(r.num_groups, 55u);
  EXPECT_LE(r.num_groups, 70u);
}

TEST(IntegrationTest, GeneratedDatasetsHitPaperAccuracyBand) {
  // ByteBrain must reach >= 0.9 GA on representative datasets at both
  // LogHub and scaled LogHub-2.0 sizes (paper: 0.98 / 0.90 averages).
  for (const char* name : {"HDFS", "Zookeeper", "Mac"}) {
    DatasetGenerator gen(*FindDatasetSpec(name));
    Dataset small = gen.GenerateLogHub();
    ByteBrainAdapter a1(ByteBrainDefaultConfig());
    EXPECT_GE(RunOn(&a1, small).grouping_accuracy, 0.9) << name << " LogHub";
  }
}

TEST(IntegrationTest, ModelSurvivesSerializationIntoMatcher) {
  DatasetGenerator gen(*FindDatasetSpec("OpenSSH"));
  Dataset ds = gen.GenerateLogHub();
  std::vector<std::string> logs;
  for (auto& l : ds.logs) logs.push_back(l.text);

  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  ByteBrainParser parser(options);
  ASSERT_TRUE(parser.Train(logs).ok());

  // Serialize, reload, and verify matching behaves identically.
  auto restored = TemplateModel::Deserialize(parser.model().Serialize());
  ASSERT_TRUE(restored.ok());
  VariableReplacer replacer = VariableReplacer::Default();
  TemplateMatcher original_matcher(parser.model(), &replacer);
  TemplateMatcher restored_matcher(restored.value(), &replacer);
  for (size_t i = 0; i < logs.size(); i += 7) {
    EXPECT_EQ(original_matcher.Match(logs[i]), restored_matcher.Match(logs[i]))
        << logs[i];
  }
}

TEST(IntegrationTest, InternalTopicChainMatchesModelAncestry) {
  DatasetGenerator gen(*FindDatasetSpec("Hadoop"));
  Dataset ds = gen.GenerateLogHub();
  std::vector<std::string> logs;
  for (auto& l : ds.logs) logs.push_back(l.text);

  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  ByteBrainParser parser(options);
  ASSERT_TRUE(parser.Train(logs).ok());
  InternalTopic topic;
  parser.model().ExportTo(&topic);
  ASSERT_EQ(topic.size(), parser.model().size());

  // Every leaf's ancestor chain in the topic matches the model's links
  // and carries non-decreasing saturation toward the leaf.
  for (const TreeNode& node : parser.model().nodes()) {
    if (!node.is_leaf()) continue;
    auto chain = topic.AncestorChain(node.id);
    ASSERT_TRUE(chain.ok());
    for (size_t i = 0; i + 1 < chain->size(); ++i) {
      EXPECT_GE((*chain)[i].saturation, (*chain)[i + 1].saturation);
      EXPECT_EQ((*chain)[i].parent_id, (*chain)[i + 1].id);
    }
  }
}

TEST(IntegrationTest, ServicePersistAndRecoverTopic) {
  const std::string path = "/tmp/bb_integration_topic.bin";
  TopicConfig config;
  config.initial_train_records = 200;
  ManagedTopic topic("t", config);
  DatasetGenerator gen(*FindDatasetSpec("Apache"));
  Dataset ds = gen.GenerateLogHub();
  for (const auto& l : ds.logs) {
    ASSERT_TRUE(topic.Ingest(l.text).ok());
  }
  ASSERT_TRUE(topic.trained());
  ASSERT_TRUE(topic.PersistTo(path).ok());

  LogTopic restored("restored");
  ASSERT_TRUE(restored.RecoverFrom(path).ok());
  ASSERT_EQ(restored.size(), topic.size());
  // Template assignments survive persistence.
  size_t assigned = 0;
  for (uint64_t seq = 0; seq < restored.size(); ++seq) {
    if (restored.Read(seq)->template_id != kInvalidTemplateId) ++assigned;
  }
  EXPECT_EQ(assigned, restored.size());
  std::remove(path.c_str());
}

TEST(IntegrationTest, RetrainKeepsGroupingStable) {
  // Retraining on the same distribution must not fragment the grouping.
  DatasetGenerator gen(*FindDatasetSpec("Zookeeper"));
  GenOptions opts;
  opts.num_logs = 3000;
  opts.num_templates = 50;
  Dataset ds = gen.Generate(opts);
  std::vector<std::string> first_half;
  std::vector<std::string> second_half;
  for (size_t i = 0; i < ds.logs.size(); ++i) {
    (i < ds.logs.size() / 2 ? first_half : second_half)
        .push_back(ds.logs[i].text);
  }
  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  ByteBrainParser parser(options);
  ASSERT_TRUE(parser.Train(first_half).ok());
  const size_t before = parser.model().size();
  ASSERT_TRUE(parser.Retrain(second_half).ok());
  const size_t after = parser.model().size();
  // The merged model may grow, but not explode (same distribution).
  EXPECT_LE(after, before * 3);
  // All logs still match.
  for (const auto& l : ds.logs) {
    EXPECT_NE(parser.Match(l.text), kInvalidTemplateId);
  }
}

TEST(IntegrationTest, DynamicListLimitationIsVisibleButBounded) {
  // §7: dynamic-length lists split across token counts; the wildcard-
  // merged display text reunifies them.
  std::vector<std::string> logs;
  for (int i = 0; i < 200; ++i) {
    std::string log = "queue drained items";
    for (int k = 0; k <= i % 3; ++k) {
      log += " " + std::to_string(100 + i + k);
    }
    logs.push_back(std::move(log));
  }
  ByteBrainOptions options;
  ByteBrainParser parser(options);
  ASSERT_TRUE(parser.Train(logs).ok());
  std::set<std::string> raw_templates;
  std::set<std::string> merged_templates;
  for (const auto& log : logs) {
    const TemplateId leaf = parser.Match(log);
    ASSERT_NE(leaf, kInvalidTemplateId);
    // Per-log leaves are maximally precise; query at a moderate
    // threshold to get the per-length wildcard templates (§7).
    auto id = parser.ResolveAtThreshold(leaf, 0.5);
    ASSERT_TRUE(id.ok());
    raw_templates.insert(parser.TemplateText(id.value()));
    merged_templates.insert(parser.MergedWildcardText(id.value()));
  }
  // Three raw templates (1, 2, 3 items) but one merged display text.
  EXPECT_EQ(raw_templates.size(), 3u);
  EXPECT_EQ(merged_templates.size(), 1u);
  EXPECT_EQ(*merged_templates.begin(), "queue drained items *");
}

}  // namespace
}  // namespace bytebrain
