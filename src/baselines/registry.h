// Registry of every parser in the paper's comparison (§5.1.2), used by
// the benches to iterate "all methods" uniformly.
#pragma once

#include <memory>
#include <vector>

#include "eval/parser_interface.h"

namespace bytebrain {

/// Per-dataset information some baselines legitimately receive:
/// LogSig needs the category count; the semantic-oracle stand-ins need
/// the ground-truth labels (see DESIGN.md on the substitution).
struct BaselineHints {
  size_t expected_templates = 50;
  std::vector<uint32_t> gt_labels;
};

/// All syntax-based baselines (no ByteBrain, no semantic stand-ins).
std::vector<std::unique_ptr<LogParserInterface>> MakeSyntaxBaselines(
    const BaselineHints& hints);

/// The semantic/LLM stand-ins (UniParser, LogPPT, LILAC).
std::vector<std::unique_ptr<LogParserInterface>> MakeSemanticBaselines(
    const BaselineHints& hints);

/// Everything in Table 2/3 order (baselines first, no ByteBrain).
std::vector<std::unique_ptr<LogParserInterface>> MakeAllBaselines(
    const BaselineHints& hints);

}  // namespace bytebrain
