// Minimal binary serialization helpers shared by the model and storage
// formats: little-endian fixed-width integers and length-prefixed strings.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace bytebrain {

/// Appends fixed-width values to a byte string.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU32(uint32_t v) { PutRaw(&v, 4); }
  void PutU64(uint64_t v) { PutRaw(&v, 8); }
  void PutDouble(double v) { PutRaw(&v, 8); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }

 private:
  void PutRaw(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }
  std::string* out_;
};

/// Reads fixed-width values; every getter returns false on underflow so
/// callers can surface Corruption errors.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view s) : data_(s.data()), size_(s.size()) {}

  bool GetU32(uint32_t* v) { return GetRaw(v, 4); }
  bool GetU64(uint64_t* v) { return GetRaw(v, 8); }
  bool GetDouble(double* v) { return GetRaw(v, 8); }
  bool GetString(std::string* out) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (pos_ + len > size_) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  bool Skip(size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  bool GetRaw(void* p, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace bytebrain
