// Component microbenchmarks (google-benchmark): the building blocks the
// paper's efficiency techniques rest on — tokenization, hash encoding,
// variable replacement (fast vs regex path), deduplication, positional
// similarity, saturation, and online matching.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>

#include "api/frontend.h"
#include "api/messages.h"
#include "core/cluster.h"
#include "core/parser.h"
#include "core/preprocess.h"
#include "core/tokenizer.h"
#include "datagen/generator.h"
#include "regex/regex.h"
#include "service/log_service.h"

namespace bytebrain {
namespace {

const std::vector<std::string>& SampleLogs() {
  static const auto* logs = [] {
    DatasetGenerator gen(*FindDatasetSpec("OpenSSH"));
    GenOptions opts;
    opts.num_logs = 4096;
    opts.num_templates = 38;
    auto* v = new std::vector<std::string>();
    for (auto& l : gen.Generate(opts).logs) v->push_back(l.text);
    return v;
  }();
  return *logs;
}

void BM_TokenizeDefault(benchmark::State& state) {
  const auto& logs = SampleLogs();
  std::vector<std::string_view> tokens;
  size_t i = 0;
  for (auto _ : state) {
    tokens.clear();
    TokenizeDefaultInto(logs[i++ & 4095], &tokens);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_TokenizeDefault);

void BM_TokenizeRegexEngine(benchmark::State& state) {
  const auto& logs = SampleLogs();
  auto tokenizer = RegexTokenizer::Create(kDefaultTokenizerPattern);
  size_t i = 0;
  for (auto _ : state) {
    auto tokens = tokenizer->Tokenize(logs[i++ & 4095]);
    benchmark::DoNotOptimize(tokens);
  }
}
BENCHMARK(BM_TokenizeRegexEngine);

void BM_HashToken(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(HashToken("PacketResponder"));
  }
}
BENCHMARK(BM_HashToken);

void BM_VariableReplaceFast(benchmark::State& state) {
  const auto& logs = SampleLogs();
  VariableReplacer replacer = VariableReplacer::Default();
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    replacer.ReplaceInto(logs[i++ & 4095], &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_VariableReplaceFast);

void BM_VariableReplaceRegex(benchmark::State& state) {
  const auto& logs = SampleLogs();
  VariableReplacer replacer = VariableReplacer::Default();
  replacer.set_use_fast_builtins(false);
  std::string out;
  size_t i = 0;
  for (auto _ : state) {
    replacer.ReplaceInto(logs[i++ & 4095], &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_VariableReplaceRegex);

void BM_PreprocessBatch(benchmark::State& state) {
  const auto& logs = SampleLogs();
  VariableReplacer replacer = VariableReplacer::Default();
  PreprocessOptions opts;
  opts.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = Preprocess(logs, replacer, opts);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(logs.size()));
}
BENCHMARK(BM_PreprocessBatch)->Arg(1)->Arg(2)->Arg(4);

void BM_SaturationScore(benchmark::State& state) {
  const auto& logs = SampleLogs();
  VariableReplacer replacer = VariableReplacer::Default();
  PreprocessOptions opts;
  auto pre = Preprocess(logs, replacer, opts);
  std::vector<uint32_t> members;
  for (uint32_t i = 0; i < pre.logs.size() && i < 256; ++i) {
    if (pre.logs[i].tokens.size() == pre.logs[0].tokens.size()) {
      members.push_back(i);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSaturation(pre.logs, members, {}));
  }
}
BENCHMARK(BM_SaturationScore);

void BM_TrainOpenSsh(benchmark::State& state) {
  const auto& logs = SampleLogs();
  for (auto _ : state) {
    ByteBrainOptions options;
    options.trainer.num_threads = 2;
    options.trainer.preprocess.num_threads = 2;
    ByteBrainParser parser(options);
    benchmark::DoNotOptimize(parser.Train(logs));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(logs.size()));
}
BENCHMARK(BM_TrainOpenSsh);

void BM_OnlineMatch(benchmark::State& state) {
  const auto& logs = SampleLogs();
  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  ByteBrainParser parser(options);
  if (!parser.Train(logs).ok()) {
    state.SkipWithError("training failed");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(parser.Match(logs[i++ & 4095]));
  }
}
BENCHMARK(BM_OnlineMatch);

void BM_OnlineMatchAll(benchmark::State& state) {
  const auto& logs = SampleLogs();
  ByteBrainOptions options;
  options.trainer.num_threads = 2;
  ByteBrainParser parser(options);
  if (!parser.Train(logs).ok()) {
    state.SkipWithError("training failed");
    return;
  }
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto ids = parser.MatchAll(logs, threads);
    benchmark::DoNotOptimize(ids);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(logs.size()));
}
BENCHMARK(BM_OnlineMatchAll)->Arg(1)->Arg(2)->Arg(4);

void BM_TopicIngest(benchmark::State& state) {
  const auto& logs = SampleLogs();
  for (auto _ : state) {
    state.PauseTiming();
    TopicConfig config;
    config.initial_train_records = 1024;
    config.train_interval_records = 1u << 30;
    config.train_volume_bytes = 1ull << 40;
    ManagedTopic topic("bench", config);
    // Pre-train on the first quarter so the timed region measures the
    // steady-state (matched) ingest path, not training.
    for (size_t i = 0; i < 1024; ++i) {
      if (!topic.Ingest(std::string(logs[i])).ok()) {
        state.SkipWithError("ingest failed");
        return;
      }
    }
    state.ResumeTiming();
    for (size_t i = 1024; i < logs.size(); ++i) {
      benchmark::DoNotOptimize(topic.Ingest(std::string(logs[i])));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(logs.size() - 1024));
}
BENCHMARK(BM_TopicIngest);

void BM_TopicIngestBatch(benchmark::State& state) {
  const auto& logs = SampleLogs();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    TopicConfig config;
    config.initial_train_records = 1024;
    config.train_interval_records = 1u << 30;
    config.train_volume_bytes = 1ull << 40;
    ManagedTopic topic("bench", config);
    for (size_t i = 0; i < 1024; ++i) {
      if (!topic.Ingest(std::string(logs[i])).ok()) {
        state.SkipWithError("ingest failed");
        return;
      }
    }
    state.ResumeTiming();
    for (size_t begin = 1024; begin < logs.size();) {
      const size_t len = std::min(batch_size, logs.size() - begin);
      std::vector<std::string> chunk(logs.begin() + begin,
                                     logs.begin() + begin + len);
      benchmark::DoNotOptimize(topic.IngestBatch(std::move(chunk)));
      begin += len;
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(logs.size() - 1024));
}
BENCHMARK(BM_TopicIngestBatch)->Arg(256)->Arg(1024);

// The service-API boundary tax: the same batched ingest workload as
// BM_TopicIngestBatch/1024, but every batch crosses the v1 wire path —
// build an IngestBatchRequest, encode a request envelope, Dispatch
// (decode, tenant admission, topic call), encode the response, decode
// it back. Compare items_per_second against BM_TopicIngestBatch/1024:
// the acceptance bar for the API layer is <10% overhead on this path
// (serialization is byte-copies; matching dominates per record).
void BM_FrontendDispatch(benchmark::State& state) {
  const auto& logs = SampleLogs();
  const size_t batch_size = static_cast<size_t>(state.range(0));
  uint64_t wire_bytes = 0;
  uint64_t batches = 0;
  for (auto _ : state) {
    state.PauseTiming();
    api::ServiceFrontend frontend;
    api::CreateTopicRequest create;
    create.name = "bench";
    create.config.initial_train_records = 1024;
    create.config.train_interval_records = 1u << 30;
    create.config.train_volume_bytes = 1ull << 40;
    api::CreateTopicResponse created;
    if (!frontend.CreateTopic("bench-tenant", create, &created).ok()) {
      state.SkipWithError("create failed");
      return;
    }
    {
      api::IngestBatchRequest warmup;
      warmup.topic = "bench";
      warmup.texts.assign(logs.begin(), logs.begin() + 1024);
      api::IngestBatchResponse resp;
      if (!frontend.IngestBatch("bench-tenant", std::move(warmup), &resp)
               .ok()) {
        state.SkipWithError("warmup ingest failed");
        return;
      }
    }
    state.ResumeTiming();
    for (size_t begin = 1024; begin < logs.size();) {
      const size_t len = std::min(batch_size, logs.size() - begin);
      // Zero-copy client: encode straight out of the log buffer (the
      // view request), the way a transport client that owns its batch
      // would — the server materializes each record once, at append.
      api::IngestBatchRequestView req;
      req.topic = "bench";
      req.texts.assign(logs.begin() + begin, logs.begin() + begin + len);
      const std::string request_bytes = api::EncodeRequest(
          api::ApiMethod::kIngestBatch, "bench-tenant", req);
      const std::string response_bytes = frontend.Dispatch(request_bytes);
      api::IngestBatchResponse resp;
      if (!api::DecodeResponse(response_bytes, &resp).ok() ||
          resp.seqs.size() != len) {
        state.SkipWithError("dispatch failed");
        return;
      }
      wire_bytes += request_bytes.size() + response_bytes.size();
      ++batches;
      begin += len;
    }
  }
  state.counters["wire_bytes_per_batch"] = benchmark::Counter(
      batches > 0 ? static_cast<double>(wire_bytes) /
                        static_cast<double>(batches)
                  : 0.0);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(logs.size() - 1024));
}
BENCHMARK(BM_FrontendDispatch)->Arg(256)->Arg(1024);

// Ingest throughput while retrains land mid-stream: Arg(1) runs them on
// the background thread (atomic swap), Arg(0) inline under the ingest
// lock — the delta is the latency the async design removes from the
// ingest path. Counters report completed trainings, how many ran async,
// and how many trigger firings were coalesced into follow-up runs.
void BM_TopicIngestAsyncRetrain(benchmark::State& state) {
  const auto& logs = SampleLogs();
  const bool async = state.range(0) != 0;
  uint64_t trainings = 0;
  uint64_t async_trainings = 0;
  uint64_t coalesced = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TopicConfig config;
    config.initial_train_records = 512;
    config.train_interval_records = 512;  // retrain every 512 records
    config.train_volume_bytes = 1ull << 40;
    config.async_training = async;
    auto topic = std::make_unique<ManagedTopic>("bench", config);
    for (size_t i = 0; i < 512; ++i) {
      if (!topic->Ingest(std::string(logs[i])).ok()) {
        state.SkipWithError("ingest failed");
        return;
      }
    }
    state.ResumeTiming();
    for (size_t i = 512; i < logs.size(); ++i) {
      benchmark::DoNotOptimize(topic->Ingest(std::string(logs[i])));
    }
    // Draining inside the timed region keeps the async arm honest: it
    // cannot report throughput while hiding an unfinished training.
    topic->WaitForPendingTraining();
    state.PauseTiming();
    const TopicStats stats = topic->stats();
    trainings += stats.trainings;
    async_trainings += stats.async_trainings;
    coalesced += stats.coalesced_triggers;
    // Destruction (training-pool join — async arm only) stays untimed so
    // the sync-vs-async delta measures the ingest path, not thread setup.
    topic.reset();
    state.ResumeTiming();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["trainings"] =
      benchmark::Counter(static_cast<double>(trainings) / iters);
  state.counters["async_trainings"] =
      benchmark::Counter(static_cast<double>(async_trainings) / iters);
  state.counters["coalesced_triggers"] =
      benchmark::Counter(static_cast<double>(coalesced) / iters);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(logs.size() - 512));
}
BENCHMARK(BM_TopicIngestAsyncRetrain)->Arg(0)->Arg(1);

// Sharded batch ingest on an adopt-heavy workload: every 32nd record is
// a novel shape the trained model misses (the rest are duplicates of it
// with different variable values), so the exclusive adopt/append section
// dominates. Arg = num_ingest_shards; 1 is the plain path (adoption
// under the exclusive lock invalidates the batch's prematch, so the
// tail re-matches serially), >1 routes shapes to shards by content hash
// — duplicates colocate and collapse into one match/adopt per shape —
// and folds the shard-local temporaries once per batch.
void BM_TopicIngestSharded(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  constexpr size_t kBatch = 256;
  constexpr int kShapesPerBatch = 8;   // x32 duplicates = 256 records
  constexpr int kBatches = 12;
  // The workload's 16-token shapes have a token count the trained
  // OpenSSH model has never seen (its shapes span 6-13 tokens), so
  // every shape genuinely misses and must be adopted — the model's
  // roots are per-length wildcard templates, and a novel log with a
  // SEEN length would match a root at saturation 0 instead of adopting.
  // Duplicates of a shape differ only in a replaced variable (the IP),
  // so they collapse onto one content hash.
  const auto& logs = SampleLogs();
  auto novel = [](int shape, int dup) {
    return "subsystem" + std::to_string(shape) + " failure code " +
           std::to_string(shape * 7) + " attempt from 10.0.0." +
           std::to_string(dup % 9 + 1) +
           " limit exceeded after backoff window seconds on node host" +
           std::to_string(shape);
  };
  uint64_t adopted = 0;
  uint64_t merges = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TopicConfig config;
    config.initial_train_records = 1024;
    config.train_interval_records = 1u << 30;
    config.train_volume_bytes = 1ull << 40;
    // One matching thread: on the 1-core reference container this
    // measures the algorithmic effect of sharding (dedup by content
    // hash, no prematch invalidation cascade) rather than pool handoff;
    // multi-core machines additionally get shard parallelism.
    config.num_threads = 1;
    config.num_ingest_shards = shards;
    ManagedTopic topic("bench", config);
    for (size_t i = 0; i < 1024; ++i) {
      if (!topic.Ingest(std::string(logs[i])).ok()) {
        state.SkipWithError("ingest failed");
        return;
      }
    }
    // Pre-build the batches so the timed region is ingest only.
    std::vector<std::vector<std::string>> batches;
    for (int b = 0; b < kBatches; ++b) {
      std::vector<std::string> batch;
      batch.reserve(kBatch);
      for (int dup = 0; dup < 32; ++dup) {
        for (int s = 0; s < kShapesPerBatch; ++s) {
          batch.push_back(novel(b * kShapesPerBatch + s, dup));
        }
      }
      batches.push_back(std::move(batch));
    }
    state.ResumeTiming();
    for (auto& batch : batches) {
      benchmark::DoNotOptimize(topic.IngestBatch(std::move(batch)));
    }
    state.PauseTiming();
    const TopicStats stats = topic.stats();
    for (const ShardStats& s : stats.shards) adopted += s.adopted;
    merges += stats.shard_merges;
    state.ResumeTiming();
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["shard_adopted"] =
      benchmark::Counter(static_cast<double>(adopted) / iters);
  state.counters["shard_merges"] =
      benchmark::Counter(static_cast<double>(merges) / iters);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kBatch * kBatches));
}
BENCHMARK(BM_TopicIngestSharded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

std::string BenchStorageDir() {
  static int counter = 0;
  return (std::filesystem::temp_directory_path() /
          ("bb_bench_storage_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++)))
      .string();
}

// Batched service-path ingest against the in-memory store (/0) vs the
// segmented on-disk store (/1) at the production-default 8 MiB segment
// size: the ~0.3 MiB stream never seals (sealed_segments reports 0 by
// design), so the delta is the steady-state streaming-append price —
// frame serialization, checksums, buffered write()s. Seal costs
// (fsync + mmap + manifest, one per 8 MiB) amortize below that and are
// exercised by BM_StorageScan's setup and the fig10 storage table. The
// acceptance bar is disk within 25% of memory on this path.
void BM_TopicIngestStorage(benchmark::State& state) {
  const auto& logs = SampleLogs();
  const bool disk = state.range(0) != 0;
  uint64_t sealed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    TopicConfig config;
    config.initial_train_records = 1024;
    config.train_interval_records = 1u << 30;
    config.train_volume_bytes = 1ull << 40;
    std::string dir;
    if (disk) {
      dir = BenchStorageDir();
      config.storage.kind = StorageConfig::Kind::kSegmentedDisk;
      config.storage.directory = dir;
      config.storage.segment_data_bytes = 8ull << 20;
    }
    auto topic = std::make_unique<ManagedTopic>("bench", config);
    for (size_t i = 0; i < 1024; ++i) {
      if (!topic->Ingest(std::string(logs[i])).ok()) {
        state.SkipWithError("ingest failed");
        return;
      }
    }
    state.ResumeTiming();
    for (size_t begin = 1024; begin < logs.size();) {
      const size_t len = std::min<size_t>(1024, logs.size() - begin);
      std::vector<std::string> chunk(logs.begin() + begin,
                                     logs.begin() + begin + len);
      benchmark::DoNotOptimize(topic->IngestBatch(std::move(chunk)));
      begin += len;
    }
    state.PauseTiming();
    sealed += topic->stats().storage_sealed_segments;
    topic.reset();
    if (disk) std::filesystem::remove_all(dir);
    state.ResumeTiming();
  }
  state.counters["sealed_segments"] = benchmark::Counter(
      static_cast<double>(sealed) / static_cast<double>(state.iterations()));
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(logs.size() - 1024));
}
BENCHMARK(BM_TopicIngestStorage)->Arg(0)->Arg(1);

// The sealed-scan path: full-window Scan throughput over the in-memory
// store (/0) vs mmap'd sealed disk segments (/1). This is what training
// snapshots and range queries pay per record on each backend.
void BM_StorageScan(benchmark::State& state) {
  const auto& logs = SampleLogs();
  const bool disk = state.range(0) != 0;
  StorageConfig cfg;
  std::string dir;
  if (disk) {
    dir = BenchStorageDir();
    cfg.kind = StorageConfig::Kind::kSegmentedDisk;
    cfg.directory = dir;
    cfg.segment_data_bytes = 64 * 1024;  // everything sealed quickly
  }
  LogTopic topic("bench", cfg);
  constexpr size_t kRecords = 16384;
  for (size_t i = 0; i < kRecords; ++i) {
    topic.Append({i, logs[i & 4095], 0});
  }
  for (auto _ : state) {
    uint64_t bytes = 0;
    (void)topic.Scan(0, kRecords,
                     [&bytes](uint64_t, const LogRecord& rec) {
                       bytes += rec.text.size();
                     });
    benchmark::DoNotOptimize(bytes);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(kRecords));
  if (disk) std::filesystem::remove_all(dir);
}
BENCHMARK(BM_StorageScan)->Arg(0)->Arg(1);

void BM_RegexSearchLinear(benchmark::State& state) {
  // Pathological pattern that kills backtracking engines; the NFA must
  // stay linear in the text length.
  auto re = Regex::Compile("(a+)+b");
  std::string text(static_cast<size_t>(state.range(0)), 'a');
  RegexMatch m;
  for (auto _ : state) {
    benchmark::DoNotOptimize(re->Search(text, &m));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_RegexSearchLinear)->Range(64, 4096)->Complexity();

}  // namespace
}  // namespace bytebrain

BENCHMARK_MAIN();
