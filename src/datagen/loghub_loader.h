// Loader for real LogHub-format ground truth files.
//
// The synthetic generator stands in for LogHub by default (the corpora
// are not redistributable), but users who have downloaded LogHub /
// LogHub-2.0 can evaluate on the real data: this loader reads the
// benchmark's `*_structured.csv` files (columns include Content and
// EventId) and plain `.log` files, producing the same labeled Dataset
// the generator yields.
#pragma once

#include <string>

#include "datagen/generator.h"
#include "util/status.h"

namespace bytebrain {

/// Reads a Logparser-style structured CSV. `content_column` and
/// `event_id_column` name the columns holding the log text and its
/// ground-truth template id (LogHub uses "Content" and "EventId").
/// Handles quoted fields with embedded commas and doubled quotes.
Result<Dataset> LoadStructuredCsv(const std::string& path,
                                  const std::string& content_column = "Content",
                                  const std::string& event_id_column = "EventId");

/// Reads a plain log file (one record per line, no labels; gt_template
/// is 0 for every record). `max_lines` = 0 reads everything.
Result<Dataset> LoadPlainLog(const std::string& path, size_t max_lines = 0);

/// Parses one CSV line into fields (exposed for tests).
std::vector<std::string> ParseCsvLine(const std::string& line);

}  // namespace bytebrain
