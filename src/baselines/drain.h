// Drain (He et al., ICWS 2017): online log parsing with a fixed-depth
// parse tree. Logs descend length -> first `depth` tokens (digit-bearing
// tokens collapse to a wildcard branch, full branches overflow into it)
// to a leaf holding log groups; a log joins the most similar group when
// the token-equality ratio >= st, else starts a new group. Mismatching
// positions in the joined group's template become wildcards.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

struct DrainOptions {
  int depth = 2;          // prefix tokens consulted by the tree
  double st = 0.4;        // similarity threshold
  int max_children = 100; // per internal node before overflow to "<*>"
};

class DrainParser : public LogParserInterface {
 public:
  explicit DrainParser(DrainOptions options = {}) : options_(options) {}

  std::string name() const override { return "Drain"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  struct Group {
    std::vector<std::string> template_tokens;
    uint64_t id;
  };
  struct Node {
    std::unordered_map<std::string, std::unique_ptr<Node>> children;
    std::vector<Group> groups;  // only at leaves
  };

  Group* SearchOrInsert(const std::vector<std::string>& tokens);

  DrainOptions options_;
  Node root_;
  uint64_t next_id_ = 1;
};

}  // namespace bytebrain
