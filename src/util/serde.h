// Minimal binary serialization helpers shared by the model, storage,
// and wire-API formats: little-endian fixed-width integers,
// length-prefixed strings, and tagged fields (api/messages.h).
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace bytebrain {

/// Appends fixed-width values to a byte string.
class ByteWriter {
 public:
  explicit ByteWriter(std::string* out) : out_(out) {}

  void PutU32(uint32_t v) { PutRaw(&v, 4); }
  void PutU64(uint64_t v) { PutRaw(&v, 8); }
  void PutDouble(double v) { PutRaw(&v, 8); }
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s);
  }

 private:
  void PutRaw(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }
  std::string* out_;
};

/// Reads fixed-width values; every getter returns false on underflow so
/// callers can surface Corruption errors.
class ByteReader {
 public:
  ByteReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(std::string_view s) : data_(s.data()), size_(s.size()) {}

  bool GetU32(uint32_t* v) { return GetRaw(v, 4); }
  bool GetU64(uint64_t* v) { return GetRaw(v, 8); }
  bool GetDouble(double* v) { return GetRaw(v, 8); }
  bool GetString(std::string* out) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (pos_ + len > size_) return false;
    out->assign(data_ + pos_, len);
    pos_ += len;
    return true;
  }
  bool Skip(size_t n) {
    if (pos_ + n > size_) return false;
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ == size_; }
  size_t remaining() const { return size_ - pos_; }
  size_t position() const { return pos_; }

 private:
  bool GetRaw(void* p, size_t n) {
    if (pos_ + n > size_) return false;
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
    return true;
  }
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Tagged-field framing for forward-compatible wire messages: each field
/// is (u32 tag, u32 byte-length, payload). Decoders iterate fields and
/// SKIP unknown tags, so a newer encoder can add fields without breaking
/// an older decoder — the versioning rule the service API relies on
/// (api/messages.h). Scalar fields carry exactly their fixed width;
/// string/bytes fields carry the raw bytes; nested messages carry their
/// own field sequence as the payload.
///
/// The u32 length caps any single field — including a nested message,
/// and therefore any whole API payload — at 4 GiB. An oversized field
/// is DROPPED WHOLE (framing stays valid, the decoder sees the field
/// as absent) and the writer reports it via ok() — never a wrapped
/// length that would frame-shift every following byte. Debug builds
/// additionally assert so the bug is caught at the call site; callers
/// are expected to keep messages orders of magnitude below the cap (a
/// transport should impose its own, far smaller, message limit).
class FieldWriter {
 public:
  explicit FieldWriter(std::string* out) : out_(out) {}

  void PutU32(uint32_t tag, uint32_t v) {
    Header(tag, 4);
    ByteWriter(out_).PutU32(v);
  }
  void PutU64(uint32_t tag, uint64_t v) {
    Header(tag, 8);
    ByteWriter(out_).PutU64(v);
  }
  void PutDouble(uint32_t tag, double v) {
    Header(tag, 8);
    ByteWriter(out_).PutDouble(v);
  }
  void PutBool(uint32_t tag, bool v) { PutU32(tag, v ? 1 : 0); }
  void PutBytes(uint32_t tag, std::string_view s) {
    if (s.size() > UINT32_MAX) {
      Overflow();
      return;
    }
    Header(tag, static_cast<uint32_t>(s.size()));
    out_->append(s);
  }
  /// Packed repeated u64 (one field, 8 bytes per element).
  void PutU64Array(uint32_t tag, const std::vector<uint64_t>& vs) {
    if (vs.size() > UINT32_MAX / 8) {
      Overflow();
      return;
    }
    Header(tag, static_cast<uint32_t>(vs.size() * 8));
    ByteWriter w(out_);
    for (uint64_t v : vs) w.PutU64(v);
  }
  /// Nested message: returns a position token for End(). Everything
  /// appended to the underlying string between Begin and End becomes the
  /// field's payload (the length is backpatched — no temporary copy).
  size_t Begin(uint32_t tag) {
    Header(tag, 0);
    return out_->size();
  }
  void End(size_t begin_pos) {
    if (out_->size() - begin_pos > UINT32_MAX) {
      // Rewind the whole field (header included): dropping it keeps
      // the framing valid, a wrapped length would corrupt everything
      // after it.
      out_->resize(begin_pos - 8);
      Overflow();
      return;
    }
    const uint32_t len = static_cast<uint32_t>(out_->size() - begin_pos);
    std::memcpy(out_->data() + begin_pos - 4, &len, 4);
  }
  /// False once any field was dropped for exceeding the 4 GiB cap.
  bool ok() const { return !overflow_; }

 private:
  void Overflow() {
    assert(false && "field exceeds the 4 GiB frame cap");
    overflow_ = true;
  }
  void Header(uint32_t tag, uint32_t len) {
    ByteWriter w(out_);
    w.PutU32(tag);
    w.PutU32(len);
  }
  std::string* out_;
  bool overflow_ = false;
};

/// Iterates the tagged fields of one message. Malformed framing
/// (truncated header or payload) stops iteration and sets error();
/// decoders must check it and surface a Corruption status — getters
/// never read out of bounds.
class FieldReader {
 public:
  explicit FieldReader(std::string_view bytes) : bytes_(bytes), r_(bytes) {}

  /// Advances to the next field; false at the (clean or malformed) end.
  bool Next(uint32_t* tag, std::string_view* payload) {
    if (r_.AtEnd() || error_) return false;
    uint32_t len = 0;
    if (!r_.GetU32(tag) || !r_.GetU32(&len) || r_.remaining() < len) {
      error_ = true;
      return false;
    }
    *payload = bytes_.substr(r_.position(), len);
    (void)r_.Skip(len);
    return true;
  }
  bool error() const { return error_; }

  /// Fixed-width payload decoders: false (leaving *v untouched) when the
  /// payload does not carry exactly the expected width.
  static bool U32(std::string_view payload, uint32_t* v) {
    if (payload.size() != 4) return false;
    std::memcpy(v, payload.data(), 4);
    return true;
  }
  static bool U64(std::string_view payload, uint64_t* v) {
    if (payload.size() != 8) return false;
    std::memcpy(v, payload.data(), 8);
    return true;
  }
  static bool Double(std::string_view payload, double* v) {
    if (payload.size() != 8) return false;
    std::memcpy(v, payload.data(), 8);
    return true;
  }
  static bool Bool(std::string_view payload, bool* v) {
    uint32_t raw = 0;
    if (!U32(payload, &raw)) return false;
    *v = raw != 0;
    return true;
  }
  static bool U64Array(std::string_view payload, std::vector<uint64_t>* out) {
    if (payload.size() % 8 != 0) return false;
    out->resize(payload.size() / 8);
    if (!payload.empty()) {
      std::memcpy(out->data(), payload.data(), payload.size());
    }
    return true;
  }

 private:
  std::string_view bytes_;
  ByteReader r_;
  bool error_ = false;
};

}  // namespace bytebrain
