// Fault-injection harness battery: the FaultInjectingFileOps syscall
// shim (short writes, EIO, fsync failures, crash points that tear the
// final write and then kill every subsequent op) and the
// FaultInjectingBackend decorator (Status-level faults over any
// StorageBackend, preserving the fail-soft append contract).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "logstore/fault_injection.h"
#include "logstore/storage_backend.h"

namespace bytebrain {
namespace {

/// A real scratch file to aim the shim's (pass-through) syscalls at.
class TempFile {
 public:
  TempFile() {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("bb_faultops_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    fd_ = ::open(path_.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  }
  ~TempFile() {
    if (fd_ >= 0) ::close(fd_);
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  int fd() const { return fd_; }

 private:
  std::string path_;
  int fd_ = -1;
};

TEST(FaultInjectingFileOpsTest, PassesThroughWithEmptySchedule) {
  TempFile file;
  FaultInjectingFileOps ops;
  EXPECT_EQ(ops.Write(file.fd(), "hello", 5), 5);
  EXPECT_EQ(ops.PWrite(file.fd(), "HE", 2, 0), 2);
  EXPECT_EQ(ops.Fsync(file.fd()), 0);
  EXPECT_EQ(ops.ops_seen(), 3u);
  EXPECT_FALSE(ops.crashed());
  char buf[6] = {};
  ASSERT_EQ(::pread(file.fd(), buf, 5, 0), 5);
  EXPECT_STREQ(buf, "HEllo");
}

TEST(FaultInjectingFileOpsTest, ShortWriteWritesHalf) {
  TempFile file;
  FaultSchedule schedule;
  schedule.short_write_at = 2;
  FaultInjectingFileOps ops(schedule);
  EXPECT_EQ(ops.Write(file.fd(), "aaaa", 4), 4);  // op 1: clean
  EXPECT_EQ(ops.Write(file.fd(), "bbbb", 4), 2);  // op 2: torn in half
  EXPECT_EQ(ops.Write(file.fd(), "cccc", 4), 4);  // one-shot: clean again
  char buf[11] = {};
  ASSERT_EQ(::pread(file.fd(), buf, 10, 0), 10);
  EXPECT_STREQ(buf, "aaaabbcccc");
}

TEST(FaultInjectingFileOpsTest, FailTriggersAreKindSpecific) {
  TempFile file;
  FaultSchedule schedule;
  schedule.fail_write_at = 1;
  schedule.fail_pwrite_at = 2;
  schedule.fail_fsync_at = 3;
  FaultInjectingFileOps ops(schedule);
  errno = 0;
  EXPECT_EQ(ops.Write(file.fd(), "x", 1), -1);  // op 1 is a Write: fires
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(ops.PWrite(file.fd(), "y", 1, 0), -1);  // op 2 is a PWrite
  EXPECT_EQ(ops.Fsync(file.fd()), -1);              // op 3 is an Fsync
  // All one-shot: the same kinds succeed on later ops.
  EXPECT_EQ(ops.Write(file.fd(), "x", 1), 1);
  EXPECT_EQ(ops.PWrite(file.fd(), "y", 1, 0), 1);
  EXPECT_EQ(ops.Fsync(file.fd()), 0);
}

TEST(FaultInjectingFileOpsTest, MismatchedKindDoesNotFire) {
  TempFile file;
  FaultSchedule schedule;
  schedule.fail_fsync_at = 1;  // op 1 will be a Write, not an Fsync
  FaultInjectingFileOps ops(schedule);
  EXPECT_EQ(ops.Write(file.fd(), "x", 1), 1);
  EXPECT_EQ(ops.Fsync(file.fd()), 0);  // op 2: trigger already passed
}

TEST(FaultInjectingFileOpsTest, CrashTearsThenKillsEverything) {
  TempFile file;
  FaultSchedule schedule;
  schedule.crash_at_op = 2;
  FaultInjectingFileOps ops(schedule);
  EXPECT_EQ(ops.Write(file.fd(), "aaaa", 4), 4);
  EXPECT_EQ(ops.Write(file.fd(), "bbbb", 4), 2);  // torn final write
  EXPECT_TRUE(ops.crashed());
  errno = 0;
  EXPECT_EQ(ops.Write(file.fd(), "cccc", 4), -1);  // dead forever after
  EXPECT_EQ(errno, EIO);
  EXPECT_EQ(ops.PWrite(file.fd(), "d", 1, 0), -1);
  EXPECT_EQ(ops.Fsync(file.fd()), -1);
  char buf[7] = {};
  ASSERT_EQ(::pread(file.fd(), buf, 6, 0), 6);
  EXPECT_STREQ(buf, "aaaabb");
}

TEST(FaultInjectingFileOpsTest, CrashOnFsyncFailsOutright) {
  TempFile file;
  FaultSchedule schedule;
  schedule.crash_at_op = 1;
  FaultInjectingFileOps ops(schedule);
  EXPECT_EQ(ops.Fsync(file.fd()), -1);  // fsync cannot tear: plain death
  EXPECT_TRUE(ops.crashed());
}

TEST(FaultInjectingFileOpsTest, CrashNowNeedsNoOpCount) {
  TempFile file;
  FaultInjectingFileOps ops;
  EXPECT_EQ(ops.Write(file.fd(), "x", 1), 1);
  ops.CrashNow();
  EXPECT_TRUE(ops.crashed());
  EXPECT_EQ(ops.Write(file.fd(), "x", 1), -1);
  EXPECT_EQ(ops.Fsync(file.fd()), -1);
}

// ---------------------------------------------------------------------
// FaultInjectingBackend (Status-level decorator)
// ---------------------------------------------------------------------

LogRecord MakeRecord(const std::string& text, uint64_t ts = 7) {
  LogRecord record;
  record.text = text;
  record.timestamp_us = ts;
  return record;
}

std::unique_ptr<FaultInjectingBackend> FaultyMemory(
    BackendFaultSchedule schedule) {
  auto backend = std::make_unique<FaultInjectingBackend>(
      std::make_unique<MemoryBackend>(16), schedule);
  EXPECT_TRUE(backend->Open().ok());
  return backend;
}

TEST(FaultInjectingBackendTest, PassesThroughWithEmptySchedule) {
  auto backend = FaultyMemory({});
  ASSERT_TRUE(backend->Append(MakeRecord("a")).ok());
  ASSERT_TRUE(backend->AppendBatch({MakeRecord("b"), MakeRecord("c")}).ok());
  EXPECT_EQ(backend->size(), 3u);
  LogRecord out;
  ASSERT_TRUE(backend->Read(2, &out).ok());
  EXPECT_EQ(out.text, "c");
  EXPECT_TRUE(backend->Flush().ok());
  EXPECT_TRUE(backend->Checkpoint("meta").ok());
}

TEST(FaultInjectingBackendTest, FaultedAppendStillLands) {
  BackendFaultSchedule schedule;
  schedule.fail_append_at = 2;
  auto backend = FaultyMemory(schedule);
  ASSERT_TRUE(backend->Append(MakeRecord("a")).ok());
  // The fail-soft contract: the error surfaces but the record is in —
  // sequence numbering must not skip.
  EXPECT_FALSE(backend->Append(MakeRecord("b")).ok());
  ASSERT_TRUE(backend->Append(MakeRecord("c")).ok());
  EXPECT_EQ(backend->size(), 3u);
  LogRecord out;
  ASSERT_TRUE(backend->Read(1, &out).ok());
  EXPECT_EQ(out.text, "b");
}

TEST(FaultInjectingBackendTest, AppendAndAppendBatchShareTheCounter) {
  BackendFaultSchedule schedule;
  schedule.fail_append_at = 2;
  auto backend = FaultyMemory(schedule);
  ASSERT_TRUE(backend->Append(MakeRecord("a")).ok());
  EXPECT_FALSE(backend->AppendBatch({MakeRecord("b"), MakeRecord("c")}).ok());
  EXPECT_EQ(backend->size(), 3u);  // batch records landed regardless
}

TEST(FaultInjectingBackendTest, ReadAndScanShareTheCounter) {
  BackendFaultSchedule schedule;
  schedule.fail_read_at = 2;
  auto backend = FaultyMemory(schedule);
  ASSERT_TRUE(backend->Append(MakeRecord("a")).ok());
  LogRecord out;
  ASSERT_TRUE(backend->Read(0, &out).ok());
  // Call 2 is a Scan: the injected error comes back without forwarding.
  size_t seen = 0;
  EXPECT_FALSE(
      backend->Scan(0, 1, [&](uint64_t, const LogRecord&) { ++seen; }).ok());
  EXPECT_EQ(seen, 0u);
  ASSERT_TRUE(backend->Read(0, &out).ok());  // one-shot
}

TEST(FaultInjectingBackendTest, FlushAndCheckpointFaults) {
  BackendFaultSchedule schedule;
  schedule.fail_flush_at = 1;
  schedule.fail_checkpoint_at = 2;
  auto backend = FaultyMemory(schedule);
  EXPECT_FALSE(backend->Flush().ok());
  EXPECT_TRUE(backend->Flush().ok());
  EXPECT_TRUE(backend->Checkpoint("one").ok());
  EXPECT_FALSE(backend->Checkpoint("two").ok());
  // The faulted checkpoint did NOT forward: metadata is still "one".
  EXPECT_EQ(backend->metadata(), "one");
}

}  // namespace
}  // namespace bytebrain
