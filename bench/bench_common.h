// Shared helpers for the per-table/figure bench binaries.
//
// Scale control: LogHub-2.0 datasets are millions of logs; by default the
// benches run each dataset scaled down to BB_BENCH_MAX_LOGS (default
// 20000) so the whole suite finishes in minutes. Set BB_BENCH_MAX_LOGS
// higher (or BB_BENCH_FULL=1 for the unscaled Table-1 sizes) to
// reproduce at larger scale.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "datagen/generator.h"
#include "eval/bytebrain_adapter.h"
#include "eval/runner.h"

namespace bytebrain {

inline size_t BenchMaxLogs() {
  if (const char* full = std::getenv("BB_BENCH_FULL");
      full != nullptr && full[0] == '1') {
    return SIZE_MAX;
  }
  if (const char* v = std::getenv("BB_BENCH_MAX_LOGS"); v != nullptr) {
    const long long n = std::atoll(v);
    if (n > 0) return static_cast<size_t>(n);
  }
  return 20000;
}

/// LogHub-2.0 dataset scaled to at most BenchMaxLogs() records.
inline Dataset ScaledLogHub2(const DatasetSpec& spec) {
  DatasetGenerator generator(spec);
  const size_t cap = BenchMaxLogs();
  const double scale =
      spec.loghub2_logs <= cap
          ? 1.0
          : static_cast<double>(cap) / static_cast<double>(spec.loghub2_logs);
  return generator.GenerateLogHub2(scale);
}

/// Ground-truth labels of a dataset (for the oracle hints).
inline std::vector<uint32_t> LabelsOf(const Dataset& ds) {
  std::vector<uint32_t> gt;
  gt.reserve(ds.logs.size());
  for (const auto& l : ds.logs) gt.push_back(l.gt_template);
  return gt;
}

/// Cost-based skip policy mirroring the paper's "failed to finish"
/// entries: super-linear baselines are skipped on workloads where their
/// projected cost explodes. Returns false when the run should be skipped.
inline bool Affordable(const std::string& parser_name, size_t num_logs,
                       size_t num_templates) {
  if (parser_name == "LogSig") {
    // Local search is O(logs x categories x token-pairs x iterations);
    // beyond this budget the paper reports LogSig failing to finish.
    return num_logs * num_templates <= 600ull * 1000;
  }
  if (parser_name == "LenMa") {
    return num_logs * num_templates <= 60ull * 1000 * 1000;
  }
  if (parser_name == "LogMine") return num_logs <= 300000;
  if (parser_name == "MoLFI") return num_logs <= 500000;
  if (parser_name == "SHISO") return num_logs <= 500000;
  return true;
}

/// Bounded prefix of a dataset. The semantic/LLM stand-ins have constant
/// per-log cost by construction, so running them on a prefix leaves
/// their throughput and accuracy estimates unchanged while keeping the
/// bench wall time bounded.
inline Dataset DatasetPrefix(const Dataset& ds, size_t cap = 4000) {
  Dataset out;
  out.name = ds.name;
  out.num_templates = ds.num_templates;
  const size_t n = std::min(cap, ds.logs.size());
  out.logs.assign(ds.logs.begin(), ds.logs.begin() + n);
  return out;
}

inline void PrintBenchHeader(const char* title, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("scale: max %zu logs per LogHub-2.0 dataset "
              "(BB_BENCH_MAX_LOGS to change)\n",
              BenchMaxLogs());
  std::printf("==============================================================\n\n");
}

}  // namespace bytebrain
