// Offline training (paper §3 "Offline Training", §4.3).
//
// Pipeline: preprocess -> initial grouping -> per-group hierarchical
// clustering (parallel across groups) -> template model. The trainer also
// returns the per-input-log leaf assignment from clustering, which backs
// the "w/ naive match" ablation and lets callers skip a matching pass
// over the training batch.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/cluster.h"
#include "core/model.h"
#include "core/preprocess.h"
#include "core/variable_replacer.h"
#include "util/status.h"

namespace bytebrain {

/// End-to-end training configuration.
struct TrainerOptions {
  PreprocessOptions preprocess;
  ClusterOptions cluster;
  /// Initial-grouping prefix length k (paper default 0: length only).
  int prefix_k = 0;
  /// Threads for per-group clustering (groups are independent).
  int num_threads = 1;
  /// Stop refining once a node reaches this saturation (1.0 = fully
  /// resolved, the paper's default behaviour).
  double saturation_stop = 1.0;
  /// Random sampling cap to avoid OOM on exceptionally large batches
  /// (§3); 0 disables sampling.
  size_t max_train_logs = 0;
  uint64_t seed = 42;
};

/// Training artifacts.
struct TrainOutput {
  TemplateModel model;
  /// assignments[i] = leaf template id for raw input log i
  /// (kInvalidTemplateId for logs dropped by sampling).
  std::vector<TemplateId> assignments;
  /// Preprocessing statistics (drives the Fig. 4 and Fig. 10 benches).
  size_t distinct_logs = 0;
  size_t total_logs = 0;
  uint64_t dictionary_bytes = 0;
};

/// Trains a template model over one batch of raw logs.
class Trainer {
 public:
  explicit Trainer(TrainerOptions options) : options_(std::move(options)) {}

  /// `replacer` must outlive the call. Empty input yields an empty model.
  /// The view overload is the core — views (e.g. into mmap'd storage
  /// segments) need only stay valid for the duration of the call; the
  /// string overload borrows views of its input.
  Result<TrainOutput> Train(const std::vector<std::string_view>& raw_logs,
                            const VariableReplacer& replacer) const;
  Result<TrainOutput> Train(const std::vector<std::string>& raw_logs,
                            const VariableReplacer& replacer) const;

  const TrainerOptions& options() const { return options_; }

 private:
  TrainerOptions options_;
};

}  // namespace bytebrain
