// Tests for preprocessing: encoding, deduplication, parallelism, and the
// ordinal-vs-hash dictionary cost.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/preprocess.h"

namespace bytebrain {
namespace {

std::vector<std::string> Repeat(std::initializer_list<std::string> texts,
                                int times) {
  std::vector<std::string> out;
  for (int i = 0; i < times; ++i) {
    for (const auto& t : texts) out.push_back(t);
  }
  return out;
}

TEST(PreprocessTest, DedupCollapsesIdenticalLogs) {
  auto logs = Repeat({"user login ok", "user login failed"}, 50);
  PreprocessOptions opts;
  auto result = Preprocess(logs, VariableReplacer::None(), opts);
  EXPECT_EQ(result.total_logs, 100u);
  ASSERT_EQ(result.logs.size(), 2u);
  EXPECT_EQ(result.logs[0].count, 50u);
  EXPECT_EQ(result.logs[1].count, 50u);
}

TEST(PreprocessTest, SourceIdsCoverEveryInput) {
  auto logs = Repeat({"a b", "c d", "a b"}, 10);
  PreprocessOptions opts;
  auto result = Preprocess(logs, VariableReplacer::None(), opts);
  std::vector<bool> seen(logs.size(), false);
  for (const auto& el : result.logs) {
    EXPECT_EQ(el.source_ids.size(), el.count);
    for (uint32_t id : el.source_ids) {
      ASSERT_LT(id, logs.size());
      EXPECT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST(PreprocessTest, VariableReplacementIncreasesDuplication) {
  // Paper Fig. 4: replacing variables makes more logs identical.
  std::vector<std::string> logs;
  for (int i = 0; i < 64; ++i) {
    logs.push_back("conn from 10.0.0." + std::to_string(i + 1));
  }
  PreprocessOptions opts;
  auto without = Preprocess(logs, VariableReplacer::None(), opts);
  auto with = Preprocess(logs, VariableReplacer::Default(), opts);
  EXPECT_EQ(without.logs.size(), 64u);
  EXPECT_EQ(with.logs.size(), 1u);
  EXPECT_EQ(with.logs[0].count, 64u);
}

TEST(PreprocessTest, DedupDisabledKeepsEveryLog) {
  auto logs = Repeat({"same line"}, 30);
  PreprocessOptions opts;
  opts.deduplicate = false;
  auto result = Preprocess(logs, VariableReplacer::None(), opts);
  EXPECT_EQ(result.logs.size(), 30u);
  for (const auto& el : result.logs) EXPECT_EQ(el.count, 1u);
}

TEST(PreprocessTest, TokensAndTextsAligned) {
  std::vector<std::string> logs = {"alpha beta=7 gamma"};
  PreprocessOptions opts;
  auto result = Preprocess(logs, VariableReplacer::None(), opts);
  ASSERT_EQ(result.logs.size(), 1u);
  const auto& el = result.logs[0];
  ASSERT_EQ(el.tokens.size(), 4u);
  ASSERT_EQ(el.token_texts.size(), 4u);
  EXPECT_EQ(el.token_texts[0], "alpha");
  EXPECT_EQ(el.token_texts[1], "beta");
  EXPECT_EQ(el.token_texts[2], "7");
  for (size_t i = 0; i < el.tokens.size(); ++i) {
    EXPECT_EQ(el.tokens[i], HashToken(el.token_texts[i]));
  }
}

TEST(PreprocessTest, ParallelMatchesSequential) {
  std::vector<std::string> logs;
  for (int i = 0; i < 500; ++i) {
    logs.push_back("evt " + std::to_string(i % 17) + " code " +
                   std::to_string(i % 5));
  }
  PreprocessOptions seq;
  seq.num_threads = 1;
  PreprocessOptions par;
  par.num_threads = 4;
  auto a = Preprocess(logs, VariableReplacer::Default(), seq);
  auto b = Preprocess(logs, VariableReplacer::Default(), par);
  ASSERT_EQ(a.logs.size(), b.logs.size());
  // Shard-local dedup may reorder distinct logs; compare as multisets
  // keyed by the token sequence.
  auto index = [](const PreprocessResult& r) {
    std::map<std::vector<uint64_t>, uint64_t> m;
    for (const auto& el : r.logs) m[el.tokens] = el.count;
    return m;
  };
  EXPECT_EQ(index(a), index(b));
}

TEST(PreprocessTest, HashEncoderHasNoDictionary) {
  std::vector<std::string> logs = {"a b c", "d e f"};
  PreprocessOptions opts;
  opts.encoder = EncoderKind::kHash;
  auto result = Preprocess(logs, VariableReplacer::None(), opts);
  EXPECT_EQ(result.dictionary_bytes, 0u);
}

TEST(PreprocessTest, OrdinalEncoderAccumulatesDictionary) {
  std::vector<std::string> logs = {"a b c", "a b d"};
  PreprocessOptions opts;
  opts.encoder = EncoderKind::kOrdinal;
  auto result = Preprocess(logs, VariableReplacer::None(), opts);
  // 4 distinct tokens: a b c d -> 4 * (1 byte + 8 bytes id).
  EXPECT_EQ(result.dictionary_bytes, 4u * 9u);
}

TEST(PreprocessTest, OrdinalIdsAreDense) {
  OrdinalEncoder enc;
  EXPECT_EQ(enc.Encode("x"), 1u);
  EXPECT_EQ(enc.Encode("y"), 2u);
  EXPECT_EQ(enc.Encode("x"), 1u);
  EXPECT_EQ(enc.size(), 2u);
}

TEST(PreprocessTest, EmptyInput) {
  PreprocessOptions opts;
  auto result =
      Preprocess(std::vector<std::string>{}, VariableReplacer::None(), opts);
  EXPECT_EQ(result.total_logs, 0u);
  EXPECT_TRUE(result.logs.empty());
}

TEST(PreprocessTest, BlankLogProducesEmptyTokenVector) {
  std::vector<std::string> logs = {"", "   ", "real token"};
  PreprocessOptions opts;
  auto result = Preprocess(logs, VariableReplacer::None(), opts);
  // "" and "   " tokenize to the same empty sequence -> dedup together.
  ASSERT_EQ(result.logs.size(), 2u);
  EXPECT_TRUE(result.logs[0].tokens.empty());
  EXPECT_EQ(result.logs[0].count, 2u);
}

}  // namespace
}  // namespace bytebrain
