// bytebrain::api v1 — versioned wire messages for the service API.
//
// This is the typed, serializable boundary the cloud service exposes
// (paper §3, §6): every operation is a request/response pair that can
// cross a process or network boundary as bytes, dispatched by
// api::ServiceFrontend (frontend.h). No internal pointer — in
// particular no ManagedTopic* — ever crosses this boundary.
//
// The versioning contract:
//  * Every envelope starts with a fixed little-endian u32 API version
//    (kApiVersion). Everything after it — and every message body — is a
//    sequence of tagged fields (util/serde.h FieldWriter/FieldReader):
//    (u32 tag, u32 byte-length, payload).
//  * Decoders SKIP unknown tags, so a newer peer may add fields under
//    fresh tags without breaking older decoders (forward
//    compatibility). A tag, once shipped, is frozen: never reuse a
//    retired tag for a different meaning.
//  * Absent fields decode to the struct's default member value.
//  * Decoding NEVER crashes: truncated, oversized, or corrupted bytes
//    surface as a Status (Corruption for broken framing,
//    InvalidArgument for well-framed but meaningless values).
//  * Status codes cross the wire as the numeric values of
//    Status::Code; those enum values are therefore part of the wire
//    format and frozen.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "service/log_service.h"
#include "util/serde.h"
#include "util/status.h"

namespace bytebrain {
namespace api {

/// Wire version emitted by this build. Envelopes with a version of 0
/// are rejected; other versions decode under the skip-unknown-fields
/// rule in both directions. v2 added `request_id` and `auth_token` to
/// the envelopes as NEW tags: a v1 client's envelopes still decode
/// (absent fields default — no request id, empty token) and a v1
/// client decoding a v2 response simply skips the echoed request id,
/// so v1 peers interoperate with a v2 server whenever auth is
/// disabled.
inline constexpr uint32_t kApiVersion = 2;

/// Method selector carried by every request envelope. Values are wire
/// format — frozen.
enum class ApiMethod : uint32_t {
  kUnknown = 0,
  kCreateTopic = 1,
  kUpdateTopicConfig = 2,
  kDeleteTopic = 3,
  kListTopics = 4,
  kIngest = 5,
  kIngestBatch = 6,
  kQuery = 7,
  kGetStats = 8,
  kTrainNow = 9,
  kDetectAnomalies = 10,
  /// v2 replication surface. These are peer-to-peer methods: they
  /// authenticate against the frontend's replication token (envelope
  /// auth_token), not a tenant credential, and the envelope tenant is
  /// ignored — a replication topic name is the full "tenant/name" key.
  kReplPull = 11,
  kPromote = 12,
  kDemote = 13,
};

// ---------------------------------------------------------------------
// Envelopes
// ---------------------------------------------------------------------

/// The outer request frame: version, method, tenant namespace, and the
/// method's encoded request message. The tenant is part of the
/// envelope — not each body — because EVERY operation is
/// tenant-scoped; the frontend maps topic `name` to `tenant/name`
/// internally and never lets one tenant observe another's topics.
struct RequestEnvelope {
  uint32_t api_version = kApiVersion;
  ApiMethod method = ApiMethod::kUnknown;
  std::string tenant;
  std::string payload;
  /// v2: client-chosen correlation id, echoed VERBATIM on the response
  /// (including error responses) so a pipelining client can match
  /// responses to requests without relying on ordering. 0 = unset.
  uint64_t request_id = 0;
  /// v2: per-tenant credential checked by the frontend's Authenticator
  /// BEFORE any admission accounting. Empty = unauthenticated (only
  /// valid against a server with auth disabled).
  std::string auth_token;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

/// Borrowed-view decode of a request envelope: `tenant` and `payload`
/// point INTO the decoded bytes, which must outlive the view. This is
/// the Dispatch hot path's envelope parse — a batch payload is never
/// copied out of the transport buffer.
struct RequestEnvelopeView {
  uint32_t api_version = kApiVersion;
  ApiMethod method = ApiMethod::kUnknown;
  std::string_view tenant;
  std::string_view payload;
  uint64_t request_id = 0;
  std::string_view auth_token;

  Status DecodeFrom(std::string_view bytes);
};

/// The outer response frame. `status` carries the operation outcome
/// (code + message); `retry_after_us` is a backoff hint populated with
/// ResourceExhausted denials from admission control; `payload` holds
/// the method's encoded response message when status is OK.
struct ResponseEnvelope {
  uint32_t api_version = kApiVersion;
  Status status;
  uint64_t retry_after_us = 0;
  std::string payload;
  /// v2: the request's `request_id`, echoed verbatim — on error
  /// responses too, so a pipelined failure still correlates.
  uint64_t request_id = 0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

// ---------------------------------------------------------------------
// Config payloads
// ---------------------------------------------------------------------

/// Serializes the wire-safe subset of TopicConfig (training triggers,
/// threading/sharding, storage selection, variable rules). In-process
/// fields — parser_options, instrumentation hooks — do not cross the
/// wire and decode to their defaults.
void EncodeTopicConfig(const TopicConfig& config, std::string* out);
Status DecodeTopicConfig(std::string_view bytes, TopicConfig* out);

void EncodeTopicConfigPatch(const TopicConfigPatch& patch, std::string* out);
Status DecodeTopicConfigPatch(std::string_view bytes, TopicConfigPatch* out);

// ---------------------------------------------------------------------
// Topic lifecycle
// ---------------------------------------------------------------------

struct CreateTopicRequest {
  std::string name;
  TopicConfig config;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct CreateTopicResponse {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct UpdateTopicConfigRequest {
  std::string name;
  TopicConfigPatch patch;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct UpdateTopicConfigResponse {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct DeleteTopicRequest {
  std::string name;
  /// Remove a persistent topic's segment directory too (default). With
  /// false the bytes stay recoverable by a CreateTopic pointing at the
  /// same directory.
  bool purge_storage = true;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct DeleteTopicResponse {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct ListTopicsRequest {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct ListTopicsResponse {
  /// Tenant-visible topic names (the tenant prefix already stripped),
  /// lexicographically ordered.
  std::vector<std::string> names;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

// ---------------------------------------------------------------------
// Ingest
// ---------------------------------------------------------------------

struct IngestRequest {
  std::string topic;
  std::string text;
  uint64_t timestamp_us = 0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct IngestResponse {
  uint64_t seq = 0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct IngestBatchRequest {
  std::string topic;
  std::vector<std::string> texts;
  /// Optional; when non-empty must have one entry per text.
  std::vector<uint64_t> timestamps_us;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

/// Borrowed-view twin of IngestBatchRequest: `topic` and every text
/// point INTO caller-owned bytes. Wire-compatible with the owning
/// struct in both directions — a zero-copy CLIENT encodes straight
/// from its log buffers (no intermediate std::strings), and the
/// Dispatch server decodes texts as views into the request buffer and
/// feeds ManagedTopic's string_view IngestBatch, so record bytes are
/// materialized exactly once, at append.
struct IngestBatchRequestView {
  std::string_view topic;
  std::vector<std::string_view> texts;
  std::vector<uint64_t> timestamps_us;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct IngestBatchResponse {
  /// Sequence numbers in input order.
  std::vector<uint64_t> seqs;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

// ---------------------------------------------------------------------
// Query / stats / training / anomalies
// ---------------------------------------------------------------------

struct QueryRequest {
  std::string topic;
  double saturation_threshold = 0.6;
  uint64_t begin_seq = 0;
  uint64_t end_seq = UINT64_MAX;
  /// Page size: at most this many groups per response (0 = all).
  /// Cost model: group counts come from the per-segment template
  /// postings (no record scan for a fully sealed window), the cursor
  /// carries a resume key that seeks page N+1's start directly, and
  /// only the returned page's groups are materialized — per-page work
  /// is O(distinct templates + page + the page's matching records),
  /// independent of how many pages precede it.
  uint32_t max_groups = 0;
  /// Opaque continuation token from the previous page's
  /// QueryResponse::next_cursor. When set it overrides the window /
  /// threshold fields above, so every page reads the same snapshot
  /// window the first page resolved. The cursor pins the RECORD
  /// window, not the model: if a (re)training commits between pages,
  /// records inside the window may regroup, so group composition and
  /// order can shift across the page boundary — pages are exactly
  /// consistent whenever no training intervenes.
  std::string cursor;
  /// Groups carry their member sequence numbers (can dominate the
  /// response size; turn off for count-only dashboards).
  bool include_sequence_numbers = true;
  /// v2: time-range predicate — only records with timestamp_us in
  /// [min_timestamp_us, max_timestamp_us] contribute to groups. The
  /// defaults select everything, and encode/decode as absent tags, so
  /// an unfiltered v2 request is byte-identical to v1. Sealed segments
  /// whose persisted min/max timestamp range misses the window are
  /// pruned without being read.
  uint64_t min_timestamp_us = 0;
  uint64_t max_timestamp_us = UINT64_MAX;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct QueryResponse {
  std::vector<TemplateGroup> groups;
  /// Non-empty while more pages remain; feed back via
  /// QueryRequest::cursor.
  std::string next_cursor;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct GetStatsRequest {
  std::string topic;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

/// Per-tenant ingest metering, accumulated by the frontend across ALL
/// of the tenant's topics (admission control outcomes: what was let
/// through vs shed). Denied counters cover rate-limit denials and
/// inflight-cap rejections; a denial consumes no tokens, so
/// denied_bytes/records describe offered-but-shed load.
struct TenantMeter {
  uint64_t admitted_requests = 0;
  uint64_t denied_requests = 0;
  uint64_t admitted_bytes = 0;
  uint64_t denied_bytes = 0;
  uint64_t admitted_records = 0;
  uint64_t denied_records = 0;
};

struct GetStatsResponse {
  TopicStats stats;
  /// Filled by the frontend (tenant-wide, not per-topic); all zeros when
  /// stats are read without a frontend in the path.
  TenantMeter tenant;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct TrainNowRequest {
  std::string topic;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct TrainNowResponse {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct DetectAnomaliesRequest {
  std::string topic;
  uint64_t window1_begin = 0;
  uint64_t window1_end = 0;
  uint64_t window2_begin = 0;
  uint64_t window2_end = 0;
  double min_change_ratio = 2.0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct DetectAnomaliesResponse {
  std::vector<TemplateAnomaly> anomalies;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

// ---------------------------------------------------------------------
// Replication (v2)
// ---------------------------------------------------------------------

/// Follower → primary pull. With an empty `topic` the primary answers
/// with its full topic catalog (ReplPullResponse::topics) and no data —
/// the follower's discovery step. With a topic set, the primary ships
/// whole frames starting at the follower's resume point
/// {segment_index, offset} (frame bytes are identical in the WAL, the
/// segment file, and this stream, so the follower replays them through
/// the very same ParseFrame/checksum path recovery uses).
struct ReplPullRequest {
  /// Full "tenant/name" topic key; empty = enumerate topics.
  std::string topic;
  uint64_t segment_index = 0;
  uint64_t offset = 0;
  /// Soft cap on data bytes per response (always at least one frame).
  uint64_t max_bytes = 1 << 20;
  /// The model generation the follower has applied for this topic;
  /// UINT64_MAX = none. When it trails the primary's, the response
  /// carries the serialized model.
  uint64_t model_generation = UINT64_MAX;
  /// Ship the topic's TopicConfig (the follower needs it to create the
  /// local twin with the same segment size — seal boundaries must
  /// match for byte-identical convergence).
  bool want_config = false;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct ReplPullResponse {
  /// Catalog answer (enumerate form only): full "tenant/name" keys.
  std::vector<std::string> topics;

  /// Echo of the served position; `data` holds whole frames starting
  /// there. Empty data with segment_sealed means "segment complete,
  /// advance to {segment_index + 1, 0}"; empty data on the unsealed
  /// tail means the follower is caught up.
  uint64_t segment_index = 0;
  uint64_t offset = 0;
  std::string data;

  /// Manifest info for the segment being served (sealed segments
  /// only): after sealing locally the follower verifies
  /// records/checksum against these — a mismatch is divergence.
  bool segment_sealed = false;
  uint64_t segment_records = 0;
  uint64_t segment_checksum = 0;
  uint64_t segment_data_len = 0;

  /// Primary-side totals at serve time, for lag accounting
  /// (lag_bytes = source_bytes - locally applied bytes, etc.).
  uint64_t source_records = 0;
  uint64_t source_segments = 0;
  uint64_t source_bytes = 0;

  /// Present when the request set want_config.
  bool has_config = false;
  TopicConfig config;

  /// Present when the primary's model generation differs from the
  /// request's: the serialized TemplateModel and its generation.
  bool has_model = false;
  std::string model_blob;
  uint64_t model_generation = 0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

/// Explicit failover: the follower seals its replicated tails and
/// starts accepting writes (role flips to primary). Idempotent.
struct PromoteRequest {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct PromoteResponse {
  /// Topics whose active tail was sealed by the promotion.
  uint64_t sealed_topics = 0;

  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

/// The reverse transition: stop accepting writes, serve read-only.
/// (Re-attaching the node to a new primary is the operator's move —
/// this RPC only flips the role.)
struct DemoteRequest {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

struct DemoteResponse {
  void EncodeTo(std::string* out) const;
  Status DecodeFrom(std::string_view bytes);
};

// ---------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------

/// Reconstructs a Status from its wire code; out-of-range codes come
/// back as Corruption (they indicate a framing bug or a newer peer).
Status StatusFromWire(uint32_t code, std::string message);

/// Client-side convenience: one encoded request envelope for `msg`,
/// with the payload encoded in place (no intermediate payload string —
/// the envelope's nested-field length is backpatched). Byte-identical
/// to RequestEnvelope::EncodeTo over the same content. `request_id`
/// and `auth_token` are the v2 envelope fields; their zero/empty
/// defaults keep the output decodable by a v1 peer's semantics.
template <typename Request>
std::string EncodeRequest(ApiMethod method, std::string_view tenant,
                          const Request& msg, uint64_t request_id = 0,
                          std::string_view auth_token = {}) {
  std::string out;
  ByteWriter(&out).PutU32(kApiVersion);
  FieldWriter w(&out);
  w.PutU32(1, static_cast<uint32_t>(method));
  w.PutBytes(2, tenant);
  const size_t body = w.Begin(3);
  msg.EncodeTo(&out);
  w.End(body);
  if (request_id != 0) w.PutU64(4, request_id);
  if (!auth_token.empty()) w.PutBytes(5, auth_token);
  return out;
}

/// Server-side convenience: one encoded response envelope, payload
/// encoded in place (emitted only on OK; pass nullptr for error-only
/// responses). Decodes identically to ResponseEnvelope::EncodeTo
/// output (an omitted payload field reads back as empty).
template <typename Response>
std::string EncodeResponse(const Status& status, uint64_t retry_after_us,
                           const Response* msg, uint64_t request_id = 0) {
  std::string out;
  ByteWriter(&out).PutU32(kApiVersion);
  FieldWriter w(&out);
  w.PutU32(1, static_cast<uint32_t>(status.code()));
  w.PutBytes(2, status.message());
  w.PutU64(3, retry_after_us);
  if (status.ok() && msg != nullptr) {
    const size_t body = w.Begin(4);
    msg->EncodeTo(&out);
    w.End(body);
  }
  if (request_id != 0) w.PutU64(5, request_id);
  return out;
}

/// Client-side convenience: decodes a response envelope and, when the
/// carried status is OK, the payload into `msg`. Returns the carried
/// status (or a decode error). `request_id` receives the echoed
/// correlation id (0 when the server sent none).
template <typename Response>
Status DecodeResponse(std::string_view bytes, Response* msg,
                      uint64_t* retry_after_us = nullptr,
                      uint64_t* request_id = nullptr) {
  ResponseEnvelope env;
  BB_RETURN_IF_ERROR(env.DecodeFrom(bytes));
  if (retry_after_us != nullptr) *retry_after_us = env.retry_after_us;
  if (request_id != nullptr) *request_id = env.request_id;
  BB_RETURN_IF_ERROR(env.status);
  return msg->DecodeFrom(env.payload);
}

}  // namespace api
}  // namespace bytebrain
