#include "threading/thread_pool.h"

#include <algorithm>

namespace bytebrain {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  task_available_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

std::future<void> ThreadPool::Schedule(std::function<void()> task) {
  // shared_ptr because std::function requires copyable callables and
  // packaged_task is move-only.
  auto packaged =
      std::make_shared<std::packaged_task<void()>>(std::move(task));
  std::future<void> future = packaged->get_future();
  Submit([packaged] { (*packaged)(); });
  return future;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return tasks_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_available_.wait(
          lock, [this] { return shutting_down_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (tasks_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

namespace {

// True while the current thread is executing a ParallelForShards task on
// the shared pool; nested parallel sections then run inline instead of
// deadlocking on a full queue.
thread_local bool tls_in_shared_pool_task = false;

// Process-wide lazily-built pool for shard work. Spawning std::threads
// per call costs tens of microseconds — per ingest batch, that is the
// difference between "parallel matching wins" and "parallel matching
// loses". Intentionally leaked: workers park on the condition variable
// until process exit, avoiding static-destruction-order hazards.
ThreadPool& SharedShardPool() {
  static ThreadPool* pool = new ThreadPool(
      std::max<size_t>(2, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace

size_t SharedShardPoolWidth() { return SharedShardPool().num_threads(); }

size_t ShardParallelism(size_t count, size_t requested) {
  // Trivial budgets must not instantiate the shared pool: a
  // num_threads=1 topic (the 1-core reference config) should never
  // spawn hardware_concurrency workers it will never use.
  if (count <= 1 || requested <= 1) return 1;
  return std::min({requested, count, SharedShardPoolWidth() + 1});
}

void ParallelForShards(size_t count, size_t num_threads,
                       const std::function<void(size_t, size_t)>& fn) {
  if (count == 0) return;
  num_threads = ShardParallelism(count, num_threads);
  if (num_threads == 1 || tls_in_shared_pool_task) {
    fn(0, count);
    return;
  }
  const size_t base = count / num_threads;
  const size_t extra = count % num_threads;

  // Shards 1..n-1 go to the pool; the caller runs shard 0 itself and
  // then waits on a per-call completion count (the pool's global Wait
  // would also wait on unrelated submitters).
  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t remaining = num_threads - 1;
  ThreadPool& pool = SharedShardPool();
  size_t begin = base + (extra > 0 ? 1 : 0);  // shard 0's end
  const size_t first_end = begin;
  for (size_t t = 1; t < num_threads; ++t) {
    const size_t len = base + (t < extra ? 1 : 0);
    const size_t end = begin + len;
    pool.Submit([&fn, &done_mu, &done_cv, &remaining, begin, end] {
      tls_in_shared_pool_task = true;
      fn(begin, end);
      tls_in_shared_pool_task = false;
      // Notify while holding the lock: the caller's stack frame (and
      // with it done_cv itself) may be destroyed the instant the last
      // decrement becomes visible to its wait predicate.
      std::lock_guard<std::mutex> lock(done_mu);
      --remaining;
      done_cv.notify_one();
    });
    begin = end;
  }
  fn(0, first_end);
  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&remaining] { return remaining == 0; });
}

void ParallelFor(size_t count, size_t num_threads,
                 const std::function<void(size_t)>& fn) {
  ParallelForShards(count, num_threads, [&fn](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace bytebrain
