// Unit tests for the threading substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "threading/thread_pool.h"

namespace bytebrain {
namespace {

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, DestructionDrainsQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ScheduleFutureCompletesAfterTask) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  std::future<void> done = pool.Schedule([&ran] { ran = true; });
  done.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolTest, ScheduleTracksOneTaskNotTheWholePool) {
  // A single-thread pool runs FIFO: waiting on task 1's future must not
  // require the later long-running task 2 to finish (unlike Wait()).
  ThreadPool pool(1);
  std::promise<void> release_second;
  std::atomic<int> order{0};
  std::future<void> first = pool.Schedule([&order] { order = 1; });
  pool.Submit([&release_second, &order] {
    release_second.get_future().wait();
    order = 2;
  });
  first.get();
  EXPECT_EQ(order.load(), 1);  // second task still parked
  release_second.set_value();
  pool.Wait();
  EXPECT_EQ(order.load(), 2);
}

TEST(ThreadPoolTest, ScheduleCapturesTaskException) {
  ThreadPool pool(1);
  std::future<void> done =
      pool.Schedule([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(done.get(), std::runtime_error);
  // The worker survived the throwing task and keeps serving.
  std::atomic<bool> ran{false};
  pool.Schedule([&ran] { ran = true; }).get();
  EXPECT_TRUE(ran.load());
}

TEST(ParallelForTest, CoversAllIndicesExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(1000, 8, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ParallelFor(0, 4, [](size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelForTest, SingleThreadRunsInline) {
  std::thread::id main_id = std::this_thread::get_id();
  ParallelFor(10, 1, [main_id](size_t) {
    EXPECT_EQ(std::this_thread::get_id(), main_id);
  });
}

TEST(ParallelForTest, MoreThreadsThanWork) {
  std::atomic<int> count{0};
  ParallelFor(3, 16, [&count](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ParallelForShardsTest, ShardsArePartition) {
  constexpr size_t kCount = 1003;
  std::vector<std::atomic<int>> hits(kCount);
  ParallelForShards(kCount, 7, [&hits](size_t begin, size_t end) {
    ASSERT_LE(begin, end);
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  int total = 0;
  for (auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
    total += h.load();
  }
  EXPECT_EQ(total, static_cast<int>(kCount));
}

TEST(ParallelForTest, SumMatchesSequential) {
  constexpr size_t kN = 4096;
  std::vector<long> values(kN);
  std::iota(values.begin(), values.end(), 0);
  std::atomic<long> sum{0};
  ParallelFor(kN, 4, [&](size_t i) { sum.fetch_add(values[i]); });
  EXPECT_EQ(sum.load(), static_cast<long>(kN * (kN - 1) / 2));
}

}  // namespace
}  // namespace bytebrain
