// Integration tests for the cloud service layer: ingestion with online
// matching, training triggers, queries at adjustable precision, anomaly
// detection, and the topic catalog.
#include <gtest/gtest.h>

#include <set>

#include "datagen/generator.h"
#include "service/log_service.h"

namespace bytebrain {
namespace {

TopicConfig SmallConfig() {
  TopicConfig config;
  config.initial_train_records = 50;
  config.train_interval_records = 10000;
  config.train_volume_bytes = 64 * 1024 * 1024;
  config.num_threads = 2;
  return config;
}

std::string SshLog(int i) {
  return "Accepted password for user" + std::to_string(i % 5) +
         " from 10.0.0." + std::to_string(i % 9 + 1) + " port " +
         std::to_string(40000 + i) + " ssh2";
}

std::string DiskLog(int i) {
  return "Disk quota exceeded for volume vol" + std::to_string(i % 3);
}

TEST(ManagedTopicTest, FirstTrainingTriggersAtInitialThreshold) {
  ManagedTopic topic("t", SmallConfig());
  for (int i = 0; i < 49; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  EXPECT_FALSE(topic.trained());
  ASSERT_TRUE(topic.Ingest(SshLog(49)).ok());
  EXPECT_TRUE(topic.trained());
  EXPECT_EQ(topic.stats().trainings, 1u);
  EXPECT_GT(topic.stats().num_templates, 0u);
  EXPECT_GT(topic.stats().model_bytes, 0u);
}

TEST(ManagedTopicTest, RecordsCarryTemplateIdsAfterTraining) {
  ManagedTopic topic("t", SmallConfig());
  for (int i = 0; i < 120; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());
  // Records in the training window are (re)assigned; later arrivals are
  // matched online at ingestion.
  size_t with_template = 0;
  for (uint64_t seq = 0; seq < topic.size(); ++seq) {
    if (topic.ReadRecord(seq)->template_id != kInvalidTemplateId) {
      ++with_template;
    }
  }
  EXPECT_EQ(with_template, topic.size());
}

TEST(ManagedTopicTest, UnmatchedLogsAreAdoptedAsTemporaries) {
  ManagedTopic topic("t", SmallConfig());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());
  const auto before = topic.stats();
  ASSERT_TRUE(topic.Ingest("never seen shape with words only").ok());
  const auto after = topic.stats();
  EXPECT_EQ(after.adopted_templates, before.adopted_templates + 1);
  // The adopted template's metadata is published to the internal topic.
  EXPECT_GT(topic.TemplateCatalog().size(), 0u);
}

TEST(ManagedTopicTest, RetrainTriggersOnRecordInterval) {
  TopicConfig config = SmallConfig();
  config.train_interval_records = 100;
  // This test pins the exact trigger cadence; async mode coalesces
  // triggers that fire while a cycle is in flight (covered by
  // service_async_test), so use the strictly sequential path.
  config.async_training = false;
  ManagedTopic topic("t", config);
  for (int i = 0; i < 350; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  // 1 initial training (at 50) + retrains every 100 records after.
  EXPECT_GE(topic.stats().trainings, 3u);
}

TEST(ManagedTopicTest, QueryGroupsByTemplate) {
  ManagedTopic topic("t", SmallConfig());
  for (int i = 0; i < 80; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
    ASSERT_TRUE(topic.Ingest(DiskLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());
  auto groups = topic.Query(0.5);
  ASSERT_TRUE(groups.ok());
  ASSERT_GE(groups->size(), 2u);
  // Groups ordered by descending count and cover every record.
  uint64_t total = 0;
  uint64_t prev = UINT64_MAX;
  for (const auto& g : groups.value()) {
    EXPECT_LE(g.count, prev);
    prev = g.count;
    total += g.count;
    EXPECT_EQ(g.count, g.sequence_numbers.size());
  }
  EXPECT_EQ(total, topic.size());
}

TEST(ManagedTopicTest, LowerThresholdCoarsensGroups) {
  ManagedTopic topic("t", SmallConfig());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
    ASSERT_TRUE(topic.Ingest(DiskLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());
  auto coarse = topic.Query(0.05);
  auto fine = topic.Query(0.99);
  ASSERT_TRUE(coarse.ok());
  ASSERT_TRUE(fine.ok());
  EXPECT_LE(coarse->size(), fine->size());
}

TEST(ManagedTopicTest, QueryWindowRestrictsRecords) {
  ManagedTopic topic("t", SmallConfig());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  auto windowed = topic.Query(0.5, 10, 20);
  ASSERT_TRUE(windowed.ok());
  uint64_t total = 0;
  for (const auto& g : windowed.value()) {
    total += g.count;
    for (uint64_t seq : g.sequence_numbers) {
      EXPECT_GE(seq, 10u);
      EXPECT_LT(seq, 20u);
    }
  }
  EXPECT_EQ(total, 10u);
}

TEST(ManagedTopicTest, DetectAnomaliesFindsNewTemplateAndSpike) {
  ManagedTopic topic("t", SmallConfig());
  // Window 1: only ssh logs.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  const uint64_t w1_end = topic.size();
  // Window 2: ssh continues plus a brand-new error pattern burst.
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
    ASSERT_TRUE(
        topic.Ingest("FATAL replication lag on shard " + std::to_string(i % 4))
            .ok());
  }
  ASSERT_TRUE(topic.TrainNow().ok());
  auto anomalies =
      topic.DetectAnomalies(0, w1_end, w1_end, topic.size());
  ASSERT_TRUE(anomalies.ok());
  bool found_new = false;
  for (const auto& a : anomalies.value()) {
    if (a.is_new && a.template_text.find("FATAL") != std::string::npos) {
      found_new = true;
      EXPECT_GT(a.count_after, 0u);
    }
  }
  EXPECT_TRUE(found_new);
}

TEST(ManagedTopicTest, StatsAccumulate) {
  ManagedTopic topic("t", SmallConfig());
  uint64_t bytes = 0;
  for (int i = 0; i < 60; ++i) {
    std::string log = SshLog(i);
    bytes += log.size();
    ASSERT_TRUE(topic.Ingest(std::move(log)).ok());
  }
  const TopicStats stats = topic.stats();
  EXPECT_EQ(stats.ingested_records, 60u);
  EXPECT_EQ(stats.ingested_bytes, bytes);
  EXPECT_GT(stats.last_training_seconds, 0.0);
}

TEST(LogServiceTest, TopicCatalog) {
  LogService service;
  auto t1 = service.CreateTopic("alpha");
  ASSERT_TRUE(t1.ok());
  auto t2 = service.CreateTopic("beta");
  ASSERT_TRUE(t2.ok());
  EXPECT_TRUE(service.CreateTopic("alpha").status().IsAlreadyExists());
  auto got = service.GetTopic("alpha");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), t1.value());
  EXPECT_TRUE(service.GetTopic("gamma").status().IsNotFound());
  EXPECT_EQ(service.TopicNames(), (std::vector<std::string>{"alpha", "beta"}));
}

TEST(LogServiceTest, EndToEndOnGeneratedDataset) {
  LogService service;
  TopicConfig config = SmallConfig();
  config.initial_train_records = 500;
  auto topic = service.CreateTopic("hdfs", config);
  ASSERT_TRUE(topic.ok());
  DatasetGenerator gen(*FindDatasetSpec("HDFS"));
  Dataset ds = gen.GenerateLogHub();
  for (const auto& log : ds.logs) {
    ASSERT_TRUE(topic.value()->Ingest(log.text).ok());
  }
  EXPECT_TRUE(topic.value()->trained());
  auto groups = topic.value()->Query(0.5);
  ASSERT_TRUE(groups.ok());
  EXPECT_GT(groups->size(), 1u);
  EXPECT_LT(groups->size(), 200u);  // far fewer groups than logs
}

}  // namespace
}  // namespace bytebrain
