#include "baselines/logsig_logmine.h"

#include <algorithm>
#include <unordered_map>

#include "util/hashing.h"
#include "util/rng.h"

namespace bytebrain {

// ---------------------------------------------------------------------------
// LogSig
// ---------------------------------------------------------------------------

namespace {

// Ordered token-pair signature of one log (hashed pairs).
std::vector<uint64_t> PairSignature(const std::vector<std::string>& tokens) {
  std::vector<uint64_t> pairs;
  const size_t n = tokens.size();
  pairs.reserve(n * (n - 1) / 2);
  std::vector<uint64_t> hashes(n);
  for (size_t i = 0; i < n; ++i) hashes[i] = HashToken(tokens[i]);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      pairs.push_back(HashCombine(hashes[i], hashes[j]));
    }
  }
  return pairs;
}

}  // namespace

std::vector<uint64_t> LogSigParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  const size_t n = token_lists.size();
  std::vector<uint64_t> out(n, 0);
  if (n == 0) return out;

  // LogSig is quadratic-ish in practice; bound the local-search set and
  // assign the rest in one final pass (the paper reports LogSig failing
  // to finish on large datasets — the cap keeps our harness bounded).
  constexpr size_t kMaxSearchLogs = 20000;
  const size_t search_n = std::min(n, kMaxSearchLogs);

  std::vector<std::vector<uint64_t>> signatures(n);
  for (size_t i = 0; i < n; ++i) signatures[i] = PairSignature(token_lists[i]);

  Rng rng(seed_);
  std::vector<uint32_t> group(n, 0);
  for (size_t i = 0; i < search_n; ++i) {
    group[i] = static_cast<uint32_t>(rng.NextBelow(k_));
  }

  // Per-group pair frequency maps.
  std::vector<std::unordered_map<uint64_t, uint32_t>> freq(k_);
  std::vector<uint32_t> sizes(k_, 0);
  for (size_t i = 0; i < search_n; ++i) {
    for (uint64_t p : signatures[i]) freq[group[i]][p]++;
    sizes[group[i]]++;
  }

  auto score = [&](size_t log, uint32_t g) {
    if (sizes[g] == 0) return 0.0;
    double s = 0.0;
    const auto& f = freq[g];
    for (uint64_t p : signatures[log]) {
      auto it = f.find(p);
      if (it != f.end()) {
        const double ratio =
            static_cast<double>(it->second) / static_cast<double>(sizes[g]);
        s += ratio * ratio;  // the paper's potential uses squared ratios
      }
    }
    return s;
  };

  for (int iter = 0; iter < iterations_; ++iter) {
    bool moved = false;
    for (size_t i = 0; i < search_n; ++i) {
      uint32_t best_g = group[i];
      double best_score = score(i, best_g);
      for (uint32_t g = 0; g < k_; ++g) {
        if (g == group[i]) continue;
        const double s = score(i, g);
        if (s > best_score) {
          best_score = s;
          best_g = g;
        }
      }
      if (best_g != group[i]) {
        for (uint64_t p : signatures[i]) {
          freq[group[i]][p]--;
          freq[best_g][p]++;
        }
        sizes[group[i]]--;
        sizes[best_g]++;
        group[i] = best_g;
        moved = true;
      }
    }
    if (!moved) break;
  }

  // Assign any logs beyond the search cap to their best group.
  for (size_t i = search_n; i < n; ++i) {
    uint32_t best_g = 0;
    double best_score = -1.0;
    for (uint32_t g = 0; g < k_; ++g) {
      const double s = score(i, g);
      if (s > best_score) {
        best_score = s;
        best_g = g;
      }
    }
    group[i] = best_g;
  }

  for (size_t i = 0; i < n; ++i) out[i] = group[i] + 1;
  return out;
}

// ---------------------------------------------------------------------------
// LogMine
// ---------------------------------------------------------------------------

namespace {

// Normalized positional distance between equal-length token rows; rows of
// different lengths are maximally distant.
double LogMineDistance(const std::vector<std::string>& a,
                       const std::vector<std::string>& b) {
  if (a.size() != b.size()) return 1.0;
  if (a.empty()) return 0.0;
  size_t same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  return 1.0 - static_cast<double>(same) / static_cast<double>(a.size());
}

}  // namespace

std::vector<uint64_t> LogMineParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  const size_t n = token_lists.size();
  std::vector<uint64_t> out(n, 0);

  // Level 0: exact dedup.
  std::unordered_map<std::string, uint32_t> distinct_index;
  std::vector<uint32_t> rep_of(n);
  std::vector<uint32_t> distinct;  // representative log index
  for (uint32_t i = 0; i < n; ++i) {
    auto [it, inserted] = distinct_index.emplace(
        JoinKey(token_lists[i]), static_cast<uint32_t>(distinct.size()));
    if (inserted) distinct.push_back(i);
    rep_of[i] = it->second;
  }

  // Level 1: greedy leader clustering over distinct logs. The paper
  // reports LogMine failing on large corpora; bound the leader set.
  constexpr size_t kMaxLeaders = 6000;
  struct ClusterRep {
    std::vector<std::string> pattern;
    uint64_t id;
  };
  std::vector<ClusterRep> leaders;
  std::vector<uint64_t> cluster_of_distinct(distinct.size(), 0);
  uint64_t next_id = 1;
  for (size_t d = 0; d < distinct.size(); ++d) {
    const auto& tokens = token_lists[distinct[d]];
    ClusterRep* best = nullptr;
    double best_dist = max_distance_;
    for (ClusterRep& leader : leaders) {
      const double dist = LogMineDistance(leader.pattern, tokens);
      if (dist <= best_dist) {
        best_dist = dist;
        best = &leader;
      }
    }
    if (best != nullptr) {
      // Pattern generation: wildcard mismatching positions.
      for (size_t p = 0; p < tokens.size(); ++p) {
        if (best->pattern[p] != tokens[p]) {
          best->pattern[p] = std::string(kBaselineWildcard);
        }
      }
      cluster_of_distinct[d] = best->id;
    } else if (leaders.size() < kMaxLeaders) {
      leaders.push_back({tokens, next_id++});
      cluster_of_distinct[d] = leaders.back().id;
    } else {
      cluster_of_distinct[d] = next_id++;  // overflow: own cluster
    }
  }

  for (uint32_t i = 0; i < n; ++i) out[i] = cluster_of_distinct[rep_of[i]];
  return out;
}

}  // namespace bytebrain
