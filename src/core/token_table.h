// Token interning (the matcher's dictionary).
//
// Template matching compares tokens billions of times per day; comparing
// them as strings pays a length check plus a byte scan per position. The
// TokenTable maps every distinct template token to a dense uint32_t id so
// the online matcher compares single integers instead. Id 0 is reserved
// for the wildcard "*" and a sentinel id is returned for log tokens the
// table has never seen — such tokens can only ever match wildcard
// positions, which the id comparison gets right for free.
//
// Lookup is the per-token hot operation of the whole online path, so the
// index is a flat open-addressing table (power-of-two, linear probing)
// storing (hash, id); a probe is one cache line touch and the stored hash
// filters out almost all false candidates before the single string
// verification.
//
// Unlike the hash encoder (core/encoder.h) the table is NOT stateless:
// it lives with the model, grows with adopted templates, and is shared
// (by shared_ptr) with the matcher built from that model. Lookups are
// const and safe to run concurrently; interning mutates and must be
// serialized with lookups by the caller — the same contract as
// TemplateMatcher::Insert.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "util/hashing.h"

namespace bytebrain {

class TokenTable {
 public:
  /// Id of the wildcard token "*".
  static constexpr uint32_t kWildcardId = 0;
  /// Returned by Lookup for tokens never interned. Never equals a real id
  /// (the table caps out long before 2^32 - 1 entries).
  static constexpr uint32_t kUnknownId = 0xFFFFFFFFu;

  TokenTable();

  /// The table's internal hash. Word-at-a-time (8 bytes per multiply)
  /// rather than the byte-wise FNV of util/hashing.h: token lookup runs
  /// once per log token on the online hot path, and slot verification
  /// compares the stored hash and the full text anyway, so this trades
  /// avalanche perfection for scan speed.
  static uint64_t HashOf(std::string_view token) {
    uint64_t h = 0x9e3779b97f4a7c15ULL ^
                 (token.size() * 0xff51afd7ed558ccdULL);
    const char* p = token.data();
    size_t n = token.size();
    while (n >= 8) {
      uint64_t k;
      __builtin_memcpy(&k, p, 8);
      h = (h ^ k) * 0x2545f4914f6cdd1dULL;
      p += 8;
      n -= 8;
    }
    // Tail: two overlapping 4-byte loads (or a 3-byte gather) instead of
    // a byte loop — tokens are usually shorter than 8 chars, so this IS
    // the common case. Overlap double-counts middle bytes; harmless, the
    // length is already folded into the seed.
    uint64_t tail = 0;
    if (n >= 4) {
      uint32_t a, b;
      __builtin_memcpy(&a, p, 4);
      __builtin_memcpy(&b, p + n - 4, 4);
      tail = (static_cast<uint64_t>(a) << 32) | b;
    } else if (n > 0) {
      tail = (static_cast<uint64_t>(static_cast<uint8_t>(p[0])) << 16) |
             (static_cast<uint64_t>(static_cast<uint8_t>(p[n >> 1])) << 8) |
             static_cast<uint8_t>(p[n - 1]);
    }
    h = (h ^ tail) * 0x2545f4914f6cdd1dULL;
    // One xor-fold instead of a full finalizer: the table masks the LOW
    // bits for the slot index, and multiplication alone leaves them a
    // function of only the low input bits; folding the high half in is
    // enough because every probe verifies the full hash and text anyway.
    return h ^ (h >> 32);
  }

  /// Returns the id for `token`, interning it if new.
  uint32_t Intern(std::string_view token);

  /// Id for `token`, or kUnknownId when it was never interned.
  uint32_t Lookup(std::string_view token) const {
    return LookupHashed(HashOf(token), token);
  }

  /// Like Lookup but with the caller-computed HashOf(token) value.
  uint32_t LookupHashed(uint64_t hash, std::string_view token) const {
    size_t slot = static_cast<size_t>(hash) & mask_;
    while (true) {
      const Slot& s = slots_[slot];
      if (s.id == kUnknownId) return kUnknownId;
      if (s.hash == hash && s.text == token) return s.id;
      slot = (slot + 1) & mask_;
    }
  }

  /// Text for a known id; "" for kUnknownId / out-of-range ids.
  std::string_view text(uint32_t id) const {
    return id < texts_.size() ? std::string_view(texts_[id])
                              : std::string_view();
  }

  size_t size() const { return texts_.size(); }

  /// Approximate heap footprint (token bytes + per-entry overhead).
  uint64_t ApproxBytes() const { return bytes_; }

 private:
  struct Slot {
    uint64_t hash = 0;
    // View into texts_ (stable: deque elements never move), kept inline
    // so a probe verifies without chasing the deque's block table.
    std::string_view text;
    uint32_t id = kUnknownId;  // kUnknownId marks an empty slot
  };

  void Grow();

  // Backing storage is a deque so element addresses stay stable as the
  // table grows.
  std::deque<std::string> texts_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace bytebrain
