#include "core/matcher.h"

#include <algorithm>

#include "core/tokenizer.h"
#include "threading/thread_pool.h"

namespace bytebrain {

namespace {
// Candidate lists longer than this are split into a refinement trie on
// the next discriminating constant position. Small on purpose: most
// buckets index down to a handful of templates on the first key alone.
constexpr size_t kTrieLeafMax = 8;

constexpr uint64_t KeyOf(uint32_t pos, uint32_t token_id) {
  return (static_cast<uint64_t>(pos) << 32) | token_id;
}
}  // namespace

TemplateMatcher::TemplateMatcher(const TemplateModel& model,
                                 const VariableReplacer* replacer)
    : table_(model.token_table()), replacer_(replacer) {
  entries_.reserve(model.size());
  for (const TreeNode& n : model.nodes()) {
    entries_.push_back({n.id, n.saturation, n.token_ids});
  }
  // Store entries pre-sorted by descending saturation so entry-index
  // order encodes the stable tie-break; the most precise templates are
  // tried first (§4.8).
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.saturation > b.saturation;
                   });
  for (uint32_t i = 0; i < entries_.size(); ++i) IndexEntry(i);
}

void TemplateMatcher::Insert(const TreeNode& node) {
  const uint32_t idx = static_cast<uint32_t>(entries_.size());
  entries_.push_back({node.id, node.saturation, node.token_ids});
  IndexEntry(idx);
}

void TemplateMatcher::IndexEntry(uint32_t idx) {
  const Entry& e = entries_[idx];
  const size_t len = e.token_ids.size();
  if (len >= buckets_.size()) buckets_.resize(len + 1);
  if (buckets_[len] == nullptr) buckets_[len] = std::make_unique<Bucket>();
  Bucket& bucket = *buckets_[len];

  uint32_t first_const = TrieNode::kLeaf;
  for (uint32_t p = 0; p < e.token_ids.size(); ++p) {
    if (e.token_ids[p] != TokenTable::kWildcardId) {
      first_const = p;
      break;
    }
  }
  if (first_const == TrieNode::kLeaf) {
    auto& list = bucket.all_wildcard;
    list.insert(std::upper_bound(list.begin(), list.end(), idx,
                                 [this](uint32_t a, uint32_t b) {
                                   return TryBefore(a, b);
                                 }),
                idx);
    return;
  }

  const auto kp_it = std::lower_bound(bucket.key_positions.begin(),
                                      bucket.key_positions.end(), first_const);
  if (kp_it == bucket.key_positions.end() || *kp_it != first_const) {
    bucket.key_positions.insert(kp_it, first_const);
  }
  const uint64_t key = KeyOf(first_const, e.token_ids[first_const]);
  auto it = std::lower_bound(
      bucket.keyed.begin(), bucket.keyed.end(), key,
      [](const auto& kv, uint64_t k) { return kv.first < k; });
  if (it == bucket.keyed.end() || it->first != key) {
    it = bucket.keyed.emplace(it, key, std::make_unique<TrieNode>());
  }
  InsertIntoTrie(it->second.get(), idx);
}

void TemplateMatcher::InsertIntoTrie(TrieNode* node, uint32_t idx) {
  const Entry& e = entries_[idx];
  while (node->key_pos != TrieNode::kLeaf) {
    const uint32_t tid = e.token_ids[node->key_pos];
    if (tid == TokenTable::kWildcardId) {
      if (node->wild == nullptr) node->wild = std::make_unique<TrieNode>();
      node = node->wild.get();
    } else {
      auto& child = node->children[tid];
      if (child == nullptr) child = std::make_unique<TrieNode>();
      node = child.get();
    }
  }
  auto& list = node->entries;
  list.insert(std::upper_bound(list.begin(), list.end(), idx,
                               [this](uint32_t a, uint32_t b) {
                                 return TryBefore(a, b);
                               }),
              idx);
  if (list.size() > kTrieLeafMax) MaybeSplitLeaf(node);
}

void TemplateMatcher::MaybeSplitLeaf(TrieNode* node) {
  const std::vector<uint32_t>& members = node->entries;
  const size_t len = entries_[members.front()].token_ids.size();
  const size_t total = members.size();

  // Pick the position whose split minimizes the largest resulting group;
  // positions uniform across members (one group) cannot split.
  uint32_t best_pos = TrieNode::kLeaf;
  size_t best_largest = total;
  std::unordered_map<uint32_t, size_t> counts;
  for (uint32_t pos = 0; pos < len; ++pos) {
    counts.clear();
    size_t wild_count = 0;
    for (uint32_t m : members) {
      const uint32_t tid = entries_[m].token_ids[pos];
      if (tid == TokenTable::kWildcardId) {
        ++wild_count;
      } else {
        ++counts[tid];
      }
    }
    const size_t groups = counts.size() + (wild_count > 0 ? 1 : 0);
    if (groups < 2) continue;
    size_t largest = wild_count;
    for (const auto& [tid, c] : counts) largest = std::max(largest, c);
    if (largest < best_largest) {
      best_largest = largest;
      best_pos = pos;
    }
  }
  if (best_pos == TrieNode::kLeaf) return;  // no discriminating position

  std::vector<uint32_t> moved = std::move(node->entries);
  node->entries.clear();
  node->key_pos = best_pos;
  // Re-inserting in list order preserves the sorted try order in every
  // child leaf.
  for (uint32_t m : moved) {
    const uint32_t tid = entries_[m].token_ids[best_pos];
    TrieNode* dst;
    if (tid == TokenTable::kWildcardId) {
      if (node->wild == nullptr) node->wild = std::make_unique<TrieNode>();
      dst = node->wild.get();
    } else {
      auto& child = node->children[tid];
      if (child == nullptr) child = std::make_unique<TrieNode>();
      dst = child.get();
    }
    dst->entries.push_back(m);
  }
  for (auto& [tid, child] : node->children) {
    if (child->entries.size() > kTrieLeafMax) MaybeSplitLeaf(child.get());
  }
  if (node->wild != nullptr && node->wild->entries.size() > kTrieLeafMax) {
    MaybeSplitLeaf(node->wild.get());
  }
}

void TemplateMatcher::CollectCandidates(
    const TrieNode& node, const std::vector<uint32_t>& ids,
    std::vector<const std::vector<uint32_t>*>* lists) const {
  if (node.key_pos == TrieNode::kLeaf) {
    if (!node.entries.empty()) lists->push_back(&node.entries);
    return;
  }
  const auto it = node.children.find(ids[node.key_pos]);
  if (it != node.children.end()) CollectCandidates(*it->second, ids, lists);
  if (node.wild != nullptr) CollectCandidates(*node.wild, ids, lists);
}

bool TemplateMatcher::Matches(const Entry& e,
                              const std::vector<uint32_t>& ids) const {
  const uint32_t* t = e.token_ids.data();
  const uint32_t* l = ids.data();
  const size_t n = ids.size();
  for (size_t i = 0; i < n; ++i) {
    if (t[i] != TokenTable::kWildcardId && t[i] != l[i]) return false;
  }
  return true;
}

TemplateId TemplateMatcher::MatchIds(const std::vector<uint32_t>& ids,
                                     MatchScratch* scratch) const {
  if (ids.size() >= buckets_.size() || buckets_[ids.size()] == nullptr) {
    return kInvalidTemplateId;
  }
  const Bucket& bucket = *buckets_[ids.size()];

  auto& lists = scratch->lists;
  lists.clear();
  for (uint32_t kp : bucket.key_positions) {
    const uint64_t key = KeyOf(kp, ids[kp]);
    const auto it = std::lower_bound(
        bucket.keyed.begin(), bucket.keyed.end(), key,
        [](const auto& kv, uint64_t k) { return kv.first < k; });
    if (it != bucket.keyed.end() && it->first == key) {
      CollectCandidates(*it->second, ids, &lists);
    }
  }
  if (!bucket.all_wildcard.empty()) lists.push_back(&bucket.all_wildcard);

  if (lists.empty()) return kInvalidTemplateId;
  if (lists.size() == 1) {
    for (uint32_t idx : *lists[0]) {
      if (Matches(entries_[idx], ids)) return entries_[idx].id;
    }
    return kInvalidTemplateId;
  }

  // K-way merge across the (few) candidate lists so the overall try order
  // stays descending-saturation with stable ties.
  auto& cursors = scratch->cursors;
  cursors.assign(lists.size(), 0);
  while (true) {
    size_t best_list = lists.size();
    uint32_t best_idx = 0;
    for (size_t li = 0; li < lists.size(); ++li) {
      if (cursors[li] >= lists[li]->size()) continue;
      const uint32_t idx = (*lists[li])[cursors[li]];
      if (best_list == lists.size() || TryBefore(idx, best_idx)) {
        best_list = li;
        best_idx = idx;
      }
    }
    if (best_list == lists.size()) return kInvalidTemplateId;
    ++cursors[best_list];
    if (Matches(entries_[best_idx], ids)) return entries_[best_idx].id;
  }
}

TemplateId TemplateMatcher::Match(std::string_view raw_log,
                                  MatchScratch* scratch) const {
  scratch->ids.clear();
  if (replacer_->fused_fast_path()) {
    // One pass over the raw text: replace + tokenize + hash + intern
    // lookup, with no replaced-text copy.
    TokenizeReplacedIdsInto(raw_log, *table_, &scratch->replaced,
                            &scratch->ids);
  } else {
    replacer_->ReplaceInto(raw_log, &scratch->replaced);
    scratch->tokens.clear();
    TokenizeDefaultInto(scratch->replaced, &scratch->tokens);
    scratch->ids.reserve(scratch->tokens.size());
    for (std::string_view tok : scratch->tokens) {
      scratch->ids.push_back(table_->Lookup(tok));
    }
  }
  return MatchIds(scratch->ids, scratch);
}

TemplateId TemplateMatcher::Match(std::string_view raw_log) const {
  thread_local MatchScratch scratch;
  return Match(raw_log, &scratch);
}

namespace {

// Shared by the string and string_view MatchAll overloads; Logs only
// needs operator[] convertible to string_view and size().
template <typename Logs>
std::vector<TemplateId> MatchAllImpl(const TemplateMatcher& matcher,
                                     const Logs& raw_logs, int num_threads) {
  std::vector<TemplateId> out(raw_logs.size(), kInvalidTemplateId);
  ParallelForShards(raw_logs.size(),
                    static_cast<size_t>(std::max(1, num_threads)),
                    [&](size_t begin, size_t end) {
                      TemplateMatcher::MatchScratch scratch;
                      for (size_t i = begin; i < end; ++i) {
                        out[i] = matcher.Match(raw_logs[i], &scratch);
                      }
                    });
  return out;
}

}  // namespace

std::vector<TemplateId> TemplateMatcher::MatchAll(
    const std::vector<std::string>& raw_logs, int num_threads) const {
  return MatchAllImpl(*this, raw_logs, num_threads);
}

std::vector<TemplateId> TemplateMatcher::MatchAll(
    const std::vector<std::string_view>& raw_logs, int num_threads) const {
  return MatchAllImpl(*this, raw_logs, num_threads);
}

}  // namespace bytebrain
