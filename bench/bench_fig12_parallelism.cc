// Fig. 12: throughput vs degree of parallelism on the LogHub-2.0
// datasets (sorted by size in the paper). Gains plateau beyond the
// machine's core count — this host has few cores, so the plateau arrives
// early; the scaling trend below the core count is the signal.
#include <thread>

#include "bench/bench_common.h"

using namespace bytebrain;

int main() {
  PrintBenchHeader("Fig. 12 — throughput vs parallelism", "paper Fig. 12");
  std::printf("hardware_concurrency: %u\n\n",
              std::thread::hardware_concurrency());

  const int degrees[] = {1, 2, 4, 8, 16};
  const char* panel[] = {"Apache", "Zookeeper", "HealthApp", "BGL", "HDFS",
                         "Spark", "Thunderbird"};

  std::vector<std::string> headers = {"Dataset"};
  std::vector<int> widths = {13};
  for (int d : degrees) {
    headers.push_back("p=" + std::to_string(d));
    widths.push_back(12);
  }
  TablePrinter table(headers, widths);
  table.PrintHeader();

  for (const char* name : panel) {
    Dataset ds = ScaledLogHub2(*FindDatasetSpec(name));
    std::vector<std::string> row = {name};
    for (int d : degrees) {
      ByteBrainAdapterConfig config = ByteBrainDefaultConfig();
      config.display_name = "ByteBrain";
      config.num_threads = d;
      ByteBrainAdapter adapter(config);
      RunResult r = RunOn(&adapter, ds);
      row.push_back(TablePrinter::Sci(r.Throughput()));
    }
    table.PrintRow(row);
  }
  std::printf(
      "\nShape check (paper Fig. 12): throughput rises with parallelism up\n"
      "to the hardware limit, with larger datasets benefiting more;\n"
      "beyond the core count additional threads give no further gain.\n");
  return 0;
}
