#include "core/variable_replacer.h"

#include <cctype>

namespace bytebrain {

namespace {

inline bool IsDigit(char c) { return c >= '0' && c <= '9'; }
inline bool IsHex(char c) {
  return IsDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}
inline bool IsWordChar(char c) {
  return IsDigit(c) || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         c == '_';
}

// How many consecutive digits start at text[i].
inline size_t DigitRun(std::string_view text, size_t i) {
  size_t n = 0;
  while (i + n < text.size() && IsDigit(text[i + n])) ++n;
  return n;
}

inline size_t HexRun(std::string_view text, size_t i) {
  size_t n = 0;
  while (i + n < text.size() && IsHex(text[i + n])) ++n;
  return n;
}

// "2026-06-10 12:30:00,123" / "2026-06-10T12:30:00.123" / bare date.
size_t MatchIsoTimestamp(std::string_view t, size_t i) {
  if (DigitRun(t, i) != 4) return 0;
  size_t p = i + 4;
  if (p >= t.size() || (t[p] != '-' && t[p] != '/' && t[p] != '.')) return 0;
  const char sep = t[p];
  ++p;
  if (DigitRun(t, p) != 2) return 0;
  p += 2;
  if (p >= t.size() || t[p] != sep) return 0;
  ++p;
  if (DigitRun(t, p) != 2) return 0;
  p += 2;
  // Optional time part.
  if (p < t.size() && (t[p] == ' ' || t[p] == 'T')) {
    size_t q = p + 1;
    if (DigitRun(t, q) == 2 && q + 2 < t.size() && t[q + 2] == ':' &&
        DigitRun(t, q + 3) == 2 && q + 5 < t.size() && t[q + 5] == ':' &&
        DigitRun(t, q + 6) == 2) {
      q += 8;
      // Optional fractional part ",123" or ".123456".
      if (q < t.size() && (t[q] == ',' || t[q] == '.')) {
        const size_t frac = DigitRun(t, q + 1);
        if (frac > 0) q += 1 + frac;
      }
      return q - i;
    }
  }
  return p - i;
}

// Syslog-style date: "Jun 10" / "Jun  3" (month name + day). The clock
// component that usually follows is caught by MatchClockTime.
size_t MatchSyslogDate(std::string_view t, size_t i) {
  // First-letter dispatch instead of a 12-way string compare: this runs
  // for every capitalized token in every log.
  if (i + 3 > t.size()) return 0;
  const char a = t[i + 1];
  const char b = t[i + 2];
  bool is_month = false;
  switch (t[i]) {
    case 'J':
      is_month = (a == 'a' && b == 'n') || (a == 'u' && (b == 'n' || b == 'l'));
      break;
    case 'F':
      is_month = a == 'e' && b == 'b';
      break;
    case 'M':
      is_month = a == 'a' && (b == 'r' || b == 'y');
      break;
    case 'A':
      is_month = (a == 'p' && b == 'r') || (a == 'u' && b == 'g');
      break;
    case 'S':
      is_month = a == 'e' && b == 'p';
      break;
    case 'O':
      is_month = a == 'c' && b == 't';
      break;
    case 'N':
      is_month = a == 'o' && b == 'v';
      break;
    case 'D':
      is_month = a == 'e' && b == 'c';
      break;
    default:
      break;
  }
  if (!is_month) return 0;
  size_t p = i + 3;
  size_t spaces = 0;
  while (p < t.size() && t[p] == ' ' && spaces < 2) {
    ++p;
    ++spaces;
  }
  if (spaces == 0) return 0;
  const size_t d = DigitRun(t, p);
  if (d < 1 || d > 2) return 0;
  return p + d - i;
}

// "12:30:00" or "12:30:00.123".
size_t MatchClockTime(std::string_view t, size_t i) {
  if (DigitRun(t, i) != 2) return 0;
  if (i + 2 >= t.size() || t[i + 2] != ':') return 0;
  if (DigitRun(t, i + 3) != 2) return 0;
  if (i + 5 >= t.size() || t[i + 5] != ':') return 0;
  if (DigitRun(t, i + 6) != 2) return 0;
  size_t p = i + 8;
  if (p < t.size() && (t[p] == '.' || t[p] == ',')) {
    const size_t frac = DigitRun(t, p + 1);
    if (frac > 0) p += 1 + frac;
  }
  return p - i;
}

// "10.0.4.18" with optional ":50010". Octets are 1-3 digits.
size_t MatchIpv4(std::string_view t, size_t i) {
  size_t p = i;
  for (int octet = 0; octet < 4; ++octet) {
    const size_t d = DigitRun(t, p);
    if (d < 1 || d > 3) return 0;
    p += d;
    if (octet < 3) {
      if (p >= t.size() || t[p] != '.') return 0;
      ++p;
    }
  }
  // Must not continue with ".digit" (would be a dotted version string).
  if (p < t.size() && t[p] == '.' && p + 1 < t.size() && IsDigit(t[p + 1])) {
    return 0;
  }
  // Optional ":port".
  if (p < t.size() && t[p] == ':') {
    const size_t d = DigitRun(t, p + 1);
    if (d >= 1 && d <= 5) p += 1 + d;
  }
  return p - i;
}

// UUID ("123e4567-e89b-12d3-a456-426614174000", 8-4-4-4-12 hex) or MD5
// digest (exactly 32 hex chars). Combined so the leading hex run is
// scanned once: a 32-run is an MD5, an 8-run followed by '-' may open a
// UUID, anything else matches neither.
size_t MatchHexDigest(std::string_view t, size_t i) {
  const size_t run = HexRun(t, i);
  if (run == 32) return 32;
  if (run != 8) return 0;
  static constexpr size_t kTailGroups[] = {4, 4, 4, 12};
  size_t p = i + 8;
  for (size_t g = 0; g < 4; ++g) {
    if (p >= t.size() || t[p] != '-') return 0;
    ++p;
    if (HexRun(t, p) != kTailGroups[g]) return 0;
    p += kTailGroups[g];
  }
  return p - i;
}

// "0xdeadbeef".
size_t MatchHexLiteral(std::string_view t, size_t i) {
  if (t[i] != '0' || i + 1 >= t.size() || (t[i + 1] != 'x' && t[i + 1] != 'X')) {
    return 0;
  }
  const size_t run = HexRun(t, i + 2);
  if (run == 0) return 0;
  return 2 + run;
}

}  // namespace

size_t MatchBuiltinVariable(std::string_view text, size_t pos) {
  const char c = text[pos];
  // Word-boundary on the left: a variable cannot start in the middle of a
  // word ("abc123" must stay one token).
  if (pos > 0 && IsWordChar(text[pos - 1])) return 0;
  size_t len = 0;
  if (IsDigit(c)) {
    // Dispatch on the leading digit-run length instead of trying every
    // recognizer: ISO timestamps need exactly 4 leading digits, clock
    // times exactly 2, IPv4 octets 1-3, hex literals a lone '0'. Runs of
    // other lengths can only be hex digests, handled by the fallthrough.
    const size_t run = DigitRun(text, pos);
    if (run == 4) {
      len = MatchIsoTimestamp(text, pos);
    } else if (run == 2) {
      if ((len = MatchClockTime(text, pos)) == 0) {
        len = MatchIpv4(text, pos);
      }
    } else if (run <= 3) {  // run == 1 or run == 3
      if ((len = MatchIpv4(text, pos)) == 0 && run == 1) {
        len = MatchHexLiteral(text, pos);
      }
    }
  } else if (c >= 'A' && c <= 'Z') {
    len = MatchSyslogDate(text, pos);
  }
  if (len == 0 && IsHex(c)) {
    len = MatchHexDigest(text, pos);
  }
  if (len == 0) return 0;
  // Word-boundary on the right.
  if (pos + len < text.size() && IsWordChar(text[pos + len])) return 0;
  return len;
}

VariableReplacer VariableReplacer::Default() {
  VariableReplacer r;
  r.builtins_enabled_ = true;
  return r;
}

VariableReplacer VariableReplacer::None() { return VariableReplacer(); }

Status VariableReplacer::AddRule(std::string name, std::string_view pattern) {
  auto re = Regex::Compile(pattern);
  if (!re.ok()) return re.status();
  user_rules_.push_back({std::move(name), std::move(re).value()});
  return Status::OK();
}

void VariableReplacer::set_use_fast_builtins(bool fast) {
  fast_builtins_ = fast;
  if (!fast && builtins_enabled_ && builtin_regexes_.empty()) {
    // Equivalent patterns for the built-in kinds, run on the NFA engine.
    static constexpr struct {
      const char* name;
      const char* pattern;
    } kPatterns[] = {
        {"iso_ts",
         "\\d{4}-\\d{2}-\\d{2}([ T]\\d{2}:\\d{2}:\\d{2}([.,]\\d+)?)?"},
        {"syslog_date",
         "(Jan|Feb|Mar|Apr|May|Jun|Jul|Aug|Sep|Oct|Nov|Dec) {1,2}\\d{1,2}"},
        {"clock", "\\d{2}:\\d{2}:\\d{2}([.,]\\d+)?"},
        {"ipv4", "\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}(:\\d{1,5})?"},
        {"uuid",
         "[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-"
         "[0-9a-fA-F]{12}"},
        {"md5", "[0-9a-fA-F]{32}"},
        {"hex", "0[xX][0-9a-fA-F]+"},
    };
    for (const auto& p : kPatterns) {
      auto re = Regex::Compile(p.pattern);
      // Built-in patterns are static and known-valid.
      builtin_regexes_.push_back({p.name, std::move(re).value()});
    }
  }
}

void VariableReplacer::ReplaceInto(std::string_view text,
                                   std::string* out) const {
  out->clear();
  if (!builtins_enabled_ && user_rules_.empty()) {
    out->assign(text);
    return;
  }
  std::string buffer;
  std::string_view current = text;

  // User rules first (they are more specific by construction), each a full
  // ReplaceAll pass on the engine.
  for (const UserRule& rule : user_rules_) {
    buffer = rule.regex.ReplaceAll(current, kWildcard);
    std::swap(buffer, *out);
    current = *out;
  }

  // With builtins disabled, user rules (non-empty here — the early
  // return above handled the no-rules case) already wrote the result.
  if (!builtins_enabled_) return;

  if (!fast_builtins_) {
    std::string tmp(current);
    for (const UserRule& rule : builtin_regexes_) {
      tmp = rule.regex.ReplaceAll(tmp, kWildcard);
    }
    out->assign(tmp);
    return;
  }

  // Fast path: single scan, longest built-in recognizer at each offset.
  // When no user rule ran, `current` still aliases the input text and the
  // output buffer is free to be written directly; otherwise `current`
  // aliases *out and a staging buffer is required.
  std::string* target = &buffer;
  if (user_rules_.empty()) {
    out->clear();
    target = out;
  } else {
    buffer.clear();
  }
  target->reserve(current.size());
  size_t i = 0;
  const size_t n = current.size();
  while (i < n) {
    const size_t len = MatchBuiltinVariable(current, i);
    if (len > 0) {
      target->append(kWildcard);
      i += len;
    } else {
      target->push_back(current[i]);
      ++i;
    }
  }
  if (target != out) out->assign(buffer);
}

std::string VariableReplacer::Replace(std::string_view text) const {
  std::string out;
  ReplaceInto(text, &out);
  return out;
}

}  // namespace bytebrain
