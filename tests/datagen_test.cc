// Unit tests for the synthetic dataset generator.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <unordered_map>

#include "datagen/dataset_spec.h"
#include "datagen/generator.h"

namespace bytebrain {
namespace {

TEST(DatasetSpecTest, AllSixteenTable1Rows) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 16u);
  EXPECT_EQ(specs.front().name, "HealthApp");
  EXPECT_EQ(specs.back().name, "Spark");
}

TEST(DatasetSpecTest, Table1TemplateCounts) {
  // Spot-check against Table 1 of the paper.
  EXPECT_EQ(FindDatasetSpec("HDFS")->loghub_templates, 14u);
  EXPECT_EQ(FindDatasetSpec("HDFS")->loghub2_templates, 46u);
  EXPECT_EQ(FindDatasetSpec("Mac")->loghub_templates, 341u);
  EXPECT_EQ(FindDatasetSpec("Thunderbird")->loghub2_templates, 1241u);
  EXPECT_EQ(FindDatasetSpec("Proxifier")->loghub_templates, 8u);
  EXPECT_EQ(FindDatasetSpec("Apache")->loghub_templates, 6u);
}

TEST(DatasetSpecTest, LogHub2ExcludesAndroidAndWindows) {
  auto specs = LogHub2Specs();
  EXPECT_EQ(specs.size(), 14u);
  for (const auto& s : specs) {
    EXPECT_NE(s.name, "Android");
    EXPECT_NE(s.name, "Windows");
    EXPECT_GT(s.loghub2_logs, 0u);
  }
}

TEST(DatasetSpecTest, UnknownNameReturnsNull) {
  EXPECT_EQ(FindDatasetSpec("NoSuchDataset"), nullptr);
}

TEST(GeneratorTest, LogHubCorpusShape) {
  DatasetGenerator gen(*FindDatasetSpec("Zookeeper"));
  Dataset ds = gen.GenerateLogHub();
  EXPECT_EQ(ds.logs.size(), 2000u);
  EXPECT_EQ(ds.num_templates, 50u);
  for (const auto& log : ds.logs) {
    EXPECT_FALSE(log.text.empty());
    EXPECT_LT(log.gt_template, ds.num_templates);
  }
}

TEST(GeneratorTest, DeterministicAcrossRuns) {
  DatasetGenerator gen(*FindDatasetSpec("HDFS"));
  Dataset a = gen.GenerateLogHub();
  Dataset b = gen.GenerateLogHub();
  ASSERT_EQ(a.logs.size(), b.logs.size());
  for (size_t i = 0; i < a.logs.size(); ++i) {
    EXPECT_EQ(a.logs[i].text, b.logs[i].text);
    EXPECT_EQ(a.logs[i].gt_template, b.logs[i].gt_template);
  }
}

TEST(GeneratorTest, AllTemplatesRepresentedInLargeSample) {
  // With Zipf sampling over 2000 draws and 8 templates (Proxifier), every
  // template should appear.
  DatasetGenerator gen(*FindDatasetSpec("Proxifier"));
  Dataset ds = gen.GenerateLogHub();
  std::set<uint32_t> seen;
  for (const auto& log : ds.logs) seen.insert(log.gt_template);
  EXPECT_EQ(seen.size(), 8u);
}

TEST(GeneratorTest, ZipfSkewProducesDuplicates) {
  // Fig. 4 of the paper: log corpora are highly duplicated. Verify the
  // generated corpus has far fewer distinct texts than logs.
  DatasetGenerator gen(*FindDatasetSpec("Apache"));
  GenOptions opts;
  opts.num_logs = 20000;
  opts.num_templates = 29;
  Dataset ds = gen.Generate(opts);
  std::set<std::string> distinct;
  for (const auto& log : ds.logs) distinct.insert(log.text);
  EXPECT_LT(distinct.size(), ds.logs.size() / 2);
}

TEST(GeneratorTest, SameTemplateLogsShareShape) {
  // Logs of one template must tokenize to the same prefix word. (Weak
  // structural check; full fidelity is exercised by parser tests.)
  DatasetGenerator gen(*FindDatasetSpec("OpenSSH"));
  Dataset ds = gen.GenerateLogHub();
  std::unordered_map<uint32_t, std::string> first_word;
  for (const auto& log : ds.logs) {
    std::string word = log.text.substr(0, log.text.find(' '));
    auto [it, inserted] = first_word.emplace(log.gt_template, word);
    if (!inserted) {
      EXPECT_EQ(it->second, word) << "template " << log.gt_template;
    }
  }
}

TEST(GeneratorTest, PreambleStylesRender) {
  Rng rng(1);
  for (PreambleStyle style :
       {PreambleStyle::kSyslog, PreambleStyle::kBracketed, PreambleStyle::kIso,
        PreambleStyle::kAndroid, PreambleStyle::kBgl}) {
    std::string p = RenderPreamble(style, &rng);
    EXPECT_FALSE(p.empty());
  }
  EXPECT_TRUE(RenderPreamble(PreambleStyle::kPlain, &rng).empty());
}

TEST(GeneratorTest, PreambleOptionChangesText) {
  DatasetGenerator gen(*FindDatasetSpec("Linux"));
  GenOptions with;
  with.num_logs = 10;
  with.num_templates = 5;
  with.include_preamble = true;
  GenOptions without = with;
  without.include_preamble = false;
  Dataset a = gen.Generate(with);
  Dataset b = gen.Generate(without);
  // Preambled logs must be strictly longer on average.
  EXPECT_GT(a.TextBytes(), b.TextBytes());
}

TEST(GeneratorTest, LogHub2ScaleControlsSize) {
  DatasetGenerator gen(*FindDatasetSpec("Zookeeper"));
  Dataset small = gen.GenerateLogHub2(0.001);
  Dataset bigger = gen.GenerateLogHub2(0.01);
  EXPECT_LT(small.logs.size(), bigger.logs.size());
  EXPECT_EQ(small.num_templates, 89u);
  // 0.001 * 74273 ~ 74 logs.
  EXPECT_NEAR(static_cast<double>(small.logs.size()), 74.0, 2.0);
}

TEST(GeneratorTest, AndroidContainsLockTemplates) {
  // The Table-4 drill-down workload must exist in the Android corpus.
  DatasetGenerator gen(*FindDatasetSpec("Android"));
  Dataset ds = gen.GenerateLogHub();
  bool saw_acquire = false;
  bool saw_release = false;
  for (const auto& log : ds.logs) {
    if (log.text.rfind("acquire lock=", 0) == 0) saw_acquire = true;
    if (log.text.rfind("release lock=", 0) == 0) saw_release = true;
  }
  EXPECT_TRUE(saw_acquire);
  EXPECT_TRUE(saw_release);
}

TEST(GeneratorTest, TextBytesMatchesSum) {
  DatasetGenerator gen(*FindDatasetSpec("HPC"));
  GenOptions opts;
  opts.num_logs = 100;
  opts.num_templates = 10;
  Dataset ds = gen.Generate(opts);
  uint64_t manual = 0;
  for (const auto& log : ds.logs) manual += log.text.size();
  EXPECT_EQ(ds.TextBytes(), manual);
}

}  // namespace
}  // namespace bytebrain
