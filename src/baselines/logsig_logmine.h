// Search/clustering baselines:
//
//  * LogSig (Tang et al., CIKM 2011): partitions logs into a REQUIRED
//    number k of categories by local search over ordered token-pair
//    signatures — each log moves to the group where its pairs are most
//    over-represented. The paper highlights its need for a precise k.
//  * LogMine (Hamooni et al., CIKM 2016): level-wise friends-of-friends
//    clustering — greedy leader clustering under a normalized token
//    distance, then pattern generation by wildcarding mismatches. Its
//    iterative merge cost is the paper's example of clustering overhead.
#pragma once

#include <string>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

class LogSigParser : public LogParserInterface {
 public:
  /// `k`: number of categories (LogSig must be told; the harness passes
  /// the dataset's ground-truth template count, as the toolkit does).
  explicit LogSigParser(size_t k, int iterations = 5, uint64_t seed = 17)
      : k_(std::max<size_t>(1, k)), iterations_(iterations), seed_(seed) {}

  std::string name() const override { return "LogSig"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  size_t k_;
  int iterations_;
  uint64_t seed_;
};

class LogMineParser : public LogParserInterface {
 public:
  explicit LogMineParser(double max_distance = 0.3)
      : max_distance_(max_distance) {}

  std::string name() const override { return "LogMine"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  double max_distance_;
};

}  // namespace bytebrain
