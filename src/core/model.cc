#include "core/model.h"

#include <algorithm>

#include "core/variable_replacer.h"
#include "util/serde.h"

namespace bytebrain {

namespace {
constexpr uint64_t kModelMagic = 0x4242'4d4f'4445'4c31ULL;  // "BBMODEL1"
}  // namespace

double TemplateSimilarity(const std::vector<std::string>& a,
                          const std::vector<std::string>& b) {
  if (a.size() != b.size() || a.empty()) return a.empty() && b.empty() ? 1.0 : 0.0;
  double score = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) {
      score += 1.0;
    } else if (a[i] == kWildcard || b[i] == kWildcard) {
      score += 0.5;
    }
  }
  return score / static_cast<double>(a.size());
}

TemplateId TemplateModel::AddNode(TemplateId parent, double saturation,
                                  std::vector<std::string> tokens,
                                  uint64_t support, bool temporary) {
  TreeNode node;
  node.id = nodes_.size() + 1;
  node.parent = parent;
  node.saturation = saturation;
  node.tokens = std::move(tokens);
  node.token_ids.reserve(node.tokens.size());
  for (const std::string& t : node.tokens) {
    node.token_ids.push_back(token_table_->Intern(t));
  }
  node.support = support;
  node.temporary = temporary;
  if (parent == kInvalidTemplateId) {
    roots_.push_back(node.id);
  } else {
    TreeNode* p = mutable_node(parent);
    if (p != nullptr) p->children.push_back(node.id);
  }
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

const TreeNode* TemplateModel::node(TemplateId id) const {
  if (id == kInvalidTemplateId || id > nodes_.size()) return nullptr;
  return &nodes_[id - 1];
}

TreeNode* TemplateModel::mutable_node(TemplateId id) {
  if (id == kInvalidTemplateId || id > nodes_.size()) return nullptr;
  return &nodes_[id - 1];
}

Result<TemplateId> TemplateModel::ResolveAtThreshold(TemplateId id,
                                                     double threshold) const {
  const TreeNode* cur = node(id);
  if (cur == nullptr) {
    return Status::NotFound("template id " + std::to_string(id));
  }
  TemplateId best = id;
  // Walk upward; every ancestor that still meets the threshold is coarser
  // and therefore preferred.
  while (cur != nullptr && cur->parent != kInvalidTemplateId) {
    const TreeNode* parent = node(cur->parent);
    if (parent == nullptr || parent->saturation < threshold) break;
    best = parent->id;
    cur = parent;
  }
  // Root case: a root meeting the threshold is the coarsest option.
  if (cur != nullptr && cur->parent == kInvalidTemplateId &&
      cur->saturation >= threshold) {
    best = cur->id;
  }
  return best;
}

std::string TemplateModel::TemplateText(TemplateId id) const {
  const TreeNode* n = node(id);
  if (n == nullptr) return "";
  std::string out;
  for (size_t i = 0; i < n->tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += n->tokens[i];
  }
  return out;
}

std::string TemplateModel::MergedWildcardText(TemplateId id) const {
  const TreeNode* n = node(id);
  if (n == nullptr) return "";
  std::string out;
  bool last_was_wildcard = false;
  bool first = true;
  for (const std::string& tok : n->tokens) {
    const bool is_wildcard = tok == kWildcard;
    if (is_wildcard && last_was_wildcard) continue;  // collapse runs
    if (!first) out += ' ';
    out += tok;
    first = false;
    last_was_wildcard = is_wildcard;
  }
  return out;
}

TemplateModel TemplateModel::Clone() const {
  TemplateModel copy;
  copy.roots_ = roots_;
  copy.nodes_ = nodes_;
  // Re-intern into the copy's own table. Interning in node order assigns
  // ids in first-encounter order, which is exactly how the copied nodes
  // reference them; the clone is self-consistent even though its ids need
  // not equal the source table's (the source may hold tokens of dropped
  // temporaries that no surviving node references).
  for (TreeNode& n : copy.nodes_) {
    n.token_ids.clear();
    n.token_ids.reserve(n.tokens.size());
    for (const std::string& t : n.tokens) {
      n.token_ids.push_back(copy.token_table_->Intern(t));
    }
  }
  return copy;
}

TemplateId TemplateModel::AdoptTemporary(std::vector<std::string> tokens) {
  // Unmatched logs become fully-precise standalone templates until the
  // next training cycle reconsiders them (§3).
  return AddNode(kInvalidTemplateId, 1.0, std::move(tokens), 1,
                 /*temporary=*/true);
}

void TemplateModel::DropTemporaries() {
  // Temporaries are always roots with no children; rebuild without them.
  std::vector<TreeNode> kept;
  std::vector<TemplateId> remap(nodes_.size() + 1, kInvalidTemplateId);
  for (const TreeNode& n : nodes_) {
    if (n.temporary) continue;
    remap[n.id] = kept.size() + 1;
    kept.push_back(n);
  }
  for (TreeNode& n : kept) {
    n.id = remap[n.id];
    if (n.parent != kInvalidTemplateId) n.parent = remap[n.parent];
    std::vector<TemplateId> children;
    for (TemplateId c : n.children) {
      if (remap[c] != kInvalidTemplateId) children.push_back(remap[c]);
    }
    n.children = std::move(children);
  }
  roots_.clear();
  nodes_ = std::move(kept);
  for (const TreeNode& n : nodes_) {
    if (n.parent == kInvalidTemplateId) roots_.push_back(n.id);
  }
}

TemplateId TemplateModel::CopySubtree(const TemplateModel& src,
                                      TemplateId src_id,
                                      TemplateId new_parent) {
  const TreeNode* s = src.node(src_id);
  if (s == nullptr) return kInvalidTemplateId;
  const TemplateId id =
      AddNode(new_parent, s->saturation, s->tokens, s->support, s->temporary);
  for (TemplateId c : s->children) CopySubtree(src, c, id);
  return id;
}

void TemplateModel::MergeFrom(const TemplateModel& incoming,
                              double similarity_threshold) {
  // Pairs of (existing node, incoming node) to reconcile, starting with a
  // virtual root pairing (0, 0) whose children are the two root sets.
  struct Pending {
    TemplateId existing;
    TemplateId fresh;
  };
  std::vector<Pending> stack{{kInvalidTemplateId, kInvalidTemplateId}};
  while (!stack.empty()) {
    const Pending p = stack.back();
    stack.pop_back();

    const std::vector<TemplateId>& fresh_children =
        p.fresh == kInvalidTemplateId ? incoming.roots()
                                      : incoming.node(p.fresh)->children;
    for (TemplateId fc : fresh_children) {
      const TreeNode* fresh_node = incoming.node(fc);
      // Candidate existing children of the matched parent.
      const std::vector<TemplateId>& existing_children =
          p.existing == kInvalidTemplateId ? roots_
                                           : node(p.existing)->children;
      TemplateId best = kInvalidTemplateId;
      double best_sim = similarity_threshold;
      for (TemplateId ec : existing_children) {
        const TreeNode* existing_node = node(ec);
        if (existing_node->temporary) continue;
        const double sim =
            TemplateSimilarity(existing_node->tokens, fresh_node->tokens);
        if (sim >= best_sim) {
          best_sim = sim;
          best = ec;
        }
      }
      if (best != kInvalidTemplateId) {
        TreeNode* merged = mutable_node(best);
        merged->support += fresh_node->support;
        // Refresh saturation toward the newer estimate.
        merged->saturation =
            std::max(merged->saturation, fresh_node->saturation);
        stack.push_back({best, fc});
      } else {
        CopySubtree(incoming, fc, p.existing);
      }
    }
  }
}

std::vector<TemplateId> TemplateModel::MergeTemporariesFrom(
    TemplateModel* pending, size_t first, size_t count) {
  std::vector<TemplateId> ids;
  std::vector<TreeNode>& nodes = pending->nodes_;
  if (first >= nodes.size()) return ids;
  const size_t end = count >= nodes.size() - first ? nodes.size()
                                                   : first + count;
  ids.reserve(end - first);
  for (size_t i = first; i < end; ++i) {
    // AddNode interns the token texts into this model's table; the
    // pending model's private ids/table never leak across. The token
    // strings move — the pending node keeps only its interned ids,
    // which is all its matcher reads.
    ids.push_back(AddNode(kInvalidTemplateId, nodes[i].saturation,
                          std::move(nodes[i].tokens), nodes[i].support,
                          /*temporary=*/true));
  }
  return ids;
}

std::string TemplateModel::Serialize() const {
  std::string out;
  ByteWriter w(&out);
  w.PutU64(kModelMagic);
  w.PutU64(nodes_.size());
  for (const TreeNode& n : nodes_) {
    w.PutU64(n.id);
    w.PutU64(n.parent);
    w.PutDouble(n.saturation);
    w.PutU64(n.support);
    w.PutU32(n.temporary ? 1 : 0);
    w.PutU32(static_cast<uint32_t>(n.tokens.size()));
    for (const std::string& t : n.tokens) w.PutString(t);
  }
  return out;
}

Result<TemplateModel> TemplateModel::Deserialize(std::string_view bytes) {
  ByteReader r(bytes);
  uint64_t magic = 0;
  uint64_t count = 0;
  if (!r.GetU64(&magic) || magic != kModelMagic) {
    return Status::Corruption("bad model magic");
  }
  if (!r.GetU64(&count)) return Status::Corruption("truncated model header");
  TemplateModel model;
  model.nodes_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    TreeNode n;
    uint32_t temporary = 0;
    uint32_t num_tokens = 0;
    if (!r.GetU64(&n.id) || !r.GetU64(&n.parent) ||
        !r.GetDouble(&n.saturation) || !r.GetU64(&n.support) ||
        !r.GetU32(&temporary) || !r.GetU32(&num_tokens)) {
      return Status::Corruption("truncated model node");
    }
    if (n.id != i + 1) return Status::Corruption("non-dense node ids");
    n.temporary = temporary != 0;
    n.tokens.resize(num_tokens);
    n.token_ids.reserve(num_tokens);
    for (uint32_t t = 0; t < num_tokens; ++t) {
      if (!r.GetString(&n.tokens[t])) {
        return Status::Corruption("truncated token");
      }
      n.token_ids.push_back(model.token_table_->Intern(n.tokens[t]));
    }
    model.nodes_.push_back(std::move(n));
  }
  if (!r.AtEnd()) return Status::Corruption("trailing bytes in model");
  // Rebuild links.
  for (const TreeNode& n : model.nodes_) {
    if (n.parent == kInvalidTemplateId) {
      model.roots_.push_back(n.id);
    } else if (n.parent > model.nodes_.size()) {
      return Status::Corruption("dangling parent id");
    } else {
      model.nodes_[n.parent - 1].children.push_back(n.id);
    }
  }
  return model;
}

uint64_t TemplateModel::ApproxBytes() const {
  uint64_t bytes = 16;
  for (const TreeNode& n : nodes_) {
    bytes += 8 + 8 + 8 + 8 + 4 + 4;
    for (const std::string& t : n.tokens) bytes += 4 + t.size();
  }
  return bytes;
}

void TemplateModel::ExportTo(InternalTopic* topic) const {
  for (const TreeNode& n : nodes_) {
    TemplateMeta meta;
    meta.id = n.id;
    meta.parent_id = n.parent;
    meta.saturation = n.saturation;
    meta.support = n.support;
    meta.template_text = TemplateText(n.id);
    topic->Put(std::move(meta));
  }
}

}  // namespace bytebrain
