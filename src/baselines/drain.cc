#include "baselines/drain.h"

namespace bytebrain {

namespace {

double SimSeq(const std::vector<std::string>& tmpl,
              const std::vector<std::string>& tokens) {
  if (tmpl.size() != tokens.size() || tmpl.empty()) return 0.0;
  size_t same = 0;
  for (size_t i = 0; i < tmpl.size(); ++i) {
    if (tmpl[i] == tokens[i]) ++same;  // wildcard counts 0, as in the paper
  }
  return static_cast<double>(same) / static_cast<double>(tmpl.size());
}

}  // namespace

DrainParser::Group* DrainParser::SearchOrInsert(
    const std::vector<std::string>& tokens) {
  // Level 1: token count.
  Node* node = &root_;
  const std::string len_key = std::to_string(tokens.size());
  auto& len_child = node->children[len_key];
  if (len_child == nullptr) len_child = std::make_unique<Node>();
  node = len_child.get();

  // Levels 2..depth+1: leading tokens; digit-bearing tokens and overflow
  // beyond max_children route to the wildcard branch.
  const int levels =
      std::min<int>(options_.depth, static_cast<int>(tokens.size()));
  for (int d = 0; d < levels; ++d) {
    const std::string& tok = tokens[d];
    std::string key = HasDigits(tok) ? std::string(kBaselineWildcard) : tok;
    auto it = node->children.find(key);
    if (it == node->children.end()) {
      if (static_cast<int>(node->children.size()) >= options_.max_children) {
        key = std::string(kBaselineWildcard);
      }
      auto& child = node->children[key];
      if (child == nullptr) child = std::make_unique<Node>();
      node = child.get();
    } else {
      node = it->second.get();
    }
  }

  // Leaf: find the most similar group.
  Group* best = nullptr;
  double best_sim = 0.0;
  for (Group& g : node->groups) {
    const double sim = SimSeq(g.template_tokens, tokens);
    if (sim > best_sim) {
      best_sim = sim;
      best = &g;
    }
  }
  if (best != nullptr && best_sim >= options_.st) {
    // Update template: mismatches become wildcards.
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (best->template_tokens[i] != tokens[i]) {
        best->template_tokens[i] = std::string(kBaselineWildcard);
      }
    }
    return best;
  }
  node->groups.push_back({tokens, next_id_++});
  return &node->groups.back();
}

std::vector<uint64_t> DrainParser::Parse(
    const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);
  for (size_t i = 0; i < token_lists.size(); ++i) {
    out[i] = SearchOrInsert(token_lists[i])->id;
  }
  return out;
}

}  // namespace bytebrain
