// Sharded-ingest tests: a topic with num_ingest_shards > 1 must produce
// the same observable end state as the single-shard path on the same
// input — same template shapes, same grouping — while routing duplicate
// shapes to one shard, folding shard-local temporaries into the shared
// model before any record is queryable, and composing with asynchronous
// retraining. The concurrency cases are deterministic (gate hook, no
// sleeps on assertion paths) and TSAN-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/tokenizer.h"
#include "core/variable_replacer.h"
#include "datagen/generator.h"
#include "eval/metrics.h"
#include "service/log_service.h"
#include "util/hashing.h"

namespace bytebrain {
namespace {

// Distinct, non-overlapping shapes: no shape can match another shape's
// adopted template (no shared token skeleton), so sharded and sequential
// adoption produce the same template set even before a training cycle.
std::string NovelLog(int shape, int dup) {
  return "subsystem" + std::to_string(shape) + " failure code " +
         std::to_string(shape * 7) + " attempt 10.0.0." +
         std::to_string(dup % 9 + 1);
}

std::string SshLog(int i) {
  return "Accepted password for user" + std::to_string(i % 5) +
         " from 10.0.0." + std::to_string(i % 9 + 1) + " port " +
         std::to_string(40000 + i) + " ssh2";
}

TopicConfig ShardConfig(int shards) {
  TopicConfig config;
  config.initial_train_records = 200;
  config.train_interval_records = 1u << 30;
  config.train_volume_bytes = 1ull << 40;
  config.num_threads = 2;
  config.async_training = false;  // deterministic unless a test opts in
  config.num_ingest_shards = shards;
  return config;
}

std::vector<std::string> Corpus(size_t n) {
  DatasetGenerator gen(*FindDatasetSpec("OpenSSH"));
  GenOptions opts;
  opts.num_logs = n;
  opts.num_templates = 24;
  std::vector<std::string> texts;
  for (auto& l : gen.Generate(opts).logs) texts.push_back(l.text);
  return texts;
}

std::vector<uint32_t> CorpusLabels(size_t n) {
  DatasetGenerator gen(*FindDatasetSpec("OpenSSH"));
  GenOptions opts;
  opts.num_logs = n;
  opts.num_templates = 24;
  std::vector<uint32_t> labels;
  for (auto& l : gen.Generate(opts).logs) labels.push_back(l.gt_template);
  return labels;
}

void IngestInBatches(ManagedTopic* topic, const std::vector<std::string>& texts,
                     size_t batch_size) {
  for (size_t begin = 0; begin < texts.size(); begin += batch_size) {
    const size_t end = std::min(begin + batch_size, texts.size());
    std::vector<std::string> chunk(texts.begin() + begin, texts.begin() + end);
    auto seqs = topic->IngestBatch(std::move(chunk));
    ASSERT_TRUE(seqs.ok()) << seqs.status().ToString();
    ASSERT_EQ(seqs.value().size(), end - begin);
    for (size_t i = 0; i < seqs.value().size(); ++i) {
      EXPECT_EQ(seqs.value()[i], begin + i);
    }
  }
}

std::vector<uint64_t> RecordAssignments(const ManagedTopic& topic) {
  std::vector<uint64_t> out;
  EXPECT_TRUE(topic
                  .ScanRecords(0, topic.size(),
                               [&out](uint64_t, const LogRecord& rec) {
                                 out.push_back(rec.template_id);
                               })
                  .ok());
  return out;
}

std::multiset<std::string> TemplateTexts(const ManagedTopic& topic) {
  const std::vector<std::string> texts = topic.TemplateTexts();
  return std::multiset<std::string>(texts.begin(), texts.end());
}

// The acceptance scenario: the same corpus pushed through 1 shard and 4
// shards must end in the same state — identical template-text multiset
// and identical grouping (GA of 1.0 between the two assignments, equal
// GA against ground truth) — after a final training reconciles
// temporaries.
TEST(ShardedIngestTest, EndStateMatchesUnshardedOnDatagenCorpus) {
  const auto texts = Corpus(3000);
  const auto labels = CorpusLabels(3000);

  ManagedTopic unsharded("plain", ShardConfig(1));
  ManagedTopic sharded("sharded", ShardConfig(4));
  IngestInBatches(&unsharded, texts, 256);
  IngestInBatches(&sharded, texts, 256);
  ASSERT_TRUE(unsharded.trained());
  ASSERT_TRUE(sharded.trained());

  // Final training: both topics train on the identical record window, so
  // models, assignments, and query results must agree exactly.
  ASSERT_TRUE(unsharded.TrainNow().ok());
  ASSERT_TRUE(sharded.TrainNow().ok());

  EXPECT_EQ(TemplateTexts(unsharded), TemplateTexts(sharded));

  const auto plain = RecordAssignments(unsharded);
  const auto shard = RecordAssignments(sharded);
  ASSERT_EQ(plain.size(), shard.size());
  EXPECT_EQ(GroupingAccuracy(plain, shard), 1.0);
  EXPECT_EQ(GroupingAccuracy(plain, labels), GroupingAccuracy(shard, labels));

  // Queries agree group-for-group at full precision.
  auto q1 = unsharded.Query(1.0);
  auto q2 = sharded.Query(1.0);
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q2.ok());
  ASSERT_EQ(q1.value().size(), q2.value().size());
  for (size_t i = 0; i < q1.value().size(); ++i) {
    EXPECT_EQ(q1.value()[i].template_text, q2.value()[i].template_text);
    EXPECT_EQ(q1.value()[i].count, q2.value()[i].count);
    EXPECT_EQ(q1.value()[i].sequence_numbers, q2.value()[i].sequence_numbers);
  }
}

// Before any reconciling training, adopting non-overlapping novel shapes
// must still produce the sequential template set: each shape adopted
// exactly once, duplicates assigned to their shape's template.
TEST(ShardedIngestTest, AdoptedTemplateSetMatchesUnsharded) {
  ManagedTopic unsharded("plain", ShardConfig(1));
  ManagedTopic sharded("sharded", ShardConfig(4));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(unsharded.Ingest(SshLog(i)).ok());
    ASSERT_TRUE(sharded.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(unsharded.trained());
  ASSERT_TRUE(sharded.trained());

  std::vector<std::string> batch;
  for (int dup = 0; dup < 16; ++dup) {
    for (int shape = 0; shape < 24; ++shape) {
      batch.push_back(NovelLog(shape, dup));
    }
  }
  ASSERT_TRUE(unsharded.IngestBatch(batch).ok());
  ASSERT_TRUE(sharded.IngestBatch(batch).ok());

  EXPECT_EQ(TemplateTexts(unsharded), TemplateTexts(sharded));
  EXPECT_EQ(unsharded.stats().adopted_templates,
            sharded.stats().adopted_templates);
  const auto plain = RecordAssignments(unsharded);
  const auto shard = RecordAssignments(sharded);
  EXPECT_EQ(GroupingAccuracy(plain, shard), 1.0);
}

// Duplicate colocation: all copies of a shape hash to one shard, so each
// novel shape is adopted by exactly one shard and re-sending the same
// shapes adopts nothing new (the folded temporaries are now part of the
// shared model and are hit by the prematch).
TEST(ShardedIngestTest, DuplicatesColocateAndFoldOnce) {
  ManagedTopic topic("sharded", ShardConfig(4));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());
  const uint64_t adopted_before = topic.stats().adopted_templates;

  constexpr int kShapes = 12;
  constexpr int kDups = 8;
  std::vector<std::string> batch;
  for (int dup = 0; dup < kDups; ++dup) {
    for (int shape = 0; shape < kShapes; ++shape) {
      batch.push_back(NovelLog(shape, /*dup=*/0));  // exact duplicates
    }
  }
  ASSERT_TRUE(topic.IngestBatch(batch).ok());

  TopicStats stats = topic.stats();
  ASSERT_EQ(stats.shards.size(), 4u);
  uint64_t routed = 0;
  uint64_t adopted = 0;
  uint64_t merges = 0;
  for (const ShardStats& s : stats.shards) {
    routed += s.records;
    adopted += s.adopted;
    merges += s.merges;
  }
  EXPECT_EQ(routed, batch.size());
  // Exactly one adoption per distinct shape, across all shards together.
  EXPECT_EQ(adopted, static_cast<uint64_t>(kShapes));
  EXPECT_EQ(stats.adopted_templates - adopted_before,
            static_cast<uint64_t>(kShapes));
  EXPECT_GE(merges, 1u);
  EXPECT_EQ(stats.shard_merges, merges);

  // All duplicates of a shape share one template id.
  std::map<std::string, std::set<TemplateId>> ids_by_text;
  ASSERT_TRUE(topic
                  .ScanRecords(200, topic.size(),
                               [&](uint64_t, const LogRecord& rec) {
                                 ids_by_text[rec.text].insert(rec.template_id);
                               })
                  .ok());
  ASSERT_EQ(ids_by_text.size(), static_cast<size_t>(kShapes));
  for (const auto& [text, ids] : ids_by_text) {
    EXPECT_EQ(ids.size(), 1u) << text;
    EXPECT_NE(*ids.begin(), kInvalidTemplateId) << text;
  }

  // Same shapes again: everything is a shared-model hit now.
  ASSERT_TRUE(topic.IngestBatch(batch).ok());
  stats = topic.stats();
  uint64_t adopted_after = 0;
  for (const ShardStats& s : stats.shards) adopted_after += s.adopted;
  EXPECT_EQ(adopted_after, static_cast<uint64_t>(kShapes));
}

// Shard counters are observability: the unsharded topic reports its
// single shard with untouched counters (the plain path never routes).
TEST(ShardedIngestTest, UnshardedTopicReportsIdleShard) {
  ManagedTopic topic("plain", ShardConfig(1));
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(
      topic.IngestBatch(std::vector<std::string>{SshLog(1), SshLog(2)}).ok());
  const TopicStats stats = topic.stats();
  ASSERT_EQ(stats.shards.size(), 1u);
  EXPECT_EQ(stats.shards[0].records, 0u);
  EXPECT_EQ(stats.shard_merges, 0u);
}

// The fused content hash (one-pass scan) and the two-pass tenant-rule
// fallback must agree bit-for-bit: both paths of the router produce the
// same dedup/routing keys for the same shapes.
TEST(ShardedIngestTest, FusedHashMatchesTwoPassHash) {
  const VariableReplacer replacer = VariableReplacer::Default();
  ASSERT_TRUE(replacer.fused_fast_path());
  const std::vector<std::string> samples = {
      SshLog(3),
      NovelLog(7, 2),
      "",
      "10.0.0.1",
      "mixed-1a2b3c4d5e6f7a8b9c0d1a2b3c4d5e6f token  double  space",
  };
  std::string scratch;
  for (const std::string& s : samples) {
    const uint64_t fused = HashReplacedTokens(s, &scratch);
    std::string replaced;
    replacer.ReplaceInto(s, &replaced);
    std::vector<std::string_view> tokens;
    TokenizeDefaultInto(replaced, &tokens);
    uint64_t two_pass = kTokenSeqFastSeed;
    for (std::string_view t : tokens) {
      two_pass = CombineTokenHashFast(two_pass, t);
    }
    EXPECT_EQ(fused, two_pass) << s;
  }
}

// Topics with tenant variable rules cannot use the fused scan; the
// two-pass hash branch must still collapse variable-value duplicates
// (here the rule-replaced request id) into one shape per shard.
TEST(ShardedIngestTest, TenantRuleTopicsDedupOnTwoPassHash) {
  TopicConfig config = ShardConfig(4);
  config.variable_rules.emplace_back("reqid", "req-[0-9]+");
  ManagedTopic topic("sharded", config);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());

  constexpr int kShapes = 6;
  std::vector<std::string> batch;
  for (int dup = 0; dup < 8; ++dup) {
    for (int shape = 0; shape < kShapes; ++shape) {
      batch.push_back("gateway" + std::to_string(shape) +
                      " timeout handling req-" + std::to_string(dup * 97) +
                      " retry scheduled");
    }
  }
  ASSERT_TRUE(topic.IngestBatch(batch).ok());

  const TopicStats stats = topic.stats();
  uint64_t adopted = 0;
  uint64_t routed = 0;
  for (const ShardStats& s : stats.shards) {
    adopted += s.adopted;
    routed += s.records;
  }
  EXPECT_EQ(routed, batch.size());
  // One adoption per shape: the rule collapsed every req-<n> variant.
  EXPECT_EQ(adopted, static_cast<uint64_t>(kShapes));
  // Each shape's records share one template id.
  std::map<std::string, std::set<TemplateId>> ids_by_shape;
  ASSERT_TRUE(topic
                  .ScanRecords(200, topic.size(),
                               [&](uint64_t, const LogRecord& rec) {
                                 ids_by_shape[rec.text.substr(0, 8)].insert(
                                     rec.template_id);
                               })
                  .ok());
  ASSERT_EQ(ids_by_shape.size(), static_cast<size_t>(kShapes));
  for (const auto& [shape, ids] : ids_by_shape) {
    EXPECT_EQ(ids.size(), 1u) << shape;
    EXPECT_NE(*ids.begin(), kInvalidTemplateId) << shape;
  }
}

// Folds happen in the batch's exclusive section while queries hold the
// shared lock: a query must never observe a record whose template id it
// cannot resolve (pendings are invisible until folded, and records are
// appended only after the fold).
TEST(ShardedIngestTest, MergeUnderConcurrentQueryStaysCoherent) {
  ManagedTopic topic("sharded", ShardConfig(4));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());

  std::atomic<bool> done{false};
  std::atomic<uint64_t> query_errors{0};
  std::atomic<uint64_t> queries_run{0};
  std::thread reader([&] {
    while (!done.load()) {
      auto q = topic.Query(1.0);
      if (!q.ok()) {
        query_errors.fetch_add(1);
        continue;
      }
      for (const TemplateGroup& g : q.value()) {
        // Every assigned record resolves to a renderable template: no
        // query may ever see a shard-local (unfolded) id.
        if (g.template_id != kInvalidTemplateId && g.template_text.empty()) {
          query_errors.fetch_add(1);
        }
        if (g.template_text == "<unparsed>") {
          query_errors.fetch_add(1);
        }
      }
      (void)topic.stats();
      queries_run.fetch_add(1);
    }
  });

  // 40 batches, each with novel shapes (adopt + fold) and duplicates.
  for (int round = 0; round < 40; ++round) {
    std::vector<std::string> batch;
    for (int dup = 0; dup < 4; ++dup) {
      for (int shape = 0; shape < 6; ++shape) {
        batch.push_back(NovelLog(round * 6 + shape, dup));
      }
    }
    for (int i = 0; i < 16; ++i) batch.push_back(SshLog(i));
    ASSERT_TRUE(topic.IngestBatch(std::move(batch)).ok());
  }
  done.store(true);
  reader.join();

  EXPECT_EQ(query_errors.load(), 0u);
  EXPECT_GT(queries_run.load(), 0u);
  // End state: every record carries a valid template id.
  for (uint64_t id : RecordAssignments(topic)) {
    EXPECT_NE(id, kInvalidTemplateId);
  }
}

/// One-shot gate for holding an async training in flight (same pattern
/// as service_async_test.cc).
class TrainingGate {
 public:
  std::function<void()> Hook() {
    return [this] {
      started_.fetch_add(1);
      gate_.wait();
    };
  }
  bool Started() const { return started_.load() > 0; }
  void Release() { release_.set_value(); }
  void AwaitStarted() {
    while (!Started()) std::this_thread::yield();
  }

 private:
  std::promise<void> release_;
  std::shared_future<void> gate_{release_.get_future()};
  std::atomic<int> started_{0};
};

// Sharded ingest composing with async retraining: batches keep adopting
// and folding while a training is held in flight; the commit swaps the
// model, drops every temporary (including shard pendings), and re-matches
// mid-training arrivals — no record may end up unassigned and no pending
// id may dangle into the swapped model.
TEST(ShardedIngestTest, ShardingComposesWithAsyncRetrain) {
  TrainingGate gate;
  TopicConfig config = ShardConfig(4);
  config.async_training = true;
  config.train_interval_records = 300;  // retrain trigger after bootstrap
  config.on_async_training_start = gate.Hook();
  ManagedTopic topic("sharded", config);

  // Bootstrap: initial training at 200 (synchronous), then push past the
  // retrain trigger so a background training parks at the gate.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());
  std::vector<std::string> filler;
  for (int i = 0; i < 310; ++i) filler.push_back(SshLog(i));
  ASSERT_TRUE(topic.IngestBatch(std::move(filler)).ok());
  gate.AwaitStarted();
  ASSERT_EQ(topic.stats().pending_trainings, 1u);

  // Sharded batches with novel shapes while the training is in flight:
  // adoption, folding, and queries must not wait on the training.
  for (int round = 0; round < 8; ++round) {
    std::vector<std::string> batch;
    for (int dup = 0; dup < 4; ++dup) {
      for (int shape = 0; shape < 4; ++shape) {
        batch.push_back(NovelLog(round * 4 + shape, dup));
      }
    }
    ASSERT_TRUE(topic.IngestBatch(std::move(batch)).ok());
    auto q = topic.Query(1.0);
    ASSERT_TRUE(q.ok());
  }
  EXPECT_EQ(topic.stats().pending_trainings, 1u);

  gate.Release();
  topic.WaitForPendingTraining();

  // Post-commit batch exercises the reset-shards path (all pendings were
  // dropped by the swap; novel shapes re-adopt cleanly).
  std::vector<std::string> post;
  for (int dup = 0; dup < 4; ++dup) {
    for (int shape = 100; shape < 104; ++shape) {
      post.push_back(NovelLog(shape, dup));
    }
  }
  ASSERT_TRUE(topic.IngestBatch(std::move(post)).ok());

  const TopicStats stats = topic.stats();
  EXPECT_GE(stats.trainings, 2u);
  EXPECT_GE(stats.async_trainings, 1u);
  EXPECT_EQ(stats.failed_trainings, 0u);
  EXPECT_EQ(stats.ingested_records, topic.size());
  for (uint64_t id : RecordAssignments(topic)) {
    EXPECT_NE(id, kInvalidTemplateId);
  }
}

// Cross-batch shape memo: a shape resolved once by a shard (matched
// against the shared model or folded into it) is served from the
// shard's hash → id memo on later batches, skipping the shared-matcher
// prematch entirely — while the end state stays identical to the
// unsharded path.
TEST(ShardedIngestTest, ShardMemoSkipsPrematchAcrossBatches) {
  ManagedTopic unsharded("plain", ShardConfig(1));
  ManagedTopic sharded("sharded", ShardConfig(4));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(unsharded.Ingest(SshLog(i)).ok());
    ASSERT_TRUE(sharded.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(sharded.trained());

  constexpr int kShapes = 12;
  auto make_batch = [] {
    std::vector<std::string> batch;
    for (int dup = 0; dup < 8; ++dup) {
      for (int shape = 0; shape < kShapes; ++shape) {
        batch.push_back(NovelLog(shape, dup));
      }
    }
    // Repeat trained shapes too: their memo entries come from the
    // matched-shared path rather than a fold.
    for (int i = 0; i < 16; ++i) batch.push_back(SshLog(i));
    return batch;
  };

  // Batch 1: novel shapes adopt + fold (fold memoizes the new ids
  // under the post-fold generation); trained shapes memoize on match.
  ASSERT_TRUE(unsharded.IngestBatch(make_batch()).ok());
  ASSERT_TRUE(sharded.IngestBatch(make_batch()).ok());
  auto memo_hits = [](const ManagedTopic& topic) {
    uint64_t hits = 0;
    for (const ShardStats& s : topic.stats().shards) hits += s.memo_hits;
    return hits;
  };
  const uint64_t hits_after_first = memo_hits(sharded);

  // Batches 2 and 3 re-route the same shapes to the same shards (the
  // content hash is stable): every distinct shape is a memo hit — the
  // generation has not moved since the fold — and nothing re-adopts.
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(unsharded.IngestBatch(make_batch()).ok());
    ASSERT_TRUE(sharded.IngestBatch(make_batch()).ok());
  }
  const TopicStats stats = sharded.stats();
  uint64_t adopted = 0;
  for (const ShardStats& s : stats.shards) adopted += s.adopted;
  EXPECT_EQ(adopted, static_cast<uint64_t>(kShapes));
  // Each repeat batch resolves kShapes novel + trained shapes from the
  // memo: two full repeat rounds = at least 2 * kShapes hits.
  EXPECT_GE(memo_hits(sharded) - hits_after_first,
            static_cast<uint64_t>(2 * kShapes));

  // End state identical to the unsharded path, memo or no memo.
  EXPECT_EQ(TemplateTexts(unsharded), TemplateTexts(sharded));
  const auto plain = RecordAssignments(unsharded);
  const auto shard = RecordAssignments(sharded);
  ASSERT_EQ(plain.size(), shard.size());
  EXPECT_EQ(GroupingAccuracy(plain, shard), 1.0);
  // All copies of a shape across all three batches share ONE id.
  std::map<std::string, std::set<TemplateId>> ids_by_text;
  ASSERT_TRUE(sharded
                  .ScanRecords(200, sharded.size(),
                               [&](uint64_t, const LogRecord& rec) {
                                 ids_by_text[rec.text].insert(rec.template_id);
                               })
                  .ok());
  for (const auto& [text, ids] : ids_by_text) {
    EXPECT_EQ(ids.size(), 1u) << text;
  }

  // A training commit invalidates the memo (ids + generation are
  // superseded): the next batch must re-resolve, not serve stale ids.
  ASSERT_TRUE(sharded.TrainNow().ok());
  const uint64_t hits_before_post = memo_hits(sharded);
  ASSERT_TRUE(sharded.IngestBatch(make_batch()).ok());
  EXPECT_EQ(memo_hits(sharded), hits_before_post);  // all misses, re-memoized
  ASSERT_TRUE(sharded.IngestBatch(make_batch()).ok());
  EXPECT_GT(memo_hits(sharded), hits_before_post);  // memo warm again
  for (uint64_t id : RecordAssignments(sharded)) {
    EXPECT_NE(id, kInvalidTemplateId);
  }
}

// Two sharded batches racing: both take the shared phase concurrently,
// their exclusive sections serialize, and the second to fold must reuse
// (not duplicate) the first's published temporaries. Deterministic
// assertions on the end state only; TSAN checks the interleaving.
TEST(ShardedIngestTest, ConcurrentBatchesDoNotDuplicateTemplates) {
  ManagedTopic topic("sharded", ShardConfig(4));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(topic.Ingest(SshLog(i)).ok());
  }
  ASSERT_TRUE(topic.trained());

  constexpr int kShapes = 10;
  auto make_batch = [] {
    std::vector<std::string> batch;
    for (int dup = 0; dup < 6; ++dup) {
      for (int shape = 0; shape < kShapes; ++shape) {
        batch.push_back(NovelLog(shape, /*dup=*/0));
      }
    }
    return batch;
  };
  std::thread t1([&] { ASSERT_TRUE(topic.IngestBatch(make_batch()).ok()); });
  std::thread t2([&] { ASSERT_TRUE(topic.IngestBatch(make_batch()).ok()); });
  t1.join();
  t2.join();

  // Every copy of a shape resolves to ONE template id across both
  // batches (colocation + the pending matcher dedup across batches).
  std::map<std::string, std::set<TemplateId>> ids_by_text;
  ASSERT_TRUE(topic
                  .ScanRecords(200, topic.size(),
                               [&](uint64_t, const LogRecord& rec) {
                                 ids_by_text[rec.text].insert(rec.template_id);
                               })
                  .ok());
  ASSERT_EQ(ids_by_text.size(), static_cast<size_t>(kShapes));
  for (const auto& [text, ids] : ids_by_text) {
    EXPECT_EQ(ids.size(), 1u) << text;
  }
}

}  // namespace
}  // namespace bytebrain
