// Status and Result<T>: the library-wide error model.
//
// Follows the RocksDB idiom: fallible operations return a Status (or a
// Result<T> when they also produce a value). Exceptions are not thrown
// across library boundaries.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace bytebrain {

/// Outcome of a fallible operation. Cheap to copy when OK (no allocation).
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kCorruption,
    kIOError,
    kNotSupported,
    kAborted,
    kAlreadyExists,
    kResourceExhausted,
    kPermissionDenied,
    /// The node cannot serve this request in its current role (e.g. a
    /// replication follower rejecting a write); the message carries a
    /// redirect hint when one is configured. Wire value appended in v2.
    kUnavailable,
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(Code::kAborted, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(Code::kAlreadyExists, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(Code::kResourceExhausted, msg);
  }
  static Status PermissionDenied(std::string_view msg) {
    return Status(Code::kPermissionDenied, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(Code::kUnavailable, msg);
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsAlreadyExists() const { return code_ == Code::kAlreadyExists; }
  bool IsResourceExhausted() const {
    return code_ == Code::kResourceExhausted;
  }
  bool IsPermissionDenied() const {
    return code_ == Code::kPermissionDenied;
  }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "<code>: <message>" string.
  std::string ToString() const {
    if (ok()) return "OK";
    std::string name;
    switch (code_) {
      case Code::kOk: name = "OK"; break;
      case Code::kInvalidArgument: name = "InvalidArgument"; break;
      case Code::kNotFound: name = "NotFound"; break;
      case Code::kCorruption: name = "Corruption"; break;
      case Code::kIOError: name = "IOError"; break;
      case Code::kNotSupported: name = "NotSupported"; break;
      case Code::kAborted: name = "Aborted"; break;
      case Code::kAlreadyExists: name = "AlreadyExists"; break;
      case Code::kResourceExhausted: name = "ResourceExhausted"; break;
      case Code::kPermissionDenied: name = "PermissionDenied"; break;
      case Code::kUnavailable: name = "Unavailable"; break;
    }
    return name + ": " + message_;
  }

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  Status(Code code, std::string_view msg) : code_(code), message_(msg) {}

  Code code_;
  std::string message_;
};

/// A value or an error. `ok()` implies the value is present.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}            // NOLINT: implicit
  Result(Status status) : status_(std::move(status)) {     // NOLINT: implicit
    assert(!status_.ok() && "Result constructed from OK status with no value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

  T* operator->() {
    assert(ok());
    return &*value_;
  }
  const T* operator->() const {
    assert(ok());
    return &*value_;
  }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace bytebrain

/// Propagates a non-OK Status from an expression to the caller.
#define BB_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::bytebrain::Status _bb_status = (expr);      \
    if (!_bb_status.ok()) return _bb_status;      \
  } while (0)
