#include "datagen/loghub_loader.h"

#include <cstdio>
#include <functional>
#include <unordered_map>

namespace bytebrain {

namespace {

// Reads the whole file line by line, invoking fn(line). Returns IOError
// if the file cannot be opened.
Status ForEachLine(const std::string& path,
                   const std::function<bool(const std::string&)>& fn) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open: " + path);
  std::string line;
  int c;
  while ((c = std::fgetc(f)) != EOF) {
    if (c == '\n') {
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (!fn(line)) {
        std::fclose(f);
        return Status::OK();
      }
      line.clear();
    } else {
      line.push_back(static_cast<char>(c));
    }
  }
  if (!line.empty()) fn(line);
  std::fclose(f);
  return Status::OK();
}

}  // namespace

std::vector<std::string> ParseCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');  // escaped quote
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

Result<Dataset> LoadStructuredCsv(const std::string& path,
                                  const std::string& content_column,
                                  const std::string& event_id_column) {
  Dataset ds;
  ds.name = path;
  int content_index = -1;
  int event_index = -1;
  bool header_seen = false;
  std::unordered_map<std::string, uint32_t> event_ids;

  Status status = ForEachLine(path, [&](const std::string& line) {
    auto fields = ParseCsvLine(line);
    if (!header_seen) {
      header_seen = true;
      for (size_t i = 0; i < fields.size(); ++i) {
        if (fields[i] == content_column) content_index = static_cast<int>(i);
        if (fields[i] == event_id_column) event_index = static_cast<int>(i);
      }
      return true;
    }
    if (content_index < 0 ||
        static_cast<size_t>(content_index) >= fields.size() ||
        event_index < 0 || static_cast<size_t>(event_index) >= fields.size()) {
      return true;  // malformed row: skip
    }
    const auto [it, inserted] = event_ids.emplace(
        fields[event_index], static_cast<uint32_t>(event_ids.size()));
    ds.logs.push_back({std::move(fields[content_index]), it->second});
    return true;
  });
  BB_RETURN_IF_ERROR(status);
  if (!header_seen || content_index < 0) {
    return Status::InvalidArgument("missing '" + content_column +
                                   "' column in " + path);
  }
  if (event_index < 0) {
    return Status::InvalidArgument("missing '" + event_id_column +
                                   "' column in " + path);
  }
  ds.num_templates = event_ids.size();
  return ds;
}

Result<Dataset> LoadPlainLog(const std::string& path, size_t max_lines) {
  Dataset ds;
  ds.name = path;
  Status status = ForEachLine(path, [&](const std::string& line) {
    if (max_lines > 0 && ds.logs.size() >= max_lines) return false;
    ds.logs.push_back({line, 0});
    return true;
  });
  BB_RETURN_IF_ERROR(status);
  ds.num_templates = ds.logs.empty() ? 0 : 1;
  return ds;
}

}  // namespace bytebrain
