#include "core/grouping.h"

#include <algorithm>
#include <unordered_map>

#include "util/hashing.h"

namespace bytebrain {

std::vector<InitialGroup> InitialGrouping(const std::vector<EncodedLog>& logs,
                                          int prefix_k) {
  std::unordered_map<uint64_t, uint32_t> key_to_group;
  std::vector<InitialGroup> groups;
  for (uint32_t i = 0; i < logs.size(); ++i) {
    const EncodedLog& log = logs[i];
    uint64_t key = Mix64(log.tokens.size());
    const int k = std::min<int>(prefix_k, static_cast<int>(log.tokens.size()));
    for (int p = 0; p < k; ++p) {
      key = HashCombine(key, log.tokens[p]);
    }
    auto [it, inserted] =
        key_to_group.emplace(key, static_cast<uint32_t>(groups.size()));
    if (inserted) {
      groups.emplace_back();
      groups.back().token_count = static_cast<uint32_t>(log.tokens.size());
    }
    groups[it->second].members.push_back(i);
  }
  return groups;
}

}  // namespace bytebrain
