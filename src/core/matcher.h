// Online matching (paper §4.8).
//
// Incoming logs are matched directly against template TEXTS — not by
// re-walking the clustering tree with distance computations — so the
// model needs no per-node token statistics. Templates are tried in
// descending saturation order; a log matches a template when every
// position equals the template token or the template token is the
// wildcard. Templates are bucketed by token count (a log can only match
// equal-length templates) and indexed by their first constant token to
// cut the candidate list.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/model.h"
#include "core/variable_replacer.h"

namespace bytebrain {

/// Immutable matcher snapshot built from a model. Rebuild after retrain /
/// merge; cheap relative to training. Thread-safe for concurrent Match.
class TemplateMatcher {
 public:
  /// `replacer` preprocesses incoming logs exactly as training did; it
  /// must outlive the matcher.
  TemplateMatcher(const TemplateModel& model,
                  const VariableReplacer* replacer);

  /// Most precise (highest-saturation) matching template id, or
  /// kInvalidTemplateId when nothing matches.
  TemplateId Match(std::string_view raw_log) const;

  /// Match a batch across `num_threads` processing queues (§3 "the system
  /// distributes matching tasks across multiple processing queues").
  std::vector<TemplateId> MatchAll(const std::vector<std::string>& raw_logs,
                                   int num_threads) const;

  /// Adds one template (an adopted temporary, §3) without rebuilding.
  /// NOT thread-safe against concurrent Match calls; callers serialize.
  void Insert(const TreeNode& node);

  size_t num_templates() const { return entries_.size(); }

 private:
  struct Entry {
    TemplateId id;
    double saturation;
    std::vector<std::string> tokens;  // kWildcard marks variables
  };
  struct Bucket {
    // Entry indices sorted by descending saturation, split by whether the
    // first token is constant (indexed) or a wildcard (always tried).
    std::unordered_map<uint64_t, std::vector<uint32_t>> by_first_token;
    std::vector<uint32_t> wildcard_first;
  };

  bool Matches(const Entry& e,
               const std::vector<std::string_view>& tokens) const;

  std::vector<Entry> entries_;
  std::unordered_map<size_t, Bucket> buckets_;  // token count -> bucket
  const VariableReplacer* replacer_;
};

}  // namespace bytebrain
