#include "eval/metrics.h"

#include <algorithm>
#include <unordered_map>

namespace bytebrain {

namespace {

// Maps each label to the sorted list of log indices carrying it.
template <typename Label>
std::unordered_map<Label, std::vector<uint32_t>> GroupsOf(
    const std::vector<Label>& labels) {
  std::unordered_map<Label, std::vector<uint32_t>> groups;
  for (uint32_t i = 0; i < labels.size(); ++i) {
    groups[labels[i]].push_back(i);
  }
  return groups;
}

template <typename GtLabel>
double GroupingAccuracyImpl(const std::vector<uint64_t>& predicted,
                            const std::vector<GtLabel>& ground_truth) {
  if (predicted.size() != ground_truth.size()) return 0.0;
  if (predicted.empty()) return 1.0;

  auto pred_groups = GroupsOf(predicted);
  auto gt_groups = GroupsOf(ground_truth);

  // A log is correct iff its predicted group is exactly its gt group.
  // Since groups are index lists built in order, comparing the two lists
  // per gt group suffices: every member of the gt group must carry the
  // same predicted label, and that predicted group must have equal size.
  uint64_t correct = 0;
  for (const auto& [gt_label, members] : gt_groups) {
    const uint64_t pred_label = predicted[members[0]];
    const auto& pred_members = pred_groups[pred_label];
    if (pred_members.size() != members.size()) continue;
    bool uniform = true;
    for (uint32_t idx : members) {
      if (predicted[idx] != pred_label) {
        uniform = false;
        break;
      }
    }
    if (uniform) correct += members.size();
  }
  return static_cast<double>(correct) /
         static_cast<double>(predicted.size());
}

}  // namespace

double GroupingAccuracy(const std::vector<uint64_t>& predicted,
                        const std::vector<uint64_t>& ground_truth) {
  return GroupingAccuracyImpl(predicted, ground_truth);
}

double GroupingAccuracy(const std::vector<uint64_t>& predicted,
                        const std::vector<uint32_t>& ground_truth) {
  return GroupingAccuracyImpl(predicted, ground_truth);
}

}  // namespace bytebrain
