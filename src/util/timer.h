// Wall-clock timing used by the evaluation harness and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace bytebrain {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace bytebrain
