// Unit tests for the linear-time regex engine.
#include <gtest/gtest.h>

#include "regex/regex.h"

namespace bytebrain {
namespace {

Regex MustCompile(std::string_view pattern) {
  auto re = Regex::Compile(pattern);
  EXPECT_TRUE(re.ok()) << pattern << ": " << re.status().ToString();
  return std::move(re).value();
}

TEST(RegexTest, LiteralMatch) {
  Regex re = MustCompile("error");
  EXPECT_TRUE(re.FullMatch("error"));
  EXPECT_FALSE(re.FullMatch("erro"));
  EXPECT_FALSE(re.FullMatch("errors"));
  RegexMatch m;
  EXPECT_TRUE(re.Search("fatal error here", &m));
  EXPECT_EQ(m.begin, 6u);
  EXPECT_EQ(m.end, 11u);
}

TEST(RegexTest, AlternationPrefersLeftmost) {
  Regex re = MustCompile("cat|dog");
  RegexMatch m;
  EXPECT_TRUE(re.Search("hotdog cat", &m));
  EXPECT_EQ(m.begin, 3u);  // "dog" appears first
}

TEST(RegexTest, StarAndPlusAreGreedyLongest) {
  Regex re = MustCompile("a+");
  RegexMatch m;
  EXPECT_TRUE(re.Search("baaac", &m));
  EXPECT_EQ(m.begin, 1u);
  EXPECT_EQ(m.end, 4u);
  Regex re2 = MustCompile("ab*");
  EXPECT_TRUE(re2.FullMatch("a"));
  EXPECT_TRUE(re2.FullMatch("abbbb"));
}

TEST(RegexTest, Optional) {
  Regex re = MustCompile("colou?r");
  EXPECT_TRUE(re.FullMatch("color"));
  EXPECT_TRUE(re.FullMatch("colour"));
  EXPECT_FALSE(re.FullMatch("colouur"));
}

TEST(RegexTest, BoundedRepeat) {
  Regex re = MustCompile("\\d{1,3}");
  EXPECT_TRUE(re.FullMatch("7"));
  EXPECT_TRUE(re.FullMatch("123"));
  EXPECT_FALSE(re.FullMatch("1234"));
  Regex re2 = MustCompile("x{3}");
  EXPECT_TRUE(re2.FullMatch("xxx"));
  EXPECT_FALSE(re2.FullMatch("xx"));
  Regex re3 = MustCompile("x{2,}");
  EXPECT_TRUE(re3.FullMatch("xxxxx"));
  EXPECT_FALSE(re3.FullMatch("x"));
}

TEST(RegexTest, BraceNotQuantifierIsLiteral) {
  // Common in log rules: "{}" placeholders are literal braces.
  Regex re = MustCompile("WS\\{\\d+\\}");
  EXPECT_TRUE(re.FullMatch("WS{10113}"));
  Regex re2 = MustCompile("a{,3}");  // not a valid quantifier -> literal
  EXPECT_TRUE(re2.FullMatch("a{,3}"));
}

TEST(RegexTest, CharClasses) {
  Regex re = MustCompile("[a-f0-9]+");
  EXPECT_TRUE(re.FullMatch("deadbeef42"));
  EXPECT_FALSE(re.FullMatch("xyz"));
  Regex neg = MustCompile("[^0-9]+");
  EXPECT_TRUE(neg.FullMatch("abc"));
  EXPECT_FALSE(neg.FullMatch("a1"));
}

TEST(RegexTest, ClassWithEscapesAndRanges) {
  Regex re = MustCompile("[\\d_a-c]+");
  EXPECT_TRUE(re.FullMatch("a1_b2c"));
  EXPECT_FALSE(re.FullMatch("d"));
  // ']' allowed as first member.
  Regex re2 = MustCompile("[]x]+");
  EXPECT_TRUE(re2.FullMatch("]x]"));
}

TEST(RegexTest, PredefinedClasses) {
  EXPECT_TRUE(MustCompile("\\w+").FullMatch("under_score9"));
  EXPECT_FALSE(MustCompile("\\w+").FullMatch("a b"));
  EXPECT_TRUE(MustCompile("\\s+").FullMatch(" \t\n"));
  EXPECT_TRUE(MustCompile("\\S+").FullMatch("solid"));
  EXPECT_TRUE(MustCompile("\\D+").FullMatch("abc"));
  EXPECT_FALSE(MustCompile("\\D+").FullMatch("a1"));
}

TEST(RegexTest, AnchorsRestrictMatches) {
  Regex re = MustCompile("^abc$");
  EXPECT_TRUE(re.FullMatch("abc"));
  RegexMatch m;
  EXPECT_FALSE(re.Search("xabc", &m));
  Regex end = MustCompile("end$");
  EXPECT_TRUE(end.Search("the end", &m));
  EXPECT_FALSE(end.Search("end of it", &m));
}

TEST(RegexTest, Dot) {
  Regex re = MustCompile("a.c");
  EXPECT_TRUE(re.FullMatch("abc"));
  EXPECT_TRUE(re.FullMatch("a c"));
  EXPECT_FALSE(re.FullMatch("ac"));
}

TEST(RegexTest, Groups) {
  Regex re = MustCompile("(ab)+c");
  EXPECT_TRUE(re.FullMatch("ababc"));
  EXPECT_FALSE(re.FullMatch("abac"));
  Regex nc = MustCompile("(?:ab|cd)+");
  EXPECT_TRUE(nc.FullMatch("abcdab"));
}

TEST(RegexTest, HexEscape) {
  Regex re = MustCompile("\\x41+");
  EXPECT_TRUE(re.FullMatch("AAA"));
}

TEST(RegexTest, FindAllNonOverlapping) {
  Regex re = MustCompile("\\d+");
  auto ms = re.FindAll("a12b345c6");
  ASSERT_EQ(ms.size(), 3u);
  EXPECT_EQ(ms[0].begin, 1u);
  EXPECT_EQ(ms[0].end, 3u);
  EXPECT_EQ(ms[1].begin, 4u);
  EXPECT_EQ(ms[1].end, 7u);
  EXPECT_EQ(ms[2].begin, 8u);
}

TEST(RegexTest, ReplaceAll) {
  Regex re = MustCompile("\\d+");
  EXPECT_EQ(re.ReplaceAll("a12b345", "<*>"), "a<*>b<*>");
  EXPECT_EQ(re.ReplaceAll("nodigits", "<*>"), "nodigits");
  EXPECT_EQ(re.ReplaceAll("", "<*>"), "");
}

TEST(RegexTest, ReplaceIpAddresses) {
  Regex re = MustCompile("\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}\\.\\d{1,3}(:\\d+)?");
  EXPECT_EQ(re.ReplaceAll("src 10.0.4.18:50010 dst 10.0.4.19", "<*>"),
            "src <*> dst <*>");
}

TEST(RegexTest, ReplaceUuid) {
  Regex re = MustCompile(
      "[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}");
  EXPECT_EQ(
      re.ReplaceAll("id=123e4567-e89b-12d3-a456-426614174000 ok", "<*>"),
      "id=<*> ok");
}

TEST(RegexTest, LookaroundIsRejected) {
  EXPECT_TRUE(Regex::Compile("a(?=b)").status().IsNotSupported());
  EXPECT_TRUE(Regex::Compile("a(?!b)").status().IsNotSupported());
  EXPECT_TRUE(Regex::Compile("(?<=a)b").status().IsNotSupported());
  EXPECT_TRUE(Regex::Compile("(?<!a)b").status().IsNotSupported());
}

TEST(RegexTest, BackreferencesAreRejected) {
  EXPECT_TRUE(Regex::Compile("(a)\\1").status().IsNotSupported());
}

TEST(RegexTest, SyntaxErrors) {
  EXPECT_TRUE(Regex::Compile("(ab").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("ab)").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("[ab").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("*a").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("a\\").status().IsInvalidArgument());
  EXPECT_TRUE(Regex::Compile("^*").status().IsInvalidArgument());
}

TEST(RegexTest, PathologicalPatternStaysLinear) {
  // (a+)+b-style patterns are exponential under backtracking engines;
  // the NFA simulation must stay fast. 64 a's with no final b.
  Regex re = MustCompile("(a+)+b");
  std::string text(64, 'a');
  RegexMatch m;
  EXPECT_FALSE(re.Search(text, &m));  // must return promptly
}

TEST(RegexTest, RepeatExpansionBounded) {
  // 1000 * 1000 nested expansion must be rejected, not OOM.
  auto re = Regex::Compile("(x{1000}){1000}");
  EXPECT_TRUE(re.status().IsResourceExhausted() ||
              re.status().IsInvalidArgument());
}

TEST(RegexTest, EmptyPatternMatchesEmpty) {
  Regex re = MustCompile("");
  EXPECT_TRUE(re.FullMatch(""));
  EXPECT_FALSE(re.FullMatch("a"));
  // Zero-width matches do not loop FindAll forever.
  auto ms = re.FindAll("abc");
  EXPECT_TRUE(ms.empty());
}

TEST(RegexTest, TimestampRule) {
  Regex re = MustCompile("\\d{4}-\\d{2}-\\d{2} \\d{2}:\\d{2}:\\d{2}");
  EXPECT_EQ(re.ReplaceAll("at 2026-06-10 12:30:00 done", "<TS>"),
            "at <TS> done");
}

}  // namespace
}  // namespace bytebrain
