// Reference values transcribed from the paper, printed next to our
// measured numbers so every bench reports paper-vs-measured in place.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace bytebrain {

/// Table 2 (LogHub) per-method average grouping accuracy.
inline const std::map<std::string, double>& PaperTable2Averages() {
  static const auto* v = new std::map<std::string, double>{
      {"AEL", 0.76},       {"Drain", 0.87},    {"IPLoM", 0.80},
      {"LenMa", 0.77},     {"LFA", 0.64},      {"LogCluster", 0.65},
      {"LogMine", 0.74},   {"Logram", 0.83},   {"LogSig", 0.52},
      {"MoLFI", 0.58},     {"SHISO", 0.68},    {"SLCT", 0.63},
      {"Spell", 0.79},     {"UniParser", 0.99}, {"LogPPT", 0.92},
      {"LILAC", 0.94},     {"ByteBrain", 0.98},
  };
  return *v;
}

/// Table 3 (LogHub-2.0) per-method average grouping accuracy.
inline const std::map<std::string, double>& PaperTable3Averages() {
  static const auto* v = new std::map<std::string, double>{
      {"AEL", 0.86},       {"Drain", 0.84},    {"IPLoM", 0.79},
      {"LenMa", 0.81},     {"LFA", 0.61},      {"LogCluster", 0.57},
      {"LogMine", 0.75},   {"Logram", 0.34},   {"LogSig", 0.18},
      {"MoLFI", 0.52},     {"SHISO", 0.54},    {"SLCT", 0.40},
      {"Spell", 0.73},     {"UniParser", 0.66}, {"LogPPT", 0.56},
      {"LILAC", 0.93},     {"ByteBrain", 0.90},
  };
  return *v;
}

/// Table 2: ByteBrain per-dataset grouping accuracy.
inline const std::map<std::string, double>& PaperTable2ByteBrain() {
  static const auto* v = new std::map<std::string, double>{
      {"Android", 0.94},  {"Apache", 1.00},     {"BGL", 0.95},
      {"HDFS", 0.98},     {"HPC", 1.00},        {"Hadoop", 1.00},
      {"HealthApp", 0.96}, {"Linux", 0.98},     {"Mac", 0.90},
      {"OpenSSH", 0.99},  {"OpenStack", 1.00},  {"Proxifier", 0.99},
      {"Spark", 1.00},    {"Thunderbird", 0.96}, {"Windows", 1.00},
      {"Zookeeper", 0.97},
  };
  return *v;
}

/// Table 3: ByteBrain per-dataset grouping accuracy.
inline const std::map<std::string, double>& PaperTable3ByteBrain() {
  static const auto* v = new std::map<std::string, double>{
      {"Apache", 0.99},   {"BGL", 0.91},        {"HDFS", 1.00},
      {"HPC", 0.80},      {"Hadoop", 0.92},     {"HealthApp", 0.96},
      {"Linux", 0.81},    {"Mac", 0.81},        {"OpenSSH", 0.63},
      {"OpenStack", 0.99}, {"Proxifier", 0.98}, {"Spark", 0.97},
      {"Thunderbird", 0.78}, {"Zookeeper", 0.97},
  };
  return *v;
}

/// Fig. 6: per-method average throughput (logs/second).
inline const std::map<std::string, double>& PaperFig6AverageThroughput() {
  static const auto* v = new std::map<std::string, double>{
      {"AEL", 9.27e3},     {"Drain", 8.85e3},   {"IPLoM", 1.22e4},
      {"LenMa", 9.24e2},   {"LFA", 1.38e4},     {"LogCluster", 2.36e4},
      {"LogMine", 1.84e2}, {"Logram", 1.07e3},  {"LogSig", 6.61e2},
      {"MoLFI", 1.04e3},   {"SHISO", 9.57e2},   {"SLCT", 6.54e3},
      {"Spell", 3.55e3},   {"UniParser", 2.13e3}, {"LogPPT", 1.14e3},
      {"LILAC", 4.33e3},   {"ByteBrain Sequential", 1.66e5},
      {"ByteBrain w/o JIT", 8.91e4}, {"ByteBrain", 2.29e5},
  };
  return *v;
}

/// Fig. 6: ByteBrain per-dataset throughput (logs/second).
inline const std::map<std::string, double>& PaperFig6ByteBrain() {
  static const auto* v = new std::map<std::string, double>{
      {"Apache", 2.42e5},  {"BGL", 4.15e5},     {"HDFS", 3.69e5},
      {"HPC", 3.87e5},     {"Hadoop", 9.17e4},  {"HealthApp", 9.85e4},
      {"Linux", 8.73e4},   {"Mac", 8.87e4},     {"OpenSSH", 2.38e5},
      {"OpenStack", 8.82e4}, {"Proxifier", 1.40e5}, {"Spark", 2.30e5},
      {"Thunderbird", 5.62e5}, {"Zookeeper", 1.71e5},
  };
  return *v;
}

/// Table 5: production topics (scenario, MB/s, model MB, training s).
struct PaperTable5Row {
  const char* scenario;
  double volume_mb_per_s;
  double model_mb;
  double training_seconds;
};

inline const std::vector<PaperTable5Row>& PaperTable5() {
  static const auto* v = new std::vector<PaperTable5Row>{
      {"Text stream processing", 189.0, 3.0, 0.91},
      {"Webserver access log", 57.8, 10.0, 7.98},
      {"Webserver access log", 47.7, 3.0, 1.02},
      {"Go HTTP API server", 3.51, 7.0, 1.65},
      {"Go search server", 2.46, 7.0, 4.64},
  };
  return *v;
}

}  // namespace bytebrain
