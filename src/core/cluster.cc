#include "core/cluster.h"

#include <algorithm>
#include <cmath>

namespace bytebrain {

namespace {

// Weight cap for positions that are constant within a cluster: the n = 2
// weight (1/(2-1) = 1) doubled, so fully-agreed positions dominate without
// the 1/(n-1) formula dividing by zero.
constexpr double kConstantPositionWeight = 2.0;

// Similarity values within this epsilon are treated as ties for balanced
// grouping (§4.6).
constexpr double kTieEpsilon = 1e-12;

}  // namespace

ClusterProfile::ClusterProfile(const std::vector<uint32_t>& active_positions,
                               const std::vector<EncodedLog>& logs)
    : active_(active_positions), logs_(logs), freq_(active_positions.size()) {}

void ClusterProfile::Add(uint32_t member) {
  const EncodedLog& log = logs_[member];
  for (size_t k = 0; k < active_.size(); ++k) {
    freq_[k][log.tokens[active_[k]]]++;
  }
  ++size_;
}

void ClusterProfile::Clear() {
  for (auto& f : freq_) f.clear();
  size_ = 0;
}

double ClusterProfile::Similarity(const EncodedLog& log,
                                  bool use_position_importance) const {
  if (size_ == 0 || active_.empty()) return 0.0;
  double weighted = 0.0;
  double total_weight = 0.0;
  for (size_t k = 0; k < active_.size(); ++k) {
    const auto& f = freq_[k];
    const auto it = f.find(log.tokens[active_[k]]);
    const double fi =
        it == f.end() ? 0.0
                      : static_cast<double>(it->second) / size_;
    double wi = 1.0;
    if (use_position_importance) {
      const size_t ni = f.size();
      wi = ni <= 1 ? kConstantPositionWeight
                   : 1.0 / static_cast<double>(ni - 1);
    }
    weighted += wi * fi;
    total_weight += wi;
  }
  return total_weight > 0.0 ? weighted / total_weight : 0.0;
}

namespace {

// Dense re-encoding of the members' tokens at the active positions:
// tokens become small consecutive value ids so cluster profiles can use
// array indexing instead of hash lookups in the assignment inner loop.
// ClusterProfile (above) stays as the reference implementation exercised
// by the unit tests.
struct DenseView {
  // values[i * num_positions + k] = value id of members[i] at active k.
  std::vector<uint32_t> values;
  std::vector<uint32_t> cardinality;  // distinct values per active position
  size_t num_positions = 0;

  uint32_t at(size_t member_index, size_t k) const {
    return values[member_index * num_positions + k];
  }
};

DenseView BuildDenseView(const std::vector<EncodedLog>& logs,
                         const std::vector<uint32_t>& members,
                         const std::vector<uint32_t>& active) {
  DenseView view;
  view.num_positions = active.size();
  view.values.resize(members.size() * active.size());
  view.cardinality.resize(active.size(), 0);
  std::unordered_map<uint64_t, uint32_t> ids;
  for (size_t k = 0; k < active.size(); ++k) {
    ids.clear();
    for (size_t i = 0; i < members.size(); ++i) {
      const uint64_t tok = logs[members[i]].tokens[active[k]];
      auto [it, inserted] =
          ids.emplace(tok, static_cast<uint32_t>(ids.size()));
      view.values[i * active.size() + k] = it->second;
    }
    view.cardinality[k] = static_cast<uint32_t>(ids.size());
  }
  return view;
}

// Cluster profile over the dense view: per-position frequency arrays.
class DenseProfile {
 public:
  explicit DenseProfile(const DenseView& view) : view_(view) {
    offsets_.resize(view.num_positions + 1, 0);
    for (size_t k = 0; k < view.num_positions; ++k) {
      offsets_[k + 1] = offsets_[k] + view.cardinality[k];
    }
    freq_.resize(offsets_.back(), 0);
    distinct_.resize(view.num_positions, 0);
  }

  void Add(size_t member_index) {
    for (size_t k = 0; k < view_.num_positions; ++k) {
      uint32_t& f = freq_[offsets_[k] + view_.at(member_index, k)];
      if (f == 0) ++distinct_[k];
      ++f;
    }
    ++size_;
  }

  void Clear() {
    std::fill(freq_.begin(), freq_.end(), 0);
    std::fill(distinct_.begin(), distinct_.end(), 0);
    size_ = 0;
  }

  // Eq. 2 similarity of members[member_index] to this cluster.
  double Similarity(size_t member_index, bool use_position_importance) const {
    if (size_ == 0 || view_.num_positions == 0) return 0.0;
    double weighted = 0.0;
    double total_weight = 0.0;
    const double inv_size = 1.0 / static_cast<double>(size_);
    for (size_t k = 0; k < view_.num_positions; ++k) {
      const uint32_t f = freq_[offsets_[k] + view_.at(member_index, k)];
      const double fi = static_cast<double>(f) * inv_size;
      double wi = 1.0;
      if (use_position_importance) {
        const uint32_t ni = distinct_[k];
        wi = ni <= 1 ? kConstantPositionWeight
                     : 1.0 / static_cast<double>(ni - 1);
      }
      weighted += wi * fi;
      total_weight += wi;
    }
    return total_weight > 0.0 ? weighted / total_weight : 0.0;
  }

  uint32_t size() const { return size_; }

 private:
  const DenseView& view_;
  std::vector<uint32_t> offsets_;
  std::vector<uint32_t> freq_;
  std::vector<uint32_t> distinct_;
  uint32_t size_ = 0;
};

// Positions still unresolved across `members`: constants carry no signal
// and confirmed-variable positions must not drive splits (splitting on a
// variable's values produces meaningless templates, §4.5).
std::vector<uint32_t> ActivePositions(const PositionStats& stats) {
  std::vector<uint32_t> active;
  for (uint32_t i = 0; i < stats.num_positions; ++i) {
    if (stats.unresolved(i)) active.push_back(i);
  }
  return active;
}

// Early-stop checks (§4.7). Returns true and fills `outcome` when the
// decision is immediate.
bool TryEarlyStop(const std::vector<uint32_t>& members,
                  const PositionStats& stats, ClusterOutcome* outcome) {
  // (1) Few logs: each distinct log forms its own cluster.
  if (members.size() <= 2) {
    if (members.size() < 2) {
      outcome->split = false;
      return true;
    }
    outcome->split = true;
    outcome->clusters = {{members[0]}, {members[1]}};
    return true;
  }
  uint32_t unresolved = 0;
  bool all_unresolved_distinct = true;
  for (size_t i = 0; i < stats.distinct.size(); ++i) {
    if (!stats.unresolved(i)) continue;
    ++unresolved;
    if (stats.distinct[i] != stats.num_logs) all_unresolved_distinct = false;
  }
  // (2) Single unresolved position: splitting on one position cannot
  // produce a better template; the position is simply a variable.
  if (unresolved == 1) {
    outcome->split = false;
    return true;
  }
  // (3) Completely distinct unresolved positions: the logs are pairwise
  // dissimilar everywhere unresolved; each becomes its own cluster.
  if (unresolved >= 2 && all_unresolved_distinct) {
    outcome->split = true;
    outcome->clusters.reserve(members.size());
    for (uint32_t m : members) outcome->clusters.push_back({m});
    return true;
  }
  return false;
}

}  // namespace

ClusterOutcome SingleClusteringProcess(const std::vector<EncodedLog>& logs,
                                       const std::vector<uint32_t>& members,
                                       double parent_saturation,
                                       const ClusterOptions& options,
                                       Rng* rng) {
  ClusterOutcome outcome;
  if (members.size() < 2) return outcome;  // nothing to split

  const PositionStats parent_stats = ComputePositionStats(logs, members);
  if (parent_stats.fully_resolved()) return outcome;  // saturated already

  if (options.early_stop && TryEarlyStop(members, parent_stats, &outcome)) {
    return outcome;
  }

  const std::vector<uint32_t> active = ActivePositions(parent_stats);
  const DenseView view = BuildDenseView(logs, members, active);

  // --- Seeding -------------------------------------------------------
  // First seed uniformly at random; second is the member farthest from
  // the first (K-Means++ principle), or random under the ablation.
  const size_t seed1 = rng->NextBelow(members.size());
  DenseProfile seed_profile(view);
  seed_profile.Add(seed1);

  size_t seed2 = seed1;
  if (options.kmeanspp_seeding) {
    double best = 2.0;  // similarity in [0,1]; pick the minimum
    for (size_t i = 0; i < members.size(); ++i) {
      if (i == seed1) continue;
      const double sim =
          seed_profile.Similarity(i, options.use_position_importance);
      if (sim < best) {
        best = sim;
        seed2 = i;
      }
    }
  } else {
    while (members.size() > 1 && seed2 == seed1) {
      seed2 = rng->NextBelow(members.size());
    }
  }

  // assignment[i]: cluster index of members[i].
  std::vector<uint32_t> assignment(members.size(), 0);
  uint32_t num_clusters = 2;
  std::vector<DenseProfile> profiles;
  profiles.reserve(8);
  profiles.emplace_back(view);
  profiles.emplace_back(view);
  profiles[0].Add(seed1);
  profiles[1].Add(seed2);

  std::vector<uint32_t> tie_buffer;
  auto assign_all = [&]() -> bool {
    bool changed = false;
    for (size_t i = 0; i < members.size(); ++i) {
      double best = -1.0;
      tie_buffer.clear();
      for (uint32_t c = 0; c < num_clusters; ++c) {
        if (profiles[c].size() == 0) continue;
        const double sim =
            profiles[c].Similarity(i, options.use_position_importance);
        if (sim > best + kTieEpsilon) {
          best = sim;
          tie_buffer.clear();
          tie_buffer.push_back(c);
        } else if (sim >= best - kTieEpsilon) {
          tie_buffer.push_back(c);
        }
      }
      uint32_t chosen;
      if (tie_buffer.size() == 1 || !options.balanced_grouping) {
        chosen = tie_buffer.front();
      } else {
        // §4.6 balanced grouping: equidistant ties break uniformly at
        // random so no cluster systematically absorbs the overflow.
        chosen = tie_buffer[rng->NextBelow(tie_buffer.size())];
      }
      if (assignment[i] != chosen) {
        assignment[i] = chosen;
        changed = true;
      }
    }
    return changed;
  };

  auto rebuild_profiles = [&]() {
    for (auto& p : profiles) p.Clear();
    for (size_t i = 0; i < members.size(); ++i) {
      profiles[assignment[i]].Add(i);
    }
  };

  // --- Iterate: reassign, check saturation, expand -------------------
  const uint32_t max_clusters =
      static_cast<uint32_t>(std::min<size_t>(members.size(), 64));
  int iterations_left = options.max_iterations;
  assign_all();
  rebuild_profiles();
  while (true) {
    bool changed = false;
    for (int it = 0; it < 2 && iterations_left > 0; ++it, --iterations_left) {
      changed = assign_all();
      rebuild_profiles();
      if (!changed) break;
    }

    if (!options.ensure_saturation_increase) break;

    // Find a cluster whose saturation does not improve on the parent.
    std::vector<std::vector<uint32_t>> groups(num_clusters);
    for (size_t i = 0; i < members.size(); ++i) {
      groups[assignment[i]].push_back(members[i]);
    }
    bool all_improved = true;
    for (uint32_t c = 0; c < num_clusters && all_improved; ++c) {
      if (groups[c].empty()) continue;
      if (groups[c].size() == members.size()) {
        // Degenerate: everything collapsed into one cluster.
        all_improved = false;
        break;
      }
      const double s =
          ComputeSaturation(logs, groups[c], options.saturation);
      if (s <= parent_saturation + 1e-12) all_improved = false;
    }
    if (all_improved) break;
    if (num_clusters >= max_clusters || iterations_left <= 0) break;

    // Expand: seed a new cluster with the member farthest from all
    // existing clusters (lowest best-similarity).
    double worst_best = 2.0;
    size_t farthest_idx = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      double best_sim = 0.0;
      for (uint32_t c = 0; c < num_clusters; ++c) {
        if (profiles[c].size() == 0) continue;
        best_sim = std::max(
            best_sim, profiles[c].Similarity(
                          i, options.use_position_importance));
      }
      if (best_sim < worst_best) {
        worst_best = best_sim;
        farthest_idx = i;
      }
    }
    profiles.emplace_back(view);
    assignment[farthest_idx] = num_clusters;
    ++num_clusters;
    rebuild_profiles();
    iterations_left = std::max(iterations_left, 2);  // allow a settle round
  }

  // --- Materialize the partition --------------------------------------
  std::vector<std::vector<uint32_t>> groups(num_clusters);
  for (size_t i = 0; i < members.size(); ++i) {
    groups[assignment[i]].push_back(members[i]);
  }
  for (auto& g : groups) {
    if (!g.empty()) outcome.clusters.push_back(std::move(g));
  }
  outcome.split = outcome.clusters.size() >= 2;
  return outcome;
}

}  // namespace bytebrain
