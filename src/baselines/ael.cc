#include "baselines/ael.h"

#include <unordered_map>

namespace bytebrain {

namespace {

// Anonymization: digit-bearing tokens and replaced variables ("*") become
// the parameter placeholder.
std::vector<std::string> Anonymize(const std::vector<std::string>& tokens,
                                   size_t* num_params) {
  std::vector<std::string> out;
  out.reserve(tokens.size());
  *num_params = 0;
  for (const auto& tok : tokens) {
    if (tok == "*" || HasDigits(tok)) {
      out.emplace_back(kBaselineWildcard);
      ++*num_params;
    } else {
      out.push_back(tok);
    }
  }
  return out;
}

}  // namespace

std::vector<uint64_t> AelParser::Parse(const std::vector<std::string>& logs) {
  auto token_lists = PreprocessTokens(logs);
  std::vector<uint64_t> out(logs.size(), 0);

  struct Event {
    std::vector<std::string> tokens;
    std::vector<uint32_t> members;
  };
  // Bin key: (word count, parameter count) + categorize by sequence.
  std::unordered_map<std::string, uint32_t> event_index;
  std::vector<Event> events;
  std::vector<std::string> bin_of_event;

  for (uint32_t i = 0; i < token_lists.size(); ++i) {
    size_t num_params = 0;
    auto anon = Anonymize(token_lists[i], &num_params);
    std::string key = std::to_string(anon.size()) + '#' +
                      std::to_string(num_params) + '#' + JoinKey(anon);
    auto [it, inserted] =
        event_index.emplace(std::move(key), static_cast<uint32_t>(events.size()));
    if (inserted) {
      events.push_back({std::move(anon), {}});
      bin_of_event.push_back(
          std::to_string(events.back().tokens.size()) + '#' +
          std::to_string(num_params));
    }
    events[it->second].members.push_back(i);
  }

  // Reconcile: within a bin, merge events whose sequences differ at
  // exactly one position where at least one side is a parameter.
  std::vector<uint32_t> parent(events.size());
  for (uint32_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  std::unordered_map<std::string, std::vector<uint32_t>> bins;
  for (uint32_t e = 0; e < events.size(); ++e) {
    bins[bin_of_event[e]].push_back(e);
  }
  for (const auto& [bin, ids] : bins) {
    // Pairwise reconcile is quadratic; bound it for pathological bins.
    if (ids.size() > 2000) continue;
    for (size_t a = 0; a < ids.size(); ++a) {
      for (size_t b = a + 1; b < ids.size(); ++b) {
        const auto& ta = events[ids[a]].tokens;
        const auto& tb = events[ids[b]].tokens;
        if (ta.size() != tb.size()) continue;
        size_t diffs = 0;
        bool param_diff = false;
        for (size_t p = 0; p < ta.size() && diffs <= 1; ++p) {
          if (ta[p] != tb[p]) {
            ++diffs;
            param_diff = ta[p] == kBaselineWildcard ||
                         tb[p] == kBaselineWildcard;
          }
        }
        if (diffs == 1 && param_diff) {
          parent[find(ids[a])] = find(ids[b]);
        }
      }
    }
  }

  for (uint32_t e = 0; e < events.size(); ++e) {
    const uint64_t id = find(e) + 1;
    for (uint32_t m : events[e].members) out[m] = id;
  }
  return out;
}

}  // namespace bytebrain
