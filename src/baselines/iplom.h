// IPLoM (Makanju et al., KDD 2009): Iterative Partitioning Log Mining.
// Partitions the batch hierarchically: (1) by token count, (2) by the
// token at the position with the fewest distinct values, (3) by the
// mapping relation between the two most strongly related positions
// (simplified here to a joint split on the two lowest-cardinality
// unresolved positions when their value pairs form a near-bijection).
// Partitions whose constant-position ratio reaches the cluster-goodness
// threshold stop splitting and become templates.
#pragma once

#include <string>
#include <vector>

#include "baselines/common.h"

namespace bytebrain {

struct IplomOptions {
  double cluster_goodness = 0.55;  // constant-ratio to stop splitting
  double partition_support = 4.0;  // min logs to keep splitting
};

class IplomParser : public LogParserInterface {
 public:
  explicit IplomParser(IplomOptions options = {}) : options_(options) {}

  std::string name() const override { return "IPLoM"; }
  std::vector<uint64_t> Parse(const std::vector<std::string>& logs) override;

 private:
  IplomOptions options_;
};

}  // namespace bytebrain
