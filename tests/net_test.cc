// Tests for the epoll TCP front (net/tcp_server.h) and its client
// (net/client.h): real sockets on loopback, ephemeral ports.
//
// The themes mirror the transport's contract:
//  * A well-behaved client round-trips the full API.
//  * A hostile or broken peer (garbage bytes, dribbled frames,
//    oversized lengths, half-open connections) can never crash or
//    wedge the server — at worst its own connection closes.
//  * Admission-control outcomes (retry_after_us, PermissionDenied)
//    surface through the wire unchanged.
//  * Many tenants on many connections make concurrent progress
//    (exercised under TSAN in CI).

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "api/frontend.h"
#include "api/messages.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/tcp_server.h"

namespace bytebrain {
namespace net {
namespace {

using api::ApiMethod;
using api::ServiceFrontend;

TopicConfig SmallConfig() {
  TopicConfig config;
  config.initial_train_records = 50;
  config.train_interval_records = 1u << 30;
  config.train_volume_bytes = 1ull << 40;
  config.num_threads = 2;
  config.async_training = false;
  return config;
}

std::string SshLog(int i) {
  return "Accepted password for user" + std::to_string(i % 5) +
         " from 10.0.0." + std::to_string(i % 9 + 1) + " port " +
         std::to_string(40000 + i) + " ssh2";
}

/// Server + frontend with test-friendly defaults, started on an
/// ephemeral loopback port.
class ServerFixture {
 public:
  explicit ServerFixture(api::FrontendConfig frontend_config = {},
                         TcpServerConfig server_config = {})
      : frontend_(std::move(frontend_config)),
        server_(&frontend_, std::move(server_config)) {
    const Status started = server_.Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
  }

  ServiceFrontend& frontend() { return frontend_; }
  TcpServer& server() { return server_; }
  uint16_t port() const { return server_.port(); }

  NetClient Connect() {
    NetClient client;
    const Status s = client.Connect("127.0.0.1", port());
    EXPECT_TRUE(s.ok()) << s.ToString();
    return client;
  }

 private:
  ServiceFrontend frontend_;
  TcpServer server_;
};

Status CreateTopicOverWire(NetClient& client, const std::string& name) {
  api::CreateTopicRequest req;
  req.name = name;
  req.config = SmallConfig();
  api::CreateTopicResponse resp;
  return client.Call(ApiMethod::kCreateTopic, "acme", req, &resp);
}

// ---------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------

TEST(NetTest, FullLifecycleOverTheWire) {
  ServerFixture fx;
  NetClient client = fx.Connect();

  ASSERT_TRUE(CreateTopicOverWire(client, "events").ok());

  api::IngestBatchRequest batch;
  batch.topic = "events";
  for (int i = 0; i < 80; ++i) batch.texts.push_back(SshLog(i));
  api::IngestBatchResponse ingested;
  ASSERT_TRUE(
      client.Call(ApiMethod::kIngestBatch, "acme", batch, &ingested).ok());
  EXPECT_EQ(ingested.seqs.size(), 80u);

  api::QueryRequest query;
  query.topic = "events";
  query.saturation_threshold = 0.5;
  api::QueryResponse result;
  ASSERT_TRUE(client.Call(ApiMethod::kQuery, "acme", query, &result).ok());
  uint64_t total = 0;
  for (const TemplateGroup& g : result.groups) total += g.count;
  EXPECT_EQ(total, 80u);

  // Errors cross the wire as statuses, not transport failures.
  api::QueryRequest missing;
  missing.topic = "no-such-topic";
  api::QueryResponse none;
  EXPECT_TRUE(
      client.Call(ApiMethod::kQuery, "acme", missing, &none).IsNotFound());

  const TcpServerStats stats = fx.server().stats();
  EXPECT_GE(stats.frames_dispatched, 4u);
  EXPECT_EQ(stats.connections_accepted, 1u);
}

TEST(NetTest, PipelinedRequestsComeBackInOrder) {
  ServerFixture fx;
  NetClient client = fx.Connect();
  ASSERT_TRUE(CreateTopicOverWire(client, "t").ok());

  // Queue a window of ingests without reading, then drain: responses
  // must arrive in request order with matching ids.
  constexpr int kWindow = 32;
  std::vector<uint64_t> sent_ids;
  for (int i = 0; i < kWindow; ++i) {
    api::IngestRequest req;
    req.topic = "t";
    req.text = SshLog(i);
    auto id = client.SendRequest(ApiMethod::kIngest, "acme", req);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    sent_ids.push_back(id.value());
  }
  for (int i = 0; i < kWindow; ++i) {
    api::IngestResponse resp;
    uint64_t echoed = 0;
    ASSERT_TRUE(client.ReadResponse(&resp, &echoed).ok());
    EXPECT_EQ(echoed, sent_ids[i]);
  }
}

TEST(NetTest, PartialFramesReassemble) {
  ServerFixture fx;
  NetClient client = fx.Connect();

  api::CreateTopicRequest create;
  create.name = "dribble";
  create.config = SmallConfig();
  const std::string request =
      api::EncodeRequest(ApiMethod::kCreateTopic, "acme", create, 7);

  // Dribble the frame one byte at a time; the server must reassemble.
  const uint32_t len = static_cast<uint32_t>(request.size());
  std::string wire(reinterpret_cast<const char*>(&len), 4);
  wire += request;
  for (char c : wire) {
    const Status s = client.SendRaw(std::string_view(&c, 1));
    ASSERT_TRUE(s.ok()) << s.ToString();
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::string response;
  ASSERT_TRUE(client.ReceiveFrame(&response).ok());
  api::CreateTopicResponse created;
  uint64_t echoed = 0;
  EXPECT_TRUE(api::DecodeResponse(response, &created, nullptr, &echoed).ok());
  EXPECT_EQ(echoed, 7u);
}

TEST(NetTest, TwoFramesInOneWrite) {
  ServerFixture fx;
  NetClient client = fx.Connect();

  api::CreateTopicRequest create;
  create.name = "coalesced";
  create.config = SmallConfig();
  api::ListTopicsRequest list;
  const std::string r1 =
      api::EncodeRequest(ApiMethod::kCreateTopic, "acme", create, 1);
  const std::string r2 =
      api::EncodeRequest(ApiMethod::kListTopics, "acme", list, 2);
  std::string wire;
  for (const std::string* r : {&r1, &r2}) {
    const uint32_t len = static_cast<uint32_t>(r->size());
    wire.append(reinterpret_cast<const char*>(&len), 4);
    wire.append(*r);
  }
  ASSERT_TRUE(client.SendRaw(wire).ok());

  std::string response;
  ASSERT_TRUE(client.ReceiveFrame(&response).ok());
  api::CreateTopicResponse created;
  EXPECT_TRUE(api::DecodeResponse(response, &created).ok());
  ASSERT_TRUE(client.ReceiveFrame(&response).ok());
  api::ListTopicsResponse topics;
  ASSERT_TRUE(api::DecodeResponse(response, &topics).ok());
  ASSERT_EQ(topics.names.size(), 1u);
  EXPECT_EQ(topics.names[0], "coalesced");
}

// ---------------------------------------------------------------------
// Hostile peers
// ---------------------------------------------------------------------

TEST(NetTest, GarbagePayloadGetsDecodableErrorEnvelope) {
  ServerFixture fx;
  NetClient client = fx.Connect();

  // A well-framed frame full of garbage: the server must answer with a
  // decodable error envelope, on the same connection, and keep serving.
  std::string garbage(37, '\0');
  for (size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<char>((i * 41 + 7) & 0xFF);
  }
  auto response = client.Call(garbage);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  api::ResponseEnvelope env;
  ASSERT_TRUE(env.DecodeFrom(response.value()).ok());
  EXPECT_FALSE(env.status.ok());

  // The connection is still usable.
  EXPECT_TRUE(CreateTopicOverWire(client, "after-garbage").ok());
}

TEST(NetTest, OversizedFrameClosesConnection) {
  TcpServerConfig config;
  config.max_frame_bytes = 1024;
  ServerFixture fx({}, config);
  NetClient client = fx.Connect();

  // Announce a frame far over the limit; the server closes without
  // waiting for (or allocating) the payload.
  const uint32_t huge = 64u << 20;
  std::string header(reinterpret_cast<const char*>(&huge), 4);
  ASSERT_TRUE(client.SendRaw(header).ok());
  std::string response;
  EXPECT_TRUE(client.ReceiveFrame(&response).IsIOError());

  // Deterministic server-side evidence, not just a closed socket.
  for (int i = 0; i < 200 && fx.server().stats().oversized_frame_closes == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fx.server().stats().oversized_frame_closes, 1u);

  // Other connections are unaffected.
  NetClient fresh = fx.Connect();
  EXPECT_TRUE(CreateTopicOverWire(fresh, "survivor").ok());
}

TEST(NetTest, AbruptDisconnectMidFrameIsHarmless) {
  ServerFixture fx;
  for (int i = 0; i < 8; ++i) {
    NetClient client = fx.Connect();
    const uint32_t len = 100;  // promise 100 bytes...
    std::string partial(reinterpret_cast<const char*>(&len), 4);
    partial += "only-a-few";  // ...deliver ten, hang up.
    ASSERT_TRUE(client.SendRaw(partial).ok());
    client.Close();
  }
  // Server still serves.
  NetClient client = fx.Connect();
  EXPECT_TRUE(CreateTopicOverWire(client, "t").ok());
}

TEST(NetTest, IdleConnectionIsClosed) {
  TcpServerConfig config;
  config.idle_timeout_ms = 100;
  ServerFixture fx({}, config);
  NetClient client = fx.Connect();

  // Say nothing; the slowloris guard reaps us.
  std::string response;
  EXPECT_TRUE(client.ReceiveFrame(&response).IsIOError());
  for (int i = 0; i < 200 && fx.server().stats().idle_closes == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(fx.server().stats().idle_closes, 1u);
}

// ---------------------------------------------------------------------
// Admission + auth over the wire
// ---------------------------------------------------------------------

TEST(NetTest, RetryAfterSurfacesAndReadsPause) {
  api::FrontendConfig frontend_config;
  frontend_config.max_ingest_records_per_sec = 10;
  frontend_config.burst_seconds = 1.0;
  ServerFixture fx(frontend_config);
  NetClient client = fx.Connect();
  ASSERT_TRUE(CreateTopicOverWire(client, "t").ok());

  // Drain the bucket, then overrun it: the denial carries a retry hint
  // and the server pauses reads on this connection.
  Status denied = Status::OK();
  uint64_t retry_after_us = 0;
  for (int i = 0; i < 30 && !denied.IsResourceExhausted(); ++i) {
    api::IngestRequest req;
    req.topic = "t";
    req.text = SshLog(i);
    api::IngestResponse resp;
    denied = client.Call(ApiMethod::kIngest, "acme", req, &resp,
                         &retry_after_us);
    ASSERT_FALSE(denied.IsIOError()) << denied.ToString();
  }
  ASSERT_TRUE(denied.IsResourceExhausted()) << denied.ToString();
  EXPECT_GT(retry_after_us, 0u);
  for (int i = 0; i < 200 && fx.server().stats().throttle_pauses == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(fx.server().stats().throttle_pauses, 1u);

  // The pause expires and the connection serves again (non-ingest
  // methods are not rate limited; only reading was deferred).
  api::ListTopicsRequest list;
  api::ListTopicsResponse topics;
  EXPECT_TRUE(client.Call(ApiMethod::kListTopics, "acme", list, &topics).ok());
}

TEST(NetTest, AuthRejectsOverTheWire) {
  api::FrontendConfig frontend_config;
  frontend_config.tenant_tokens = {{"acme", "good-token"}};
  ServerFixture fx(frontend_config);

  NetClient anon = fx.Connect();
  EXPECT_TRUE(CreateTopicOverWire(anon, "t").IsPermissionDenied());

  NetClient wrong = fx.Connect();
  wrong.set_auth_token("bad-token");
  EXPECT_TRUE(CreateTopicOverWire(wrong, "t").IsPermissionDenied());

  NetClient good = fx.Connect();
  good.set_auth_token("good-token");
  EXPECT_TRUE(CreateTopicOverWire(good, "t").ok());
}

// ---------------------------------------------------------------------
// Concurrency + shutdown
// ---------------------------------------------------------------------

TEST(NetTest, ConcurrentTenantsOnManyConnections) {
  TcpServerConfig config;
  config.num_workers = 3;
  ServerFixture fx({}, config);

  constexpr int kTenants = 3;
  constexpr int kConnsPerTenant = 2;
  constexpr int kBatches = 10;
  constexpr int kBatchSize = 20;

  // One connection per tenant creates the topic first.
  for (int t = 0; t < kTenants; ++t) {
    NetClient client = fx.Connect();
    api::CreateTopicRequest req;
    req.name = "t";
    req.config = SmallConfig();
    api::CreateTopicResponse resp;
    ASSERT_TRUE(client
                    .Call(ApiMethod::kCreateTopic, "tenant" + std::to_string(t),
                          req, &resp)
                    .ok());
  }

  std::atomic<uint64_t> total_ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kTenants; ++t) {
    for (int conn = 0; conn < kConnsPerTenant; ++conn) {
      threads.emplace_back([&fx, &total_ok, t, conn] {
        NetClient client;
        ASSERT_TRUE(client.Connect("127.0.0.1", fx.port()).ok());
        const std::string tenant = "tenant" + std::to_string(t);
        for (int b = 0; b < kBatches; ++b) {
          api::IngestBatchRequest req;
          req.topic = "t";
          for (int i = 0; i < kBatchSize; ++i) {
            req.texts.push_back(SshLog(conn * 100000 + b * kBatchSize + i));
          }
          api::IngestBatchResponse resp;
          const Status s =
              client.Call(ApiMethod::kIngestBatch, tenant, req, &resp);
          ASSERT_TRUE(s.ok()) << s.ToString();
          total_ok.fetch_add(resp.seqs.size());
        }
      });
    }
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total_ok.load(), static_cast<uint64_t>(kTenants * kConnsPerTenant *
                                                   kBatches * kBatchSize));

  // Each tenant sees exactly its own records.
  for (int t = 0; t < kTenants; ++t) {
    NetClient client = fx.Connect();
    api::GetStatsRequest req;
    req.topic = "t";
    api::GetStatsResponse resp;
    ASSERT_TRUE(client
                    .Call(ApiMethod::kGetStats, "tenant" + std::to_string(t),
                          req, &resp)
                    .ok());
    EXPECT_EQ(resp.stats.ingested_records,
              static_cast<uint64_t>(kConnsPerTenant * kBatches * kBatchSize));
  }
}

TEST(NetTest, GracefulShutdownFlushesPendingResponses) {
  auto fx = std::make_unique<ServerFixture>();
  NetClient client = fx->Connect();
  ASSERT_TRUE(CreateTopicOverWire(client, "t").ok());

  // Pipeline a few requests, shut the server down, then read: responses
  // already computed should have been flushed before the close.
  std::vector<uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    api::IngestRequest req;
    req.topic = "t";
    req.text = SshLog(i);
    auto id = client.SendRequest(ApiMethod::kIngest, "acme", req);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // Give the worker a beat to dispatch, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fx->server().Shutdown();

  int received = 0;
  for (size_t i = 0; i < ids.size(); ++i) {
    api::IngestResponse resp;
    uint64_t echoed = 0;
    if (!client.ReadResponse(&resp, &echoed).IsIOError()) {
      EXPECT_EQ(echoed, ids[received]);
      ++received;
    } else {
      break;
    }
  }
  EXPECT_EQ(received, 4);

  // Start/stop is clean to repeat (fresh server, same pattern).
  fx.reset();
  ServerFixture again;
  NetClient c2 = again.Connect();
  EXPECT_TRUE(CreateTopicOverWire(c2, "t2").ok());
}

TEST(NetTest, StartTwiceIsRejectedAndShutdownIsIdempotent) {
  ServerFixture fx;
  EXPECT_TRUE(fx.server().Start().IsInvalidArgument());
  fx.server().Shutdown();
  fx.server().Shutdown();
}

}  // namespace
}  // namespace net
}  // namespace bytebrain
