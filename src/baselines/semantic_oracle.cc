#include "baselines/semantic_oracle.h"

#include <unordered_map>
#include <unordered_set>

#include "util/hashing.h"
#include "util/rng.h"

namespace bytebrain {

namespace {

// Deterministic busy-work standing in for model inference; the volatile
// sink keeps the loop from being optimized away.
void BurnRounds(uint64_t rounds, std::string_view payload) {
  volatile uint64_t sink = 0;
  uint64_t h = HashToken(payload);
  for (uint64_t i = 0; i < rounds; ++i) {
    h = Mix64(h + i);
  }
  sink = h;
  (void)sink;
}

}  // namespace

std::vector<uint64_t> SemanticOracleParser::Parse(
    const std::vector<std::string>& logs) {
  std::vector<uint64_t> out(logs.size(), 0);
  if (gt_labels_.size() != logs.size()) {
    // Labels do not line up with the batch: refuse to oracle, put every
    // log in one group (worst case accuracy) rather than crash.
    return out;
  }

  // Choose which templates get corrupted (split into two groups).
  Rng rng(config_.seed);
  std::unordered_set<uint32_t> templates(gt_labels_.begin(), gt_labels_.end());
  std::unordered_set<uint32_t> corrupted;
  for (uint32_t t : templates) {
    if (rng.NextDouble() < config_.corrupt_fraction) corrupted.insert(t);
  }

  std::unordered_set<uint32_t> seen_templates;
  std::unordered_map<uint32_t, uint32_t> per_template_counter;
  for (size_t i = 0; i < logs.size(); ++i) {
    const uint32_t gt = gt_labels_[i];
    const bool first_of_template = seen_templates.insert(gt).second;
    if (config_.template_cache) {
      BurnRounds(first_of_template ? config_.inference_rounds
                                   : config_.hit_rounds,
                 logs[i]);
    } else {
      BurnRounds(config_.inference_rounds, logs[i]);
    }
    uint64_t group = gt + 1;
    // Corrupted templates alternate between two predicted groups so the
    // split is guaranteed regardless of how the batch interleaves.
    if (corrupted.count(gt) != 0 &&
        (per_template_counter[gt]++ & 1) != 0) {
      group |= 1ULL << 40;  // second half of a split group
    }
    out[i] = group;
  }
  return out;
}

SemanticOracleConfig LilacConfig() {
  SemanticOracleConfig c;
  c.display_name = "LILAC";
  c.corrupt_fraction = 0.04;
  c.template_cache = true;
  // LLM call on template miss; paper band ~1e3-1e4 logs/s with cache.
  c.inference_rounds = 3000000;
  c.hit_rounds = 30000;
  return c;
}

SemanticOracleConfig UniParserConfig() {
  SemanticOracleConfig c;
  c.display_name = "UniParser";
  c.corrupt_fraction = 0.02;
  c.template_cache = false;
  // Per-log DL forward pass; paper band ~2e3 logs/s.
  c.inference_rounds = 150000;
  return c;
}

SemanticOracleConfig LogPptConfig() {
  SemanticOracleConfig c;
  c.display_name = "LogPPT";
  c.corrupt_fraction = 0.03;
  c.template_cache = false;
  // Prompt-tuned PLM; paper band ~1e3 logs/s.
  c.inference_rounds = 280000;
  return c;
}

}  // namespace bytebrain
