// Write-ahead-log battery (ISSUE 6 tentpole): WriteAheadLog unit
// behavior (replay, rotation, base_seq pinning, sticky fsync failure,
// group-commit accounting), SegmentedDiskBackend WAL integration (WAL
// replay beyond the segment tail, torn final frames, stale-file
// cleanup), the crash matrix (a fault-injected "process death" at EVERY
// syscall index of a mixed append/checkpoint/seal workload, then a
// clean reopen asserting zero acknowledged-record loss and metadata
// recovery), group-commit concurrency (TSAN-covered), and the
// service-level surfacing (durability config, WAL stats, sticky
// degradation on fsync failure).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "logstore/disk_backend.h"
#include "logstore/fault_injection.h"
#include "logstore/frame_format.h"
#include "logstore/log_topic.h"
#include "logstore/wal.h"
#include "service/log_service.h"
#include "util/hashing.h"
#include "util/rng.h"

namespace bytebrain {
namespace {

class TempDir {
 public:
  TempDir() {
    static std::atomic<uint64_t> counter{0};
    path_ = (std::filesystem::temp_directory_path() /
             ("bb_wal_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter.fetch_add(1))))
                .string();
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

StorageConfig WalConfig(const std::string& dir,
                        DurabilityMode mode = DurabilityMode::kWalGroupCommit,
                        uint64_t segment_bytes = 64 * 1024,
                        FileOps* ops = nullptr) {
  StorageConfig cfg;
  cfg.kind = StorageConfig::Kind::kSegmentedDisk;
  cfg.directory = dir;
  cfg.segment_data_bytes = segment_bytes;
  cfg.durability = mode;
  cfg.file_ops = ops;
  return cfg;
}

LogRecord MakeRecord(std::string text, uint64_t ts) {
  LogRecord record;
  record.text = std::move(text);
  record.timestamp_us = ts;
  return record;
}

std::string FrameBytes(const std::vector<LogRecord>& records) {
  std::string out;
  for (const LogRecord& r : records) {
    char header[logframe::kFrameHeaderBytes];
    logframe::FillFrameHeader(header, r,
                              RecordChecksum(r.timestamp_us, r.text));
    out.append(header, sizeof(header));
    out.append(r.text);
  }
  return out;
}

std::string WalPath(const std::string& dir, uint64_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06llu.log",
                static_cast<unsigned long long>(index));
  return dir + "/" + name;
}

// ---------------------------------------------------------------------
// WriteAheadLog unit behavior
// ---------------------------------------------------------------------

TEST(WriteAheadLogTest, FreshOpenCreatesEmptyFile) {
  TempDir dir;
  WriteAheadLog wal(dir.path(), DurabilityMode::kWalGroupCommit,
                    RealFileOps());
  std::vector<LogRecord> replayed;
  ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
  EXPECT_TRUE(replayed.empty());
  EXPECT_TRUE(std::filesystem::exists(WalPath(dir.path(), 0)));
  EXPECT_EQ(wal.wal_bytes(), 0u);
}

TEST(WriteAheadLogTest, AppendedFramesReplayOnReopen) {
  TempDir dir;
  std::vector<LogRecord> written = {MakeRecord("alpha", 1),
                                    MakeRecord("beta", 2),
                                    MakeRecord("gamma gamma", 3)};
  {
    WriteAheadLog wal(dir.path(), DurabilityMode::kWalGroupCommit,
                      RealFileOps());
    std::vector<LogRecord> replayed;
    ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
    ASSERT_TRUE(wal.Append(FrameBytes(written)).ok());
    ASSERT_TRUE(wal.WaitDurable().ok());
    EXPECT_GE(wal.fsyncs(), 1u);
    EXPECT_EQ(wal.group_commits(), 1u);
  }
  WriteAheadLog wal(dir.path(), DurabilityMode::kWalGroupCommit,
                    RealFileOps());
  std::vector<LogRecord> replayed;
  ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
  ASSERT_EQ(replayed.size(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(replayed[i].text, written[i].text);
    EXPECT_EQ(replayed[i].timestamp_us, written[i].timestamp_us);
  }
}

TEST(WriteAheadLogTest, TornTailIsTruncatedAway) {
  TempDir dir;
  std::vector<LogRecord> written = {MakeRecord("first", 1),
                                    MakeRecord("second", 2)};
  {
    WriteAheadLog wal(dir.path(), DurabilityMode::kWalAsync, RealFileOps());
    std::vector<LogRecord> replayed;
    ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
    ASSERT_TRUE(wal.Append(FrameBytes(written)).ok());
  }
  // Tear the final frame: drop its last 3 bytes.
  const std::string path = WalPath(dir.path(), 0);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);

  WriteAheadLog wal(dir.path(), DurabilityMode::kWalAsync, RealFileOps());
  std::vector<LogRecord> replayed;
  ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].text, "first");
  // The torn bytes are gone: appending now must produce a cleanly
  // replayable file again.
  ASSERT_TRUE(wal.Append(FrameBytes({MakeRecord("third", 3)})).ok());
  std::vector<LogRecord> again;
  WriteAheadLog wal2(dir.path(), DurabilityMode::kWalAsync, RealFileOps());
  ASSERT_TRUE(wal2.OpenAndReplay(0, 0, &again).ok());
  ASSERT_EQ(again.size(), 2u);
  EXPECT_EQ(again[1].text, "third");
}

TEST(WriteAheadLogTest, BaseSeqMismatchIsCorruption) {
  TempDir dir;
  {
    WriteAheadLog wal(dir.path(), DurabilityMode::kWalAsync, RealFileOps());
    std::vector<LogRecord> replayed;
    ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
    ASSERT_TRUE(wal.Append(FrameBytes({MakeRecord("x", 1)})).ok());
  }
  WriteAheadLog wal(dir.path(), DurabilityMode::kWalAsync, RealFileOps());
  std::vector<LogRecord> replayed;
  const Status opened = wal.OpenAndReplay(0, 5, &replayed);
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.IsCorruption());
}

TEST(WriteAheadLogTest, RotateDeletesOldFileAndStartsFresh) {
  TempDir dir;
  WriteAheadLog wal(dir.path(), DurabilityMode::kWalGroupCommit,
                    RealFileOps());
  std::vector<LogRecord> replayed;
  ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
  ASSERT_TRUE(wal.Append(FrameBytes({MakeRecord("x", 1)})).ok());
  ASSERT_TRUE(wal.Rotate(1, 1).ok());
  EXPECT_FALSE(std::filesystem::exists(WalPath(dir.path(), 0)));
  EXPECT_TRUE(std::filesystem::exists(WalPath(dir.path(), 1)));
  EXPECT_EQ(wal.wal_bytes(), 0u);
  // A waiter arriving after the rotation is already durable (the seal
  // fsynced its bytes): WaitDurable returns without a new append.
  ASSERT_TRUE(wal.WaitDurable().ok());
  ASSERT_TRUE(wal.Append(FrameBytes({MakeRecord("y", 2)})).ok());
  ASSERT_TRUE(wal.WaitDurable().ok());
}

TEST(WriteAheadLogTest, StaleFilesFromOtherSegmentsAreDeleted) {
  TempDir dir;
  // A crash between the seal's manifest write and Rotate leaves the
  // previous segment's wal file behind; the next open must remove it.
  std::ofstream(WalPath(dir.path(), 3)) << "stale-not-even-a-header";
  WriteAheadLog wal(dir.path(), DurabilityMode::kWalAsync, RealFileOps());
  std::vector<LogRecord> replayed;
  ASSERT_TRUE(wal.OpenAndReplay(4, 100, &replayed).ok());
  EXPECT_FALSE(std::filesystem::exists(WalPath(dir.path(), 3)));
  EXPECT_TRUE(std::filesystem::exists(WalPath(dir.path(), 4)));
}

TEST(WriteAheadLogTest, AsyncModeNeverBlocksInWaitDurable) {
  TempDir dir;
  WriteAheadLog wal(dir.path(), DurabilityMode::kWalAsync, RealFileOps());
  std::vector<LogRecord> replayed;
  ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
  ASSERT_TRUE(wal.Append(FrameBytes({MakeRecord("x", 1)})).ok());
  ASSERT_TRUE(wal.WaitDurable().ok());  // immediate: no group commit
  EXPECT_EQ(wal.group_commits(), 0u);
}

TEST(WriteAheadLogTest, FsyncFailureGoesStickyAndRotateClearsIt) {
  TempDir dir;
  FaultSchedule schedule;
  // Op 1 is the header write at create; op 2 the first frame append;
  // op 3 the commit thread's fsync over it.
  schedule.fail_fsync_at = 3;
  FaultInjectingFileOps ops(schedule);
  WriteAheadLog wal(dir.path(), DurabilityMode::kWalGroupCommit, &ops);
  std::vector<LogRecord> replayed;
  ASSERT_TRUE(wal.OpenAndReplay(0, 0, &replayed).ok());
  ASSERT_TRUE(wal.Append(FrameBytes({MakeRecord("x", 1)})).ok());
  EXPECT_FALSE(wal.WaitDurable().ok());
  // Sticky: later appends and waits keep failing without touching IO.
  EXPECT_FALSE(wal.Append(FrameBytes({MakeRecord("y", 2)})).ok());
  EXPECT_FALSE(wal.WaitDurable().ok());
  // Rotate (a healthy seal elsewhere) starts a clean file and clears
  // the error: the WAL is usable again.
  ASSERT_TRUE(wal.Rotate(1, 2).ok());
  ASSERT_TRUE(wal.Append(FrameBytes({MakeRecord("z", 3)})).ok());
  ASSERT_TRUE(wal.WaitDurable().ok());
}

// ---------------------------------------------------------------------
// SegmentedDiskBackend + WAL integration
// ---------------------------------------------------------------------

TEST(WalBackendTest, WalReplaysRecordsTheSegmentFileNeverReceived) {
  TempDir dir;
  FaultInjectingFileOps ops;
  std::vector<LogRecord> written;
  for (int i = 0; i < 20; ++i) {
    written.push_back(MakeRecord("record number " + std::to_string(i), i));
  }
  {
    SegmentedDiskBackend backend(
        WalConfig(dir.path(), DurabilityMode::kWalGroupCommit, 64 * 1024,
                  &ops));
    ASSERT_TRUE(backend.Open().ok());
    ASSERT_TRUE(backend.AppendBatch(written).ok());
    ASSERT_TRUE(backend.WaitDurable().ok());
    // "Process death": the active segment's write buffer (still shy of
    // its drain threshold) never reaches the segment file, but every
    // frame is in the WAL. All further IO — including the destructor's
    // best-effort flush — fails.
    ops.CrashNow();
  }
  SegmentedDiskBackend reopened(
      WalConfig(dir.path(), DurabilityMode::kWalGroupCommit));
  ASSERT_TRUE(reopened.Open().ok());
  ASSERT_EQ(reopened.size(), written.size());
  EXPECT_EQ(reopened.wal_replayed_records(), written.size());
  for (size_t i = 0; i < written.size(); ++i) {
    LogRecord out;
    ASSERT_TRUE(reopened.Read(i, &out).ok());
    EXPECT_EQ(out.text, written[i].text);
    EXPECT_EQ(out.timestamp_us, written[i].timestamp_us);
  }
}

TEST(WalBackendTest, TornFinalWalFrameLosesOnlyThatFrame) {
  TempDir dir;
  FaultInjectingFileOps ops;
  {
    SegmentedDiskBackend backend(
        WalConfig(dir.path(), DurabilityMode::kWalGroupCommit, 64 * 1024,
                  &ops));
    ASSERT_TRUE(backend.Open().ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(backend.Append(MakeRecord("rec " + std::to_string(i), i))
                      .ok());
    }
    ops.CrashNow();
  }
  const std::string wal_path = WalPath(dir.path(), 0);
  ASSERT_TRUE(std::filesystem::exists(wal_path));
  std::filesystem::resize_file(wal_path,
                               std::filesystem::file_size(wal_path) - 2);

  SegmentedDiskBackend reopened(
      WalConfig(dir.path(), DurabilityMode::kWalGroupCommit));
  ASSERT_TRUE(reopened.Open().ok());
  ASSERT_EQ(reopened.size(), 4u);
  LogRecord out;
  ASSERT_TRUE(reopened.Read(3, &out).ok());
  EXPECT_EQ(out.text, "rec 3");
}

TEST(WalBackendTest, SealRotatesTheWalFile) {
  TempDir dir;
  // Tiny segments: a few appends force a seal.
  SegmentedDiskBackend backend(
      WalConfig(dir.path(), DurabilityMode::kWalGroupCommit, 256));
  ASSERT_TRUE(backend.Open().ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        backend.Append(MakeRecord("seal-forcing record text " +
                                      std::to_string(i),
                                  i))
            .ok());
  }
  ASSERT_TRUE(backend.WaitDurable().ok());
  EXPECT_GE(backend.sealed_segment_count(), 1u);
  // Exactly one wal file remains — the active segment's; every sealed
  // segment's file was rotated away.
  size_t wal_files = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir.path())) {
    if (entry.path().filename().string().rfind("wal-", 0) == 0) ++wal_files;
  }
  EXPECT_EQ(wal_files, 1u);
  // Reopen: all records recovered (sealed segments + tail WAL).
  SegmentedDiskBackend reopened(
      WalConfig(dir.path(), DurabilityMode::kWalGroupCommit, 256));
  ASSERT_TRUE(reopened.Open().ok());
  EXPECT_EQ(reopened.size(), 20u);
}

TEST(WalBackendTest, DurabilityNoneWritesNoWalFile) {
  TempDir dir;
  SegmentedDiskBackend backend(
      WalConfig(dir.path(), DurabilityMode::kNone));
  ASSERT_TRUE(backend.Open().ok());
  ASSERT_TRUE(backend.Append(MakeRecord("x", 1)).ok());
  ASSERT_TRUE(backend.WaitDurable().ok());  // trivially OK
  EXPECT_EQ(backend.wal_bytes(), 0u);
  EXPECT_FALSE(std::filesystem::exists(WalPath(dir.path(), 0)));
}

// ---------------------------------------------------------------------
// The crash matrix: kill the process (fault-injected) at EVERY syscall
// index of a mixed workload, reopen clean, and assert the durability
// contract. BB_CRASH_SEED varies the workload (CI runs several seeds).
// ---------------------------------------------------------------------

struct CrashWorkloadResult {
  std::vector<LogRecord> written;   // everything offered
  uint64_t acked = 0;               // Append+WaitDurable both OK
  std::string acked_metadata;       // last blob whose Checkpoint acked
  std::vector<std::string> attempted_metadata;  // every blob offered
  uint64_t total_ops = 0;           // syscalls the clean run performed
};

/// Runs the seeded workload against a fresh backend in `dir` with
/// `ops`; stops at the first failed call (the crash made every
/// subsequent syscall fail anyway).
CrashWorkloadResult RunCrashWorkload(const std::string& dir, uint64_t seed,
                                     FaultInjectingFileOps* ops) {
  CrashWorkloadResult result;
  Rng rng(seed);
  SegmentedDiskBackend backend(
      WalConfig(dir, DurabilityMode::kWalGroupCommit, 512, ops));
  if (!backend.Open().ok()) {
    result.total_ops = ops->ops_seen();
    return result;
  }
  uint64_t ts = 0;
  for (int batch = 0; batch < 12; ++batch) {
    const size_t batch_size = 1 + rng.NextBelow(6);
    std::vector<LogRecord> records;
    for (size_t i = 0; i < batch_size; ++i) {
      std::string text = "b" + std::to_string(batch) + "r" +
                         std::to_string(i) + " ";
      const size_t pad = rng.NextBelow(40);
      text.append(pad, 'x');
      records.push_back(MakeRecord(text, ++ts));
    }
    result.written.insert(result.written.end(), records.begin(),
                          records.end());
    const Status appended = backend.AppendBatch(records);
    const Status durable = backend.WaitDurable();
    if (!appended.ok() || !durable.ok()) break;
    result.acked = result.written.size();
    if (batch % 3 == 2) {
      const std::string blob = "model-after-batch-" + std::to_string(batch);
      result.attempted_metadata.push_back(blob);
      if (backend.Checkpoint(blob).ok()) result.acked_metadata = blob;
    }
  }
  result.total_ops = ops->ops_seen();
  return result;
}

TEST(WalCrashMatrixTest, NoAckedRecordLossAtAnyCrashPoint) {
  uint64_t seed = 42;
  if (const char* env = std::getenv("BB_CRASH_SEED"); env != nullptr) {
    seed = std::strtoull(env, nullptr, 10);
  }
  // Clean run: learn the op-index domain for the sweep.
  uint64_t clean_ops = 0;
  uint64_t clean_written = 0;
  {
    TempDir dir;
    FaultInjectingFileOps ops;
    const CrashWorkloadResult clean =
        RunCrashWorkload(dir.path(), seed, &ops);
    ASSERT_EQ(clean.acked, clean.written.size());
    ASSERT_FALSE(clean.acked_metadata.empty());
    clean_ops = clean.total_ops;
    clean_written = clean.written.size();
  }
  ASSERT_GT(clean_ops, 20u);

  // The commit thread makes exact op indices nondeterministic run to
  // run; that is fine — every index is SOME valid crash point, and the
  // contract must hold at all of them.
  for (uint64_t crash_at = 1; crash_at <= clean_ops; ++crash_at) {
    SCOPED_TRACE("crash_at_op=" + std::to_string(crash_at) +
                 " seed=" + std::to_string(seed));
    TempDir dir;
    FaultSchedule schedule;
    schedule.crash_at_op = crash_at;
    FaultInjectingFileOps ops(schedule);
    const CrashWorkloadResult run =
        RunCrashWorkload(dir.path(), seed, &ops);

    // Post-crash restart: clean syscalls, same directory.
    SegmentedDiskBackend reopened(
        WalConfig(dir.path(), DurabilityMode::kWalGroupCommit, 512));
    const Status opened = reopened.Open();
    // Recovery must never crash and never refuse the store outright —
    // every injected state is reachable by a real kill.
    ASSERT_TRUE(opened.ok()) << opened.ToString();

    // Zero acknowledged-record loss...
    ASSERT_GE(reopened.size(), run.acked);
    // ...and nothing invented: what is recovered is a byte-identical
    // prefix of what was offered.
    ASSERT_LE(reopened.size(), run.written.size());
    for (uint64_t i = 0; i < reopened.size(); ++i) {
      LogRecord out;
      ASSERT_TRUE(reopened.Read(i, &out).ok());
      ASSERT_EQ(out.text, run.written[i].text);
      ASSERT_EQ(out.timestamp_us, run.written[i].timestamp_us);
    }
    // Metadata: the atomic tmp+rename manifest recovers either the last
    // acknowledged checkpoint or a later attempted one — never a torn
    // in-between and never a regression past the acked blob.
    if (!run.acked_metadata.empty()) {
      bool valid = reopened.metadata() == run.acked_metadata;
      bool passed_acked = false;
      for (const std::string& blob : run.attempted_metadata) {
        if (blob == run.acked_metadata) passed_acked = true;
        if (passed_acked && reopened.metadata() == blob) valid = true;
      }
      ASSERT_TRUE(valid) << "recovered metadata '" << reopened.metadata()
                         << "' is neither the acked checkpoint nor a "
                            "later attempt";
    }
  }
  // Sanity: the workload is non-trivial.
  EXPECT_GT(clean_written, 10u);
}

// ---------------------------------------------------------------------
// Group commit concurrency (TSAN-covered via the sanitized test run)
// ---------------------------------------------------------------------

TEST(WalGroupCommitTest, ConcurrentBatchesShareFsyncs) {
  TempDir dir;
  LogTopic topic("wal-concurrency",
                 WalConfig(dir.path(), DurabilityMode::kWalGroupCommit));
  ASSERT_TRUE(topic.storage_status().ok());
  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 25;
  constexpr int kRecordsPerBatch = 4;
  std::vector<std::thread> threads;
  std::atomic<uint64_t> durable_acks{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int b = 0; b < kBatchesPerThread; ++b) {
        std::vector<LogRecord> records;
        for (int r = 0; r < kRecordsPerBatch; ++r) {
          records.push_back(MakeRecord("t" + std::to_string(t) + "b" +
                                           std::to_string(b) + "r" +
                                           std::to_string(r),
                                       b));
        }
        topic.AppendBatch(std::move(records));
        if (topic.WaitDurable().ok()) {
          durable_acks.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const uint64_t total_batches = kThreads * kBatchesPerThread;
  EXPECT_EQ(topic.size(), total_batches * kRecordsPerBatch);
  EXPECT_EQ(durable_acks.load(), total_batches);
  EXPECT_EQ(topic.wal_group_commits(), total_batches);
  // The whole point of group commit: every ack is covered by an fsync,
  // with (under concurrency, usually far) fewer fsyncs than acks.
  EXPECT_GE(topic.wal_fsyncs(), 1u);
  EXPECT_LE(topic.wal_fsyncs(), total_batches);
  EXPECT_GT(topic.wal_bytes(), 0u);

  // Everything recovers on reopen.
  LogTopic reopened("wal-concurrency",
                    WalConfig(dir.path(), DurabilityMode::kWalGroupCommit));
  ASSERT_TRUE(reopened.storage_status().ok());
  EXPECT_EQ(reopened.size(), total_batches * kRecordsPerBatch);
}

// ---------------------------------------------------------------------
// Service-level durability surfacing
// ---------------------------------------------------------------------

/// Pass-through ops whose fsyncs can be failed at will — the
/// deterministic seam for "the disk's fsync started failing mid-run".
class FailableFsyncOps : public FileOps {
 public:
  ssize_t Write(int fd, const void* buf, size_t count) override {
    return RealFileOps()->Write(fd, buf, count);
  }
  ssize_t PWrite(int fd, const void* buf, size_t count,
                 uint64_t offset) override {
    return RealFileOps()->PWrite(fd, buf, count, offset);
  }
  int Fsync(int fd) override {
    if (fail_.load(std::memory_order_relaxed)) {
      errno = EIO;
      return -1;
    }
    return RealFileOps()->Fsync(fd);
  }
  void StartFailing() { fail_.store(true, std::memory_order_relaxed); }

 private:
  std::atomic<bool> fail_{false};
};

TopicConfig DurableTopicConfig(const std::string& dir, DurabilityMode mode,
                               FileOps* ops = nullptr) {
  TopicConfig config;
  config.storage = WalConfig(dir, DurabilityMode::kNone, 64 * 1024, ops);
  config.durability = mode;
  config.initial_train_records = 4;
  return config;
}

TEST(ServiceDurabilityTest, DurabilityRequiresDiskStorage) {
  TopicConfig config;  // kMemory storage
  config.durability = DurabilityMode::kWalGroupCommit;
  LogService service;
  EXPECT_FALSE(service.CreateTopic("t", config).ok());
}

TEST(ServiceDurabilityTest, WalStatsSurfaceThroughTopicStats) {
  TempDir dir;
  LogService service;
  auto topic = service.CreateTopic(
      "t", DurableTopicConfig(dir.path(), DurabilityMode::kWalGroupCommit));
  ASSERT_TRUE(topic.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        topic.value()->Ingest("service record " + std::to_string(i), i).ok());
  }
  const TopicStats stats = topic.value()->stats();
  EXPECT_TRUE(stats.storage_ok);
  EXPECT_GT(stats.wal_bytes, 0u);
  EXPECT_GE(stats.wal_group_commits, 8u);
  EXPECT_GE(stats.wal_fsyncs, 1u);
  EXPECT_EQ(stats.wal_replayed_records, 0u);
}

TEST(ServiceDurabilityTest, RecoveryReplaysWalTailIntoTheService) {
  TempDir dir;
  FaultInjectingFileOps ops;
  {
    LogService service;
    auto topic = service.CreateTopic(
        "t", DurableTopicConfig(dir.path(), DurabilityMode::kWalGroupCommit,
                                &ops));
    ASSERT_TRUE(topic.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          topic.value()->Ingest("crash survivor " + std::to_string(i), i)
              .ok());
    }
    // Kill the storage layer before the service can checkpoint at
    // shutdown: the active segment file never got the tail, the WAL did.
    ops.CrashNow();
    topic.value().reset();  // release the handle so DeleteTopic can run
    (void)service.DeleteTopic("t", /*purge_storage=*/false);
  }
  LogService service;
  auto topic = service.CreateTopic(
      "t", DurableTopicConfig(dir.path(), DurabilityMode::kWalGroupCommit));
  ASSERT_TRUE(topic.ok());
  EXPECT_EQ(topic.value()->size(), 10u);
  const TopicStats stats = topic.value()->stats();
  EXPECT_EQ(stats.recovered_records, 10u);
  EXPECT_GT(stats.wal_replayed_records, 0u);
  auto record = topic.value()->ReadRecord(9);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().text, "crash survivor 9");
}

TEST(ServiceDurabilityTest, FsyncFailureDegradesStickyButKeepsAcking) {
  TempDir dir;
  FailableFsyncOps ops;
  LogService service;
  auto topic = service.CreateTopic(
      "t", DurableTopicConfig(dir.path(), DurabilityMode::kWalGroupCommit,
                              &ops));
  ASSERT_TRUE(topic.ok());
  ASSERT_TRUE(topic.value()->Ingest("healthy", 1).ok());
  ASSERT_TRUE(topic.value()->stats().storage_ok);

  ops.StartFailing();
  // The ingest is still acknowledged (fail-soft), but the WAL fsync
  // failure lands sticky in the topic's storage status.
  ASSERT_TRUE(topic.value()->Ingest("degraded", 2).ok());
  EXPECT_FALSE(topic.value()->stats().storage_ok);
  // And it STAYS degraded — exactly like an append-path IO error.
  ASSERT_TRUE(topic.value()->Ingest("still acked", 3).ok());
  EXPECT_FALSE(topic.value()->stats().storage_ok);
  EXPECT_EQ(topic.value()->size(), 3u);
  topic.value().reset();  // release the handle so DeleteTopic is prompt
  (void)service.DeleteTopic("t");
}

}  // namespace
}  // namespace bytebrain
